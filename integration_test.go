// Integration tests exercising the whole pipeline across module
// boundaries: world -> beaconing -> collection -> measurement -> storage ->
// selection -> UPIN verification, including persistence across process
// restarts and crash recovery of the journal.
package scionpath

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/upin/scionpath/internal/addr"
	"github.com/upin/scionpath/internal/cliutil"
	"github.com/upin/scionpath/internal/docdb"
	"github.com/upin/scionpath/internal/measure"
	"github.com/upin/scionpath/internal/selection"
	"github.com/upin/scionpath/internal/simnet"
	"github.com/upin/scionpath/internal/topology"
	"github.com/upin/scionpath/internal/upin"
)

// TestFullPipelinePersistence runs a campaign into a journal, "restarts"
// (new world, same journal), and selects paths from the replayed data.
func TestFullPipelinePersistence(t *testing.T) {
	dbPath := filepath.Join(t.TempDir(), "stats.jsonl")

	// Session 1: collect + measure Ireland.
	w1, err := cliutil.NewWorld(5, dbPath, "")
	if err != nil {
		t.Fatal(err)
	}
	suite := &measure.Suite{DB: w1.DB, Daemon: w1.Daemon}
	rep, err := suite.Run(context.Background(), measure.RunOpts{
		Iterations: 2, ServerIDs: []int{1},
		PingCount: 5, PingInterval: 10 * time.Millisecond,
		BwDuration: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.StatsStored == 0 {
		t.Fatal("no stats stored")
	}
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}

	// Session 2: replay, then select without re-measuring.
	w2, err := cliutil.NewWorld(6, dbPath, "")
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := w2.DB.Collection(measure.ColStats).Count(); got != rep.StatsStored {
		t.Fatalf("replayed %d stats, stored %d", got, rep.StatsStored)
	}
	engine := selection.New(w2.DB, w2.Topo)
	best, err := engine.Best(context.Background(), 1, selection.Request{Objective: selection.LowestLatency})
	if err != nil {
		t.Fatal(err)
	}
	if best.Samples != 2 {
		t.Errorf("best path has %d samples, want 2", best.Samples)
	}

	// Session 2 continues measuring; ids must not collide with session 1.
	suite2 := &measure.Suite{DB: w2.DB, Daemon: w2.Daemon}
	if _, err := suite2.Run(context.Background(), measure.RunOpts{
		Iterations: 1, Skip: true, ServerIDs: []int{1},
		PingCount: 5, PingInterval: 10 * time.Millisecond, SkipBandwidth: true,
	}); err != nil {
		t.Fatalf("resumed campaign failed: %v", err)
	}
}

// TestCrashRecovery truncates the journal mid-write and verifies the next
// session keeps everything before the torn record.
func TestCrashRecovery(t *testing.T) {
	dbPath := filepath.Join(t.TempDir(), "stats.jsonl")
	w, err := cliutil.NewWorld(7, dbPath, "")
	if err != nil {
		t.Fatal(err)
	}
	suite := &measure.Suite{DB: w.DB, Daemon: w.Daemon}
	if _, err := suite.Run(context.Background(), measure.RunOpts{
		Iterations: 1, ServerIDs: []int{1},
		PingCount: 3, PingInterval: 5 * time.Millisecond, SkipBandwidth: true,
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the journal: chop the final record in half.
	data, err := os.ReadFile(dbPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dbPath, data[:len(data)-40], 0o644); err != nil {
		t.Fatal(err)
	}

	w2, err := cliutil.NewWorld(8, dbPath, "")
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer w2.Close()
	// The paper's design point: losing one unflushed sample is negligible
	// and must not unbalance anything else (§4.2.2).
	if w2.DB.Collection(measure.ColServers).Count() != 21 {
		t.Error("server catalogue lost in recovery")
	}
	if w2.DB.Collection(measure.ColPaths).Count() == 0 {
		t.Error("paths lost in recovery")
	}
}

// TestUPINPipelineOverMeasuredDB drives controller -> tracer -> verifier
// over a journal-backed campaign.
func TestUPINPipelineOverMeasuredDB(t *testing.T) {
	w, err := cliutil.NewWorld(9, "", "")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	suite := &measure.Suite{DB: w.DB, Daemon: w.Daemon}
	if _, err := suite.Run(context.Background(), measure.RunOpts{
		Iterations: 2, ServerIDs: []int{1},
		PingCount: 5, PingInterval: 10 * time.Millisecond, SkipBandwidth: true,
	}); err != nil {
		t.Fatal(err)
	}
	explorer := upin.NewDomainExplorer(w.Topo, []addr.ISD{16, 17, 19})
	engine := selection.New(w.DB, w.Topo)
	intent := upin.Intent{ServerID: 1, Request: selection.Request{
		ExcludeCountries: []string{"United States", "Singapore"},
	}}
	dec, err := upin.NewController(w.Daemon, engine, explorer).Decide(context.Background(), topology.AWSIreland, intent)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := upin.NewTracer(w.Net).Trace(dec, 2)
	if err != nil {
		t.Fatal(err)
	}
	verdict := upin.NewVerifier(explorer).Verify(intent, trace)
	if !verdict.Satisfied {
		t.Errorf("verified intent violated: %v", verdict.Violations)
	}
}

// TestConcurrentReadersDuringCampaign runs selection queries concurrently
// with an ongoing measurement campaign (run with -race in CI).
func TestConcurrentReadersDuringCampaign(t *testing.T) {
	w, err := cliutil.NewWorld(10, "", "")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	suite := &measure.Suite{DB: w.DB, Daemon: w.Daemon}
	// Prime the paths so readers have something to join against.
	if _, err := measure.CollectPaths(context.Background(), w.DB, w.Daemon, measure.CollectOpts{}); err != nil {
		t.Fatal(err)
	}
	engine := selection.New(w.DB, w.Topo)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Selection may find zero candidates early on; only hard
				// errors matter here.
				if _, err := engine.Select(context.Background(), 1, selection.Request{}); err != nil &&
					!strings.Contains(err.Error(), "no collected paths") {
					t.Errorf("reader: %v", err)
					return
				}
			}
		}()
	}
	if _, err := suite.Run(context.Background(), measure.RunOpts{
		Iterations: 2, Skip: true, ServerIDs: []int{1},
		PingCount: 3, PingInterval: 2 * time.Millisecond, SkipBandwidth: true,
	}); err != nil {
		t.Error(err)
	}
	close(stop)
	wg.Wait()
}

// TestDeterminismAcrossRuns re-runs an identical campaign and compares the
// stored statistics byte for byte.
func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []docdb.Document {
		w, err := cliutil.NewWorld(11, "", "")
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		suite := &measure.Suite{DB: w.DB, Daemon: w.Daemon}
		if _, err := suite.Run(context.Background(), measure.RunOpts{
			Iterations: 1, ServerIDs: []int{1},
			PingCount: 5, PingInterval: 10 * time.Millisecond,
			BwDuration: 200 * time.Millisecond,
		}); err != nil {
			t.Fatal(err)
		}
		return w.DB.Collection(measure.ColStats).Find(docdb.Query{SortBy: "_id"})
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("runs differ in size: %d vs %d", len(a), len(b))
	}
	for i := range a {
		for _, field := range []string{measure.FAvgLatency, measure.FLoss, measure.FBwUp64, measure.FBwDownMTU} {
			if a[i][field] != b[i][field] {
				t.Errorf("doc %s field %s: %v vs %v", a[i].ID(), field, a[i][field], b[i][field])
			}
		}
	}
}

// TestEpisodeVisibleEndToEnd injects an outage through the public pipeline
// and checks it shows up in the database and flips path status probes.
func TestEpisodeVisibleEndToEnd(t *testing.T) {
	w, err := cliutil.NewWorld(12, "", "")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Net.ScheduleEpisode(simnet.Episode{
		IA: topology.ETHZAP, Start: 0, End: time.Hour, DropProb: 1,
	}); err != nil {
		t.Fatal(err)
	}
	suite := &measure.Suite{DB: w.DB, Daemon: w.Daemon}
	if _, err := suite.Run(context.Background(), measure.RunOpts{
		Iterations: 1, ServerIDs: []int{1},
		PingCount: 3, PingInterval: 5 * time.Millisecond, SkipBandwidth: true,
	}); err != nil {
		t.Fatal(err)
	}
	stats := w.DB.Collection(measure.ColStats).Find(docdb.Query{})
	if len(stats) == 0 {
		t.Fatal("no stats")
	}
	for _, d := range stats {
		if loss, _ := d[measure.FLoss].(float64); loss != 100 {
			t.Errorf("stat %s loss %v during total outage", d.ID(), d[measure.FLoss])
		}
	}
}
