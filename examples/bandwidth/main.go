// Bandwidth exploration: the paper's §6.2 experiment in miniature. The
// program runs the bwtester against the Magdeburg AP in Germany at a
// 12 Mbps and a 150 Mbps target, with 64-byte and MTU-sized packets in
// both directions, and prints the trend the paper found: at 12 Mbps the
// MTU flows win (header overhead penalises small packets), at 150 Mbps the
// trend reverses (the overloaded bottleneck drops MTU traffic
// disproportionately).
//
// Run with:
//
//	go run ./examples/bandwidth
package main

import (
	"fmt"
	"log"

	"github.com/upin/scionpath/internal/bwtest"
	"github.com/upin/scionpath/internal/sciond"
	"github.com/upin/scionpath/internal/simnet"
	"github.com/upin/scionpath/internal/topology"
)

func main() {
	topo := topology.DefaultWorld()
	net := simnet.New(topo, simnet.Options{Seed: 3})
	daemon, err := sciond.New(topo, net, topology.MyAS)
	if err != nil {
		log.Fatal(err)
	}
	paths, err := daemon.ShowPaths(topology.MagdeburgAP, sciond.ShowPathsOpts{MaxPaths: 1})
	if err != nil || len(paths) == 0 {
		log.Fatalf("no path to Magdeburg: %v", err)
	}
	path := paths[0]
	fmt.Printf("testing path: %s (MTU %d)\n\n", path.Sequence(), path.MTU)

	fmt.Printf("%-10s %-6s %12s %12s\n", "target", "size", "up (Mbps)", "down (Mbps)")
	for _, target := range []string{"12Mbps", "150Mbps"} {
		for _, size := range []string{"64", "MTU"} {
			spec := fmt.Sprintf("3,%s,?,%s", size, target)
			params, err := bwtest.ParseParams(spec, path.MTU)
			if err != nil {
				log.Fatal(err)
			}
			// Average a few runs to smooth cross-traffic noise.
			var up, down float64
			const k = 5
			for i := 0; i < k; i++ {
				res, err := bwtest.Run(net, path, params, bwtest.Params{})
				if err != nil {
					log.Fatal(err)
				}
				up += res.CS.AchievedBps
				down += res.SC.AchievedBps
			}
			fmt.Printf("%-10s %-6s %12.2f %12.2f\n", target, size, up/k/1e6, down/k/1e6)
		}
		fmt.Println()
	}
	fmt.Println("expected shape (paper Fig 7/8): at 12Mbps MTU > 64B; at 150Mbps 64B > MTU;")
	fmt.Println("upstream below downstream throughout (asymmetric access links).")
}
