// Failover: the UPIN control loop in action. A user intent is installed on
// the best path to AWS Ireland; mid-session a link on that path dies. The
// watchdog's health checks see 100 % loss, re-measure, and move the intent
// onto a healthy alternative — user-driven path control as an ongoing
// process rather than a one-shot choice.
//
// Run with:
//
//	go run ./examples/failover
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/upin/scionpath/internal/addr"
	"github.com/upin/scionpath/internal/docdb"
	"github.com/upin/scionpath/internal/measure"
	"github.com/upin/scionpath/internal/sciond"
	"github.com/upin/scionpath/internal/scmp"
	"github.com/upin/scionpath/internal/selection"
	"github.com/upin/scionpath/internal/simnet"
	"github.com/upin/scionpath/internal/topology"
	"github.com/upin/scionpath/internal/upin"
)

func main() {
	topo := topology.DefaultWorld()
	net := simnet.New(topo, simnet.Options{Seed: 21})
	daemon, err := sciond.New(topo, net, topology.MyAS)
	if err != nil {
		log.Fatal(err)
	}
	db := docdb.MustOpen()
	if err := measure.SeedServers(db, topo); err != nil {
		log.Fatal(err)
	}
	suite := &measure.Suite{DB: db, Daemon: daemon}

	servers, _ := measure.Servers(db)
	var irelandID int
	for _, s := range servers {
		if s.Address.IA == topology.AWSIreland {
			irelandID = s.ID
		}
	}
	fmt.Println("measuring paths to AWS Ireland...")
	if _, err := suite.Run(context.Background(), measure.RunOpts{
		Iterations: 3, ServerIDs: []int{irelandID},
		PingCount: 8, PingInterval: 10 * time.Millisecond, SkipBandwidth: true,
	}); err != nil {
		log.Fatal(err)
	}

	engine := selection.New(db, topo)
	explorer := upin.NewDomainExplorer(topo, []addr.ISD{16, 17, 19})
	w := &upin.Watchdog{
		Controller: upin.NewController(daemon, engine, explorer),
		Tracer:     upin.NewTracer(net),
		Suite:      suite,
		CheckPing:  scmp.PingOpts{Count: 10, Interval: 20 * time.Millisecond},
		MaxLossPct: 20,
	}
	intent := upin.Intent{ServerID: irelandID, Request: selection.Request{
		Objective: selection.LowestLatency,
	}}

	// Peek at the initial decision so the outage can target it.
	dec, err := w.Controller.Decide(context.Background(), topology.AWSIreland, intent)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninstalled: %s\n", selection.Explain(dec.Candidate))

	// Disaster strikes 5 simulated seconds in: the path's second link dies.
	if err := net.ScheduleLinkOutage(simnet.LinkOutage{
		A: dec.Path.Hops[1].IA, B: dec.Path.Hops[2].IA,
		Start: net.Now() + 5*time.Second, End: net.Now() + 24*time.Hour,
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheduled outage on %s--%s in 5s of simulated time\n\n",
		dec.Path.Hops[1].IA, dec.Path.Hops[2].IA)

	events, final, err := w.Watch(context.Background(), topology.AWSIreland, intent, 5, 3*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	for _, ev := range events {
		status := "healthy"
		if ev.LossPct > 0 {
			status = fmt.Sprintf("loss %.0f%%", ev.LossPct)
		}
		if ev.Reason != "" {
			status += " — " + ev.Reason
		}
		fmt.Printf("round %d on %-5s: %s\n", ev.Round, ev.PathID, status)
	}
	fmt.Printf("\nfinal path: %s\n", selection.Explain(final.Candidate))
}
