// Low-latency / low-jitter selection for a real-time application: the
// paper's §6.1 use case — "exclude routes passing through these ASes
// [16-ffaa:0:1004, 16-ffaa:0:1007] for streaming audio and video services,
// as well as, for example, VoIP calls, in which latency consistency is more
// important than low latency values".
//
// The program measures every path to AWS Ireland, then compares three user
// requests: plain lowest latency, most stable (VoIP), and a hard latency
// budget for interactive gaming.
//
// Run with:
//
//	go run ./examples/lowlatency
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"github.com/upin/scionpath/internal/docdb"
	"github.com/upin/scionpath/internal/measure"
	"github.com/upin/scionpath/internal/sciond"
	"github.com/upin/scionpath/internal/selection"
	"github.com/upin/scionpath/internal/simnet"
	"github.com/upin/scionpath/internal/topology"
)

func main() {
	topo := topology.DefaultWorld()
	net := simnet.New(topo, simnet.Options{Seed: 7})
	daemon, err := sciond.New(topo, net, topology.MyAS)
	if err != nil {
		log.Fatal(err)
	}
	db := docdb.MustOpen()
	if err := measure.SeedServers(db, topo); err != nil {
		log.Fatal(err)
	}
	suite := &measure.Suite{DB: db, Daemon: daemon}

	servers, _ := measure.Servers(db)
	var irelandID int
	for _, s := range servers {
		if s.Address.IA == topology.AWSIreland {
			irelandID = s.ID
		}
	}

	fmt.Println("measuring all paths to AWS Ireland (5 iterations, latency only)...")
	if _, err := suite.Run(context.Background(), measure.RunOpts{
		Iterations:    5,
		ServerIDs:     []int{irelandID},
		PingCount:     20,
		PingInterval:  10 * time.Millisecond,
		SkipBandwidth: true,
	}); err != nil {
		log.Fatal(err)
	}

	engine := selection.New(db, topo)

	fmt.Println("\n1) video call — most stable path (latency consistency first):")
	stable, err := engine.Best(context.Background(), irelandID, selection.Request{Objective: selection.MostStable})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  ", selection.Explain(stable))

	fmt.Println("\n2) online gaming — hard 50 ms budget, lowest latency wins:")
	gaming, err := engine.Best(context.Background(), irelandID, selection.Request{
		Objective:    selection.LowestLatency,
		MaxLatencyMs: 50,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  ", selection.Explain(gaming))

	fmt.Println("\n3) the same request with the jittery long-distance ASes excluded explicitly:")
	expl, err := engine.Select(context.Background(), irelandID, selection.Request{
		Objective:   selection.LowestLatency,
		ExcludeASes: []string{"16-ffaa:0:1004", "16-ffaa:0:1007"},
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, c := range expl {
		if i == 3 {
			break
		}
		fmt.Printf("   %d. %s\n", i+1, selection.Explain(c))
	}

	fmt.Println("\nfull ranking by jitter (mdev), showing why 1004/1007 paths lose:")
	byJitter, _ := engine.Select(context.Background(), irelandID, selection.Request{Objective: selection.MostStable})
	for _, c := range byJitter {
		fmt.Printf("   %-6s jitter %6.2f ms  latency %7.1f ms  ISDs {%s}\n",
			c.PathID, c.JitterMs, c.AvgLatencyMs, strings.Join(c.ISDs, ","))
	}
}
