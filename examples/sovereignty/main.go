// Sovereignty-driven selection: the paper's motivating UPIN use case —
// users excluding "devices ... for geographical or sovereignty reasons"
// (abstract) and "operators that run them" (§1).
//
// A user in Zurich wants to reach the AWS Ireland server but insists their
// traffic never crosses hardware in the United States, then tightens the
// request to specific ISDs and operators, watching how the candidate set
// shrinks.
//
// Run with:
//
//	go run ./examples/sovereignty
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/upin/scionpath/internal/docdb"
	"github.com/upin/scionpath/internal/measure"
	"github.com/upin/scionpath/internal/sciond"
	"github.com/upin/scionpath/internal/selection"
	"github.com/upin/scionpath/internal/simnet"
	"github.com/upin/scionpath/internal/topology"
)

func main() {
	topo := topology.DefaultWorld()
	net := simnet.New(topo, simnet.Options{Seed: 11})
	daemon, err := sciond.New(topo, net, topology.MyAS)
	if err != nil {
		log.Fatal(err)
	}
	db := docdb.MustOpen()
	if err := measure.SeedServers(db, topo); err != nil {
		log.Fatal(err)
	}
	suite := &measure.Suite{DB: db, Daemon: daemon}

	servers, _ := measure.Servers(db)
	var irelandID int
	for _, s := range servers {
		if s.Address.IA == topology.AWSIreland {
			irelandID = s.ID
		}
	}
	if _, err := suite.Run(context.Background(), measure.RunOpts{
		Iterations:    4,
		ServerIDs:     []int{irelandID},
		PingCount:     12,
		PingInterval:  10 * time.Millisecond,
		SkipBandwidth: true,
	}); err != nil {
		log.Fatal(err)
	}

	engine := selection.New(db, topo)
	show := func(title string, req selection.Request) {
		cands, err := engine.Select(context.Background(), irelandID, req)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s -> %d candidate paths\n", title, len(cands))
		for i, c := range cands {
			if i == 2 {
				fmt.Println("    ...")
				break
			}
			fmt.Printf("    %d. %s\n", i+1, selection.Explain(c))
		}
		fmt.Println()
	}

	show("no constraints", selection.Request{})
	show("exclude country: United States", selection.Request{
		ExcludeCountries: []string{"United States"},
	})
	show("exclude country: United States + Singapore", selection.Request{
		ExcludeCountries: []string{"United States", "Singapore"},
	})
	show("exclude ISD 19 (stay out of the EU research plane)", selection.Request{
		ExcludeISDs: []string{"19"},
	})
	show("exclude operator: GEANT", selection.Request{
		ExcludeOperators: []string{"GEANT"},
	})

	// An impossible request: the destination itself is in Ireland.
	_, err = engine.Best(context.Background(), irelandID, selection.Request{
		ExcludeCountries: []string{"Ireland"},
	})
	fmt.Printf("exclude country: Ireland -> %v (the destination lives there)\n", err)
}
