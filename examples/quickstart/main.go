// Quickstart: the full pipeline of the paper in one program — build the
// SCIONLab-like world, attach MY_AS, collect paths to every destination,
// run a short measurement campaign against AWS Ireland, and ask the
// selection engine for the best low-latency path.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/upin/scionpath/internal/docdb"
	"github.com/upin/scionpath/internal/measure"
	"github.com/upin/scionpath/internal/sciond"
	"github.com/upin/scionpath/internal/selection"
	"github.com/upin/scionpath/internal/simnet"
	"github.com/upin/scionpath/internal/topology"
)

func main() {
	// 1. The world: 35 SCIONLab ASes plus our own AS behind ETHZ-AP.
	topo := topology.DefaultWorld()
	net := simnet.New(topo, simnet.Options{Seed: 42})
	daemon, err := sciond.New(topo, net, topology.MyAS)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("local address: %s\n", daemon.Address())
	fmt.Printf("world: %d ASes in ISDs %v, %d testable servers\n\n",
		len(topo.ASes()), topo.ISDs(), len(topo.Servers()))

	// 2. The database and the availableServers catalogue.
	db := docdb.MustOpen()
	if err := measure.SeedServers(db, topo); err != nil {
		log.Fatal(err)
	}

	// 3. Paths collection: showpaths --extended -m 40 to each server,
	//    keeping paths with hops <= min+1.
	suite := &measure.Suite{DB: db, Daemon: daemon}
	colRep, err := measure.CollectPaths(context.Background(), db, daemon, measure.CollectOpts{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collected %d paths (of %d discovered) across %d destinations\n",
		colRep.PathsRetained, colRep.PathsDiscovered, colRep.ServersQueried)

	// 4. Measure the Ireland destination: ping + bwtest per path.
	servers, err := measure.Servers(db)
	if err != nil {
		log.Fatal(err)
	}
	irelandID := 0
	for _, s := range servers {
		if s.Address.IA == topology.AWSIreland {
			irelandID = s.ID
		}
	}
	runRep, err := suite.Run(context.Background(), measure.RunOpts{
		Iterations:   3,
		Skip:         true, // paths already collected above
		ServerIDs:    []int{irelandID},
		PingCount:    10,
		PingInterval: 20 * time.Millisecond,
		BwDuration:   time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured %d paths, stored %d stats documents (simulated time %v)\n\n",
		runRep.PathsTested, runRep.StatsStored, net.Now().Round(time.Second))

	// 5. User-driven path control: ask for the best low-latency path.
	engine := selection.New(db, topo)
	best, err := engine.Best(context.Background(), irelandID, selection.Request{Objective: selection.LowestLatency})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("best low-latency path to AWS Ireland:")
	fmt.Println(" ", selection.Explain(best))
	fmt.Println("  sequence:", best.Sequence)
}
