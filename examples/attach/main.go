// Attaching your own AS: the §3.2 workflow. A second experimenter defines
// an AS, attaches it to the Magdeburg attachment point (any AP works), and
// immediately has paths from MY_AS measured to it via the standard
// pipeline — then the topology is exported to JSON and reloaded, the way
// SCIONLab hands out generated configuration.
//
// Run with:
//
//	go run ./examples/attach
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"github.com/upin/scionpath/internal/addr"
	"github.com/upin/scionpath/internal/sciond"
	"github.com/upin/scionpath/internal/scmp"
	"github.com/upin/scionpath/internal/simnet"
	"github.com/upin/scionpath/internal/topology"
)

func main() {
	topo := topology.DefaultWorld()

	fmt.Println("available attachment points:")
	for _, ap := range topo.AttachmentPoints() {
		fmt.Printf("  %-16s %-16s %s, %s\n", ap.IA, ap.Name, ap.Site.Name, ap.Site.Country)
	}

	// Define and attach the new AS (the web-interface step of §3.2).
	peer := addr.MustParseIA("19-ffaa:1:42")
	link, err := topo.AttachUserAS(topology.UserASSpec{
		IA:   peer,
		Name: "PEER_AS",
		AP:   topology.MagdeburgAP,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nattached %s behind %s (access %.0f Mbps down / %.0f Mbps up)\n",
		peer, topology.MagdeburgAP, link.CapacityAtoB/1e6, link.CapacityBtoA/1e6)

	// The generated configuration: export and reload the topology.
	var buf bytes.Buffer
	if err := topo.WriteJSON(&buf); err != nil {
		log.Fatal(err)
	}
	reloaded, err := topology.ReadJSON(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topology exported to JSON (%d bytes) and reloaded: %d ASes\n",
		buf.Len(), len(reloaded.ASes()))

	// Paths to the new AS appear without any further setup: beaconing
	// discovers it behind the AP.
	net := simnet.New(reloaded, simnet.Options{Seed: 4})
	daemon, err := sciond.New(reloaded, net, topology.MyAS)
	if err != nil {
		log.Fatal(err)
	}
	paths, err := daemon.ShowPaths(peer, sciond.ShowPathsOpts{MaxPaths: 10, Extended: true, Probe: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npaths from MY_AS to the new AS:\n%s\n", sciond.FormatPaths(paths, true))

	stats, err := scmp.Ping(net, paths[0], scmp.PingOpts{Count: 10, Interval: 20 * time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ping over the best path: %s\n", stats)
}
