package main

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"
)

// capture runs f with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, f func() int) (string, int) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	code := f()
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	io.Copy(&buf, r)
	return buf.String(), code
}

func TestShowPathsBasic(t *testing.T) {
	out, code := capture(t, func() int {
		return run([]string{"-d", "16-ffaa:0:1002", "-m", "40", "-extended"})
	})
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"Available paths to 16-ffaa:0:1002", "Hops: 6", "MTU:", "Status: alive"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestShowPathsDefaultLimit(t *testing.T) {
	out, code := capture(t, func() int {
		return run([]string{"-d", "1"})
	})
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if n := strings.Count(out, "\n") - 1; n > 10 {
		t.Errorf("%d paths despite the default limit of 10", n)
	}
}

func TestShowPathsACL(t *testing.T) {
	out, code := capture(t, func() int {
		return run([]string{"-d", "16-ffaa:0:1002", "-m", "40",
			"-acl", "- 16-ffaa:0:1004#0, - 16-ffaa:0:1007#0"})
	})
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if strings.Contains(out, "16-ffaa:0:1004") || strings.Contains(out, "16-ffaa:0:1007") {
		t.Errorf("ACL-denied transit in output:\n%s", out)
	}
	if _, code := capture(t, func() int {
		return run([]string{"-d", "1", "-acl", "garbage"})
	}); code == 0 {
		t.Error("bad ACL accepted")
	}
}

func TestShowPathsErrors(t *testing.T) {
	if _, code := capture(t, func() int { return run([]string{}) }); code == 0 {
		t.Error("missing destination accepted")
	}
	if _, code := capture(t, func() int { return run([]string{"-d", "zz"}) }); code == 0 {
		t.Error("bad destination accepted")
	}
	if _, code := capture(t, func() int { return run([]string{"-badflag"}) }); code == 0 {
		t.Error("bad flag accepted")
	}
	if _, code := capture(t, func() int { return run([]string{"-d", "1", "-m", "-3"}) }); code == 0 {
		t.Error("negative limit accepted")
	}
}
