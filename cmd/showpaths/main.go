// Command showpaths mirrors `scion showpaths`: it lists the available
// paths from MY_AS to a destination, ranked by hop count, optionally with
// the --extended metadata block (MTU, status, expected latency) the
// paper's collector parses (§3.3).
//
// Usage:
//
//	showpaths -d 16-ffaa:0:1002 --extended -m 40
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/upin/scionpath/internal/cliutil"
	"github.com/upin/scionpath/internal/pathmgr"
	"github.com/upin/scionpath/internal/sciond"
)

func main() { os.Exit(run(os.Args[1:])) }

func run(args []string) int {
	fs := flag.NewFlagSet("showpaths", flag.ContinueOnError)
	var (
		dest     = fs.String("d", "", "destination: ISD-AS, host address or server id (required)")
		maxPaths = fs.Int("m", sciond.DefaultMaxPaths, "maximum number of paths to display")
		extended = fs.Bool("extended", false, "show extended path metadata")
		probe    = fs.Bool("probe", true, "probe path liveness")
		aclStr   = fs.String("acl", "", "path policy, e.g. '- 16-ffaa:0:1004#0'")
		seed     = fs.Int64("seed", 1, "simulation seed")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *dest == "" {
		fs.Usage()
		return 2
	}
	w, err := cliutil.NewWorld(*seed, "", "")
	if err != nil {
		return cliutil.Fatalf(os.Stderr, "showpaths", "%v", err)
	}
	ia, _, err := w.ResolveDestination(*dest)
	if err != nil {
		return cliutil.Fatalf(os.Stderr, "showpaths", "%v", err)
	}
	var acl *pathmgr.ACL
	if *aclStr != "" {
		acl, err = pathmgr.ParseACL(*aclStr)
		if err != nil {
			return cliutil.Fatalf(os.Stderr, "showpaths", "%v", err)
		}
	}
	paths, err := w.Daemon.ShowPaths(ia, sciond.ShowPathsOpts{
		MaxPaths: *maxPaths, Extended: *extended, Probe: *probe, ACL: acl,
	})
	if err != nil {
		return cliutil.Fatalf(os.Stderr, "showpaths", "%v", err)
	}
	fmt.Print(sciond.FormatPaths(paths, *extended))
	return 0
}
