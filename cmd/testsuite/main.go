// Command testsuite is the Go port of the paper's test_suite.sh wrapper
// (§5.1): it collects paths to every destination in availableServers and
// runs the measurement campaign, storing one stats document per path per
// iteration in the database. The campaign runs on the parallel, resumable
// engine (docs/CAMPAIGN.md): work is sharded across -workers, completed
// cells are checkpointed, and an interrupted run (Ctrl-C) can be resumed
// with -resume without re-measuring or duplicating data.
//
// Usage (mirrors "./test_suite.sh 100 --skip"):
//
//	testsuite 100 --skip
//	testsuite 20 --some-only --db stats.jsonl
//	testsuite 5 --servers 2,5,9 --target 150Mbps
//	testsuite 20 --db stats.jsonl --workers 4       # parallel campaign
//	testsuite 20 --db stats.jsonl --resume          # continue after Ctrl-C
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/upin/scionpath/internal/bwtest"
	chaospkg "github.com/upin/scionpath/internal/chaos"
	"github.com/upin/scionpath/internal/cliutil"
	"github.com/upin/scionpath/internal/measure"
)

func main() { os.Exit(run(os.Args[1:])) }

func run(args []string) int {
	fs := flag.NewFlagSet("testsuite", flag.ContinueOnError)
	var (
		skip     = fs.Bool("skip", false, "bypass paths collection (paths must already be collected)")
		someOnly = fs.Bool("some-only", false, "test only the first destination")
		servers  = fs.String("servers", "", "comma-separated server ids to test (default all)")
		dbPath   = fs.String("db", "", "database path for persistent storage (default in-memory)")
		backend  = fs.String("docdb-backend", "", "docdb storage backend: jsonl or segment (auto-detect when empty)")
		target   = fs.String("target", "12Mbps", "bandwidth target for the bwtester runs")
		pingN    = fs.Int("ping-count", 30, "echo packets per latency measurement")
		pingIvl  = fs.Duration("ping-interval", 100*time.Millisecond, "echo packet interval")
		bwDur    = fs.Duration("bw-duration", 3*time.Second, "duration of each bandwidth flow")
		noBw     = fs.Bool("no-bandwidth", false, "skip the bandwidth measurements")
		csvPath  = fs.String("csv", "", "export the stored statistics to this CSV file afterwards")
		seed     = fs.Int64("seed", 1, "simulation seed")
		workers  = fs.Int("workers", 1, "campaign workers (0 = legacy strictly sequential runner)")
		resume   = fs.Bool("resume", false, "resume an interrupted campaign from its checkpoints (needs --db)")
		chaos    = fs.Int64("chaos-seed", 0, "run the chaos harness for this seed instead of a campaign (see docs/CHAOS.md)")
	)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: testsuite <iterations> [flags]\n")
		fmt.Fprintf(os.Stderr, "       testsuite --chaos-seed <seed> [--db journal.jsonl] [--docdb-backend segment]\n")
		fs.PrintDefaults()
	}
	// Accept the positional <iterations> before or after flags.
	var positional []string
	var flagArgs []string
	for _, a := range args {
		if !strings.HasPrefix(a, "-") && len(positional) == 0 && len(flagArgs) == 0 {
			positional = append(positional, a)
			continue
		}
		flagArgs = append(flagArgs, a)
	}
	if err := fs.Parse(flagArgs); err != nil {
		return 2
	}
	positional = append(positional, fs.Args()...)
	if *chaos != 0 {
		if len(positional) != 0 {
			fs.Usage()
			return 2
		}
		return runChaos(*chaos, *dbPath, *backend)
	}
	if len(positional) != 1 {
		fs.Usage()
		return 2
	}
	iterations, err := strconv.Atoi(positional[0])
	if err != nil || iterations < 1 {
		return cliutil.Fatalf(os.Stderr, "testsuite", "iterations %q must be a positive integer", positional[0])
	}
	targetBps, err := parseTarget(*target)
	if err != nil {
		return cliutil.Fatalf(os.Stderr, "testsuite", "%v", err)
	}
	if *resume && *dbPath == "" {
		return cliutil.Fatalf(os.Stderr, "testsuite", "--resume needs --db (checkpoints live in the database)")
	}

	w, err := cliutil.NewWorld(*seed, *dbPath, *backend)
	if err != nil {
		return cliutil.Fatalf(os.Stderr, "testsuite", "%v", err)
	}
	defer w.Close()

	var ids []int
	if *servers != "" {
		for _, part := range strings.Split(*servers, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return cliutil.Fatalf(os.Stderr, "testsuite", "bad server id %q", part)
			}
			ids = append(ids, id)
		}
	}

	// Ctrl-C cancels the context; the campaign engine finishes in-flight
	// cells, checkpoints them, and returns so --resume can pick up.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	suite := &measure.Suite{DB: w.DB, Daemon: w.Daemon}
	opts := measure.RunOpts{
		Iterations:    iterations,
		Skip:          *skip,
		SomeOnly:      *someOnly,
		ServerIDs:     ids,
		PingCount:     *pingN,
		PingInterval:  *pingIvl,
		BwDuration:    *bwDur,
		BwTargetBps:   targetBps,
		SkipBandwidth: *noBw,
	}
	opts.Campaign.Workers = *workers
	opts.Campaign.Resume = *resume
	rep, err := suite.Run(ctx, opts)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Printf("test-suite interrupted: %d stats stored so far; rerun with --resume to continue\n",
				rep.StatsStored)
			return 130
		}
		return cliutil.Fatalf(os.Stderr, "testsuite", "%v", err)
	}
	fmt.Printf("test-suite finished: %d iterations x %d destinations\n", rep.Iterations, rep.Destinations)
	fmt.Printf("  paths tested:      %d\n", rep.PathsTested)
	fmt.Printf("  stats stored:      %d\n", rep.StatsStored)
	fmt.Printf("  failures:          %d\n", rep.Failures)
	fmt.Printf("  unresolved paths:  %d\n", rep.UnresolvedPaths)
	fmt.Printf("  simulated time:    %v\n", rep.SimulatedTime.Round(time.Second))
	if rep.SkippedCells > 0 {
		fmt.Printf("  resumed cells:     %d (already checkpointed)\n", rep.SkippedCells)
	}
	if *dbPath != "" {
		fmt.Printf("  database:          %s\n", *dbPath)
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return cliutil.Fatalf(os.Stderr, "testsuite", "csv: %v", err)
		}
		rows, err := measure.ExportStatsCSV(w.DB, f, 0)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return cliutil.Fatalf(os.Stderr, "testsuite", "csv: %v", err)
		}
		fmt.Printf("  csv export:        %s (%d rows)\n", *csvPath, rows)
	}
	return 0
}

// runChaos executes one seeded chaotic campaign (crashes, resumes, write
// faults, log truncation, network weather, lookup failures) against its
// fault-free oracle and verifies the harness invariants, on the selected
// storage backend. With an empty dbPath the log lives in a temporary
// directory; a given dbPath must not exist yet (the harness owns the log
// from birth, including the damage it inflicts on it).
func runChaos(seed int64, dbPath, backend string) int {
	path := dbPath
	if path == "" {
		dir, err := os.MkdirTemp("", "chaos-*")
		if err != nil {
			return cliutil.Fatalf(os.Stderr, "testsuite", "chaos: %v", err)
		}
		defer os.RemoveAll(dir)
		path = filepath.Join(dir, "journal.jsonl")
	} else if _, err := os.Stat(path); err == nil {
		return cliutil.Fatalf(os.Stderr, "testsuite", "chaos: %s already exists; the harness needs a fresh database path", path)
	}
	res, err := chaospkg.Run(context.Background(), seed, path, backend)
	if err != nil {
		return cliutil.Fatalf(os.Stderr, "testsuite", "%v", err)
	}
	defer res.Close()
	verr := chaospkg.Verify(context.Background(), res)
	fmt.Printf("chaos seed %d: %d round(s), %d crash(es) planned, %d write fault(s) planned\n",
		seed, res.Rounds, len(res.Plan.Crashes), len(res.Plan.Writes))
	fmt.Printf("  network weather:   %d outage(s), %d episode(s)\n",
		len(res.Plan.Network.Outages), len(res.Plan.Network.Episodes))
	fmt.Printf("  stats stored:      %d (oracle %d)\n", res.Report.StatsStored, res.OracleReport.StatsStored)
	fmt.Printf("  cell failures:     %d\n", res.Report.Failures)
	if dbPath != "" {
		fmt.Printf("  journal:           %s\n", dbPath)
	}
	if verr != nil {
		fmt.Fprintf(os.Stderr, "testsuite: chaos: INVARIANT VIOLATION: %v\n", verr)
		return 1
	}
	fmt.Println("  invariants:        all 4 hold")
	return 0
}

func parseTarget(s string) (float64, error) {
	p, err := bwtest.ParseParams("3,1000,?,"+s, 1472)
	if err != nil {
		return 0, fmt.Errorf("bad target %q", s)
	}
	return p.TargetBps, nil
}
