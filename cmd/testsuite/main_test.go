package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func capture(t *testing.T, f func() int) (string, int) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	code := f()
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	io.Copy(&buf, r)
	return buf.String(), code
}

func TestTestsuiteSomeOnly(t *testing.T) {
	out, code := capture(t, func() int {
		return run([]string{"2", "-some-only", "-ping-count", "3",
			"-ping-interval", "5ms", "-bw-duration", "200ms"})
	})
	if code != 0 {
		t.Fatalf("exit %d: %s", code, out)
	}
	for _, want := range []string{"2 iterations x 1 destinations", "stats stored:", "failures:          0"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTestsuitePersistsAndSkip(t *testing.T) {
	db := filepath.Join(t.TempDir(), "stats.jsonl")
	out, code := capture(t, func() int {
		return run([]string{"1", "-servers", "1", "-db", db,
			"-ping-count", "3", "-ping-interval", "5ms", "-no-bandwidth"})
	})
	if code != 0 {
		t.Fatalf("exit %d: %s", code, out)
	}
	if _, err := os.Stat(db); err != nil {
		t.Fatalf("journal missing: %v", err)
	}
	// Second run with --skip reuses the collected paths from the journal.
	out2, code2 := capture(t, func() int {
		return run([]string{"1", "-skip", "-servers", "1", "-db", db,
			"-ping-count", "3", "-ping-interval", "5ms", "-no-bandwidth"})
	})
	if code2 != 0 {
		t.Fatalf("skip run exit %d: %s", code2, out2)
	}
	if strings.Contains(out2, "paths tested:      0") {
		t.Errorf("skip run tested nothing:\n%s", out2)
	}
}

func TestTestsuiteCSVExport(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "out.csv")
	out, code := capture(t, func() int {
		return run([]string{"1", "-some-only", "-ping-count", "2",
			"-ping-interval", "2ms", "-no-bandwidth", "-csv", csv})
	})
	if code != 0 {
		t.Fatalf("exit %d: %s", code, out)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "path_id") {
		t.Errorf("csv content:\n%s", string(data[:min(len(data), 200)]))
	}
	if !strings.Contains(out, "csv export:") {
		t.Errorf("summary missing csv line:\n%s", out)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestTestsuiteIterationsPositionAfterFlags(t *testing.T) {
	// The wrapper accepts "./test_suite.sh 100 --skip" style ordering both ways.
	_, code := capture(t, func() int {
		return run([]string{"-some-only", "-ping-count", "2", "-ping-interval", "2ms", "-no-bandwidth", "1"})
	})
	if code != 0 {
		t.Fatalf("flags-first ordering rejected: exit %d", code)
	}
}

func TestTestsuiteErrors(t *testing.T) {
	for _, args := range [][]string{
		{},                     // no iterations
		{"0"},                  // zero iterations
		{"-1"},                 // negative (parsed as flag -> error)
		{"abc"},                // non-numeric
		{"1", "-target", "zz"}, // bad target
		{"1", "-servers", "x"}, // bad server list
		{"1", "2"},             // two positionals
	} {
		if _, code := capture(t, func() int { return run(args) }); code == 0 {
			t.Errorf("args %v accepted", args)
		}
	}
}
