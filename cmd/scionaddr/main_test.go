package main

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, f func() int) (string, int) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	code := f()
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	io.Copy(&buf, r)
	return buf.String(), code
}

func TestScionAddr(t *testing.T) {
	out, code := capture(t, func() int { return run(nil) })
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"17-ffaa:1:1,[127.0.0.1]", "MY_AS", "attachment point: 17-ffaa:0:1107"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestScionAddrBadFlag(t *testing.T) {
	if _, code := capture(t, func() int { return run([]string{"-zz"}) }); code == 0 {
		t.Error("bad flag accepted")
	}
}
