// Command scionaddr mirrors `scion address`: it prints the relevant SCION
// address information for the local host — "our AS where we launch commands
// from" (§3.3) — plus a summary of its attachment.
//
// Usage:
//
//	scionaddr
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/upin/scionpath/internal/cliutil"
	"github.com/upin/scionpath/internal/topology"
)

func main() { os.Exit(run(os.Args[1:])) }

func run(args []string) int {
	fs := flag.NewFlagSet("scionaddr", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "simulation seed")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	w, err := cliutil.NewWorld(*seed, "", "")
	if err != nil {
		return cliutil.Fatalf(os.Stderr, "scionaddr", "%v", err)
	}
	local := w.Daemon.LocalIA()
	as := w.Topo.AS(local)
	fmt.Println(w.Daemon.Address())
	fmt.Printf("ISD: %d  AS: %s  (%s, %s)\n", local.ISD, local.AS, as.Name, as.Site.Country)
	if l := w.Topo.LinkBetween(topology.ETHZAP, local); l != nil {
		fmt.Printf("attachment point: %s (%s), access %s down / %s up\n",
			topology.ETHZAP, w.Topo.AS(topology.ETHZAP).Name,
			mbps(l.CapacityAtoB), mbps(l.CapacityBtoA))
	}
	return 0
}

func mbps(bps float64) string { return fmt.Sprintf("%.0f Mbps", bps/1e6) }
