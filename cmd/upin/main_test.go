package main

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, f func() int) (string, int) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	code := f()
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	io.Copy(&buf, r)
	return buf.String(), code
}

func TestUpinEndToEnd(t *testing.T) {
	out, code := capture(t, func() int {
		return run([]string{"-d", "1", "-profile", "voip", "-iterations", "2",
			"-exclude-country", "United States"})
	})
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, want := range []string{
		"controller decision", "installed sequence", "traced", "verifier: satisfied=true",
		"top recommendations (voip profile)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestUpinNarrowDomainReportsUnverifiable(t *testing.T) {
	out, code := capture(t, func() int {
		return run([]string{"-d", "1", "-domain", "17", "-iterations", "2"})
	})
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "unverifiable (outside UPIN domain)") {
		t.Errorf("no unverifiable hops reported despite narrow domain:\n%s", out)
	}
}

func TestUpinErrors(t *testing.T) {
	for _, args := range [][]string{
		{},                       // no destination
		{"-d", "zz"},             // bad destination
		{"-d", "16-ffaa:0:1004"}, // not a server
		{"-d", "1", "-profile", "warp"},
	} {
		if _, code := capture(t, func() int { return run(args) }); code == 0 {
			t.Errorf("args %v accepted", args)
		}
	}
}
