// Command upin is the UPIN front-end (§2.1): it takes a user intent,
// measures the destination if the database is empty, lets the Path
// Controller decide a path, traces the installed path, verifies the intent
// against the trace, and prints ranked recommendations (the paper's
// future-work feature).
//
// Usage:
//
//	upin -d 1 -exclude-country 'United States' -profile voip
//	upin -d 1 -db stats.jsonl -profile bulk -domain 16,17,19
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/upin/scionpath/internal/addr"
	"github.com/upin/scionpath/internal/cliutil"
	"github.com/upin/scionpath/internal/docdb"
	"github.com/upin/scionpath/internal/measure"
	"github.com/upin/scionpath/internal/selection"
	"github.com/upin/scionpath/internal/upin"
)

func main() { os.Exit(run(os.Args[1:])) }

func run(args []string) int {
	fs := flag.NewFlagSet("upin", flag.ContinueOnError)
	var (
		dest      = fs.String("d", "", "destination: server id, ISD-AS or host address (required)")
		dbPath    = fs.String("db", "", "measurement database (in-memory campaign when empty)")
		dbBackend = fs.String("docdb-backend", "", "docdb storage backend: jsonl or segment (auto-detect when empty)")
		profile   = fs.String("profile", "browsing", "recommendation profile: voip | streaming | bulk | browsing")
		exCountry = fs.String("exclude-country", "", "comma-separated countries to avoid")
		exISD     = fs.String("exclude-isd", "", "comma-separated ISDs to avoid")
		domain    = fs.String("domain", "16,17,19", "comma-separated ISDs forming the UPIN domain")
		iters     = fs.Int("iterations", 3, "measurement iterations when the DB is empty")
		seed      = fs.Int64("seed", 1, "simulation seed")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *dest == "" {
		fs.Usage()
		return 2
	}
	weights, err := profileWeights(*profile)
	if err != nil {
		return cliutil.Fatalf(os.Stderr, "upin", "%v", err)
	}

	w, err := cliutil.NewWorld(*seed, *dbPath, *dbBackend)
	if err != nil {
		return cliutil.Fatalf(os.Stderr, "upin", "%v", err)
	}
	defer w.Close()
	ia, serverID, err := w.ResolveDestination(*dest)
	if err != nil {
		return cliutil.Fatalf(os.Stderr, "upin", "%v", err)
	}
	if serverID == 0 {
		return cliutil.Fatalf(os.Stderr, "upin", "destination %s is not a catalogued server", *dest)
	}

	// Measure on demand so the tool works out of the box.
	existing := w.DB.Collection(measure.ColStats).Find(docdb.Query{
		Filter: docdb.Eq(measure.FServerID, serverID), Limit: 1,
	})
	if len(existing) == 0 {
		fmt.Printf("no measurements for server %d yet; running a %d-iteration campaign...\n", serverID, *iters)
		suite := &measure.Suite{DB: w.DB, Daemon: w.Daemon}
		if _, err := suite.Run(context.Background(), measure.RunOpts{
			Iterations: *iters, ServerIDs: []int{serverID},
			PingCount: 10, PingInterval: 20 * time.Millisecond,
			BwDuration: 500 * time.Millisecond,
		}); err != nil {
			return cliutil.Fatalf(os.Stderr, "upin", "measurement: %v", err)
		}
	}

	intent := upin.Intent{
		ServerID: serverID,
		Request: selection.Request{
			ExcludeCountries: splitList(*exCountry),
			ExcludeISDs:      splitList(*exISD),
		},
	}
	explorer := upin.NewDomainExplorer(w.Topo, parseISDs(*domain))
	engine := selection.New(w.DB, w.Topo)

	// 1. Controller: decide.
	ctrl := upin.NewController(w.Daemon, engine, explorer)
	dec, err := ctrl.Decide(context.Background(), ia, intent)
	if err != nil {
		return cliutil.Fatalf(os.Stderr, "upin", "%v", err)
	}
	fmt.Printf("\ncontroller decision: %s\n", selection.Explain(dec.Candidate))
	fmt.Printf("  installed sequence: %s\n", dec.Path.Sequence())

	// 2. Tracer: observe.
	trace, err := upin.NewTracer(w.Net).Trace(dec, 3)
	if err != nil {
		return cliutil.Fatalf(os.Stderr, "upin", "%v", err)
	}
	fmt.Printf("\ntraced %d hops\n", len(trace.Hops))

	// 3. Verifier: check the intent.
	verdict := upin.NewVerifier(explorer).Verify(intent, trace)
	fmt.Printf("verifier: satisfied=%v\n", verdict.Satisfied)
	for _, v := range verdict.Violations {
		fmt.Printf("  violation: %s\n", v)
	}
	for _, ia := range verdict.Unverifiable {
		fmt.Printf("  unverifiable (outside UPIN domain): %s\n", ia)
	}

	// 4. Recommendations.
	recs, err := upin.Recommend(context.Background(), engine, intent, weights, 3)
	if err != nil {
		return cliutil.Fatalf(os.Stderr, "upin", "%v", err)
	}
	fmt.Printf("\ntop recommendations (%s profile):\n", *profile)
	for i, r := range recs {
		fmt.Printf("  %d. score %.2f — path %s — %s\n", i+1, r.Score, r.Candidate.PathID, r.Reason)
	}
	if !verdict.Satisfied {
		return 1
	}
	return 0
}

func profileWeights(name string) (upin.Weights, error) {
	switch strings.ToLower(name) {
	case "voip":
		return upin.ProfileVoIP, nil
	case "streaming":
		return upin.ProfileStreaming, nil
	case "bulk":
		return upin.ProfileBulk, nil
	case "browsing":
		return upin.ProfileBrowsing, nil
	default:
		return upin.Weights{}, fmt.Errorf("unknown profile %q", name)
	}
}

func parseISDs(s string) []addr.ISD {
	var out []addr.ISD
	for _, part := range strings.Split(s, ",") {
		if v, err := strconv.Atoi(strings.TrimSpace(part)); err == nil && v > 0 {
			out = append(out, addr.ISD(v))
		}
	}
	return out
}

func splitList(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if t := strings.TrimSpace(p); t != "" {
			out = append(out, t)
		}
	}
	return out
}
