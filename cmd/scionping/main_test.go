package main

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, f func() int) (string, int) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	code := f()
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	io.Copy(&buf, r)
	return buf.String(), code
}

func TestPingDefaultPath(t *testing.T) {
	out, code := capture(t, func() int {
		return run([]string{"-c", "5", "-interval", "10ms", "16-ffaa:0:1002"})
	})
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "5 packets transmitted") {
		t.Errorf("output:\n%s", out)
	}
	if !strings.Contains(out, "PING 16-ffaa:0:1002") {
		t.Errorf("missing header:\n%s", out)
	}
}

func TestPingInteractive(t *testing.T) {
	out, code := capture(t, func() int {
		return run([]string{"-interactive", "-path", "2", "-c", "3", "-interval", "5ms", "1"})
	})
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "Available paths") || !strings.Contains(out, "Using path 2") {
		t.Errorf("interactive output:\n%s", out)
	}
}

func TestPingWithSequence(t *testing.T) {
	// First fetch a valid sequence via interactive listing, then pin it.
	out, code := capture(t, func() int {
		return run([]string{"-c", "2", "-interval", "5ms", "-sequence",
			"17-ffaa:1:1#1 17-ffaa:0:1107#3,1 17-ffaa:0:1102#2,1 17-ffaa:0:1101#5,2 16-ffaa:0:1001#1,5 16-ffaa:0:1002#1",
			"16-ffaa:0:1002"})
	})
	if code != 0 {
		t.Fatalf("exit %d: %s", code, out)
	}
	if !strings.Contains(out, "2 packets transmitted") {
		t.Errorf("output:\n%s", out)
	}
}

func TestPingWithGlobSequence(t *testing.T) {
	// Partial pin: any path crossing ISD 19 on the way to Ireland.
	out, code := capture(t, func() int {
		return run([]string{"-c", "2", "-interval", "5ms",
			"-sequence", "17-ffaa:1:1 * 19-0 * 16-ffaa:0:1002",
			"16-ffaa:0:1002"})
	})
	if code != 0 {
		t.Fatalf("exit %d: %s", code, out)
	}
	if !strings.Contains(out, "19-ffaa:0:1301") {
		t.Errorf("resolved path does not cross ISD 19:\n%s", out)
	}
}

func TestPingErrors(t *testing.T) {
	cases := [][]string{
		{},                                    // no destination
		{"a", "b"},                            // too many
		{"-sequence", "%%", "1"},              // bad sequence
		{"-sequence", "1-0#0", "1"},           // unresolvable sequence
		{"-interactive", "-path", "999", "1"}, // out-of-range path
		{"zz"},                                // bad destination
	}
	for _, args := range cases {
		if _, code := capture(t, func() int { return run(args) }); code == 0 {
			t.Errorf("args %v accepted", args)
		}
	}
}
