// Command scionping mirrors `scion ping`: SCMP echo over a chosen path,
// with the --count, --interval and --sequence flags the paper's test-suite
// drives (§5.3), plus an --interactive mode that lists the available paths
// and lets the user pick one — the user-driven path control primitive.
//
// Usage:
//
//	scionping 16-ffaa:0:1002 -c 30 --interval 100ms
//	scionping 16-ffaa:0:1002 --interactive --path 3
//	scionping 16-ffaa:0:1002 --sequence '17-ffaa:1:1#1 ...'
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/upin/scionpath/internal/cliutil"
	"github.com/upin/scionpath/internal/pathmgr"
	"github.com/upin/scionpath/internal/sciond"
	"github.com/upin/scionpath/internal/scmp"
)

func main() { os.Exit(run(os.Args[1:])) }

func run(args []string) int {
	fs := flag.NewFlagSet("scionping", flag.ContinueOnError)
	var (
		count       = fs.Int("c", 30, "number of SCMP echo packets (--count)")
		interval    = fs.Duration("interval", 100*time.Millisecond, "inter-packet interval")
		sequence    = fs.String("sequence", "", "hop-predicate sequence pinning the path")
		interactive = fs.Bool("interactive", false, "list paths and select with --path")
		pathIdx     = fs.Int("path", 0, "path index for --interactive")
		seed        = fs.Int64("seed", 1, "simulation seed")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "scionping: exactly one destination required")
		return 2
	}
	w, err := cliutil.NewWorld(*seed, "", "")
	if err != nil {
		return cliutil.Fatalf(os.Stderr, "scionping", "%v", err)
	}
	ia, _, err := w.ResolveDestination(fs.Arg(0))
	if err != nil {
		return cliutil.Fatalf(os.Stderr, "scionping", "%v", err)
	}

	var path *pathmgr.Path
	switch {
	case *sequence != "":
		seq, err := pathmgr.ParseSequence(*sequence)
		if err != nil {
			return cliutil.Fatalf(os.Stderr, "scionping", "%v", err)
		}
		path, err = w.Daemon.ResolveSequence(ia, seq)
		if err != nil {
			return cliutil.Fatalf(os.Stderr, "scionping", "%v", err)
		}
	case *interactive:
		paths, err := w.Daemon.ShowPaths(ia, sciond.ShowPathsOpts{MaxPaths: 40, Probe: true})
		if err != nil {
			return cliutil.Fatalf(os.Stderr, "scionping", "%v", err)
		}
		fmt.Print(sciond.FormatPaths(paths, true))
		if *pathIdx < 0 || *pathIdx >= len(paths) {
			return cliutil.Fatalf(os.Stderr, "scionping", "path index %d out of range [0,%d)", *pathIdx, len(paths))
		}
		path = paths[*pathIdx]
		fmt.Printf("Using path %d: %s\n", *pathIdx, path)
	default:
		paths, err := w.Daemon.ShowPaths(ia, sciond.ShowPathsOpts{MaxPaths: 1})
		if err != nil || len(paths) == 0 {
			return cliutil.Fatalf(os.Stderr, "scionping", "no path to %s: %v", ia, err)
		}
		path = paths[0]
	}

	stats, err := scmp.Ping(w.Net, path, scmp.PingOpts{Count: *count, Interval: *interval})
	if err != nil {
		return cliutil.Fatalf(os.Stderr, "scionping", "%v", err)
	}
	fmt.Printf("PING %s via %s\n", ia, path.Sequence())
	fmt.Println(stats)
	return 0
}
