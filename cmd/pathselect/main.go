// Command pathselect is the user-facing path selection tool: it queries the
// measurement database for the best path to a destination under performance
// requirements and geographic/sovereignty exclusions — the paper's
// user-driven path control step ("select the best path to give to a user to
// reach a destination, following their request on performance or devices to
// exclude").
//
// Usage:
//
//	pathselect -d 2 -db stats.jsonl -objective latency
//	pathselect -d 16-ffaa:0:1002 -db stats.jsonl -exclude-country 'United States' -max-loss 1
//	pathselect -d 2 -db stats.jsonl -objective stable -top 5
//	pathselect -d 2 -db stats.jsonl -set 3
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/upin/scionpath/internal/cliutil"
	"github.com/upin/scionpath/internal/selection"
)

func main() { os.Exit(run(os.Args[1:])) }

func run(args []string) int {
	fs := flag.NewFlagSet("pathselect", flag.ContinueOnError)
	var (
		dest       = fs.String("d", "", "destination: server id, ISD-AS or host address (required)")
		dbPath     = fs.String("db", "", "measurement database journal (required; produce with testsuite --db)")
		dbBackend  = fs.String("docdb-backend", "", "docdb storage backend: jsonl or segment (auto-detect when empty)")
		objective  = fs.String("objective", "latency", "latency | bandwidth | loss | stable")
		maxLatency = fs.Float64("max-latency", 0, "maximum average latency in ms (0 = unconstrained)")
		maxLoss    = fs.Float64("max-loss", 0, "maximum average loss in percent")
		minBw      = fs.Float64("min-bw", 0, "minimum bandwidth in Mbps (both directions)")
		maxJitter  = fs.Float64("max-jitter", 0, "maximum latency jitter in ms")
		exISD      = fs.String("exclude-isd", "", "comma-separated ISDs to avoid")
		exAS       = fs.String("exclude-as", "", "comma-separated ISD-AS identifiers to avoid")
		exCountry  = fs.String("exclude-country", "", "comma-separated countries to avoid")
		exOperator = fs.String("exclude-operator", "", "comma-separated operators to avoid")
		top        = fs.Int("top", 3, "how many ranked candidates to print")
		setK       = fs.Int("set", 0, "select a disjointness-aware path SET of this size instead of a ranking (0 = off)")
		seed       = fs.Int64("seed", 1, "simulation seed")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *dest == "" || *dbPath == "" {
		fs.Usage()
		return 2
	}
	w, err := cliutil.NewWorld(*seed, *dbPath, *dbBackend)
	if err != nil {
		return cliutil.Fatalf(os.Stderr, "pathselect", "%v", err)
	}
	defer w.Close()
	_, serverID, err := w.ResolveDestination(*dest)
	if err != nil {
		return cliutil.Fatalf(os.Stderr, "pathselect", "%v", err)
	}
	if serverID == 0 {
		return cliutil.Fatalf(os.Stderr, "pathselect", "destination %s is not a catalogued server", *dest)
	}
	obj, err := selection.ParseObjective(*objective)
	if err != nil {
		return cliutil.Fatalf(os.Stderr, "pathselect", "%v", err)
	}
	req := selection.Request{
		Objective:        obj,
		MaxLatencyMs:     *maxLatency,
		MaxLossPct:       *maxLoss,
		MinBandwidthBps:  *minBw * 1e6,
		MaxJitterMs:      *maxJitter,
		ExcludeISDs:      splitList(*exISD),
		ExcludeASes:      splitList(*exAS),
		ExcludeCountries: splitList(*exCountry),
		ExcludeOperators: splitList(*exOperator),
	}
	engine := selection.New(w.DB, w.Topo)
	if *setK > 0 {
		set, err := engine.SelectSet(context.Background(), serverID,
			selection.SetRequest{Request: req, K: *setK})
		if err != nil {
			return cliutil.Fatalf(os.Stderr, "pathselect", "%v", err)
		}
		fmt.Printf("path set of %d to server %d (objective: %s, disjointness %.2f, shared links %d, shared ASes %d)\n",
			len(set.Paths), serverID, obj, set.Disjointness, set.SharedLinks, set.SharedASes)
		for i, c := range set.Paths {
			fmt.Printf("%d. %s\n", i+1, selection.Explain(c))
			fmt.Printf("   sequence: %s\n", c.Sequence)
		}
		return 0
	}
	cands, err := engine.Select(context.Background(), serverID, req)
	if err != nil {
		return cliutil.Fatalf(os.Stderr, "pathselect", "%v", err)
	}
	if len(cands) == 0 {
		fmt.Printf("no path to server %d satisfies the request\n", serverID)
		return 1
	}
	fmt.Printf("%d candidate paths to server %d (objective: %s)\n", len(cands), serverID, obj)
	for i, c := range cands {
		if i >= *top {
			break
		}
		fmt.Printf("%d. %s\n", i+1, selection.Explain(c))
		fmt.Printf("   sequence: %s\n", c.Sequence)
	}
	return 0
}

func splitList(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if t := strings.TrimSpace(p); t != "" {
			out = append(out, t)
		}
	}
	return out
}
