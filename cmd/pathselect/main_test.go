package main

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/upin/scionpath/internal/cliutil"
	"github.com/upin/scionpath/internal/measure"
)

func capture(t *testing.T, f func() int) (string, int) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	code := f()
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	io.Copy(&buf, r)
	return buf.String(), code
}

// measuredDB builds a journal with a small campaign against server 1.
func measuredDB(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "stats.jsonl")
	w, err := cliutil.NewWorld(1, path, "")
	if err != nil {
		t.Fatal(err)
	}
	suite := &measure.Suite{DB: w.DB, Daemon: w.Daemon}
	if _, err := suite.Run(context.Background(), measure.RunOpts{
		Iterations: 2, ServerIDs: []int{1},
		PingCount: 4, PingInterval: 5_000_000, // 5ms
		SkipBandwidth: true,
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestPathselectLatency(t *testing.T) {
	db := measuredDB(t)
	out, code := capture(t, func() int {
		return run([]string{"-d", "1", "-db", db, "-objective", "latency", "-top", "2"})
	})
	if code != 0 {
		t.Fatalf("exit %d: %s", code, out)
	}
	if !strings.Contains(out, "candidate paths to server 1") || !strings.Contains(out, "sequence:") {
		t.Errorf("output:\n%s", out)
	}
}

func TestPathselectExclusion(t *testing.T) {
	db := measuredDB(t)
	out, code := capture(t, func() int {
		return run([]string{"-d", "1", "-db", db, "-exclude-country", "United States,Singapore"})
	})
	if code != 0 {
		t.Fatalf("exit %d: %s", code, out)
	}
	if strings.Contains(out, "United States") {
		t.Errorf("excluded country appears in explanations:\n%s", out)
	}
}

func TestPathselectNoMatch(t *testing.T) {
	db := measuredDB(t)
	out, code := capture(t, func() int {
		return run([]string{"-d", "1", "-db", db, "-max-latency", "0.001"})
	})
	if code != 1 || !strings.Contains(out, "no path") {
		t.Errorf("exit %d output %q", code, out)
	}
}

func TestPathselectErrors(t *testing.T) {
	db := measuredDB(t)
	for _, args := range [][]string{
		{},                                  // missing flags
		{"-d", "1"},                         // missing db
		{"-d", "zz", "-db", db},             // bad destination
		{"-d", "16-ffaa:0:1004", "-db", db}, // not a catalogued server
		{"-d", "1", "-db", db, "-objective", "warp"},
	} {
		if _, code := capture(t, func() int { return run(args) }); code == 0 {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestPathselectSet(t *testing.T) {
	db := measuredDB(t)
	out, code := capture(t, func() int {
		return run([]string{"-d", "1", "-db", db, "-set", "2"})
	})
	if code != 0 {
		t.Fatalf("exit %d: %s", code, out)
	}
	if !strings.Contains(out, "path set of 2 to server 1") ||
		!strings.Contains(out, "disjointness") {
		t.Errorf("output:\n%s", out)
	}
	if n := strings.Count(out, "sequence:"); n != 2 {
		t.Errorf("%d sequences printed, want 2:\n%s", n, out)
	}
	// Unsatisfiable set requests fail like unsatisfiable rankings.
	if _, code := capture(t, func() int {
		return run([]string{"-d", "1", "-db", db, "-set", "2", "-max-latency", "0.001"})
	}); code == 0 {
		t.Error("unsatisfiable set request accepted")
	}
}
