package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: github.com/upin/scionpath/internal/docdb
BenchmarkDocDBFindEq/n=10k-8         	   12345	     97531 ns/op	   20480 B/op	     210 allocs/op
BenchmarkDocDBTopK/n=100k-8          	      50	  22334455.5 ns/op
BenchmarkDocDBLoad/backend=segment/n=100k-8 	       3	 163000000 ns/op
BenchmarkPathDiscCombineCached/ases=1000-8  	  200000	      5123 ns/op	    1024 B/op	      12 allocs/op
PASS
ok  	github.com/upin/scionpath/internal/docdb	3.2s
`

func TestParseBench(t *testing.T) {
	got := parseBench(sampleOutput)
	if len(got) != 4 {
		t.Fatalf("parsed %d results, want 4", len(got))
	}
	first := got[0]
	if first.Name != "BenchmarkDocDBFindEq/n=10k-8" || first.Iters != 12345 ||
		first.NsPerOp != 97531 || first.BPerOp != 20480 || first.AllocsOp != 210 {
		t.Errorf("first result: %+v", first)
	}
	second := got[1]
	if second.Name != "BenchmarkDocDBTopK/n=100k-8" || second.NsPerOp != 22334455.5 || second.BPerOp != 0 {
		t.Errorf("second result: %+v", second)
	}
	if first.Backend != "" || second.Backend != "" {
		t.Errorf("backend-independent results carry backend labels: %+v, %+v", first, second)
	}
	third := got[2]
	if third.Backend != "segment" {
		t.Errorf("third result backend %q, want segment: %+v", third.Backend, third)
	}
	if first.ASes != 0 || third.ASes != 0 {
		t.Errorf("size-independent results carry AS counts: %+v, %+v", first, third)
	}
	fourth := got[3]
	if fourth.ASes != 1000 || fourth.NsPerOp != 5123 {
		t.Errorf("fourth result: %+v", fourth)
	}
}

func TestRunParseModeMergesLabels(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(in, []byte(sampleOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "BENCH_docdb.json")

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-label", "before", "-parse", in, "-out", out}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	// A second label must not clobber the first.
	if code := run([]string{"-label", "after", "-parse", in, "-out", out}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}

	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var traj trajectory
	if err := json.Unmarshal(b, &traj); err != nil {
		t.Fatal(err)
	}
	if len(traj.Runs) != 2 || len(traj.Runs["before"]) != 4 || len(traj.Runs["after"]) != 4 {
		t.Fatalf("trajectory runs: %+v", traj.Runs)
	}
}

func TestRunRequiresLabel(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestRunRejectsNoResults(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "empty.txt")
	if err := os.WriteFile(in, []byte("PASS\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-label", "x", "-parse", in, "-out", filepath.Join(dir, "o.json")}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}
