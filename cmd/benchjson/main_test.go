package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: github.com/upin/scionpath/internal/docdb
BenchmarkDocDBFindEq/n=10k-8         	   12345	     97531 ns/op	   20480 B/op	     210 allocs/op
BenchmarkDocDBTopK/n=100k-8          	      50	  22334455.5 ns/op
BenchmarkDocDBLoad/backend=segment/n=100k-8 	       3	 163000000 ns/op
BenchmarkPathDiscCombineCached/ases=1000-8  	  200000	      5123 ns/op	    1024 B/op	      12 allocs/op
PASS
ok  	github.com/upin/scionpath/internal/docdb	3.2s
`

func TestParseBench(t *testing.T) {
	got := parseBench(sampleOutput)
	if len(got) != 4 {
		t.Fatalf("parsed %d results, want 4", len(got))
	}
	first := got[0]
	if first.Name != "BenchmarkDocDBFindEq/n=10k-8" || first.Iters != 12345 ||
		first.NsPerOp != 97531 || first.BPerOp != 20480 || first.AllocsOp != 210 {
		t.Errorf("first result: %+v", first)
	}
	second := got[1]
	if second.Name != "BenchmarkDocDBTopK/n=100k-8" || second.NsPerOp != 22334455.5 || second.BPerOp != 0 {
		t.Errorf("second result: %+v", second)
	}
	if first.Backend != "" || second.Backend != "" {
		t.Errorf("backend-independent results carry backend labels: %+v, %+v", first, second)
	}
	third := got[2]
	if third.Backend != "segment" {
		t.Errorf("third result backend %q, want segment: %+v", third.Backend, third)
	}
	if first.ASes != 0 || third.ASes != 0 {
		t.Errorf("size-independent results carry AS counts: %+v, %+v", first, third)
	}
	fourth := got[3]
	if fourth.ASes != 1000 || fourth.NsPerOp != 5123 {
		t.Errorf("fourth result: %+v", fourth)
	}
}

const loadOutput = `goos: linux
pkg: github.com/upin/scionpath/internal/load
BenchmarkLoadServing/fleet=16/shards=4/dist=zipf-1  	       1	 512345678 ns/op	        42.50 p50_ms	       120.8 p99_ms	       891.2 rps	        0.01250 unavailable_rate	  123456 B/op	     789 allocs/op
BenchmarkLoadServing/fleet=8/shards=1/dist=uniform-1	       1	 987654321 ns/op	       310.0 rps
BenchmarkLoadChaos/fleet=16/shards=4/dist=zipf-1    	       1	 700000000 ns/op	         2.000 recovery_buckets
PASS
`

// TestParseBenchLoadLabels: fleet=/shards=/dist= land in their fields and
// custom b.ReportMetric columns land in Metrics, with -benchmem columns
// still parsed around them.
func TestParseBenchLoadLabels(t *testing.T) {
	got := parseBench(loadOutput)
	if len(got) != 3 {
		t.Fatalf("parsed %d results, want 3", len(got))
	}
	first := got[0]
	if first.Fleet != 16 || first.Shards != 4 || first.Dist != "zipf" {
		t.Errorf("labels: %+v", first)
	}
	if first.NsPerOp != 512345678 || first.BPerOp != 123456 || first.AllocsOp != 789 {
		t.Errorf("standard columns lost around custom metrics: %+v", first)
	}
	want := map[string]float64{
		"p50_ms": 42.50, "p99_ms": 120.8, "rps": 891.2, "unavailable_rate": 0.01250,
	}
	for unit, v := range want {
		if first.Metrics[unit] != v {
			t.Errorf("metric %s = %v, want %v", unit, first.Metrics[unit], v)
		}
	}
	second := got[1]
	if second.Fleet != 8 || second.Shards != 1 || second.Dist != "uniform" ||
		second.Metrics["rps"] != 310.0 || second.BPerOp != 0 {
		t.Errorf("second result: %+v", second)
	}
	if got[2].Metrics["recovery_buckets"] != 2 {
		t.Errorf("third result: %+v", got[2])
	}
	// Non-load results must not pick up load labels.
	if plain := parseBench(sampleOutput); plain[0].Fleet != 0 || plain[0].Shards != 0 || plain[0].Dist != "" || plain[0].Metrics != nil {
		t.Errorf("docdb result carries load labels: %+v", plain[0])
	}
}

// TestParseBenchKLabel: the multipath trajectory's k= label lands in K
// alongside the AS count, and k-independent suites stay at zero.
func TestParseBenchKLabel(t *testing.T) {
	out := `pkg: github.com/upin/scionpath/internal/selection
BenchmarkMultipathSelectSet/ases=35/k=2-8   	   90000	     13000 ns/op	    4096 B/op	      40 allocs/op
BenchmarkMultipathSelectSet/ases=1000/k=4-8 	    2000	    529000 ns/op
PASS
`
	got := parseBench(out)
	if len(got) != 2 {
		t.Fatalf("parsed %d results, want 2", len(got))
	}
	if got[0].ASes != 35 || got[0].K != 2 {
		t.Errorf("first result labels: %+v", got[0])
	}
	if got[1].ASes != 1000 || got[1].K != 4 || got[1].NsPerOp != 529000 {
		t.Errorf("second result: %+v", got[1])
	}
	// The k= label must survive JSON round-tripping under its own key.
	b, err := json.Marshal(got[0])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b, []byte(`"k":2`)) {
		t.Errorf("k missing from JSON: %s", b)
	}
	if plain := parseBench(sampleOutput); plain[0].K != 0 || plain[3].K != 0 {
		t.Errorf("k-independent results carry k: %+v, %+v", plain[0], plain[3])
	}
}

// TestParseBenchSkipsNonMeasurement: lines without an ns/op column (FAIL
// markers, truncated output) are dropped, not recorded as zeros.
func TestParseBenchSkipsNonMeasurement(t *testing.T) {
	got := parseBench("BenchmarkBroken-8   \t 1   --- FAIL\nBenchmarkOK-8 \t 2 \t 5 ns/op\n")
	if len(got) != 1 || got[0].Name != "BenchmarkOK-8" {
		t.Fatalf("parsed: %+v", got)
	}
}

func TestRunParseModeMergesLabels(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(in, []byte(sampleOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "BENCH_docdb.json")

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-label", "before", "-parse", in, "-out", out}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	// A second label must not clobber the first.
	if code := run([]string{"-label", "after", "-parse", in, "-out", out}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}

	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var traj trajectory
	if err := json.Unmarshal(b, &traj); err != nil {
		t.Fatal(err)
	}
	if len(traj.Runs) != 2 || len(traj.Runs["before"]) != 4 || len(traj.Runs["after"]) != 4 {
		t.Fatalf("trajectory runs: %+v", traj.Runs)
	}
}

func TestRunRequiresLabel(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestRunRejectsNoResults(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "empty.txt")
	if err := os.WriteFile(in, []byte("PASS\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-label", "x", "-parse", in, "-out", filepath.Join(dir, "o.json")}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}
