// Command benchjson runs a benchmark suite and records the results in a
// JSON trajectory file, so successive PRs can show measured deltas instead
// of asserted ones (see docs/DOCDB.md, "Benchmark methodology"). It
// defaults to the docdb query-engine suite (BENCH_docdb.json); -bench,
// -pkg and -out retarget it at any other suite — the selection engine's
// serving benchmarks record their trajectory (see docs/SERVING.md) with:
//
//	go run ./cmd/benchjson -label after -bench BenchmarkServing \
//	    -pkg ./internal/selection -out BENCH_serving.json
//
// and the path-discovery suite (see docs/PATHDISC.md) records its
// AS-count-labelled trajectory with:
//
//	go run ./cmd/benchjson -label after -bench BenchmarkPathDisc \
//	    -pkg . -out BENCH_pathdisc.json
//
// Usage:
//
//	go run ./cmd/benchjson -label after            # run + record
//	go run ./cmd/benchjson -label pr4 -benchtime 2s
//	go run ./cmd/benchjson -parse out.txt -label x # record a saved run
//
// Each invocation replaces the named label in the -out file and leaves
// every other label untouched, so "before" numbers captured at the start of
// a PR survive the "after" run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchResult is one parsed "BenchmarkX-8  N  ns/op ..." line.
type benchResult struct {
	Name    string  `json:"name"`
	Iters   int64   `json:"iters"`
	NsPerOp float64 `json:"ns_per_op"`
	// Backend is the docdb storage backend a "backend=<name>" sub-benchmark
	// ran against (BenchmarkDocDBInsert/backend=segment/n=100k → "segment");
	// empty for backend-independent benchmarks.
	Backend string `json:"backend,omitempty"`
	// ASes is the topology size an "ases=<n>" sub-benchmark ran against
	// (BenchmarkPathDiscDiscover/ases=1000 → 1000, the BENCH_pathdisc.json
	// trajectory); 0 for size-independent benchmarks.
	ASes int `json:"as_count,omitempty"`
	// K is the path-set size of a "k=<n>" sub-benchmark
	// (BenchmarkMultipathSelectSet/ases=35/k=2 — the BENCH_multipath.json
	// trajectory); 0 for set-size-independent benchmarks.
	K int `json:"k,omitempty"`
	// Fleet/Shards/Dist describe a load-harness sub-benchmark
	// (BenchmarkLoadServing/fleet=16/shards=4/dist=zipf — the
	// BENCH_load.json trajectory); zero values for other suites.
	Fleet    int    `json:"fleet,omitempty"`
	Shards   int    `json:"shards,omitempty"`
	Dist     string `json:"dist,omitempty"`
	BPerOp   int64  `json:"bytes_per_op,omitempty"`
	AllocsOp int64  `json:"allocs_per_op,omitempty"`
	// Metrics carries custom b.ReportMetric columns (rps, p99_ms, ...)
	// keyed by unit; nil when a benchmark reports none.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// trajectory is the whole BENCH_docdb.json file: labelled benchmark runs,
// typically "before"/"after" per PR.
type trajectory struct {
	Command string                   `json:"command"`
	Runs    map[string][]benchResult `json:"runs"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		label     = fs.String("label", "", "label for this run (required), e.g. before, after, pr4")
		out       = fs.String("out", "BENCH_docdb.json", "trajectory file to update")
		bench     = fs.String("bench", "BenchmarkDocDB", "benchmark name regex passed to go test")
		pkg       = fs.String("pkg", "./internal/docdb", "package holding the benchmarks")
		benchtime = fs.String("benchtime", "1s", "go test -benchtime value")
		parse     = fs.String("parse", "", "parse a saved 'go test -bench' output file instead of running")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *label == "" {
		fmt.Fprintln(stderr, "benchjson: -label is required")
		return 2
	}

	var rawOut []byte
	cmdline := fmt.Sprintf("go test -run ^$ -bench %s -benchtime %s -benchmem %s", *bench, *benchtime, *pkg)
	if *parse != "" {
		b, err := os.ReadFile(*parse)
		if err != nil {
			fmt.Fprintf(stderr, "benchjson: %v\n", err)
			return 1
		}
		rawOut = b
	} else {
		fmt.Fprintf(stdout, "benchjson: %s\n", cmdline)
		cmd := exec.Command("go", "test", "-run", "^$", "-bench", *bench,
			"-benchtime", *benchtime, "-benchmem", *pkg)
		cmd.Stderr = stderr
		b, err := cmd.Output()
		if err != nil {
			fmt.Fprintf(stderr, "benchjson: go test: %v\n%s", err, b)
			return 1
		}
		rawOut = b
	}

	results := parseBench(string(rawOut))
	if len(results) == 0 {
		fmt.Fprintln(stderr, "benchjson: no benchmark lines found")
		return 1
	}

	traj := trajectory{Runs: map[string][]benchResult{}}
	if b, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(b, &traj); err != nil {
			fmt.Fprintf(stderr, "benchjson: existing %s is not valid JSON: %v\n", *out, err)
			return 1
		}
		if traj.Runs == nil {
			traj.Runs = map[string][]benchResult{}
		}
	}
	traj.Command = cmdline
	traj.Runs[*label] = results

	b, err := json.MarshalIndent(traj, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "benchjson: recorded %d benchmarks under label %q in %s (labels: %s)\n",
		len(results), *label, *out, strings.Join(labels(traj), ", "))
	return 0
}

// benchLine matches the head of a testing package benchmark output line;
// the tail is a sequence of "<value> <unit>" measurement pairs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(\S.*)$`)

// backendLabel extracts the storage backend from a benchmark path element
// like ".../backend=segment/...".
var backendLabel = regexp.MustCompile(`/backend=([a-z]+)(?:/|-|$)`)

// asesLabel extracts the topology size from a benchmark path element like
// ".../ases=1000/..." (the path-discovery trajectory).
var asesLabel = regexp.MustCompile(`/ases=(\d+)(?:/|-|$)`)

// kLabel extracts the path-set size from a benchmark path element like
// ".../k=4" (the multipath trajectory).
var kLabel = regexp.MustCompile(`/k=(\d+)(?:/|-|$)`)

// fleetLabel/shardsLabel/distLabel extract the load-harness dimensions
// from elements like ".../fleet=16/shards=4/dist=zipf" (BENCH_load.json).
var (
	fleetLabel  = regexp.MustCompile(`/fleet=(\d+)(?:/|-|$)`)
	shardsLabel = regexp.MustCompile(`/shards=(\d+)(?:/|-|$)`)
	distLabel   = regexp.MustCompile(`/dist=([a-z]+)(?:/|-|$)`)
)

// parseBench extracts benchmark results from go test -bench output. The
// measurement tail is parsed pairwise, so custom b.ReportMetric columns
// (which the testing package prints between ns/op and the -benchmem
// columns) land in Metrics instead of breaking the line match.
func parseBench(out string) []benchResult {
	var results []benchResult
	for _, line := range strings.Split(out, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		r := benchResult{Name: m[1]}
		if bm := backendLabel.FindStringSubmatch(m[1]); bm != nil {
			r.Backend = bm[1]
		}
		if am := asesLabel.FindStringSubmatch(m[1]); am != nil {
			r.ASes, _ = strconv.Atoi(am[1])
		}
		if km := kLabel.FindStringSubmatch(m[1]); km != nil {
			r.K, _ = strconv.Atoi(km[1])
		}
		if fm := fleetLabel.FindStringSubmatch(m[1]); fm != nil {
			r.Fleet, _ = strconv.Atoi(fm[1])
		}
		if sm := shardsLabel.FindStringSubmatch(m[1]); sm != nil {
			r.Shards, _ = strconv.Atoi(sm[1])
		}
		if dm := distLabel.FindStringSubmatch(m[1]); dm != nil {
			r.Dist = dm[1]
		}
		r.Iters, _ = strconv.ParseInt(m[2], 10, 64)
		fields := strings.Fields(m[3])
		sawNs := false
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp, sawNs = v, true
			case "B/op":
				r.BPerOp = int64(v)
			case "allocs/op":
				r.AllocsOp = int64(v)
			default:
				if r.Metrics == nil {
					r.Metrics = map[string]float64{}
				}
				r.Metrics[unit] = v
			}
		}
		if !sawNs {
			continue // not a measurement line (e.g. "BenchmarkX --- FAIL")
		}
		results = append(results, r)
	}
	return results
}

func labels(t trajectory) []string {
	out := make([]string, 0, len(t.Runs))
	for l := range t.Runs {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}
