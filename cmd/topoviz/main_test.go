package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func capture(t *testing.T, f func() int) (string, int) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	code := f()
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	io.Copy(&buf, r)
	return buf.String(), code
}

func TestTopovizText(t *testing.T) {
	out, code := capture(t, func() int { return run(nil) })
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{
		"36 ASes", "21 testable servers",
		"[C] 17-ffaa:0:1101", "[A] 17-ffaa:0:1107", "[U] 17-ffaa:1:1",
		"legend:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestTopovizDot(t *testing.T) {
	out, code := capture(t, func() int { return run([]string{"-format", "dot"}) })
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"graph scionlab {", `fillcolor=lightblue`, `"17-ffaa:0:1107" -- "17-ffaa:1:1"`, "}"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestTopovizJSONRoundTrip(t *testing.T) {
	out, code := capture(t, func() int { return run([]string{"-format", "json"}) })
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	path := filepath.Join(t.TempDir(), "w.json")
	if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
	out2, code2 := capture(t, func() int { return run([]string{"-in", path}) })
	if code2 != 0 {
		t.Fatalf("reload exit %d", code2)
	}
	if !strings.Contains(out2, "36 ASes") {
		t.Errorf("reloaded summary:\n%s", out2)
	}
}

func TestTopovizErrors(t *testing.T) {
	if _, code := capture(t, func() int { return run([]string{"-format", "png"}) }); code == 0 {
		t.Error("bad format accepted")
	}
	if _, code := capture(t, func() int { return run([]string{"-in", "/no/such/file.json"}) }); code == 0 {
		t.Error("missing input accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte("{"), 0o644)
	if _, code := capture(t, func() int { return run([]string{"-in", bad}) }); code == 0 {
		t.Error("corrupt input accepted")
	}
}
