// Command topoviz renders the SCIONLab-like world topology — the paper's
// Fig 1 — as text (grouped by ISD, with AS roles colour-coded the way the
// figure legends them) or as Graphviz DOT, and can dump/load the topology
// as JSON.
//
// Usage:
//
//	topoviz                      # text summary, Fig 1 equivalent
//	topoviz -format dot > w.dot  # Graphviz rendering
//	topoviz -format json > w.json
//	topoviz -in w.json           # validate + summarise a custom topology
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/upin/scionpath/internal/cliutil"
	"github.com/upin/scionpath/internal/topology"
)

func main() { os.Exit(run(os.Args[1:])) }

func run(args []string) int {
	fs := flag.NewFlagSet("topoviz", flag.ContinueOnError)
	var (
		format = fs.String("format", "text", "output format: text | dot | json")
		inPath = fs.String("in", "", "load a topology JSON file instead of the built-in world")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var topo *topology.Topology
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			return cliutil.Fatalf(os.Stderr, "topoviz", "%v", err)
		}
		defer f.Close()
		topo, err = topology.ReadJSON(f)
		if err != nil {
			return cliutil.Fatalf(os.Stderr, "topoviz", "%v", err)
		}
	} else {
		topo = topology.DefaultWorld()
	}

	switch *format {
	case "text":
		printText(topo)
	case "dot":
		printDot(topo)
	case "json":
		if err := topo.WriteJSON(os.Stdout); err != nil {
			return cliutil.Fatalf(os.Stderr, "topoviz", "%v", err)
		}
	default:
		return cliutil.Fatalf(os.Stderr, "topoviz", "unknown format %q", *format)
	}
	return 0
}

func printText(topo *topology.Topology) {
	fmt.Printf("SCIONLab world: %d ASes, %d links, %d ISDs, %d testable servers\n\n",
		len(topo.ASes()), len(topo.Links()), len(topo.ISDs()), len(topo.Servers()))
	for _, isd := range topo.ISDs() {
		fmt.Printf("ISD %d:\n", isd)
		for _, as := range topo.ASes() {
			if as.IA.ISD != isd {
				continue
			}
			marker := " "
			switch as.Type {
			case topology.Core:
				marker = "C" // light orange in Fig 1
			case topology.AttachmentPoint:
				marker = "A" // light green in Fig 1
			case topology.UserAS:
				marker = "U" // light blue in Fig 1 (our AS)
			}
			servers := ""
			if as.NumServers > 0 {
				servers = fmt.Sprintf("  [%d server(s)]", as.NumServers)
			}
			fmt.Printf("  [%s] %-16s %-24s %s, %s%s\n",
				marker, as.IA, as.Name, as.Site.Name, as.Site.Country, servers)
		}
	}
	fmt.Println("\nlegend: [C] core AS  [A] attachment point  [U] user AS")
}

func printDot(topo *topology.Topology) {
	fmt.Println("graph scionlab {")
	fmt.Println("  overlap=false; splines=true;")
	for _, as := range topo.ASes() {
		color := "white"
		switch as.Type {
		case topology.Core:
			color = "orange"
		case topology.AttachmentPoint:
			color = "palegreen"
		case topology.UserAS:
			color = "lightblue"
		}
		fmt.Printf("  %q [style=filled, fillcolor=%s, label=%q];\n",
			as.IA.String(), color, fmt.Sprintf("%s\\n%s", as.IA, as.Name))
	}
	for _, l := range topo.Links() {
		style := "solid"
		if l.Type == topology.CoreLink {
			style = "bold"
		}
		fmt.Printf("  %q -- %q [style=%s];\n", l.A.String(), l.B.String(), style)
	}
	fmt.Println("}")
}
