package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func capture(t *testing.T, f func() int) (string, int) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	code := f()
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	io.Copy(&buf, r)
	return buf.String(), code
}

func TestReportFig4(t *testing.T) {
	out, code := capture(t, func() int { return run([]string{"-fig", "4"}) })
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "Fig 4") || !strings.Contains(out, "within 6 hops") {
		t.Errorf("output:\n%s", out)
	}
}

func TestReportFig56ShareCampaign(t *testing.T) {
	out, code := capture(t, func() int { return run([]string{"-fig", "5,6"}) })
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"Fig 5", "layer europe", "Fig 6 (left)", "Fig 6 (right)"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestReportTables(t *testing.T) {
	out, code := capture(t, func() int { return run([]string{"-fig", "tables"}) })
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "5.66") || !strings.Contains(out, "retained paths") {
		t.Errorf("output:\n%s", out)
	}
}

func TestReportFig789(t *testing.T) {
	out, code := capture(t, func() int { return run([]string{"-fig", "7,8,9"}) })
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"Fig 7", "Fig 8", "Fig 9", "full-loss paths"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestReportMultipath(t *testing.T) {
	dir := t.TempDir()
	out, code := capture(t, func() int { return run([]string{"-fig", "multipath", "-o", dir}) })
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"Aggregate goodput vs single path", "K=1", "K=4", "disjointness"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if data, err := os.ReadFile(filepath.Join(dir, "multipath.txt")); err != nil || len(data) == 0 {
		t.Errorf("multipath.txt not written: %v", err)
	}
}

func TestReportOutputDir(t *testing.T) {
	dir := t.TempDir()
	_, code := capture(t, func() int { return run([]string{"-fig", "4,campaign", "-o", dir}) })
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, f := range []string{"fig4.txt", "campaign.txt"} {
		data, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			t.Errorf("missing %s: %v", f, err)
			continue
		}
		if len(data) == 0 {
			t.Errorf("%s is empty", f)
		}
	}
}

func TestReportErrors(t *testing.T) {
	if _, code := capture(t, func() int { return run([]string{"-fig", "99"}) }); code == 0 {
		t.Error("unknown figure accepted")
	}
	if _, code := capture(t, func() int { return run([]string{"-scale", "huge"}) }); code == 0 {
		t.Error("unknown scale accepted")
	}
	if _, code := capture(t, func() int { return run([]string{"-badflag"}) }); code == 0 {
		t.Error("bad flag accepted")
	}
}
