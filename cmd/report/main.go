// Command report regenerates the paper's figures and tables (Fig 4-9 plus
// the in-text reachability numbers) from fresh simulated campaigns and
// prints them as text plots.
//
// Usage:
//
//	report -fig all
//	report -fig 5 -scale paper -seed 7
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/upin/scionpath/internal/cliutil"
	"github.com/upin/scionpath/internal/experiments"
)

func main() { os.Exit(run(os.Args[1:])) }

func run(args []string) int {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	var (
		fig      = fs.String("fig", "all", "which figure: 4,5,6,7,8,9,multipath,campaign,correlation,tables or all")
		scaleStr = fs.String("scale", "fast", "measurement effort: fast | paper")
		outDir   = fs.String("o", "", "also write each figure to <dir>/<name>.txt")
		seed     = fs.Int64("seed", 1, "simulation seed")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	ctx := context.Background()
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return cliutil.Fatalf(os.Stderr, "report", "%v", err)
		}
	}
	emit := func(name, rendered string) {
		fmt.Println(rendered)
		if *outDir == "" {
			return
		}
		path := filepath.Join(*outDir, name+".txt")
		if err := os.WriteFile(path, []byte(rendered), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "report: writing %s: %v\n", path, err)
		}
	}
	scale := experiments.Fast
	switch strings.ToLower(*scaleStr) {
	case "fast":
	case "paper":
		scale = experiments.PaperScale
	default:
		return cliutil.Fatalf(os.Stderr, "report", "unknown scale %q", *scaleStr)
	}

	want := map[string]bool{}
	for _, f := range strings.Split(*fig, ",") {
		want[strings.TrimSpace(strings.ToLower(f))] = true
	}
	all := want["all"]
	ran := 0

	newEnv := func() *experiments.Env {
		env, err := experiments.NewEnv(*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "report: %v\n", err)
			os.Exit(1)
		}
		return env
	}

	if all || want["4"] {
		res, err := experiments.Fig4(newEnv())
		if err != nil {
			return cliutil.Fatalf(os.Stderr, "report", "fig 4: %v", err)
		}
		emit("fig4", res.Rendered)
		ran++
	}
	if all || want["5"] || want["6"] {
		env := newEnv()
		if all || want["5"] {
			res, err := experiments.Fig5(ctx, env, scale)
			if err != nil {
				return cliutil.Fatalf(os.Stderr, "report", "fig 5: %v", err)
			}
			emit("fig5", res.Rendered)
			for _, layer := range []experiments.LatencyLayer{
				experiments.LayerEurope, experiments.LayerOhio, experiments.LayerSingapore,
			} {
				s := res.LayerSummary[layer]
				fmt.Printf("  layer %-9s %s\n", layer, s)
			}
			fmt.Println()
			ran++
		}
		if all || want["6"] {
			// Fig 6 reuses the campaign Fig 5 stored in the same env.
			res, err := experiments.Fig6(ctx, env, scale)
			if err != nil {
				return cliutil.Fatalf(os.Stderr, "report", "fig 6: %v", err)
			}
			emit("fig6", res.Rendered)
			ran++
		}
	}
	if all || want["7"] {
		res, err := experiments.Fig7(ctx, newEnv(), scale)
		if err != nil {
			return cliutil.Fatalf(os.Stderr, "report", "fig 7: %v", err)
		}
		emit("fig7", res.Rendered)
		fmt.Printf("  means (Mbps): 64B up %.1f down %.1f | MTU up %.1f down %.1f\n\n",
			res.Mean64Up/1e6, res.Mean64Down/1e6, res.MeanMTUUp/1e6, res.MeanMTUDown/1e6)
		ran++
	}
	if all || want["8"] {
		res, err := experiments.Fig8(ctx, newEnv(), scale)
		if err != nil {
			return cliutil.Fatalf(os.Stderr, "report", "fig 8: %v", err)
		}
		emit("fig8", res.Rendered)
		fmt.Printf("  means (Mbps): 64B up %.1f down %.1f | MTU up %.1f down %.1f\n\n",
			res.Mean64Up/1e6, res.Mean64Down/1e6, res.MeanMTUUp/1e6, res.MeanMTUDown/1e6)
		ran++
	}
	if all || want["9"] {
		res, err := experiments.Fig9(ctx, newEnv(), scale)
		if err != nil {
			return cliutil.Fatalf(os.Stderr, "report", "fig 9: %v", err)
		}
		emit("fig9", res.Rendered)
		fmt.Printf("  full-loss paths: %v (shared first-half transits: %v)\n\n",
			res.FullLossPaths, res.SharedFirstHalf)
		ran++
	}
	if all || want["multipath"] {
		res, err := experiments.Multipath(ctx, experiments.MultipathOpts{Seed: *seed, Scale: scale})
		if err != nil {
			return cliutil.Fatalf(os.Stderr, "report", "multipath: %v", err)
		}
		emit("multipath", res.Rendered)
		for _, set := range res.Sets {
			fmt.Printf("  K=%d: %d paths, disjointness %.2f, %.1f Mbps\n",
				set.K, set.Paths, set.Disjointness, set.GoodputBps/1e6)
		}
		fmt.Println()
		ran++
	}
	if all || want["campaign"] {
		res, err := experiments.FullCampaign(context.Background(), newEnv(), scale)
		if err != nil {
			return cliutil.Fatalf(os.Stderr, "report", "campaign: %v", err)
		}
		emit("campaign", res.Rendered)
		ran++
	}
	if all || want["correlation"] {
		res, err := experiments.Correlation(ctx, newEnv(), scale, nil)
		if err != nil {
			return cliutil.Fatalf(os.Stderr, "report", "correlation: %v", err)
		}
		emit("correlation", res.Rendered)
		ran++
	}
	if all || want["tables"] {
		tab, err := experiments.TableReachability(newEnv())
		if err != nil {
			return cliutil.Fatalf(os.Stderr, "report", "tables: %v", err)
		}
		fmt.Println("In-text results (§6):")
		fmt.Println(tab.Rendered)
		ft, err := experiments.TableFilter(ctx, newEnv())
		if err != nil {
			return cliutil.Fatalf(os.Stderr, "report", "tables: %v", err)
		}
		fmt.Printf("Path retention (hops <= min+1): %d of %d discovered paths\n", ft.Retained, ft.Discovered)
		fmt.Println(ft.Rendered)
		ran++
	}
	if ran == 0 {
		return cliutil.Fatalf(os.Stderr, "report", "nothing matched -fig %q", *fig)
	}
	return 0
}
