// Command upinserver runs the UPIN front-end as an HTTP/JSON service — the
// §2.1 Front-end: users submit intents and receive decisions, verification
// verdicts and recommendations over the measured SCIONLab world.
//
// Endpoints:
//
//	GET  /api/health
//	GET  /api/servers
//	GET  /api/nodes
//	GET  /api/paths?server=N
//	POST /api/intent   {"server_id":1,"objective":"latency","profile":"voip",...}
//
// Usage:
//
//	upinserver -addr :8080 -db stats.jsonl
//	upinserver -addr :8080 -measure 1,13      # measure those servers at boot
//	upinserver -shards 4 -max-inflight 64 -rate 50   # sharded serving tier
//
// With -shards > 1 (or any admission/rate/cache flag) the front-end runs
// as the horizontally sharded serving tier (internal/upin/cluster):
// destination-routed replicas with per-shard response caches, per-client
// token-bucket rate limiting, and admission control feeding the 503 drain
// path. See docs/LOAD.md.
//
// Ctrl-C (or SIGTERM) shuts the server down gracefully: in-flight requests
// finish, then the database journal is flushed and closed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/upin/scionpath/internal/addr"
	"github.com/upin/scionpath/internal/cliutil"
	"github.com/upin/scionpath/internal/measure"
	"github.com/upin/scionpath/internal/selection"
	"github.com/upin/scionpath/internal/upin"
	"github.com/upin/scionpath/internal/upin/cluster"
)

// serveConfig collects everything buildHandler needs: world construction,
// boot-time measurements, and the serving-tier shape.
type serveConfig struct {
	seed                int64
	dbPath, dbBackend   string
	domain, measureList string
	shards, maxInflight int
	queueDepth          int
	queueTimeout        time.Duration
	rate, burst         float64
	cacheEntries        int
}

// tiered reports whether any flag asks for the cluster tier; without one
// the command serves the plain single front-end, exactly as before.
func (c serveConfig) tiered() bool {
	return c.shards > 1 || c.maxInflight > 0 || c.rate > 0 || c.cacheEntries > 0
}

func main() { os.Exit(run(os.Args[1:])) }

func run(args []string) int {
	fs := flag.NewFlagSet("upinserver", flag.ContinueOnError)
	var (
		addrFlag  = fs.String("addr", ":8080", "listen address")
		dbPath    = fs.String("db", "", "measurement database path (in-memory when empty)")
		dbBackend = fs.String("docdb-backend", "", "docdb storage backend: jsonl or segment (auto-detect when empty)")
		domain    = fs.String("domain", "16,17,19", "comma-separated ISDs forming the UPIN domain")
		measureS  = fs.String("measure", "", "comma-separated server ids to measure at boot")
		seed      = fs.Int64("seed", 1, "simulation seed")

		shards       = fs.Int("shards", 1, "serving replicas behind the rendezvous router (>1 enables the tier)")
		maxInflight  = fs.Int("max-inflight", 0, "admission control: concurrently admitted requests (0 = unlimited)")
		queueDepth   = fs.Int("queue-depth", 32, "admission control: bounded accept queue beyond max-inflight")
		queueTimeout = fs.Duration("queue-timeout", 100*time.Millisecond, "admission control: max wait for a slot before shedding 503")
		rate         = fs.Float64("rate", 0, "per-client token-bucket rate in requests/second (0 = unlimited)")
		burst        = fs.Float64("burst", 10, "per-client token-bucket burst")
		cacheSize    = fs.Int("cache", 0, "per-shard response cache entries (0 = caching off)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	handler, cleanup, err := buildHandler(ctx, serveConfig{
		seed: *seed, dbPath: *dbPath, dbBackend: *dbBackend,
		domain: *domain, measureList: *measureS,
		shards: *shards, maxInflight: *maxInflight,
		queueDepth: *queueDepth, queueTimeout: *queueTimeout,
		rate: *rate, burst: *burst, cacheEntries: *cacheSize,
	})
	if err != nil {
		return cliutil.Fatalf(os.Stderr, "upinserver", "%v", err)
	}
	defer func() {
		if cerr := cleanup(); cerr != nil {
			fmt.Fprintf(os.Stderr, "upinserver: close: %v\n", cerr)
		}
	}()
	fmt.Printf("upinserver listening on %s\n", *addrFlag)

	srv := &http.Server{
		Addr:    *addrFlag,
		Handler: handler,
		// A public-facing front-end must not let one slow client pin a
		// connection (slowloris) or an idle keep-alive pool grow unbounded.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return cliutil.Fatalf(os.Stderr, "upinserver", "%v", err)
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			return cliutil.Fatalf(os.Stderr, "upinserver", "shutdown: %v", err)
		}
		fmt.Println("upinserver stopped")
	}
	return 0
}

// buildHandler wires the world, optional boot-time measurements, and the
// front-end handler — a single upin.Server, or the sharded serving tier
// when cfg.tiered(). The returned cleanup closes the database journal.
func buildHandler(ctx context.Context, cfg serveConfig) (http.Handler, func() error, error) {
	w, err := cliutil.NewWorld(cfg.seed, cfg.dbPath, cfg.dbBackend)
	if err != nil {
		return nil, nil, err
	}
	if cfg.measureList != "" {
		var ids []int
		for _, part := range strings.Split(cfg.measureList, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return nil, nil, errors.Join(fmt.Errorf("bad server id %q", part), w.Close())
			}
			ids = append(ids, id)
		}
		suite := &measure.Suite{DB: w.DB, Daemon: w.Daemon}
		if _, err := suite.Run(ctx, measure.RunOpts{
			Iterations: 3, ServerIDs: ids,
			PingCount: 10, PingInterval: 20 * time.Millisecond,
			BwDuration: 500 * time.Millisecond,
		}); err != nil {
			return nil, nil, errors.Join(err, w.Close())
		}
	}
	var isds []addr.ISD
	for _, part := range strings.Split(cfg.domain, ",") {
		if v, err := strconv.Atoi(strings.TrimSpace(part)); err == nil && v > 0 {
			isds = append(isds, addr.ISD(v))
		}
	}
	explorer := upin.NewDomainExplorer(w.Topo, isds)
	if cfg.tiered() {
		tier := cluster.New(w.DB, w.Daemon, w.Net, explorer, w.Topo, cluster.Config{
			Shards:       cfg.shards,
			MaxInflight:  cfg.maxInflight,
			QueueDepth:   cfg.queueDepth,
			QueueTimeout: cfg.queueTimeout,
			RatePerSec:   cfg.rate,
			Burst:        cfg.burst,
			CacheEntries: cfg.cacheEntries,
		})
		return tier, func() error {
			// Drain the replicas before the journal closes underneath them.
			if err := tier.Close(); err != nil {
				return errors.Join(err, w.Close())
			}
			return w.Close()
		}, nil
	}
	engine := selection.New(w.DB, w.Topo)
	srv := upin.NewServer(w.DB, w.Daemon, w.Net, engine, explorer)
	srv.SetLogger(slog.New(slog.NewTextHandler(os.Stderr, nil)))
	return srv, w.Close, nil
}
