// Command upinserver runs the UPIN front-end as an HTTP/JSON service — the
// §2.1 Front-end: users submit intents and receive decisions, verification
// verdicts and recommendations over the measured SCIONLab world.
//
// Endpoints:
//
//	GET  /api/health
//	GET  /api/servers
//	GET  /api/nodes
//	GET  /api/paths?server=N
//	POST /api/intent   {"server_id":1,"objective":"latency","profile":"voip",...}
//
// Usage:
//
//	upinserver -addr :8080 -db stats.jsonl
//	upinserver -addr :8080 -measure 1,13      # measure those servers at boot
//
// Ctrl-C (or SIGTERM) shuts the server down gracefully: in-flight requests
// finish, then the database journal is flushed and closed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/upin/scionpath/internal/addr"
	"github.com/upin/scionpath/internal/cliutil"
	"github.com/upin/scionpath/internal/measure"
	"github.com/upin/scionpath/internal/selection"
	"github.com/upin/scionpath/internal/upin"
)

func main() { os.Exit(run(os.Args[1:])) }

func run(args []string) int {
	fs := flag.NewFlagSet("upinserver", flag.ContinueOnError)
	var (
		addrFlag  = fs.String("addr", ":8080", "listen address")
		dbPath    = fs.String("db", "", "measurement database path (in-memory when empty)")
		dbBackend = fs.String("docdb-backend", "", "docdb storage backend: jsonl or segment (auto-detect when empty)")
		domain    = fs.String("domain", "16,17,19", "comma-separated ISDs forming the UPIN domain")
		measureS  = fs.String("measure", "", "comma-separated server ids to measure at boot")
		seed      = fs.Int64("seed", 1, "simulation seed")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	handler, cleanup, err := buildHandler(ctx, *seed, *dbPath, *dbBackend, *domain, *measureS)
	if err != nil {
		return cliutil.Fatalf(os.Stderr, "upinserver", "%v", err)
	}
	defer func() {
		if cerr := cleanup(); cerr != nil {
			fmt.Fprintf(os.Stderr, "upinserver: close: %v\n", cerr)
		}
	}()
	fmt.Printf("upinserver listening on %s\n", *addrFlag)

	srv := &http.Server{
		Addr:    *addrFlag,
		Handler: handler,
		// A public-facing front-end must not let one slow client pin a
		// connection (slowloris) or an idle keep-alive pool grow unbounded.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return cliutil.Fatalf(os.Stderr, "upinserver", "%v", err)
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			return cliutil.Fatalf(os.Stderr, "upinserver", "shutdown: %v", err)
		}
		fmt.Println("upinserver stopped")
	}
	return 0
}

// buildHandler wires the world, optional boot-time measurements, and the
// front-end handler. The returned cleanup closes the database journal.
func buildHandler(ctx context.Context, seed int64, dbPath, dbBackend, domain, measureList string) (http.Handler, func() error, error) {
	w, err := cliutil.NewWorld(seed, dbPath, dbBackend)
	if err != nil {
		return nil, nil, err
	}
	if measureList != "" {
		var ids []int
		for _, part := range strings.Split(measureList, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return nil, nil, errors.Join(fmt.Errorf("bad server id %q", part), w.Close())
			}
			ids = append(ids, id)
		}
		suite := &measure.Suite{DB: w.DB, Daemon: w.Daemon}
		if _, err := suite.Run(ctx, measure.RunOpts{
			Iterations: 3, ServerIDs: ids,
			PingCount: 10, PingInterval: 20 * time.Millisecond,
			BwDuration: 500 * time.Millisecond,
		}); err != nil {
			return nil, nil, errors.Join(err, w.Close())
		}
	}
	var isds []addr.ISD
	for _, part := range strings.Split(domain, ",") {
		if v, err := strconv.Atoi(strings.TrimSpace(part)); err == nil && v > 0 {
			isds = append(isds, addr.ISD(v))
		}
	}
	explorer := upin.NewDomainExplorer(w.Topo, isds)
	engine := selection.New(w.DB, w.Topo)
	srv := upin.NewServer(w.DB, w.Daemon, w.Net, engine, explorer)
	srv.SetLogger(slog.New(slog.NewTextHandler(os.Stderr, nil)))
	return srv, w.Close, nil
}
