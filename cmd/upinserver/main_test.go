package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
)

func TestBuildHandlerServesIntent(t *testing.T) {
	handler, cleanup, err := buildHandler(context.Background(), 1, "", "", "16,17,19", "1")
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()

	ts := httptest.NewServer(handler)
	defer ts.Close()

	// Health.
	resp, err := http.Get(ts.URL + "/api/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("health %d", resp.StatusCode)
	}

	// Intent over the boot-time measurements.
	body := strings.NewReader(`{"server_id":1,"profile":"browsing"}`)
	resp2, err := http.Post(ts.URL+"/api/intent", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("intent %d", resp2.StatusCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp2.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["satisfied"] != true {
		t.Errorf("intent response: %v", out)
	}
}

func TestBuildHandlerWithJournal(t *testing.T) {
	db := filepath.Join(t.TempDir(), "stats.jsonl")
	_, cleanup, err := buildHandler(context.Background(), 1, db, "", "17", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := cleanup(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildHandlerErrors(t *testing.T) {
	if _, _, err := buildHandler(context.Background(), 1, "", "", "17", "zz"); err == nil {
		t.Error("bad measure list accepted")
	}
	if _, _, err := buildHandler(context.Background(), 1, filepath.Join(t.TempDir(), "no", "dir", "x.jsonl"), "", "17", ""); err == nil {
		t.Error("bad db path accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if code := run([]string{"-nope"}); code == 0 {
		t.Error("bad flag accepted")
	}
}
