package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
)

func TestBuildHandlerServesIntent(t *testing.T) {
	handler, cleanup, err := buildHandler(context.Background(),
		serveConfig{seed: 1, domain: "16,17,19", measureList: "1"})
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()

	ts := httptest.NewServer(handler)
	defer ts.Close()

	// Health.
	resp, err := http.Get(ts.URL + "/api/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("health %d", resp.StatusCode)
	}

	// Intent over the boot-time measurements.
	body := strings.NewReader(`{"server_id":1,"profile":"browsing"}`)
	resp2, err := http.Post(ts.URL+"/api/intent", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("intent %d", resp2.StatusCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp2.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["satisfied"] != true {
		t.Errorf("intent response: %v", out)
	}
}

func TestBuildHandlerWithJournal(t *testing.T) {
	db := filepath.Join(t.TempDir(), "stats.jsonl")
	_, cleanup, err := buildHandler(context.Background(),
		serveConfig{seed: 1, dbPath: db, domain: "17"})
	if err != nil {
		t.Fatal(err)
	}
	if err := cleanup(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildHandlerErrors(t *testing.T) {
	if _, _, err := buildHandler(context.Background(),
		serveConfig{seed: 1, domain: "17", measureList: "zz"}); err == nil {
		t.Error("bad measure list accepted")
	}
	if _, _, err := buildHandler(context.Background(),
		serveConfig{seed: 1, domain: "17", dbPath: filepath.Join(t.TempDir(), "no", "dir", "x.jsonl")}); err == nil {
		t.Error("bad db path accepted")
	}
}

// TestBuildHandlerShardedTier: tier flags swap in the cluster router —
// /api/stats aggregates the shards and the rate limiter answers 429.
func TestBuildHandlerShardedTier(t *testing.T) {
	handler, cleanup, err := buildHandler(context.Background(), serveConfig{
		seed: 1, domain: "16,17,19", measureList: "1",
		shards: 4, cacheEntries: 64, rate: 0.001, burst: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	ts := httptest.NewServer(handler)
	defer ts.Close()
	client := ts.Client()

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/api/stats", nil)
	req.Header.Set("X-Client-ID", "t")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Shards   int   `json:"shards"`
		PerShard []any `json:"per_shard"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Shards != 4 || len(st.PerShard) != 4 {
		t.Errorf("tier stats: %+v", st)
	}

	// Paths route through the tier; the fourth request in the burst window
	// is rate limited.
	for i := 0; i < 2; i++ {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/api/paths?server=1", nil)
		req.Header.Set("X-Client-ID", "t")
		r2, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		r2.Body.Close()
		if r2.StatusCode != http.StatusOK {
			t.Fatalf("paths %d: status %d", i, r2.StatusCode)
		}
	}
	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/api/paths?server=1", nil)
	req.Header.Set("X-Client-ID", "t")
	r3, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusTooManyRequests {
		t.Errorf("status %d, want 429 after burst", r3.StatusCode)
	}
}

func TestRunBadFlag(t *testing.T) {
	if code := run([]string{"-nope"}); code == 0 {
		t.Error("bad flag accepted")
	}
}
