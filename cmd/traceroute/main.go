// Command traceroute mirrors `scion traceroute`: SCMP traceroute probes to
// every hop of a path, "particularly useful to test how the latency is
// affected by each link" (§3.3).
//
// Usage:
//
//	traceroute 16-ffaa:0:1002
//	traceroute 16-ffaa:0:1002 --sequence '...'
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/upin/scionpath/internal/cliutil"
	"github.com/upin/scionpath/internal/pathmgr"
	"github.com/upin/scionpath/internal/sciond"
	"github.com/upin/scionpath/internal/scmp"
)

func main() { os.Exit(run(os.Args[1:])) }

func run(args []string) int {
	fs := flag.NewFlagSet("traceroute", flag.ContinueOnError)
	var (
		sequence    = fs.String("sequence", "", "hop-predicate sequence pinning the path")
		probes      = fs.Int("probes", 3, "probes per hop")
		interactive = fs.Bool("interactive", false, "list paths and select with --path")
		pathIdx     = fs.Int("path", 0, "path index for --interactive")
		seed        = fs.Int64("seed", 1, "simulation seed")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "traceroute: exactly one destination required")
		return 2
	}
	w, err := cliutil.NewWorld(*seed, "", "")
	if err != nil {
		return cliutil.Fatalf(os.Stderr, "traceroute", "%v", err)
	}
	ia, _, err := w.ResolveDestination(fs.Arg(0))
	if err != nil {
		return cliutil.Fatalf(os.Stderr, "traceroute", "%v", err)
	}
	var path *pathmgr.Path
	if *sequence != "" {
		seq, err := pathmgr.ParseSequence(*sequence)
		if err != nil {
			return cliutil.Fatalf(os.Stderr, "traceroute", "%v", err)
		}
		path, err = w.Daemon.ResolveSequence(ia, seq)
		if err != nil {
			return cliutil.Fatalf(os.Stderr, "traceroute", "%v", err)
		}
	} else if *interactive {
		paths, err := w.Daemon.ShowPaths(ia, sciond.ShowPathsOpts{MaxPaths: 40, Probe: true})
		if err != nil {
			return cliutil.Fatalf(os.Stderr, "traceroute", "%v", err)
		}
		fmt.Print(sciond.FormatPaths(paths, true))
		if *pathIdx < 0 || *pathIdx >= len(paths) {
			return cliutil.Fatalf(os.Stderr, "traceroute", "path index %d out of range [0,%d)", *pathIdx, len(paths))
		}
		path = paths[*pathIdx]
		fmt.Printf("Using path %d: %s\n", *pathIdx, path)
	} else {
		paths, err := w.Daemon.ShowPaths(ia, sciond.ShowPathsOpts{MaxPaths: 1})
		if err != nil || len(paths) == 0 {
			return cliutil.Fatalf(os.Stderr, "traceroute", "no path to %s: %v", ia, err)
		}
		path = paths[0]
	}

	hops, err := scmp.Traceroute(w.Net, path, *probes)
	if err != nil {
		return cliutil.Fatalf(os.Stderr, "traceroute", "%v", err)
	}
	fmt.Printf("traceroute to %s, %d hops\n", ia, len(hops))
	for _, h := range hops {
		fmt.Printf("%2d %-28s", h.Index+1, h.Hop.String())
		if h.Timeout {
			fmt.Print(" *")
		}
		for _, rtt := range h.RTTs {
			fmt.Printf(" %v", rtt.Round(10*time.Microsecond))
		}
		fmt.Println()
	}
	return 0
}
