package main

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, f func() int) (string, int) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	code := f()
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	io.Copy(&buf, r)
	return buf.String(), code
}

func TestTraceroute(t *testing.T) {
	out, code := capture(t, func() int {
		return run([]string{"-probes", "2", "16-ffaa:0:1002"})
	})
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "traceroute to 16-ffaa:0:1002, 6 hops") {
		t.Errorf("header missing:\n%s", out)
	}
	// One line per hop, numbered.
	if !strings.Contains(out, " 1 17-ffaa:1:1") || !strings.Contains(out, " 6 16-ffaa:0:1002") {
		t.Errorf("hop lines missing:\n%s", out)
	}
}

func TestTracerouteInteractive(t *testing.T) {
	out, code := capture(t, func() int {
		return run([]string{"-interactive", "-path", "1", "-probes", "1", "1"})
	})
	if code != 0 {
		t.Fatalf("exit %d: %s", code, out)
	}
	if !strings.Contains(out, "Available paths") || !strings.Contains(out, "Using path 1") {
		t.Errorf("interactive output:\n%s", out)
	}
}

func TestTracerouteErrors(t *testing.T) {
	for _, args := range [][]string{
		{}, {"a", "b"}, {"zz"}, {"-sequence", "%%", "1"}, {"-sequence", "1-0#0", "1"},
		{"-interactive", "-path", "999", "1"},
	} {
		if _, code := capture(t, func() int { return run(args) }); code == 0 {
			t.Errorf("args %v accepted", args)
		}
	}
}
