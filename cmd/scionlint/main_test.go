package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/upin/scionpath/internal/lint"
)

const fixturesDir = "../../internal/lint/testdata/src"

// TestRunFindsSeededViolations pins the acceptance criterion: the CLI must
// exit non-zero on the fixture module, with every analyzer represented.
func TestRunFindsSeededViolations(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-dir", fixturesDir, "./..."}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	text := out.String()
	for _, analyzer := range []string{"lockcheck", "errcheck", "goroutinecapture", "timeafter", "hygiene", "ignorecheck"} {
		if !strings.Contains(text, "["+analyzer+"]") {
			t.Errorf("output has no finding from %s:\n%s", analyzer, text)
		}
	}
	if !strings.Contains(text, "scionlint: ") {
		t.Errorf("output missing summary line:\n%s", text)
	}
}

// TestRunJSON checks the machine-readable report round-trips and agrees
// with the exit code.
func TestRunJSON(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-json", "-dir", fixturesDir, "./..."}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr:\n%s", code, errOut.String())
	}
	var report struct {
		Diagnostics []lint.Diagnostic `json:"diagnostics"`
		Summary     lint.Summary      `json:"summary"`
	}
	if err := json.Unmarshal(out.Bytes(), &report); err != nil {
		t.Fatalf("unmarshal report: %v\n%s", err, out.String())
	}
	if len(report.Diagnostics) == 0 {
		t.Fatal("JSON report has no diagnostics")
	}
	if report.Summary.Findings != len(report.Diagnostics) {
		t.Errorf("summary.findings = %d, diagnostics = %d", report.Summary.Findings, len(report.Diagnostics))
	}
	if report.Summary.Suppressed == 0 {
		t.Error("summary.suppressed = 0, want the suppress fixture's directives counted")
	}
	for _, d := range report.Diagnostics {
		if d.File == "" || d.Line == 0 || d.Analyzer == "" || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
	}
}

// TestRunCleanPackage pins exit 0 plus the zero-findings summary on a
// violation-free package.
func TestRunCleanPackage(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-dir", fixturesDir, "./clean"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "0 findings in 1 packages") {
		t.Errorf("summary = %q, want 0 findings in 1 packages", strings.TrimSpace(out.String()))
	}
}

// TestRunUnknownAnalyzer pins the usage-error exit code.
func TestRunUnknownAnalyzer(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-analyzers", "nosuch", "-dir", fixturesDir, "./clean"}, &out, &errOut)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown analyzer") {
		t.Errorf("stderr = %q, want unknown-analyzer error", errOut.String())
	}
}

// TestRunList checks -list names every default analyzer.
func TestRunList(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-list"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, a := range lint.Default() {
		if !strings.Contains(out.String(), a.Name) {
			t.Errorf("-list output missing %s:\n%s", a.Name, out.String())
		}
	}
}
