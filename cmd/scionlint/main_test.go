package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/upin/scionpath/internal/lint"
)

const fixturesDir = "../../internal/lint/testdata/src"

// TestRunFindsSeededViolations pins the acceptance criterion: the CLI must
// exit non-zero on the fixture module, with every analyzer represented.
func TestRunFindsSeededViolations(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-dir", fixturesDir, "./..."}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	text := out.String()
	for _, analyzer := range []string{
		"lockcheck", "errcheck", "goroutinecapture", "timeafter", "hygiene",
		"ignorecheck", "determcheck", "lockcheckv2", "ctxcheck", "snapshotcheck",
	} {
		if !strings.Contains(text, "["+analyzer+"]") {
			t.Errorf("output has no finding from %s:\n%s", analyzer, text)
		}
	}
	if !strings.Contains(text, "scionlint: ") {
		t.Errorf("output missing summary line:\n%s", text)
	}
}

// TestRunJSON checks the machine-readable report round-trips and agrees
// with the exit code.
func TestRunJSON(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-json", "-dir", fixturesDir, "./..."}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr:\n%s", code, errOut.String())
	}
	var report struct {
		Schema      string            `json:"schema"`
		Diagnostics []lint.Diagnostic `json:"diagnostics"`
		Summary     lint.Summary      `json:"summary"`
	}
	if err := json.Unmarshal(out.Bytes(), &report); err != nil {
		t.Fatalf("unmarshal report: %v\n%s", err, out.String())
	}
	if report.Schema != lint.JSONSchemaVersion {
		t.Errorf("schema = %q, want %q", report.Schema, lint.JSONSchemaVersion)
	}
	if len(report.Diagnostics) == 0 {
		t.Fatal("JSON report has no diagnostics")
	}
	if report.Summary.Findings != len(report.Diagnostics) {
		t.Errorf("summary.findings = %d, diagnostics = %d", report.Summary.Findings, len(report.Diagnostics))
	}
	if report.Summary.Suppressed == 0 {
		t.Error("summary.suppressed = 0, want the suppress fixture's directives counted")
	}
	for _, d := range report.Diagnostics {
		if d.File == "" || d.Line == 0 || d.Analyzer == "" || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
	}
}

// TestRunCleanPackage pins exit 0 plus the zero-findings summary on a
// violation-free package.
func TestRunCleanPackage(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-dir", fixturesDir, "./clean"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "0 findings in 1 packages") {
		t.Errorf("summary = %q, want 0 findings in 1 packages", strings.TrimSpace(out.String()))
	}
}

// TestRunUnknownAnalyzer pins the usage-error exit code.
func TestRunUnknownAnalyzer(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-analyzers", "nosuch", "-dir", fixturesDir, "./clean"}, &out, &errOut)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown analyzer") {
		t.Errorf("stderr = %q, want unknown-analyzer error", errOut.String())
	}
}

// TestRunList checks -list names every default analyzer.
func TestRunList(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-list"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, a := range lint.Default() {
		if !strings.Contains(out.String(), a.Name) {
			t.Errorf("-list output missing %s:\n%s", a.Name, out.String())
		}
	}
}

// TestRunBaselineRoundTrip: recording a baseline and re-running against it
// must turn the fixture tree's findings into suppressions and exit 0.
func TestRunBaselineRoundTrip(t *testing.T) {
	basePath := filepath.Join(t.TempDir(), "lint-baseline.json")

	var out, errOut bytes.Buffer
	code := run([]string{"-dir", fixturesDir, "-write-baseline", basePath, "./..."}, &out, &errOut)
	if code != 0 {
		t.Fatalf("write-baseline exit code = %d, want 0\nstderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "baseline recorded") {
		t.Errorf("stderr = %q, want a baseline-recorded note", errOut.String())
	}

	out.Reset()
	errOut.Reset()
	code = run([]string{"-dir", fixturesDir, "-baseline", basePath, "./..."}, &out, &errOut)
	if code != 0 {
		t.Fatalf("baselined run exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "0 findings") {
		t.Errorf("baselined summary = %q, want 0 findings", strings.TrimSpace(out.String()))
	}
	if strings.Contains(errOut.String(), "stale baseline entry") {
		t.Errorf("immediate re-run reported stale entries:\n%s", errOut.String())
	}
}

// TestRunBaselineMissingFile: a typoed baseline path must fail loud, not
// silently disable the filter.
func TestRunBaselineMissingFile(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-dir", fixturesDir, "-baseline", filepath.Join(t.TempDir(), "nope.json"), "./clean"}, &out, &errOut)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

// TestRunFix applies the ctxcheck rewrite on a throwaway copy of the
// fixture and verifies both the edit and that unfixable findings remain.
func TestRunFix(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module fixfix\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := os.ReadFile(filepath.Join(fixturesDir, "ctxcheck", "ctxcheck.go"))
	if err != nil {
		t.Fatal(err)
	}
	target := filepath.Join(dir, "ctxcheck.go")
	if err := os.WriteFile(target, src, 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errOut bytes.Buffer
	code := run([]string{"-dir", dir, "-analyzers", "ctxcheck", "-fix", "."}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (unfixable findings remain)\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(errOut.String(), "applied 1 fixes in 1 files") {
		t.Errorf("stderr = %q, want an applied-fixes note", errOut.String())
	}
	fixed, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(fixed), `return work(ctx, "x")`) {
		t.Errorf("fix did not rewrite context.Background() to the in-scope ctx:\n%s", fixed)
	}
	if strings.Contains(string(fixed), "context.Background()") {
		t.Errorf("context.Background() survived -fix:\n%s", fixed)
	}
	// The TODO() in Orphan has no ctx in scope: it must NOT be rewritten.
	if !strings.Contains(string(fixed), "context.TODO()") {
		t.Errorf("-fix rewrote the unfixable context.TODO():\n%s", fixed)
	}
}

// TestRunTiming pins the -timing line and the -parallel plumbing.
func TestRunTiming(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-dir", fixturesDir, "-timing", "-parallel", "2", "./clean"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "scionlint: timing: load ") {
		t.Errorf("stderr = %q, want a timing line", errOut.String())
	}
	if !strings.Contains(errOut.String(), "(parallel=2)") {
		t.Errorf("stderr = %q, want the parallel setting echoed", errOut.String())
	}
}
