// Command scionlint runs this module's self-contained static-analysis pass
// (internal/lint) over the tree. It is the tier-2 verify gate: verify.sh
// runs it on every PR, after go vet and before the race-detector tier.
//
// Usage:
//
//	scionlint [flags] [packages]
//
// Packages follow the go tool's pattern shape ("./...", "./internal/...",
// "./internal/docdb"); the default is "./...". The process exits 0 when no
// findings survive suppression, 1 when findings are reported, and 2 when
// loading or type-checking fails outright.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/upin/scionpath/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("scionlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut   = fs.Bool("json", false, "emit diagnostics and summary as JSON")
		tests     = fs.Bool("tests", false, "also analyze in-package _test.go files")
		list      = fs.Bool("list", false, "list analyzers and exit")
		only      = fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		dir       = fs.String("dir", ".", "directory to resolve packages from")
		byCounter = fs.Bool("counts", false, "append per-analyzer finding counts to the text report")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers, err := lint.ByName(*only)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-18s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	pkgs, fset, err := lint.Load(lint.LoadConfig{Dir: *dir, IncludeTests: *tests}, fs.Args()...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if len(pkgs) == 0 {
		fmt.Fprintln(stderr, "scionlint: no packages matched")
		return 2
	}

	diags, suppressed := lint.Run(fset, pkgs, analyzers)
	sum := lint.Summarize(pkgs, diags, suppressed)

	wd, err := os.Getwd()
	if err != nil {
		wd = "."
	}
	if *jsonOut {
		if err := lint.WriteJSON(stdout, wd, diags, sum); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		if err := lint.WriteText(stdout, wd, diags, sum); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		if *byCounter {
			for _, line := range lint.CountByAnalyzer(diags) {
				fmt.Fprintln(stdout, "  "+line)
			}
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
