// Command scionlint runs this module's self-contained static-analysis pass
// (internal/lint) over the tree. It is the tier-2 verify gate: verify.sh
// runs it on every PR, after go vet and before the race-detector tier.
//
// Usage:
//
//	scionlint [flags] [packages]
//
// Packages follow the go tool's pattern shape ("./...", "./internal/...",
// "./internal/docdb"); the default is "./...". The process exits 0 when no
// findings survive suppression (and the baseline, when one is given), 1
// when findings are reported, and 2 when loading or type-checking fails
// outright.
//
// Baseline workflow: `-write-baseline lint.json` records every current
// finding as accepted; later runs with `-baseline lint.json` report only
// regressions. Entries the tree no longer produces are flagged as stale so
// the baseline shrinks toward empty instead of fossilizing.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"github.com/upin/scionpath/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("scionlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut   = fs.Bool("json", false, "emit diagnostics and summary as JSON (schema "+lint.JSONSchemaVersion+")")
		tests     = fs.Bool("tests", false, "also analyze in-package _test.go files")
		list      = fs.Bool("list", false, "list analyzers and exit")
		only      = fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		dir       = fs.String("dir", ".", "directory to resolve packages from")
		byCounter = fs.Bool("counts", false, "append per-analyzer finding counts to the text report")
		baseline  = fs.String("baseline", "", "subtract the findings recorded in this baseline file; report only regressions")
		writeBase = fs.String("write-baseline", "", "record current findings to this baseline file and exit 0")
		fix       = fs.Bool("fix", false, "apply machine-applicable fixes in place; only unfixable findings fail the run")
		parallel  = fs.Int("parallel", 0, "worker count for loading and analysis (0 = GOMAXPROCS, 1 = sequential)")
		timing    = fs.Bool("timing", false, "print load/analyze wall-clock timing to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers, err := lint.ByName(*only)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-18s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	loadStart := time.Now()
	pkgs, fset, err := lint.Load(lint.LoadConfig{Dir: *dir, IncludeTests: *tests, Parallel: *parallel}, fs.Args()...)
	loadTime := time.Since(loadStart)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if len(pkgs) == 0 {
		fmt.Fprintln(stderr, "scionlint: no packages matched")
		return 2
	}

	runStart := time.Now()
	diags, suppressed := lint.RunWith(fset, pkgs, analyzers, lint.RunOpts{Parallel: *parallel})
	runTime := time.Since(runStart)
	if *timing {
		fmt.Fprintf(stderr, "scionlint: timing: load %s, analyze %s, total %s (parallel=%d)\n",
			loadTime.Round(time.Millisecond), runTime.Round(time.Millisecond),
			(loadTime + runTime).Round(time.Millisecond), *parallel)
	}

	wd, err := os.Getwd()
	if err != nil {
		wd = "."
	}
	// Baselines anchor paths at the analyzed tree's root, not the invoking
	// directory, so a recorded baseline keeps matching when scionlint runs
	// from somewhere else.
	anchor, err := filepath.Abs(*dir)
	if err != nil {
		anchor = wd
	}

	if *baseline != "" {
		base, err := lint.ReadBaseline(*baseline)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		var matched int
		var stale []lint.BaselineEntry
		diags, matched, stale = base.Filter(anchor, diags)
		suppressed += matched
		for _, e := range stale {
			fmt.Fprintf(stderr, "scionlint: stale baseline entry: %s [%s] %s (x%d) — re-record the baseline\n",
				e.File, e.Analyzer, e.Message, e.Count)
		}
	}

	if *fix {
		res, err := lint.ApplyFixes(diags)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		if res.Applied > 0 {
			fmt.Fprintf(stderr, "scionlint: applied %d fixes in %d files\n", res.Applied, len(res.Files))
		}
		diags = res.Remaining
	}

	if *writeBase != "" {
		base := lint.NewBaseline(anchor, diags)
		if err := base.Write(*writeBase); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		fmt.Fprintf(stderr, "scionlint: baseline recorded: %d findings as %d entries -> %s\n",
			len(diags), len(base.Entries), *writeBase)
		return 0
	}

	sum := lint.Summarize(pkgs, diags, suppressed)
	if *jsonOut {
		if err := lint.WriteJSON(stdout, wd, diags, sum); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		if err := lint.WriteText(stdout, wd, diags, sum); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		if *byCounter {
			for _, line := range lint.CountByAnalyzer(diags) {
				fmt.Fprintln(stdout, "  "+line)
			}
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
