package main

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestRunClosedFleet(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-clients", "4", "-requests", "24", "-dests", "3", "-paths-per", "20",
		"-shards", "2", "-think", "100us",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	var rep report
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("bad report JSON: %v\n%s", err, stdout.String())
	}
	if rep.Result.Completed != 24 {
		t.Errorf("completed %d of 24", rep.Result.Completed)
	}
	if rep.Result.Statuses[200] != 24 {
		t.Errorf("statuses: %v", rep.Result.Statuses)
	}
	if rep.Tier.Shards != 2 || rep.Result.RPS <= 0 {
		t.Errorf("tier=%+v rps=%v", rep.Tier, rep.Result.RPS)
	}
}

func TestRunChaosOpenLoop(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-mode", "open", "-rate", "2000", "-clients", "4", "-requests", "60",
		"-dests", "3", "-paths-per", "20", "-shards", "2", "-chaos", "-seed", "5",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	var rep report
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Firings) == 0 || rep.Recovery == nil {
		t.Errorf("chaos run recorded no firings/recovery: %+v", rep.Firings)
	}
}

func TestRunBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-mode", "warp"}, &stdout, &stderr); code == 0 {
		t.Error("bad mode accepted")
	}
	if code := run([]string{"-nope"}, &stdout, &stderr); code != 2 {
		t.Error("bad flag accepted")
	}
}
