// Command loadgen drives the UPIN serving tier with a deterministic
// client fleet and reports latency percentiles, throughput and shed
// rates as JSON. It builds a synthetic heavy-catalogue world in-process
// (production-shaped candidate counts no measured SCIONLab campaign
// reaches), serves it through the sharded tier on a loopback listener,
// and runs the schedule derived from the seed — same seed, same
// requests, same report shape. See docs/LOAD.md.
//
// Usage:
//
//	loadgen -clients 16 -requests 500 -shards 4 -cache 512
//	loadgen -mode open -rate 2000 -max-inflight 8    # overload probe
//	loadgen -chaos -seed 7                           # faults mid-run
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"github.com/upin/scionpath/internal/addr"
	"github.com/upin/scionpath/internal/chaos"
	"github.com/upin/scionpath/internal/cliutil"
	"github.com/upin/scionpath/internal/docdb"
	"github.com/upin/scionpath/internal/load"
	"github.com/upin/scionpath/internal/sciond"
	"github.com/upin/scionpath/internal/simnet"
	"github.com/upin/scionpath/internal/topology"
	"github.com/upin/scionpath/internal/upin"
	"github.com/upin/scionpath/internal/upin/cluster"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// report is the JSON document loadgen emits.
type report struct {
	Config   load.Config          `json:"config"`
	Cluster  cluster.Config       `json:"cluster"`
	Result   *load.Result         `json:"result"`
	Tier     cluster.Stats        `json:"tier_stats"`
	Firings  []load.ChaosFiring   `json:"chaos_firings,omitempty"`
	Recovery *load.RecoveryReport `json:"recovery,omitempty"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seed        = fs.Int64("seed", 1, "schedule + world seed")
		mode        = fs.String("mode", "closed", "fleet model: closed or open")
		dist        = fs.String("dist", "zipf", "destination popularity: zipf or uniform")
		clients     = fs.Int("clients", 16, "fleet size")
		requests    = fs.Int("requests", 400, "total requests")
		rate        = fs.Float64("rate", 0, "open-loop arrival rate (requests/second)")
		think       = fs.Duration("think", 2*time.Millisecond, "closed-loop mean think time")
		intentEvery = fs.Int("intent-every", 0, "every Nth request POSTs an intent (0 = never)")
		top         = fs.Int("top", 5, "server-side candidate truncation (?top=K, 0 = full)")
		timeout     = fs.Duration("timeout", 5*time.Second, "per-request deadline")

		dests    = fs.Int("dests", 6, "synthetic destinations")
		pathsPer = fs.Int("paths-per", 500, "candidate paths per destination")
		statsPer = fs.Int("stats-per", 2, "stats documents per path")

		shards       = fs.Int("shards", 4, "serving replicas")
		cacheSize    = fs.Int("cache", 512, "per-shard response cache entries (0 = off)")
		maxInflight  = fs.Int("max-inflight", 0, "admission: concurrently admitted requests (0 = unlimited)")
		queueDepth   = fs.Int("queue-depth", 32, "admission: bounded accept queue")
		queueTimeout = fs.Duration("queue-timeout", 100*time.Millisecond, "admission: max slot wait before 503")
		limitRate    = fs.Float64("limit-rate", 0, "per-client token-bucket rate (0 = off)")
		limitBurst   = fs.Float64("limit-burst", 10, "per-client token-bucket burst")

		withChaos = fs.Bool("chaos", false, "apply the seed's serving chaos plan mid-run")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cfg := load.Config{
		Seed: *seed, Mode: load.Mode(*mode), Dist: load.Dist(*dist),
		Clients: *clients, Requests: *requests, ArrivalRate: *rate,
		ThinkMean: *think, IntentEvery: *intentEvery, Top: *top, Timeout: *timeout,
	}
	ccfg := cluster.Config{
		Shards: *shards, CacheEntries: *cacheSize,
		MaxInflight: *maxInflight, QueueDepth: *queueDepth, QueueTimeout: *queueTimeout,
		RatePerSec: *limitRate, Burst: *limitBurst,
	}

	topo := topology.DefaultWorld()
	net2 := simnet.New(topo, simnet.Options{Seed: *seed})
	daemon, err := sciond.New(topo, net2, topology.MyAS)
	if err != nil {
		return cliutil.Fatalf(stderr, "loadgen", "%v", err)
	}
	db := docdb.MustOpen()
	destIDs, err := load.SeedSynthetic(db, topo, *dests, *pathsPer, *statsPer, *seed)
	if err != nil {
		return cliutil.Fatalf(stderr, "loadgen", "%v", err)
	}
	cfg.Destinations = destIDs
	explorer := upin.NewDomainExplorer(topo, []addr.ISD{16, 17, 19})
	tier := cluster.New(db, daemon, net2, explorer, topo, ccfg)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return cliutil.Fatalf(stderr, "loadgen", "%v", err)
	}
	httpSrv := &http.Server{Handler: tier}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	baseURL := fmt.Sprintf("http://%s", ln.Addr())

	schedule, err := load.BuildSchedule(cfg)
	if err != nil {
		return cliutil.Fatalf(stderr, "loadgen", "%v", err)
	}
	runner := &load.Runner{BaseURL: baseURL, Client: &http.Client{}}
	var driver *load.ChaosDriver
	if *withChaos {
		driver = &load.ChaosDriver{
			DB:    db,
			Plan:  chaos.NewServingPlan(*seed, cfg.Requests),
			Dests: destIDs,
		}
		runner.OnComplete = driver.Notify
		driver.Start()
	}
	fmt.Fprintf(stderr, "loadgen: %s fleet of %d, %d requests against %d shards at %s\n",
		cfg.Mode, cfg.Clients, cfg.Requests, ccfg.Shards, baseURL)
	result, err := runner.Run(context.Background(), schedule)
	if err != nil {
		return cliutil.Fatalf(stderr, "loadgen", "%v", err)
	}

	rep := report{Config: cfg, Cluster: ccfg, Result: result, Tier: tier.Stats()}
	if driver != nil {
		rep.Firings = driver.Firings()
		rec := load.AnalyzeRecovery(result, rep.Firings)
		rep.Recovery = &rec
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return cliutil.Fatalf(stderr, "loadgen", "%v", err)
	}
	if err := tier.Close(); err != nil {
		return cliutil.Fatalf(stderr, "loadgen", "drain: %v", err)
	}
	return 0
}
