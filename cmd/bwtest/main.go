// Command bwtest mirrors scion-bwtestclient: bidirectional bandwidth tests
// with the bwtester parameter grammar — "-cs 3,64,?,12Mbps" for the
// client-to-server direction, "-sc" for server-to-client, "?" wildcards
// inferred, MTU resolving against the chosen path (§3.3).
//
// Usage:
//
//	bwtest -s 19-ffaa:0:1303 -cs 3,64,?,12Mbps
//	bwtest -s 19-ffaa:0:1303 -cs 3,MTU,?,150Mbps -sequence '...'
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/upin/scionpath/internal/bwtest"
	"github.com/upin/scionpath/internal/cliutil"
	"github.com/upin/scionpath/internal/pathmgr"
	"github.com/upin/scionpath/internal/sciond"
)

func main() { os.Exit(run(os.Args[1:])) }

func run(args []string) int {
	fs := flag.NewFlagSet("bwtest", flag.ContinueOnError)
	var (
		server   = fs.String("s", "", "server: ISD-AS, host address or server id (required)")
		cs       = fs.String("cs", "3,1000,?,12Mbps", "client->server parameters duration,size,count,bw")
		sc       = fs.String("sc", "", "server->client parameters (defaults to -cs)")
		sequence = fs.String("sequence", "", "hop-predicate sequence pinning the path")
		seed     = fs.Int64("seed", 1, "simulation seed")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *server == "" {
		fs.Usage()
		return 2
	}
	w, err := cliutil.NewWorld(*seed, "", "")
	if err != nil {
		return cliutil.Fatalf(os.Stderr, "bwtest", "%v", err)
	}
	ia, _, err := w.ResolveDestination(*server)
	if err != nil {
		return cliutil.Fatalf(os.Stderr, "bwtest", "%v", err)
	}
	var path *pathmgr.Path
	if *sequence != "" {
		seq, err := pathmgr.ParseSequence(*sequence)
		if err != nil {
			return cliutil.Fatalf(os.Stderr, "bwtest", "%v", err)
		}
		path, err = w.Daemon.ResolveSequence(ia, seq)
		if err != nil {
			return cliutil.Fatalf(os.Stderr, "bwtest", "%v", err)
		}
	} else {
		paths, err := w.Daemon.ShowPaths(ia, sciond.ShowPathsOpts{MaxPaths: 1})
		if err != nil || len(paths) == 0 {
			return cliutil.Fatalf(os.Stderr, "bwtest", "no path to %s: %v", ia, err)
		}
		path = paths[0]
	}

	csParams, err := bwtest.ParseParams(*cs, path.MTU)
	if err != nil {
		return cliutil.Fatalf(os.Stderr, "bwtest", "-cs: %v", err)
	}
	scParams := bwtest.Params{}
	if *sc != "" {
		scParams, err = bwtest.ParseParams(*sc, path.MTU)
		if err != nil {
			return cliutil.Fatalf(os.Stderr, "bwtest", "-sc: %v", err)
		}
	}
	res, err := bwtest.Run(w.Net, path, csParams, scParams)
	if err != nil {
		return cliutil.Fatalf(os.Stderr, "bwtest", "%v", err)
	}
	fmt.Printf("bwtest to %s via %s\n", ia, path.Sequence())
	fmt.Printf("CS (%s): attempted %s, achieved %s, loss %.1f%% (%d/%d packets)\n",
		csParams, bwtest.FormatBandwidth(res.CS.AttemptedBps), bwtest.FormatBandwidth(res.CS.AchievedBps),
		100*res.CS.LossFraction, res.CS.PacketsReceived, res.CS.PacketsSent)
	used := csParams
	if scParams != (bwtest.Params{}) {
		used = scParams
	}
	fmt.Printf("SC (%s): attempted %s, achieved %s, loss %.1f%% (%d/%d packets)\n",
		used, bwtest.FormatBandwidth(res.SC.AttemptedBps), bwtest.FormatBandwidth(res.SC.AchievedBps),
		100*res.SC.LossFraction, res.SC.PacketsReceived, res.SC.PacketsSent)
	return 0
}
