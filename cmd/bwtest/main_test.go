package main

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, f func() int) (string, int) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	code := f()
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	io.Copy(&buf, r)
	return buf.String(), code
}

func TestBwtestPaperParameters(t *testing.T) {
	out, code := capture(t, func() int {
		return run([]string{"-s", "19-ffaa:0:1303", "-cs", "3,64,?,12Mbps"})
	})
	if code != 0 {
		t.Fatalf("exit %d: %s", code, out)
	}
	for _, want := range []string{"bwtest to 19-ffaa:0:1303", "CS (", "SC (", "achieved"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestBwtestMTUAndSeparateSC(t *testing.T) {
	out, code := capture(t, func() int {
		return run([]string{"-s", "13", "-cs", "3,MTU,?,150Mbps", "-sc", "3,64,?,12Mbps"})
	})
	if code != 0 {
		t.Fatalf("exit %d: %s", code, out)
	}
	if !strings.Contains(out, "1472") {
		t.Errorf("MTU not resolved:\n%s", out)
	}
}

func TestBwtestErrors(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"-s", "zz"},
		{"-s", "1", "-cs", "bogus"},
		{"-s", "1", "-cs", "3,64,?,12Mbps", "-sc", "bogus"},
		{"-s", "1", "-sequence", "%%"},
	} {
		if _, code := capture(t, func() int { return run(args) }); code == 0 {
			t.Errorf("args %v accepted", args)
		}
	}
}
