// Package scionpath reproduces "Evaluation of SCION for User-driven Path
// Control: a Usability Study" (Battipaglia, Boldrini, Koning, Grosso —
// SC-W 2023): a SCIONLab-like network substrate, the SCION measurement
// tools (showpaths, ping, traceroute, bwtester), the paper's test-suite
// with its MongoDB-style document database, and the user-driven path
// selection layer on top.
//
// The public surface lives in the cmd/ tools and examples/; the library is
// organised under internal/ (topology, segment, pathmgr, simnet, scmp,
// bwtest, sciond, docdb, measure, selection, stats, plot, experiments).
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every figure.
package scionpath
