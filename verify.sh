#!/usr/bin/env sh
# verify.sh — the full verification gate, run from the repo root.
#
# Tier 1: build + tests (must stay green on every PR).
# Tier 2: go vet, scionlint (the module's own static-analysis pass, see
#         docs/STATIC_ANALYSIS.md), and the race detector over the
#         concurrency-heavy packages.
#
# Exits non-zero on the first failing tier. scionlint prints its own
# "scionlint: N findings in M packages (...)" summary line.
set -e

echo "== tier 1: go build ./..."
go build ./...

echo "== tier 2: go vet ./..."
go vet ./...

echo "== tier 2: scionlint ./..."
go run ./cmd/scionlint ./...

echo "== tier 1: go test ./..."
go test ./...

echo "== tier 2: go test -race (concurrency-heavy packages)"
# docdb also smoke-runs its benchmark suite under the race detector so
# BenchmarkDocDB* (the BENCH_docdb.json trajectory, see docs/DOCDB.md)
# cannot rot. selection and upin carry the snapshot-serving concurrency
# tests (docs/SERVING.md): the randomized cache-vs-oracle interleavings and
# the serve-while-measure front-end test.
go test -race -bench=DocDB -benchtime=1x ./internal/docdb
go test -race ./internal/simnet ./internal/measure
go test -race ./internal/selection ./internal/upin

echo "== tier 2: docdb benchmark smoke (-benchtime 1x)"
go test -run '^$' -bench=DocDB -benchtime=1x ./internal/docdb >/dev/null

echo "== tier 2: serving benchmark smoke (-benchtime 1x)"
# Keeps BenchmarkServing* (the BENCH_serving.json trajectory) runnable.
go test -run '^$' -bench=Serving -benchtime=1x ./internal/selection >/dev/null

echo "== tier 2: parallel campaign smoke (testsuite --workers 4)"
go run ./cmd/testsuite 2 --servers 1,2,3 --workers 4 --no-bandwidth \
	--ping-count 5 --ping-interval 1ms >/dev/null

echo "verify.sh: all tiers passed"
