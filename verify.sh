#!/usr/bin/env sh
# verify.sh — the full verification gate, run from the repo root.
#
# Tier 1: build + tests (must stay green on every PR).
# Tier 2: go vet, scionlint (the module's own static-analysis pass, see
#         docs/STATIC_ANALYSIS.md), the race detector over the
#         concurrency-heavy packages (including a chaos-harness subset,
#         see docs/CHAOS.md), fuzzer smoke runs, and a coverage floor
#         over internal/...
#
# Exits non-zero on the first failing tier. scionlint prints its own
# "scionlint: N findings in M packages (...)" summary line.
set -e

# Statement-coverage floor for ./internal/... (tier 2). Measured 89.5% after
# the multipath selection PR; the floor sits a point below so legitimate
# code growth doesn't trip it, while a test-free subsystem would.
COVERAGE_FLOOR=88.5

echo "== tier 1: go build ./..."
go build ./...

echo "== tier 2: go vet ./..."
go vet ./...

echo "== tier 2: scionlint ./... (baseline must be empty; timing shows loader speedup)"
# Two runs against the checked-in (empty) baseline: sequential loader
# first, concurrent loader second. The -timing lines on stderr prove the
# concurrent package loader's wall-clock win in CI logs. -parallel 4 is
# explicit (not 0 = GOMAXPROCS) so the concurrent scheduler runs even on
# a single-CPU box, where overlapped parse I/O still wins.
go run ./cmd/scionlint -timing -parallel 1 -baseline lint-baseline.json ./...
go run ./cmd/scionlint -timing -parallel 4 -baseline lint-baseline.json ./...

echo "== tier 1: go test ./..."
go test ./...

echo "== tier 2: go test -race (concurrency-heavy packages)"
# docdb also smoke-runs its benchmark suite under the race detector so
# BenchmarkDocDB* (the BENCH_docdb.json trajectory, see docs/DOCDB.md)
# cannot rot — including the backend= sub-runs, which put the segment
# backend's sharded writers and group committer under the race detector.
# selection and upin carry the snapshot-serving concurrency tests
# (docs/SERVING.md): the randomized cache-vs-oracle interleavings and the
# serve-while-measure front-end test.
go test -race -bench=DocDB -benchtime=1x ./internal/docdb
go test -race ./internal/simnet ./internal/measure
go test -race ./internal/selection ./internal/upin
# segment carries the parallel-beaconing worker pool, pathmgr the
# combination cache (single-flight fill, invalidation, concurrent readers
# vs the naive-combiner oracle), and sciond the atomic combiner publication
# with double-checked refresh (docs/PATHDISC.md).
go test -race ./internal/segment ./internal/pathmgr ./internal/sciond
# cluster carries the sharded serving tier (admission gate, per-client
# limiter, response caches under concurrent invalidation) and load the
# client fleets hammering it over real HTTP (docs/LOAD.md).
go test -race ./internal/upin/cluster ./internal/load

echo "== tier 2: go test -shuffle=on ./internal/... (order independence)"
# Re-runs the internal suites in random order under the race detector's
# sibling gate: a test that only passes after a specific predecessor (a
# shared engine, a leaked clock advance) fails here. The shuffle seed is
# printed by go test for replaying a failure.
go test -shuffle=on ./internal/... >/dev/null

echo "== tier 2: chaos harness under the race detector (short subset)"
# Full chaotic runs (crash, truncate, resume, verify all four invariants)
# for a handful of seeds; the 50-seed sweep runs race-free in tier 1.
go test -race -run 'TestChaosSmall|TestPlanDeterminism' ./internal/chaos

echo "== tier 2: fuzzer smoke (10s each)"
# Differential fuzz of the compiled query filters against the naive
# evaluator, the segment-log replayer against corrupted shard files
# (truncations and bit flips must never panic or replay past a bad CRC),
# and the lint directive parser against arbitrary comment text. The
# checked-in corpora under testdata/fuzz/ always run as part of tier 1;
# this explores beyond them for a bounded time.
go test -run '^$' -fuzz '^FuzzCompileFilter$' -fuzztime 10s ./internal/docdb >/dev/null
go test -run '^$' -fuzz '^FuzzSegmentReplay$' -fuzztime 10s ./internal/docdb >/dev/null
go test -run '^$' -fuzz '^FuzzIgnoreDirective$' -fuzztime 10s ./internal/lint >/dev/null

echo "== tier 2: coverage floor (internal/..., >= ${COVERAGE_FLOOR}%)"
coverprofile="$(mktemp)"
trap 'rm -f "$coverprofile"' EXIT
go test -coverprofile="$coverprofile" ./internal/... >/dev/null
go tool cover -func="$coverprofile" | awk -v floor="$COVERAGE_FLOOR" '
	/^total:/ {
		sub(/%$/, "", $NF)
		printf "coverage: %.1f%% of statements (floor %.1f%%)\n", $NF, floor
		if ($NF + 0 < floor + 0) {
			printf "coverage gate FAILED: %.1f%% < %.1f%%\n", $NF, floor
			exit 1
		}
	}'

echo "== tier 2: docdb benchmark smoke (-benchtime 1x)"
go test -run '^$' -bench=DocDB -benchtime=1x ./internal/docdb >/dev/null

echo "== tier 2: serving benchmark smoke (-benchtime 1x)"
# Keeps BenchmarkServing* (the BENCH_serving.json trajectory) and
# BenchmarkMultipath* (BENCH_multipath.json, see docs/SELECTION.md)
# runnable.
go test -run '^$' -bench='Serving|Multipath' -benchtime=1x ./internal/selection >/dev/null

echo "== tier 2: load harness benchmark smoke (-benchtime 1x)"
# Keeps BenchmarkLoad* (the BENCH_load.json trajectory, see docs/LOAD.md)
# runnable: the fleet x shards matrix, the 2x-overload probe, and the
# chaos-under-load recovery run.
go test -run '^$' -bench=Load -benchtime=1x ./internal/load >/dev/null

echo "== tier 2: path-discovery benchmark smoke (-benchtime 1x)"
# Keeps BenchmarkPathDisc* (the BENCH_pathdisc.json trajectory, see
# docs/PATHDISC.md) runnable, including the 1k/5k-AS generated worlds.
go test -run '^$' -bench=PathDisc -benchtime=1x . >/dev/null

echo "== tier 2: parallel campaign smoke (testsuite --workers 4)"
go run ./cmd/testsuite 2 --servers 1,2,3 --workers 4 --no-bandwidth \
	--ping-count 5 --ping-interval 1ms >/dev/null

echo "verify.sh: all tiers passed"
