package upin

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
)

func TestServerPathSet(t *testing.T) {
	srv, f := testServer(t, 70)
	rec, body := get(t, srv, fmt.Sprintf("/api/pathset?server=%d&k=2", f.serverID))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var set pathSetJSON
	if err := json.Unmarshal(body, &set); err != nil {
		t.Fatal(err)
	}
	if set.ServerID != f.serverID {
		t.Errorf("server_id %d, want %d", set.ServerID, f.serverID)
	}
	if set.K != 2 || len(set.Paths) != 2 {
		t.Fatalf("k=%d with %d paths, want 2", set.K, len(set.Paths))
	}
	if set.Paths[0].PathID == set.Paths[1].PathID {
		t.Error("duplicate path in the set")
	}
	if set.Disjointness < 0 || set.Disjointness > 1 {
		t.Errorf("disjointness %v out of [0,1]", set.Disjointness)
	}

	// The set's first path is the plain best path.
	recB, bodyB := get(t, srv, fmt.Sprintf("/api/paths?server=%d&top=1", f.serverID))
	if recB.Code != http.StatusOK {
		t.Fatalf("paths status %d", recB.Code)
	}
	var best []candidateJSON
	if err := json.Unmarshal(bodyB, &best); err != nil {
		t.Fatal(err)
	}
	if len(best) != 1 || best[0].PathID != set.Paths[0].PathID {
		t.Errorf("set head %q != best path %q", set.Paths[0].PathID, best[0].PathID)
	}
}

func TestServerPathSetDefaultsAndObjective(t *testing.T) {
	srv, f := testServer(t, 71)
	// k omitted -> the engine default of 2.
	rec, body := get(t, srv, fmt.Sprintf("/api/pathset?server=%d", f.serverID))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var set pathSetJSON
	if err := json.Unmarshal(body, &set); err != nil {
		t.Fatal(err)
	}
	if set.K != 2 {
		t.Errorf("default k=%d, want 2", set.K)
	}
	// A valid objective is accepted; a bogus one is a 400.
	if rec, body := get(t, srv, fmt.Sprintf("/api/pathset?server=%d&objective=bandwidth", f.serverID)); rec.Code != http.StatusOK {
		t.Errorf("objective=bandwidth -> %d: %s", rec.Code, body)
	}
	if rec, _ := get(t, srv, fmt.Sprintf("/api/pathset?server=%d&objective=warp", f.serverID)); rec.Code != http.StatusBadRequest {
		t.Errorf("objective=warp -> %d, want 400", rec.Code)
	}
}

func TestServerPathSetErrors(t *testing.T) {
	srv, f := testServer(t, 72)
	cases := []struct {
		path     string
		wantCode int
	}{
		{"/api/pathset", http.StatusBadRequest},                                // no server
		{"/api/pathset?server=abc", http.StatusBadRequest},                     // non-numeric server
		{"/api/pathset?server=0", http.StatusBadRequest},                       // server below 1
		{"/api/pathset?server=999", http.StatusNotFound},                       // unknown server
		{fmt.Sprintf("/api/pathset?server=%d&k=0", f.serverID), 400},           // k below 1
		{fmt.Sprintf("/api/pathset?server=%d&k=-3", f.serverID), 400},          // negative k
		{fmt.Sprintf("/api/pathset?server=%d&k=abc", f.serverID), 400},         // non-numeric k
		{fmt.Sprintf("/api/pathset?server=%d&k=1.5", f.serverID), 400},         // fractional k
		{fmt.Sprintf("/api/pathset?server=%d&k=999", f.serverID), http.StatusOK}, // k > pool clamps
	}
	for _, c := range cases {
		rec, body := get(t, srv, c.path)
		if rec.Code != c.wantCode {
			t.Errorf("%s -> %d, want %d (%s)", c.path, rec.Code, c.wantCode, body)
		}
	}
	// The clamped request returns every candidate exactly once.
	_, body := get(t, srv, fmt.Sprintf("/api/pathset?server=%d&k=999", f.serverID))
	var set pathSetJSON
	if err := json.Unmarshal(body, &set); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, p := range set.Paths {
		if seen[p.PathID] {
			t.Errorf("path %s appears twice", p.PathID)
		}
		seen[p.PathID] = true
	}
	if set.K != len(set.Paths) || set.K < 2 {
		t.Errorf("clamped set k=%d paths=%d", set.K, len(set.Paths))
	}
}

// TestServerPathsTopParam pins the ?top= contract on /api/paths: valid K
// truncates, K larger than the pool is a no-op, and zero / negative /
// non-numeric values are rejected rather than silently defaulted.
func TestServerPathsTopParam(t *testing.T) {
	srv, f := testServer(t, 73)
	all := func() int {
		rec, body := get(t, srv, fmt.Sprintf("/api/paths?server=%d", f.serverID))
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rec.Code, body)
		}
		var cands []candidateJSON
		if err := json.Unmarshal(body, &cands); err != nil {
			t.Fatal(err)
		}
		return len(cands)
	}()
	if all < 2 {
		t.Fatalf("fixture offers only %d candidates", all)
	}
	cases := []struct {
		top      string
		wantCode int
		wantLen  int // checked only on 200
	}{
		{"1", http.StatusOK, 1},
		{fmt.Sprint(all), http.StatusOK, all},
		{fmt.Sprint(all + 50), http.StatusOK, all}, // top > len(cands): serve all
		{"0", http.StatusBadRequest, 0},
		{"-2", http.StatusBadRequest, 0},
		{"abc", http.StatusBadRequest, 0},
		{"1.5", http.StatusBadRequest, 0},
		{"", http.StatusOK, all}, // explicit empty value = unset
	}
	for _, c := range cases {
		rec, body := get(t, srv, fmt.Sprintf("/api/paths?server=%d&top=%s", f.serverID, c.top))
		if rec.Code != c.wantCode {
			t.Errorf("top=%q -> %d, want %d (%s)", c.top, rec.Code, c.wantCode, body)
			continue
		}
		if c.wantCode != http.StatusOK {
			continue
		}
		var cands []candidateJSON
		if err := json.Unmarshal(body, &cands); err != nil {
			t.Fatal(err)
		}
		if len(cands) != c.wantLen {
			t.Errorf("top=%q served %d candidates, want %d", c.top, len(cands), c.wantLen)
		}
	}
}
