package upin

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCloseUnderLiveLoad is the drain regression for the serving tier: a
// saturating fleet hammers the server over real HTTP while Close lands
// mid-flight. Every response must be either a clean 200 (finished before
// or during the drain) or a well-formed 503 (refused after) — never a
// torn body, a hung request, or a transport error. Run under -race this
// also proves the drain path has no data race between in-flight handlers
// and shutdown.
func TestCloseUnderLiveLoad(t *testing.T) {
	srv, f := testServer(t, 66)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	const fleet = 8
	var (
		wg        sync.WaitGroup
		started   atomic.Int64
		ok200     atomic.Int64
		ok503     atomic.Int64
		badStatus atomic.Int64
		transport atomic.Int64
		stop      atomic.Bool
	)
	url := fmt.Sprintf("%s/api/paths?server=%d", ts.URL, f.serverID)
	for c := 0; c < fleet; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				started.Add(1)
				resp, err := client.Get(url)
				if err != nil {
					transport.Add(1)
					continue
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch {
				case err != nil:
					transport.Add(1)
				case resp.StatusCode == http.StatusOK && len(body) > 0:
					ok200.Add(1)
				case resp.StatusCode == http.StatusServiceUnavailable && len(body) > 0:
					ok503.Add(1)
				default:
					badStatus.Add(1)
				}
			}
		}()
	}

	// Let the fleet saturate, then drain mid-flight.
	for started.Load() < 3*fleet {
		time.Sleep(time.Millisecond)
	}
	closed := make(chan error)
	go func() { closed <- srv.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not drain within 10s")
	}
	// Keep the fleet running briefly against the closed server, then stop.
	for n := started.Load(); started.Load() < n+2*fleet; {
		time.Sleep(time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()

	if ok200.Load() == 0 {
		t.Error("no request succeeded before the drain")
	}
	if ok503.Load() == 0 {
		t.Error("no request was refused after the drain")
	}
	if n := badStatus.Load(); n != 0 {
		t.Errorf("%d responses were neither clean 200 nor 503", n)
	}
	if n := transport.Load(); n != 0 {
		t.Errorf("%d transport errors — a drained server must never tear a connection", n)
	}
	if st := srv.Stats(); st.UnavailableTotal != ok503.Load() {
		t.Errorf("unavailable_total = %d, fleet observed %d refusals", st.UnavailableTotal, ok503.Load())
	}
}
