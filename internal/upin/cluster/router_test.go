package cluster

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestRendezvousSingleShard(t *testing.T) {
	// One replica owns everything, including degenerate destinations; the
	// shards<=1 short-circuit must never index out of range.
	for _, dest := range []int{-5, 0, 1, 7, 1 << 30} {
		if s := rendezvous(dest, 1); s != 0 {
			t.Errorf("rendezvous(%d, 1) = %d, want 0", dest, s)
		}
		if s := rendezvous(dest, 0); s != 0 {
			t.Errorf("rendezvous(%d, 0) = %d, want 0", dest, s)
		}
	}
}

// TestDestinationIntentBodies pins the intent peek: an empty body and a
// body larger than the peek bound are both unroutable (dest 0), and the
// shard still receives the body byte-for-byte.
func TestDestinationIntentBodies(t *testing.T) {
	r := &Router{}
	post := func(body string) *http.Request {
		return httptest.NewRequest(http.MethodPost, "/api/intent", strings.NewReader(body))
	}

	// Empty body: no destination, restored body still empty.
	req := post("")
	if id, ok := r.destination(req); ok || id != 0 {
		t.Errorf("empty body routed to %d", id)
	}
	if rest, _ := io.ReadAll(req.Body); len(rest) != 0 {
		t.Errorf("empty body restored as %d bytes", len(rest))
	}

	// Oversized body: the router reads only intentPeekBytes, yet the shard
	// must see every byte.
	big := `{"server_id": 3, "pad": "` + strings.Repeat("x", intentPeekBytes) + `"}`
	req = post(big)
	if id, ok := r.destination(req); ok || id != 0 {
		// The JSON is cut mid-pad at the peek bound, so it cannot parse.
		t.Errorf("oversized body routed to %d", id)
	}
	rest, err := io.ReadAll(req.Body)
	if err != nil {
		t.Fatal(err)
	}
	if string(rest) != big {
		t.Errorf("oversized body not restored: got %d bytes, want %d", len(rest), len(big))
	}

	// A normal intent routes and restores.
	req = post(`{"server_id": 7}`)
	if id, ok := r.destination(req); !ok || id != 7 {
		t.Errorf("intent routed to %d (ok=%v), want 7", id, ok)
	}
	if rest, _ := io.ReadAll(req.Body); string(rest) != `{"server_id": 7}` {
		t.Errorf("intent body not restored: %q", rest)
	}
}

func TestDestinationPathSet(t *testing.T) {
	r := &Router{}
	req := httptest.NewRequest(http.MethodGet, "/api/pathset?server=5&k=3", nil)
	if id, ok := r.destination(req); !ok || id != 5 {
		t.Errorf("pathset routed to %d (ok=%v), want 5", id, ok)
	}
	req = httptest.NewRequest(http.MethodGet, "/api/pathset?server=abc", nil)
	if _, ok := r.destination(req); ok {
		t.Error("non-numeric server routed")
	}
}

// TestLimiterTableReset: the client table resets once it outgrows
// maxClients instead of growing without bound, and clients keep being
// admitted across the reset (the reset errs toward admitting).
func TestLimiterTableReset(t *testing.T) {
	l := newLimiter(1, 1)
	clock := time.Unix(1_700_000_000, 0)
	l.now = func() time.Time { return clock }

	// Exhaust one client, then flood with distinct clients past the bound.
	if !l.allow("victim") {
		t.Fatal("first request rejected")
	}
	if l.allow("victim") {
		t.Fatal("burst=1 granted a second token")
	}
	for i := 0; i <= maxClients; i++ {
		if !l.allow(fmt.Sprintf("client-%d", i)) {
			t.Fatalf("fresh client %d rejected", i)
		}
	}
	if n := len(l.buckets); n > maxClients+1 {
		t.Fatalf("bucket table grew to %d entries, bound is %d", n, maxClients)
	}
	// The reset forgot the victim's empty bucket: it gets a fresh burst.
	if !l.allow("victim") {
		t.Error("client throttled across a table reset")
	}
}

// TestPathSetThroughCluster: /api/pathset routes on ?server=, is served
// from the generation-validated cache on repeats, and does not collide
// with /api/paths entries sharing the same query string.
func TestPathSetThroughCluster(t *testing.T) {
	f := setup(t, 76, 2)
	tier := f.router(Config{Shards: 2, CacheEntries: 64})
	id := f.serverIDs[0]
	setPath := fmt.Sprintf("/api/pathset?server=%d", id)
	pathsPath := fmt.Sprintf("/api/paths?server=%d", id)

	// Prime /api/paths first: if the cache keyed on RawQuery alone, the
	// pathset request below would be served this body.
	pathsBody := get(t, tier, pathsPath, "")
	if pathsBody.Code != http.StatusOK {
		t.Fatalf("paths status %d", pathsBody.Code)
	}
	first := get(t, tier, setPath, "")
	if first.Code != http.StatusOK {
		t.Fatalf("pathset status %d: %s", first.Code, first.Body.String())
	}
	if first.Header().Get("X-Cache") == "hit" {
		t.Fatal("first pathset GET served from the paths cache entry")
	}
	if bytes.Equal(first.Body.Bytes(), pathsBody.Body.Bytes()) {
		t.Fatal("pathset answer identical to paths answer")
	}
	second := get(t, tier, setPath, "")
	if second.Header().Get("X-Cache") != "hit" {
		t.Error("repeat pathset GET not served from cache")
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Error("cached pathset body differs")
	}

	// Sharded and single-replica answers agree.
	single := f.router(Config{Shards: 1})
	if a := get(t, single, setPath, ""); !bytes.Equal(a.Body.Bytes(), first.Body.Bytes()) {
		t.Error("sharded pathset answer differs from single replica")
	}
}
