package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/upin/scionpath/internal/addr"
	"github.com/upin/scionpath/internal/docdb"
	"github.com/upin/scionpath/internal/measure"
	"github.com/upin/scionpath/internal/sciond"
	"github.com/upin/scionpath/internal/simnet"
	"github.com/upin/scionpath/internal/topology"
	"github.com/upin/scionpath/internal/upin"
)

type fixture struct {
	topo      *topology.Topology
	net       *simnet.Network
	daemon    *sciond.Daemon
	db        *docdb.DB
	explorer  *upin.DomainExplorer
	serverIDs []int
}

// setup measures nServers destinations in the default SCIONLab world so
// the tier has several destinations to route.
func setup(t testing.TB, seed int64, nServers int) *fixture {
	t.Helper()
	topo := topology.DefaultWorld()
	net := simnet.New(topo, simnet.Options{Seed: seed})
	daemon, err := sciond.New(topo, net, topology.MyAS)
	if err != nil {
		t.Fatal(err)
	}
	db := docdb.MustOpen()
	if err := measure.SeedServers(db, topo); err != nil {
		t.Fatal(err)
	}
	servers, err := measure.Servers(db)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int, 0, nServers)
	// Lead with the in-domain AWS Ireland destination (intent tests need
	// a verifiable path), then fill with the catalogue head.
	for _, s := range servers {
		if s.Address.IA == topology.AWSIreland {
			ids = append(ids, s.ID)
		}
	}
	for _, s := range servers {
		if len(ids) >= nServers {
			break
		}
		if s.Address.IA != topology.AWSIreland {
			ids = append(ids, s.ID)
		}
	}
	suite := &measure.Suite{DB: db, Daemon: daemon}
	if _, err := suite.Run(context.Background(), measure.RunOpts{
		Iterations: 2, ServerIDs: ids,
		PingCount: 4, PingInterval: 5 * time.Millisecond,
		BwDuration: 200 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	explorer := upin.NewDomainExplorer(topo, []addr.ISD{16, 17, 19})
	return &fixture{topo: topo, net: net, daemon: daemon, db: db,
		explorer: explorer, serverIDs: ids}
}

func (f *fixture) router(cfg Config) *Router {
	return New(f.db, f.daemon, f.net, f.explorer, f.topo, cfg)
}

func get(t *testing.T, h http.Handler, path, client string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	if client != "" {
		req.Header.Set("X-Client-ID", client)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestRendezvousPlacement(t *testing.T) {
	// Deterministic: the same destination always lands on the same shard.
	for dest := 1; dest <= 100; dest++ {
		if a, b := rendezvous(dest, 4), rendezvous(dest, 4); a != b {
			t.Fatalf("dest %d: placement not stable (%d vs %d)", dest, a, b)
		}
	}
	// Balanced: over 1000 destinations and 4 shards every shard owns a
	// reasonable share (FNV-64a spreads integer keys well).
	counts := make([]int, 4)
	for dest := 1; dest <= 1000; dest++ {
		counts[rendezvous(dest, 4)]++
	}
	for s, c := range counts {
		if c < 150 || c > 350 {
			t.Errorf("shard %d owns %d of 1000 destinations (want 150..350); all: %v",
				s, c, counts)
		}
	}
	// Minimal disruption: growing 4 -> 5 shards moves only destinations
	// whose maximum changed — everything else keeps its shard.
	moved := 0
	for dest := 1; dest <= 1000; dest++ {
		from, to := rendezvous(dest, 4), rendezvous(dest, 5)
		if from != to {
			moved++
			if to != 4 {
				t.Fatalf("dest %d moved %d -> %d, not to the new shard", dest, from, to)
			}
		}
	}
	if moved < 100 || moved > 350 {
		t.Errorf("adding a 5th shard moved %d of 1000 destinations, want ~200", moved)
	}
}

// TestShardedAnswersMatchSingle: the 4-shard tier serves byte-identical
// /api/paths answers to a single replica, for every measured destination.
func TestShardedAnswersMatchSingle(t *testing.T) {
	f := setup(t, 70, 3)
	single := f.router(Config{Shards: 1})
	tier := f.router(Config{Shards: 4})
	for _, id := range f.serverIDs {
		path := fmt.Sprintf("/api/paths?server=%d", id)
		a := get(t, single, path, "")
		b := get(t, tier, path, "")
		if a.Code != http.StatusOK || b.Code != http.StatusOK {
			t.Fatalf("server %d: single=%d tier=%d", id, a.Code, b.Code)
		}
		if !bytes.Equal(a.Body.Bytes(), b.Body.Bytes()) {
			t.Errorf("server %d: sharded answer differs from single replica", id)
		}
	}
}

// TestResponseCache: a repeat GET is served from the shard cache, and a
// database write invalidates it.
func TestResponseCache(t *testing.T) {
	f := setup(t, 71, 2)
	tier := f.router(Config{Shards: 2, CacheEntries: 64})
	path := fmt.Sprintf("/api/paths?server=%d", f.serverIDs[0])

	first := get(t, tier, path, "")
	if first.Code != http.StatusOK {
		t.Fatalf("status %d", first.Code)
	}
	second := get(t, tier, path, "")
	if second.Header().Get("X-Cache") != "hit" {
		t.Error("second identical GET not served from cache")
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Error("cached body differs from computed body")
	}
	st := tier.Stats()
	if st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Errorf("cache counters hits=%d misses=%d, want 1/1", st.CacheHits, st.CacheMisses)
	}

	// A stats write bumps the collection generation: the cache must not
	// serve the stale body.
	if err := f.db.Collection(measure.ColStats).Insert(docdb.Document{
		"_id": "cache-invalidation-probe", measure.FPathID: measure.PathID(f.serverIDs[0], 0),
		measure.FServerID: f.serverIDs[0], measure.FTimestamp: int64(1_900_000_000_000),
		measure.FLoss: 0.0, measure.FAvgLatency: 1.0, measure.FMdev: 0.1,
		measure.FBwUpMTU: 1e6, measure.FBwDownMTU: 1e6,
	}); err != nil {
		t.Fatal(err)
	}
	third := get(t, tier, path, "")
	if third.Header().Get("X-Cache") == "hit" {
		t.Error("GET after a write served from stale cache")
	}
	if bytes.Equal(first.Body.Bytes(), third.Body.Bytes()) {
		t.Error("response did not change after the write reached the snapshot")
	}
}

// TestRateLimiter: the token bucket throttles one client without touching
// another, and refills over time.
func TestRateLimiter(t *testing.T) {
	l := newLimiter(1, 2) // 1 token/s, burst 2
	clock := time.Unix(1_700_000_000, 0)
	l.now = func() time.Time { return clock }

	if !l.allow("a") || !l.allow("a") {
		t.Fatal("burst of 2 rejected")
	}
	if l.allow("a") {
		t.Fatal("third immediate request admitted past burst")
	}
	if !l.allow("b") {
		t.Fatal("unrelated client throttled")
	}
	clock = clock.Add(1500 * time.Millisecond)
	if !l.allow("a") {
		t.Fatal("refilled token rejected")
	}
	if l.allow("a") {
		t.Fatal("partial refill granted a second token")
	}
}

// TestRateLimitEndToEnd: the router answers 429 with Retry-After once a
// client exhausts its bucket.
func TestRateLimitEndToEnd(t *testing.T) {
	f := setup(t, 72, 1)
	tier := f.router(Config{Shards: 2, RatePerSec: 0.001, Burst: 2})
	path := fmt.Sprintf("/api/paths?server=%d", f.serverIDs[0])
	for i := 0; i < 2; i++ {
		if rec := get(t, tier, path, "alice"); rec.Code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, rec.Code)
		}
	}
	rec := get(t, tier, path, "alice")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if rec2 := get(t, tier, path, "bob"); rec2.Code != http.StatusOK {
		t.Errorf("unrelated client got %d", rec2.Code)
	}
	if st := tier.Stats(); st.RateLimitedTotal != 1 {
		t.Errorf("rate_limited_total = %d, want 1", st.RateLimitedTotal)
	}
}

// TestGateAdmission: slots fill, the bounded queue holds one waiter, and
// everything beyond is shed.
func TestGateAdmission(t *testing.T) {
	g := newGate(1, 1, 50*time.Millisecond)
	rel1, ok := g.acquire()
	if !ok {
		t.Fatal("first acquire refused")
	}
	// Second arrival queues and times out (slot never freed).
	if _, ok := g.acquire(); ok {
		t.Fatal("second acquire admitted past MaxInflight=1")
	}
	// With the slot held and a waiter parked, a burst of arrivals is shed
	// immediately once the queue is full.
	done := make(chan bool)
	go func() {
		_, ok := g.acquire() // occupies the queue slot
		done <- ok
	}()
	for g.queuedNow() == 0 {
		time.Sleep(time.Millisecond)
	}
	if _, ok := g.acquire(); ok {
		t.Fatal("acquire admitted past the bounded queue")
	}
	rel1() // frees the slot: the parked waiter gets it
	if !<-done {
		t.Fatal("queued waiter was shed although a slot freed in time")
	}
	g2, ok := g.acquire()
	if ok {
		g2()
		t.Fatal("slot double-freed")
	}
}

// TestAdmissionEndToEnd: with zero queue and zero slots every request is
// shed with 503 + Retry-After, and the shed counter records it.
func TestAdmissionEndToEnd(t *testing.T) {
	f := setup(t, 73, 1)
	tier := f.router(Config{Shards: 1, MaxInflight: 1, QueueDepth: 1,
		QueueTimeout: 10 * time.Millisecond})
	// Occupy the only slot directly so a real request must queue and shed.
	release, ok := tier.gate.acquire()
	if !ok {
		t.Fatal("could not take the slot")
	}
	path := fmt.Sprintf("/api/paths?server=%d", f.serverIDs[0])
	rec := get(t, tier, path, "")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 (queued then timed out)", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("shed response without Retry-After")
	}
	release()
	if rec := get(t, tier, path, ""); rec.Code != http.StatusOK {
		t.Fatalf("after slot freed: status %d", rec.Code)
	}
	if st := tier.Stats(); st.ShedTotal != 1 || st.UnavailableTotal != 1 {
		t.Errorf("shed=%d unavailable=%d, want 1/1", st.ShedTotal, st.UnavailableTotal)
	}
}

// TestIntentRouting: POST /api/intent routes on the body's server_id and
// the shard still reads the full body.
func TestIntentRouting(t *testing.T) {
	f := setup(t, 74, 1)
	tier := f.router(Config{Shards: 4})
	body, _ := json.Marshal(map[string]any{
		"server_id": f.serverIDs[0], "objective": "latency",
	})
	req := httptest.NewRequest(http.MethodPost, "/api/intent", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	tier.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp upin.IntentResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Decision.PathID == "" {
		t.Error("intent decision missing path id")
	}
}

// TestClusterHealthStatsClose: tier endpoints aggregate across shards and
// Close turns the tier away cleanly.
func TestClusterHealthStatsClose(t *testing.T) {
	f := setup(t, 75, 2)
	tier := f.router(Config{Shards: 4})
	for _, id := range f.serverIDs {
		if rec := get(t, tier, fmt.Sprintf("/api/paths?server=%d", id), ""); rec.Code != http.StatusOK {
			t.Fatalf("server %d: %d", id, rec.Code)
		}
	}

	rec := get(t, tier, "/api/health", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("health status %d", rec.Code)
	}
	var health struct {
		Status   string `json:"status"`
		Shards   int    `json:"shards"`
		PerShard []any  `json:"per_shard"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Shards != 4 || len(health.PerShard) != 4 {
		t.Errorf("health: %+v", health)
	}

	rec = get(t, tier, "/api/stats", "")
	var st Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Shards != 4 || len(st.PerShard) != 4 {
		t.Fatalf("stats: %+v", st)
	}
	var shardTotal int64
	for _, s := range st.PerShard {
		shardTotal += s.RequestsTotal
	}
	if shardTotal != int64(len(f.serverIDs)) {
		t.Errorf("shards served %d requests total, want %d", shardTotal, len(f.serverIDs))
	}

	if err := tier.Close(); err != nil {
		t.Fatal(err)
	}
	if rec := get(t, tier, "/api/health", ""); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("post-close health status %d, want 503", rec.Code)
	}
}
