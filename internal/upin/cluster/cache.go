package cluster

import (
	"bytes"
	"net/http"
	"sync"
)

// genPair stamps a cached response with the collection generations it was
// computed at; a write to either collection makes the entry stale.
type genPair struct {
	paths, stats int64
}

type entry struct {
	status int
	body   []byte
}

// respCache is one shard's response cache for GET /api/paths. Entries
// are keyed by the raw query string and validated against the current
// generation pair on every hit, so it can never serve across a write —
// the cost of a write is simply that the next request per key recomputes.
type respCache struct {
	max int // immutable; 0 disables the cache

	mu      sync.Mutex
	gen     genPair          // guarded by mu
	entries map[string]entry // guarded by mu
}

func newRespCache(max int) *respCache {
	if max <= 0 {
		return nil
	}
	return &respCache{max: max, entries: make(map[string]entry)}
}

func (c *respCache) get(key string, gen genPair) (entry, bool) {
	if c == nil {
		return entry{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gen != gen {
		return entry{}, false
	}
	e, ok := c.entries[key]
	return e, ok
}

func (c *respCache) put(key string, gen genPair, e entry) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gen != gen {
		// A write landed since this shard's last fill: every cached body
		// is stale. Restart the table at the new generation pair.
		c.gen = gen
		c.entries = make(map[string]entry)
	}
	if len(c.entries) >= c.max {
		c.entries = make(map[string]entry)
	}
	c.entries[key] = e
}

// captureWriter buffers a shard's response so the router can cache it
// before forwarding. Only bodies the shard finished writing reach the
// cache (the router checks the status).
type captureWriter struct {
	header http.Header
	status int
	buf    bytes.Buffer
}

func (c *captureWriter) Header() http.Header { return c.header }

func (c *captureWriter) WriteHeader(status int) { c.status = status }

func (c *captureWriter) Write(p []byte) (int, error) { return c.buf.Write(p) }
