package cluster

import (
	"sync"
	"sync/atomic"
	"time"
)

// gate is the admission controller: maxInflight requests run, up to
// queueDepth more wait at most timeout for a slot, everything beyond
// that is shed immediately. A buffered channel is the slot pool — a
// release is one receive, and queued acquirers are served in whatever
// order the runtime unblocks their sends, which under overload is as
// good a policy as FIFO and needs no lock.
type gate struct {
	slots   chan struct{} // nil: admission disabled
	depth   int64
	timeout time.Duration

	queued atomic.Int64
}

func newGate(maxInflight, queueDepth int, timeout time.Duration) *gate {
	g := &gate{depth: int64(queueDepth), timeout: timeout}
	if maxInflight > 0 {
		g.slots = make(chan struct{}, maxInflight)
	}
	return g
}

// acquire admits one request. The returned release must be called when
// the request finishes (ok == true only).
func (g *gate) acquire() (release func(), ok bool) {
	if g.slots == nil {
		return func() {}, true
	}
	release = func() { <-g.slots }
	select {
	case g.slots <- struct{}{}:
		return release, true
	default:
	}
	// Slots full: queue if the bounded queue has room.
	if q := g.queued.Add(1); q > g.depth {
		g.queued.Add(-1)
		return nil, false
	}
	defer g.queued.Add(-1)
	if g.timeout <= 0 {
		g.slots <- struct{}{}
		return release, true
	}
	t := time.NewTimer(g.timeout)
	defer t.Stop()
	select {
	case g.slots <- struct{}{}:
		return release, true
	case <-t.C:
		return nil, false
	}
}

func (g *gate) queuedNow() int64 { return g.queued.Load() }

// limiter is a per-client token bucket: rate tokens/second refill, burst
// capacity. Buckets are created on first sight of a client and the table
// is reset when it grows past maxClients — a full reset briefly grants
// every client a fresh burst, which errs on the side of admitting.
type limiter struct {
	rate, burst float64
	// now is the clock; tests substitute a fake one.
	now func() time.Time

	mu       sync.Mutex
	buckets  map[string]*bucket // guarded by mu
	disabled bool
}

const maxClients = 8192

type bucket struct {
	tokens float64
	last   time.Time
}

func newLimiter(rate, burst float64) *limiter {
	l := &limiter{rate: rate, burst: burst, now: time.Now}
	if l.burst < 1 {
		l.burst = 1
	}
	if rate <= 0 {
		l.disabled = true
	} else {
		l.buckets = make(map[string]*bucket)
	}
	return l
}

func (l *limiter) allow(client string) bool {
	if l.disabled {
		return true
	}
	t := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.buckets) > maxClients {
		l.buckets = make(map[string]*bucket)
	}
	b, ok := l.buckets[client]
	if !ok {
		b = &bucket{tokens: l.burst, last: t}
		l.buckets[client] = b
	}
	b.tokens += t.Sub(b.last).Seconds() * l.rate
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	b.last = t
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
