// Package cluster is the horizontally sharded UPIN serving tier: N upin
// front-end replicas behind a rendezvous-hash router keyed on the
// destination server id. Every shard shares the measurement database but
// owns a disjoint subset of destinations, so each shard's selection
// snapshot holds only its share of the candidate paths (refresh cost
// divides across shards) and its response cache sees every request for
// the destinations it owns (cache affinity is the point of consistent
// routing). The router adds the tier-level protections the single server
// does not have: per-client token-bucket rate limiting and admission
// control with a bounded accept queue feeding the drain/503 path.
package cluster

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"github.com/upin/scionpath/internal/docdb"
	"github.com/upin/scionpath/internal/measure"
	"github.com/upin/scionpath/internal/sciond"
	"github.com/upin/scionpath/internal/selection"
	"github.com/upin/scionpath/internal/simnet"
	"github.com/upin/scionpath/internal/topology"
	"github.com/upin/scionpath/internal/upin"
)

// Config sizes the tier. The zero value of any field falls back to the
// documented default.
type Config struct {
	// Shards is the number of upin replicas (default 1).
	Shards int
	// MaxInflight bounds concurrently admitted requests (0 = unlimited).
	MaxInflight int
	// QueueDepth bounds requests waiting for an admission slot beyond
	// MaxInflight; arrivals past the queue are shed with 503 immediately
	// (default 0 = no waiting, shed as soon as slots are full).
	QueueDepth int
	// QueueTimeout bounds how long a queued request waits for a slot
	// before it is shed with 503. 0 means wait indefinitely, which turns
	// the deadline problem over to the client; the load harness always
	// sets it.
	QueueTimeout time.Duration
	// RatePerSec and Burst configure the per-client token bucket
	// (0 = rate limiting disabled). Clients are identified by the
	// X-Client-ID header, falling back to the remote address.
	RatePerSec float64
	Burst      float64
	// CacheEntries bounds each shard's response cache (0 = caching
	// disabled). Entries are invalidated by collection generation, so a
	// write to paths or stats drops every stale answer at once.
	CacheEntries int
}

// intentPeekBytes bounds how much of a POST /api/intent body the router
// reads to learn the destination. Intents are sub-kilobyte; 64 KiB of
// headroom keeps the router from buffering an abusive body it will never
// parse.
const intentPeekBytes = 64 << 10

// shard is one replica: an owner-filtered engine, its front-end, and the
// response cache that fronts the replica's GET /api/paths and
// /api/pathset traffic.
type shard struct {
	id     int
	srv    *upin.Server
	engine *selection.Engine
	cache  *respCache
}

// Router is the tier entry point; it implements http.Handler.
type Router struct {
	cfg    Config
	db     *docdb.DB
	shards []*shard
	gate   *gate
	limit  *limiter

	requests    atomic.Int64 // everything that reached ServeHTTP
	rateLimited atomic.Int64 // 429s
	shed        atomic.Int64 // admission 503s (queue full or slot timeout)
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	closed      atomic.Bool
}

// New builds the tier: cfg.Shards owner-filtered selection engines over
// the shared database, one upin front-end each, and the router. The
// daemon, network and explorer are shared — they are read-only at serving
// time.
func New(db *docdb.DB, daemon *sciond.Daemon, net *simnet.Network,
	explorer *upin.DomainExplorer, topo *topology.Topology, cfg Config) *Router {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	r := &Router{
		cfg:   cfg,
		db:    db,
		gate:  newGate(cfg.MaxInflight, cfg.QueueDepth, cfg.QueueTimeout),
		limit: newLimiter(cfg.RatePerSec, cfg.Burst),
	}
	for i := 0; i < cfg.Shards; i++ {
		i := i
		var engine *selection.Engine
		if cfg.Shards == 1 {
			engine = selection.New(db, topo)
		} else {
			engine = selection.New(db, topo, selection.WithServerOwner(func(id int) bool {
				return rendezvous(id, cfg.Shards) == i
			}))
		}
		r.shards = append(r.shards, &shard{
			id:     i,
			srv:    upin.NewServer(db, daemon, net, engine, explorer),
			engine: engine,
			cache:  newRespCache(cfg.CacheEntries),
		})
	}
	return r
}

// rendezvous picks the shard with the highest FNV-64a weight for the
// destination (highest-random-weight hashing): adding or removing one
// shard only moves the destinations whose maximum changed, and every
// router instance agrees on the placement with no coordination.
func rendezvous(dest, shards int) int {
	if shards <= 1 {
		return 0
	}
	var b [16]byte
	binary.LittleEndian.PutUint64(b[:8], uint64(int64(dest)))
	best, bestW := 0, uint64(0)
	for s := 0; s < shards; s++ {
		binary.LittleEndian.PutUint64(b[8:], uint64(s))
		h := fnv.New64a()
		_, _ = h.Write(b[:]) // fnv.Write never fails
		if w := h.Sum64(); s == 0 || w > bestW {
			best, bestW = s, w
		}
	}
	return best
}

// ShardFor exposes the placement function: which shard owns this
// destination. The load generator uses it to label per-shard traffic.
func (r *Router) ShardFor(dest int) int { return rendezvous(dest, len(r.shards)) }

// Shards returns the replica count.
func (r *Router) Shards() int { return len(r.shards) }

// ServeHTTP routes one request: tier checks (closed, rate limit,
// admission) first, then cluster-level endpoints, then destination
// routing into a shard.
func (r *Router) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	r.requests.Add(1)
	if r.closed.Load() {
		writeJSONError(w, http.StatusServiceUnavailable, "cluster: tier is shut down")
		return
	}
	if !r.limit.allow(clientID(req)) {
		r.rateLimited.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSONError(w, http.StatusTooManyRequests, "cluster: client rate limit exceeded")
		return
	}
	release, ok := r.gate.acquire()
	if !ok {
		r.shed.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSONError(w, http.StatusServiceUnavailable, "cluster: admission queue full")
		return
	}
	defer release()

	switch req.URL.Path {
	case "/api/health":
		r.handleHealth(w)
		return
	case "/api/stats":
		writeJSON(w, http.StatusOK, r.Stats())
		return
	}

	dest, ok := r.destination(req)
	if !ok {
		// Catalogue-wide endpoints (/api/servers, /api/nodes) read shared
		// state; any replica answers identically.
		dest = 0
	}
	sh := r.shards[rendezvous(dest, len(r.shards))]
	r.serveShard(sh, w, req)
}

// serveShard serves through the shard's response cache when the request
// is cacheable, otherwise straight through the replica.
func (r *Router) serveShard(sh *shard, w http.ResponseWriter, req *http.Request) {
	cacheable := req.URL.Path == "/api/paths" || req.URL.Path == "/api/pathset"
	if sh.cache == nil || req.Method != http.MethodGet || !cacheable {
		sh.srv.ServeHTTP(w, req)
		return
	}
	// Cached answers are valid for exactly one (paths, stats) generation
	// pair: any write to either collection makes every cached body stale.
	gen := genPair{
		paths: r.db.Collection(measure.ColPaths).Generation(),
		stats: r.db.Collection(measure.ColStats).Generation(),
	}
	// The path is part of the key: /api/paths?server=1 and
	// /api/pathset?server=1 share a query string but not an answer.
	key := req.URL.Path + "?" + req.URL.RawQuery
	if e, ok := sh.cache.get(key, gen); ok {
		r.cacheHits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Cache", "hit")
		w.WriteHeader(e.status)
		_, _ = w.Write(e.body) // client went away; nothing to do
		return
	}
	r.cacheMisses.Add(1)
	cap := &captureWriter{header: make(http.Header), status: http.StatusOK}
	sh.srv.ServeHTTP(cap, req)
	if cap.status == http.StatusOK {
		sh.cache.put(key, gen, entry{status: cap.status, body: cap.buf.Bytes()})
	}
	copyHeader(w.Header(), cap.header)
	w.WriteHeader(cap.status)
	_, _ = w.Write(cap.buf.Bytes()) // client went away; nothing to do
}

// destination extracts the server id a request targets. For POST
// /api/intent the body is read and restored, so the shard sees the
// request unchanged.
func (r *Router) destination(req *http.Request) (int, bool) {
	switch {
	case req.URL.Path == "/api/paths" || req.URL.Path == "/api/pathset":
		id, err := strconv.Atoi(req.URL.Query().Get("server"))
		return id, err == nil && id > 0
	case req.URL.Path == "/api/traces":
		// Path ids are "<serverID>_<index>" (measure.PathID).
		pid := req.URL.Query().Get("path")
		if i := strings.IndexByte(pid, '_'); i > 0 {
			if id, err := strconv.Atoi(pid[:i]); err == nil && id > 0 {
				return id, true
			}
		}
		return 0, false
	case req.URL.Path == "/api/intent" && req.Method == http.MethodPost:
		// Peek a bounded prefix — an intent is a small JSON object, so a
		// body whose server_id is not within the first 64 KiB is not one the
		// shard would accept either. The unread tail stays on req.Body and
		// the peeked prefix is stitched back in front, so the shard reads
		// the request byte-for-byte unchanged.
		peek, err := io.ReadAll(io.LimitReader(req.Body, intentPeekBytes))
		req.Body = struct {
			io.Reader
			io.Closer
		}{io.MultiReader(bytes.NewReader(peek), req.Body), req.Body}
		if err != nil {
			return 0, false
		}
		var probe struct {
			ServerID int `json:"server_id"`
		}
		if json.Unmarshal(peek, &probe) != nil || probe.ServerID < 1 {
			return 0, false
		}
		return probe.ServerID, true
	}
	return 0, false
}

// Stats is the tier-level counter reading: router totals plus every
// shard's own ServingStats.
type Stats struct {
	Shards           int                 `json:"shards"`
	RequestsTotal    int64               `json:"requests_total"`
	RateLimitedTotal int64               `json:"rate_limited_total"`
	ShedTotal        int64               `json:"shed_total"`
	CacheHits        int64               `json:"cache_hits"`
	CacheMisses      int64               `json:"cache_misses"`
	QueuedNow        int64               `json:"queued_now"`
	UnavailableTotal int64               `json:"unavailable_total"`
	PerShard         []upin.ServingStats `json:"per_shard"`
}

// Stats aggregates the tier. UnavailableTotal folds the router's own
// shedding together with 503s the shard servers wrote (e.g. post-Close),
// which is the number the overload benchmarks report.
func (r *Router) Stats() Stats {
	st := Stats{
		Shards:           len(r.shards),
		RequestsTotal:    r.requests.Load(),
		RateLimitedTotal: r.rateLimited.Load(),
		ShedTotal:        r.shed.Load(),
		CacheHits:        r.cacheHits.Load(),
		CacheMisses:      r.cacheMisses.Load(),
		QueuedNow:        r.gate.queuedNow(),
	}
	st.UnavailableTotal = st.ShedTotal
	for _, sh := range r.shards {
		s := sh.srv.Stats()
		st.UnavailableTotal += s.UnavailableTotal
		st.PerShard = append(st.PerShard, s)
	}
	return st
}

func (r *Router) handleHealth(w http.ResponseWriter) {
	type shardHealth struct {
		Shard       int   `json:"shard"`
		InFlight    int64 `json:"requests_in_flight"`
		SnapshotGen int64 `json:"snapshot_generation"`
	}
	doc := struct {
		Status   string        `json:"status"`
		Shards   int           `json:"shards"`
		PerShard []shardHealth `json:"per_shard"`
	}{Status: "ok", Shards: len(r.shards)}
	for _, sh := range r.shards {
		s := sh.srv.Stats()
		doc.PerShard = append(doc.PerShard, shardHealth{
			Shard: sh.id, InFlight: s.RequestsInFlight, SnapshotGen: s.SnapshotGen,
		})
	}
	writeJSON(w, http.StatusOK, doc)
}

// Close drains the tier: new arrivals are refused first, then every
// replica drains its in-flight requests (upin.Server.Close blocks on
// them). The database stays open — its owner closes it after Close
// returns, same ordering as the single-server shutdown.
func (r *Router) Close() error {
	r.closed.Store(true)
	for _, sh := range r.shards {
		if err := sh.srv.Close(); err != nil {
			return err
		}
	}
	return nil
}

// clientID identifies the caller for rate limiting: the X-Client-ID
// header when the client sets one, the peer address otherwise.
func clientID(req *http.Request) string {
	if id := req.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host := req.RemoteAddr
	if i := strings.LastIndexByte(host, ':'); i > 0 {
		host = host[:i]
	}
	return host
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	buf, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(buf) // client went away; nothing to do
}

func writeJSONError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func copyHeader(dst, src http.Header) {
	for k, vv := range src {
		for _, v := range vv {
			dst.Add(k, v)
		}
	}
}

func init() {
	// measure.PathID must keep the "<serverID>_" prefix the traces router
	// depends on; fail loudly at start-up if the format drifts.
	if !strings.HasPrefix(measure.PathID(7, 3), "7_") {
		panic(fmt.Sprintf("cluster: measure.PathID format changed: %q", measure.PathID(7, 3)))
	}
}
