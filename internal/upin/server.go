package upin

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"github.com/upin/scionpath/internal/addr"
	"github.com/upin/scionpath/internal/docdb"
	"github.com/upin/scionpath/internal/measure"
	"github.com/upin/scionpath/internal/sciond"
	"github.com/upin/scionpath/internal/selection"
	"github.com/upin/scionpath/internal/simnet"
)

// Server is the UPIN Front-end of §2.1: "a method of communication between
// the user and the domain". It exposes the catalogue, the measured path
// candidates, and an intent endpoint that runs the full controller ->
// tracer -> verifier pipeline and returns recommendations.
type Server struct {
	db       *docdb.DB
	daemon   *sciond.Daemon
	net      *simnet.Network
	engine   *selection.Engine
	explorer *DomainExplorer
	mux      *http.ServeMux
	ctrl     *Controller
	tracer   *Tracer
	logger   *slog.Logger
	// catalog caches the id -> IA server catalogue, revalidated against the
	// availableServers collection generation (see serverIA).
	catalog atomic.Pointer[serverCatalog]

	// Serving counters (see /api/stats and docs/LOAD.md): requests seen,
	// requests currently inside a handler, and 503s written since start.
	// The load harness asserts against these.
	reqTotal    atomic.Int64
	reqInflight atomic.Int64
	unavailable atomic.Int64

	// closeMu drains in-flight requests on Close: every request holds the
	// read side for its whole lifetime (including any snapshot refresh it
	// triggers inside the selection engine), and Close takes the write side,
	// so Close returns only after the last in-flight handler has. An RWMutex
	// instead of a WaitGroup because Add-after-Wait is a race, while a new
	// RLock simply queues behind the pending Close and then sees closed.
	closeMu sync.RWMutex
	closed  bool // guarded by closeMu
}

// NewServer wires the front-end.
func NewServer(db *docdb.DB, daemon *sciond.Daemon, net *simnet.Network,
	engine *selection.Engine, explorer *DomainExplorer) *Server {
	s := &Server{
		db: db, daemon: daemon, net: net, engine: engine, explorer: explorer,
		mux:    http.NewServeMux(),
		ctrl:   NewController(daemon, engine, explorer),
		tracer: NewTracer(net),
		logger: slog.Default(),
	}
	s.mux.HandleFunc("GET /api/health", s.handleHealth)
	s.mux.HandleFunc("GET /api/stats", s.handleStats)
	s.mux.HandleFunc("GET /api/servers", s.handleServers)
	s.mux.HandleFunc("GET /api/nodes", s.handleNodes)
	s.mux.HandleFunc("GET /api/paths", s.handlePaths)
	s.mux.HandleFunc("GET /api/pathset", s.handlePathSet)
	s.mux.HandleFunc("GET /api/traces", s.handleTraces)
	s.mux.HandleFunc("POST /api/intent", s.handleIntent)
	return s
}

// SetLogger directs the server's operational log (response-encode failures,
// client write errors). The default is slog.Default(). Call before serving.
func (s *Server) SetLogger(l *slog.Logger) {
	if l != nil {
		s.logger = l
	}
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	pathID := r.URL.Query().Get("path")
	if pathID == "" {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("missing ?path=<id>"))
		return
	}
	traces, err := LoadTraces(s.db, pathID)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	type row struct {
		ID       string   `json:"id"`
		Observed []string `json:"observed_hops"`
		TimeMs   int64    `json:"timestamp_ms"`
	}
	out := make([]row, 0, len(traces))
	for _, tr := range traces {
		out = append(out, row{tr.ID, tr.Observed, tr.TimeMs})
	}
	s.writeJSON(w, http.StatusOK, out)
}

// ServeHTTP implements http.Handler. Requests arriving after Close are
// refused with 503 instead of racing a database that may be shutting down.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.reqTotal.Add(1)
	s.reqInflight.Add(1)
	defer s.reqInflight.Add(-1)
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		s.writeError(w, http.StatusServiceUnavailable, fmt.Errorf("upin: server is shut down"))
		return
	}
	s.mux.ServeHTTP(w, r)
}

// Close drains the server: it blocks until every in-flight request has
// finished — even ones whose client context was already cancelled but that
// are still inside a handler (e.g. mid snapshot refresh or mid trace
// write) — then marks the server down. It does not close the database; the
// owner of the DB does that after Close returns, which is the ordering that
// makes the shutdown safe.
func (s *Server) Close() error {
	s.closeMu.Lock()
	s.closed = true
	s.closeMu.Unlock()
	return nil
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	doc := map[string]any{
		"status":        "ok",
		"local_ia":      s.daemon.LocalIA().String(),
		"simulated_ms":  s.net.Now().Milliseconds(),
		"stats_stored":  s.db.Collection(measure.ColStats).Count(),
		"paths_stored":  s.db.Collection(measure.ColPaths).Count(),
		"servers_known": s.db.Collection(measure.ColServers).Count(),
	}
	if info, ok := s.engine.SnapshotInfo(); ok {
		doc["snapshot_generation"] = info.StatsGeneration
		doc["snapshot_paths"] = info.Paths
		doc["snapshot_stats_folded"] = info.StatsFolded
	}
	doc["requests_in_flight"] = s.reqInflight.Load()
	s.writeJSON(w, http.StatusOK, doc)
}

// ServingStats is one point-in-time reading of the serving counters. The
// cluster router aggregates these across shards for its own /api/stats.
type ServingStats struct {
	RequestsTotal    int64 `json:"requests_total"`
	RequestsInFlight int64 `json:"requests_in_flight"`
	UnavailableTotal int64 `json:"unavailable_total"`
	SnapshotGen      int64 `json:"snapshot_generation"`
	SnapshotPaths    int   `json:"snapshot_paths"`
	Rebuilds         int64 `json:"snapshot_rebuilds"`
	Folds            int64 `json:"snapshot_folds"`
	Coalesced        int64 `json:"snapshot_refreshes_coalesced"`
}

// Stats reads the serving counters. The fields are sampled independently
// (each is its own atomic), which is fine for observability: no reading is
// ever torn, only slightly skewed across fields.
func (s *Server) Stats() ServingStats {
	st := ServingStats{
		RequestsTotal:    s.reqTotal.Load(),
		RequestsInFlight: s.reqInflight.Load(),
		UnavailableTotal: s.unavailable.Load(),
	}
	st.Rebuilds, st.Folds, st.Coalesced = s.engine.Counters()
	if info, ok := s.engine.SnapshotInfo(); ok {
		st.SnapshotGen = info.StatsGeneration
		st.SnapshotPaths = info.Paths
	}
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleServers(w http.ResponseWriter, _ *http.Request) {
	servers, err := measure.Servers(s.db)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	type row struct {
		ID       int    `json:"id"`
		Address  string `json:"address"`
		Name     string `json:"name"`
		Country  string `json:"country"`
		Operator string `json:"operator"`
	}
	out := make([]row, 0, len(servers))
	for _, srv := range servers {
		out = append(out, row{srv.ID, srv.Address.String(), srv.Name, srv.Country, srv.Operator})
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleNodes(w http.ResponseWriter, _ *http.Request) {
	type row struct {
		IA       string `json:"ia"`
		Name     string `json:"name"`
		Type     string `json:"type"`
		Country  string `json:"country"`
		Operator string `json:"operator"`
		InDomain bool   `json:"in_domain"`
	}
	nodes := s.explorer.Nodes()
	out := make([]row, 0, len(nodes))
	for _, n := range nodes {
		out = append(out, row{n.IA.String(), n.Name, n.Type.String(), n.Country, n.Operator, n.InDomain})
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handlePaths(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.URL.Query().Get("server"))
	if err != nil || id < 1 {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("missing or invalid ?server=<id>"))
		return
	}
	top := 0 // 0 = all candidates
	if v := r.URL.Query().Get("top"); v != "" {
		top, err = strconv.Atoi(v)
		if err != nil || top < 1 {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("invalid ?top=%q: want a positive integer", v))
			return
		}
	}
	cands, err := s.engine.Select(r.Context(), id, selection.Request{})
	if err != nil {
		s.writeError(w, http.StatusNotFound, err)
		return
	}
	// Candidates arrive best-first; top=K keeps the response body small on
	// destinations with thousands of paths without changing what is served.
	if top > 0 && top < len(cands) {
		cands = cands[:top]
	}
	s.writeJSON(w, http.StatusOK, candidatesJSON(cands))
}

// pathSetJSON is the /api/pathset response: the selected set plus the
// engine's disjointness accounting (docs/SELECTION.md).
type pathSetJSON struct {
	ServerID     int             `json:"server_id"`
	K            int             `json:"k"`
	Paths        []candidateJSON `json:"paths"`
	Disjointness float64         `json:"disjointness"`
	SharedLinks  int             `json:"shared_links"`
	SharedASes   int             `json:"shared_ases"`
}

func (s *Server) handlePathSet(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.URL.Query().Get("server"))
	if err != nil || id < 1 {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("missing or invalid ?server=<id>"))
		return
	}
	k := 0 // 0 = engine default (2)
	if v := r.URL.Query().Get("k"); v != "" {
		k, err = strconv.Atoi(v)
		if err != nil || k < 1 {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("invalid ?k=%q: want a positive integer", v))
			return
		}
	}
	req := selection.SetRequest{K: k}
	if v := r.URL.Query().Get("objective"); v != "" {
		obj, err := selection.ParseObjective(v)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
		req.Objective = obj
	}
	set, err := s.engine.SelectSet(r.Context(), id, req)
	if err != nil {
		s.writeError(w, http.StatusNotFound, err)
		return
	}
	s.writeJSON(w, http.StatusOK, pathSetJSON{
		ServerID:     id,
		K:            len(set.Paths),
		Paths:        candidatesJSON(set.Paths),
		Disjointness: set.Disjointness,
		SharedLinks:  set.SharedLinks,
		SharedASes:   set.SharedASes,
	})
}

// IntentRequest is the front-end's JSON intent format.
type IntentRequest struct {
	ServerID         int      `json:"server_id"`
	Objective        string   `json:"objective,omitempty"`
	Profile          string   `json:"profile,omitempty"`
	MaxLatencyMs     float64  `json:"max_latency_ms,omitempty"`
	MaxLossPct       float64  `json:"max_loss_pct,omitempty"`
	MinBandwidthMbps float64  `json:"min_bandwidth_mbps,omitempty"`
	ExcludeISDs      []string `json:"exclude_isds,omitempty"`
	ExcludeASes      []string `json:"exclude_ases,omitempty"`
	ExcludeCountries []string `json:"exclude_countries,omitempty"`
	ExcludeOperators []string `json:"exclude_operators,omitempty"`
}

// IntentResponse carries the decision, verification and recommendations.
type IntentResponse struct {
	Decision        candidateJSON   `json:"decision"`
	Sequence        string          `json:"sequence"`
	Satisfied       bool            `json:"satisfied"`
	Violations      []string        `json:"violations,omitempty"`
	Unverifiable    []string        `json:"unverifiable,omitempty"`
	Recommendations []recommendJSON `json:"recommendations"`
}

func (s *Server) handleIntent(w http.ResponseWriter, r *http.Request) {
	var req IntentRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad intent: %w", err))
		return
	}
	if req.ServerID < 1 {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("server_id required"))
		return
	}
	selReq := selection.Request{
		MaxLatencyMs:     req.MaxLatencyMs,
		MaxLossPct:       req.MaxLossPct,
		MinBandwidthBps:  req.MinBandwidthMbps * 1e6,
		ExcludeISDs:      req.ExcludeISDs,
		ExcludeASes:      req.ExcludeASes,
		ExcludeCountries: req.ExcludeCountries,
		ExcludeOperators: req.ExcludeOperators,
	}
	if req.Objective != "" {
		obj, err := selection.ParseObjective(req.Objective)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
		selReq.Objective = obj
	}
	intent := Intent{ServerID: req.ServerID, Request: selReq}

	// Resolve the destination AS from the catalogue.
	dstIA, err := s.serverIA(req.ServerID)
	if err != nil {
		s.writeError(w, http.StatusNotFound, err)
		return
	}

	dec2, err := s.ctrl.Decide(r.Context(), dstIA, intent)
	if err != nil {
		s.writeError(w, http.StatusConflict, err)
		return
	}
	trace, err := s.tracer.Trace(dec2, 2)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	// The Path Tracer stores every observation for later verification.
	if _, err := s.tracer.Record(s.db, trace, dec2.Candidate.PathID); err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	verdict := NewVerifier(s.explorer).Verify(intent, trace)

	weights := ProfileBrowsing
	if req.Profile != "" {
		switch req.Profile {
		case "voip":
			weights = ProfileVoIP
		case "streaming":
			weights = ProfileStreaming
		case "bulk":
			weights = ProfileBulk
		case "browsing":
			weights = ProfileBrowsing
		default:
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("unknown profile %q", req.Profile))
			return
		}
	}
	recs, err := Recommend(r.Context(), s.engine, intent, weights, 3)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}

	resp := IntentResponse{
		Decision:  toCandidateJSON(dec2.Candidate),
		Sequence:  dec2.Path.Sequence(),
		Satisfied: verdict.Satisfied,
	}
	resp.Violations = verdict.Violations
	for _, ia := range verdict.Unverifiable {
		resp.Unverifiable = append(resp.Unverifiable, ia.String())
	}
	for _, rec := range recs {
		resp.Recommendations = append(resp.Recommendations, recommendJSON{
			PathID: rec.Candidate.PathID, Score: rec.Score, Reason: rec.Reason,
		})
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// serverCatalog is one immutable build of the id -> IA map, stamped with
// the availableServers generation it was decoded at.
type serverCatalog struct {
	gen  int64
	byID map[int]addr.IA
}

// serverIA resolves a server id to its destination AS. The decoded
// catalogue is cached and revalidated against the collection's generation
// counter, so the per-intent cost is one atomic load and a map probe
// instead of re-decoding availableServers. Concurrent rebuilds are
// harmless: each stores an equally-valid catalogue.
func (s *Server) serverIA(id int) (addr.IA, error) {
	col := s.db.Collection(measure.ColServers)
	cat := s.catalog.Load()
	if cat == nil || cat.gen != col.Generation() {
		// Stamp before decoding: a write landing mid-decode leaves the
		// stamp stale, forcing revalidation, never a stale map marked fresh.
		gen := col.Generation()
		servers, err := measure.Servers(s.db)
		if err != nil {
			return addr.IA{}, err
		}
		byID := make(map[int]addr.IA, len(servers))
		for _, srv := range servers {
			byID[srv.ID] = srv.Address.IA
		}
		cat = &serverCatalog{gen: gen, byID: byID}
		s.catalog.Store(cat)
	}
	ia, ok := cat.byID[id]
	if !ok {
		return addr.IA{}, fmt.Errorf("upin: no server with id %d", id)
	}
	return ia, nil
}

type candidateJSON struct {
	PathID       string   `json:"path_id"`
	Hops         int      `json:"hops"`
	ISDs         []string `json:"isds"`
	AvgLatencyMs float64  `json:"avg_latency_ms"`
	JitterMs     float64  `json:"jitter_ms"`
	AvgLossPct   float64  `json:"avg_loss_pct"`
	UpMbps       float64  `json:"up_mbps"`
	DownMbps     float64  `json:"down_mbps"`
	Samples      int      `json:"samples"`
	Countries    []string `json:"countries"`
}

type recommendJSON struct {
	PathID string  `json:"path_id"`
	Score  float64 `json:"score"`
	Reason string  `json:"reason"`
}

func toCandidateJSON(c selection.Candidate) candidateJSON {
	return candidateJSON{
		PathID: c.PathID, Hops: c.Hops, ISDs: c.ISDs,
		// JSON cannot carry +Inf (paths that never answered); -1 marks
		// "no data".
		AvgLatencyMs: finiteOr(c.AvgLatencyMs, -1),
		JitterMs:     finiteOr(c.JitterMs, -1),
		AvgLossPct:   finiteOr(c.AvgLossPct, -1),
		UpMbps:       finiteOr(c.UpBps/1e6, -1),
		DownMbps:     finiteOr(c.DownBps/1e6, -1),
		Samples:      c.Samples, Countries: c.Countries,
	}
}

func finiteOr(v, fallback float64) float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return fallback
	}
	return v
}

func candidatesJSON(cands []selection.Candidate) []candidateJSON {
	out := make([]candidateJSON, len(cands))
	for i, c := range cands {
		out[i] = toCandidateJSON(c)
	}
	return out
}

// bufPool recycles response-encoding buffers across requests.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// writeJSON encodes v into a pooled buffer before touching the response.
// Encoding into the buffer first means an encode failure can still be
// reported as a clean 500 (the status line is not yet committed), and the
// hot endpoints reuse buffers instead of allocating per response. Errors
// the old implementation dropped are logged.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	if status == http.StatusServiceUnavailable {
		s.unavailable.Add(1)
	}
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer bufPool.Put(buf)
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		s.logger.Error("upin: encode response", "error", err)
		http.Error(w, `{"error":"response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if _, err := w.Write(buf.Bytes()); err != nil {
		// The status line is committed; a client that hung up mid-body is
		// all this can be. Keep the signal, nothing else to do.
		s.logger.Warn("upin: write response", "error", err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	s.writeJSON(w, status, map[string]string{"error": err.Error()})
}
