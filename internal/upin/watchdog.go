package upin

import (
	"context"
	"fmt"
	"time"

	"github.com/upin/scionpath/internal/addr"
	"github.com/upin/scionpath/internal/measure"
	"github.com/upin/scionpath/internal/scmp"
)

// Watchdog keeps a user's intent satisfied over time: it periodically
// re-measures the installed path, re-verifies the intent, and switches
// paths when the decision degrades — the operational loop behind the UPIN
// Path Controller ("continuous measurements require continuous
// functioning", §4.1.2, applied to the §2.1 controller role).
type Watchdog struct {
	Controller *Controller
	Tracer     *Tracer
	Suite      *measure.Suite
	// CheckPing parameterises the liveness check of each round.
	CheckPing scmp.PingOpts
	// MaxLossPct is the health threshold that triggers a re-decision.
	MaxLossPct float64
}

// WatchEvent is one round's outcome.
type WatchEvent struct {
	Round int
	// PathID is the path installed during this round.
	PathID string
	// LossPct is the health-check loss on the installed path.
	LossPct float64
	// Switched reports that the watchdog re-decided onto a new path.
	Switched bool
	// Reason explains a switch ("loss 100.0% above threshold", ...).
	Reason string
}

// Watch runs `rounds` health-check cycles spaced `interval` apart on the
// simulated clock, starting from an initial decision for the intent. It
// returns the per-round events and the final decision. Cancellation is
// honored at round boundaries: completed rounds' events and the last
// decision are returned alongside ctx's error.
func (w *Watchdog) Watch(ctx context.Context, dst addr.IA, intent Intent, rounds int, interval time.Duration) ([]WatchEvent, *Decision, error) {
	if rounds < 1 {
		return nil, nil, fmt.Errorf("upin: watchdog needs >= 1 round")
	}
	if w.MaxLossPct <= 0 {
		w.MaxLossPct = 20
	}
	// The health threshold becomes a hard constraint of the intent, so a
	// re-decision actually excludes paths whose measured loss crossed it.
	if intent.Request.MaxLossPct == 0 {
		intent.Request.MaxLossPct = w.MaxLossPct
	}
	dec, err := w.Controller.Decide(ctx, dst, intent)
	if err != nil {
		return nil, nil, fmt.Errorf("upin: watchdog: initial decision: %w", err)
	}

	net := w.Suite.Daemon.Network()
	var events []WatchEvent
	for round := 0; round < rounds; round++ {
		if err := ctx.Err(); err != nil {
			return events, dec, fmt.Errorf("upin: watchdog cancelled before round %d: %w", round, err)
		}
		stats, err := scmp.Ping(net, dec.Path, w.CheckPing)
		if err != nil {
			return events, dec, fmt.Errorf("upin: watchdog round %d: %w", round, err)
		}
		ev := WatchEvent{Round: round, PathID: dec.Candidate.PathID, LossPct: stats.Loss}
		if stats.Loss > w.MaxLossPct {
			// Degraded: refresh measurements for this destination and
			// re-decide. The failing path's fresh stats push it down the
			// ranking; the selection engine does the rest.
			if _, err := w.Suite.Run(ctx, measure.RunOpts{
				Iterations:    1,
				Skip:          true,
				ServerIDs:     []int{intent.ServerID},
				PingCount:     w.CheckPing.Count,
				PingInterval:  w.CheckPing.Interval,
				SkipBandwidth: true,
			}); err != nil {
				return events, dec, fmt.Errorf("upin: watchdog round %d: remeasure: %w", round, err)
			}
			newDec, err := w.Controller.Decide(ctx, dst, intent)
			switch {
			case err != nil:
				ev.Reason = fmt.Sprintf("loss %.1f%% above threshold; no alternative (%v)", stats.Loss, err)
			case newDec.Candidate.PathID != dec.Candidate.PathID:
				ev.Switched = true
				ev.Reason = fmt.Sprintf("loss %.1f%% above threshold; switched to %s", stats.Loss, newDec.Candidate.PathID)
				dec = newDec
			default:
				ev.Reason = fmt.Sprintf("loss %.1f%% above threshold; best path unchanged", stats.Loss)
			}
		}
		events = append(events, ev)
		if round+1 < rounds {
			net.Advance(interval)
		}
	}
	return events, dec, nil
}
