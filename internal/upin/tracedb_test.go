package upin

import (
	"context"
	"strings"
	"testing"

	"github.com/upin/scionpath/internal/selection"
	"github.com/upin/scionpath/internal/topology"
)

func recordedTrace(t *testing.T, f *fixture, req selection.Request) (*Decision, StoredTrace) {
	t.Helper()
	ctrl := NewController(f.daemon, f.engine, f.explorer)
	intent := Intent{ServerID: f.serverID, Request: req}
	dec, err := ctrl.Decide(context.Background(), topology.AWSIreland, intent)
	if err != nil {
		t.Fatal(err)
	}
	tracer := NewTracer(f.net)
	trace, err := tracer.Trace(dec, 2)
	if err != nil {
		t.Fatal(err)
	}
	id, err := tracer.Record(f.db, trace, dec.Candidate.PathID)
	if err != nil {
		t.Fatal(err)
	}
	stored, err := LoadTraces(f.db, dec.Candidate.PathID)
	if err != nil {
		t.Fatal(err)
	}
	if len(stored) != 1 || stored[0].ID != id {
		t.Fatalf("stored traces: %+v", stored)
	}
	return dec, stored[0]
}

func TestTraceRecordAndLoad(t *testing.T) {
	f := setup(t, 90)
	dec, st := recordedTrace(t, f, selection.Request{})
	if len(st.Observed) != dec.Path.NumHops() {
		t.Errorf("observed %d hops, path has %d", len(st.Observed), dec.Path.NumHops())
	}
	if st.Observed[0] != "17-ffaa:1:1" {
		t.Errorf("first observed hop %s", st.Observed[0])
	}
	if len(st.Sequence) != dec.Path.NumHops() {
		t.Errorf("stored sequence length %d", len(st.Sequence))
	}
}

func TestVerifyStoredSatisfied(t *testing.T) {
	f := setup(t, 91)
	intentReq := selection.Request{ExcludeCountries: []string{"United States", "Singapore"}}
	_, st := recordedTrace(t, f, intentReq)
	verdict := NewVerifier(f.explorer).VerifyStored(Intent{ServerID: f.serverID, Request: intentReq}, st)
	if !verdict.Satisfied {
		t.Errorf("stored verification failed: %v", verdict.Violations)
	}
}

func TestVerifyStoredDetectsRouteDeviation(t *testing.T) {
	f := setup(t, 92)
	_, st := recordedTrace(t, f, selection.Request{})
	// Tamper: the traffic "actually" crossed a different AS.
	st.Observed[2] = "16-ffaa:0:1004"
	verdict := NewVerifier(f.explorer).VerifyStored(Intent{ServerID: f.serverID}, st)
	if verdict.Satisfied {
		t.Error("route deviation not detected")
	}
	found := false
	for _, v := range verdict.Violations {
		if strings.Contains(v, "installed") {
			found = true
		}
	}
	if !found {
		t.Errorf("violations %v do not mention the installed route", verdict.Violations)
	}
}

func TestVerifyStoredDetectsExclusionViolation(t *testing.T) {
	f := setup(t, 93)
	// Decide without exclusions, then verify against an intent that
	// excludes Switzerland — which every path crosses at the source side.
	_, st := recordedTrace(t, f, selection.Request{})
	verdict := NewVerifier(f.explorer).VerifyStored(Intent{
		ServerID: f.serverID,
		Request:  selection.Request{ExcludeCountries: []string{"Switzerland"}},
	}, st)
	if verdict.Satisfied {
		t.Error("exclusion violation not detected in stored trace")
	}
}

func TestVerifyStoredLengthMismatch(t *testing.T) {
	f := setup(t, 94)
	_, st := recordedTrace(t, f, selection.Request{})
	st.Observed = st.Observed[:len(st.Observed)-1]
	verdict := NewVerifier(f.explorer).VerifyStored(Intent{ServerID: f.serverID}, st)
	if verdict.Satisfied {
		t.Error("truncated observation not detected")
	}
}

func TestRecordNilTrace(t *testing.T) {
	f := setup(t, 95)
	if _, err := NewTracer(f.net).Record(f.db, nil, "x"); err == nil {
		t.Error("nil trace accepted")
	}
}

func TestLoadTracesEmpty(t *testing.T) {
	f := setup(t, 96)
	got, err := LoadTraces(f.db, "nope")
	if err != nil || len(got) != 0 {
		t.Errorf("empty load: %v %v", got, err)
	}
}
