package upin

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/upin/scionpath/internal/selection"
)

// Weights parameterise the multi-criteria recommendation score. Each weight
// is non-negative; zero drops the criterion. The recommender implements the
// paper's future work: "a user interface and a path recommendation feature,
// that remains our main direction for future research" (§7).
type Weights struct {
	Latency   float64 // lower is better
	Jitter    float64 // lower is better
	Loss      float64 // lower is better
	Bandwidth float64 // higher is better
}

// Profiles for common applications, derived from the paper's discussion:
// streaming/VoIP weigh consistency, bulk transfer weighs bandwidth,
// browsing weighs latency.
var (
	ProfileVoIP      = Weights{Latency: 0.3, Jitter: 0.5, Loss: 0.2}
	ProfileStreaming = Weights{Latency: 0.1, Jitter: 0.4, Loss: 0.2, Bandwidth: 0.3}
	ProfileBulk      = Weights{Loss: 0.2, Bandwidth: 0.8}
	ProfileBrowsing  = Weights{Latency: 0.7, Loss: 0.2, Bandwidth: 0.1}
)

// Recommendation is one ranked suggestion with its normalised score and a
// human-readable reason.
type Recommendation struct {
	Candidate selection.Candidate
	Score     float64 // in [0,1], higher is better
	Reason    string
}

// Recommend ranks the candidate paths for a destination under the weight
// profile. Candidates are fetched through the selection engine with the
// intent's hard constraints applied first; the weights then order the
// survivors by normalised multi-criteria score.
func Recommend(ctx context.Context, engine *selection.Engine, intent Intent, w Weights, topK int) ([]Recommendation, error) {
	if err := validateWeights(w); err != nil {
		return nil, err
	}
	cands, err := engine.Select(ctx, intent.ServerID, intent.Request)
	if err != nil {
		return nil, err
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("upin: no candidate satisfies the intent")
	}

	// Normalise each criterion to [0,1] across the candidate set.
	latN := normalizer(cands, func(c selection.Candidate) float64 { return c.AvgLatencyMs })
	jitN := normalizer(cands, func(c selection.Candidate) float64 { return c.JitterMs })
	lossN := normalizer(cands, func(c selection.Candidate) float64 { return c.AvgLossPct })
	bwN := normalizer(cands, func(c selection.Candidate) float64 { return -(c.UpBps + c.DownBps) })

	total := w.Latency + w.Jitter + w.Loss + w.Bandwidth
	if total == 0 {
		return nil, fmt.Errorf("upin: all weights are zero")
	}
	recs := make([]Recommendation, 0, len(cands))
	for _, c := range cands {
		// Each normalised value is "badness" in [0,1]; score = 1 - weighted badness.
		bad := (w.Latency*latN(c.AvgLatencyMs) +
			w.Jitter*jitN(c.JitterMs) +
			w.Loss*lossN(c.AvgLossPct) +
			w.Bandwidth*bwN(-(c.UpBps+c.DownBps))) / total
		recs = append(recs, Recommendation{
			Candidate: c,
			Score:     1 - bad,
			Reason:    reason(c, w),
		})
	}
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Score > recs[j].Score })
	if topK > 0 && len(recs) > topK {
		recs = recs[:topK]
	}
	return recs, nil
}

func validateWeights(w Weights) error {
	for name, v := range map[string]float64{
		"latency": w.Latency, "jitter": w.Jitter, "loss": w.Loss, "bandwidth": w.Bandwidth,
	} {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("upin: invalid %s weight %v", name, v)
		}
	}
	return nil
}

// normalizer returns a function mapping a raw criterion value to badness in
// [0,1] over the candidate population (min-max scaling; infinite values —
// e.g. never-answered paths — map to 1).
func normalizer(cands []selection.Candidate, get func(selection.Candidate) float64) func(float64) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, c := range cands {
		v := get(c)
		if math.IsInf(v, 0) || math.IsNaN(v) {
			continue
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if math.IsInf(lo, 1) || hi == lo {
		return func(float64) float64 { return 0 }
	}
	return func(v float64) float64 {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			return 1
		}
		return (v - lo) / (hi - lo)
	}
}

func reason(c selection.Candidate, w Weights) string {
	var parts []string
	if w.Latency > 0 && !math.IsInf(c.AvgLatencyMs, 1) {
		parts = append(parts, fmt.Sprintf("latency %.1fms", c.AvgLatencyMs))
	}
	if w.Jitter > 0 && !math.IsInf(c.JitterMs, 1) {
		parts = append(parts, fmt.Sprintf("jitter %.2fms", c.JitterMs))
	}
	if w.Loss > 0 {
		parts = append(parts, fmt.Sprintf("loss %.1f%%", c.AvgLossPct))
	}
	if w.Bandwidth > 0 {
		parts = append(parts, fmt.Sprintf("bw %.1f/%.1fMbps", c.UpBps/1e6, c.DownBps/1e6))
	}
	return fmt.Sprintf("%d hops via ISDs {%s}: %s",
		c.Hops, strings.Join(c.ISDs, ","), strings.Join(parts, ", "))
}
