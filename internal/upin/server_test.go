package upin

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func testServer(t *testing.T, seed int64) (*Server, *fixture) {
	t.Helper()
	f := setup(t, seed)
	srv := NewServer(f.db, f.daemon, f.net, f.engine, f.explorer)
	return srv, f
}

func get(t *testing.T, srv *Server, path string) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec, rec.Body.Bytes()
}

func post(t *testing.T, srv *Server, path string, body any) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(b))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec, rec.Body.Bytes()
}

func TestServerHealth(t *testing.T) {
	srv, _ := testServer(t, 60)
	rec, body := get(t, srv, "/api/health")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var h map[string]any
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h["status"] != "ok" || h["local_ia"] != "17-ffaa:1:1" {
		t.Errorf("health: %v", h)
	}
	if h["stats_stored"].(float64) == 0 {
		t.Error("no stats visible in health")
	}
}

func TestServerServersAndNodes(t *testing.T) {
	srv, _ := testServer(t, 61)
	rec, body := get(t, srv, "/api/servers")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var servers []map[string]any
	if err := json.Unmarshal(body, &servers); err != nil {
		t.Fatal(err)
	}
	if len(servers) != 21 {
		t.Errorf("%d servers", len(servers))
	}

	rec2, body2 := get(t, srv, "/api/nodes")
	if rec2.Code != http.StatusOK {
		t.Fatalf("status %d", rec2.Code)
	}
	var nodes []map[string]any
	if err := json.Unmarshal(body2, &nodes); err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 36 {
		t.Errorf("%d nodes", len(nodes))
	}
	inDomain := 0
	for _, n := range nodes {
		if n["in_domain"].(bool) {
			inDomain++
		}
	}
	if inDomain == 0 || inDomain == len(nodes) {
		t.Errorf("domain split %d/%d implausible", inDomain, len(nodes))
	}
}

func TestServerPaths(t *testing.T) {
	srv, f := testServer(t, 62)
	rec, body := get(t, srv, "/api/paths?server=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var cands []map[string]any
	if err := json.Unmarshal(body, &cands); err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	if cands[0]["avg_latency_ms"].(float64) <= 0 {
		t.Errorf("candidate without latency: %v", cands[0])
	}
	_ = f

	// Bad requests.
	if rec, _ := get(t, srv, "/api/paths"); rec.Code != http.StatusBadRequest {
		t.Errorf("missing server param -> %d", rec.Code)
	}
	if rec, _ := get(t, srv, "/api/paths?server=999"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown server -> %d", rec.Code)
	}
}

func TestServerIntentFullPipeline(t *testing.T) {
	srv, f := testServer(t, 63)
	rec, body := post(t, srv, "/api/intent", IntentRequest{
		ServerID:         f.serverID,
		Objective:        "latency",
		Profile:          "voip",
		ExcludeCountries: []string{"United States"},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var resp IntentResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Satisfied {
		t.Errorf("intent not satisfied: %v", resp.Violations)
	}
	if resp.Decision.PathID == "" || resp.Sequence == "" {
		t.Errorf("decision incomplete: %+v", resp.Decision)
	}
	if len(resp.Recommendations) == 0 {
		t.Error("no recommendations")
	}
	for _, c := range resp.Decision.Countries {
		if c == "United States" {
			t.Error("decision crosses the excluded country")
		}
	}
}

func TestServerIntentErrors(t *testing.T) {
	srv, f := testServer(t, 64)
	cases := []struct {
		body     any
		wantCode int
	}{
		{IntentRequest{}, http.StatusBadRequest},                                         // no server id
		{IntentRequest{ServerID: 999}, http.StatusNotFound},                              // unknown server
		{IntentRequest{ServerID: f.serverID, Objective: "warp"}, http.StatusBadRequest},  // bad objective
		{IntentRequest{ServerID: f.serverID, Profile: "warp"}, http.StatusBadRequest},    // bad profile
		{IntentRequest{ServerID: f.serverID, MaxLatencyMs: 0.0001}, http.StatusConflict}, // unsatisfiable
		{map[string]any{"server_id": 1, "bogus": true}, http.StatusBadRequest},           // unknown field
	}
	for i, c := range cases {
		rec, body := post(t, srv, "/api/intent", c.body)
		if rec.Code != c.wantCode {
			t.Errorf("case %d: status %d, want %d (%s)", i, rec.Code, c.wantCode, body)
		}
		if !strings.Contains(string(body), "error") {
			t.Errorf("case %d: missing error body: %s", i, body)
		}
	}
	// Malformed JSON.
	req := httptest.NewRequest(http.MethodPost, "/api/intent", strings.NewReader("{"))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("malformed JSON -> %d", rec.Code)
	}
}

func TestServerTracesEndpoint(t *testing.T) {
	srv, f := testServer(t, 66)
	// Intents record traces; fetch them back.
	rec, body := post(t, srv, "/api/intent", IntentRequest{ServerID: f.serverID})
	if rec.Code != http.StatusOK {
		t.Fatalf("intent %d: %s", rec.Code, body)
	}
	var resp IntentResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	rec2, body2 := get(t, srv, "/api/traces?path="+resp.Decision.PathID)
	if rec2.Code != http.StatusOK {
		t.Fatalf("traces %d: %s", rec2.Code, body2)
	}
	var traces []map[string]any
	if err := json.Unmarshal(body2, &traces); err != nil {
		t.Fatal(err)
	}
	if len(traces) != 1 {
		t.Fatalf("%d traces, want 1", len(traces))
	}
	if rec3, _ := get(t, srv, "/api/traces"); rec3.Code != http.StatusBadRequest {
		t.Errorf("missing path param -> %d", rec3.Code)
	}
}

func TestServerMethodRouting(t *testing.T) {
	srv, _ := testServer(t, 65)
	// POST to a GET route 404s under Go 1.22 method patterns.
	rec, _ := post(t, srv, "/api/servers", map[string]any{})
	if rec.Code == http.StatusOK {
		t.Errorf("POST /api/servers -> %d", rec.Code)
	}
	rec2, _ := get(t, srv, "/api/unknown")
	if rec2.Code != http.StatusNotFound {
		t.Errorf("unknown route -> %d", rec2.Code)
	}
}
