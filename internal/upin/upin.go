// Package upin implements the UPIN framework components of the paper's
// §2.1 on top of the SCION reproduction: the Domain Explorer (metadata
// about network nodes), the Path Controller (sets the forwarding path
// according to the user's desires — the component this paper's work maps
// to), the Path Tracer (gathers measurements on the traffic), and the Path
// Verifier (examines whether the user's desires are satisfied, with the
// caveat that hops outside the UPIN domain cannot be certified). The
// Recommender implements the paper's stated future work, "a path
// recommendation feature" (§7).
package upin

import (
	"context"
	"fmt"
	"strings"

	"github.com/upin/scionpath/internal/addr"
	"github.com/upin/scionpath/internal/geo"
	"github.com/upin/scionpath/internal/pathmgr"
	"github.com/upin/scionpath/internal/sciond"
	"github.com/upin/scionpath/internal/scmp"
	"github.com/upin/scionpath/internal/selection"
	"github.com/upin/scionpath/internal/simnet"
	"github.com/upin/scionpath/internal/topology"
)

// NodeInfo is the Domain Explorer's metadata for one node: "detailed
// knowledge on the nodes in the network", including security and
// environmental details (§2.1).
type NodeInfo struct {
	IA       addr.IA
	Name     string
	Type     topology.ASType
	Country  string
	Operator string
	Coords   geo.Coordinates
	ISD      addr.ISD
	// InDomain marks nodes inside the UPIN-enabled domain; properties of
	// nodes outside it cannot be verified (§2.1).
	InDomain bool
}

// DomainExplorer exposes node metadata for a UPIN domain. The domain is
// the set of ISDs the operator controls or federates with.
type DomainExplorer struct {
	topo   *topology.Topology
	domain map[addr.ISD]bool
}

// NewDomainExplorer builds an explorer whose domain covers the given ISDs.
func NewDomainExplorer(topo *topology.Topology, domainISDs []addr.ISD) *DomainExplorer {
	d := &DomainExplorer{topo: topo, domain: map[addr.ISD]bool{}}
	for _, isd := range domainISDs {
		d.domain[isd] = true
	}
	return d
}

// Node returns metadata for one AS, or an error for unknown nodes.
func (d *DomainExplorer) Node(ia addr.IA) (NodeInfo, error) {
	as := d.topo.AS(ia)
	if as == nil {
		return NodeInfo{}, fmt.Errorf("upin: unknown node %s", ia)
	}
	return NodeInfo{
		IA:       ia,
		Name:     as.Name,
		Type:     as.Type,
		Country:  as.Site.Country,
		Operator: as.Operator,
		Coords:   as.Site.Coords,
		ISD:      ia.ISD,
		InDomain: d.domain[ia.ISD],
	}, nil
}

// Nodes lists metadata for every AS of the topology.
func (d *DomainExplorer) Nodes() []NodeInfo {
	ases := d.topo.ASes()
	out := make([]NodeInfo, 0, len(ases))
	for _, as := range ases {
		n, _ := d.Node(as.IA)
		out = append(out, n)
	}
	return out
}

// InDomain reports whether an AS belongs to the UPIN domain.
func (d *DomainExplorer) InDomain(ia addr.IA) bool { return d.domain[ia.ISD] }

// Intent is a user's desire: reach a destination under the constraints of
// a selection request.
type Intent struct {
	ServerID int
	Request  selection.Request
}

// Controller is the UPIN Path Controller: it turns an intent into a
// concrete forwarding decision (a pinned SCION path). "The Path Controller
// is in charge of setting the forwarding rules based on the desires of the
// user" (§2.1).
type Controller struct {
	daemon   *sciond.Daemon
	selector *selection.Engine
	explorer *DomainExplorer
}

// NewController wires the controller.
func NewController(daemon *sciond.Daemon, selector *selection.Engine, explorer *DomainExplorer) *Controller {
	return &Controller{daemon: daemon, selector: selector, explorer: explorer}
}

// Decision is an installed forwarding choice.
type Decision struct {
	Intent    Intent
	Candidate selection.Candidate
	Path      *pathmgr.Path
}

// Decide selects the best measured path satisfying the intent and resolves
// it to a live path (the "forwarding rule").
func (c *Controller) Decide(ctx context.Context, dst addr.IA, intent Intent) (*Decision, error) {
	cand, err := c.selector.Best(ctx, intent.ServerID, intent.Request)
	if err != nil {
		return nil, fmt.Errorf("upin: controller: %w", err)
	}
	path, err := c.daemon.ResolveSequence(dst, cand.Sequence)
	if err != nil {
		return nil, fmt.Errorf("upin: controller: stored path no longer live: %w", err)
	}
	return &Decision{Intent: intent, Candidate: cand, Path: path}, nil
}

// Trace is the Path Tracer's record of one traffic observation: the hops
// the traffic actually visited with per-hop round-trip times.
type Trace struct {
	Path *pathmgr.Path
	Hops []scmp.TracerouteHop
}

// Tracer is the UPIN Path Tracer: it "gathers measurements on the traffic
// in the UPIN domain ... to store important details for the possible
// verification" (§2.1).
type Tracer struct {
	net *simnet.Network
}

// NewTracer builds a tracer over the data plane.
func NewTracer(net *simnet.Network) *Tracer { return &Tracer{net: net} }

// Trace observes the decision's path with SCMP traceroute probes.
func (t *Tracer) Trace(d *Decision, probesPerHop int) (*Trace, error) {
	hops, err := scmp.Traceroute(t.net, d.Path, probesPerHop)
	if err != nil {
		return nil, fmt.Errorf("upin: tracer: %w", err)
	}
	return &Trace{Path: d.Path, Hops: hops}, nil
}

// Verdict is the Path Verifier's outcome for one intent.
type Verdict struct {
	// Satisfied is true when no violation was observed on verifiable hops.
	Satisfied bool
	// Violations lists broken constraints with the offending hop.
	Violations []string
	// Unverifiable lists hops outside the UPIN domain: "if the path
	// traverses a non-UPIN enabled domain, the Path Verifier cannot be
	// certain whether the intent is satisfied over the full path" (§2.1).
	Unverifiable []addr.IA
}

// Verifier is the UPIN Path Verifier.
type Verifier struct {
	explorer *DomainExplorer
}

// NewVerifier builds a verifier over the explorer's metadata.
func NewVerifier(explorer *DomainExplorer) *Verifier { return &Verifier{explorer: explorer} }

// Verify checks a traced path against the intent's exclusions.
func (v *Verifier) Verify(intent Intent, trace *Trace) Verdict {
	verdict := Verdict{Satisfied: true}
	req := intent.Request
	badISD := toSet(req.ExcludeISDs)
	badAS := toSet(req.ExcludeASes)
	badCountry := toLowerSet(req.ExcludeCountries)
	badOp := toLowerSet(req.ExcludeOperators)

	for _, th := range trace.Hops {
		ia := th.Hop.IA
		node, err := v.explorer.Node(ia)
		if err != nil || !node.InDomain {
			verdict.Unverifiable = append(verdict.Unverifiable, ia)
			continue
		}
		if badISD[fmt.Sprintf("%d", ia.ISD)] {
			verdict.fail("hop %s is in excluded ISD %d", ia, ia.ISD)
		}
		if badAS[ia.String()] {
			verdict.fail("hop %s is an excluded AS", ia)
		}
		if badCountry[strings.ToLower(node.Country)] {
			verdict.fail("hop %s is in excluded country %s", ia, node.Country)
		}
		if badOp[strings.ToLower(node.Operator)] {
			verdict.fail("hop %s is run by excluded operator %s", ia, node.Operator)
		}
	}
	return verdict
}

func (v *Verdict) fail(format string, args ...any) {
	v.Satisfied = false
	v.Violations = append(v.Violations, fmt.Sprintf(format, args...))
}

func toSet(ss []string) map[string]bool {
	m := map[string]bool{}
	for _, s := range ss {
		m[s] = true
	}
	return m
}

func toLowerSet(ss []string) map[string]bool {
	m := map[string]bool{}
	for _, s := range ss {
		m[strings.ToLower(s)] = true
	}
	return m
}
