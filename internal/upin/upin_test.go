package upin

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/upin/scionpath/internal/addr"
	"github.com/upin/scionpath/internal/docdb"
	"github.com/upin/scionpath/internal/measure"
	"github.com/upin/scionpath/internal/sciond"
	"github.com/upin/scionpath/internal/selection"
	"github.com/upin/scionpath/internal/simnet"
	"github.com/upin/scionpath/internal/topology"
)

type fixture struct {
	topo     *topology.Topology
	net      *simnet.Network
	daemon   *sciond.Daemon
	db       *docdb.DB
	engine   *selection.Engine
	explorer *DomainExplorer
	serverID int
}

func setup(t testing.TB, seed int64) *fixture {
	t.Helper()
	topo := topology.DefaultWorld()
	net := simnet.New(topo, simnet.Options{Seed: seed})
	daemon, err := sciond.New(topo, net, topology.MyAS)
	if err != nil {
		t.Fatal(err)
	}
	db := docdb.MustOpen()
	if err := measure.SeedServers(db, topo); err != nil {
		t.Fatal(err)
	}
	suite := &measure.Suite{DB: db, Daemon: daemon}
	servers, _ := measure.Servers(db)
	serverID := 0
	for _, s := range servers {
		if s.Address.IA == topology.AWSIreland {
			serverID = s.ID
		}
	}
	if _, err := suite.Run(context.Background(), measure.RunOpts{
		Iterations: 3, ServerIDs: []int{serverID},
		PingCount: 8, PingInterval: 5 * time.Millisecond,
		BwDuration: 300 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	// The UPIN domain covers the European ISDs 16,17,19 but not Asia/US.
	explorer := NewDomainExplorer(topo, []addr.ISD{16, 17, 19})
	return &fixture{
		topo: topo, net: net, daemon: daemon, db: db,
		engine: selection.New(db, topo), explorer: explorer, serverID: serverID,
	}
}

func TestDomainExplorer(t *testing.T) {
	f := setup(t, 1)
	n, err := f.explorer.Node(topology.AWSIreland)
	if err != nil {
		t.Fatal(err)
	}
	if n.Country != "Ireland" || n.Operator != "Amazon" || !n.InDomain {
		t.Errorf("node info: %+v", n)
	}
	korea, err := f.explorer.Node(topology.KoreaUniv)
	if err != nil {
		t.Fatal(err)
	}
	if korea.InDomain {
		t.Error("Korea reported inside the EU domain")
	}
	if _, err := f.explorer.Node(addr.MustParseIA("99-ff00:0:1")); err == nil {
		t.Error("unknown node resolved")
	}
	if got := len(f.explorer.Nodes()); got != len(f.topo.ASes()) {
		t.Errorf("Nodes() returned %d of %d", got, len(f.topo.ASes()))
	}
}

func TestControllerDecide(t *testing.T) {
	f := setup(t, 2)
	ctrl := NewController(f.daemon, f.engine, f.explorer)
	intent := Intent{ServerID: f.serverID, Request: selection.Request{
		Objective: selection.LowestLatency,
	}}
	dec, err := ctrl.Decide(context.Background(), topology.AWSIreland, intent)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Path == nil || dec.Path.Dst != topology.AWSIreland {
		t.Fatalf("decision path: %v", dec.Path)
	}
	if dec.Candidate.PathID == "" {
		t.Error("decision lacks the measured candidate")
	}
	// The installed path must match the candidate's pinned sequence.
	if !dec.Candidate.Sequence.MatchPath(dec.Path) {
		t.Error("installed path deviates from the decided sequence")
	}
}

func TestControllerImpossibleIntent(t *testing.T) {
	f := setup(t, 3)
	ctrl := NewController(f.daemon, f.engine, f.explorer)
	_, err := ctrl.Decide(context.Background(), topology.AWSIreland, Intent{
		ServerID: f.serverID,
		Request:  selection.Request{MaxLatencyMs: 0.001},
	})
	if err == nil {
		t.Error("impossible intent produced a decision")
	}
}

func TestTracerAndVerifierSatisfied(t *testing.T) {
	f := setup(t, 4)
	ctrl := NewController(f.daemon, f.engine, f.explorer)
	intent := Intent{ServerID: f.serverID, Request: selection.Request{
		Objective:        selection.LowestLatency,
		ExcludeCountries: []string{"United States", "Singapore"},
	}}
	dec, err := ctrl.Decide(context.Background(), topology.AWSIreland, intent)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := NewTracer(f.net).Trace(dec, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Hops) != dec.Path.NumHops() {
		t.Fatalf("trace has %d hops, path %d", len(trace.Hops), dec.Path.NumHops())
	}
	verdict := NewVerifier(f.explorer).Verify(intent, trace)
	if !verdict.Satisfied {
		t.Errorf("intent not satisfied: %v", verdict.Violations)
	}
	if len(verdict.Unverifiable) != 0 {
		t.Errorf("EU-only path has unverifiable hops: %v", verdict.Unverifiable)
	}
}

func TestVerifierDetectsViolation(t *testing.T) {
	f := setup(t, 5)
	ctrl := NewController(f.daemon, f.engine, f.explorer)
	// Decide WITHOUT the exclusion, then verify against an intent WITH it:
	// pick a path known to cross the US (highest latency tends to detour).
	all, err := f.engine.Select(context.Background(), f.serverID, selection.Request{})
	if err != nil {
		t.Fatal(err)
	}
	var usCand *selection.Candidate
	for i := range all {
		for _, c := range all[i].Countries {
			if c == "United States" {
				usCand = &all[i]
			}
		}
	}
	if usCand == nil {
		t.Skip("no US-crossing candidate in this run")
	}
	path, err := f.daemon.ResolveSequence(topology.AWSIreland, usCand.Sequence)
	if err != nil {
		t.Fatal(err)
	}
	dec := &Decision{Path: path, Candidate: *usCand}
	trace, err := NewTracer(f.net).Trace(dec, 2)
	if err != nil {
		t.Fatal(err)
	}
	intent := Intent{ServerID: f.serverID, Request: selection.Request{
		ExcludeCountries: []string{"United States"},
	}}
	verdict := NewVerifier(f.explorer).Verify(intent, trace)
	if verdict.Satisfied {
		t.Error("verifier passed a path through an excluded country")
	}
	found := false
	for _, v := range verdict.Violations {
		if strings.Contains(v, "United States") {
			found = true
		}
	}
	if !found {
		t.Errorf("violations %v do not name the country", verdict.Violations)
	}
	_ = ctrl
}

func TestVerifierMarksOutOfDomainHops(t *testing.T) {
	f := setup(t, 6)
	// Shrink the domain to ISD 17 only: the AWS hops become unverifiable.
	narrow := NewDomainExplorer(f.topo, []addr.ISD{17})
	all, _ := f.engine.Select(context.Background(), f.serverID, selection.Request{})
	path, err := f.daemon.ResolveSequence(topology.AWSIreland, all[0].Sequence)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := NewTracer(f.net).Trace(&Decision{Path: path, Candidate: all[0]}, 1)
	if err != nil {
		t.Fatal(err)
	}
	verdict := NewVerifier(narrow).Verify(Intent{ServerID: f.serverID}, trace)
	if len(verdict.Unverifiable) == 0 {
		t.Error("no unverifiable hops despite ISD-16 hops outside the domain")
	}
	for _, ia := range verdict.Unverifiable {
		if ia.ISD == 17 {
			t.Errorf("in-domain hop %s marked unverifiable", ia)
		}
	}
}

func TestRecommendProfiles(t *testing.T) {
	f := setup(t, 7)
	intent := Intent{ServerID: f.serverID, Request: selection.Request{}}

	voip, err := Recommend(context.Background(), f.engine, intent, ProfileVoIP, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(voip) == 0 {
		t.Fatal("no recommendations")
	}
	// Scores are in [0,1] and sorted descending.
	for i, r := range voip {
		if r.Score < 0 || r.Score > 1 {
			t.Errorf("score %v out of range", r.Score)
		}
		if i > 0 && r.Score > voip[i-1].Score {
			t.Error("recommendations not sorted")
		}
		if r.Reason == "" {
			t.Error("empty reason")
		}
	}
	// The VoIP winner avoids the jittery long-distance transits.
	for _, pred := range voip[0].Candidate.Sequence {
		as := pred.AS.String()
		if as == "ffaa:0:1004" || as == "ffaa:0:1007" {
			t.Errorf("VoIP recommendation crosses jittery AS %s", as)
		}
	}

	// Bulk profile ranks by bandwidth: its winner's mean bandwidth is the
	// maximum among candidates.
	bulk, err := Recommend(context.Background(), f.engine, intent, ProfileBulk, 0)
	if err != nil {
		t.Fatal(err)
	}
	best := bulk[0].Candidate
	for _, r := range bulk[1:] {
		if r.Candidate.UpBps+r.Candidate.DownBps > best.UpBps+best.DownBps+1 {
			t.Errorf("bulk winner %.1f Mbps is not the bandwidth max (%.1f)",
				(best.UpBps+best.DownBps)/2e6, (r.Candidate.UpBps+r.Candidate.DownBps)/2e6)
		}
	}
}

func TestRecommendValidation(t *testing.T) {
	f := setup(t, 8)
	intent := Intent{ServerID: f.serverID}
	if _, err := Recommend(context.Background(), f.engine, intent, Weights{Latency: -1}, 3); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := Recommend(context.Background(), f.engine, intent, Weights{}, 3); err == nil {
		t.Error("all-zero weights accepted")
	}
	impossible := Intent{ServerID: f.serverID, Request: selection.Request{MaxLatencyMs: 0.001}}
	if _, err := Recommend(context.Background(), f.engine, impossible, ProfileBrowsing, 3); err == nil {
		t.Error("impossible intent recommended")
	}
}

func TestRecommendTopK(t *testing.T) {
	f := setup(t, 9)
	intent := Intent{ServerID: f.serverID}
	recs, err := Recommend(context.Background(), f.engine, intent, ProfileBrowsing, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Errorf("topK ignored: %d", len(recs))
	}
}
