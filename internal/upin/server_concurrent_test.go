package upin

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"github.com/upin/scionpath/internal/docdb"
	"github.com/upin/scionpath/internal/measure"
)

func statDocAt(pathID string, serverID int, ts int64, i int) docdb.Document {
	return docdb.Document{
		"_id":               fmt.Sprintf("%s@%d#c%d", pathID, ts, i),
		measure.FPathID:     pathID,
		measure.FServerID:   serverID,
		measure.FTimestamp:  ts,
		measure.FAvgLatency: 20.0 + float64(i%17),
		measure.FMdev:       1.0 + float64(i%3),
		measure.FLoss:       float64(i % 5),
		measure.FBwUpMTU:    1e7 + float64(i)*1e3,
		measure.FBwDownMTU:  2e7 + float64(i)*1e3,
	}
}

// TestServerServesWhileMeasuring drives the front-end while a measurement
// writer keeps appending stats (run it under -race): every response must be
// well-formed — no torn aggregates, candidates always carrying at least one
// sample — and the health endpoint's snapshot generation must never run
// ahead of the stats collection's.
func TestServerServesWhileMeasuring(t *testing.T) {
	srv, f := testServer(t, 61)
	srv.SetLogger(slog.New(slog.NewTextHandler(io.Discard, nil)))
	pds, err := measure.PathsForServer(f.db, f.serverID)
	if err != nil {
		t.Fatal(err)
	}
	if len(pds) == 0 {
		t.Fatal("fixture has no paths")
	}
	col := f.db.Collection(measure.ColStats)

	intentBody, err := json.Marshal(IntentRequest{ServerID: f.serverID, Objective: "latency"})
	if err != nil {
		t.Fatal(err)
	}
	pathsURL := fmt.Sprintf("/api/paths?server=%d", f.serverID)

	stop := make(chan struct{})
	var writerWG, readerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		ts := int64(2_000_000_000_000)
		for i := 0; i < 120; i++ {
			pid := pds[i%len(pds)].ID
			if i%10 == 9 {
				// Out-of-order backfill: the snapshot must recover by
				// rebuilding, never by serving a torn aggregate.
				if err := col.Insert(statDocAt(pid, f.serverID, ts-500, i)); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				continue
			}
			ts++
			if err := col.Insert(statDocAt(pid, f.serverID, ts, i)); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
		}
	}()

	for g := 0; g < 3; g++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}

				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, pathsURL, nil))
				if rec.Code != http.StatusOK {
					t.Errorf("paths: status %d: %s", rec.Code, rec.Body.Bytes())
					return
				}
				var cands []candidateJSON
				if err := json.Unmarshal(rec.Body.Bytes(), &cands); err != nil {
					t.Errorf("paths: bad body: %v", err)
					return
				}
				for _, c := range cands {
					if c.Samples < 1 {
						t.Errorf("path %s served with %d samples", c.PathID, c.Samples)
						return
					}
				}

				req := httptest.NewRequest(http.MethodPost, "/api/intent", bytes.NewReader(intentBody))
				req.Header.Set("Content-Type", "application/json")
				rec = httptest.NewRecorder()
				srv.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK && rec.Code != http.StatusConflict {
					t.Errorf("intent: status %d: %s", rec.Code, rec.Body.Bytes())
					return
				}

				rec = httptest.NewRecorder()
				srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/health", nil))
				if rec.Code != http.StatusOK {
					t.Errorf("health: status %d", rec.Code)
					return
				}
				var health map[string]any
				if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
					t.Errorf("health: bad body: %v", err)
					return
				}
				if g, ok := health["snapshot_generation"].(float64); ok {
					if int64(g) > col.Generation() {
						t.Errorf("health reports snapshot generation %d ahead of collection %d",
							int64(g), col.Generation())
						return
					}
				}
			}
		}()
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()
}
