package upin

import (
	"fmt"
	"time"

	"github.com/upin/scionpath/internal/addr"
	"github.com/upin/scionpath/internal/docdb"
	"github.com/upin/scionpath/internal/pathmgr"
	"github.com/upin/scionpath/internal/scmp"
)

// ColTraces is the collection the Path Tracer records into: "The goal is
// to store important details for the possible verification" (§2.1).
const ColTraces = "traces"

// Trace document fields.
const (
	FTraceSequence = "hop_predicates"
	FTracePathID   = "path_id"
	FTraceObserved = "observed_hops"
	FTraceRTTsMs   = "hop_rtts_ms"
	FTraceTime     = "timestamp_ms"
)

// Record stores a trace in the database, one document per observation,
// keyed by path fingerprint and simulated timestamp. A re-observation at
// the same key replaces the earlier document instead of failing, so
// concurrent intents tracing the same path within one simulated
// millisecond both succeed.
func (t *Tracer) Record(db *docdb.DB, trace *Trace, pathID string) (string, error) {
	if trace == nil || trace.Path == nil {
		return "", fmt.Errorf("upin: nil trace")
	}
	now := t.net.Now()
	id := fmt.Sprintf("trace:%s@%d", trace.Path.Fingerprint(), now.Milliseconds())
	observed := make([]any, 0, len(trace.Hops))
	rtts := make([]any, 0, len(trace.Hops))
	for _, h := range trace.Hops {
		observed = append(observed, h.Hop.IA.String())
		if len(h.RTTs) > 0 {
			rtts = append(rtts, float64(h.RTTs[0])/float64(time.Millisecond))
		} else {
			rtts = append(rtts, nil)
		}
	}
	doc := docdb.Document{
		"_id":          id,
		FTracePathID:   pathID,
		FTraceSequence: pathmgr.PathSequence(trace.Path).String(),
		FTraceObserved: observed,
		FTraceRTTsMs:   rtts,
		FTraceTime:     now.Milliseconds(),
	}
	if _, err := db.Collection(ColTraces).UpsertMany([]docdb.Document{doc}); err != nil {
		return "", err
	}
	return id, nil
}

// StoredTrace is a decoded trace document.
type StoredTrace struct {
	ID       string
	PathID   string
	Sequence pathmgr.Sequence
	Observed []string
	TimeMs   int64
}

// LoadTraces returns the stored traces for a path id in time order.
func LoadTraces(db *docdb.DB, pathID string) ([]StoredTrace, error) {
	docs := db.Collection(ColTraces).Find(docdb.Query{
		Filter: docdb.Eq(FTracePathID, pathID),
		SortBy: FTraceTime,
	})
	out := make([]StoredTrace, 0, len(docs))
	for _, d := range docs {
		st := StoredTrace{ID: d.ID(), PathID: pathID}
		seqStr, _ := d[FTraceSequence].(string)
		seq, err := pathmgr.ParseSequence(seqStr)
		if err != nil {
			return nil, fmt.Errorf("upin: trace %s: %w", st.ID, err)
		}
		st.Sequence = seq
		if arr, ok := d[FTraceObserved].([]any); ok {
			for _, v := range arr {
				st.Observed = append(st.Observed, fmt.Sprint(v))
			}
		}
		switch ts := d[FTraceTime].(type) {
		case int64:
			st.TimeMs = ts
		case float64:
			st.TimeMs = int64(ts)
		}
		out = append(out, st)
	}
	return out, nil
}

// VerifyStored replays verification over a stored trace: the observed hop
// list is checked against both the pinned sequence (route fidelity — did
// the traffic follow the installed path?) and the intent's exclusions.
func (v *Verifier) VerifyStored(intent Intent, st StoredTrace) Verdict {
	verdict := Verdict{Satisfied: true}
	// Route fidelity: observed hops must match the pinned sequence.
	if len(st.Observed) != len(st.Sequence) {
		verdict.fail("observed %d hops, installed route has %d", len(st.Observed), len(st.Sequence))
	} else {
		for i, obs := range st.Observed {
			want := st.Sequence[i]
			if fmt.Sprintf("%d-%s", want.ISD, want.AS) != obs {
				verdict.fail("hop %d observed %s, installed %d-%s", i, obs, want.ISD, want.AS)
			}
		}
	}
	// Exclusion checks over the observed hops, reusing the live verifier
	// via a synthetic trace.
	synthetic := &Trace{Path: &pathmgr.Path{}}
	for _, obs := range st.Observed {
		ia, err := addr.ParseIA(obs)
		if err != nil {
			verdict.fail("unparseable observed hop %q", obs)
			continue
		}
		synthetic.Hops = append(synthetic.Hops, scmp.TracerouteHop{Hop: pathmgr.Hop{IA: ia}})
	}
	live := v.Verify(intent, synthetic)
	if !live.Satisfied {
		verdict.Satisfied = false
		verdict.Violations = append(verdict.Violations, live.Violations...)
	}
	verdict.Unverifiable = append(verdict.Unverifiable, live.Unverifiable...)
	return verdict
}
