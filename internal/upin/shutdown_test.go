package upin

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// blockingFailpoint parks the first write to the traces collection until
// release is closed, pinning an intent request inside tracer.Record — deep
// in a handler, past the point where the client's context matters.
type blockingFailpoint struct {
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func (b *blockingFailpoint) BeforeWrite(collection, op string, batch int) error {
	if collection == ColTraces {
		b.once.Do(func() {
			close(b.entered)
			<-b.release
		})
	}
	return nil
}

func (b *blockingFailpoint) ReplayEntry(int, string) bool { return true }

// TestServerCloseDrainsInFlight pins an /api/intent request inside the
// handler, cancels its client context, and checks the shutdown ordering:
// Close must not return while the request is still in a handler (even an
// abandoned one), must return once it drains, and requests arriving after
// Close get 503 instead of touching a database that may be closing.
func TestServerCloseDrainsInFlight(t *testing.T) {
	srv, f := testServer(t, 77)
	fp := &blockingFailpoint{entered: make(chan struct{}), release: make(chan struct{})}
	f.db.SetFailpoint(fp)

	body, err := json.Marshal(IntentRequest{ServerID: f.serverID})
	if err != nil {
		t.Fatal(err)
	}
	reqCtx, cancelReq := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodPost, "/api/intent", bytes.NewReader(body)).WithContext(reqCtx)
	req.Header.Set("Content-Type", "application/json")

	handlerDone := make(chan struct{})
	go func() {
		defer close(handlerDone)
		srv.ServeHTTP(httptest.NewRecorder(), req)
	}()

	select {
	case <-fp.entered:
	case <-time.After(10 * time.Second):
		t.Fatal("intent request never reached the trace write")
	}
	// The client hangs up while the handler is parked mid-write. Draining
	// must still wait for the handler itself, not for the client.
	cancelReq()

	closeDone := make(chan struct{})
	go func() {
		defer close(closeDone)
		if err := srv.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()

	select {
	case <-closeDone:
		t.Fatal("Close returned while a request was still in a handler")
	case <-time.After(50 * time.Millisecond):
	}

	close(fp.release)
	select {
	case <-closeDone:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not return after the in-flight request drained")
	}
	select {
	case <-handlerDone:
	case <-time.After(10 * time.Second):
		t.Fatal("handler still running after Close returned")
	}
	f.db.SetFailpoint(nil)

	rec, _ := get(t, srv, "/api/health")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-Close request: status %d, want %d", rec.Code, http.StatusServiceUnavailable)
	}
}

// TestServerCloseIdempotent: closing twice is fine, and a server with no
// in-flight requests closes immediately.
func TestServerCloseIdempotent(t *testing.T) {
	srv, _ := testServer(t, 78)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	rec, _ := get(t, srv, "/api/servers")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rec.Code)
	}
}
