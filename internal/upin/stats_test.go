package upin

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
)

// TestServerStats: /api/stats mirrors the Stats() counters, which advance
// with traffic and count 503s written after Close.
func TestServerStats(t *testing.T) {
	srv, f := testServer(t, 63)

	rec, body := get(t, srv, "/api/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var st ServingStats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.RequestsTotal != 1 {
		t.Errorf("requests_total = %d after first request, want 1", st.RequestsTotal)
	}
	if st.UnavailableTotal != 0 {
		t.Errorf("unavailable_total = %d before shutdown, want 0", st.UnavailableTotal)
	}

	// Traffic advances the counters and warms the snapshot.
	for i := 0; i < 3; i++ {
		if rec, body := get(t, srv, fmt.Sprintf("/api/paths?server=%d", f.serverID)); rec.Code != http.StatusOK {
			t.Fatalf("paths status %d: %s", rec.Code, body)
		}
	}
	got := srv.Stats()
	if got.RequestsTotal != 4 {
		t.Errorf("requests_total = %d, want 4", got.RequestsTotal)
	}
	if got.Rebuilds != 1 {
		t.Errorf("snapshot_rebuilds = %d, want 1", got.Rebuilds)
	}
	if got.SnapshotPaths == 0 || got.SnapshotGen == 0 {
		t.Errorf("snapshot fields unset: %+v", got)
	}
	if got.RequestsInFlight != 0 {
		t.Errorf("requests_in_flight = %d between requests, want 0", got.RequestsInFlight)
	}

	// 503s after Close are counted.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if rec, _ := get(t, srv, "/api/stats"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-close status %d, want 503", rec.Code)
	}
	if got := srv.Stats(); got.UnavailableTotal != 1 {
		t.Errorf("unavailable_total = %d after one refused request, want 1", got.UnavailableTotal)
	}
}

// TestServerHealthInFlight: /api/health reports the request observing it.
func TestServerHealthInFlight(t *testing.T) {
	srv, _ := testServer(t, 64)
	_, body := get(t, srv, "/api/health")
	var h map[string]any
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h["requests_in_flight"].(float64) != 1 {
		t.Errorf("requests_in_flight = %v inside a handler, want 1", h["requests_in_flight"])
	}
}

// TestServerPathsTop: ?top=K truncates the ranked candidate list without
// reordering it.
func TestServerPathsTop(t *testing.T) {
	srv, _ := testServer(t, 65)
	_, full := get(t, srv, "/api/paths?server=1")
	var all []map[string]any
	if err := json.Unmarshal(full, &all); err != nil {
		t.Fatal(err)
	}
	if len(all) < 2 {
		t.Skipf("fixture served only %d candidates", len(all))
	}

	rec, body := get(t, srv, "/api/paths?server=1&top=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var top []map[string]any
	if err := json.Unmarshal(body, &top); err != nil {
		t.Fatal(err)
	}
	if len(top) != 1 {
		t.Fatalf("top=1 returned %d candidates", len(top))
	}
	if top[0]["path_id"] != all[0]["path_id"] {
		t.Errorf("top=1 returned %v, full ranking leads with %v", top[0]["path_id"], all[0]["path_id"])
	}

	// top beyond the candidate count returns everything.
	_, body2 := get(t, srv, "/api/paths?server=1&top=9999")
	var wide []map[string]any
	if err := json.Unmarshal(body2, &wide); err != nil {
		t.Fatal(err)
	}
	if len(wide) != len(all) {
		t.Errorf("top=9999 returned %d, want all %d", len(wide), len(all))
	}

	if rec, _ := get(t, srv, "/api/paths?server=1&top=0"); rec.Code != http.StatusBadRequest {
		t.Errorf("top=0 -> %d, want 400", rec.Code)
	}
	if rec, _ := get(t, srv, "/api/paths?server=1&top=-3"); rec.Code != http.StatusBadRequest {
		t.Errorf("top=-3 -> %d, want 400", rec.Code)
	}
}
