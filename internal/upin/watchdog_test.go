package upin

import (
	"context"
	"testing"
	"time"

	"github.com/upin/scionpath/internal/measure"
	"github.com/upin/scionpath/internal/scmp"
	"github.com/upin/scionpath/internal/simnet"
	"github.com/upin/scionpath/internal/topology"
)

func watchdog(f *fixture) *Watchdog {
	return &Watchdog{
		Controller: NewController(f.daemon, f.engine, f.explorer),
		Tracer:     NewTracer(f.net),
		Suite:      &measure.Suite{DB: f.db, Daemon: f.daemon},
		CheckPing:  scmp.PingOpts{Count: 5, Interval: 5 * time.Millisecond},
		MaxLossPct: 20,
	}
}

func TestWatchdogHealthySteadyState(t *testing.T) {
	f := setup(t, 100)
	w := watchdog(f)
	events, final, err := w.Watch(context.Background(), topology.AWSIreland,
		Intent{ServerID: f.serverID}, 3, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("%d events", len(events))
	}
	for _, ev := range events {
		if ev.Switched {
			t.Errorf("round %d switched on a healthy network: %s", ev.Round, ev.Reason)
		}
		if ev.LossPct != 0 {
			t.Errorf("round %d loss %.1f on a healthy network", ev.Round, ev.LossPct)
		}
	}
	if final == nil || final.Candidate.PathID != events[0].PathID {
		t.Error("final decision drifted without cause")
	}
}

func TestWatchdogSwitchesOnOutage(t *testing.T) {
	f := setup(t, 101)
	w := watchdog(f)
	// Initial decision, then its second link dies mid-watch.
	dec, err := w.Controller.Decide(context.Background(), topology.AWSIreland, Intent{ServerID: f.serverID})
	if err != nil {
		t.Fatal(err)
	}
	start := f.net.Now()
	if err := f.net.ScheduleLinkOutage(simnet.LinkOutage{
		A: dec.Path.Hops[1].IA, B: dec.Path.Hops[2].IA,
		Start: start + 2*time.Second, End: start + 24*time.Hour,
	}); err != nil {
		t.Fatal(err)
	}
	events, final, err := w.Watch(context.Background(), topology.AWSIreland,
		Intent{ServerID: f.serverID}, 4, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	switched := false
	for _, ev := range events {
		if ev.Switched {
			switched = true
		}
	}
	if !switched {
		t.Fatalf("watchdog never switched: %+v", events)
	}
	if final.Candidate.PathID == dec.Candidate.PathID {
		t.Error("final decision still the dead path")
	}
	// The new path must avoid the downed link.
	for i := 0; i+1 < len(final.Path.Hops); i++ {
		if final.Path.Hops[i].IA == dec.Path.Hops[1].IA && final.Path.Hops[i+1].IA == dec.Path.Hops[2].IA {
			t.Error("replacement path crosses the downed link")
		}
	}
	// And the last round must be healthy again.
	if last := events[len(events)-1]; last.LossPct > 20 {
		t.Errorf("last round still lossy: %.1f%%", last.LossPct)
	}
}

func TestWatchdogValidation(t *testing.T) {
	f := setup(t, 102)
	w := watchdog(f)
	if _, _, err := w.Watch(context.Background(), topology.AWSIreland, Intent{ServerID: f.serverID}, 0, time.Second); err == nil {
		t.Error("zero rounds accepted")
	}
	if _, _, err := w.Watch(context.Background(), topology.AWSIreland, Intent{ServerID: 999}, 1, time.Second); err == nil {
		t.Error("unknown server accepted")
	}
}
