package bwtest_test

import (
	"fmt"

	"github.com/upin/scionpath/internal/bwtest"
)

func ExampleParseParams() {
	// The paper's §5.3 parameter string: 3 seconds of 64-byte packets at
	// 12 Mbps, packet count inferred from the wildcard.
	p, err := bwtest.ParseParams("3,64,?,12Mbps", 1472)
	if err != nil {
		panic(err)
	}
	fmt.Println(p)
	// Output: 3,64,70312,12Mbps
}

func ExampleFormatBandwidth() {
	fmt.Println(bwtest.FormatBandwidth(12e6), bwtest.FormatBandwidth(1.5e9))
	// Output: 12Mbps 1.5Gbps
}
