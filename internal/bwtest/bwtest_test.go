package bwtest

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"github.com/upin/scionpath/internal/pathmgr"
	"github.com/upin/scionpath/internal/segment"
	"github.com/upin/scionpath/internal/simnet"
	"github.com/upin/scionpath/internal/topology"
)

func TestParseParamsPaperExamples(t *testing.T) {
	// "3,64,?,12Mbps": 3 s of 64-byte packets at 12 Mbps -> count inferred.
	p, err := ParseParams("3,64,?,12Mbps", 1472)
	if err != nil {
		t.Fatal(err)
	}
	if p.Duration != 3*time.Second || p.PacketBytes != 64 || p.TargetBps != 12e6 {
		t.Errorf("parsed %+v", p)
	}
	bw := 12e6
	wantCount := int(bw * 3 / (64 * 8))
	if p.PacketCount != wantCount {
		t.Errorf("count %d, want %d", p.PacketCount, wantCount)
	}

	// "5,100,?,150Mbps": the §3.3 example.
	p2, err := ParseParams("5,100,?,150Mbps", 1472)
	if err != nil {
		t.Fatal(err)
	}
	if p2.PacketCount != int(150e6*5/(100*8)) {
		t.Errorf("count %d", p2.PacketCount)
	}

	// MTU keyword resolves against the path MTU.
	p3, err := ParseParams("3,MTU,?,12Mbps", 1472)
	if err != nil {
		t.Fatal(err)
	}
	if p3.PacketBytes != 1472 {
		t.Errorf("MTU size %d, want 1472", p3.PacketBytes)
	}
}

func TestParseParamsWildcards(t *testing.T) {
	// Infer bandwidth.
	p, err := ParseParams("2,1000,2500,?", 1472)
	if err != nil {
		t.Fatal(err)
	}
	if want := float64(2500*1000*8) / 2; p.TargetBps != want {
		t.Errorf("bw %v, want %v", p.TargetBps, want)
	}
	// Infer duration.
	p2, err := ParseParams("?,1000,1500,12Mbps", 1472)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Duration != time.Second {
		t.Errorf("duration %v, want 1s", p2.Duration)
	}
	// Infer packet size.
	p3, err := ParseParams("3,?,4500,12Mbps", 1472)
	if err != nil {
		t.Fatal(err)
	}
	if p3.PacketBytes != 1000 {
		t.Errorf("size %d, want 1000", p3.PacketBytes)
	}
}

func TestParseParamsErrors(t *testing.T) {
	bad := []string{
		"",
		"3,64,?",              // too few fields
		"3,64,?,12Mbps,extra", // too many
		"?,?,1000,12Mbps",     // two wildcards
		"0,64,?,12Mbps",       // zero duration
		"-3,64,?,12Mbps",      // negative duration
		"11,64,?,12Mbps",      // above 10s cap
		"3,2,?,12Mbps",        // packet below 4 bytes
		"3,64,?,12",           // missing unit
		"3,64,?,zzMbps",       // bad number
		"3,64,0,?",            // zero count
		"3,64,100,12Mbps",     // inconsistent quadruple
		"3,MTU,?,12Mbps|0",    // garbage
		"3,xx,?,12Mbps",       // bad size
		"x,64,?,12Mbps",       // bad duration
	}
	for _, s := range bad {
		if _, err := ParseParams(s, 1472); err == nil {
			t.Errorf("ParseParams(%q) accepted", s)
		}
	}
	// MTU keyword without a valid mtu.
	if _, err := ParseParams("3,MTU,?,12Mbps", 0); err == nil {
		t.Error("MTU without path MTU accepted")
	}
}

func TestParseBandwidthUnits(t *testing.T) {
	cases := map[string]float64{
		"500bps":  500,
		"800kbps": 800e3,
		"12Mbps":  12e6,
		"1.5Gbps": 1.5e9,
	}
	for in, want := range cases {
		got, err := parseBandwidth(in)
		if err != nil || got != want {
			t.Errorf("parseBandwidth(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
}

func TestFormatBandwidth(t *testing.T) {
	cases := map[float64]string{
		500:   "500bps",
		12e6:  "12Mbps",
		1.5e9: "1.5Gbps",
		800e3: "800kbps",
	}
	for in, want := range cases {
		if got := FormatBandwidth(in); got != want {
			t.Errorf("FormatBandwidth(%v) = %q, want %q", in, got, want)
		}
	}
}

// Property: any consistent quadruple round-trips through String/ParseParams.
func TestParamsRoundTripQuick(t *testing.T) {
	f := func(durDs uint8, sizeRaw uint16, bwMbps uint8) bool {
		dur := time.Duration(1+int(durDs)%9) * time.Second
		size := 4 + int(sizeRaw)%1469
		bw := float64(1+int(bwMbps)%200) * 1e6
		count := int(bw * dur.Seconds() / float64(size*8))
		if count <= 0 {
			return true
		}
		p := Params{Duration: dur, PacketBytes: size, PacketCount: count, TargetBps: float64(count*size*8) / dur.Seconds()}
		q, err := ParseParams(p.String(), 1472)
		if err != nil {
			return false
		}
		return q.PacketBytes == p.PacketBytes && q.PacketCount == p.PacketCount
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRunBothDirections(t *testing.T) {
	topo := topology.DefaultWorld()
	reg := segment.Discover(topo, segment.Options{})
	c := pathmgr.NewCombiner(topo, reg)
	net := simnet.New(topo, simnet.Options{Seed: 20})
	paths, err := c.Paths(topology.MyAS, topology.MagdeburgAP)
	if err != nil || len(paths) == 0 {
		t.Fatalf("no paths: %v", err)
	}
	p := paths[0]
	cs, err := ParseParams("3,64,?,12Mbps", p.MTU)
	if err != nil {
		t.Fatal(err)
	}
	before := net.Now()
	res, err := Run(net, p, cs, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CS.AchievedBps <= 0 || res.SC.AchievedBps <= 0 {
		t.Errorf("zero achieved bandwidth: %+v", res)
	}
	// Both directions ran sequentially: 6 s of simulated time.
	if got := net.Now() - before; got != 6*time.Second {
		t.Errorf("clock advanced %v, want 6s", got)
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	topo := topology.DefaultWorld()
	reg := segment.Discover(topo, segment.Options{})
	c := pathmgr.NewCombiner(topo, reg)
	net := simnet.New(topo, simnet.Options{Seed: 21})
	paths, _ := c.Paths(topology.MyAS, topology.MagdeburgAP)
	badCS := Params{Duration: 3 * time.Second, PacketBytes: 1, TargetBps: 1e6}
	if _, err := Run(net, paths[0], badCS, Params{}); err == nil || !strings.Contains(err.Error(), "cs flow") {
		t.Errorf("want cs flow error, got %v", err)
	}
	goodCS := Params{Duration: 3 * time.Second, PacketBytes: 64, PacketCount: 1000, TargetBps: 1e6}
	badSC := Params{Duration: 3 * time.Second, PacketBytes: 1, TargetBps: 1e6}
	if _, err := Run(net, paths[0], goodCS, badSC); err == nil || !strings.Contains(err.Error(), "sc flow") {
		t.Errorf("want sc flow error, got %v", err)
	}
}
