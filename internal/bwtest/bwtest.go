// Package bwtest implements the bwtester application the paper uses for
// bandwidth measurements (§3.3): parameter strings such as "3,64,?,12Mbps"
// (duration, packet size, packet count, target bandwidth, with "?" as a
// wildcard inferred from the others), client-server and server-client
// directions, and execution over the simulated network.
package bwtest

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/upin/scionpath/internal/pathmgr"
	"github.com/upin/scionpath/internal/simnet"
)

// Params is one direction's test specification.
type Params struct {
	Duration    time.Duration
	PacketBytes int
	PacketCount int
	TargetBps   float64
}

// MaxDuration is the bwtester's test-length cap ("up to 10 seconds").
const MaxDuration = 10 * time.Second

// MinPacketBytes is the bwtester's packet-size floor ("at least 4 bytes").
const MinPacketBytes = 4

// ParseParams parses a bwtester parameter string "duration,size,count,bw".
// Exactly one component may be "?" and is then derived from the others;
// a fully specified quadruple is validated for consistency. "MTU" as the
// size resolves to mtu. Examples from the paper:
//
//	"3,64,?,12Mbps"   -> 3 s of 64-byte packets at 12 Mbps
//	"3,MTU,?,150Mbps" -> 3 s of MTU-sized packets at 150 Mbps
//	"5,100,?,150Mbps" -> the §3.3 example
func ParseParams(s string, mtu int) (Params, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return Params{}, fmt.Errorf("bwtest: %q: want 4 comma-separated fields, have %d", s, len(parts))
	}
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	wildcards := 0
	for _, p := range parts {
		if p == "?" {
			wildcards++
		}
	}
	if wildcards > 1 {
		return Params{}, fmt.Errorf("bwtest: %q: at most one wildcard allowed", s)
	}

	var pr Params
	var err error
	if parts[0] != "?" {
		var secs float64
		secs, err = strconv.ParseFloat(parts[0], 64)
		if err != nil || secs <= 0 {
			return Params{}, fmt.Errorf("bwtest: %q: bad duration %q", s, parts[0])
		}
		pr.Duration = time.Duration(secs * float64(time.Second))
	}
	if parts[1] != "?" {
		if strings.EqualFold(parts[1], "MTU") {
			if mtu < MinPacketBytes {
				return Params{}, fmt.Errorf("bwtest: %q: MTU size requested but mtu=%d", s, mtu)
			}
			pr.PacketBytes = mtu
		} else {
			pr.PacketBytes, err = strconv.Atoi(parts[1])
			if err != nil {
				return Params{}, fmt.Errorf("bwtest: %q: bad packet size %q", s, parts[1])
			}
		}
	}
	if parts[2] != "?" {
		pr.PacketCount, err = strconv.Atoi(parts[2])
		if err != nil || pr.PacketCount <= 0 {
			return Params{}, fmt.Errorf("bwtest: %q: bad packet count %q", s, parts[2])
		}
	}
	if parts[3] != "?" {
		pr.TargetBps, err = parseBandwidth(parts[3])
		if err != nil {
			return Params{}, fmt.Errorf("bwtest: %q: %w", s, err)
		}
	}

	// Derive the wildcard: bw = count*size*8/duration.
	switch {
	case parts[0] == "?":
		if pr.TargetBps == 0 {
			return Params{}, fmt.Errorf("bwtest: %q: cannot infer duration without bandwidth", s)
		}
		pr.Duration = time.Duration(float64(pr.PacketCount*pr.PacketBytes*8) / pr.TargetBps * float64(time.Second))
	case parts[1] == "?":
		denom := float64(pr.PacketCount * 8)
		if denom == 0 || pr.TargetBps == 0 {
			return Params{}, fmt.Errorf("bwtest: %q: cannot infer packet size", s)
		}
		pr.PacketBytes = int(pr.TargetBps * pr.Duration.Seconds() / denom)
	case parts[2] == "?":
		if pr.PacketBytes == 0 {
			return Params{}, fmt.Errorf("bwtest: %q: cannot infer packet count without size", s)
		}
		pr.PacketCount = int(pr.TargetBps * pr.Duration.Seconds() / float64(pr.PacketBytes*8))
	case parts[3] == "?":
		if pr.Duration == 0 {
			return Params{}, fmt.Errorf("bwtest: %q: cannot infer bandwidth without duration", s)
		}
		pr.TargetBps = float64(pr.PacketCount*pr.PacketBytes*8) / pr.Duration.Seconds()
	default:
		// Fully specified: the quadruple must be consistent within 1%.
		implied := float64(pr.PacketCount*pr.PacketBytes*8) / pr.Duration.Seconds()
		if pr.TargetBps > 0 && (implied < 0.99*pr.TargetBps || implied > 1.01*pr.TargetBps) {
			return Params{}, fmt.Errorf("bwtest: %q: inconsistent parameters (implied %.0f bps, stated %.0f bps)", s, implied, pr.TargetBps)
		}
	}

	if pr.Duration <= 0 || pr.Duration > MaxDuration {
		return Params{}, fmt.Errorf("bwtest: %q: duration %v outside (0, %v]", s, pr.Duration, MaxDuration)
	}
	if pr.PacketBytes < MinPacketBytes {
		return Params{}, fmt.Errorf("bwtest: %q: packet size %d below minimum %d", s, pr.PacketBytes, MinPacketBytes)
	}
	if pr.PacketCount <= 0 {
		return Params{}, fmt.Errorf("bwtest: %q: packet count %d not positive", s, pr.PacketCount)
	}
	if pr.TargetBps <= 0 {
		return Params{}, fmt.Errorf("bwtest: %q: bandwidth %.0f not positive", s, pr.TargetBps)
	}
	return pr, nil
}

// parseBandwidth parses "12Mbps", "150Mbps", "1.5Gbps", "800kbps", "500bps".
func parseBandwidth(s string) (float64, error) {
	lower := strings.ToLower(s)
	mult := 1.0
	switch {
	case strings.HasSuffix(lower, "gbps"):
		mult, lower = 1e9, lower[:len(lower)-4]
	case strings.HasSuffix(lower, "mbps"):
		mult, lower = 1e6, lower[:len(lower)-4]
	case strings.HasSuffix(lower, "kbps"):
		mult, lower = 1e3, lower[:len(lower)-4]
	case strings.HasSuffix(lower, "bps"):
		lower = lower[:len(lower)-3]
	default:
		return 0, fmt.Errorf("bandwidth %q missing bps unit", s)
	}
	v, err := strconv.ParseFloat(lower, 64)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("bad bandwidth value %q", s)
	}
	return v * mult, nil
}

// String renders the parameters in bwtester notation.
func (p Params) String() string {
	return fmt.Sprintf("%g,%d,%d,%s", p.Duration.Seconds(), p.PacketBytes, p.PacketCount, FormatBandwidth(p.TargetBps))
}

// FormatBandwidth renders a bit rate with the largest clean unit.
func FormatBandwidth(bps float64) string {
	switch {
	case bps >= 1e9:
		return trimZero(bps/1e9) + "Gbps"
	case bps >= 1e6:
		return trimZero(bps/1e6) + "Mbps"
	case bps >= 1e3:
		return trimZero(bps/1e3) + "kbps"
	default:
		return trimZero(bps) + "bps"
	}
}

func trimZero(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}

// Result is the outcome of one bidirectional bwtester run.
type Result struct {
	CS simnet.FlowResult // client -> server (the -cs parameters)
	SC simnet.FlowResult // server -> client (the -sc parameters)
}

// Run executes a bidirectional bandwidth test over the path: first the
// client-to-server flow, then server-to-client, mirroring bwtestclient. If
// scParams is the zero value, the cs parameters are reused, "by default,
// they are used for the server-client too" (§5.3).
func Run(net *simnet.Network, path *pathmgr.Path, csParams, scParams Params) (Result, error) {
	if scParams == (Params{}) {
		scParams = csParams
	}
	cs, err := net.BandwidthTest(path, simnet.FlowSpec{
		Duration:    csParams.Duration,
		PacketBytes: csParams.PacketBytes,
		TargetBps:   csParams.TargetBps,
	})
	if err != nil {
		return Result{}, fmt.Errorf("bwtest: cs flow: %w", err)
	}
	sc, err := net.BandwidthTest(path, simnet.FlowSpec{
		Duration:    scParams.Duration,
		PacketBytes: scParams.PacketBytes,
		TargetBps:   scParams.TargetBps,
		Reverse:     true,
	})
	if err != nil {
		return Result{}, fmt.Errorf("bwtest: sc flow: %w", err)
	}
	return Result{CS: cs, SC: sc}, nil
}
