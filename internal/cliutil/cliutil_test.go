package cliutil

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"github.com/upin/scionpath/internal/topology"
)

func TestNewWorldInMemory(t *testing.T) {
	w, err := NewWorld(1, "", "")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if w.Topo == nil || w.Net == nil || w.Daemon == nil || w.DB == nil {
		t.Fatal("incomplete world")
	}
	if w.DB.Collection("availableServers").Count() != 21 {
		t.Error("servers not seeded")
	}
	if err := w.Close(); err != nil {
		t.Errorf("in-memory close: %v", err)
	}
}

func TestNewWorldJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.jsonl")
	w, err := NewWorld(1, path, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Re-open: seeded servers persist, no duplicate seeding.
	w2, err := NewWorld(1, path, "")
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := w2.DB.Collection("availableServers").Count(); got != 21 {
		t.Errorf("replayed %d servers", got)
	}
}

func TestNewWorldBadPath(t *testing.T) {
	if _, err := NewWorld(1, filepath.Join(t.TempDir(), "no", "dir", "db.jsonl"), ""); err == nil {
		t.Error("bad journal path accepted")
	}
}

func TestResolveDestination(t *testing.T) {
	w, err := NewWorld(1, "", "")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	// By server id.
	ia, id, err := w.ResolveDestination("1")
	if err != nil || id != 1 || ia.Zero() {
		t.Errorf("by id: %v %d %v", ia, id, err)
	}
	// By ISD-AS.
	ia2, id2, err := w.ResolveDestination(topology.AWSIreland.String())
	if err != nil || ia2 != topology.AWSIreland || id2 == 0 {
		t.Errorf("by IA: %v %d %v", ia2, id2, err)
	}
	// By host address.
	ia3, _, err := w.ResolveDestination("16-ffaa:0:1002,[172.31.16.10]")
	if err != nil || ia3 != topology.AWSIreland {
		t.Errorf("by host: %v %v", ia3, err)
	}
	// Non-server AS in topology: id 0 but resolvable.
	ia4, id4, err := w.ResolveDestination("16-ffaa:0:1004")
	if err != nil || id4 != 0 || ia4 != topology.AWSOhio {
		t.Errorf("non-server: %v %d %v", ia4, id4, err)
	}
	// Errors.
	for _, bad := range []string{"999", "zz", "99-ff00:0:1"} {
		if _, _, err := w.ResolveDestination(bad); err == nil {
			t.Errorf("ResolveDestination(%q) accepted", bad)
		}
	}
}

func TestFatalf(t *testing.T) {
	var buf bytes.Buffer
	code := Fatalf(&buf, "tool", "bad %s", "thing")
	if code != 1 {
		t.Errorf("code %d", code)
	}
	if !strings.Contains(buf.String(), "tool: bad thing") {
		t.Errorf("output %q", buf.String())
	}
}
