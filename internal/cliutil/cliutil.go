// Package cliutil wires the command-line tools to a simulated SCIONLab
// world: flag helpers, environment construction and output helpers shared
// by cmd/testsuite, cmd/showpaths, cmd/scionping, cmd/traceroute,
// cmd/bwtest, cmd/pathselect and cmd/report.
package cliutil

import (
	"fmt"
	"io"

	"github.com/upin/scionpath/internal/addr"
	"github.com/upin/scionpath/internal/docdb"
	"github.com/upin/scionpath/internal/measure"
	"github.com/upin/scionpath/internal/sciond"
	"github.com/upin/scionpath/internal/simnet"
	"github.com/upin/scionpath/internal/topology"
)

// World bundles the simulated environment a tool runs against.
type World struct {
	Topo   *topology.Topology
	Net    *simnet.Network
	Daemon *sciond.Daemon
	DB     *docdb.DB
	// closeDB is non-nil for persistent databases.
	closeDB func() error
}

// NewWorld builds the default SCIONLab world with the given seed. When
// dbPath is non-empty the database persists to (and replays from) that
// path through the named docdb storage backend ("jsonl", "segment", or ""
// to auto-detect an existing log's format); otherwise it is in-memory.
func NewWorld(seed int64, dbPath, dbBackend string) (*World, error) {
	topo := topology.DefaultWorld()
	net := simnet.New(topo, simnet.Options{Seed: seed})
	daemon, err := sciond.New(topo, net, topology.MyAS)
	if err != nil {
		return nil, err
	}
	var db *docdb.DB
	var closer func() error
	if dbPath != "" {
		db, err = docdb.Open(docdb.WithPath(dbPath), docdb.WithBackend(dbBackend))
		if err != nil {
			return nil, err
		}
		closer = db.Close
	} else {
		db = docdb.MustOpen()
	}
	if err := measure.SeedServers(db, topo); err != nil {
		return nil, err
	}
	return &World{Topo: topo, Net: net, Daemon: daemon, DB: db, closeDB: closer}, nil
}

// Close flushes and closes a journal-backed database.
func (w *World) Close() error {
	if w.closeDB != nil {
		return w.closeDB()
	}
	return nil
}

// ResolveDestination accepts either an ISD-AS ("16-ffaa:0:1002"), a full
// SCION host address, or an availableServers id ("2"), and returns the
// destination AS plus the server id (0 when unknown to the catalogue).
func (w *World) ResolveDestination(s string) (addr.IA, int, error) {
	servers, err := measure.Servers(w.DB)
	if err != nil {
		return addr.IA{}, 0, err
	}
	// Bare integer: an availableServers id.
	var id int
	if _, err := fmt.Sscanf(s, "%d", &id); err == nil && fmt.Sprintf("%d", id) == s {
		for _, srv := range servers {
			if srv.ID == id {
				return srv.Address.IA, srv.ID, nil
			}
		}
		return addr.IA{}, 0, fmt.Errorf("no server with id %d (have 1..%d)", id, len(servers))
	}
	ia, err := addr.ParseIA(s)
	if err != nil {
		host, err2 := addr.ParseHost(s)
		if err2 != nil {
			return addr.IA{}, 0, fmt.Errorf("destination %q is neither a server id, ISD-AS nor host address", s)
		}
		ia = host.IA
	}
	for _, srv := range servers {
		if srv.Address.IA == ia {
			return ia, srv.ID, nil
		}
	}
	if w.Topo.AS(ia) == nil {
		return addr.IA{}, 0, fmt.Errorf("destination AS %s not in the topology", ia)
	}
	return ia, 0, nil
}

// Fatalf prints an error in tool style and returns exit code 1.
func Fatalf(w io.Writer, tool, format string, args ...any) int {
	fmt.Fprintf(w, "%s: %s\n", tool, fmt.Sprintf(format, args...))
	return 1
}
