package stats_test

import (
	"fmt"

	"github.com/upin/scionpath/internal/stats"
)

func ExampleSummarize() {
	latencies := []float64{32, 33, 35, 34, 33, 90} // one detour outlier
	s := stats.Summarize(latencies)
	fmt.Printf("median=%.1f iqr=%.2f outliers=%v\n", s.Median, s.IQR(), s.Outliers)
	// Output: median=33.5 iqr=1.75 outliers=[90]
}

func ExamplePearson() {
	distance := []float64{500, 1000, 6000, 10000}
	rtt := []float64{6, 12, 65, 105}
	fmt.Printf("r=%.2f\n", stats.Pearson(distance, rtt))
	// Output: r=1.00
}
