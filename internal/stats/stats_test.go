package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarizeKnown(t *testing.T) {
	// 1..9: q1=3, med=5, q3=7, no outliers.
	var v []float64
	for i := 1; i <= 9; i++ {
		v = append(v, float64(i))
	}
	s := Summarize(v)
	if s.N != 9 || s.Min != 1 || s.Max != 9 {
		t.Errorf("basic fields: %+v", s)
	}
	if s.Q1 != 3 || s.Median != 5 || s.Q3 != 7 {
		t.Errorf("quartiles %v/%v/%v, want 3/5/7", s.Q1, s.Median, s.Q3)
	}
	if s.Mean != 5 {
		t.Errorf("mean %v", s.Mean)
	}
	if len(s.Outliers) != 0 {
		t.Errorf("outliers %v", s.Outliers)
	}
	if s.LowWhisker != 1 || s.HighWhisker != 9 {
		t.Errorf("whiskers %v/%v", s.LowWhisker, s.HighWhisker)
	}
}

func TestSummarizeOutliers(t *testing.T) {
	v := []float64{10, 11, 12, 13, 14, 15, 16, 100}
	s := Summarize(v)
	if len(s.Outliers) != 1 || s.Outliers[0] != 100 {
		t.Errorf("outliers %v, want [100]", s.Outliers)
	}
	if s.HighWhisker == 100 {
		t.Error("whisker extends to outlier")
	}
	if s.Max != 100 {
		t.Error("max must include outlier")
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Errorf("empty: %+v", s)
	}
	s := Summarize([]float64{42})
	if s.N != 1 || s.Median != 42 || s.Stddev != 0 {
		t.Errorf("singleton: %+v", s)
	}
	// Input must not be mutated.
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[2] != 2 {
		t.Error("Summarize mutated input")
	}
}

func TestSummarizeStddev(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	// Sample stddev of this classic set is ~2.138.
	if math.Abs(s.Stddev-2.138) > 0.01 {
		t.Errorf("stddev %v", s.Stddev)
	}
}

func TestQuantile(t *testing.T) {
	v := []float64{1, 2, 3, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {-1, 1}, {2, 4},
	}
	for _, c := range cases {
		if got := Quantile(v, c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile not NaN")
	}
}

// Property: quantile is monotone in q and bounded by min/max.
func TestQuantileMonotoneQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(n uint8, q1, q2 float64) bool {
		size := 1 + int(n)%50
		v := make([]float64, size)
		for i := range v {
			v[i] = rng.NormFloat64() * 100
		}
		sort.Float64s(v)
		a, b := math.Abs(math.Mod(q1, 1)), math.Abs(math.Mod(q2, 1))
		if a > b {
			a, b = b, a
		}
		qa, qb := Quantile(v, a), Quantile(v, b)
		return qa <= qb && qa >= v[0] && qb <= v[len(v)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: summary invariants hold for arbitrary data.
func TestSummaryInvariantsQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(n uint8) bool {
		size := 1 + int(n)%100
		v := make([]float64, size)
		for i := range v {
			v[i] = rng.NormFloat64()*50 + 10
		}
		s := Summarize(v)
		ordered := s.Min <= s.Q1 && s.Q1 <= s.Median && s.Median <= s.Q3 && s.Q3 <= s.Max
		// Whiskers stay within the data range and keep their own order;
		// they may fall inside the box for tiny skewed samples, exactly
		// like matplotlib's whiskers.
		whiskers := s.LowWhisker >= s.Min && s.HighWhisker <= s.Max &&
			s.LowWhisker <= s.HighWhisker
		meanBound := s.Mean >= s.Min && s.Mean <= s.Max
		outliersOutside := true
		for _, o := range s.Outliers {
			if o >= s.LowWhisker && o <= s.HighWhisker {
				outliersOutside = false
			}
		}
		return ordered && whiskers && meanBound && outliersOutside && s.N == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("mean %v", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("empty mean not NaN")
	}
}

func TestPearson(t *testing.T) {
	// Perfect positive and negative correlation.
	x := []float64{1, 2, 3, 4, 5}
	if r := Pearson(x, []float64{2, 4, 6, 8, 10}); math.Abs(r-1) > 1e-12 {
		t.Errorf("perfect positive r=%v", r)
	}
	if r := Pearson(x, []float64{10, 8, 6, 4, 2}); math.Abs(r+1) > 1e-12 {
		t.Errorf("perfect negative r=%v", r)
	}
	// Independence-ish: constant y has no variance.
	if !math.IsNaN(Pearson(x, []float64{3, 3, 3, 3, 3})) {
		t.Error("zero-variance r not NaN")
	}
	// Degenerate inputs.
	if !math.IsNaN(Pearson(nil, nil)) || !math.IsNaN(Pearson(x, x[:3])) || !math.IsNaN(Pearson(x[:1], x[:1])) {
		t.Error("degenerate inputs not NaN")
	}
	// Bounded in [-1, 1].
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(40)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		r := Pearson(a, b)
		if !math.IsNaN(r) && (r < -1-1e-9 || r > 1+1e-9) {
			t.Fatalf("r=%v out of bounds", r)
		}
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	for _, b := range []int{6, 6, 6, 7, 5, 8} {
		h.Add(b)
	}
	if h.Total != 6 {
		t.Errorf("total %d", h.Total)
	}
	if got := h.Bins(); len(got) != 4 || got[0] != 5 || got[3] != 8 {
		t.Errorf("bins %v", got)
	}
	if got := h.CumulativeFraction(6); math.Abs(got-4.0/6) > 1e-9 {
		t.Errorf("cumfrac(6) = %v", got)
	}
	if got := h.CumulativeFraction(99); got != 1 {
		t.Errorf("cumfrac(99) = %v", got)
	}
	if got := h.MeanBin(); math.Abs(got-(6*3+7+5+8.0)/6) > 1e-9 {
		t.Errorf("mean bin %v", got)
	}
	empty := NewHistogram()
	if empty.CumulativeFraction(1) != 0 || !math.IsNaN(empty.MeanBin()) {
		t.Error("empty histogram semantics")
	}
}

func TestGroup(t *testing.T) {
	g := NewGroup()
	g.Add("b", 1)
	g.Add("a", 2)
	g.Add("b", 3)
	if g.Len() != 2 {
		t.Errorf("len %d", g.Len())
	}
	if keys := g.Keys(); keys[0] != "b" || keys[1] != "a" {
		t.Errorf("first-seen order %v", keys)
	}
	if keys := g.SortedKeys(); keys[0] != "a" || keys[1] != "b" {
		t.Errorf("sorted order %v", keys)
	}
	if v := g.Values("b"); len(v) != 2 || v[0] != 1 || v[1] != 3 {
		t.Errorf("values %v", v)
	}
	if s := g.Summary("b"); s.N != 2 || s.Mean != 2 {
		t.Errorf("summary %+v", s)
	}
	if s := g.Summary("nope"); s.N != 0 {
		t.Error("phantom group")
	}
}
