// Package stats provides the descriptive statistics behind the paper's
// analysis: five-number whisker (box-plot) summaries for the latency and
// bandwidth figures, histograms for reachability, and grouping helpers for
// the per-hop-count and per-ISD-set breakdowns of Fig 5/6.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary is a five-number box-plot summary with Tukey whiskers: whiskers
// extend to the most extreme points within 1.5*IQR of the quartiles, values
// beyond are outliers.
type Summary struct {
	N              int
	Mean           float64
	Min, Max       float64
	Q1, Median, Q3 float64
	// LowWhisker/HighWhisker are the whisker endpoints.
	LowWhisker, HighWhisker float64
	// Outliers are points beyond the whiskers.
	Outliers []float64
	// Stddev is the sample standard deviation.
	Stddev float64
}

// Summarize computes a Summary. It returns the zero Summary for no data.
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	v := append([]float64(nil), values...)
	sort.Float64s(v)
	s := Summary{
		N:      len(v),
		Min:    v[0],
		Max:    v[len(v)-1],
		Q1:     Quantile(v, 0.25),
		Median: Quantile(v, 0.5),
		Q3:     Quantile(v, 0.75),
	}
	var sum float64
	for _, x := range v {
		sum += x
	}
	s.Mean = sum / float64(len(v))
	if len(v) > 1 {
		var ss float64
		for _, x := range v {
			d := x - s.Mean
			ss += d * d
		}
		s.Stddev = math.Sqrt(ss / float64(len(v)-1))
	}
	iqr := s.Q3 - s.Q1
	loFence, hiFence := s.Q1-1.5*iqr, s.Q3+1.5*iqr
	s.LowWhisker, s.HighWhisker = s.Max, s.Min
	for _, x := range v {
		if x >= loFence && x < s.LowWhisker {
			s.LowWhisker = x
		}
		if x <= hiFence && x > s.HighWhisker {
			s.HighWhisker = x
		}
		if x < loFence || x > hiFence {
			s.Outliers = append(s.Outliers, x)
		}
	}
	return s
}

// IQR returns the interquartile range.
func (s Summary) IQR() float64 { return s.Q3 - s.Q1 }

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.2f q1=%.2f med=%.2f q3=%.2f max=%.2f mean=%.2f",
		s.N, s.Min, s.Q1, s.Median, s.Q3, s.Max, s.Mean)
}

// Quantile returns the q-quantile (0<=q<=1) of sorted values using linear
// interpolation between order statistics (the common "type 7" estimator).
// The input must be sorted ascending.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean (NaN for empty input).
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// Pearson returns the Pearson correlation coefficient of two equal-length
// samples (NaN for fewer than two points or zero variance). The paper's
// §6.1 argument — "the physical distance between hops confirms to be the
// predominant component in the latency assessment", not hop count — is a
// statement about correlations, which the correlation experiment verifies.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return math.NaN()
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Histogram counts values into integer bins (for Fig 4's hop-count bars).
type Histogram struct {
	Counts map[int]int
	Total  int
}

// NewHistogram builds a histogram over integer keys.
func NewHistogram() *Histogram { return &Histogram{Counts: map[int]int{}} }

// Add increments a bin.
func (h *Histogram) Add(bin int) {
	h.Counts[bin]++
	h.Total++
}

// Bins returns the sorted bin keys.
func (h *Histogram) Bins() []int {
	out := make([]int, 0, len(h.Counts))
	for b := range h.Counts {
		out = append(out, b)
	}
	sort.Ints(out)
	return out
}

// CumulativeFraction returns the fraction of observations with bin <= b.
func (h *Histogram) CumulativeFraction(b int) float64 {
	if h.Total == 0 {
		return 0
	}
	cum := 0
	for bin, n := range h.Counts {
		if bin <= b {
			cum += n
		}
	}
	return float64(cum) / float64(h.Total)
}

// MeanBin returns the observation-weighted mean bin value.
func (h *Histogram) MeanBin() float64 {
	if h.Total == 0 {
		return math.NaN()
	}
	sum := 0
	for bin, n := range h.Counts {
		sum += bin * n
	}
	return float64(sum) / float64(h.Total)
}

// Group collects values under string keys and summarises each group —
// Fig 5 groups latency samples by path id, Fig 6 by (ISD set, hop count).
type Group struct {
	order []string
	data  map[string][]float64
}

// NewGroup returns an empty group collection.
func NewGroup() *Group { return &Group{data: map[string][]float64{}} }

// Add appends a value under a key, remembering first-seen key order.
func (g *Group) Add(key string, value float64) {
	if _, ok := g.data[key]; !ok {
		g.order = append(g.order, key)
	}
	g.data[key] = append(g.data[key], value)
}

// Keys returns keys in first-seen order.
func (g *Group) Keys() []string { return append([]string(nil), g.order...) }

// SortedKeys returns keys sorted lexically.
func (g *Group) SortedKeys() []string {
	out := append([]string(nil), g.order...)
	sort.Strings(out)
	return out
}

// Values returns the raw samples of a key.
func (g *Group) Values(key string) []float64 { return g.data[key] }

// Summary summarises one key's samples.
func (g *Group) Summary(key string) Summary { return Summarize(g.data[key]) }

// Len returns the number of groups.
func (g *Group) Len() int { return len(g.order) }
