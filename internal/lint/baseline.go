package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Baseline is a recorded snapshot of accepted findings. The driver
// subtracts a baseline from a run so a new analyzer can land before every
// pre-existing finding is fixed: `-write-baseline` records today's
// diagnostics, `-baseline` filters them out of later runs, and anything
// NOT in the baseline — a regression — still fails the build. Entries are
// keyed by (analyzer, file, message) rather than line numbers so unrelated
// edits above a finding don't invalidate the baseline.
type Baseline struct {
	// Version guards the on-disk shape; readers reject versions they don't
	// understand rather than silently mis-filtering.
	Version int             `json:"version"`
	Entries []BaselineEntry `json:"entries"`
}

// BaselineVersion is the current on-disk baseline schema version.
const BaselineVersion = 1

// BaselineEntry is one accepted finding class: Count occurrences of an
// identical (analyzer, file, message) triple. File is slash-separated and
// relative to the directory the baseline was recorded from.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
	Count    int    `json:"count"`
}

func (e BaselineEntry) key() string {
	return e.Analyzer + "\x00" + e.File + "\x00" + e.Message
}

// baselineKey computes the entry key for a live diagnostic, relativizing
// its file path the same way the recorder did.
func baselineKey(dir string, d Diagnostic) string {
	return BaselineEntry{Analyzer: d.Analyzer, File: baselineFile(dir, d.File), Message: d.Message}.key()
}

// baselineFile relativizes a diagnostic path to dir and normalizes the
// separator so baselines recorded on one machine filter on another.
func baselineFile(dir, file string) string {
	if rel, err := filepath.Rel(dir, file); err == nil && !filepath.IsAbs(rel) {
		file = rel
	}
	return filepath.ToSlash(file)
}

// NewBaseline records diags as a baseline with paths relative to dir.
func NewBaseline(dir string, diags []Diagnostic) *Baseline {
	counts := make(map[string]*BaselineEntry)
	for _, d := range diags {
		e := BaselineEntry{Analyzer: d.Analyzer, File: baselineFile(dir, d.File), Message: d.Message}
		if prev, ok := counts[e.key()]; ok {
			prev.Count++
			continue
		}
		e.Count = 1
		counts[e.key()] = &e
	}
	b := &Baseline{Version: BaselineVersion, Entries: []BaselineEntry{}}
	for _, e := range counts {
		b.Entries = append(b.Entries, *e)
	}
	sort.Slice(b.Entries, func(i, j int) bool {
		a, c := b.Entries[i], b.Entries[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		return a.Message < c.Message
	})
	return b
}

// ReadBaseline loads a baseline file. A missing file is an error — an
// empty baseline must be recorded explicitly, so a typoed path fails loud
// instead of silently disabling the filter.
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("lint: baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: baseline %s: %w", path, err)
	}
	if b.Version != BaselineVersion {
		return nil, fmt.Errorf("lint: baseline %s: version %d, want %d", path, b.Version, BaselineVersion)
	}
	return &b, nil
}

// Write stores the baseline as indented JSON (stable entry order, so
// baselines diff cleanly in review).
func (b *Baseline) Write(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("lint: baseline: %w", err)
	}
	return nil
}

// Filter splits diags into the ones not covered by the baseline (kept —
// these are regressions) and counts the matches it absorbed. Entries the
// run no longer produces are returned as stale so CI can prompt a
// re-record once the underlying findings are fixed.
func (b *Baseline) Filter(dir string, diags []Diagnostic) (kept []Diagnostic, matched int, stale []BaselineEntry) {
	remaining := make(map[string]int, len(b.Entries))
	for _, e := range b.Entries {
		remaining[e.key()] += e.Count
	}
	for _, d := range diags {
		k := baselineKey(dir, d)
		if remaining[k] > 0 {
			remaining[k]--
			matched++
			continue
		}
		kept = append(kept, d)
	}
	for _, e := range b.Entries {
		if n := remaining[e.key()]; n > 0 {
			e.Count = n
			stale = append(stale, e)
			remaining[e.key()] = 0
		}
	}
	return kept, matched, stale
}
