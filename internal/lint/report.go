package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"sort"
)

// Summary aggregates a run for CI logs and the JSON report.
type Summary struct {
	Findings   int `json:"findings"`
	Warnings   int `json:"warnings"`
	Errors     int `json:"errors"`
	Suppressed int `json:"suppressed"`
	Packages   int `json:"packages"`
	Files      int `json:"files"`
}

// Line renders the one-line summary scionlint prints for CI logs.
func (s Summary) Line() string {
	return fmt.Sprintf("scionlint: %d findings in %d packages (%d files, %d suppressed)",
		s.Findings, s.Packages, s.Files, s.Suppressed)
}

// Summarize computes run totals over the analyzed packages.
func Summarize(pkgs []*Package, diags []Diagnostic, suppressed int) Summary {
	s := Summary{Findings: len(diags), Suppressed: suppressed, Packages: len(pkgs)}
	for _, p := range pkgs {
		s.Files += len(p.Files)
	}
	for _, d := range diags {
		if d.Severity == SeverityWarning {
			s.Warnings++
		} else {
			s.Errors++
		}
	}
	return s
}

// WriteText prints diagnostics one per line, grouped in position order,
// with paths relative to dir when possible (stable CI output regardless of
// checkout location).
func WriteText(w io.Writer, dir string, diags []Diagnostic, sum Summary) error {
	for _, d := range diags {
		file := d.File
		if rel, err := filepath.Rel(dir, file); err == nil && !filepath.IsAbs(rel) {
			file = rel
		}
		if _, err := fmt.Fprintf(w, "%s:%d:%d: [%s] %s\n", file, d.Line, d.Column, d.Analyzer, d.Message); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, sum.Line())
	return err
}

// JSONSchemaVersion identifies the -json output shape. Consumers should
// check it before parsing: the version only changes when a field is
// renamed, removed, or changes meaning — adding fields is not a bump.
// History: "scionlint/1" had no schema field; "scionlint/2" added it along
// with per-diagnostic fixes.
const JSONSchemaVersion = "scionlint/2"

// jsonReport is the machine-readable shape of a run (-json flag).
type jsonReport struct {
	Schema      string       `json:"schema"`
	Diagnostics []Diagnostic `json:"diagnostics"`
	Summary     Summary      `json:"summary"`
}

// WriteJSON emits the diagnostics and summary as one JSON object. File
// paths are relativized to dir like WriteText.
func WriteJSON(w io.Writer, dir string, diags []Diagnostic, sum Summary) error {
	rel := make([]Diagnostic, len(diags))
	copy(rel, diags)
	for i := range rel {
		if r, err := filepath.Rel(dir, rel[i].File); err == nil && !filepath.IsAbs(r) {
			rel[i].File = r
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jsonReport{Schema: JSONSchemaVersion, Diagnostics: rel, Summary: sum})
}

// CountByAnalyzer returns "name: n" lines for the verbose summary, sorted
// by descending count then name.
func CountByAnalyzer(diags []Diagnostic) []string {
	counts := make(map[string]int)
	for _, d := range diags {
		counts[d.Analyzer]++
	}
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if counts[names[i]] != counts[names[j]] {
			return counts[names[i]] > counts[names[j]]
		}
		return names[i] < names[j]
	})
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = fmt.Sprintf("%s: %d", n, counts[n])
	}
	return out
}
