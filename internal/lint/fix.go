package lint

import (
	"fmt"
	"os"
	"sort"
)

// FixResult summarizes one ApplyFixes run.
type FixResult struct {
	// Applied counts the edits written to disk.
	Applied int
	// Files lists the rewritten files, sorted.
	Files []string
	// Remaining holds the diagnostics that were not fixed: either they
	// carry no machine-applicable fix, or their fix overlapped an earlier
	// one in the same file and applying both would corrupt the source.
	Remaining []Diagnostic
}

// ApplyFixes applies the machine-applicable fixes attached to diags,
// rewriting source files in place. Edits within a file are applied from
// the end backwards so earlier offsets stay valid; overlapping edits are
// rejected (first wins, the loser's diagnostic stays in Remaining) rather
// than risk splicing garbage. Offsets are validated against the current
// file bytes — if the file changed since analysis, the whole file's fixes
// are skipped.
func ApplyFixes(diags []Diagnostic) (FixResult, error) {
	type edit struct {
		fix  *Fix
		diag Diagnostic
	}
	var res FixResult
	perFile := make(map[string][]edit)
	for _, d := range diags {
		if d.Fix == nil {
			res.Remaining = append(res.Remaining, d)
			continue
		}
		perFile[d.Fix.File] = append(perFile[d.Fix.File], edit{d.Fix, d})
	}

	files := make([]string, 0, len(perFile))
	for f := range perFile {
		files = append(files, f)
	}
	sort.Strings(files)

	for _, file := range files {
		edits := perFile[file]
		sort.SliceStable(edits, func(i, j int) bool {
			return edits[i].fix.StartOffset < edits[j].fix.StartOffset
		})

		// Reject overlaps up front: keep the first edit at a position,
		// push the conflicting diagnostic back to the caller. Exact
		// duplicates (two analyzers proposing the identical rewrite)
		// collapse to one.
		accepted := edits[:0]
		for _, e := range edits {
			if n := len(accepted); n > 0 {
				prev := accepted[n-1]
				if *prev.fix == *e.fix {
					continue
				}
				if e.fix.StartOffset < prev.fix.EndOffset {
					res.Remaining = append(res.Remaining, e.diag)
					continue
				}
			}
			accepted = append(accepted, e)
		}

		src, err := os.ReadFile(file)
		if err != nil {
			return res, fmt.Errorf("lint: fix: %w", err)
		}
		valid := true
		for _, e := range accepted {
			if e.fix.StartOffset < 0 || e.fix.EndOffset > len(src) || e.fix.StartOffset > e.fix.EndOffset {
				valid = false
				break
			}
		}
		if !valid {
			// The file on disk no longer matches what was analyzed.
			for _, e := range accepted {
				res.Remaining = append(res.Remaining, e.diag)
			}
			continue
		}
		for i := len(accepted) - 1; i >= 0; i-- {
			f := accepted[i].fix
			src = append(src[:f.StartOffset], append([]byte(f.NewText), src[f.EndOffset:]...)...)
		}
		if err := os.WriteFile(file, src, 0o644); err != nil {
			return res, fmt.Errorf("lint: fix: %w", err)
		}
		res.Applied += len(accepted)
		res.Files = append(res.Files, file)
	}
	return res, nil
}
