package lint

import (
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// writeLoadModule lays out a small module whose import DAG has width (two
// independent leaves) and depth (mid imports leaf1, top imports mid), so
// the concurrent type-check scheduler has both ready-queue fan-out and
// dependency ordering to get right.
func writeLoadModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module loadtest\n\ngo 1.22\n",
		"leaf1/leaf1.go": `package leaf1

func One() int { return 1 }
`,
		"leaf2/leaf2.go": `package leaf2

func Two() int { return 2 }
`,
		"mid/mid.go": `package mid

import "loadtest/leaf1"

func Three() int { return leaf1.One() + 2 }
`,
		"top/top.go": `package top

import (
	"loadtest/leaf2"
	"loadtest/mid"
)

func Five() int { return mid.Three() + leaf2.Two() }
`,
	}
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func loadedPaths(pkgs []*Package) []string {
	out := make([]string, len(pkgs))
	for i, p := range pkgs {
		out[i] = p.Path
	}
	sort.Strings(out)
	return out
}

// The concurrent loader (workers > 1 forces the ready-queue scheduler even
// on a single-CPU box) must produce the same fully type-checked packages
// as the sequential one.
func TestLoadParallelMatchesSequential(t *testing.T) {
	dir := writeLoadModule(t)
	want := []string{"loadtest/leaf1", "loadtest/leaf2", "loadtest/mid", "loadtest/top"}

	for _, parallel := range []int{1, 4} {
		pkgs, _, err := Load(LoadConfig{Dir: dir, Parallel: parallel}, "./...")
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		if got := loadedPaths(pkgs); !reflect.DeepEqual(got, want) {
			t.Fatalf("parallel=%d: packages = %v, want %v", parallel, got, want)
		}
		for _, p := range pkgs {
			if p.Types == nil || p.Info == nil {
				t.Errorf("parallel=%d: %s not type-checked", parallel, p.Path)
			}
			if len(p.TypeErrors) > 0 {
				t.Errorf("parallel=%d: %s has type errors: %v", parallel, p.Path, p.TypeErrors)
			}
		}
	}
}

// A hard type-check failure in a dependency must not deadlock the
// concurrent scheduler: dependents are released, the queue drains, and the
// caller sees an error.
func TestLoadParallelFailedDependencyDrains(t *testing.T) {
	dir := writeLoadModule(t)
	// Break leaf1 so mid (and transitively top) cannot resolve it.
	broken := filepath.Join(dir, "leaf1", "leaf1.go")
	if err := os.WriteFile(broken, []byte("package leaf1\n\nfunc One() int { return undefinedIdent }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	pkgs, _, err := Load(LoadConfig{Dir: dir, Parallel: 4}, "./...")
	// Soft type errors keep the load alive; either outcome is fine as long
	// as the call returns (no deadlock) and the breakage is visible.
	if err != nil {
		return
	}
	for _, p := range pkgs {
		if p.Path == "loadtest/leaf1" && len(p.TypeErrors) == 0 {
			t.Error("broken leaf1 loaded without recorded type errors")
		}
	}
}

// An import cycle is rejected up front by the topological sort, not
// discovered as a deadlock by the scheduler.
func TestLoadImportCycleRejected(t *testing.T) {
	dir := writeLoadModule(t)
	cyclic := filepath.Join(dir, "leaf1", "cycle.go")
	if err := os.WriteFile(cyclic, []byte("package leaf1\n\nimport \"loadtest/mid\"\n\nvar _ = mid.Three\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := Load(LoadConfig{Dir: dir, Parallel: 4}, "./...")
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("err = %v, want import cycle error", err)
	}
}
