package lint

import "go/ast"

// The third substrate layer: a small forward dataflow driver over the CFG.
// Facts are string->string maps (key -> value); the driver iterates
// transfer functions to a fixpoint with a client-chosen join. lockcheckv2
// uses it with intersection join ("must hold") and facts like
// "c.mu" -> "Lock".

// Facts is one program point's dataflow state. nil means "unvisited" (top):
// joining top with any state yields that state, so unreachable blocks never
// dilute reachable ones.
type Facts map[string]string

// clone copies facts (transfer functions mutate their input's copy).
func (f Facts) clone() Facts {
	out := make(Facts, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

func (f Facts) equal(o Facts) bool {
	if len(f) != len(o) {
		return false
	}
	for k, v := range f {
		if ov, ok := o[k]; !ok || ov != v {
			return false
		}
	}
	return true
}

// intersect keeps entries present with equal values in both (must-join).
func intersect(a, b Facts) Facts {
	out := make(Facts)
	for k, v := range a {
		if bv, ok := b[k]; ok && bv == v {
			out[k] = v
		}
	}
	return out
}

// FlowSpec configures one forward analysis.
type FlowSpec struct {
	// Init is the state at function entry.
	Init Facts
	// Transfer applies one CFG node to the state in place.
	Transfer func(n ast.Node, state Facts)
	// Join merges two incoming states; nil selects intersection (must).
	Join func(a, b Facts) Facts
}

// Forward runs the analysis to fixpoint and returns each block's entry
// state. Blocks never reached from entry map to nil.
func (c *CFG) Forward(spec FlowSpec) map[*Block]Facts {
	join := spec.Join
	if join == nil {
		join = intersect
	}
	in := make(map[*Block]Facts, len(c.Blocks))
	init := spec.Init
	if init == nil {
		init = Facts{}
	}
	in[c.Entry] = init.clone()

	work := []*Block{c.Entry}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		state := in[blk]
		if state == nil {
			continue
		}
		state = state.clone()
		for _, n := range blk.Nodes {
			spec.Transfer(n, state)
		}
		for _, succ := range blk.Succs {
			var next Facts
			if prev := in[succ]; prev == nil {
				next = state.clone()
			} else {
				next = join(prev, state)
			}
			if prev := in[succ]; prev == nil || !prev.equal(next) {
				in[succ] = next
				work = append(work, succ)
			}
		}
	}
	return in
}

// FactsAt replays the block containing pos up to (but not including) the
// node that spans it, returning the state in force when that node begins
// executing. Returns nil when pos is in no reachable block (dead code or
// inside a closure).
func (c *CFG) FactsAt(spec FlowSpec, entry map[*Block]Facts, n ast.Node) Facts {
	blk, idx := c.BlockOf(n.Pos())
	if blk == nil || entry[blk] == nil {
		return nil
	}
	state := entry[blk].clone()
	for i := 0; i < idx; i++ {
		spec.Transfer(blk.Nodes[i], state)
	}
	return state
}
