package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Hygiene keeps library packages free of debugging residue and trojan
// sources:
//
//   - fmt.Print/Printf/Println and the builtin print/println in non-main
//     packages are almost always forgotten debug output — library code
//     reports through return values or an injected io.Writer;
//   - panic in a non-main package is reported unless the enclosing function
//     is a Must*/must* constructor or init (the established convention for
//     programmer-error-only paths); everything else returns an error;
//   - Unicode bidirectional control characters in string literals or
//     comments (the "trojan source" class, CVE-2021-42574) are always an
//     error;
//   - TODO/FIXME comments must carry an owner or issue reference in
//     parentheses — "TODO(roadmap): …" — so stale intentions stay
//     traceable.
var Hygiene = &Analyzer{
	Name:     "hygiene",
	Doc:      "stray fmt.Print debugging, panics in library packages, bidi control characters, unattributed TODOs",
	Severity: SeverityError,
	Run:      runHygiene,
}

// bidiControls are the Unicode bidirectional formatting characters that can
// reorder displayed source (trojan-source vectors).
var bidiControls = []rune{
	'\u202A', '\u202B', '\u202C', '\u202D', '\u202E', // LRE RLE PDF LRO RLO
	'\u2066', '\u2067', '\u2068', '\u2069', // LRI RLI FSI PDI
	'\u200E', '\u200F', '\u061C', // LRM RLM ALM
}

func runHygiene(pass *Pass) {
	isLibrary := pass.Pkg.Name != "main"
	for _, f := range pass.Pkg.Files {
		checkBidiAndTodos(pass, f)
		if !isLibrary {
			continue
		}
		checkPrints(pass, f)
		checkPanics(pass, f)
	}
}

func checkPrints(pass *Pass, f *ast.File) {
	fmtName, fmtImported := importName(f, "fmt")
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, isIdent := call.Fun.(*ast.Ident); isIdent {
			if id.Name == "print" || id.Name == "println" {
				pass.Reportf(call.Pos(), "builtin %s is debug residue; remove it or write to an io.Writer", id.Name)
			}
			return true
		}
		if !fmtImported {
			return true
		}
		if name, isFmt := pkgCall(call, fmtName); isFmt {
			switch name {
			case "Print", "Printf", "Println":
				pass.Reportf(call.Pos(), "fmt.%s writes to stdout from a library package; return the value or take an io.Writer", name)
			}
		}
		return true
	})
}

func checkPanics(pass *Pass, f *ast.File) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		name := fd.Name.Name
		if name == "init" || strings.HasPrefix(name, "Must") || strings.HasPrefix(name, "must") {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if _, isLit := n.(*ast.FuncLit); isLit {
				return true // closures inherit the enclosing exemption check
			}
			call, isCall := n.(*ast.CallExpr)
			if !isCall {
				return true
			}
			if id, isIdent := call.Fun.(*ast.Ident); isIdent && id.Name == "panic" {
				pass.Reportf(call.Pos(), "panic in library package (func %s); return an error, or rename to Must* if this is a programmer-error guard", name)
			}
			return true
		})
	}
}

func checkBidiAndTodos(pass *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		lit, ok := n.(*ast.BasicLit)
		if !ok || (lit.Kind != token.STRING && lit.Kind != token.CHAR) {
			return true
		}
		if r, found := findBidi(lit.Value); found {
			pass.Reportf(lit.Pos(), "string literal contains Unicode bidi control character U+%04X (trojan-source hazard); spell it as an escape sequence", r)
		}
		return true
	})
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if r, found := findBidi(c.Text); found {
				pass.Reportf(c.Pos(), "comment contains Unicode bidi control character U+%04X (trojan-source hazard)", r)
			}
			checkTodo(pass, c)
		}
	}
}

func findBidi(s string) (rune, bool) {
	for _, r := range s {
		for _, b := range bidiControls {
			if r == b {
				return r, true
			}
		}
	}
	return 0, false
}

// checkTodo flags TODO/FIXME markers with no parenthesized owner.
func checkTodo(pass *Pass, c *ast.Comment) {
	text := c.Text
	for _, marker := range []string{"TODO", "FIXME"} {
		idx := strings.Index(text, marker)
		if idx < 0 {
			continue
		}
		rest := text[idx+len(marker):]
		if strings.HasPrefix(rest, "(") {
			continue
		}
		// Only flag marker-like usage (followed by :, space-colon or end),
		// not prose that merely contains the letters.
		if rest == "" || strings.HasPrefix(rest, ":") || strings.HasPrefix(rest, " ") {
			pass.ReportSeverityf(c.Pos(), SeverityWarning,
				"%s without an owner; write %s(name-or-issue): so it stays traceable", marker, marker)
		}
		return
	}
}
