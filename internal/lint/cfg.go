package lint

import (
	"go/ast"
	"go/token"
)

// This file is the second substrate layer: a per-function basic-block
// control-flow graph, precise enough for the flow-sensitive analyzers
// (lockcheckv2's held-lock tracking) without trying to be a compiler IR.
//
// Simplifications, all conservative for a must-analysis client:
//
//   - function literals are opaque values — their bodies get no blocks here
//     (flow-sensitive clients skip sites inside closures; reachability
//     clients use the call graph, which does attribute closure calls);
//   - goto edges go to the exit block (no facts survive a goto);
//   - a select with no default still gets a fall-through edge, as does an
//     expression-less switch without default.

// Block is one basic block: statements that execute in sequence, then a
// branch to the successors.
type Block struct {
	Index int
	// Nodes are the statements (and for-loop conditions etc.) in execution
	// order. They are the original AST nodes.
	Nodes []ast.Node
	Succs []*Block
}

// CFG is one function body's control-flow graph.
type CFG struct {
	Entry  *Block
	Exit   *Block // every return/panic/end-of-body edge lands here
	Blocks []*Block
}

// NewCFG builds the graph for a function body.
func NewCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.cur = b.cfg.Entry
	b.stmt(body)
	if b.cur != nil {
		b.edge(b.cur, b.cfg.Exit)
	}
	return b.cfg
}

// BlockOf returns the block and node index whose node spans pos, so clients
// can replay transfer functions up to a call site. Returns (nil, 0) for
// positions outside every block (e.g. inside a func literal).
func (c *CFG) BlockOf(pos token.Pos) (*Block, int) {
	for _, blk := range c.Blocks {
		for i, n := range blk.Nodes {
			if n.Pos() <= pos && pos <= n.End() && !insideFuncLit(n, pos) {
				return blk, i
			}
		}
	}
	return nil, 0
}

// insideFuncLit reports whether pos falls inside a func literal nested in n
// (such positions belong to the closure, not to this CFG).
func insideFuncLit(n ast.Node, pos token.Pos) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if lit, ok := m.(*ast.FuncLit); ok {
			if lit.Body.Pos() <= pos && pos <= lit.Body.End() {
				found = true
			}
			return false
		}
		return true
	})
	return found
}

type loopFrame struct {
	label          string
	breakTarget    *Block
	continueTarget *Block // nil for switch/select frames
}

type cfgBuilder struct {
	cfg    *CFG
	cur    *Block // nil after a terminator until the next labeled/new block
	frames []loopFrame
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) { from.Succs = append(from.Succs, to) }

// current returns the block under construction, starting an unreachable one
// after a terminator so stray statements still have a home.
func (b *cfgBuilder) current() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *cfgBuilder) add(n ast.Node) { blk := b.current(); blk.Nodes = append(blk.Nodes, n) }

// frame finds the innermost frame (or the one with the label) for
// break/continue resolution.
func (b *cfgBuilder) frame(label string, needContinue bool) *loopFrame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := &b.frames[i]
		if needContinue && f.continueTarget == nil {
			continue
		}
		if label == "" || f.label == label {
			return f
		}
	}
	return nil
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	b.labeledStmt(s, "")
}

// labeledStmt builds one statement; label carries an enclosing label so
// loops register it for labeled break/continue.
func (b *cfgBuilder) labeledStmt(s ast.Stmt, label string) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		for _, inner := range st.List {
			b.stmt(inner)
		}
	case *ast.LabeledStmt:
		// Start a fresh block so a goto-free label is still a join point.
		next := b.newBlock()
		b.edge(b.current(), next)
		b.cur = next
		b.labeledStmt(st.Stmt, st.Label.Name)
	case *ast.IfStmt:
		if st.Init != nil {
			b.add(st.Init)
		}
		b.add(st.Cond)
		cond := b.current()
		after := b.newBlock()
		thenB := b.newBlock()
		b.edge(cond, thenB)
		b.cur = thenB
		b.stmt(st.Body)
		if b.cur != nil {
			b.edge(b.cur, after)
		}
		if st.Else != nil {
			elseB := b.newBlock()
			b.edge(cond, elseB)
			b.cur = elseB
			b.stmt(st.Else)
			if b.cur != nil {
				b.edge(b.cur, after)
			}
		} else {
			b.edge(cond, after)
		}
		b.cur = after
	case *ast.ForStmt:
		if st.Init != nil {
			b.add(st.Init)
		}
		head := b.newBlock()
		b.edge(b.current(), head)
		if st.Cond != nil {
			head.Nodes = append(head.Nodes, st.Cond)
		}
		after := b.newBlock()
		post := b.newBlock()
		if st.Cond != nil {
			b.edge(head, after)
		}
		body := b.newBlock()
		b.edge(head, body)
		b.frames = append(b.frames, loopFrame{label: label, breakTarget: after, continueTarget: post})
		b.cur = body
		b.stmt(st.Body)
		b.frames = b.frames[:len(b.frames)-1]
		if b.cur != nil {
			b.edge(b.cur, post)
		}
		if st.Post != nil {
			post.Nodes = append(post.Nodes, st.Post)
		}
		b.edge(post, head)
		b.cur = after
	case *ast.RangeStmt:
		head := b.newBlock()
		b.edge(b.current(), head)
		// Only the ranged expression evaluates at the head. The body gets
		// its own block below — recording the whole RangeStmt here would
		// replay body effects on the zero-iteration path and claim body
		// positions for the head block.
		head.Nodes = append(head.Nodes, st.X)
		after := b.newBlock()
		b.edge(head, after) // empty collection
		body := b.newBlock()
		b.edge(head, body)
		b.frames = append(b.frames, loopFrame{label: label, breakTarget: after, continueTarget: head})
		b.cur = body
		b.stmt(st.Body)
		b.frames = b.frames[:len(b.frames)-1]
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		b.cur = after
	case *ast.SwitchStmt:
		if st.Init != nil {
			b.add(st.Init)
		}
		if st.Tag != nil {
			b.add(st.Tag)
		}
		b.buildCases(st.Body, label, nil)
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			b.add(st.Init)
		}
		b.add(st.Assign)
		b.buildCases(st.Body, label, nil)
	case *ast.SelectStmt:
		b.buildCases(st.Body, label, st)
	case *ast.ReturnStmt:
		b.add(st)
		b.edge(b.current(), b.cfg.Exit)
		b.cur = nil
	case *ast.BranchStmt:
		switch st.Tok {
		case token.BREAK:
			if f := b.frame(labelName(st.Label), false); f != nil {
				b.edge(b.current(), f.breakTarget)
			}
			b.cur = nil
		case token.CONTINUE:
			if f := b.frame(labelName(st.Label), true); f != nil {
				b.edge(b.current(), f.continueTarget)
			}
			b.cur = nil
		case token.GOTO:
			b.edge(b.current(), b.cfg.Exit)
			b.cur = nil
		case token.FALLTHROUGH:
			// Handled structurally in buildCases (the clause's fall edge).
		}
	case *ast.ExprStmt:
		b.add(st)
		if isPanicCall(st.X) {
			b.edge(b.current(), b.cfg.Exit)
			b.cur = nil
		}
	default:
		// Assignments, declarations, sends, defers, go statements,
		// increments: straight-line nodes.
		b.add(st)
	}
}

// buildCases wires a switch/type-switch/select body: the dispatching block
// branches to every clause; clauses branch to the after block (or fall
// through to the next clause body).
func (b *cfgBuilder) buildCases(body *ast.BlockStmt, label string, sel *ast.SelectStmt) {
	dispatch := b.current()
	after := b.newBlock()
	b.frames = append(b.frames, loopFrame{label: label, breakTarget: after})

	clauseBlocks := make([]*Block, len(body.List))
	for i := range body.List {
		clauseBlocks[i] = b.newBlock()
		b.edge(dispatch, clauseBlocks[i])
	}
	hasDefault := false
	for i, cl := range body.List {
		b.cur = clauseBlocks[i]
		var stmts []ast.Stmt
		switch c := cl.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				b.add(e)
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			} else {
				b.add(c.Comm)
			}
			stmts = c.Body
		}
		fallsThrough := false
		for _, s := range stmts {
			if br, ok := s.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
				continue
			}
			b.stmt(s)
		}
		if b.cur != nil {
			if fallsThrough && i+1 < len(clauseBlocks) {
				b.edge(b.cur, clauseBlocks[i+1])
			} else {
				b.edge(b.cur, after)
			}
		}
	}
	// No default: the dispatch may skip every clause (select without default
	// blocks, but treating it as skippable only widens the must-analysis).
	if !hasDefault || sel != nil {
		b.edge(dispatch, after)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}

func labelName(id *ast.Ident) string {
	if id == nil {
		return ""
	}
	return id.Name
}

// isPanicCall matches the builtin panic (a block terminator).
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}
