package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func baselineDiags(dir string) []Diagnostic {
	return []Diagnostic{
		{Analyzer: "ctxcheck", File: filepath.Join(dir, "a", "a.go"), Line: 10, Message: "minted context"},
		{Analyzer: "ctxcheck", File: filepath.Join(dir, "a", "a.go"), Line: 30, Message: "minted context"},
		{Analyzer: "lockcheck", File: filepath.Join(dir, "b.go"), Line: 5, Message: "missing unlock"},
	}
}

// Recording then filtering the same findings must absorb all of them —
// and the round trip through disk must preserve that.
func TestBaselineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	diags := baselineDiags(dir)
	b := NewBaseline(dir, diags)
	if len(b.Entries) != 2 {
		t.Fatalf("entries = %d, want 2 (identical findings aggregate)", len(b.Entries))
	}
	// Entries sort by file, and paths are slash-relative to dir.
	if b.Entries[0].File != "a/a.go" || b.Entries[0].Count != 2 {
		t.Errorf("entry 0 = %+v, want a/a.go x2", b.Entries[0])
	}
	if b.Entries[1].File != "b.go" || b.Entries[1].Count != 1 {
		t.Errorf("entry 1 = %+v, want b.go x1", b.Entries[1])
	}

	path := filepath.Join(dir, "baseline.json")
	if err := b.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	kept, matched, stale := got.Filter(dir, diags)
	if len(kept) != 0 || matched != 3 || len(stale) != 0 {
		t.Errorf("filter = kept %d, matched %d, stale %d; want 0, 3, 0", len(kept), matched, len(stale))
	}
}

// A finding beyond the recorded count is a regression; an entry the run no
// longer produces is stale. Line-number changes must affect neither.
func TestBaselineFilterRegressionAndStale(t *testing.T) {
	dir := t.TempDir()
	b := NewBaseline(dir, baselineDiags(dir))

	run := []Diagnostic{
		// Same (analyzer, file, message) as recorded but a different line:
		// still covered.
		{Analyzer: "ctxcheck", File: filepath.Join(dir, "a", "a.go"), Line: 99, Message: "minted context"},
		// A third occurrence exceeds the recorded count of 2... but only
		// one is present, so one of the two recorded stays stale.
		{Analyzer: "errcheck", File: filepath.Join(dir, "c.go"), Line: 1, Message: "dropped error"},
	}
	kept, matched, stale := b.Filter(dir, run)
	if matched != 1 {
		t.Errorf("matched = %d, want 1", matched)
	}
	if len(kept) != 1 || kept[0].Analyzer != "errcheck" {
		t.Fatalf("kept = %v, want just the errcheck regression", kept)
	}
	// Stale: one unused ctxcheck occurrence and the whole lockcheck entry.
	if len(stale) != 2 {
		t.Fatalf("stale = %v, want 2 entries", stale)
	}
	counts := map[string]int{}
	for _, e := range stale {
		counts[e.Analyzer] = e.Count
	}
	if counts["ctxcheck"] != 1 || counts["lockcheck"] != 1 {
		t.Errorf("stale counts = %v, want ctxcheck:1 lockcheck:1", counts)
	}
}

// A missing baseline file must fail loud (a typoed path silently disabling
// the filter would let regressions through), as must an unknown version
// and unparseable JSON.
func TestBaselineReadErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadBaseline(filepath.Join(dir, "nope.json")); err == nil {
		t.Error("missing baseline file did not error")
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBaseline(bad); err == nil {
		t.Error("malformed baseline did not error")
	}

	wrong := filepath.Join(dir, "wrong.json")
	if err := os.WriteFile(wrong, []byte(`{"version": 99, "entries": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBaseline(wrong); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("version mismatch error = %v, want mention of version", err)
	}
}

// Paths outside the anchor directory stay absolute (relativizing with ../
// would break when the baseline is read from elsewhere); recorded entries
// always use forward slashes.
func TestBaselineFileAnchoring(t *testing.T) {
	if got := baselineFile("/repo", "/repo/pkg/f.go"); got != "pkg/f.go" {
		t.Errorf("inside anchor: %q, want pkg/f.go", got)
	}
	if got := baselineFile("/repo/deep", "/repo/f.go"); got != "../f.go" {
		t.Errorf("above anchor: %q, want ../f.go", got)
	}
}
