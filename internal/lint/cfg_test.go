package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// cfgFunc parses src (a full file) and returns the named function's decl.
func cfgFunc(t *testing.T, src, name string) *ast.FuncDecl {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_test.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd
		}
	}
	t.Fatalf("function %s not found", name)
	return nil
}

// findCall locates the call to the named function inside body.
func findCall(t *testing.T, body *ast.BlockStmt, callee string) *ast.CallExpr {
	t.Helper()
	var found *ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == callee && found == nil {
			found = call
		}
		return true
	})
	if found == nil {
		t.Fatalf("call to %s not found", callee)
	}
	return found
}

// assignSpec records `name := "lit"` / `name = "lit"` string assignments
// syntactically — enough to observe the must-join semantics without types.
var assignSpec = FlowSpec{Transfer: func(n ast.Node, s Facts) {
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		as, ok := x.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		if lit, ok := as.Rhs[0].(*ast.BasicLit); ok {
			s[id.Name] = lit.Value
		}
		return true
	})
}}

const cfgJoinSrc = `package p

func f(c bool) {
	x := "1"
	if c {
		y := "2"
		_ = y
	} else {
		y := "3"
		_ = y
	}
	mid()
	if c {
		z := "4"
		_ = z
	}
	after()
	fn := func() {
		w := "5"
		_ = w
		inner()
	}
	fn()
	end()
}
`

// The forward driver is a must-analysis: facts that disagree across join
// predecessors (or exist on only some paths) are dropped.
func TestCFGForwardMustJoin(t *testing.T) {
	fd := cfgFunc(t, cfgJoinSrc, "f")
	cfg := NewCFG(fd.Body)
	entry := cfg.Forward(assignSpec)

	at := func(callee string) Facts {
		return cfg.FactsAt(assignSpec, entry, findCall(t, fd.Body, callee))
	}

	mid := at("mid")
	if mid == nil {
		t.Fatal("no facts at mid()")
	}
	if mid["x"] != `"1"` {
		t.Errorf(`x at mid() = %q, want "1" (straight-line fact)`, mid["x"])
	}
	if v, ok := mid["y"]; ok {
		t.Errorf("y survived the join with disagreeing values: %q", v)
	}

	after := at("after")
	if _, ok := after["z"]; ok {
		t.Error("z set on only one branch survived the must-join")
	}
	if after["x"] != `"1"` {
		t.Error("x lost crossing an if with no reassignment")
	}

	end := at("end")
	if _, ok := end["w"]; ok {
		t.Error("assignment inside a func literal leaked into the enclosing flow")
	}
}

// Nodes inside a function literal belong to no block of the enclosing CFG:
// FactsAt must return nil rather than facts from the wrong function.
func TestCFGFactsInsideFuncLitAreNil(t *testing.T) {
	fd := cfgFunc(t, cfgJoinSrc, "f")
	cfg := NewCFG(fd.Body)
	entry := cfg.Forward(assignSpec)
	if facts := cfg.FactsAt(assignSpec, entry, findCall(t, fd.Body, "inner")); facts != nil {
		t.Errorf("FactsAt inside a closure = %v, want nil", facts)
	}
}

const cfgPanicSrc = `package p

func g(c bool) {
	a := "1"
	if c {
		a = "2"
		panic("boom")
	}
	tail()
}
`

// A panicking block terminates: its facts must not flow into the join, so
// the pre-branch value survives.
func TestCFGPanicTerminatesBlock(t *testing.T) {
	fd := cfgFunc(t, cfgPanicSrc, "g")
	cfg := NewCFG(fd.Body)
	entry := cfg.Forward(assignSpec)
	facts := cfg.FactsAt(assignSpec, entry, findCall(t, fd.Body, "tail"))
	if facts == nil {
		t.Fatal("no facts at tail()")
	}
	if facts["a"] != `"1"` {
		t.Errorf(`a at tail() = %q, want "1" — the panicking branch must not join`, facts["a"])
	}
}

const cfgSwitchSrc = `package p

func h(n int, ch chan string) {
	a := "1"
	switch n {
	case 0:
		fallthrough
	case 1:
		a = "2"
		b := "9"
		_ = b
	default:
		a = "2"
	}
	mid()
	select {
	case s := <-ch:
		_ = s
	default:
	}
	after()
Loop:
	for i := 0; i < n; i++ {
		switch n {
		case 0:
			break Loop
		case 1:
			continue Loop
		}
		a = "3"
	}
	end()
}
`

// Switch dispatch joins every clause (with fallthrough wiring), select
// always admits the skip edge, and labeled break/continue resolve through
// the frame stack to the labeled loop rather than the inner switch.
func TestCFGSwitchSelectAndLabeledBranches(t *testing.T) {
	fd := cfgFunc(t, cfgSwitchSrc, "h")
	cfg := NewCFG(fd.Body)
	entry := cfg.Forward(assignSpec)

	at := func(callee string) Facts {
		return cfg.FactsAt(assignSpec, entry, findCall(t, fd.Body, callee))
	}

	// Every switch path sets a="2" — case 0 only via its fallthrough into
	// case 1 — so the must-join keeps it; b exists on only some clauses
	// and is dropped.
	mid := at("mid")
	if mid == nil {
		t.Fatal("no facts at mid()")
	}
	if mid["a"] != `"2"` {
		t.Errorf(`a at mid() = %q, want "2" (all clauses agree, incl. fallthrough)`, mid["a"])
	}
	if _, ok := mid["b"]; ok {
		t.Error("clause-local b leaked through the switch join")
	}

	// A select may skip every clause, so nothing new is guaranteed after it.
	if after := at("after"); after["a"] != `"2"` {
		t.Errorf(`a at after() = %q, want "2" (select must not drop it)`, after["a"])
	}

	// The labeled loop exits with a="2" (zero iterations, break Loop,
	// continue Loop skipping the tail) on some paths and a="3" on others:
	// the disagreement must drop a — if labeled break/continue resolved to
	// the inner switch instead of the loop, a="3" would wrongly dominate.
	if end := at("end"); end == nil {
		t.Fatal("no facts at end()")
	} else if v, ok := end["a"]; ok {
		t.Errorf(`a at end() = %q, want dropped (paths disagree)`, v)
	}
}

const cfgGotoSrc = `package p

func k(c bool) {
	a := "1"
	if c {
		goto Done
	}
	a = "2"
	mid()
Done:
	tail()
	_ = a
}
`

// goto conservatively exits the function in this CFG (documented
// approximation): facts after the label must not pretend the jump landed
// there, and straight-line facts before it survive.
func TestCFGGotoApproximation(t *testing.T) {
	fd := cfgFunc(t, cfgGotoSrc, "k")
	cfg := NewCFG(fd.Body)
	entry := cfg.Forward(assignSpec)
	facts := cfg.FactsAt(assignSpec, entry, findCall(t, fd.Body, "mid"))
	if facts == nil {
		t.Fatal("no facts at mid()")
	}
	if facts["a"] != `"2"` {
		t.Errorf(`a at mid() = %q, want "2"`, facts["a"])
	}
	// The label is a join of the goto (treated as exit) and fall-through:
	// the fall-through path must still reach tail().
	if tail := cfg.FactsAt(assignSpec, entry, findCall(t, fd.Body, "tail")); tail == nil {
		t.Error("tail() unreachable: goto approximation severed the fall-through path")
	}
}
