package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// This file is the first layer of the analysis substrate: a per-module call
// graph over go/types callees. Direct calls and concrete method calls
// resolve exactly; the two dynamic dispatch mechanisms are handled
// conservatively (over-approximated), which is the right bias for every
// client in this package — an analyzer that walks the graph to prove "f
// never reaches time.Now" must see every call f *could* make:
//
//   - a call through an interface method adds edges to every module method
//     with that name whose receiver type implements the interface;
//   - a call through a func value adds edges to every module function whose
//     address is taken somewhere and whose signature is identical.
//
// Function literals do not get their own nodes: calls inside a closure are
// attributed to the function whose body declares it. A closure's calls
// happen (at the latest) when something invokes the value the enclosing
// function built, so for reachability purposes charging the encloser is a
// sound over-approximation — and it keeps goroutine bodies visible.

// CallEdge is one call site resolved to one possible callee.
type CallEdge struct {
	// Site is the call expression (position for diagnostics).
	Site *ast.CallExpr
	// Callee is the called function or method. It may belong to another
	// package (including the standard library), in which case the graph has
	// no node for it and traversal stops there.
	Callee *types.Func
	// Dynamic marks edges added by the conservative interface/func-value
	// handling rather than exact resolution.
	Dynamic bool
}

// CallNode is one module function with a body.
type CallNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Out lists every resolved call edge in body order (dynamic fan-out
	// expands one site into several consecutive edges).
	Out []CallEdge
}

// CallGraph is the per-module call graph.
type CallGraph struct {
	nodes map[*types.Func]*CallNode
}

// Node returns the graph node for fn, or nil when fn has no body in the
// analyzed module (stdlib, interface method, external package).
func (g *CallGraph) Node(fn *types.Func) *CallNode { return g.nodes[fn] }

// Nodes returns every node, sorted by position for deterministic iteration.
func (g *CallGraph) Nodes() []*CallNode {
	out := make([]*CallNode, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Decl.Pos() < out[j].Decl.Pos() })
	return out
}

// Reachable walks the graph from the roots and returns, for every function
// reached (roots included), the root that reaches it — the witness named in
// diagnostics. Traversal descends only into functions with module bodies.
func (g *CallGraph) Reachable(roots []*types.Func) map[*types.Func]*types.Func {
	witness := make(map[*types.Func]*types.Func)
	var queue []*types.Func
	for _, r := range roots {
		if _, seen := witness[r]; seen || g.nodes[r] == nil {
			continue
		}
		witness[r] = r
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		node := g.nodes[fn]
		if node == nil {
			continue
		}
		for _, e := range node.Out {
			if _, seen := witness[e.Callee]; seen {
				continue
			}
			witness[e.Callee] = witness[fn]
			if g.nodes[e.Callee] != nil {
				queue = append(queue, e.Callee)
			}
		}
	}
	return witness
}

// buildCallGraph constructs the graph over the loaded packages. Packages
// whose type-check failed contribute no nodes (their functions are simply
// absent, like stdlib bodies).
func buildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{nodes: make(map[*types.Func]*CallNode)}

	// Pass 1: index every declared function, every named-type method (for
	// interface dispatch) and every address-taken function (for func-value
	// dispatch).
	methodsByName := make(map[string][]*types.Func)
	for _, pkg := range pkgs {
		if pkg.Info == nil {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.nodes[fn] = &CallNode{Fn: fn, Decl: fd, Pkg: pkg}
				if fd.Recv != nil {
					methodsByName[fn.Name()] = append(methodsByName[fn.Name()], fn)
				}
			}
		}
	}
	addressTaken := collectAddressTaken(pkgs)

	// Pass 2: resolve every call site in every body.
	for _, node := range g.nodes {
		node.Out = resolveCalls(node.Pkg, node.Decl, methodsByName, addressTaken)
	}
	return g
}

// collectAddressTaken finds module functions referenced as values (assigned,
// passed, returned, captured) rather than directly called. These are the
// possible targets of calls through func-typed variables.
func collectAddressTaken(pkgs []*Package) map[*types.Func]bool {
	taken := make(map[*types.Func]bool)
	for _, pkg := range pkgs {
		if pkg.Info == nil {
			continue
		}
		// Idents that are the operand of a direct call are uses, not value
		// references; collect them first so the second walk can skip them.
		calleeIdent := make(map[*ast.Ident]bool)
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch fun := ast.Unparen(call.Fun).(type) {
				case *ast.Ident:
					calleeIdent[fun] = true
				case *ast.SelectorExpr:
					calleeIdent[fun.Sel] = true
				}
				return true
			})
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok || calleeIdent[id] {
					return true
				}
				if fn, ok := pkg.Info.Uses[id].(*types.Func); ok {
					taken[fn] = true
				}
				return true
			})
		}
	}
	return taken
}

// resolveCalls walks one function body (closures included) and resolves each
// call expression to its possible callees.
func resolveCalls(pkg *Package, fd *ast.FuncDecl, methodsByName map[string][]*types.Func, addressTaken map[*types.Func]bool) []CallEdge {
	info := pkg.Info
	var out []CallEdge
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Type conversions parse as calls; skip them.
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			switch obj := info.Uses[fun].(type) {
			case *types.Func:
				out = append(out, CallEdge{Site: call, Callee: obj})
				return true
			case *types.Builtin, *types.TypeName, nil:
				return true
			}
			// A variable of function type: dynamic dispatch.
			out = append(out, funcValueEdges(call, info, addressTaken)...)
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
				callee, ok := sel.Obj().(*types.Func)
				if !ok {
					return true
				}
				out = append(out, CallEdge{Site: call, Callee: callee})
				if types.IsInterface(sel.Recv()) {
					out = append(out, interfaceEdges(call, sel.Recv(), callee.Name(), methodsByName)...)
				}
				return true
			}
			// Package-qualified call (time.Now) or func-typed field/method
			// expression.
			if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
				out = append(out, CallEdge{Site: call, Callee: fn})
				return true
			}
			out = append(out, funcValueEdges(call, info, addressTaken)...)
		default:
			// Calling a func literal inline analyses itself (the literal's
			// body is walked as part of this function); anything else —
			// index expressions, call results — is a func value.
			if _, isLit := ast.Unparen(call.Fun).(*ast.FuncLit); !isLit {
				out = append(out, funcValueEdges(call, info, addressTaken)...)
			}
		}
		return true
	})
	return out
}

// funcValueEdges over-approximates a call through a func value: every
// address-taken module function with an identical signature is a possible
// callee. (types.Identical ignores receivers, so method values unify with
// their unbound signatures.)
func funcValueEdges(call *ast.CallExpr, info *types.Info, addressTaken map[*types.Func]bool) []CallEdge {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return nil
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return nil
	}
	var targets []*types.Func
	for fn := range addressTaken {
		fsig, ok := fn.Type().(*types.Signature)
		if !ok {
			continue
		}
		if fsig.Recv() != nil {
			// A method value's signature drops the receiver.
			fsig = types.NewSignatureType(nil, nil, nil, fsig.Params(), fsig.Results(), fsig.Variadic())
		}
		if types.Identical(sig, fsig) {
			targets = append(targets, fn)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].FullName() < targets[j].FullName() })
	out := make([]CallEdge, len(targets))
	for i, fn := range targets {
		out[i] = CallEdge{Site: call, Callee: fn, Dynamic: true}
	}
	return out
}

// interfaceEdges over-approximates dispatch through an interface method:
// every module method with the same name whose receiver type implements the
// interface is a possible callee.
func interfaceEdges(call *ast.CallExpr, recv types.Type, name string, methodsByName map[string][]*types.Func) []CallEdge {
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []CallEdge
	for _, m := range methodsByName[name] {
		sig, ok := m.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			continue
		}
		rt := sig.Recv().Type()
		if types.Implements(rt, iface) {
			out = append(out, CallEdge{Site: call, Callee: m, Dynamic: true})
			continue
		}
		// Value receivers: the pointer type's method set includes them.
		if ptr, isPtr := rt.(*types.Pointer); !isPtr {
			if types.Implements(types.NewPointer(rt), iface) {
				out = append(out, CallEdge{Site: call, Callee: m, Dynamic: true})
			}
		} else if types.Implements(ptr, iface) {
			out = append(out, CallEdge{Site: call, Callee: m, Dynamic: true})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Callee.FullName() < out[j].Callee.FullName() })
	return out
}
