package lint

import (
	"strings"
	"testing"
)

// FuzzIgnoreDirective throws arbitrary comment text at both directive
// parsers. They must never panic, must be deterministic, and the
// directives they accept must satisfy the invariants their consumers rely
// on. For ignore directives: only the two documented prefixes parse,
// wholeFile tracks which one, analyzers carry no whitespace, reasons are
// trimmed, and a reason-less directive never suppresses anything (the
// reason is mandatory by design — checked by the lintdirective analyzer).
// For the deterministic directive: only the exact word parses (longer
// words sharing the prefix are ordinary comments) and the note is trimmed.
func FuzzIgnoreDirective(f *testing.F) {
	f.Add("//lint:ignore lockcheck runs before the DB is shared")
	f.Add("//lint:file-ignore * generated code")
	f.Add("//lint:ignore ")
	f.Add("//lint:ignore errcheck")
	f.Add("//lint:ignore\ttab separated\treason")
	f.Add("// an ordinary comment")
	f.Add("//lint:ignorance is bliss")
	f.Add("//lint:file-ignore \x00\xffbinary junk")
	f.Add("//lint:ignore a \n b")
	f.Add("//lint:deterministic one seed one trace")
	f.Add("//lint:deterministic")
	f.Add("//lint:deterministic\ttab note")
	f.Add("//lint:deterministic-ish close but no directive")
	f.Add("//lint:deterministically wrong")
	f.Fuzz(func(t *testing.T, text string) {
		note, detOK := parseDeterministic(text)
		note2, detOK2 := parseDeterministic(text)
		if detOK != detOK2 || note != note2 {
			t.Fatalf("parseDeterministic not deterministic on %q", text)
		}
		if detOK {
			rest := strings.TrimPrefix(text, deterministicDirective)
			if rest == text {
				t.Fatalf("accepted text %q lacks the deterministic prefix", text)
			}
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				t.Fatalf("accepted %q where the directive word continues (%q)", text, rest)
			}
			if note != strings.TrimSpace(note) {
				t.Fatalf("note %q not trimmed (text %q)", note, text)
			}
		} else if note != "" {
			t.Fatalf("rejected text %q produced non-empty note %q", text, note)
		}

		dir, ok := parseIgnore(text)
		dir2, ok2 := parseIgnore(text)
		if ok != ok2 || dir != dir2 {
			t.Fatalf("parseIgnore not deterministic on %q: (%+v,%v) then (%+v,%v)", text, dir, ok, dir2, ok2)
		}
		if !ok {
			if dir != (ignoreDirective{}) {
				t.Fatalf("rejected text %q produced non-zero directive %+v", text, dir)
			}
			return
		}
		if !strings.HasPrefix(text, ignorePrefix) && !strings.HasPrefix(text, fileIgnorePrefix) {
			t.Fatalf("accepted text %q lacks both directive prefixes", text)
		}
		if dir.wholeFile != strings.HasPrefix(text, fileIgnorePrefix) {
			t.Fatalf("wholeFile=%v disagrees with prefix of %q", dir.wholeFile, text)
		}
		if strings.ContainsAny(dir.analyzer, " \t\n\r") {
			t.Fatalf("analyzer %q contains whitespace (text %q)", dir.analyzer, text)
		}
		if dir.reason != strings.TrimSpace(dir.reason) {
			t.Fatalf("reason %q not trimmed (text %q)", dir.reason, text)
		}

		// A directive without a reason must be inert however it is anchored.
		dir.file, dir.line, dir.endLine = "f.go", 10, 20
		set := &ignoreSet{directives: []ignoreDirective{dir}}
		diag := Diagnostic{Analyzer: dir.analyzer, File: "f.go", Line: 10}
		if dir.analyzer == "" {
			diag.Analyzer = "anything"
		}
		if got := set.suppresses(diag); got != (dir.reason != "") {
			t.Fatalf("directive %+v suppresses=%v, want %v (text %q)", dir, got, dir.reason != "", text)
		}
	})
}
