package lint

import (
	"strings"
	"testing"
)

// FuzzIgnoreDirective throws arbitrary comment text at the directive parser.
// The parser must never panic, must be deterministic, and the directives it
// accepts must satisfy the invariants the suppression matcher relies on:
// only the two documented prefixes parse, wholeFile tracks which one,
// analyzers carry no whitespace, reasons are trimmed, and a reason-less
// directive never suppresses anything (the reason is mandatory by design —
// checked by the lintdirective analyzer).
func FuzzIgnoreDirective(f *testing.F) {
	f.Add("//lint:ignore lockcheck runs before the DB is shared")
	f.Add("//lint:file-ignore * generated code")
	f.Add("//lint:ignore ")
	f.Add("//lint:ignore errcheck")
	f.Add("//lint:ignore\ttab separated\treason")
	f.Add("// an ordinary comment")
	f.Add("//lint:ignorance is bliss")
	f.Add("//lint:file-ignore \x00\xffbinary junk")
	f.Add("//lint:ignore a \n b")
	f.Fuzz(func(t *testing.T, text string) {
		dir, ok := parseIgnore(text)
		dir2, ok2 := parseIgnore(text)
		if ok != ok2 || dir != dir2 {
			t.Fatalf("parseIgnore not deterministic on %q: (%+v,%v) then (%+v,%v)", text, dir, ok, dir2, ok2)
		}
		if !ok {
			if dir != (ignoreDirective{}) {
				t.Fatalf("rejected text %q produced non-zero directive %+v", text, dir)
			}
			return
		}
		if !strings.HasPrefix(text, ignorePrefix) && !strings.HasPrefix(text, fileIgnorePrefix) {
			t.Fatalf("accepted text %q lacks both directive prefixes", text)
		}
		if dir.wholeFile != strings.HasPrefix(text, fileIgnorePrefix) {
			t.Fatalf("wholeFile=%v disagrees with prefix of %q", dir.wholeFile, text)
		}
		if strings.ContainsAny(dir.analyzer, " \t\n\r") {
			t.Fatalf("analyzer %q contains whitespace (text %q)", dir.analyzer, text)
		}
		if dir.reason != strings.TrimSpace(dir.reason) {
			t.Fatalf("reason %q not trimmed (text %q)", dir.reason, text)
		}

		// A directive without a reason must be inert however it is anchored.
		dir.file, dir.line, dir.endLine = "f.go", 10, 20
		set := &ignoreSet{directives: []ignoreDirective{dir}}
		diag := Diagnostic{Analyzer: dir.analyzer, File: "f.go", Line: 10}
		if dir.analyzer == "" {
			diag.Analyzer = "anything"
		}
		if got := set.suppresses(diag); got != (dir.reason != "") {
			t.Fatalf("directive %+v suppresses=%v, want %v (text %q)", dir, got, dir.reason != "", text)
		}
	})
}
