package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineCapture inspects `go func() {...}` (and deferred closures) for
// the two capture hazards that bite event-driven measurement code like the
// simnet engine:
//
//  1. A closure launched from inside a loop that captures the loop
//     variable. Go 1.22 gave loop variables per-iteration scope, but this
//     module's analysis fixtures and any code vendored into pre-1.22
//     toolchains keep the classic footgun; passing the value as an
//     argument is also simply clearer. Reported as a warning.
//
//  2. A goroutine closure that captures a variable the enclosing function
//     writes *after* the go statement. That is a data race at any language
//     version — the goroutine reads while the spawner writes. Reported as
//     an error.
var GoroutineCapture = &Analyzer{
	Name:       "goroutinecapture",
	Doc:        "loop variables and later-written locals captured by goroutine closures",
	Severity:   SeverityWarning,
	NeedsTypes: true,
	Run:        runGoroutineCapture,
}

func runGoroutineCapture(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncCaptures(pass, fd.Body)
		}
	}
}

// checkFuncCaptures walks one function body tracking the stack of enclosing
// loop variables.
func checkFuncCaptures(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	var loopVars []map[types.Object]bool

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ForStmt:
			vars := make(map[types.Object]bool)
			if init, ok := s.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
				for _, lhs := range init.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if obj := info.Defs[id]; obj != nil {
							vars[obj] = true
						}
					}
				}
			}
			loopVars = append(loopVars, vars)
			ast.Inspect(s.Body, walk)
			loopVars = loopVars[:len(loopVars)-1]
			return false
		case *ast.RangeStmt:
			vars := make(map[types.Object]bool)
			for _, e := range []ast.Expr{s.Key, s.Value} {
				if id, ok := e.(*ast.Ident); ok {
					if obj := info.Defs[id]; obj != nil {
						vars[obj] = true
					}
				}
			}
			loopVars = append(loopVars, vars)
			ast.Inspect(s.Body, walk)
			loopVars = loopVars[:len(loopVars)-1]
			return false
		case *ast.GoStmt:
			if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
				reportLoopCaptures(pass, lit, loopVars, "goroutine")
				reportLateWrites(pass, body, s, lit)
			}
			return true
		case *ast.DeferStmt:
			if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
				reportLoopCaptures(pass, lit, loopVars, "deferred closure")
			}
			return true
		}
		return true
	}
	ast.Inspect(body, walk)
}

// reportLoopCaptures flags references inside the closure to any enclosing
// loop's iteration variables.
func reportLoopCaptures(pass *Pass, lit *ast.FuncLit, loopVars []map[types.Object]bool, kind string) {
	if len(loopVars) == 0 {
		return
	}
	info := pass.Pkg.Info
	seen := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil || seen[obj] {
			return true
		}
		for _, scope := range loopVars {
			if scope[obj] {
				seen[obj] = true
				pass.ReportSeverityf(id.Pos(), SeverityWarning,
					"%s captures loop variable %q; pass it as an argument (pre-Go-1.22 shared-variable semantics, and clearer either way)",
					kind, id.Name)
			}
		}
		return true
	})
}

// reportLateWrites flags captured variables assigned in the enclosing
// function after the go statement: the spawned goroutine races with those
// writes.
func reportLateWrites(pass *Pass, body *ast.BlockStmt, goStmt *ast.GoStmt, lit *ast.FuncLit) {
	info := pass.Pkg.Info

	// Variables the closure reads, declared outside it.
	captured := make(map[types.Object]*ast.Ident)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if v, isVar := obj.(*types.Var); isVar && !v.IsField() &&
			v.Pos() < lit.Pos() && v.Pos() > body.Pos() {
			if _, dup := captured[obj]; !dup {
				captured[obj] = id
			}
		}
		return true
	})
	if len(captured) == 0 {
		return
	}

	reported := make(map[types.Object]bool)
	flag := func(target ast.Expr, pos token.Pos) {
		id, ok := target.(*ast.Ident)
		if !ok {
			return
		}
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		if use, isCaptured := captured[obj]; isCaptured && !reported[obj] {
			reported[obj] = true
			pass.ReportSeverityf(use.Pos(), SeverityError,
				"goroutine captures %q which is written at %s after the goroutine starts; this is a data race — pass the value as an argument or synchronize",
				id.Name, pass.Fset.Position(pos))
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil || n.Pos() <= goStmt.End() {
			return true
		}
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				flag(lhs, s.Pos())
			}
		case *ast.IncDecStmt:
			flag(s.X, s.Pos())
		}
		return true
	})
}
