package lint

import (
	"go/ast"
	"go/importer"
	"go/token"
	"go/types"
	"testing"
)

// typeCheckTestFile type-checks a single parsed file for analyzer repro
// tests, resolving stdlib imports through the source importer (the same
// resolver load.go uses, so facts behave as in real runs).
func typeCheckTestFile(t *testing.T, fset *token.FileSet, f *ast.File) (*types.Package, *types.Info) {
	t.Helper()
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(f.Name.Name, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type check: %v", err)
	}
	return pkg, info
}
