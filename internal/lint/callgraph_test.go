package lint

import (
	"go/types"
	"testing"
)

// graphFixture loads the graph fixture package and builds a Module over
// just it, the same shape analyzers see.
func graphFixture(t *testing.T) (*Module, *Package) {
	t.Helper()
	byName, fset := loadFixtures(t)
	pkg := byName["graph"]
	if pkg == nil {
		t.Fatal("graph fixture not loaded")
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("graph fixture has type errors: %v", pkg.TypeErrors)
	}
	return NewModule(fset, []*Package{pkg}), pkg
}

func funcObj(t *testing.T, pkg *Package, name string) *types.Func {
	t.Helper()
	fn, ok := pkg.Types.Scope().Lookup(name).(*types.Func)
	if !ok {
		t.Fatalf("function %s not found in fixture", name)
	}
	return fn
}

func methodObj(t *testing.T, pkg *Package, typeName, method string) *types.Func {
	t.Helper()
	obj := pkg.Types.Scope().Lookup(typeName)
	if obj == nil {
		t.Fatalf("type %s not found in fixture", typeName)
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		t.Fatalf("%s is not a named type", typeName)
	}
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Name() == method {
			return m
		}
	}
	t.Fatalf("method %s.%s not found in fixture", typeName, method)
	return nil
}

// edgesTo returns the edges from fn to callee.
func edgesTo(g *CallGraph, fn, callee *types.Func) []CallEdge {
	node := g.Node(fn)
	if node == nil {
		return nil
	}
	var out []CallEdge
	for _, e := range node.Out {
		if e.Callee == callee {
			out = append(out, e)
		}
	}
	return out
}

// An interface call must fan out to every implementing method in the
// module (conservative over-approximation) and to nothing else.
func TestCallGraphInterfaceDispatch(t *testing.T) {
	m, pkg := graphFixture(t)
	g := m.Graph()
	caller := funcObj(t, pkg, "CallIface")
	implDo := methodObj(t, pkg, "Impl", "Do")
	otherDo := methodObj(t, pkg, "Other", "Do")
	act := methodObj(t, pkg, "Unrelated", "Act")

	for _, target := range []*types.Func{implDo, otherDo} {
		es := edgesTo(g, caller, target)
		if len(es) != 1 {
			t.Fatalf("CallIface -> %s: %d edges, want 1", target.FullName(), len(es))
		}
		if !es[0].Dynamic {
			t.Errorf("CallIface -> %s edge not marked Dynamic", target.FullName())
		}
	}
	if es := edgesTo(g, caller, act); len(es) != 0 {
		t.Errorf("CallIface resolved to same-signature method of the wrong name: %s", act.FullName())
	}
}

// A deferred call is a direct (exact) edge from the enclosing function.
func TestCallGraphDeferredCall(t *testing.T) {
	m, pkg := graphFixture(t)
	g := m.Graph()
	es := edgesTo(g, funcObj(t, pkg, "CallDeferred"), funcObj(t, pkg, "Target"))
	if len(es) != 1 {
		t.Fatalf("CallDeferred -> Target: %d edges, want 1", len(es))
	}
	if es[0].Dynamic {
		t.Error("deferred direct call marked Dynamic")
	}
}

// A call through a func-typed variable reaches every address-taken module
// function with an identical signature.
func TestCallGraphFuncValueDispatch(t *testing.T) {
	m, pkg := graphFixture(t)
	g := m.Graph()
	es := edgesTo(g, funcObj(t, pkg, "CallFuncValue"), funcObj(t, pkg, "Target"))
	if len(es) != 1 {
		t.Fatalf("CallFuncValue -> Target: %d edges, want 1", len(es))
	}
	if !es[0].Dynamic {
		t.Error("func-value dispatch edge not marked Dynamic")
	}
}

// A method value (g := i.Do; g()) unifies with its receiver-stripped
// signature, so the bound method is a possible callee.
func TestCallGraphMethodValueDispatch(t *testing.T) {
	m, pkg := graphFixture(t)
	g := m.Graph()
	es := edgesTo(g, funcObj(t, pkg, "CallMethodValue"), methodObj(t, pkg, "Impl", "Do"))
	if len(es) == 0 {
		t.Fatal("CallMethodValue has no edge to Impl.Do through the method value")
	}
	if !es[0].Dynamic {
		t.Error("method-value dispatch edge not marked Dynamic")
	}
}

// Calls inside a function literal are attributed to the enclosing
// function, so reachability sees through `go func() { ... }()`.
func TestCallGraphClosureAttributionAndReachable(t *testing.T) {
	m, pkg := graphFixture(t)
	g := m.Graph()
	caller := funcObj(t, pkg, "CallClosure")
	target := funcObj(t, pkg, "Target")
	if es := edgesTo(g, caller, target); len(es) != 1 {
		t.Fatalf("CallClosure -> Target (via closure): %d edges, want 1", len(es))
	}
	witness := g.Reachable([]*types.Func{caller})
	if witness[target] != caller {
		t.Errorf("Reachable witness for Target = %v, want CallClosure", witness[target])
	}
	if _, ok := witness[funcObj(t, pkg, "CallIface")]; ok {
		t.Error("Reachable leaked into a function no root calls")
	}
}
