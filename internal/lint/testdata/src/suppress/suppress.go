// Package suppress exercises the suppression machinery itself: same-line
// and declaration-span directives must silence findings, and a directive
// missing its mandatory reason must suppress nothing and be reported by
// ignorecheck.
package suppress

import "time"

func suppressedSameLine() <-chan time.Time {
	//lint:ignore timeafter fixture: proves line-level suppression works
	return time.Tick(time.Second)
}

//lint:ignore hygiene fixture: proves decl-span suppression covers the body
func suppressedDecl(x int) {
	println(x)
}

//lint:ignore timeafter
func missingReason() <-chan time.Time { // directive above lacks a reason
	return time.Tick(time.Second) // want "time.Tick leaks the underlying ticker"
}
