// Package ctxcheck seeds one violation per context-threading rule. It is a
// library package (not main, not a test file), so root contexts are banned.
package ctxcheck

import "context"

// Holder pins a context to an object lifetime.
type Holder struct {
	ctx context.Context // want "Holder stores a context.Context in a struct field; pass ctx through calls instead"
}

// Later takes its context in the wrong position.
func Later(name string, ctx context.Context) error { // want "Later takes context.Context as parameter 2; ctx goes first .after the receiver."
	return work(ctx, name)
}

// Mint discards the caller's cancellation with a ctx already in scope: the
// finding carries the mechanical rewrite to that parameter.
func Mint(ctx context.Context) error {
	return work(context.Background(), "x") // want "context.Background.. in library code discards the caller.s cancellation; use the .ctx. parameter already in scope"
}

// Orphan has no ctx parameter to thread, so the fix cannot apply.
func Orphan() error {
	return work(context.TODO(), "y") // want "context.TODO.. in library code discards the caller.s cancellation; accept a ctx parameter and thread it here"
}

// work follows the convention: ctx first, threaded down. No finding.
func work(ctx context.Context, name string) error {
	_ = name
	return ctx.Err()
}
