package hygiene

// bidi.go is generated with a live U+202E RIGHT-TO-LEFT OVERRIDE inside
// the string literal; editors render it invisibly, which is the point.
func trojan() string {
	return "acc‮ess" // want "bidi control character U.202E"
}
