// Package hygiene seeds debug residue, library panics and unattributed
// task markers. The bidi fixture lives in bidi.go (generated with a real
// control character embedded).
package hygiene

import "fmt"

func debug(x int) {
	fmt.Println("value", x) // want "fmt.Println writes to stdout from a library package"
	println(x)              // want "builtin println is debug residue"
}

func parse(s string) int {
	if s == "" {
		panic("empty input") // want "panic in library package .func parse."
	}
	return len(s)
}

// MustParse is exempt by the Must convention.
func MustParse(s string) int {
	if s == "" {
		panic("empty input")
	}
	return len(s)
}

// reportTo writes to an injected writer: ok.
func reportTo(w interface{ Write([]byte) (int, error) }, x int) {
	_, _ = fmt.Fprintln(w, x)
}

// TODO: drop this once the selection engine lands // want "TODO without an owner"
func todoCarrier() {}

// TODO(roadmap): attributed, ok.
func ownedTodo() {}
