// Package clean contains no violations; the CLI test asserts exit 0 here.
package clean

import (
	"fmt"
	"sync"
)

// Counter is a correctly locked counter.
type Counter struct {
	mu sync.Mutex
	n  int
}

// Inc adds one.
func (c *Counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// Value reads the count.
func (c *Counter) Value() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Describe renders the counter.
func (c *Counter) Describe() string {
	return fmt.Sprintf("count=%d", c.Value())
}
