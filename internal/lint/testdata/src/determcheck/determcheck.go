// Package determcheck seeds one violation per determcheck rule; roots are
// declared per function so the package also proves non-roots stay free.
package determcheck

import (
	"math/rand"
	"os"
	"sort"
	"time"
)

// Step is the fixture's declared root: everything it reaches must be
// deterministic.
//
//lint:deterministic step results must replay per seed
func Step(rng *rand.Rand) int {
	_ = time.Now()     // want "time.Now reads the wall clock in deterministic code .reachable from itself, a declared root.; thread a seeded source or the sim clock instead"
	n := rand.Intn(10) // want "math/rand.Intn uses the global math/rand source in deterministic code .reachable from itself, a declared root.; use the seeded .rand.Rand .rng. in scope"
	n += rng.Intn(3)   // a seeded *rand.Rand is the sanctioned source: no finding
	helper()
	return n
}

// helper is deterministic only because Step reaches it; the diagnostic
// names the root as witness.
func helper() {
	_ = os.Getenv("HOME") // want "os.Getenv reads the process environment in deterministic code .reachable from root fixtures/determcheck.Step."
}

// Render leaks map iteration order into its accumulated result.
//
//lint:deterministic rendering is part of the replayed trace
func Render(m map[string]int) string {
	var out string
	for k := range m { // want "map iteration order escapes into .out. in deterministic code .reachable from itself, a declared root.; range over sorted keys or sort the result"
		out += k
	}
	return out
}

// RenderSorted sorts the accumulator after the range: sanctioned.
//
//lint:deterministic sorted output is order-free
func RenderSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Sum is an order-insensitive fold: the heuristic must not flag it.
//
//lint:deterministic commutative folds are order-free
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Wall is not a root and is reached by no root: free to read the clock.
func Wall() time.Time { return time.Now() }
