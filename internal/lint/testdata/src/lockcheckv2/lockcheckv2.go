// Package lockcheckv2 seeds one violation per interprocedural lock rule:
// the ...Locked convention in both directions, the self-deadlock class,
// and an acquisition-order cycle between two mutexes.
package lockcheckv2

import "sync"

type Counter struct {
	mu sync.Mutex
	n  int
}

// addLocked follows the convention: it touches state and trusts the caller
// to hold c.mu.
func (c *Counter) addLocked() { c.n++ }

// badLocked locks the very mutex its name promises is already held.
func (c *Counter) badLocked() {
	c.mu.Lock() // want "badLocked acquires c.mu, the mutex its ...Locked name promises the caller already holds"
	c.n++
	c.mu.Unlock()
}

// Good holds the lock across the Locked call: no finding.
func (c *Counter) Good() {
	c.mu.Lock()
	c.addLocked()
	c.mu.Unlock()
}

// Bad calls a Locked method with nothing held.
func (c *Counter) Bad() {
	c.addLocked() // want "call to Counter.addLocked without c.mu held . ...Locked methods require the caller to hold the receiver.s mutex"
}

// forwardLocked hands off to a sibling Locked method on its own receiver:
// the convention's legal hand-off, no finding.
func (c *Counter) forwardLocked() { c.addLocked() }

// Reenter re-acquires a mutex provably held on every path.
func (c *Counter) Reenter() {
	c.mu.Lock()
	c.mu.Lock() // want "c.mu.Lock.. while c.mu is already held .Lock at this point on every path. . self-deadlock"
	c.mu.Unlock()
	c.mu.Unlock()
}

// Add locks internally, so calling it with c.mu held deadlocks.
func (c *Counter) Add() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *Counter) Nested() {
	c.mu.Lock()
	c.Add() // want "calling Counter.Add while c.mu is held . the callee acquires that mutex itself .self-deadlock."
	c.mu.Unlock()
}

// A and B are acquired in both orders below: every edge inside the
// resulting cycle is reported.
type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

func lockAB(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want "lock order cycle: fixtures/lockcheckv2.B.mu acquired while fixtures/lockcheckv2.A.mu is held, but the reverse order also occurs"
	b.mu.Unlock()
	a.mu.Unlock()
}

func lockBA(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock() // want "lock order cycle: fixtures/lockcheckv2.A.mu acquired while fixtures/lockcheckv2.B.mu is held, but the reverse order also occurs"
	a.mu.Unlock()
	b.mu.Unlock()
}
