// Package graph exercises the call-graph substrate's resolution rules —
// interface dispatch conservatism, func and method values, deferred calls,
// closures. The callgraph unit tests assert over its edges directly; there
// are no want comments here.
package graph

type Doer interface{ Do() }

type Impl struct{}

func (Impl) Do() {}

type Other struct{}

func (o *Other) Do() {}

// Unrelated has a method of a different name: never a dispatch target.
type Unrelated struct{}

func (Unrelated) Act() {}

func CallIface(d Doer) { d.Do() }

func Target() {}

func CallFuncValue() {
	f := Target
	f()
}

func CallDeferred() {
	defer Target()
}

func CallMethodValue(i Impl) {
	g := i.Do
	g()
}

func CallClosure() {
	go func() { Target() }()
}
