// Package goroutine seeds closure-capture hazards.
package goroutine

import "sync"

func loopCapture(items []int) {
	var wg sync.WaitGroup
	for _, v := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = v // want "goroutine captures loop variable .v."
		}()
	}
	wg.Wait()
}

func indexCapture(items []int) {
	done := make(chan struct{}, len(items))
	for i := 0; i < len(items); i++ {
		go func() {
			_ = items[i] // want "goroutine captures loop variable .i."
			done <- struct{}{}
		}()
	}
	for range items {
		<-done
	}
}

func deferCapture(items []int) {
	for _, v := range items {
		defer func() {
			_ = v // want "deferred closure captures loop variable .v."
		}()
	}
}

func lateWrite() int {
	x := 1
	done := make(chan struct{})
	go func() {
		_ = x // want "captures .x. which is written at .* after the goroutine starts"
		close(done)
	}()
	x = 2
	<-done
	return x
}

func passedAsArg(items []int) {
	var wg sync.WaitGroup
	for _, v := range items {
		wg.Add(1)
		go func(v int) { // shadowing parameter: ok
			defer wg.Done()
			_ = v
		}(v)
	}
	wg.Wait()
}
