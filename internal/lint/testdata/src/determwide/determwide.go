// Package determwide carries a package-wide deterministic directive (it
// sits in the package doc, not on a function), so every function here is a
// root.
//
//lint:deterministic the whole package replays per seed
package determwide

import "time"

var epoch time.Time

// Tick violates the package-wide contract.
func Tick() time.Duration {
	return time.Since(epoch) // want "time.Since reads the wall clock in deterministic code .reachable from itself, a declared root.; thread a seeded source or the sim clock instead"
}

// Add is pure: no finding even though it is a root.
func Add(a, b int) int { return a + b }
