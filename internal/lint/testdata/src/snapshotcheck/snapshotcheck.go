// Package snapshotcheck seeds copy-on-write violations around an
// atomic.Pointer-published snapshot type: published values are frozen,
// fresh pre-publication values are writable.
package snapshotcheck

import "sync/atomic"

type Snap struct {
	N     int
	Items []int
}

var cur atomic.Pointer[Snap]

// Mutate writes the published value in place: every reader holding the
// pointer races with this.
func Mutate() {
	s := cur.Load()
	s.N++ // want "write to a field of Snap, which is published via atomic.Pointer and frozen after Store; build a fresh copy .COW. and Store that instead"
}

// MutateArg writes through a parameter, which may alias the stored value.
func MutateArg(s *Snap) {
	s.Items[0] = 1 // want "write to a field of Snap, which is published via atomic.Pointer and frozen after Store"
}

// Publish builds a fresh value and mutates it before publication: the
// sanctioned COW shape, no finding.
func Publish(n int) {
	next := &Snap{N: n}
	next.Items = append(next.Items, n)
	cur.Store(next)
}

// Clone copies the current snapshot by dereference — the copy is new
// memory — mutates the copy, and republishes it. No finding.
func Clone(n int) {
	old := cur.Load()
	clone := *old
	clone.N = n
	cur.Store(&clone)
}
