// Package lockcheck seeds one violation per lockcheck rule; the golden
// test diffs the analyzer's diagnostics against the want comments.
package lockcheck

import "sync"

// Store follows the mutex-above-guarded-fields layout: name is immutable
// (above mu), items and n are guarded (below mu).
type Store struct {
	name string

	mu    sync.Mutex
	items map[string]int
	n     int
}

// Name reads only the unguarded field: no finding.
func (s *Store) Name() string { return s.name }

// Add locks correctly: no finding.
func (s *Store) Add(k string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.items[k]++
	s.n++
}

// Peek touches a guarded field without ever locking.
func (s *Store) Peek(k string) int {
	return s.items[k] // want "accesses s.items .guarded by s.mu. without locking"
}

// sizeLocked is exempt by the Locked-suffix calling convention.
func (s *Store) sizeLocked() int { return s.n }

// Bad releases on only one of two return paths.
func (s *Store) Bad(k string) (int, bool) {
	s.mu.Lock()
	v, ok := s.items[k]
	if !ok {
		return 0, false // want "return while s.mu may still be locked"
	}
	s.mu.Unlock()
	return v, true
}

// Leak never unlocks at all.
func (s *Store) Leak() {
	s.mu.Lock() // want "locked but never unlocked"
	s.n++
}
