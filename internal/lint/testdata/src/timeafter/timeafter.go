// Package timeafter seeds the timer-leak patterns long measurement
// campaigns die from.
package timeafter

import "time"

func tick() <-chan time.Time {
	return time.Tick(time.Second) // want "time.Tick leaks the underlying ticker"
}

func pollLoop(stop chan struct{}) {
	for {
		select {
		case <-time.After(time.Minute): // want "time.After in a loop"
		case <-stop:
			return
		}
	}
}

func rangeLoop(work []int, out chan<- int) {
	for _, w := range work {
		select {
		case out <- w:
		case <-time.After(time.Second): // want "time.After in a loop"
			return
		}
	}
}

func singleShot() {
	<-time.After(time.Millisecond) // outside a loop: ok
}

func properTicker(stop chan struct{}) {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-t.C:
		case <-stop:
			return
		}
	}
}
