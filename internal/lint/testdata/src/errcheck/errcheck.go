// Package errcheck seeds dropped-error violations and every exemption the
// analyzer grants.
package errcheck

import (
	"bytes"
	"fmt"
	"os"
	"strings"
)

func drop() error { return nil }

func pair() (int, error) { return 0, nil }

func f(w *os.File) {
	drop()   // want "error returned by fixtures/errcheck.drop is discarded"
	pair()   // want "error returned by fixtures/errcheck.pair is discarded"
	w.Sync() // want "error returned by ..os.File..Sync is discarded"

	_ = drop()      // explicit discard: ok
	_, _ = pair()   // explicit discard: ok
	defer w.Close() // defer: ok
	go fullSend(w)  // go statement: ok
	if err := drop(); err != nil {
		_ = err
	}

	// Exempt list: stdout printing and never-failing writers.
	fmt.Println("hello")
	var sb strings.Builder
	sb.WriteString("x")
	var buf bytes.Buffer
	buf.WriteByte('y')
	fmt.Fprintf(&sb, "%d", 1)
}

func fullSend(w *os.File) { _ = w.Sync() }
