package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Package is one loaded, parsed and (best-effort) type-checked package.
type Package struct {
	// Path is the import path ("github.com/upin/scionpath/internal/docdb"),
	// or the directory base name for packages loaded outside a module.
	Path string
	// Name is the package clause name.
	Name string
	// Dir is the absolute directory.
	Dir string
	// Files are the parsed source files (comments retained).
	Files []*ast.File
	// Filenames parallels Files.
	Filenames []string
	// Types is the type-checked package; nil when type-checking failed hard.
	Types *types.Package
	// Info holds resolved uses/defs/types; nil when type-checking failed.
	Info *types.Info
	// TypeErrors collects soft type-check errors (the package is still
	// analyzed; NeedsTypes analyzers run on whatever resolved).
	TypeErrors []error

	imports []string
}

// LoadConfig controls module loading.
type LoadConfig struct {
	// Dir is where pattern resolution starts; the module root is found by
	// walking up to the nearest go.mod. Defaults to ".".
	Dir string
	// IncludeTests adds in-package _test.go files. External test packages
	// (package foo_test) are not loaded.
	IncludeTests bool
	// Parallel caps the loader's worker count for parsing and
	// type-checking. 0 means GOMAXPROCS; 1 forces the sequential path
	// (used by verify.sh to demonstrate the speedup).
	Parallel int
}

func (cfg LoadConfig) workers() int {
	n := cfg.Parallel
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return n
}

// Load parses and type-checks the packages matching patterns. Patterns
// follow the go tool's shape: "./..." for everything, "./internal/..." for
// a subtree, "./internal/docdb" for one package. All module packages are
// loaded (dependencies must type-check in order); patterns select which are
// returned for analysis.
func Load(cfg LoadConfig, patterns ...string) ([]*Package, *token.FileSet, error) {
	dir := cfg.Dir
	if dir == "" {
		dir = "."
	}
	absDir, err := filepath.Abs(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("lint: resolve %s: %w", dir, err)
	}
	root, modPath, err := findModule(absDir)
	if err != nil {
		return nil, nil, err
	}

	fset := token.NewFileSet()
	pkgs, err := parseTree(fset, root, modPath, cfg.IncludeTests, cfg.workers())
	if err != nil {
		return nil, nil, err
	}
	if err := typeCheck(fset, modPath, pkgs, cfg.workers()); err != nil {
		return nil, nil, err
	}

	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	selected := selectPackages(pkgs, root, absDir, patterns)
	sort.Slice(selected, func(i, j int) bool { return selected[i].Path < selected[j].Path })
	return selected, fset, nil
}

// findModule walks up from dir to the nearest go.mod and returns the module
// root and module path. A directory tree without go.mod is loaded as a
// single-package "ad hoc" module rooted at dir (used by the fixture tests).
func findModule(dir string) (root, modPath string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			// No module: treat the starting directory itself as the root.
			return dir, filepath.Base(dir), nil
		}
		d = parent
	}
}

// parseTree walks the module and parses every package directory, skipping
// testdata, vendor, hidden and underscore-prefixed directories. The walk
// itself only collects directories; parsing fans out over workers —
// token.FileSet is documented safe for concurrent use, so the files all
// land in the shared fset.
func parseTree(fset *token.FileSet, root, modPath string, includeTests bool, workers int) (map[string]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("lint: walk %s: %w", root, err)
	}

	parsed := make([]*Package, len(dirs))
	errs := make([]error, len(dirs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, dir := range dirs {
		wg.Add(1)
		go func(i int, dir string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			parsed[i], errs[i] = parseDir(fset, dir, includeTests)
		}(i, dir)
	}
	wg.Wait()

	pkgs := make(map[string]*Package)
	for i, pkg := range parsed {
		if errs[i] != nil {
			return nil, errs[i]
		}
		if pkg == nil {
			continue
		}
		rel, err := filepath.Rel(root, dirs[i])
		if err != nil {
			return nil, err
		}
		if rel == "." {
			pkg.Path = modPath
		} else {
			pkg.Path = modPath + "/" + filepath.ToSlash(rel)
		}
		pkgs[pkg.Path] = pkg
	}
	return pkgs, nil
}

// parseDir parses one directory's .go files into a Package, or nil when the
// directory holds no Go sources.
func parseDir(fset *token.FileSet, dir string, includeTests bool) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: read %s: %w", dir, err)
	}
	pkg := &Package{Dir: dir}
	importSet := make(map[string]bool)
	for _, e := range entries {
		fn := e.Name()
		if e.IsDir() || !strings.HasSuffix(fn, ".go") || strings.HasPrefix(fn, ".") || strings.HasPrefix(fn, "_") {
			continue
		}
		isTest := strings.HasSuffix(fn, "_test.go")
		if isTest && !includeTests {
			continue
		}
		full := filepath.Join(dir, fn)
		f, err := parser.ParseFile(fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", full, err)
		}
		fileName := f.Name.Name
		if pkg.Name == "" && !strings.HasSuffix(fileName, "_test") {
			pkg.Name = fileName
		}
		// Skip external test packages (pkg_test): they would need the
		// compiled test variant of the package under test.
		if strings.HasSuffix(fileName, "_test") {
			continue
		}
		pkg.Files = append(pkg.Files, f)
		pkg.Filenames = append(pkg.Filenames, full)
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err == nil {
				importSet[p] = true
			}
		}
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	if pkg.Name == "" {
		pkg.Name = pkg.Files[0].Name.Name
	}
	for p := range importSet {
		pkg.imports = append(pkg.imports, p)
	}
	sort.Strings(pkg.imports)
	return pkg, nil
}

// moduleImporter resolves module-internal imports to already-checked
// packages and everything else (the standard library) through the source
// importer, which parses GOROOT sources — no pre-compiled export data or
// external tooling needed. The mutex makes it safe for concurrent
// type-checkers: the source importer is NOT concurrency-safe, so stdlib
// loads serialize through mu (its internal cache keeps repeat imports
// cheap), and mu also guards the checked map.
type moduleImporter struct {
	modPath string
	mu      sync.Mutex
	checked map[string]*types.Package
	std     types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if path == m.modPath || strings.HasPrefix(path, m.modPath+"/") {
		if p, ok := m.checked[path]; ok {
			return p, nil
		}
		return nil, fmt.Errorf("lint: internal package %s not checked (import cycle or failed dependency?)", path)
	}
	return m.std.Import(path)
}

func (m *moduleImporter) setChecked(path string, p *types.Package) {
	m.mu.Lock()
	m.checked[path] = p
	m.mu.Unlock()
}

// checkOne type-checks a single package whose module-internal imports have
// all been checked already. Soft errors accumulate on the package; a hard
// failure (no usable types.Package at all) is returned.
func checkOne(fset *token.FileSet, imp *moduleImporter, pkg *Package) error {
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	tpkg, err := conf.Check(pkg.Path, fset, pkg.Files, info)
	if tpkg == nil {
		return fmt.Errorf("lint: type-check %s: %w", pkg.Path, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	imp.setChecked(pkg.Path, tpkg)
	return nil
}

// typeCheck checks every package respecting dependency order so that
// internal imports resolve to fully checked packages. With workers > 1,
// packages whose internal imports are all satisfied check concurrently —
// the module's import DAG is wide enough (independent leaf packages) that
// this wins real wall-clock over the sequential walk. Soft errors are
// collected per package; a package that fails outright keeps Info == nil
// and type-needing analyzers skip it.
func typeCheck(fset *token.FileSet, modPath string, pkgs map[string]*Package, workers int) error {
	order, err := topoSort(pkgs) // also rejects import cycles up front
	if err != nil {
		return err
	}
	imp := &moduleImporter{
		modPath: modPath,
		checked: make(map[string]*types.Package, len(pkgs)),
		std:     importer.ForCompiler(fset, "source", nil),
	}
	if workers <= 1 || len(pkgs) < 2 {
		for _, pkg := range order {
			if err := checkOne(fset, imp, pkg); err != nil {
				return err
			}
		}
		return nil
	}

	// Ready-queue scheduler: a package becomes ready when its last
	// module-internal import finishes. A failed dependency still releases
	// its dependents (their own checks fail loudly via the importer) so the
	// queue always drains; the first hard error is what callers see.
	waiting := make(map[string]int, len(pkgs))
	dependents := make(map[string][]string, len(pkgs))
	for path, pkg := range pkgs {
		for _, ipath := range pkg.imports {
			if _, ok := pkgs[ipath]; ok {
				waiting[path]++
				dependents[ipath] = append(dependents[ipath], path)
			}
		}
	}
	ready := make(chan *Package, len(pkgs))
	for _, pkg := range order {
		if waiting[pkg.Path] == 0 {
			ready <- pkg
		}
	}
	var (
		mu       sync.Mutex
		firstErr error
		finished int
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pkg := range ready {
				err := checkOne(fset, imp, pkg)
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				for _, dep := range dependents[pkg.Path] {
					waiting[dep]--
					if waiting[dep] == 0 {
						ready <- pkgs[dep]
					}
				}
				finished++
				if finished == len(pkgs) {
					close(ready)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// topoSort orders packages so every module-internal import precedes its
// importer.
func topoSort(pkgs map[string]*Package) ([]*Package, error) {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	state := make(map[string]int, len(pkgs))
	var order []*Package
	var visit func(path string) error
	visit = func(path string) error {
		pkg, ok := pkgs[path]
		if !ok {
			return nil // stdlib or unknown: the importer handles it
		}
		switch state[path] {
		case grey:
			return fmt.Errorf("lint: import cycle through %s", path)
		case black:
			return nil
		}
		state[path] = grey
		for _, imp := range pkg.imports {
			if err := visit(imp); err != nil {
				return err
			}
		}
		state[path] = black
		order = append(order, pkg)
		return nil
	}
	paths := make([]string, 0, len(pkgs))
	for p := range pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// selectPackages filters loaded packages by the go-tool-style patterns,
// resolved relative to invokeDir.
func selectPackages(pkgs map[string]*Package, root, invokeDir string, patterns []string) []*Package {
	var out []*Package
	for _, pkg := range pkgs {
		for _, pat := range patterns {
			if matchPattern(pkg.Dir, root, invokeDir, pat) {
				out = append(out, pkg)
				break
			}
		}
	}
	return out
}

// matchPattern reports whether the package directory matches one pattern.
// Supported shapes: "./...", "dir/...", "./dir", "dir", ".".
func matchPattern(pkgDir, root, invokeDir, pat string) bool {
	base := invokeDir
	pat = filepath.ToSlash(pat)
	rec := false
	if pat == "..." || strings.HasSuffix(pat, "/...") {
		rec = true
		pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
	}
	if pat == "" || pat == "." {
		pat = "."
	}
	target := filepath.Clean(filepath.Join(base, filepath.FromSlash(pat)))
	if rec {
		rel, err := filepath.Rel(target, pkgDir)
		return err == nil && rel != ".." && !strings.HasPrefix(rel, ".."+string(filepath.Separator))
	}
	return filepath.Clean(pkgDir) == target
}
