package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, parsed and (best-effort) type-checked package.
type Package struct {
	// Path is the import path ("github.com/upin/scionpath/internal/docdb"),
	// or the directory base name for packages loaded outside a module.
	Path string
	// Name is the package clause name.
	Name string
	// Dir is the absolute directory.
	Dir string
	// Files are the parsed source files (comments retained).
	Files []*ast.File
	// Filenames parallels Files.
	Filenames []string
	// Types is the type-checked package; nil when type-checking failed hard.
	Types *types.Package
	// Info holds resolved uses/defs/types; nil when type-checking failed.
	Info *types.Info
	// TypeErrors collects soft type-check errors (the package is still
	// analyzed; NeedsTypes analyzers run on whatever resolved).
	TypeErrors []error

	imports []string
}

// LoadConfig controls module loading.
type LoadConfig struct {
	// Dir is where pattern resolution starts; the module root is found by
	// walking up to the nearest go.mod. Defaults to ".".
	Dir string
	// IncludeTests adds in-package _test.go files. External test packages
	// (package foo_test) are not loaded.
	IncludeTests bool
}

// Load parses and type-checks the packages matching patterns. Patterns
// follow the go tool's shape: "./..." for everything, "./internal/..." for
// a subtree, "./internal/docdb" for one package. All module packages are
// loaded (dependencies must type-check in order); patterns select which are
// returned for analysis.
func Load(cfg LoadConfig, patterns ...string) ([]*Package, *token.FileSet, error) {
	dir := cfg.Dir
	if dir == "" {
		dir = "."
	}
	absDir, err := filepath.Abs(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("lint: resolve %s: %w", dir, err)
	}
	root, modPath, err := findModule(absDir)
	if err != nil {
		return nil, nil, err
	}

	fset := token.NewFileSet()
	pkgs, err := parseTree(fset, root, modPath, cfg.IncludeTests)
	if err != nil {
		return nil, nil, err
	}
	if err := typeCheck(fset, modPath, pkgs); err != nil {
		return nil, nil, err
	}

	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	selected := selectPackages(pkgs, root, absDir, patterns)
	sort.Slice(selected, func(i, j int) bool { return selected[i].Path < selected[j].Path })
	return selected, fset, nil
}

// findModule walks up from dir to the nearest go.mod and returns the module
// root and module path. A directory tree without go.mod is loaded as a
// single-package "ad hoc" module rooted at dir (used by the fixture tests).
func findModule(dir string) (root, modPath string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			// No module: treat the starting directory itself as the root.
			return dir, filepath.Base(dir), nil
		}
		d = parent
	}
}

// parseTree walks the module and parses every package directory, skipping
// testdata, vendor, hidden and underscore-prefixed directories.
func parseTree(fset *token.FileSet, root, modPath string, includeTests bool) (map[string]*Package, error) {
	pkgs := make(map[string]*Package)
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		pkg, err := parseDir(fset, path, includeTests)
		if err != nil {
			return err
		}
		if pkg == nil {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		if rel == "." {
			pkg.Path = modPath
		} else {
			pkg.Path = modPath + "/" + filepath.ToSlash(rel)
		}
		pkgs[pkg.Path] = pkg
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("lint: walk %s: %w", root, err)
	}
	return pkgs, nil
}

// parseDir parses one directory's .go files into a Package, or nil when the
// directory holds no Go sources.
func parseDir(fset *token.FileSet, dir string, includeTests bool) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: read %s: %w", dir, err)
	}
	pkg := &Package{Dir: dir}
	importSet := make(map[string]bool)
	for _, e := range entries {
		fn := e.Name()
		if e.IsDir() || !strings.HasSuffix(fn, ".go") || strings.HasPrefix(fn, ".") || strings.HasPrefix(fn, "_") {
			continue
		}
		isTest := strings.HasSuffix(fn, "_test.go")
		if isTest && !includeTests {
			continue
		}
		full := filepath.Join(dir, fn)
		f, err := parser.ParseFile(fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", full, err)
		}
		fileName := f.Name.Name
		if pkg.Name == "" && !strings.HasSuffix(fileName, "_test") {
			pkg.Name = fileName
		}
		// Skip external test packages (pkg_test): they would need the
		// compiled test variant of the package under test.
		if strings.HasSuffix(fileName, "_test") {
			continue
		}
		pkg.Files = append(pkg.Files, f)
		pkg.Filenames = append(pkg.Filenames, full)
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err == nil {
				importSet[p] = true
			}
		}
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	if pkg.Name == "" {
		pkg.Name = pkg.Files[0].Name.Name
	}
	for p := range importSet {
		pkg.imports = append(pkg.imports, p)
	}
	sort.Strings(pkg.imports)
	return pkg, nil
}

// moduleImporter resolves module-internal imports to already-checked
// packages and everything else (the standard library) through the source
// importer, which parses GOROOT sources — no pre-compiled export data or
// external tooling needed.
type moduleImporter struct {
	modPath string
	checked map[string]*types.Package
	std     types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if path == m.modPath || strings.HasPrefix(path, m.modPath+"/") {
		if p, ok := m.checked[path]; ok {
			return p, nil
		}
		return nil, fmt.Errorf("lint: internal package %s not yet checked (import cycle?)", path)
	}
	return m.std.Import(path)
}

// typeCheck checks every package in dependency order so that internal
// imports resolve to fully checked packages. Soft errors are collected per
// package; a package that fails outright keeps Info == nil and type-needing
// analyzers skip it.
func typeCheck(fset *token.FileSet, modPath string, pkgs map[string]*Package) error {
	order, err := topoSort(pkgs)
	if err != nil {
		return err
	}
	imp := &moduleImporter{
		modPath: modPath,
		checked: make(map[string]*types.Package, len(pkgs)),
		std:     importer.ForCompiler(fset, "source", nil),
	}
	for _, pkg := range order {
		pkg := pkg
		conf := types.Config{
			Importer: imp,
			Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		tpkg, err := conf.Check(pkg.Path, fset, pkg.Files, info)
		if tpkg == nil {
			return fmt.Errorf("lint: type-check %s: %w", pkg.Path, err)
		}
		pkg.Types = tpkg
		pkg.Info = info
		imp.checked[pkg.Path] = tpkg
	}
	return nil
}

// topoSort orders packages so every module-internal import precedes its
// importer.
func topoSort(pkgs map[string]*Package) ([]*Package, error) {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	state := make(map[string]int, len(pkgs))
	var order []*Package
	var visit func(path string) error
	visit = func(path string) error {
		pkg, ok := pkgs[path]
		if !ok {
			return nil // stdlib or unknown: the importer handles it
		}
		switch state[path] {
		case grey:
			return fmt.Errorf("lint: import cycle through %s", path)
		case black:
			return nil
		}
		state[path] = grey
		for _, imp := range pkg.imports {
			if err := visit(imp); err != nil {
				return err
			}
		}
		state[path] = black
		order = append(order, pkg)
		return nil
	}
	paths := make([]string, 0, len(pkgs))
	for p := range pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// selectPackages filters loaded packages by the go-tool-style patterns,
// resolved relative to invokeDir.
func selectPackages(pkgs map[string]*Package, root, invokeDir string, patterns []string) []*Package {
	var out []*Package
	for _, pkg := range pkgs {
		for _, pat := range patterns {
			if matchPattern(pkg.Dir, root, invokeDir, pat) {
				out = append(out, pkg)
				break
			}
		}
	}
	return out
}

// matchPattern reports whether the package directory matches one pattern.
// Supported shapes: "./...", "dir/...", "./dir", "dir", ".".
func matchPattern(pkgDir, root, invokeDir, pat string) bool {
	base := invokeDir
	pat = filepath.ToSlash(pat)
	rec := false
	if pat == "..." || strings.HasSuffix(pat, "/...") {
		rec = true
		pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
	}
	if pat == "" || pat == "." {
		pat = "."
	}
	target := filepath.Clean(filepath.Join(base, filepath.FromSlash(pat)))
	if rec {
		rel, err := filepath.Rel(target, pkgDir)
		return err == nil && rel != ".." && !strings.HasPrefix(rel, ".."+string(filepath.Separator))
	}
	return filepath.Clean(pkgDir) == target
}
