package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SnapshotCheck enforces the copy-on-write discipline the selection engine's
// lock-free serving depends on: a type published through atomic.Pointer[T]
// is frozen — readers hold the stored pointer without a lock, so any field
// write that can reach a stored value is a data race, invisible to the race
// detector until two goroutines actually collide.
//
// The frozen set is computed module-wide: every T that is the type argument
// of an atomic.Pointer[T] on which Store/Swap/CompareAndSwap is called. A
// field write whose base expression has a frozen type is then only allowed
// when the base provably refers to a fresh, not-yet-published value: a
// composite literal (&T{...} / T{...}), new(T), a dereference copy
// (x := *p — the copy is new memory), or a local variable assigned only
// from such expressions. Everything else — a Load() result, a function
// return value, a parameter, a struct field — may alias the published
// value and is reported. COW helpers therefore mutate the fresh clone they
// build and return it; callers that own a private pre-publication value can
// say so with //lint:ignore snapshotcheck <why>.
var SnapshotCheck = &Analyzer{
	Name:       "snapshotcheck",
	Doc:        "field writes to types published via atomic.Pointer[T] that may alias the stored (frozen) value",
	Severity:   SeverityError,
	NeedsTypes: true,
	Run:        runSnapshotCheck,
}

// FrozenTypes returns the named types published through atomic.Pointer[T]
// anywhere in the module, mapped to one publication site. Built once per
// run.
func (m *Module) FrozenTypes() map[*types.Named]token.Pos {
	m.frozenOnce.Do(func() {
		m.frozen = make(map[*types.Named]token.Pos)
		for _, pkg := range m.Pkgs {
			if pkg.Info == nil {
				continue
			}
			for _, f := range pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
					if !ok {
						return true
					}
					switch sel.Sel.Name {
					case "Store", "Swap", "CompareAndSwap":
					default:
						return true
					}
					tv, ok := pkg.Info.Types[sel.X]
					if !ok {
						return true
					}
					t := tv.Type
					if ptr, isPtr := t.(*types.Pointer); isPtr {
						t = ptr.Elem()
					}
					named, ok := t.(*types.Named)
					if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync/atomic" || named.Obj().Name() != "Pointer" {
						return true
					}
					targs := named.TypeArgs()
					if targs == nil || targs.Len() != 1 {
						return true
					}
					if elem, ok := targs.At(0).(*types.Named); ok {
						if _, seen := m.frozen[elem]; !seen {
							m.frozen[elem] = call.Pos()
						}
					}
					return true
				})
			}
		}
	})
	return m.frozen
}

// frozenNamedOf returns the frozen named type of t (directly or behind one
// pointer), or nil.
func frozenNamedOf(frozen map[*types.Named]token.Pos, t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if _, isFrozen := frozen[named]; isFrozen {
		return named
	}
	return nil
}

func runSnapshotCheck(pass *Pass) {
	frozen := pass.Mod.FrozenTypes()
	if len(frozen) == 0 {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFrozenWrites(pass, info, frozen, fd)
		}
	}
}

// checkFrozenWrites flags writes to frozen-typed values inside one function.
func checkFrozenWrites(pass *Pass, info *types.Info, frozen map[*types.Named]token.Pos, fd *ast.FuncDecl) {
	fresh := freshLocals(info, frozen, fd)
	flag := func(lhs ast.Expr) {
		named, base := frozenWriteBase(info, frozen, lhs)
		if named == nil {
			return
		}
		if baseIsFresh(info, fresh, base) {
			return
		}
		pass.Reportf(lhs.Pos(),
			"write to a field of %s, which is published via atomic.Pointer and frozen after Store; build a fresh copy (COW) and Store that instead",
			named.Obj().Name())
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				flag(lhs)
			}
		case *ast.IncDecStmt:
			flag(st.X)
		}
		return true
	})
}

// frozenWriteBase inspects an assignment LHS and, when it writes through a
// field of a frozen type, returns that type and the base expression the
// write goes through (x in x.f, x.f[i], x.f.g ...). Index and selector
// layers are unwound so writes reaching the frozen value through slices,
// arrays and nested structs are caught; map-element writes on a fresh map
// value are indistinguishable from slice writes here and stay conservative.
func frozenWriteBase(info *types.Info, frozen map[*types.Named]token.Pos, lhs ast.Expr) (*types.Named, ast.Expr) {
	e := ast.Unparen(lhs)
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			e = ast.Unparen(x.X)
		case *ast.SelectorExpr:
			// Only field selections count; a method expression can't be
			// assigned to anyway.
			if tv, ok := info.Types[x.X]; ok {
				if named := frozenNamedOf(frozen, tv.Type); named != nil {
					return named, x.X
				}
			}
			e = ast.Unparen(x.X)
		case *ast.StarExpr:
			e = ast.Unparen(x.X)
		default:
			return nil, nil
		}
	}
}

// freshLocals computes the function's local objects of frozen (or pointer to
// frozen) type that only ever hold fresh, unpublished values. Freshness
// sources: composite literals, new(T), dereference copies, and other fresh
// locals. Any assignment from a call result, parameter, field or other
// escape-prone expression disqualifies the object entirely (flow-insensitive
// must-analysis).
func freshLocals(info *types.Info, frozen map[*types.Named]token.Pos, fd *ast.FuncDecl) map[types.Object]bool {
	// Collect every (object, rhs) assignment pair for frozen-typed locals;
	// nil rhs (bare var decl) is fresh — the zero value is new memory.
	type binding struct {
		obj types.Object
		rhs ast.Expr
	}
	var bindings []binding
	tainted := make(map[types.Object]bool)
	addBinding := func(id *ast.Ident, rhs ast.Expr) {
		obj := info.ObjectOf(id)
		if obj == nil || id.Name == "_" {
			return
		}
		if frozenNamedOf(frozen, obj.Type()) == nil {
			return
		}
		bindings = append(bindings, binding{obj: obj, rhs: rhs})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) == len(st.Rhs) {
				for i := range st.Lhs {
					if id, ok := st.Lhs[i].(*ast.Ident); ok {
						addBinding(id, st.Rhs[i])
					}
				}
			} else {
				// Multi-value unpacking (x, err := f()): call results, never
				// fresh.
				for _, lhs := range st.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if obj := info.ObjectOf(id); obj != nil {
							tainted[obj] = true
						}
					}
				}
			}
		case *ast.GenDecl:
			for _, spec := range st.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var rhs ast.Expr
					if i < len(vs.Values) {
						rhs = vs.Values[i]
					}
					addBinding(name, rhs)
				}
			}
		case *ast.RangeStmt:
			// Range variables alias elements of the ranged collection.
			for _, v := range []ast.Expr{st.Key, st.Value} {
				if id, ok := v.(*ast.Ident); ok && id.Name != "_" {
					if obj := info.ObjectOf(id); obj != nil {
						tainted[obj] = true
					}
				}
			}
		}
		return true
	})

	// Fixpoint: an object is fresh iff it is not tainted and every binding's
	// rhs is a fresh expression.
	fresh := make(map[types.Object]bool)
	seen := make(map[types.Object]bool)
	for _, b := range bindings {
		if !seen[b.obj] && !tainted[b.obj] {
			fresh[b.obj] = true
		}
		seen[b.obj] = true
	}
	for changed := true; changed; {
		changed = false
		for _, b := range bindings {
			if !fresh[b.obj] {
				continue
			}
			if !freshExpr(info, fresh, b.rhs) {
				delete(fresh, b.obj)
				changed = true
			}
		}
	}
	return fresh
}

// freshExpr reports whether e is guaranteed to produce new, unpublished
// memory (or copies of it). nil means a zero-valued var declaration.
func freshExpr(info *types.Info, fresh map[types.Object]bool, e ast.Expr) bool {
	if e == nil {
		return true
	}
	switch x := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			_, isLit := ast.Unparen(x.X).(*ast.CompositeLit)
			return isLit
		}
	case *ast.StarExpr:
		return true // a dereference copy is new memory
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "new" {
			if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); isBuiltin {
				return true
			}
		}
	case *ast.Ident:
		if x.Name == "nil" {
			return true
		}
		if obj := info.ObjectOf(x); obj != nil {
			return fresh[obj]
		}
	}
	return false
}

// baseIsFresh decides whether the base expression of a frozen-field write
// refers to fresh memory.
func baseIsFresh(info *types.Info, fresh map[types.Object]bool, base ast.Expr) bool {
	switch x := ast.Unparen(base).(type) {
	case *ast.Ident:
		if obj := info.ObjectOf(x); obj != nil {
			return fresh[obj]
		}
	case *ast.StarExpr:
		if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
			if obj := info.ObjectOf(id); obj != nil {
				return fresh[obj]
			}
		}
	case *ast.CompositeLit:
		return true
	}
	return false
}
