package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// Repro: lock acquired only inside a range body must NOT be "held" after the
// loop (the range may iterate zero times), and must not trigger a
// self-deadlock report on a post-loop Lock.
func TestRangeBodyFactLeak(t *testing.T) {
	src := `package p

import "sync"

type C struct{ mu sync.Mutex }

func (c *C) F(m map[int]int) {
	for k := range m {
		_ = k
		c.mu.Lock()
		c.mu.Unlock()
		c.mu.Lock()
	}
	c.mu.Lock() // not a self-deadlock: the loop may run zero times
	c.mu.Unlock()
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg, info := typeCheckTestFile(t, fset, f)
	_ = pkg

	var fd *ast.FuncDecl
	for _, d := range f.Decls {
		if x, ok := d.(*ast.FuncDecl); ok && x.Name.Name == "F" {
			fd = x
		}
	}
	spec := lockFacts(fset, info)
	cfg := NewCFG(fd.Body)
	entry := cfg.Forward(spec)

	// Find the post-loop c.mu.Lock() call: the last Lock in source order.
	var post *ast.CallExpr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			if s, ok := c.Fun.(*ast.SelectorExpr); ok && s.Sel.Name == "Lock" {
				post = c
			}
		}
		return true
	})
	if post == nil {
		t.Fatal("post-loop call not found")
	}
	held := cfg.FactsAt(spec, entry, post)
	t.Logf("held at post-loop Lock: %v", held)
	if _, ok := held["c.mu"]; ok {
		t.Fatalf("c.mu reported held after a possibly-zero-iteration range loop: %v", held)
	}
}
