package lint

import (
	"encoding/json"
	"go/ast"
	"strings"
	"testing"
)

func reportDiags() []Diagnostic {
	return []Diagnostic{
		{Analyzer: "lockcheck", Severity: SeverityError, File: "/repo/a.go", Line: 3, Column: 2, Message: "missing unlock"},
		{Analyzer: "hygiene", Severity: SeverityWarning, File: "/repo/sub/b.go", Line: 7, Column: 1, Message: "long line"},
		{Analyzer: "lockcheck", Severity: SeverityError, File: "/repo/c.go", Line: 9, Column: 4, Message: "lock copied"},
	}
}

func TestSummarize(t *testing.T) {
	p1 := &Package{Files: make([]*ast.File, 3)}
	p2 := &Package{}
	sum := Summarize([]*Package{p1, p2}, reportDiags(), 4)
	if sum.Findings != 3 || sum.Errors != 2 || sum.Warnings != 1 || sum.Suppressed != 4 || sum.Packages != 2 || sum.Files != 3 {
		t.Errorf("summary = %+v", sum)
	}
	line := sum.Line()
	if !strings.Contains(line, "3 findings") || !strings.Contains(line, "4 suppressed") {
		t.Errorf("summary line = %q", line)
	}
}

// WriteText relativizes paths to dir and ends with the summary line.
func TestWriteText(t *testing.T) {
	var sb strings.Builder
	sum := Summarize(nil, reportDiags(), 0)
	if err := WriteText(&sb, "/repo", reportDiags(), sum); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"a.go:3:2: [lockcheck] missing unlock\n",
		"sub/b.go:7:1: [hygiene] long line\n",
		sum.Line() + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
}

// WriteJSON carries the schema version and relativized paths, and must not
// mutate the caller's diagnostics while relativizing.
func TestWriteJSON(t *testing.T) {
	diags := reportDiags()
	var sb strings.Builder
	if err := WriteJSON(&sb, "/repo", diags, Summarize(nil, diags, 1)); err != nil {
		t.Fatal(err)
	}
	if diags[0].File != "/repo/a.go" {
		t.Errorf("WriteJSON mutated caller's diagnostics: %q", diags[0].File)
	}
	var rep struct {
		Schema      string       `json:"schema"`
		Diagnostics []Diagnostic `json:"diagnostics"`
		Summary     Summary      `json:"summary"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Schema != JSONSchemaVersion {
		t.Errorf("schema = %q, want %q", rep.Schema, JSONSchemaVersion)
	}
	if len(rep.Diagnostics) != 3 || rep.Diagnostics[1].File != "sub/b.go" {
		t.Errorf("diagnostics = %+v", rep.Diagnostics)
	}
	if rep.Summary.Suppressed != 1 {
		t.Errorf("summary = %+v", rep.Summary)
	}
}

func TestCountByAnalyzer(t *testing.T) {
	got := CountByAnalyzer(reportDiags())
	want := []string{"lockcheck: 2", "hygiene: 1"}
	if len(got) != len(want) {
		t.Fatalf("counts = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("counts[%d] = %q, want %q (desc count, then name)", i, got[i], want[i])
		}
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Analyzer: "errcheck", File: "x.go", Line: 4, Column: 7, Message: "dropped error"}
	if got := d.String(); got != "x.go:4:7: [errcheck] dropped error" {
		t.Errorf("String() = %q", got)
	}
}

func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(Default()) {
		t.Errorf("empty list = %d analyzers, want all %d", len(all), len(Default()))
	}
	picked, err := ByName(" lockcheck , errcheck ")
	if err != nil {
		t.Fatal(err)
	}
	if len(picked) != 2 || picked[0].Name != "lockcheck" || picked[1].Name != "errcheck" {
		t.Errorf("picked = %v", picked)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Error("unknown analyzer name did not error")
	}
}
