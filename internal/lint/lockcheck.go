package lint

import (
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// LockCheck enforces the two mutex conventions the docdb store and the
// simnet engine rely on:
//
//  1. A struct field declared after a sync.Mutex/sync.RWMutex sibling is
//     guarded by it (the standard "mu protects the fields below" layout,
//     e.g. docdb.DB and docdb.Collection). A method that reads or writes a
//     guarded field through its receiver without ever locking, unlocking or
//     deferring the mutex is reported. Methods whose name ends in "Locked"
//     are assumed to be called with the lock held and are exempt; helpers
//     with other calling conventions document themselves with
//     //lint:ignore lockcheck <why>.
//
//  2. A Lock/RLock call that is not immediately followed by the matching
//     defer Unlock must release the lock before every return statement
//     that follows it; a return with no earlier unlock in the function is
//     reported (lock held across return). The check is position-based, not
//     path-sensitive — a deliberate approximation that catches the leaks
//     long measurement campaigns die from without dragging in a CFG.
var LockCheck = &Analyzer{
	Name:     "lockcheck",
	Doc:      "mutex-guarded fields accessed without the lock, and locks held across returns without defer",
	Severity: SeverityError,
	Run:      runLockCheck,
}

// guardedStruct records a struct's mutex field and the sibling fields it
// guards.
type guardedStruct struct {
	mutexField string
	guarded    map[string]bool
}

func runLockCheck(pass *Pass) {
	structs := findGuardedStructs(pass)
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGuardedAccess(pass, fd, structs)
			checkLockAcrossReturn(pass, fd)
		}
	}
}

// findGuardedStructs scans type declarations for the mutex-above-fields
// layout. Fields declared before the mutex are intentionally unguarded
// (immutable configuration goes above the lock by convention).
func findGuardedStructs(pass *Pass) map[string]guardedStruct {
	out := make(map[string]guardedStruct)
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				gs := guardedStruct{guarded: make(map[string]bool)}
				for _, field := range st.Fields.List {
					if gs.mutexField == "" && isMutexType(field.Type) && len(field.Names) == 1 {
						gs.mutexField = field.Names[0].Name
						continue
					}
					if gs.mutexField != "" {
						for _, n := range field.Names {
							gs.guarded[n.Name] = true
						}
					}
				}
				if gs.mutexField != "" && len(gs.guarded) > 0 {
					out[ts.Name.Name] = gs
				}
			}
		}
	}
	return out
}

// isMutexType matches sync.Mutex, sync.RWMutex and pointers to them.
func isMutexType(expr ast.Expr) bool {
	if star, ok := expr.(*ast.StarExpr); ok {
		expr = star.X
	}
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	x, ok := sel.X.(*ast.Ident)
	if !ok || x.Name != "sync" {
		return false
	}
	return sel.Sel.Name == "Mutex" || sel.Sel.Name == "RWMutex"
}

// receiverInfo extracts the receiver ident name and base type name.
func receiverInfo(fd *ast.FuncDecl) (recvName, typeName string, ok bool) {
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return "", "", false
	}
	field := fd.Recv.List[0]
	if len(field.Names) != 1 {
		return "", "", false
	}
	t := field.Type
	if star, isStar := t.(*ast.StarExpr); isStar {
		t = star.X
	}
	if gen, isGen := t.(*ast.IndexExpr); isGen { // generic receiver T[P]
		t = gen.X
	}
	id, isIdent := t.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	return field.Names[0].Name, id.Name, true
}

// checkGuardedAccess reports methods that touch guarded fields without
// using the struct's mutex at all.
func checkGuardedAccess(pass *Pass, fd *ast.FuncDecl, structs map[string]guardedStruct) {
	recvName, typeName, ok := receiverInfo(fd)
	if !ok || recvName == "_" {
		return
	}
	gs, ok := structs[typeName]
	if !ok {
		return
	}
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		return
	}
	usesMutex := false
	var firstAccess *ast.SelectorExpr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, isSel := n.(*ast.SelectorExpr)
		if !isSel {
			return true
		}
		x, isIdent := sel.X.(*ast.Ident)
		if !isIdent || x.Name != recvName {
			return true
		}
		if sel.Sel.Name == gs.mutexField {
			usesMutex = true
		}
		if gs.guarded[sel.Sel.Name] && firstAccess == nil {
			firstAccess = sel
		}
		return true
	})
	if firstAccess != nil && !usesMutex {
		pass.Reportf(firstAccess.Pos(),
			"%s.%s accesses %s.%s (guarded by %s.%s) without locking; lock the mutex, rename the method to ...Locked, or document the calling convention with //lint:ignore",
			typeName, fd.Name.Name, recvName, firstAccess.Sel.Name, recvName, gs.mutexField)
	}
}

// lockCall matches x.Lock / x.RLock / x.Unlock / x.RUnlock statements and
// returns the printed receiver expression ("c.mu") plus whether it is a
// reader-side call.
func lockCall(pass *Pass, stmt ast.Stmt) (expr, method string, ok bool) {
	es, isExpr := stmt.(*ast.ExprStmt)
	if !isExpr {
		return "", "", false
	}
	return callTarget(pass, es.X)
}

func callTarget(pass *Pass, e ast.Expr) (expr, method string, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	return exprString(pass.Fset, sel.X), sel.Sel.Name, true
}

func exprString(fset *token.FileSet, e ast.Expr) string {
	var sb strings.Builder
	if err := printer.Fprint(&sb, fset, e); err != nil {
		return ""
	}
	return sb.String()
}

// checkLockAcrossReturn flags Lock/RLock calls whose lock can still be held
// at a later return: no defer-unlock for the same expression exists, and
// some return statement after the lock has no unlock before it.
func checkLockAcrossReturn(pass *Pass, fd *ast.FuncDecl) {
	// Gather per-mutex-expression event positions in one walk.
	type events struct {
		locks    []token.Pos
		unlocks  []token.Pos
		deferred bool
	}
	mutexes := make(map[string]*events)
	var returns []token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			return false // separate scope; deferred closures unlock elsewhere
		case *ast.ReturnStmt:
			returns = append(returns, s.Pos())
		case *ast.DeferStmt:
			if expr, method, ok := callTarget(pass, s.Call); ok && strings.HasSuffix(method, "Unlock") {
				ev := mutexes[expr]
				if ev == nil {
					ev = &events{}
					mutexes[expr] = ev
				}
				ev.deferred = true
			}
		case *ast.ExprStmt:
			if expr, method, ok := callTarget(pass, s.X); ok {
				ev := mutexes[expr]
				if ev == nil {
					ev = &events{}
					mutexes[expr] = ev
				}
				if strings.HasSuffix(method, "Unlock") {
					ev.unlocks = append(ev.unlocks, s.Pos())
				} else {
					ev.locks = append(ev.locks, s.Pos())
				}
			}
		}
		return true
	})
	for expr, ev := range mutexes {
		if ev.deferred || len(ev.locks) == 0 {
			continue
		}
		if len(ev.unlocks) == 0 {
			pass.Reportf(ev.locks[0], "%s is locked but never unlocked in %s; add defer %s.Unlock()", expr, fd.Name.Name, expr)
			continue
		}
		for _, ret := range returns {
			for _, lock := range ev.locks {
				if ret <= lock {
					continue
				}
				released := false
				for _, unlock := range ev.unlocks {
					if unlock > lock && unlock < ret {
						released = true
						break
					}
				}
				if !released {
					pass.Reportf(ret, "return while %s may still be locked (locked at %s without defer)",
						expr, pass.Fset.Position(lock))
					break // one report per return statement is enough
				}
			}
		}
	}
}
