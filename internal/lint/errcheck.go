package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrCheck reports call statements whose error result is silently dropped.
// The §4.2.2 batch-insertion path is exactly where a swallowed error turns
// into hours of lost measurements, so the default posture is strict:
//
//   - a call used as a bare statement whose (only or last) result is error
//     is a finding;
//   - explicitly discarding with `_ =` is visible in review and exempt;
//   - `defer` and `go` statements are exempt (idiomatic defer f.Close());
//   - a small exempt list covers stdlib writers that cannot usefully fail
//     (fmt.Print* to stdout, strings.Builder, bytes.Buffer).
var ErrCheck = &Analyzer{
	Name:       "errcheck",
	Doc:        "error return values discarded by bare call statements",
	Severity:   SeverityError,
	NeedsTypes: true,
	Run:        runErrCheck,
}

// errCheckExempt lists callees (types.Func.FullName form) whose errors are
// conventionally ignored.
var errCheckExempt = map[string]bool{
	"fmt.Print":    true,
	"fmt.Printf":   true,
	"fmt.Println":  true,
	"fmt.Fprint":   true,
	"fmt.Fprintf":  true,
	"fmt.Fprintln": true,

	// These Write/WriteString/WriteByte/WriteRune variants always return a
	// nil error by contract.
	"(*strings.Builder).Write":       true,
	"(*strings.Builder).WriteString": true,
	"(*strings.Builder).WriteByte":   true,
	"(*strings.Builder).WriteRune":   true,
	"(*bytes.Buffer).Write":          true,
	"(*bytes.Buffer).WriteString":    true,
	"(*bytes.Buffer).WriteByte":      true,
	"(*bytes.Buffer).WriteRune":      true,
}

func runErrCheck(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			tv, ok := info.Types[call]
			if !ok || tv.Type == nil {
				return true
			}
			if !resultEndsInError(tv.Type) {
				return true
			}
			name := calleeName(info, call)
			if errCheckExempt[name] {
				return true
			}
			if name == "" {
				name = "call"
			}
			pass.Reportf(es.Pos(), "error returned by %s is discarded; handle it or assign to _ explicitly", name)
			return true
		})
	}
}

// resultEndsInError reports whether a call's result type is error or a
// tuple ending in error.
func resultEndsInError(t types.Type) bool {
	if tuple, ok := t.(*types.Tuple); ok {
		if tuple.Len() == 0 {
			return false
		}
		t = tuple.At(tuple.Len() - 1).Type()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "error" && obj.Pkg() == nil
}

// calleeName resolves the called function to a stable display name:
// "fmt.Fprintf", "(*os.File).Close", "(journal).append".
func calleeName(info *types.Info, call *ast.CallExpr) string {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return ""
	}
	obj := info.Uses[id]
	fn, ok := obj.(*types.Func)
	if !ok {
		return ""
	}
	full := fn.FullName()
	// Trim the module prefix for readability in diagnostics.
	return strings.ReplaceAll(full, "github.com/upin/scionpath/", "")
}
