package lint

import (
	"go/ast"
	"strconv"
)

// TimeAfter targets the timer leaks that only show up in long-horizon
// measurement campaigns (the multi-day SCIONLab runs the related
// path-dynamics studies describe): time.Tick leaks its ticker forever, and
// time.After inside a loop allocates a timer per iteration that is not
// collected until it fires — in a tight receive loop with a long timeout
// that is an unbounded queue of live timers.
var TimeAfter = &Analyzer{
	Name:     "timeafter",
	Doc:      "time.Tick anywhere, and time.After inside loops (leaked timers in long campaigns)",
	Severity: SeverityError,
	Run:      runTimeAfter,
}

func runTimeAfter(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		timeName, imported := importName(f, "time")
		if !imported {
			continue
		}
		var walk func(n ast.Node, loopDepth int) bool
		walk = func(n ast.Node, loopDepth int) bool {
			switch s := n.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				var body *ast.BlockStmt
				if fs, ok := s.(*ast.ForStmt); ok {
					body = fs.Body
				} else {
					body = s.(*ast.RangeStmt).Body
				}
				inspectDepth(body, loopDepth+1, walk)
				return false
			case *ast.CallExpr:
				if name, ok := pkgCall(s, timeName); ok {
					switch name {
					case "Tick":
						pass.Reportf(s.Pos(), "time.Tick leaks the underlying ticker; use time.NewTicker and defer Stop")
					case "After":
						if loopDepth > 0 {
							pass.Reportf(s.Pos(), "time.After in a loop allocates a timer every iteration that lives until it fires; hoist a time.NewTimer and Reset it")
						}
					}
				}
			}
			return true
		}
		inspectDepth(f, 0, walk)
	}
}

// inspectDepth is ast.Inspect threading a loop-nesting depth through the
// walk.
func inspectDepth(root ast.Node, depth int, walk func(ast.Node, int) bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		return walk(n, depth)
	})
}

// pkgCall matches pkgName.Fn(...) and returns Fn.
func pkgCall(call *ast.CallExpr, pkgName string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	x, ok := sel.X.(*ast.Ident)
	if !ok || x.Name != pkgName {
		return "", false
	}
	return sel.Sel.Name, true
}

// importName returns the local name a file imports path under, and whether
// it imports it at all.
func importName(f *ast.File, path string) (string, bool) {
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != path {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				return "", false // unusable for selector matching
			}
			return imp.Name.Name, true
		}
		// Last path element is the default name; for "time" they coincide.
		return path[lastSlash(path)+1:], true
	}
	return "", false
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return -1
}
