package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DetermCheck enforces the reproducibility contract that the simulation,
// chaos-plan derivation and measurement-cell execution depend on: a function
// reachable (through the module call graph) from a deterministic root must
// not consult the wall clock, the process environment, or the globally
// seeded math/rand source, and must not let map iteration order escape into
// accumulated output. Seeded *rand.Rand values and the simulated clock are
// the sanctioned alternatives.
//
// Roots are declared in source with the //lint:deterministic directive:
// placed in a function's doc comment it marks that one function; placed
// anywhere else in a file (conventionally the package doc) it marks every
// function of the package. Diagnostics name the root whose closure reached
// the offending call, so a finding deep in a shared helper is traceable.
//
// The map-order check is a heuristic: ranging over a map while appending to
// a slice (or concatenating to a string) declared outside the loop is
// flagged unless the accumulator is passed to a sort/slices call later in
// the same function. Order-insensitive folds (sums, set inserts) are not
// flagged; callers that sort later than the heuristic can see document it
// with //lint:ignore determcheck <why>.
var DetermCheck = &Analyzer{
	Name:           "determcheck",
	Doc:            "wall-clock, global rand, env reads and map-order leaks reachable from //lint:deterministic roots",
	Severity:       SeverityError,
	NeedsTypes:     true,
	NeedsCallGraph: true,
	Run:            runDetermCheck,
}

// determForbidden maps the full name of a banned callee to the reason it
// breaks determinism. *rand.Rand methods are absent on purpose: a seeded
// source is the sanctioned replacement.
var determForbidden = map[string]string{
	"time.Now":       "reads the wall clock",
	"time.Since":     "reads the wall clock",
	"time.Until":     "reads the wall clock",
	"os.Getenv":      "reads the process environment",
	"os.LookupEnv":   "reads the process environment",
	"os.Environ":     "reads the process environment",
	"os.Hostname":    "reads host identity",
	"runtime.NumCPU": "depends on the host CPU count",
}

func init() {
	// Package-level math/rand functions share the process-global source;
	// their *rand.Rand method counterparts are fine.
	for _, name := range []string{
		"Int", "Intn", "Int31", "Int31n", "Int63", "Int63n", "Uint32",
		"Uint64", "Float32", "Float64", "ExpFloat64", "NormFloat64",
		"Perm", "Shuffle", "Seed", "Read",
	} {
		determForbidden["math/rand."+name] = "uses the global math/rand source"
	}
}

// DeterministicWitness returns, for every function reachable from a
// //lint:deterministic root, the root that reaches it. Built once per run.
func (m *Module) DeterministicWitness() map[*types.Func]*types.Func {
	m.detOnce.Do(func() {
		var roots []*types.Func
		for _, pkg := range m.Pkgs {
			if pkg.Info == nil {
				continue
			}
			roots = append(roots, deterministicRoots(m.Fset, pkg)...)
		}
		m.detWitness = m.Graph().Reachable(roots)
	})
	return m.detWitness
}

// deterministicRoots finds the functions a package's //lint:deterministic
// directives declare: the annotated function when the directive sits in a
// function's doc comment, every function in the package otherwise.
func deterministicRoots(fset *token.FileSet, pkg *Package) []*types.Func {
	var roots []*types.Func
	packageWide := false
	for _, f := range pkg.Files {
		// Map "line a comment group ends on" -> func decl starting on the
		// next line, the same attachment rule ignore directives use.
		funcAfterLine := make(map[int]*ast.FuncDecl)
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				funcAfterLine[fset.Position(fd.Pos()).Line-1] = fd
			}
		}
		for _, cg := range f.Comments {
			directive := false
			for _, c := range cg.List {
				if _, ok := parseDeterministic(c.Text); ok {
					directive = true
					break
				}
			}
			if !directive {
				continue
			}
			groupEnd := fset.Position(cg.End()).Line
			if fd, ok := funcAfterLine[groupEnd]; ok && fd.Body != nil {
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					roots = append(roots, fn)
					continue
				}
			}
			packageWide = true
		}
	}
	if packageWide {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					roots = append(roots, fn)
				}
			}
		}
	}
	return roots
}

func runDetermCheck(pass *Pass) {
	witness := pass.Mod.DeterministicWitness()
	if len(witness) == 0 {
		return
	}
	for _, node := range pass.Mod.Graph().Nodes() {
		if node.Pkg != pass.Pkg {
			continue
		}
		root, reachable := witness[node.Fn]
		if !reachable {
			continue
		}
		for _, e := range node.Out {
			why, banned := determForbidden[e.Callee.FullName()]
			if !banned {
				continue
			}
			if fix, ok := seededRandFix(pass, node.Decl, e); ok {
				pass.ReportfFix(fix.pos, fix.end, fix.text,
					"%s %s in deterministic code (reachable from %s); use the seeded *rand.Rand %q in scope",
					e.Callee.FullName(), why, witnessName(root, node.Fn), fix.text)
				continue
			}
			pass.Reportf(e.Site.Pos(),
				"%s %s in deterministic code (reachable from %s); thread a seeded source or the sim clock instead",
				e.Callee.FullName(), why, witnessName(root, node.Fn))
		}
		checkMapOrderEscape(pass, node, root)
	}
}

// witnessName renders the root for a diagnostic; a function that is its own
// witness is reported as "itself, a declared root".
func witnessName(root, fn *types.Func) string {
	if root == fn {
		return "itself, a declared root"
	}
	return "root " + root.FullName()
}

type randFix struct {
	pos, end token.Pos
	text     string
}

// seededRandFix builds the mechanical rewrite for a global math/rand call
// when the enclosing function already has exactly one *math/rand.Rand
// parameter: replace the package qualifier with the parameter name
// (rand.Intn(n) -> rng.Intn(n) — every banned global has a same-name method).
func seededRandFix(pass *Pass, fd *ast.FuncDecl, e CallEdge) (randFix, bool) {
	if e.Callee.Pkg() == nil || e.Callee.Pkg().Path() != "math/rand" {
		return randFix{}, false
	}
	sel, ok := ast.Unparen(e.Site.Fun).(*ast.SelectorExpr)
	if !ok {
		return randFix{}, false
	}
	qual, ok := sel.X.(*ast.Ident)
	if !ok {
		return randFix{}, false
	}
	if _, isPkg := pass.Pkg.Info.Uses[qual].(*types.PkgName); !isPkg {
		return randFix{}, false
	}
	var candidates []string
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				obj := pass.Pkg.Info.Defs[name]
				if obj != nil && isRandRandPtr(obj.Type()) {
					candidates = append(candidates, name.Name)
				}
			}
		}
	}
	if len(candidates) != 1 {
		return randFix{}, false
	}
	return randFix{pos: qual.Pos(), end: qual.End(), text: candidates[0]}, true
}

func isRandRandPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "math/rand" && named.Obj().Name() == "Rand"
}

// checkMapOrderEscape flags map ranges whose iteration order leaks into an
// accumulator declared outside the loop, unless the accumulator is sorted
// later in the same function.
func checkMapOrderEscape(pass *Pass, node *CallNode, root *types.Func) {
	info := pass.Pkg.Info
	body := node.Decl.Body
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		target := mapEscapeTarget(info, rng)
		if target == nil || sortedAfter(info, body, rng, target) {
			return true
		}
		pass.Reportf(rng.Pos(),
			"map iteration order escapes into %q in deterministic code (reachable from %s); range over sorted keys or sort the result",
			target.Name(), witnessName(root, node.Fn))
		return true
	})
}

// mapEscapeTarget finds an order-sensitive accumulator written inside the
// range body: a slice appended to, or a string concatenated to, that was
// declared before the range statement. Commutative folds (numeric +=, map
// and set inserts) are deliberately not matched.
func mapEscapeTarget(info *types.Info, rng *ast.RangeStmt) types.Object {
	var target types.Object
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if target != nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.ObjectOf(id)
		if obj == nil || !obj.Pos().IsValid() {
			return true
		}
		if obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End() {
			return true // declared inside the loop: order cannot escape
		}
		switch as.Tok {
		case token.ADD_ASSIGN:
			if basic, ok := obj.Type().Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
				target = obj
			}
		case token.ASSIGN:
			if appendsTo(info, as.Rhs[0], obj) {
				target = obj
			}
		}
		return true
	})
	return target
}

// appendsTo matches "x = append(x, ...)" shapes (possibly nested in other
// expressions) for the given accumulator object.
func appendsTo(info *types.Info, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "append" || len(call.Args) == 0 {
			return true
		}
		if first, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && info.ObjectOf(first) == obj {
			found = true
		}
		return true
	})
	return found
}

// sortedAfter reports whether the accumulator is passed to a sort or slices
// package call positioned after the range statement.
func sortedAfter(info *types.Info, body *ast.BlockStmt, rng *ast.RangeStmt, target types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		qual, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := info.Uses[qual].(*types.PkgName)
		if !ok {
			return true
		}
		if path := pkgName.Imported().Path(); path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && info.ObjectOf(id) == target {
					found = true
				}
				return !found
			})
		}
		return true
	})
	return found
}
