package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// Overlapping fixes must not both splice into the same bytes: the first
// (lowest-offset) edit wins, the loser's diagnostic is handed back.
func TestApplyFixesOverlapRejection(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.go")
	if err := os.WriteFile(path, []byte("abcdef"), 0o644); err != nil {
		t.Fatal(err)
	}
	diags := []Diagnostic{
		{Analyzer: "a", Message: "first", Fix: &Fix{File: path, StartOffset: 1, EndOffset: 4, NewText: "XY"}},
		{Analyzer: "b", Message: "overlaps", Fix: &Fix{File: path, StartOffset: 3, EndOffset: 5, NewText: "Z"}},
		{Analyzer: "c", Message: "disjoint", Fix: &Fix{File: path, StartOffset: 5, EndOffset: 6, NewText: "!"}},
		{Analyzer: "d", Message: "no fix attached"},
	}
	res, err := ApplyFixes(diags)
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 2 {
		t.Errorf("applied = %d, want 2", res.Applied)
	}
	if len(res.Remaining) != 2 {
		t.Fatalf("remaining = %d (%v), want 2", len(res.Remaining), res.Remaining)
	}
	for _, d := range res.Remaining {
		if d.Message != "overlaps" && d.Message != "no fix attached" {
			t.Errorf("wrong diagnostic left behind: %q", d.Message)
		}
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "aXYe!" {
		t.Errorf("file = %q, want %q", got, "aXYe!")
	}
}

// Identical duplicate fixes (two analyzers proposing the same rewrite)
// collapse to one application instead of double-splicing.
func TestApplyFixesDeduplicates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.go")
	if err := os.WriteFile(path, []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	fix := Fix{File: path, StartOffset: 0, EndOffset: 5, NewText: "bye"}
	f1, f2 := fix, fix
	res, err := ApplyFixes([]Diagnostic{
		{Analyzer: "a", Fix: &f1},
		{Analyzer: "b", Fix: &f2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 1 || len(res.Remaining) != 0 {
		t.Errorf("applied = %d, remaining = %d; want 1, 0", res.Applied, len(res.Remaining))
	}
	got, _ := os.ReadFile(path)
	if string(got) != "bye" {
		t.Errorf("file = %q, want %q", got, "bye")
	}
}

// Offsets that no longer fit the file (it changed since analysis) skip the
// whole file's fixes rather than corrupting it.
func TestApplyFixesStaleOffsets(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.go")
	if err := os.WriteFile(path, []byte("ab"), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := ApplyFixes([]Diagnostic{
		{Analyzer: "a", Message: "stale", Fix: &Fix{File: path, StartOffset: 1, EndOffset: 99, NewText: "X"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 0 || len(res.Remaining) != 1 {
		t.Errorf("applied = %d, remaining = %d; want 0, 1", res.Applied, len(res.Remaining))
	}
	got, _ := os.ReadFile(path)
	if string(got) != "ab" {
		t.Errorf("file modified despite stale offsets: %q", got)
	}
}
