// Package lint is a self-contained static-analysis framework for this
// module, built on the standard library's go/ast, go/parser, go/token and
// go/types only (no external dependencies — go.mod stays empty). It exists
// because the measurement pipeline's correctness depends on concurrency
// discipline (the docdb store and journal, the simnet event engine) and on
// errors never being silently dropped during long measurement campaigns
// (§4.2.2's fault-tolerant batch insertion): the cheapest way to keep every
// future PR honest about both is a lint pass that runs in CI.
//
// The model follows golang.org/x/tools/go/analysis in miniature: an
// Analyzer inspects one loaded package at a time through a Pass and reports
// Diagnostics. cmd/scionlint wires the analyzers in Default() over the
// whole module.
//
// Findings are suppressed in source with
//
//	//lint:ignore <analyzer> <reason>
//
// placed on the offending line, on the line above it, or in the doc
// comment of the enclosing top-level declaration (which suppresses the
// analyzer for the whole declaration). A whole file opts out with
// //lint:file-ignore <analyzer> <reason>. The reason is mandatory; an
// ignore directive without one does not suppress anything and is itself
// reported by the "ignorecheck" meta-analyzer.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Severity classifies a diagnostic. Both severities fail a CI run; the
// distinction is informational (warnings flag portability or style hazards,
// errors flag likely bugs).
const (
	SeverityError   = "error"
	SeverityWarning = "warning"
)

// Diagnostic is one finding, locatable and attributable to an analyzer.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	Severity string `json:"severity"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
	// Fix, when non-nil, is a machine-applicable rewrite that resolves the
	// finding (applied by scionlint -fix).
	Fix *Fix `json:"fix,omitempty"`
}

// Fix is one textual edit: replace [StartOffset, EndOffset) of File with
// NewText. Offsets are byte offsets into the file as loaded.
type Fix struct {
	File        string `json:"file"`
	StartOffset int    `json:"start_offset"`
	EndOffset   int    `json:"end_offset"`
	NewText     string `json:"new_text"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Column, d.Analyzer, d.Message)
}

// Analyzer is one static check. Run inspects the Pass's package and reports
// findings through it.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	Name string
	// Doc is a one-paragraph description shown by scionlint -list.
	Doc string
	// Severity is the default severity of the analyzer's findings.
	Severity string
	// NeedsTypes marks analyzers that require type information; they are
	// skipped (with a load note) for packages whose type-check failed.
	NeedsTypes bool
	// NeedsCallGraph marks interprocedural analyzers; the Module call graph
	// is built (once per run) before they execute. Implies NeedsTypes.
	NeedsCallGraph bool
	// Run performs the analysis.
	Run func(*Pass)
}

// Module is the whole analyzed package set plus lazily built, shared,
// immutable-once-built analysis artifacts (call graph, deterministic-root
// closure, frozen-type set). Passes of one Run share one Module; accessors
// are safe for concurrent use.
type Module struct {
	Fset *token.FileSet
	Pkgs []*Package

	graphOnce sync.Once
	graph     *CallGraph

	detOnce    sync.Once
	detWitness map[*types.Func]*types.Func

	frozenOnce sync.Once
	frozen     map[*types.Named]token.Pos

	lockOnce  sync.Once
	lockWorld *lockWorld
}

// NewModule wraps a loaded package set for analysis.
func NewModule(fset *token.FileSet, pkgs []*Package) *Module {
	return &Module{Fset: fset, Pkgs: pkgs}
}

// Graph returns the module call graph, building it on first use.
func (m *Module) Graph() *CallGraph {
	m.graphOnce.Do(func() { m.graph = buildCallGraph(m.Pkgs) })
	return m.graph
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package
	// Mod is the whole analyzed module (shared, read-only substrate).
	Mod *Module

	diags []Diagnostic
}

// Reportf records a finding at pos with the analyzer's default severity.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, p.Analyzer.Severity, format, args...)
}

// ReportSeverityf records a finding with an explicit severity.
func (p *Pass) ReportSeverityf(pos token.Pos, severity, format string, args ...any) {
	p.report(pos, severity, format, args...)
}

func (p *Pass) report(pos token.Pos, severity, format string, args ...any) {
	p.diags = append(p.diags, p.makeDiag(pos, severity, format, args...))
}

// ReportfFix records a finding like Reportf plus a machine-applicable fix
// replacing the source range [pos, end) with newText.
func (p *Pass) ReportfFix(pos, end token.Pos, newText, format string, args ...any) {
	d := p.makeDiag(pos, p.Analyzer.Severity, format, args...)
	start := p.Fset.Position(pos)
	stop := p.Fset.Position(end)
	if start.Filename != "" && start.Filename == stop.Filename && start.Offset < stop.Offset {
		d.Fix = &Fix{
			File:        start.Filename,
			StartOffset: start.Offset,
			EndOffset:   stop.Offset,
			NewText:     newText,
		}
	}
	p.diags = append(p.diags, d)
}

func (p *Pass) makeDiag(pos token.Pos, severity, format string, args ...any) Diagnostic {
	position := p.Fset.Position(pos)
	sev := severity
	if sev == "" {
		sev = SeverityError
	}
	return Diagnostic{
		Analyzer: p.Analyzer.Name,
		Severity: sev,
		File:     position.Filename,
		Line:     position.Line,
		Column:   position.Column,
		Message:  fmt.Sprintf(format, args...),
	}
}

// RunOpts tunes Run's execution.
type RunOpts struct {
	// Parallel is the number of packages analyzed concurrently (<= 1 means
	// serial). Output is deterministic regardless.
	Parallel int
}

// Run executes the analyzers over the packages and returns surviving
// diagnostics sorted by position, plus the count of suppressed findings.
// Packages are analyzed concurrently (one worker per core).
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) (diags []Diagnostic, suppressed int) {
	return RunWith(fset, pkgs, analyzers, RunOpts{Parallel: runtime.GOMAXPROCS(0)})
}

// RunWith is Run with explicit options.
func RunWith(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer, opts RunOpts) (diags []Diagnostic, suppressed int) {
	mod := NewModule(fset, pkgs)
	type pkgResult struct {
		diags      []Diagnostic
		suppressed int
	}
	results := make([]pkgResult, len(pkgs))

	// The shared substrate (call graph, root closures) is built lazily
	// behind sync.Once; forcing it here keeps the per-package workers free
	// of the one expensive serial step.
	for _, a := range analyzers {
		if a.NeedsCallGraph {
			mod.Graph()
			break
		}
	}

	workers := opts.Parallel
	if workers < 1 {
		workers = 1
	}
	if workers > len(pkgs) {
		workers = len(pkgs)
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	analyze := func(i int) {
		pkg := pkgs[i]
		ignores := collectIgnores(fset, pkg)
		var res pkgResult
		for _, a := range analyzers {
			if (a.NeedsTypes || a.NeedsCallGraph) && pkg.Info == nil {
				continue
			}
			pass := &Pass{Analyzer: a, Fset: fset, Pkg: pkg, Mod: mod}
			a.Run(pass)
			for _, d := range pass.diags {
				if ignores.suppresses(d) {
					res.suppressed++
					continue
				}
				res.diags = append(res.diags, d)
			}
		}
		results[i] = res
	}
	if workers <= 1 {
		for i := range pkgs {
			analyze(i)
		}
	} else {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					analyze(i)
				}
			}()
		}
		for i := range pkgs {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}
	for _, res := range results {
		diags = append(diags, res.diags...)
		suppressed += res.suppressed
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].File != diags[j].File {
			return diags[i].File < diags[j].File
		}
		if diags[i].Line != diags[j].Line {
			return diags[i].Line < diags[j].Line
		}
		if diags[i].Column != diags[j].Column {
			return diags[i].Column < diags[j].Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, suppressed
}

// ignoreDirective is one parsed //lint:ignore or //lint:file-ignore.
type ignoreDirective struct {
	analyzer  string
	reason    string
	file      string
	line      int  // line the comment sits on
	endLine   int  // last line the directive covers (declaration span)
	wholeFile bool // //lint:file-ignore
}

type ignoreSet struct {
	directives []ignoreDirective
}

func (s *ignoreSet) suppresses(d Diagnostic) bool {
	for _, dir := range s.directives {
		if dir.file != d.File || dir.reason == "" {
			continue
		}
		if dir.analyzer != d.Analyzer && dir.analyzer != "*" {
			continue
		}
		if dir.wholeFile {
			return true
		}
		// Same line, the line below the comment, or anywhere inside the
		// declaration the directive is attached to.
		if d.Line == dir.line || d.Line == dir.line+1 {
			return true
		}
		if dir.endLine > 0 && d.Line >= dir.line && d.Line <= dir.endLine {
			return true
		}
	}
	return false
}

const (
	ignorePrefix     = "//lint:ignore "
	fileIgnorePrefix = "//lint:file-ignore "
	// deterministicDirective marks determcheck roots (see determcheck.go):
	// in a function's doc comment it declares that function, anywhere else
	// in a file it declares the whole package. Optional trailing text is a
	// free-form note.
	deterministicDirective = "//lint:deterministic"
)

// parseDeterministic parses "//lint:deterministic[ note]". ok is false for
// any other comment, including longer words sharing the prefix
// ("//lint:deterministic-ish").
func parseDeterministic(text string) (note string, ok bool) {
	if !strings.HasPrefix(text, deterministicDirective) {
		return "", false
	}
	rest := text[len(deterministicDirective):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false
	}
	return strings.TrimSpace(rest), true
}

// collectIgnores scans a package's comments for lint directives. Directives
// in a declaration's doc comment (or in any comment group whose last line
// immediately precedes a top-level declaration) cover that declaration's
// whole span.
func collectIgnores(fset *token.FileSet, pkg *Package) *ignoreSet {
	set := &ignoreSet{}
	for _, f := range pkg.Files {
		// Map "line a comment group ends on" -> top-level decl starting on
		// the next line, so directive spans extend over the declaration.
		declAfterLine := make(map[int]ast.Decl)
		for _, decl := range f.Decls {
			declAfterLine[fset.Position(decl.Pos()).Line-1] = decl
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				dir, ok := parseIgnore(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				dir.file = pos.Filename
				dir.line = pos.Line
				groupEnd := fset.Position(cg.End()).Line
				if decl, ok := declAfterLine[groupEnd]; ok {
					dir.endLine = fset.Position(decl.End()).Line
				}
				set.directives = append(set.directives, dir)
			}
		}
	}
	return set
}

// parseIgnore parses "//lint:ignore <analyzer> <reason>" and the file-wide
// variant. ok is false for non-directive comments.
func parseIgnore(text string) (ignoreDirective, bool) {
	var rest string
	var wholeFile bool
	switch {
	case strings.HasPrefix(text, ignorePrefix):
		rest = strings.TrimPrefix(text, ignorePrefix)
	case strings.HasPrefix(text, fileIgnorePrefix):
		rest = strings.TrimPrefix(text, fileIgnorePrefix)
		wholeFile = true
	default:
		return ignoreDirective{}, false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return ignoreDirective{wholeFile: wholeFile}, true
	}
	return ignoreDirective{
		analyzer:  fields[0],
		reason:    strings.TrimSpace(strings.Join(fields[1:], " ")),
		wholeFile: wholeFile,
	}, true
}

// Default returns the standard analyzer set, the tier the measurement
// pipeline is gated on.
func Default() []*Analyzer {
	return []*Analyzer{
		LockCheck,
		ErrCheck,
		GoroutineCapture,
		TimeAfter,
		Hygiene,
		IgnoreCheck,
		DetermCheck,
		LockCheckV2,
		CtxCheck,
		SnapshotCheck,
	}
}

// ByName resolves a comma-separated analyzer list ("lockcheck,errcheck").
func ByName(names string) ([]*Analyzer, error) {
	all := Default()
	if names == "" {
		return all, nil
	}
	index := make(map[string]*Analyzer, len(all))
	for _, a := range all {
		index[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		a, ok := index[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// IgnoreCheck reports malformed suppression directives: an ignore without a
// reason silently suppresses nothing, which is worse than either working or
// failing loudly.
var IgnoreCheck = &Analyzer{
	Name:     "ignorecheck",
	Doc:      "report //lint:ignore directives that are missing the mandatory reason",
	Severity: SeverityError,
	Run: func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					dir, ok := parseIgnore(c.Text)
					if !ok {
						continue
					}
					if dir.analyzer == "" || dir.reason == "" {
						pass.Reportf(c.Pos(), "malformed lint directive %q: want //lint:ignore <analyzer> <reason>", strings.TrimSpace(c.Text))
					}
				}
			}
		}
	},
}
