// Package lint is a self-contained static-analysis framework for this
// module, built on the standard library's go/ast, go/parser, go/token and
// go/types only (no external dependencies — go.mod stays empty). It exists
// because the measurement pipeline's correctness depends on concurrency
// discipline (the docdb store and journal, the simnet event engine) and on
// errors never being silently dropped during long measurement campaigns
// (§4.2.2's fault-tolerant batch insertion): the cheapest way to keep every
// future PR honest about both is a lint pass that runs in CI.
//
// The model follows golang.org/x/tools/go/analysis in miniature: an
// Analyzer inspects one loaded package at a time through a Pass and reports
// Diagnostics. cmd/scionlint wires the analyzers in Default() over the
// whole module.
//
// Findings are suppressed in source with
//
//	//lint:ignore <analyzer> <reason>
//
// placed on the offending line, on the line above it, or in the doc
// comment of the enclosing top-level declaration (which suppresses the
// analyzer for the whole declaration). A whole file opts out with
// //lint:file-ignore <analyzer> <reason>. The reason is mandatory; an
// ignore directive without one does not suppress anything and is itself
// reported by the "ignorecheck" meta-analyzer.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Severity classifies a diagnostic. Both severities fail a CI run; the
// distinction is informational (warnings flag portability or style hazards,
// errors flag likely bugs).
const (
	SeverityError   = "error"
	SeverityWarning = "warning"
)

// Diagnostic is one finding, locatable and attributable to an analyzer.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	Severity string `json:"severity"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Column, d.Analyzer, d.Message)
}

// Analyzer is one static check. Run inspects the Pass's package and reports
// findings through it.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	Name string
	// Doc is a one-paragraph description shown by scionlint -list.
	Doc string
	// Severity is the default severity of the analyzer's findings.
	Severity string
	// NeedsTypes marks analyzers that require type information; they are
	// skipped (with a load note) for packages whose type-check failed.
	NeedsTypes bool
	// Run performs the analysis.
	Run func(*Pass)
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package

	diags []Diagnostic
}

// Reportf records a finding at pos with the analyzer's default severity.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, p.Analyzer.Severity, format, args...)
}

// ReportSeverityf records a finding with an explicit severity.
func (p *Pass) ReportSeverityf(pos token.Pos, severity, format string, args ...any) {
	p.report(pos, severity, format, args...)
}

func (p *Pass) report(pos token.Pos, severity, format string, args ...any) {
	position := p.Fset.Position(pos)
	sev := severity
	if sev == "" {
		sev = SeverityError
	}
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Severity: sev,
		File:     position.Filename,
		Line:     position.Line,
		Column:   position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes the analyzers over the packages and returns surviving
// diagnostics sorted by position, plus the count of suppressed findings.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) (diags []Diagnostic, suppressed int) {
	for _, pkg := range pkgs {
		ignores := collectIgnores(fset, pkg)
		for _, a := range analyzers {
			if a.NeedsTypes && pkg.Info == nil {
				continue
			}
			pass := &Pass{Analyzer: a, Fset: fset, Pkg: pkg}
			a.Run(pass)
			for _, d := range pass.diags {
				if ignores.suppresses(d) {
					suppressed++
					continue
				}
				diags = append(diags, d)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].File != diags[j].File {
			return diags[i].File < diags[j].File
		}
		if diags[i].Line != diags[j].Line {
			return diags[i].Line < diags[j].Line
		}
		if diags[i].Column != diags[j].Column {
			return diags[i].Column < diags[j].Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, suppressed
}

// ignoreDirective is one parsed //lint:ignore or //lint:file-ignore.
type ignoreDirective struct {
	analyzer  string
	reason    string
	file      string
	line      int  // line the comment sits on
	endLine   int  // last line the directive covers (declaration span)
	wholeFile bool // //lint:file-ignore
}

type ignoreSet struct {
	directives []ignoreDirective
}

func (s *ignoreSet) suppresses(d Diagnostic) bool {
	for _, dir := range s.directives {
		if dir.file != d.File || dir.reason == "" {
			continue
		}
		if dir.analyzer != d.Analyzer && dir.analyzer != "*" {
			continue
		}
		if dir.wholeFile {
			return true
		}
		// Same line, the line below the comment, or anywhere inside the
		// declaration the directive is attached to.
		if d.Line == dir.line || d.Line == dir.line+1 {
			return true
		}
		if dir.endLine > 0 && d.Line >= dir.line && d.Line <= dir.endLine {
			return true
		}
	}
	return false
}

const (
	ignorePrefix     = "//lint:ignore "
	fileIgnorePrefix = "//lint:file-ignore "
)

// collectIgnores scans a package's comments for lint directives. Directives
// in a declaration's doc comment (or in any comment group whose last line
// immediately precedes a top-level declaration) cover that declaration's
// whole span.
func collectIgnores(fset *token.FileSet, pkg *Package) *ignoreSet {
	set := &ignoreSet{}
	for _, f := range pkg.Files {
		// Map "line a comment group ends on" -> top-level decl starting on
		// the next line, so directive spans extend over the declaration.
		declAfterLine := make(map[int]ast.Decl)
		for _, decl := range f.Decls {
			declAfterLine[fset.Position(decl.Pos()).Line-1] = decl
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				dir, ok := parseIgnore(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				dir.file = pos.Filename
				dir.line = pos.Line
				groupEnd := fset.Position(cg.End()).Line
				if decl, ok := declAfterLine[groupEnd]; ok {
					dir.endLine = fset.Position(decl.End()).Line
				}
				set.directives = append(set.directives, dir)
			}
		}
	}
	return set
}

// parseIgnore parses "//lint:ignore <analyzer> <reason>" and the file-wide
// variant. ok is false for non-directive comments.
func parseIgnore(text string) (ignoreDirective, bool) {
	var rest string
	var wholeFile bool
	switch {
	case strings.HasPrefix(text, ignorePrefix):
		rest = strings.TrimPrefix(text, ignorePrefix)
	case strings.HasPrefix(text, fileIgnorePrefix):
		rest = strings.TrimPrefix(text, fileIgnorePrefix)
		wholeFile = true
	default:
		return ignoreDirective{}, false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return ignoreDirective{wholeFile: wholeFile}, true
	}
	return ignoreDirective{
		analyzer:  fields[0],
		reason:    strings.TrimSpace(strings.Join(fields[1:], " ")),
		wholeFile: wholeFile,
	}, true
}

// Default returns the standard analyzer set, the tier the measurement
// pipeline is gated on.
func Default() []*Analyzer {
	return []*Analyzer{
		LockCheck,
		ErrCheck,
		GoroutineCapture,
		TimeAfter,
		Hygiene,
		IgnoreCheck,
	}
}

// ByName resolves a comma-separated analyzer list ("lockcheck,errcheck").
func ByName(names string) ([]*Analyzer, error) {
	all := Default()
	if names == "" {
		return all, nil
	}
	index := make(map[string]*Analyzer, len(all))
	for _, a := range all {
		index[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		a, ok := index[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// IgnoreCheck reports malformed suppression directives: an ignore without a
// reason silently suppresses nothing, which is worse than either working or
// failing loudly.
var IgnoreCheck = &Analyzer{
	Name:     "ignorecheck",
	Doc:      "report //lint:ignore directives that are missing the mandatory reason",
	Severity: SeverityError,
	Run: func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					dir, ok := parseIgnore(c.Text)
					if !ok {
						continue
					}
					if dir.analyzer == "" || dir.reason == "" {
						pass.Reportf(c.Pos(), "malformed lint directive %q: want //lint:ignore <analyzer> <reason>", strings.TrimSpace(c.Text))
					}
				}
			}
		}
	},
}
