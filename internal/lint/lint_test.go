package lint

import (
	"go/token"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts the expectation pattern from a // want "regexp" comment.
var wantRe = regexp.MustCompile(`want "((?:[^"\\]|\\.)*)"`)

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// loadFixtures loads the fixtures module once per test binary.
func loadFixtures(t *testing.T) (map[string]*Package, *token.FileSet) {
	t.Helper()
	pkgs, fset, err := Load(LoadConfig{Dir: "testdata/src"}, "./...")
	if err != nil {
		t.Fatalf("load fixtures: %v", err)
	}
	byName := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byName[p.Name] = p
	}
	return byName, fset
}

// collectWants scans a fixture package for // want "…" comments. The
// expectation anchors to the line the comment sits on.
func collectWants(t *testing.T, fset *token.FileSet, pkg *Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					pos := fset.Position(c.Pos())
					t.Fatalf("%s: bad want pattern %q: %v", pos, m[1], err)
				}
				pos := fset.Position(c.Pos())
				wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
			}
		}
	}
	return wants
}

func TestAnalyzersGolden(t *testing.T) {
	byName, fset := loadFixtures(t)

	cases := []struct {
		pkg        string
		analyzers  []*Analyzer
		suppressed int
	}{
		{"lockcheck", []*Analyzer{LockCheck}, 0},
		{"errcheck", []*Analyzer{ErrCheck}, 0},
		{"goroutine", []*Analyzer{GoroutineCapture}, 0},
		{"timeafter", []*Analyzer{TimeAfter}, 0},
		{"hygiene", []*Analyzer{Hygiene}, 0},
		// suppress proves both directive shapes silence findings and that a
		// reasonless directive silences nothing.
		{"suppress", []*Analyzer{TimeAfter, Hygiene}, 2},
		{"determcheck", []*Analyzer{DetermCheck}, 0},
		// determwide pins the package-wide directive shape (directive in the
		// package doc marks every function a root).
		{"determwide", []*Analyzer{DetermCheck}, 0},
		{"lockcheckv2", []*Analyzer{LockCheckV2}, 0},
		{"ctxcheck", []*Analyzer{CtxCheck}, 0},
		{"snapshotcheck", []*Analyzer{SnapshotCheck}, 0},
		{"clean", Default(), 0},
	}

	for _, tc := range cases {
		t.Run(tc.pkg, func(t *testing.T) {
			pkg, ok := byName[tc.pkg]
			if !ok {
				t.Fatalf("fixture package %q not loaded", tc.pkg)
			}
			if len(pkg.TypeErrors) > 0 {
				t.Fatalf("fixture %s has type errors: %v", tc.pkg, pkg.TypeErrors)
			}
			wants := collectWants(t, fset, pkg)
			diags, suppressed := Run(fset, []*Package{pkg}, tc.analyzers)

			for _, d := range diags {
				matched := false
				for _, w := range wants {
					if w.matched || w.file != d.File || w.line != d.Line {
						continue
					}
					if w.pattern.MatchString(d.Message) {
						w.matched = true
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("unexpected diagnostic %s:%d: [%s] %s", shortPath(d.File), d.Line, d.Analyzer, d.Message)
				}
			}
			for _, w := range wants {
				if !w.matched {
					t.Errorf("missing diagnostic at %s:%d matching %q", shortPath(w.file), w.line, w.pattern)
				}
			}
			if suppressed != tc.suppressed {
				t.Errorf("suppressed = %d, want %d", suppressed, tc.suppressed)
			}
		})
	}
}

// TestIgnoreCheckFlagsReasonlessDirective pins the meta-analyzer: the
// directive in the suppress fixture that omits its reason must be reported
// (want comments can't express this one because a trailing comment would
// become the directive's reason).
func TestIgnoreCheckFlagsReasonlessDirective(t *testing.T) {
	byName, fset := loadFixtures(t)
	pkg := byName["suppress"]
	if pkg == nil {
		t.Fatal("suppress fixture not loaded")
	}
	diags, _ := Run(fset, []*Package{pkg}, []*Analyzer{IgnoreCheck})
	if len(diags) != 1 {
		t.Fatalf("ignorecheck diagnostics = %d, want 1: %v", len(diags), diags)
	}
	d := diags[0]
	if !strings.Contains(d.Message, "malformed lint directive") {
		t.Errorf("message = %q, want it to mention a malformed lint directive", d.Message)
	}
	if !strings.HasSuffix(d.File, "suppress.go") {
		t.Errorf("reported in %s, want suppress.go", d.File)
	}
}

func shortPath(p string) string {
	if i := strings.Index(p, "testdata"); i >= 0 {
		return p[i:]
	}
	return p
}
