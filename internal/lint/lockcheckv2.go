package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockCheckV2 is the interprocedural companion to lockcheck: where v1 checks
// one method at a time syntactically, v2 combines the module call graph with
// a per-function must-hold dataflow over the CFG to enforce the ...Locked
// convention in both directions, catch the self-deadlock class, and report
// cycles in the cross-mutex acquisition-order graph.
//
// Checks:
//
//  1. A call to a ...Locked method must happen with the receiver's mutex
//     provably held at the call site (acquired earlier on every path), or
//     from inside another ...Locked method of the same type on its own
//     receiver (the convention's hand-off case).
//
//  2. Self-deadlock: re-acquiring a mutex that is already held on every
//     path to the acquire site (Lock-while-Lock, Lock-while-RLock,
//     RLock-while-Lock — RLock-while-RLock is legal and skipped), calling a
//     non-Locked method that acquires the receiver's own mutex while that
//     mutex is held, and a ...Locked method that locks the very mutex its
//     name promises the caller already holds.
//
//  3. Lock-order cycles: every acquisition of mutex B at a site where mutex
//     A is held adds the edge A->B to a module-wide order graph (keys are
//     type-level: pkg.Type.field for receiver mutexes, pkg.var for package
//     ones); call sites add edges to everything the callee transitively
//     acquires. Edges inside a strongly connected component are reported —
//     two locks taken in both orders on different paths can deadlock.
//
// The analysis is a must-analysis (facts are intersected at joins), so
// "held" is never over-claimed; sites inside function literals and sites the
// flow cannot see (lock taken by a caller without the ...Locked marker) are
// skipped rather than guessed. Intentional exceptions carry
// //lint:ignore lockcheckv2 <why>.
var LockCheckV2 = &Analyzer{
	Name:           "lockcheckv2",
	Doc:            "call-graph ...Locked enforcement, self-deadlocks, and cross-mutex acquisition-order cycles",
	Severity:       SeverityError,
	NeedsTypes:     true,
	NeedsCallGraph: true,
	Run: func(pass *Pass) {
		for _, f := range pass.Mod.locks().findings[pass.Pkg] {
			pass.Reportf(f.pos, "%s", f.msg)
		}
	},
}

// lockFinding is one pre-computed diagnostic, attributed to the package that
// will emit it (the whole analysis runs once per module, not per package).
type lockFinding struct {
	pos token.Pos
	msg string
}

// lockWorld is the module-wide lock analysis result shared by every
// LockCheckV2 pass.
type lockWorld struct {
	findings map[*Package][]lockFinding
}

// locks returns the lock analysis, building it on first use.
func (m *Module) locks() *lockWorld {
	m.lockOnce.Do(func() { m.lockWorld = buildLockWorld(m) })
	return m.lockWorld
}

const (
	modeLock  = "Lock"
	modeRLock = "RLock"
)

// mutexOp matches <expr>.Lock/RLock/Unlock/RUnlock on a sync.Mutex or
// sync.RWMutex (or pointer) and returns the mutex expression and method.
func mutexOp(info *types.Info, call *ast.CallExpr) (mu ast.Expr, op string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return nil, "", false
	}
	tv, okType := info.Types[sel.X]
	if !okType {
		return nil, "", false
	}
	t := tv.Type
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return nil, "", false
	}
	if n := named.Obj().Name(); n != "Mutex" && n != "RWMutex" {
		return nil, "", false
	}
	return sel.X, sel.Sel.Name, true
}

// mutexTypeKey renders a module-unique, type-level identity for a mutex
// expression: "pkg.Type.field" for a struct mutex, "pkg.var" for a package
// variable. Locals and unrecognized shapes return "".
func mutexTypeKey(info *types.Info, mu ast.Expr) string {
	switch x := ast.Unparen(mu).(type) {
	case *ast.SelectorExpr:
		tv, ok := info.Types[x.X]
		if !ok {
			return ""
		}
		t := tv.Type
		if ptr, isPtr := t.(*types.Pointer); isPtr {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
			return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + x.Sel.Name
		}
	case *ast.Ident:
		if v, ok := info.ObjectOf(x).(*types.Var); ok && v.Pkg() != nil {
			if v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Path() + "." + v.Name()
			}
		}
	}
	return ""
}

// mutexFieldOf returns the name of the first sync.Mutex/RWMutex field of a
// named struct type, the field the ...Locked convention refers to.
func mutexFieldOf(named *types.Named) string {
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return ""
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		t := f.Type()
		if ptr, isPtr := t.(*types.Pointer); isPtr {
			t = ptr.Elem()
		}
		if n, ok := t.(*types.Named); ok && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync" {
			if name := n.Obj().Name(); name == "Mutex" || name == "RWMutex" {
				return f.Name()
			}
		}
	}
	return ""
}

// recvNamed unwraps a method's receiver type to its *types.Named.
func recvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// lockFacts builds the FlowSpec tracking which mutex expressions are held.
// Keys are printed expressions ("c.mu"); values are "mode|typeKey" so order
// edges can be derived from held facts.
func lockFacts(fset *token.FileSet, info *types.Info) FlowSpec {
	return FlowSpec{
		Transfer: func(n ast.Node, state Facts) {
			ast.Inspect(n, func(x ast.Node) bool {
				switch c := x.(type) {
				case *ast.FuncLit:
					return false // closure bodies are separate flows
				case *ast.DeferStmt:
					return false // a deferred unlock releases at return, not here
				case *ast.CallExpr:
					mu, op, ok := mutexOp(info, c)
					if !ok {
						return true
					}
					key := exprString(fset, mu)
					if key == "" {
						return true
					}
					switch op {
					case "Lock":
						state[key] = modeLock + "|" + mutexTypeKey(info, mu)
					case "RLock":
						state[key] = modeRLock + "|" + mutexTypeKey(info, mu)
					case "Unlock", "RUnlock":
						delete(state, key)
					}
				}
				return true
			})
		},
	}
}

func heldMode(v string) string { return strings.SplitN(v, "|", 2)[0] }
func heldTypeKey(v string) string {
	p := strings.SplitN(v, "|", 2)
	if len(p) == 2 {
		return p[1]
	}
	return ""
}

// orderEdge is one "to acquired while from held" observation.
type orderEdge struct {
	from, to string
	pos      token.Pos
	pkg      *Package
}

func buildLockWorld(m *Module) *lockWorld {
	w := &lockWorld{findings: make(map[*Package][]lockFinding)}
	g := m.Graph()
	nodes := g.Nodes()

	// Pass 1: per-function direct acquisitions (type-level) and whether the
	// function locks its own receiver's mutex, plus same-receiver callees
	// for the acquiresOwn closure.
	directKeys := make(map[*types.Func]map[string]bool)
	directOwn := make(map[*types.Func]bool)
	selfCallees := make(map[*types.Func][]*types.Func)
	for _, node := range nodes {
		info := node.Pkg.Info
		recvName, _, hasRecv := receiverInfo(node.Decl)
		keys := make(map[string]bool)
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			mu, op, ok := mutexOp(info, call)
			if !ok || (op != "Lock" && op != "RLock") {
				return true
			}
			if tk := mutexTypeKey(info, mu); tk != "" {
				keys[tk] = true
			}
			if hasRecv {
				if sel, ok := ast.Unparen(mu).(*ast.SelectorExpr); ok {
					if base, ok := sel.X.(*ast.Ident); ok && base.Name == recvName {
						directOwn[node.Fn] = true
					}
				}
			}
			return true
		})
		directKeys[node.Fn] = keys
		if hasRecv {
			myType := recvNamed(node.Fn)
			for _, e := range node.Out {
				if e.Dynamic || recvNamed(e.Callee) == nil || recvNamed(e.Callee) != myType {
					continue
				}
				if sel, ok := ast.Unparen(e.Site.Fun).(*ast.SelectorExpr); ok {
					if base, ok := sel.X.(*ast.Ident); ok && base.Name == recvName {
						selfCallees[node.Fn] = append(selfCallees[node.Fn], e.Callee)
					}
				}
			}
		}
	}

	// Pass 2: transitive closures. acquiresAll[fn] is every type-level key
	// fn may acquire through static calls; acquiresOwn[fn] is whether fn
	// locks its own receiver's mutex, directly or through same-receiver
	// calls.
	acquiresAll := make(map[*types.Func]map[string]bool, len(nodes))
	for _, node := range nodes {
		set := make(map[string]bool, len(directKeys[node.Fn]))
		for k := range directKeys[node.Fn] {
			set[k] = true
		}
		acquiresAll[node.Fn] = set
	}
	acquiresOwn := make(map[*types.Func]bool, len(nodes))
	for fn, own := range directOwn {
		acquiresOwn[fn] = own
	}
	for changed := true; changed; {
		changed = false
		for _, node := range nodes {
			mine := acquiresAll[node.Fn]
			for _, e := range node.Out {
				for k := range acquiresAll[e.Callee] {
					if !mine[k] {
						mine[k] = true
						changed = true
					}
				}
			}
			if !acquiresOwn[node.Fn] {
				for _, callee := range selfCallees[node.Fn] {
					if acquiresOwn[callee] {
						acquiresOwn[node.Fn] = true
						changed = true
					}
				}
			}
		}
	}

	// Pass 3: flow-sensitive per-function checks and order-edge collection.
	var edges []orderEdge
	edgeSeen := make(map[[2]string]bool)
	for _, node := range nodes {
		edges = append(edges, checkFunction(m, w, node, acquiresAll, acquiresOwn, directOwn, edgeSeen)...)
	}

	// Pass 4: cycle detection over the type-level order graph.
	reportOrderCycles(w, edges)
	return w
}

// checkFunction runs the held-lock dataflow over one function and emits the
// Locked-convention and self-deadlock findings, returning the order edges
// its acquire/call sites contribute.
func checkFunction(m *Module, w *lockWorld, node *CallNode,
	acquiresAll map[*types.Func]map[string]bool, acquiresOwn, directOwn map[*types.Func]bool,
	edgeSeen map[[2]string]bool) []orderEdge {

	info := node.Pkg.Info
	spec := lockFacts(m.Fset, info)
	cfg := NewCFG(node.Decl.Body)
	entry := cfg.Forward(spec)
	heldAt := func(n ast.Node) Facts { return cfg.FactsAt(spec, entry, n) }

	recvName, _, hasRecv := receiverInfo(node.Decl)
	enclosingLocked := strings.HasSuffix(node.Fn.Name(), "Locked")
	myRecv := recvNamed(node.Fn)

	report := func(pos token.Pos, format string, args ...any) {
		w.findings[node.Pkg] = append(w.findings[node.Pkg], lockFinding{pos: pos, msg: fmt.Sprintf(format, args...)})
	}

	var edges []orderEdge
	addEdges := func(held Facts, toKey string, pos token.Pos) {
		if toKey == "" {
			return
		}
		for _, v := range held {
			from := heldTypeKey(v)
			if from == "" || from == toKey {
				continue
			}
			if !edgeSeen[[2]string{from, toKey}] {
				edgeSeen[[2]string{from, toKey}] = true
				edges = append(edges, orderEdge{from: from, to: toKey, pos: pos, pkg: node.Pkg})
			}
		}
	}

	// Direct acquire sites: self-deadlock re-acquisition, Locked-method
	// self-lock, and order edges.
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		mu, op, ok := mutexOp(info, call)
		if !ok || (op != "Lock" && op != "RLock") {
			return true
		}
		key := exprString(m.Fset, mu)
		held := heldAt(call)
		if held == nil {
			return true // inside a closure or unreachable: no flow facts
		}
		if prev, already := held[key]; already {
			prevMode := heldMode(prev)
			if op == "Lock" || prevMode == modeLock {
				report(call.Pos(), "%s.%s() while %s is already held (%s at this point on every path) — self-deadlock", key, op, key, prevMode)
			}
		}
		if enclosingLocked && hasRecv && directOwn[node.Fn] {
			if sel, isSel := ast.Unparen(mu).(*ast.SelectorExpr); isSel {
				if base, isIdent := sel.X.(*ast.Ident); isIdent && base.Name == recvName {
					report(call.Pos(), "%s acquires %s, the mutex its ...Locked name promises the caller already holds", node.Fn.Name(), key)
				}
			}
		}
		addEdges(held, mutexTypeKey(info, mu), call.Pos())
		return true
	})

	// Call sites, via the resolved graph edges.
	for _, e := range node.Out {
		held := heldAt(e.Site)
		if held == nil {
			continue
		}
		calleeRecv := recvNamed(e.Callee)
		calleeLocked := strings.HasSuffix(e.Callee.Name(), "Locked")

		if !e.Dynamic && calleeRecv != nil {
			field := mutexFieldOf(calleeRecv)
			if field != "" {
				sel, isSel := ast.Unparen(e.Site.Fun).(*ast.SelectorExpr)
				if isSel {
					requiredKey := exprString(m.Fset, sel.X) + "." + field
					_, haveLock := held[requiredKey]
					onOwnRecv := false
					if base, isIdent := ast.Unparen(sel.X).(*ast.Ident); isIdent && hasRecv && base.Name == recvName {
						onOwnRecv = true
					}
					if calleeLocked {
						// Hand-off case: a Locked method of the same type may
						// forward to a sibling Locked method on its receiver.
						handoff := enclosingLocked && onOwnRecv && calleeRecv == myRecv
						if !haveLock && !handoff {
							report(e.Site.Pos(), "call to %s.%s without %s held — ...Locked methods require the caller to hold the receiver's mutex",
								calleeRecv.Obj().Name(), e.Callee.Name(), requiredKey)
						}
					} else if haveLock && acquiresOwn[e.Callee] {
						report(e.Site.Pos(), "calling %s.%s while %s is held — the callee acquires that mutex itself (self-deadlock)",
							calleeRecv.Obj().Name(), e.Callee.Name(), requiredKey)
					}
				}
			}
		}
		// Any held lock orders before everything the callee may acquire.
		for to := range acquiresAll[e.Callee] {
			addEdges(held, to, e.Site.Pos())
		}
	}
	return edges
}

// reportOrderCycles finds strongly connected components of the type-level
// order graph and reports every edge inside one.
func reportOrderCycles(w *lockWorld, edges []orderEdge) {
	adj := make(map[string][]string)
	keys := make(map[string]bool)
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
		keys[e.from], keys[e.to] = true, true
	}
	names := make([]string, 0, len(keys))
	for k := range keys {
		names = append(names, k)
	}
	sort.Strings(names)

	// Tarjan's SCC, iterative enough for lock graphs this small.
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	comp := make(map[string]int)
	var stack []string
	counter, compID := 0, 0
	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		succs := append([]string(nil), adj[v]...)
		sort.Strings(succs)
		for _, to := range succs {
			if _, seen := index[to]; !seen {
				strongconnect(to)
				if low[to] < low[v] {
					low[v] = low[to]
				}
			} else if onStack[to] && index[to] < low[v] {
				low[v] = index[to]
			}
		}
		if low[v] == index[v] {
			for {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[top] = false
				comp[top] = compID
				if top == v {
					break
				}
			}
			compID++
		}
	}
	for _, v := range names {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}

	compSize := make(map[int]int)
	for _, c := range comp {
		compSize[c]++
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		return edges[i].to < edges[j].to
	})
	for _, e := range edges {
		if comp[e.from] == comp[e.to] && compSize[comp[e.from]] > 1 {
			w.findings[e.pkg] = append(w.findings[e.pkg], lockFinding{
				pos: e.pos,
				msg: fmt.Sprintf("lock order cycle: %s acquired while %s is held, but the reverse order also occurs — potential deadlock", e.to, e.from),
			})
		}
	}
}
