package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxCheck enforces the cancellation-threading convention the campaign
// engine established: library code receives its context from the caller and
// passes it down, so a Ctrl-C during a four-hour sweep actually stops the
// sweep.
//
// Checks:
//
//  1. context.Background() and context.TODO() are banned in library
//     packages (everything except package main and _test.go files, which
//     legitimately mint root contexts). When the enclosing function already
//     has a context.Context parameter the finding carries a machine fix
//     replacing the call with that parameter (applied by scionlint -fix).
//
//  2. A function that takes a context.Context must take it as the first
//     parameter (after the receiver), matching the stdlib convention.
//
//  3. Structs must not store a context.Context field — contexts flow
//     through call chains, not through object lifetimes (a stored ctx
//     outlives its cancellation scope silently).
var CtxCheck = &Analyzer{
	Name:       "ctxcheck",
	Doc:        "context.Background/TODO in library code, ctx parameters not first, contexts stored in structs",
	Severity:   SeverityError,
	NeedsTypes: true,
	Run:        runCtxCheck,
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}

func runCtxCheck(pass *Pass) {
	isMain := pass.Pkg.Name == "main"
	for i, f := range pass.Pkg.Files {
		isTest := strings.HasSuffix(pass.Pkg.Filenames[i], "_test.go")
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				checkCtxFields(pass, d)
			case *ast.FuncDecl:
				checkCtxParamOrder(pass, d)
				if !isMain && !isTest && d.Body != nil {
					checkCtxBackground(pass, d)
				}
			}
		}
	}
}

// checkCtxFields flags struct fields of type context.Context.
func checkCtxFields(pass *Pass, gd *ast.GenDecl) {
	for _, spec := range gd.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			continue
		}
		for _, field := range st.Fields.List {
			tv, ok := pass.Pkg.Info.Types[field.Type]
			if !ok || !isContextType(tv.Type) {
				continue
			}
			pass.Reportf(field.Pos(),
				"%s stores a context.Context in a struct field; pass ctx through calls instead (a stored ctx outlives its cancellation scope)",
				ts.Name.Name)
		}
	}
}

// checkCtxParamOrder flags context.Context parameters in any position but
// the first.
func checkCtxParamOrder(pass *Pass, fd *ast.FuncDecl) {
	if fd.Type.Params == nil {
		return
	}
	pos := 0
	for _, field := range fd.Type.Params.List {
		tv, ok := pass.Pkg.Info.Types[field.Type]
		isCtx := ok && isContextType(tv.Type)
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isCtx && pos > 0 {
			pass.Reportf(field.Pos(),
				"%s takes context.Context as parameter %d; ctx goes first (after the receiver)",
				fd.Name.Name, pos+1)
		}
		pos += n
	}
}

// checkCtxBackground flags context.Background()/TODO() calls, attaching a
// rewrite to the function's own ctx parameter when one is in scope.
func checkCtxBackground(pass *Pass, fd *ast.FuncDecl) {
	ctxParam := contextParamName(pass.Pkg.Info, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
			return true
		}
		qual, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := pass.Pkg.Info.Uses[qual].(*types.PkgName)
		if !ok || pkgName.Imported().Path() != "context" {
			return true
		}
		if ctxParam != "" {
			pass.ReportfFix(call.Pos(), call.End(), ctxParam,
				"context.%s() in library code discards the caller's cancellation; use the %q parameter already in scope",
				sel.Sel.Name, ctxParam)
		} else {
			pass.Reportf(call.Pos(),
				"context.%s() in library code discards the caller's cancellation; accept a ctx parameter and thread it here",
				sel.Sel.Name)
		}
		return true
	})
}

// contextParamName returns the name of fd's context.Context parameter, or ""
// when there is none (or it is blank).
func contextParamName(info *types.Info, fd *ast.FuncDecl) string {
	if fd.Type.Params == nil {
		return ""
	}
	for _, field := range fd.Type.Params.List {
		tv, ok := info.Types[field.Type]
		if !ok || !isContextType(tv.Type) {
			continue
		}
		for _, name := range field.Names {
			if name.Name != "_" {
				return name.Name
			}
		}
	}
	return ""
}
