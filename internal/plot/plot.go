// Package plot renders the paper's figures as text: horizontal box plots
// (Fig 5–8), bar charts (Fig 4) and loss dot plots (Fig 9). Plots are pure
// strings so the report tool and tests can assert on them.
package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/upin/scionpath/internal/stats"
)

// Box is one labelled box-plot row.
type Box struct {
	Label   string
	Summary stats.Summary
	// Tag optionally colours/annotates the row (the paper tags 6- vs
	// 7-hop groups and 64B vs MTU whiskers).
	Tag string
}

// BoxPlot renders horizontal box plots on a shared axis.
//
//	label |----[==|==]-----| o  (whisker, box, median, outliers)
func BoxPlot(title, unit string, boxes []Box, width int) string {
	if width <= 0 {
		width = 72
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if len(boxes) == 0 {
		b.WriteString("  (no data)\n")
		return b.String()
	}

	lo, hi := math.Inf(1), math.Inf(-1)
	for _, box := range boxes {
		if box.Summary.N == 0 {
			continue
		}
		lo = math.Min(lo, box.Summary.Min)
		hi = math.Max(hi, box.Summary.Max)
	}
	if math.IsInf(lo, 1) {
		b.WriteString("  (no data)\n")
		return b.String()
	}
	if hi == lo {
		hi = lo + 1
	}
	labelW := 0
	for _, box := range boxes {
		if n := len(rowLabel(box)); n > labelW {
			labelW = n
		}
	}
	scale := func(v float64) int {
		p := int(math.Round((v - lo) / (hi - lo) * float64(width-1)))
		if p < 0 {
			p = 0
		}
		if p > width-1 {
			p = width - 1
		}
		return p
	}

	for _, box := range boxes {
		s := box.Summary
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		if s.N > 0 {
			wl, bl, md, br, wr := scale(s.LowWhisker), scale(s.Q1), scale(s.Median), scale(s.Q3), scale(s.HighWhisker)
			for i := wl; i <= wr; i++ {
				row[i] = '-'
			}
			for i := bl; i <= br; i++ {
				row[i] = '='
			}
			row[wl], row[wr] = '|', '|'
			row[md] = '#'
			for _, o := range s.Outliers {
				row[scale(o)] = 'o'
			}
		}
		fmt.Fprintf(&b, "  %-*s %s\n", labelW, rowLabel(box), string(row))
	}
	fmt.Fprintf(&b, "  %-*s %-10.4g%*s\n", labelW, "", lo, width-10, fmt.Sprintf("%.4g %s", hi, unit))
	return b.String()
}

func rowLabel(b Box) string {
	if b.Tag == "" {
		return b.Label
	}
	return b.Label + " (" + b.Tag + ")"
}

// Bar is one bar-chart row.
type Bar struct {
	Label string
	Value float64
}

// BarChart renders a horizontal bar chart (Fig 4's reachability bars).
func BarChart(title, unit string, bars []Bar, width int) string {
	if width <= 0 {
		width = 50
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if len(bars) == 0 {
		b.WriteString("  (no data)\n")
		return b.String()
	}
	max := math.Inf(-1)
	labelW := 0
	for _, bar := range bars {
		max = math.Max(max, bar.Value)
		if len(bar.Label) > labelW {
			labelW = len(bar.Label)
		}
	}
	if max <= 0 {
		max = 1
	}
	for _, bar := range bars {
		n := int(math.Round(bar.Value / max * float64(width)))
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(&b, "  %-*s %s %.4g %s\n", labelW, bar.Label, strings.Repeat("█", n), bar.Value, unit)
	}
	return b.String()
}

// DotSeries is one path's loss measurements for the dot plot.
type DotSeries struct {
	Label string
	// Values are the per-measurement loss percentages.
	Values []float64
}

// LossDotPlot renders Fig 9's dot plot: one row per path, dots positioned by
// loss percentage, dot size (digit 1-9) encoding how many measurements share
// that loss value.
func LossDotPlot(title string, series []DotSeries, width int) string {
	if width <= 0 {
		width = 60
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	labelW := 0
	for _, s := range series {
		if len(s.Label) > labelW {
			labelW = len(s.Label)
		}
	}
	for _, s := range series {
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		// Count multiplicity per rounded loss value.
		counts := map[int]int{}
		for _, v := range s.Values {
			pos := int(math.Round(v / 100 * float64(width-1)))
			if pos < 0 {
				pos = 0
			}
			if pos > width-1 {
				pos = width - 1
			}
			counts[pos]++
		}
		positions := make([]int, 0, len(counts))
		for p := range counts {
			positions = append(positions, p)
		}
		sort.Ints(positions)
		for _, p := range positions {
			n := counts[p]
			if n > 9 {
				n = 9
			}
			row[p] = byte('0' + n)
		}
		fmt.Fprintf(&b, "  %-*s %s\n", labelW, s.Label, string(row))
	}
	fmt.Fprintf(&b, "  %-*s 0%%%*s\n", labelW, "", width-2, "100%")
	return b.String()
}

// Table renders rows of cells with aligned columns.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], c)
			}
		}
		b.WriteString("\n")
	}
	line(header)
	dashes := make([]string, len(widths))
	for i, w := range widths {
		dashes[i] = strings.Repeat("-", w)
	}
	line(dashes)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}
