package plot

import (
	"strings"
	"testing"

	"github.com/upin/scionpath/internal/stats"
)

func TestBoxPlot(t *testing.T) {
	boxes := []Box{
		{Label: "path 0", Tag: "6 hops", Summary: stats.Summarize([]float64{10, 11, 12, 13, 14})},
		{Label: "path 9", Tag: "7 hops", Summary: stats.Summarize([]float64{200, 210, 220, 230, 500})},
	}
	out := BoxPlot("Average latency per path", "ms", boxes, 60)
	if !strings.Contains(out, "Average latency per path") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "path 0 (6 hops)") || !strings.Contains(out, "path 9 (7 hops)") {
		t.Errorf("missing labels:\n%s", out)
	}
	for _, glyph := range []string{"|", "=", "#"} {
		if !strings.Contains(out, glyph) {
			t.Errorf("missing glyph %q:\n%s", glyph, out)
		}
	}
	if !strings.Contains(out, "ms") {
		t.Error("missing unit on axis")
	}
	// Deterministic.
	if out != BoxPlot("Average latency per path", "ms", boxes, 60) {
		t.Error("non-deterministic rendering")
	}
}

func TestBoxPlotRelativePositions(t *testing.T) {
	boxes := []Box{
		{Label: "fast", Summary: stats.Summarize([]float64{10, 11, 12})},
		{Label: "slow", Summary: stats.Summarize([]float64{90, 95, 99})},
	}
	out := BoxPlot("t", "ms", boxes, 40)
	lines := strings.Split(out, "\n")
	fast, slow := lines[1], lines[2]
	if strings.Index(fast, "#") >= strings.Index(slow, "#") {
		t.Errorf("fast median not left of slow median:\n%s", out)
	}
}

func TestBoxPlotEmpty(t *testing.T) {
	if out := BoxPlot("t", "ms", nil, 0); !strings.Contains(out, "no data") {
		t.Errorf("empty plot: %q", out)
	}
	empty := []Box{{Label: "x", Summary: stats.Summary{}}}
	if out := BoxPlot("t", "ms", empty, 0); !strings.Contains(out, "no data") {
		t.Errorf("all-empty plot: %q", out)
	}
	// Degenerate single value.
	one := []Box{{Label: "x", Summary: stats.Summarize([]float64{5})}}
	out := BoxPlot("t", "ms", one, 20)
	if !strings.Contains(out, "#") {
		t.Errorf("degenerate plot lost its median:\n%s", out)
	}
}

func TestBarChart(t *testing.T) {
	bars := []Bar{
		{Label: "3 hops", Value: 2},
		{Label: "6 hops", Value: 12},
	}
	out := BarChart("Server reachability", "destinations", bars, 30)
	if !strings.Contains(out, "3 hops") || !strings.Contains(out, "6 hops") {
		t.Errorf("labels missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	count := func(s string) int { return strings.Count(s, "█") }
	if count(lines[1]) >= count(lines[2]) {
		t.Errorf("bar lengths not proportional:\n%s", out)
	}
	if count(lines[2]) != 30 {
		t.Errorf("max bar %d blocks, want full width 30", count(lines[2]))
	}
	if !strings.Contains(BarChart("t", "u", nil, 0), "no data") {
		t.Error("empty chart")
	}
	// All-zero values must not divide by zero.
	if out := BarChart("t", "u", []Bar{{Label: "z", Value: 0}}, 10); !strings.Contains(out, "z") {
		t.Errorf("zero chart: %q", out)
	}
}

func TestLossDotPlot(t *testing.T) {
	series := []DotSeries{
		{Label: "2_15", Values: []float64{0, 0, 0, 0}},
		{Label: "2_16", Values: []float64{100, 100, 100}},
		{Label: "2_20", Values: []float64{0, 10, 0}},
	}
	out := LossDotPlot("Loss per path", series, 50)
	lines := strings.Split(out, "\n")
	// Path 2_15: a single dot of multiplicity 4 at position 0.
	if !strings.Contains(lines[1], "4") {
		t.Errorf("multiplicity missing:\n%s", out)
	}
	// Path 2_16: multiplicity 3 at the far right.
	idx16 := strings.LastIndex(lines[2], "3")
	if idx16 < 40 {
		t.Errorf("100%% loss dot not at right edge:\n%s", out)
	}
	// Path 2_20 has two distinct positions.
	row := lines[3]
	nonSpace := 0
	for _, r := range row[len("  2_20 "):] {
		if r != ' ' {
			nonSpace++
		}
	}
	if nonSpace != 2 {
		t.Errorf("2_20 row has %d dots, want 2:\n%s", nonSpace, out)
	}
	if !strings.Contains(out, "0%") || !strings.Contains(out, "100%") {
		t.Error("axis labels missing")
	}
}

func TestLossDotPlotClampsAndCaps(t *testing.T) {
	series := []DotSeries{{Label: "x", Values: []float64{-5, 105, 50, 50, 50, 50, 50, 50, 50, 50, 50, 50}}}
	out := LossDotPlot("t", series, 20)
	if strings.Contains(out, ":") || len(strings.Split(out, "\n")) < 2 {
		t.Errorf("clamp failure: %q", out)
	}
	// Multiplicity is capped at 9.
	if !strings.Contains(out, "9") {
		t.Errorf("multiplicity cap: %q", out)
	}
}

func TestTable(t *testing.T) {
	header := []string{"id", "value"}
	out := Table(header, [][]string{{"a", "1"}, {"longer", "2"}})
	if !strings.Contains(out, "id") || !strings.Contains(out, "longer") {
		t.Errorf("table content:\n%s", out)
	}
	if !strings.Contains(out, "--") {
		t.Error("missing separator")
	}
	if header[0] != "id" {
		t.Error("Table mutated the caller's header")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Errorf("%d lines, want 4", len(lines))
	}
}
