package simnet

import (
	"testing"
	"time"

	"github.com/upin/scionpath/internal/pathmgr"
	"github.com/upin/scionpath/internal/segment"
	"github.com/upin/scionpath/internal/topology"
)

// testWorld returns the world topology, a combiner, and a simulator.
func testWorld(t testing.TB, seed int64) (*topology.Topology, *pathmgr.Combiner, *Network) {
	t.Helper()
	topo := topology.DefaultWorld()
	reg := segment.Discover(topo, segment.Options{})
	return topo, pathmgr.NewCombiner(topo, reg), New(topo, Options{Seed: seed})
}

func TestProbeRTTPlausible(t *testing.T) {
	_, c, net := testWorld(t, 1)
	paths, err := c.Paths(topology.MyAS, topology.AWSIreland)
	if err != nil {
		t.Fatal(err)
	}
	direct := paths[0]
	res := net.Probe(direct, 8, 0)
	if res.Dropped {
		t.Fatal("direct probe dropped")
	}
	// Zurich -> Frankfurt -> Dublin and back: roughly 15-40 ms RTT.
	if res.RTT < 10*time.Millisecond || res.RTT > 60*time.Millisecond {
		t.Errorf("direct-path RTT %v, want 10-60ms", res.RTT)
	}
}

func TestProbeGeographyDominatesHopCount(t *testing.T) {
	_, c, net := testWorld(t, 2)
	paths, err := c.Paths(topology.MyAS, topology.AWSIreland)
	if err != nil {
		t.Fatal(err)
	}
	var direct, viaSingapore *pathmgr.Path
	for _, p := range paths {
		if p.Contains(topology.AWSSingapore) && viaSingapore == nil {
			viaSingapore = p
		}
		if p.NumHops() == 6 && direct == nil {
			direct = p
		}
	}
	if direct == nil || viaSingapore == nil {
		t.Fatal("missing direct or Singapore-detour path")
	}
	avg := func(p *pathmgr.Path) time.Duration {
		var sum time.Duration
		n := 0
		for i := 0; i < 20; i++ {
			r := net.Probe(p, 8, 0)
			if !r.Dropped {
				sum += r.RTT
				n++
			}
		}
		if n == 0 {
			t.Fatalf("all probes dropped on %v", p)
		}
		return sum / time.Duration(n)
	}
	dRTT, sRTT := avg(direct), avg(viaSingapore)
	// The Singapore detour must cost far more than the extra hop count
	// suggests: "paths with geographically diverse hops have a more
	// significant impact on latency than the sheer number of hops" (§6.1).
	if sRTT < 3*dRTT {
		t.Errorf("Singapore detour RTT %v not >> direct %v", sRTT, dRTT)
	}
}

func TestProbeDeterministicPerSeed(t *testing.T) {
	_, c1, net1 := testWorld(t, 42)
	_, _, net2 := testWorld(t, 42)
	paths, _ := c1.Paths(topology.MyAS, topology.AWSIreland)
	for i := 0; i < 10; i++ {
		r1 := net1.Probe(paths[0], 8, 0)
		r2 := net2.Probe(paths[0], 8, 0)
		if r1 != r2 {
			t.Fatalf("probe %d differs across equal seeds: %v vs %v", i, r1, r2)
		}
	}
}

func TestEpisodeDropsEverything(t *testing.T) {
	_, c, net := testWorld(t, 3)
	paths, _ := c.Paths(topology.MyAS, topology.AWSVirginia)
	p := paths[0]
	// Episode on the second hop (ETHZ-AP), first half of the path.
	if err := net.ScheduleEpisode(Episode{
		IA: p.Hops[1].IA, Start: 0, End: time.Hour, DropProb: 1,
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		r := net.Probe(p, 8, 0)
		if !r.Dropped {
			t.Fatal("probe survived a 100% episode")
		}
		if r.DropHop != 1 {
			t.Errorf("dropped at hop %d, want 1", r.DropHop)
		}
	}
}

func TestEpisodeWindowRespected(t *testing.T) {
	_, c, net := testWorld(t, 4)
	paths, _ := c.Paths(topology.MyAS, topology.AWSVirginia)
	p := paths[0]
	if err := net.ScheduleEpisode(Episode{
		IA: p.Hops[1].IA, Start: 10 * time.Second, End: 20 * time.Second, DropProb: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if r := net.Probe(p, 8, 0); r.Dropped {
		t.Error("probe before the window dropped")
	}
	net.Advance(15 * time.Second)
	if r := net.Probe(p, 8, 0); !r.Dropped {
		t.Error("probe inside the window survived")
	}
	net.Advance(10 * time.Second)
	if r := net.Probe(p, 8, 0); r.Dropped {
		t.Error("probe after the window dropped")
	}
}

func TestEpisodeValidation(t *testing.T) {
	_, _, net := testWorld(t, 5)
	bad := []Episode{
		{IA: topology.MyAS, Start: 10, End: 5, DropProb: 1},
		{IA: topology.MyAS, Start: 0, End: 10, DropProb: 1.5},
		{IA: topology.MyAS, Start: 0, End: 10, DropProb: -0.1},
	}
	for _, ep := range bad {
		if err := net.ScheduleEpisode(ep); err == nil {
			t.Errorf("episode %+v accepted", ep)
		}
	}
	unknown := Episode{Start: 0, End: 10, DropProb: 1}
	unknown.IA.ISD = 99
	if err := net.ScheduleEpisode(unknown); err == nil {
		t.Error("episode on unknown AS accepted")
	}
}

func TestProbePartial(t *testing.T) {
	_, c, net := testWorld(t, 6)
	paths, _ := c.Paths(topology.MyAS, topology.AWSIreland)
	p := paths[0]
	var prev time.Duration
	for k := 1; k < p.NumHops(); k++ {
		var sum time.Duration
		n := 0
		for i := 0; i < 10; i++ {
			r, err := net.ProbePartial(p, k, 8, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !r.Dropped {
				sum += r.RTT
				n++
			}
		}
		if n == 0 {
			t.Fatalf("all partial probes to hop %d dropped", k)
		}
		avg := sum / time.Duration(n)
		if avg+5*time.Millisecond < prev {
			t.Errorf("hop %d RTT %v well below previous hop %v", k, avg, prev)
		}
		prev = avg
	}
	if _, err := net.ProbePartial(p, -1, 8, 0); err == nil {
		t.Error("negative hop index accepted")
	}
	if _, err := net.ProbePartial(p, p.NumHops(), 8, 0); err == nil {
		t.Error("out-of-range hop index accepted")
	}
}

func TestJitteryASWidensSpread(t *testing.T) {
	_, c, net := testWorld(t, 7)
	paths, _ := c.Paths(topology.MyAS, topology.AWSIreland)
	var direct, viaOhio *pathmgr.Path
	for _, p := range paths {
		if p.NumHops() == 6 && direct == nil {
			direct = p
		}
		if p.Contains(topology.AWSOhio) && viaOhio == nil {
			viaOhio = p
		}
	}
	if direct == nil || viaOhio == nil {
		t.Fatal("missing paths")
	}
	spread := func(p *pathmgr.Path) time.Duration {
		min, max := time.Hour, time.Duration(0)
		for i := 0; i < 30; i++ {
			r := net.Probe(p, 8, 0)
			if r.Dropped {
				continue
			}
			if r.RTT < min {
				min = r.RTT
			}
			if r.RTT > max {
				max = r.RTT
			}
		}
		return max - min
	}
	if spread(viaOhio) <= spread(direct) {
		t.Errorf("Ohio path spread %v not wider than direct %v (paper: 1004/1007 add wide jitter)",
			spread(viaOhio), spread(direct))
	}
}

func TestProbeRespectsMTU(t *testing.T) {
	_, c, net := testWorld(t, 36)
	paths, _ := c.Paths(topology.MyAS, topology.AWSIreland)
	p := paths[0]
	// Payload at the path MTU passes; beyond it, the packet dies at the
	// first link.
	if r := net.Probe(p, p.MTU, 0); r.Dropped {
		t.Error("MTU-sized probe dropped")
	}
	r := net.Probe(p, p.MTU+1, 0)
	if !r.Dropped {
		t.Fatal("oversized probe delivered")
	}
	if r.DropHop != 0 {
		t.Errorf("oversized probe died at hop %d, want 0", r.DropHop)
	}
}

func TestAdvanceMovesClock(t *testing.T) {
	_, _, net := testWorld(t, 8)
	if net.Now() != 0 {
		t.Fatal("clock not at zero")
	}
	net.Advance(3 * time.Second)
	if net.Now() != 3*time.Second {
		t.Errorf("clock %v, want 3s", net.Now())
	}
}

func TestScheduleAndRunPending(t *testing.T) {
	_, _, net := testWorld(t, 9)
	fired := 0
	net.Schedule(100*time.Millisecond, func() { fired++ })
	net.Schedule(200*time.Millisecond, func() { fired++ })
	net.RunPending()
	if fired != 2 {
		t.Errorf("fired %d, want 2", fired)
	}
	if net.Now() != 200*time.Millisecond {
		t.Errorf("clock %v, want 200ms", net.Now())
	}
}
