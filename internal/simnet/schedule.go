package simnet

import (
	"fmt"
	"time"

	"github.com/upin/scionpath/internal/addr"
)

// Schedule is a batch of network weather — the plan-driven form the chaos
// harness (internal/chaos, docs/CHAOS.md) generates from a seed. Applying a
// schedule to a network before it is forked gives every fork the same
// weather at the same simulated time, which is what keeps chaos runs
// reproducible per seed.
type Schedule struct {
	Outages  []LinkOutage
	Episodes []Episode
}

// Empty reports whether the schedule contains no events.
func (s Schedule) Empty() bool { return len(s.Outages) == 0 && len(s.Episodes) == 0 }

// ApplySchedule registers every outage and episode of the schedule,
// validating each exactly like ScheduleLinkOutage and ScheduleEpisode. It
// stops at the first invalid event; events before it stay registered.
func (n *Network) ApplySchedule(s Schedule) error {
	for i, o := range s.Outages {
		if err := n.ScheduleLinkOutage(o); err != nil {
			return fmt.Errorf("simnet: schedule outage %d: %w", i, err)
		}
	}
	for i, ep := range s.Episodes {
		if err := n.ScheduleEpisode(ep); err != nil {
			return fmt.Errorf("simnet: schedule episode %d: %w", i, err)
		}
	}
	return nil
}

// Blackout builds an AS-level blackout: a congestion episode that drops
// every packet traversing the AS for the window — the "node is down"
// extreme of the paper's dynamic and fallible network (§4.2.2). Schedule it
// with ScheduleEpisode or as part of a Schedule.
func Blackout(ia addr.IA, start, end time.Duration) Episode {
	return Episode{IA: ia, Start: start, End: end, DropProb: 1}
}
