package simnet

import (
	"fmt"
	"time"

	"github.com/upin/scionpath/internal/pathmgr"
)

// FlowSpec describes one direction of a bandwidth test: offer TargetBps of
// payload in PacketBytes-sized packets for Duration. It corresponds to one
// "cs" or "sc" parameter set of the bwtester (§3.3).
type FlowSpec struct {
	Duration    time.Duration
	PacketBytes int
	TargetBps   float64
	// Reverse selects the dst->src direction (the "sc" measurement).
	Reverse bool
}

// FlowResult reports what the flow achieved.
type FlowResult struct {
	// AttemptedBps is the payload rate the sender actually offered after
	// its own packet-rate limit.
	AttemptedBps float64
	// AchievedBps is the payload rate delivered to the receiver.
	AchievedBps float64
	// LossFraction is 1 - delivered/offered packets.
	LossFraction float64
	// PacketsSent and PacketsReceived are totals over the duration.
	PacketsSent     int
	PacketsReceived int
}

// fluidStep is the time resolution of the bandwidth model. Per step the
// flow is pushed through every hop as a fluid rate; queue overload and
// endpoint effects are applied analytically. 100 ms steps capture the
// cross-traffic dynamics that matter at 3-second test durations.
const fluidStep = 100 * time.Millisecond

// BandwidthTest runs one direction of a bwtester measurement over the path
// and advances the simulated clock by the test duration. The model captures
// the three effects behind the paper's Fig 7/8:
//
//   - a sender packet-rate cap (userspace UDP senders top out in pps, so
//     64-byte flows cannot actually offer 150 Mbps);
//   - endpoint delivery degradation at high packet rates (64-byte flows
//     lose throughput to per-packet overhead at 12 Mbps, Fig 7);
//   - goodput collapse of overloaded byte-limited queues (MTU flows at
//     150 Mbps overrun the bottleneck and lose disproportionately, letting
//     small packets win at high target rates, Fig 8).
func (n *Network) BandwidthTest(p *pathmgr.Path, spec FlowSpec) (FlowResult, error) {
	if spec.PacketBytes < 4 {
		return FlowResult{}, fmt.Errorf("simnet: packet size %d below bwtester minimum of 4", spec.PacketBytes)
	}
	if spec.Duration <= 0 || spec.Duration > 10*time.Second {
		return FlowResult{}, fmt.Errorf("simnet: duration %v outside bwtester range (0, 10s]", spec.Duration)
	}
	if spec.TargetBps <= 0 {
		return FlowResult{}, fmt.Errorf("simnet: target bandwidth %v not positive", spec.TargetBps)
	}
	n.mu.Lock()
	defer n.mu.Unlock()

	hops := p.Hops
	if spec.Reverse {
		hops = reverseHops(p.Hops)
	}

	// Sender-side packet rate cap.
	offeredPPS := spec.TargetBps / float64(spec.PacketBytes*8)
	sentPPS := offeredPPS
	if sentPPS > n.opts.SenderPPSCap && !n.opts.DisableSenderCap {
		sentPPS = n.opts.SenderPPSCap
	}
	attempted := sentPPS * float64(spec.PacketBytes*8)
	wirePerPkt := float64((spec.PacketBytes + n.opts.HeaderBytes) * 8)

	start := n.engine.Now()
	steps := int(spec.Duration / fluidStep)
	if steps == 0 {
		steps = 1
	}
	var sumAchieved float64
	var pktsSent, pktsRecv float64
	for s := 0; s < steps; s++ {
		now := start + time.Duration(s)*fluidStep
		pps := sentPPS
		for i := 0; i+1 < len(hops); i++ {
			// Congestion episodes at the forwarding AS kill the step's
			// traffic with the episode's probability (fluid equivalent).
			for _, ep := range n.episodes {
				if ep.IA == hops[i].IA && ep.Active(now) {
					pps *= 1 - ep.DropProb
				}
			}
			l, fwd, capacity, err := n.linkDir(hops[i].IA, hops[i+1].IA)
			if err != nil {
				return FlowResult{}, err
			}
			if n.linkDownLocked(hops[i].IA, hops[i+1].IA, now) {
				pps = 0
				continue
			}
			u := n.utilizationLocked(l, fwd, now)
			usable := capacity * (1 - u)
			offeredWire := pps * wirePerPkt
			if offeredWire > usable {
				// Sustained UDP overload thrashes the tail-drop queue;
				// accepted goodput falls below the fair residual share.
				// With the collapse ablated, the link simply clips at its
				// usable rate (proportional dropping).
				acceptedWire := usable
				if !n.opts.DisableCollapse {
					x := offeredWire / usable
					acceptedWire = usable / (1 + n.opts.CollapseBeta*(x-1))
				}
				pps = acceptedWire / wirePerPkt
			}
			if l.BaseLoss > 0 {
				pps *= 1 - l.BaseLoss
			}
		}
		// Episode at the destination AS.
		for _, ep := range n.episodes {
			if ep.IA == hops[len(hops)-1].IA && ep.Active(now) {
				pps *= 1 - ep.DropProb
			}
		}
		// Endpoint delivery degradation at high packet rates.
		soft := 1 / (1 + (pps/n.opts.RecvSoftPPS)*(pps/n.opts.RecvSoftPPS))
		pps *= soft
		sumAchieved += pps * float64(spec.PacketBytes*8)
		pktsSent += sentPPS * fluidStep.Seconds()
		pktsRecv += pps * fluidStep.Seconds()
	}
	n.engine.AdvanceTo(start + spec.Duration)

	res := FlowResult{
		AttemptedBps:    attempted,
		AchievedBps:     sumAchieved / float64(steps),
		PacketsSent:     int(pktsSent),
		PacketsReceived: int(pktsRecv),
	}
	if pktsSent > 0 {
		res.LossFraction = 1 - pktsRecv/pktsSent
	}
	if res.LossFraction < 0 {
		res.LossFraction = 0
	}
	return res, nil
}
