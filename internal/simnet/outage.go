package simnet

import (
	"fmt"
	"time"

	"github.com/upin/scionpath/internal/addr"
)

// LinkOutage takes a specific link down for a time window; packets
// traversing it in either direction are dropped. Together with AS-level
// congestion episodes this models the "dynamic and fallible network" the
// test-suite must tolerate (§4.2.2: "nodes can be up and down and sometimes
// they might be unreachable").
type LinkOutage struct {
	A, B  addr.IA
	Start time.Duration
	End   time.Duration
}

// Active reports whether the outage covers simulated time t.
func (o LinkOutage) Active(t time.Duration) bool { return t >= o.Start && t < o.End }

// Covers reports whether the outage applies to the link between x and y.
func (o LinkOutage) Covers(x, y addr.IA) bool {
	return (o.A == x && o.B == y) || (o.A == y && o.B == x)
}

// ScheduleLinkOutage registers a link outage.
func (n *Network) ScheduleLinkOutage(o LinkOutage) error {
	if o.End <= o.Start {
		return fmt.Errorf("simnet: outage end %v <= start %v", o.End, o.Start)
	}
	if n.topo.LinkBetween(o.A, o.B) == nil {
		return fmt.Errorf("simnet: outage on nonexistent link %s--%s", o.A, o.B)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.outages = append(n.outages, o)
	return nil
}

// linkDownLocked reports whether the link between a and b is down at time
// t. Callers hold n.mu.
func (n *Network) linkDownLocked(a, b addr.IA, t time.Duration) bool {
	for _, o := range n.outages {
		if o.Covers(a, b) && o.Active(t) {
			return true
		}
	}
	return false
}
