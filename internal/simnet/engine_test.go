package simnet

import (
	"testing"
	"time"
)

func TestEngineRunsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30*time.Millisecond, func() { order = append(order, 3) })
	e.Schedule(10*time.Millisecond, func() { order = append(order, 1) })
	e.Schedule(20*time.Millisecond, func() { order = append(order, 2) })
	end := e.Run()
	if end != 30*time.Millisecond {
		t.Errorf("final time %v, want 30ms", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("execution order %v", order)
	}
}

func TestEngineTieBreakPreservesScheduleOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5*time.Millisecond, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break order %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var fired []time.Duration
	e.Schedule(10*time.Millisecond, func() {
		fired = append(fired, e.Now())
		e.ScheduleAfter(5*time.Millisecond, func() {
			fired = append(fired, e.Now())
		})
	})
	e.Run()
	if len(fired) != 2 || fired[0] != 10*time.Millisecond || fired[1] != 15*time.Millisecond {
		t.Errorf("fired at %v", fired)
	}
}

func TestEnginePastEventsClampToNow(t *testing.T) {
	e := NewEngine()
	e.Schedule(10*time.Millisecond, func() {
		e.Schedule(time.Millisecond, func() {
			if e.Now() != 10*time.Millisecond {
				t.Errorf("past event ran at %v, want clamped to 10ms", e.Now())
			}
		})
	})
	e.Run()
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(10*time.Millisecond, func() { ran++ })
	e.Schedule(50*time.Millisecond, func() { ran++ })
	e.RunUntil(20 * time.Millisecond)
	if ran != 1 {
		t.Errorf("ran %d events, want 1", ran)
	}
	if e.Now() != 20*time.Millisecond {
		t.Errorf("clock %v, want 20ms", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("pending %d, want 1", e.Pending())
	}
	e.Run()
	if ran != 2 {
		t.Errorf("ran %d events after Run, want 2", ran)
	}
}

func TestEngineAdvanceTo(t *testing.T) {
	e := NewEngine()
	e.AdvanceTo(time.Second)
	if e.Now() != time.Second {
		t.Errorf("clock %v", e.Now())
	}
	// Moving backwards is a no-op.
	e.AdvanceTo(time.Millisecond)
	if e.Now() != time.Second {
		t.Errorf("clock moved backwards to %v", e.Now())
	}
	e.Schedule(2*time.Second, func() {})
	defer func() {
		if recover() == nil {
			t.Error("AdvanceTo past pending events should panic")
		}
	}()
	e.AdvanceTo(3 * time.Second)
}
