package simnet

import (
	"testing"
	"time"

	"github.com/upin/scionpath/internal/topology"
)

func TestLinkOutageDropsTraffic(t *testing.T) {
	_, c, net := testWorld(t, 30)
	paths, err := c.Paths(topology.MyAS, topology.AWSIreland)
	if err != nil {
		t.Fatal(err)
	}
	p := paths[0]
	// Take the first link of the path down.
	if err := net.ScheduleLinkOutage(LinkOutage{
		A: p.Hops[0].IA, B: p.Hops[1].IA, Start: 0, End: time.Hour,
	}); err != nil {
		t.Fatal(err)
	}
	if r := net.Probe(p, 8, 0); !r.Dropped {
		t.Error("probe crossed a downed link")
	}
	res, err := net.BandwidthTest(p, FlowSpec{
		Duration: 300 * time.Millisecond, PacketBytes: 1000, TargetBps: 1e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AchievedBps > 0 {
		t.Errorf("bandwidth %v through a downed link", res.AchievedBps)
	}
}

func TestLinkOutageIsDirectionless(t *testing.T) {
	_, c, net := testWorld(t, 31)
	paths, _ := c.Paths(topology.MyAS, topology.AWSIreland)
	p := paths[0]
	// Register with reversed endpoints; the return direction is affected too.
	if err := net.ScheduleLinkOutage(LinkOutage{
		A: p.Hops[1].IA, B: p.Hops[0].IA, Start: 0, End: time.Hour,
	}); err != nil {
		t.Fatal(err)
	}
	if r := net.Probe(p, 8, 0); !r.Dropped {
		t.Error("reversed-endpoint outage not applied")
	}
}

func TestLinkOutageWindow(t *testing.T) {
	_, c, net := testWorld(t, 32)
	paths, _ := c.Paths(topology.MyAS, topology.AWSIreland)
	p := paths[0]
	if err := net.ScheduleLinkOutage(LinkOutage{
		A: p.Hops[0].IA, B: p.Hops[1].IA,
		Start: 10 * time.Second, End: 20 * time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	if r := net.Probe(p, 8, 0); r.Dropped {
		t.Error("probe before the outage dropped")
	}
	net.Advance(15 * time.Second)
	if r := net.Probe(p, 8, 0); !r.Dropped {
		t.Error("probe during the outage survived")
	}
	net.Advance(10 * time.Second)
	if r := net.Probe(p, 8, 0); r.Dropped {
		t.Error("probe after the outage dropped")
	}
}

func TestLinkOutageOnlyAffectsItsLink(t *testing.T) {
	_, c, net := testWorld(t, 33)
	paths, _ := c.Paths(topology.MyAS, topology.AWSIreland)
	// Find two paths that differ in their second hop (via ETHZ vs SWITCH).
	var viaETHZ, viaSWITCH = -1, -1
	for i, p := range paths {
		switch p.Hops[2].IA.AS.String() {
		case "ffaa:0:1102":
			if viaETHZ == -1 {
				viaETHZ = i
			}
		case "ffaa:0:1108":
			if viaSWITCH == -1 {
				viaSWITCH = i
			}
		}
	}
	if viaETHZ == -1 || viaSWITCH == -1 {
		t.Fatal("missing up-segment diversity")
	}
	pE, pS := paths[viaETHZ], paths[viaSWITCH]
	if err := net.ScheduleLinkOutage(LinkOutage{
		A: pE.Hops[1].IA, B: pE.Hops[2].IA, Start: 0, End: time.Hour,
	}); err != nil {
		t.Fatal(err)
	}
	if r := net.Probe(pE, 8, 0); !r.Dropped {
		t.Error("path over the downed link survived")
	}
	if r := net.Probe(pS, 8, 0); r.Dropped {
		t.Error("disjoint path affected by the outage")
	}
}

func TestLinkOutageValidation(t *testing.T) {
	_, _, net := testWorld(t, 34)
	if err := net.ScheduleLinkOutage(LinkOutage{
		A: topology.MyAS, B: topology.AWSIreland, Start: 0, End: time.Hour,
	}); err == nil {
		t.Error("outage on nonexistent link accepted")
	}
	if err := net.ScheduleLinkOutage(LinkOutage{
		A: topology.ETHZAP, B: topology.MyAS, Start: 10, End: 5,
	}); err == nil {
		t.Error("inverted window accepted")
	}
}
