package simnet

import (
	"fmt"
	"time"

	"github.com/upin/scionpath/internal/addr"
	"github.com/upin/scionpath/internal/pathmgr"
	"github.com/upin/scionpath/internal/topology"
)

// TransferSpec describes a chunked download split across a path set: the
// BitTorrent-style parallel chunk fetch of the SCION path-discovery work
// (PAPERS.md). The transfer is closed-loop and elastic — a TCP-like puller
// per path, not the open-loop UDP blast of BandwidthTest — so flows share
// links fairly and never drive a queue into overload collapse.
type TransferSpec struct {
	// TotalBytes is the payload to fetch (required).
	TotalBytes int64
	// ChunkBytes is the work-assignment granularity (default 256 KiB).
	// Chunks are pulled from a shared pool, so fast paths take more.
	ChunkBytes int64
	// PacketBytes sizes the packets on the wire (default 1200).
	PacketBytes int
	// MaxDuration aborts a transfer that cannot finish — dead paths, an
	// outage window — and marks the result Stalled (default 60s).
	MaxDuration time.Duration
}

func (s TransferSpec) withDefaults() TransferSpec {
	if s.ChunkBytes <= 0 {
		s.ChunkBytes = 256 << 10
	}
	if s.PacketBytes <= 0 {
		s.PacketBytes = 1200
	}
	if s.MaxDuration <= 0 {
		s.MaxDuration = 60 * time.Second
	}
	return s
}

// PathTransfer is one path's share of a split transfer.
type PathTransfer struct {
	Chunks int
	Bytes  int64
	// AchievedBps is the path's mean payload rate over the transfer.
	AchievedBps float64
}

// TransferResult reports a split transfer.
type TransferResult struct {
	// Bytes actually delivered (== TotalBytes unless Stalled).
	Bytes    int64
	Duration time.Duration
	// GoodputBps is delivered payload over the wall-clock duration — the
	// aggregate the multipath experiment compares against single-path.
	GoodputBps float64
	PerPath    []PathTransfer
	// Stalled is set when MaxDuration elapsed before the last chunk.
	Stalled bool
}

// flowState is one path's puller: its directed hop links (fixed for the
// whole transfer) and its position in the chunk it is currently fetching.
type flowState struct {
	hops   []pathmgr.Hop
	links  []flowLink
	chunk  int64 // bytes remaining in the current chunk (0 = needs a chunk)
	bytes  int64
	chunks int
}

type flowLink struct {
	a, b     addr.IA
	key      dirLink
	capacity float64
	link     *topology.Link
	fwd      bool
}

// dirLink identifies a directed link for fair-share accounting: two flows
// crossing the same physical link in the same direction split its
// residual capacity.
type dirLink struct {
	l   *topology.Link
	fwd bool
}

// SplitTransfer fetches spec.TotalBytes by pulling fixed-size chunks from
// a shared pool over every path in parallel, advancing the simulated
// clock by the transfer duration. Per 100 ms fluid step each flow gets the
// max-min elastic rate of its path: the minimum over its links of the
// link's residual capacity divided by the number of transfer flows on that
// directed link. Disjoint path sets therefore aggregate their bottlenecks,
// while paths sharing a bottleneck split it — the effect the multipath
// experiment measures. Episode drops, base loss, and the endpoint
// packet-rate soft cap degrade goodput exactly as in BandwidthTest;
// outages zero a flow until the link recovers.
//
// The transfer is a DOWNLOAD: payload flows from the destination back to
// the source over each path's reversed hops (the asymmetric access links
// of the default world make the direction matter — §6.2's 55/22 Mbps
// attachment split).
func (n *Network) SplitTransfer(paths []*pathmgr.Path, spec TransferSpec) (TransferResult, error) {
	if len(paths) == 0 {
		return TransferResult{}, fmt.Errorf("simnet: split transfer needs at least one path")
	}
	if spec.TotalBytes <= 0 {
		return TransferResult{}, fmt.Errorf("simnet: transfer size %d not positive", spec.TotalBytes)
	}
	spec = spec.withDefaults()

	n.mu.Lock()
	defer n.mu.Unlock()

	flows := make([]*flowState, len(paths))
	for i, p := range paths {
		if len(p.Hops) < 2 {
			return TransferResult{}, fmt.Errorf("simnet: path %d has %d hops, need at least 2", i, len(p.Hops))
		}
		hops := reverseHops(p.Hops)
		f := &flowState{hops: hops}
		for h := 0; h+1 < len(hops); h++ {
			l, fwd, capacity, err := n.linkDir(hops[h].IA, hops[h+1].IA)
			if err != nil {
				return TransferResult{}, err
			}
			f.links = append(f.links, flowLink{
				a: hops[h].IA, b: hops[h+1].IA,
				key: dirLink{l, fwd}, capacity: capacity, link: l, fwd: fwd,
			})
		}
		flows[i] = f
	}

	wirePerPayload := float64(spec.PacketBytes+n.opts.HeaderBytes) / float64(spec.PacketBytes)
	senderCapBps := n.opts.SenderPPSCap * float64(spec.PacketBytes*8)

	remaining := spec.TotalBytes // bytes not yet assigned to any flow
	delivered := int64(0)
	start := n.engine.Now()
	maxSteps := int(spec.MaxDuration / fluidStep)
	if maxSteps == 0 {
		maxSteps = 1
	}
	steps := 0
	for ; steps < maxSteps; steps++ {
		now := start + time.Duration(steps)*fluidStep

		// Assign chunks to idle flows while the pool lasts.
		live := 0
		shares := make(map[dirLink]int)
		for _, f := range flows {
			if f.chunk == 0 && remaining > 0 {
				f.chunk = min(spec.ChunkBytes, remaining)
				remaining -= f.chunk
				f.chunks++
			}
			if f.chunk > 0 {
				live++
				for _, fl := range f.links {
					shares[fl.key]++
				}
			}
		}
		if live == 0 {
			break // pool drained and every in-flight chunk delivered
		}

		for _, f := range flows {
			if f.chunk == 0 {
				continue
			}
			// Max-min elastic share: the flow's payload rate is its
			// tightest per-link fair share, degraded by loss processes.
			rate := senderCapBps
			goodFrac := 1.0
			down := false
			for _, fl := range f.links {
				if n.linkDownLocked(fl.a, fl.b, now) {
					down = true
					break
				}
				u := n.utilizationLocked(fl.link, fl.fwd, now)
				usableWire := fl.capacity * (1 - u) / float64(shares[fl.key])
				if r := usableWire / wirePerPayload; r < rate {
					rate = r
				}
				if fl.link.BaseLoss > 0 {
					goodFrac *= 1 - fl.link.BaseLoss
				}
			}
			if down {
				continue
			}
			// Congestion episodes at any traversed AS thin the goodput
			// (the elastic flow retransmits what the episode drops).
			for _, ep := range n.episodes {
				if !ep.Active(now) {
					continue
				}
				for _, h := range f.hops {
					if ep.IA == h.IA {
						goodFrac *= 1 - ep.DropProb
						break
					}
				}
			}
			rate *= goodFrac
			// Endpoint delivery soft cap, as in BandwidthTest.
			pps := rate / float64(spec.PacketBytes*8)
			rate *= 1 / (1 + (pps/n.opts.RecvSoftPPS)*(pps/n.opts.RecvSoftPPS))

			budget := int64(rate / 8 * fluidStep.Seconds())
			for budget > 0 && f.chunk > 0 {
				take := min(budget, f.chunk)
				f.chunk -= take
				f.bytes += take
				delivered += take
				budget -= take
				if f.chunk == 0 && remaining > 0 {
					f.chunk = min(spec.ChunkBytes, remaining)
					remaining -= f.chunk
					f.chunks++
				}
			}
		}
	}

	dur := time.Duration(steps) * fluidStep
	if dur == 0 {
		dur = fluidStep
	}
	n.engine.AdvanceTo(start + dur)

	res := TransferResult{
		Bytes:      delivered,
		Duration:   dur,
		GoodputBps: float64(delivered) * 8 / dur.Seconds(),
		PerPath:    make([]PathTransfer, len(flows)),
		Stalled:    remaining > 0 || anyInFlight(flows),
	}
	for i, f := range flows {
		res.PerPath[i] = PathTransfer{
			Chunks:      f.chunks,
			Bytes:       f.bytes,
			AchievedBps: float64(f.bytes) * 8 / dur.Seconds(),
		}
	}
	return res, nil
}

func anyInFlight(flows []*flowState) bool {
	for _, f := range flows {
		if f.chunk > 0 {
			return true
		}
	}
	return false
}
