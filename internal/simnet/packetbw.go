package simnet

import (
	"fmt"
	"time"

	"github.com/upin/scionpath/internal/pathmgr"
)

// BandwidthTestPacketLevel runs one direction of a bandwidth test packet by
// packet on the event engine, with explicit byte-limited tail-drop queues
// per link. It is the slow, high-fidelity counterpart of the fluid
// BandwidthTest: paced arrivals drain through each hop's queue at the
// link's residual capacity, and a packet is dropped when it does not fit.
//
// The two models agree in the underloaded regime (validated by tests). At
// deep overload they intentionally differ: the fluid model adds the goodput
// collapse of bursty real-world UDP senders, which smooth per-packet pacing
// does not exhibit — the ablation benchmarks quantify exactly that
// difference.
func (n *Network) BandwidthTestPacketLevel(p *pathmgr.Path, spec FlowSpec) (FlowResult, error) {
	if spec.PacketBytes < 4 {
		return FlowResult{}, fmt.Errorf("simnet: packet size %d below bwtester minimum of 4", spec.PacketBytes)
	}
	if spec.Duration <= 0 || spec.Duration > 10*time.Second {
		return FlowResult{}, fmt.Errorf("simnet: duration %v outside bwtester range (0, 10s]", spec.Duration)
	}
	if spec.TargetBps <= 0 {
		return FlowResult{}, fmt.Errorf("simnet: target bandwidth %v not positive", spec.TargetBps)
	}
	n.mu.Lock()
	defer n.mu.Unlock()

	hops := p.Hops
	if spec.Reverse {
		hops = reverseHops(p.Hops)
	}

	offeredPPS := spec.TargetBps / float64(spec.PacketBytes*8)
	sentPPS := offeredPPS
	if sentPPS > n.opts.SenderPPSCap && !n.opts.DisableSenderCap {
		sentPPS = n.opts.SenderPPSCap
	}
	total := int(sentPPS * spec.Duration.Seconds())
	if total < 1 {
		total = 1
	}
	interval := time.Duration(float64(spec.Duration) / float64(total))
	wireBytes := spec.PacketBytes + n.opts.HeaderBytes

	// Per-link queue state for this flow's traversal: occupancy in bytes
	// and the last drain time. Cross traffic contributes the initial
	// occupancy via the utilisation process.
	type linkState struct {
		occupancy float64
		last      time.Duration
		usable    float64 // bps available to this flow
		limit     float64 // queue byte limit
	}
	states := make([]*linkState, len(hops)-1)
	start := n.engine.Now()
	for i := 0; i+1 < len(hops); i++ {
		l, fwd, capacity, err := n.linkDir(hops[i].IA, hops[i+1].IA)
		if err != nil {
			return FlowResult{}, err
		}
		u := n.utilizationLocked(l, fwd, start)
		states[i] = &linkState{
			occupancy: u * float64(l.QueueBytes),
			last:      start,
			usable:    capacity * (1 - u),
			limit:     float64(l.QueueBytes),
		}
	}

	received := 0
	for k := 0; k < total; k++ {
		now := start + time.Duration(k)*interval
		delivered := true
		for i := 0; i+1 < len(hops); i++ {
			if n.linkDownLocked(hops[i].IA, hops[i+1].IA, now) {
				delivered = false
				break
			}
			dropped := false
			for _, ep := range n.episodes {
				if ep.IA == hops[i].IA && ep.Active(now) {
					if ep.DropProb >= 1 || n.rng.Float64() < ep.DropProb {
						dropped = true
					}
				}
			}
			if dropped {
				delivered = false
				break
			}
			s := states[i]
			// Drain since the last event at the residual rate.
			drained := s.usable / 8 * (now - s.last).Seconds()
			s.occupancy -= drained
			if s.occupancy < 0 {
				s.occupancy = 0
			}
			s.last = now
			// Tail drop: the packet must fit in the queue.
			if s.occupancy+float64(wireBytes) > s.limit {
				delivered = false
				break
			}
			s.occupancy += float64(wireBytes)
		}
		if delivered {
			received++
		}
	}
	n.engine.AdvanceTo(start + spec.Duration)

	res := FlowResult{
		AttemptedBps:    sentPPS * float64(spec.PacketBytes*8),
		AchievedBps:     float64(received) * float64(spec.PacketBytes*8) / spec.Duration.Seconds(),
		PacketsSent:     total,
		PacketsReceived: received,
	}
	if total > 0 {
		res.LossFraction = 1 - float64(received)/float64(total)
	}
	return res, nil
}
