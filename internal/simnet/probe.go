package simnet

import (
	"fmt"
	"time"

	"github.com/upin/scionpath/internal/pathmgr"
)

// ProbeResult is the outcome of one round-trip probe (an SCMP echo).
type ProbeResult struct {
	RTT     time.Duration
	Dropped bool
	// DropHop is the index within the forward (or, offset by path length,
	// return) hop list where the packet died.
	DropHop int
}

// Probe sends one echo-sized packet along the path and back, starting at
// the current simulated time plus offset. It does not advance the clock;
// callers (the SCMP layer) own pacing.
func (n *Network) Probe(p *pathmgr.Path, payloadBytes int, offset time.Duration) ProbeResult {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.probeLocked(p.Hops, payloadBytes, offset)
}

// ProbePartial sends a probe to hop index k of the path and back, the
// primitive behind SCMP traceroute.
func (n *Network) ProbePartial(p *pathmgr.Path, k int, payloadBytes int, offset time.Duration) (ProbeResult, error) {
	if k < 0 || k >= len(p.Hops) {
		return ProbeResult{}, fmt.Errorf("simnet: hop index %d out of range [0,%d)", k, len(p.Hops))
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.probeLocked(p.Hops[:k+1], payloadBytes, offset), nil
}

func (n *Network) probeLocked(hops []pathmgr.Hop, payloadBytes int, offset time.Duration) ProbeResult {
	wire := payloadBytes + n.opts.HeaderBytes
	start := n.engine.Now() + offset
	fwd := n.traverseLocked(hops, wire, start)
	if fwd.dropped {
		return ProbeResult{Dropped: true, DropHop: fwd.dropHop}
	}
	back := n.traverseLocked(reverseHops(hops), wire, start+fwd.delay)
	if back.dropped {
		return ProbeResult{Dropped: true, DropHop: len(hops) + back.dropHop}
	}
	return ProbeResult{RTT: fwd.delay + back.delay}
}

// Schedule exposes the event engine for protocol layers that pace their
// probes (e.g. ping's send interval).
func (n *Network) Schedule(after time.Duration, fn func()) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.engine.ScheduleAfter(after, fn)
}

// RunPending executes all queued events, advancing the simulated clock.
// Callbacks run without the network lock held, so they may call Probe,
// Schedule and the other measurement APIs.
func (n *Network) RunPending() {
	for {
		n.mu.Lock()
		fn, ok := n.engine.Step()
		n.mu.Unlock()
		if !ok {
			return
		}
		fn()
	}
}
