// Package simnet is a deterministic discrete-event network simulator over a
// SCION topology. It stands in for the live SCIONLab data plane: packets
// experience geographic propagation delay, per-AS processing and jitter,
// cross-traffic queueing, tail-drop under overload, and scheduled congestion
// episodes. The SCMP tools (ping, traceroute) and the bwtester are built on
// top of it.
//
//lint:deterministic one seed must yield one event trace — the repo's replay contract
package simnet

import (
	"container/heap"
	"time"
)

// Event is a scheduled callback.
type event struct {
	at  time.Duration
	seq uint64 // tie-breaker preserving schedule order
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine is a minimal discrete-event kernel: schedule callbacks at absolute
// simulated times and run them in order. It is single-goroutine by design;
// determinism matters more than parallel dispatch here.
type Engine struct {
	now time.Duration
	seq uint64
	pq  eventQueue
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() time.Duration { return e.now }

// Schedule registers fn to run at absolute simulated time at. Times in the
// past run immediately on the next Run (clock never goes backwards).
func (e *Engine) Schedule(at time.Duration, fn func()) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	heap.Push(&e.pq, &event{at: at, seq: e.seq, fn: fn})
}

// ScheduleAfter registers fn to run delay after the current time.
func (e *Engine) ScheduleAfter(delay time.Duration, fn func()) {
	e.Schedule(e.now+delay, fn)
}

// Run executes events until the queue is empty and returns the final time.
func (e *Engine) Run() time.Duration {
	for len(e.pq) > 0 {
		ev := heap.Pop(&e.pq).(*event)
		e.now = ev.at
		ev.fn()
	}
	return e.now
}

// RunUntil executes events with at <= deadline, then advances the clock to
// the deadline. Later events stay queued.
func (e *Engine) RunUntil(deadline time.Duration) {
	for len(e.pq) > 0 && e.pq[0].at <= deadline {
		ev := heap.Pop(&e.pq).(*event)
		e.now = ev.at
		ev.fn()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.pq) }

// Step pops the next event, advances the clock to it, and returns its
// callback without running it. ok is false when the queue is empty. It lets
// a caller holding an outer lock release that lock around the callback.
func (e *Engine) Step() (fn func(), ok bool) {
	if len(e.pq) == 0 {
		return nil, false
	}
	ev := heap.Pop(&e.pq).(*event)
	e.now = ev.at
	return ev.fn, true
}

// AdvanceTo moves the clock forward without running events scheduled later.
// It panics if events before t are still pending, which would break
// causality.
//
//lint:ignore hygiene skipping pending events breaks simulation causality; this is a programmer-error guard like Must*
func (e *Engine) AdvanceTo(t time.Duration) {
	if len(e.pq) > 0 && e.pq[0].at < t {
		panic("simnet: AdvanceTo would skip pending events")
	}
	if t > e.now {
		e.now = t
	}
}
