package simnet

import (
	"math"
	"testing"
	"time"
)

// The packet-level and fluid models must agree in the underloaded regime:
// an MTU flow at a few Mbps through tens-of-Mbps links loses (almost)
// nothing under either model.
func TestPacketLevelAgreesWithFluidWhenUnderloaded(t *testing.T) {
	_, c, net := testWorld(t, 80)
	p := magdeburgPath(t, c)
	for _, target := range []float64{1e6, 2e6, 4e6} {
		spec := FlowSpec{Duration: time.Second, PacketBytes: p.MTU, TargetBps: target}
		fluid, err := net.BandwidthTest(p, spec)
		if err != nil {
			t.Fatal(err)
		}
		pkt, err := net.BandwidthTestPacketLevel(p, spec)
		if err != nil {
			t.Fatal(err)
		}
		rel := math.Abs(fluid.AchievedBps-pkt.AchievedBps) / target
		if rel > 0.10 {
			t.Errorf("target %.0f Mbps: fluid %.2f vs packet %.2f Mbps (%.0f%% apart)",
				target/1e6, fluid.AchievedBps/1e6, pkt.AchievedBps/1e6, 100*rel)
		}
		if pkt.LossFraction > 0.05 {
			t.Errorf("target %.0f Mbps: packet-level loss %.2f in underload", target/1e6, pkt.LossFraction)
		}
	}
}

func TestPacketLevelOverloadDrops(t *testing.T) {
	_, c, net := testWorld(t, 81)
	p := magdeburgPath(t, c)
	res, err := net.BandwidthTestPacketLevel(p, FlowSpec{
		Duration: time.Second, PacketBytes: p.MTU, TargetBps: 150e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LossFraction < 0.3 {
		t.Errorf("loss %.2f at 150 Mbps through a ~22 Mbps uplink", res.LossFraction)
	}
	if res.AchievedBps >= res.AttemptedBps {
		t.Error("achieved >= attempted under overload")
	}
	// Tail-drop still forwards roughly the residual capacity.
	if res.AchievedBps < 2e6 {
		t.Errorf("achieved %.1f Mbps: queue model starved completely", res.AchievedBps/1e6)
	}
}

func TestPacketLevelValidation(t *testing.T) {
	_, c, net := testWorld(t, 82)
	p := magdeburgPath(t, c)
	bad := []FlowSpec{
		{Duration: time.Second, PacketBytes: 2, TargetBps: 1e6},
		{Duration: 0, PacketBytes: 64, TargetBps: 1e6},
		{Duration: 11 * time.Second, PacketBytes: 64, TargetBps: 1e6},
		{Duration: time.Second, PacketBytes: 64, TargetBps: 0},
	}
	for _, spec := range bad {
		if _, err := net.BandwidthTestPacketLevel(p, spec); err == nil {
			t.Errorf("spec %+v accepted", spec)
		}
	}
}

func TestPacketLevelAdvancesClockAndRespectsOutage(t *testing.T) {
	_, c, net := testWorld(t, 83)
	p := magdeburgPath(t, c)
	if err := net.ScheduleLinkOutage(LinkOutage{
		A: p.Hops[0].IA, B: p.Hops[1].IA, Start: 0, End: time.Hour,
	}); err != nil {
		t.Fatal(err)
	}
	before := net.Now()
	res, err := net.BandwidthTestPacketLevel(p, FlowSpec{
		Duration: 500 * time.Millisecond, PacketBytes: 1000, TargetBps: 2e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PacketsReceived != 0 {
		t.Errorf("%d packets crossed a downed link", res.PacketsReceived)
	}
	if got := net.Now() - before; got != 500*time.Millisecond {
		t.Errorf("clock advanced %v", got)
	}
}

// magdeburgPath is shared with bandwidth_test.go.
