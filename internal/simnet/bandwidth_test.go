package simnet

import (
	"testing"
	"time"

	"github.com/upin/scionpath/internal/pathmgr"
	"github.com/upin/scionpath/internal/topology"
)

func magdeburgPath(t testing.TB, c *pathmgr.Combiner) *pathmgr.Path {
	t.Helper()
	paths, err := c.Paths(topology.MyAS, topology.MagdeburgAP)
	if err != nil || len(paths) == 0 {
		t.Fatalf("paths to Magdeburg: %v (%d)", err, len(paths))
	}
	return paths[0]
}

func runFlow(t testing.TB, net *Network, p *pathmgr.Path, size int, target float64, reverse bool) FlowResult {
	t.Helper()
	res, err := net.BandwidthTest(p, FlowSpec{
		Duration: 3 * time.Second, PacketBytes: size, TargetBps: target, Reverse: reverse,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// avgFlow averages the achieved bandwidth over several runs to smooth the
// cross-traffic stochasticity, like the paper's repeated iterations.
func avgFlow(t testing.TB, net *Network, p *pathmgr.Path, size int, target float64, reverse bool) float64 {
	t.Helper()
	var sum float64
	const k = 8
	for i := 0; i < k; i++ {
		sum += runFlow(t, net, p, size, target, reverse).AchievedBps
	}
	return sum / k
}

func TestBandwidthValidation(t *testing.T) {
	_, c, net := testWorld(t, 10)
	p := magdeburgPath(t, c)
	bad := []FlowSpec{
		{Duration: 3 * time.Second, PacketBytes: 2, TargetBps: 1e6},   // size < 4
		{Duration: 0, PacketBytes: 64, TargetBps: 1e6},                // no duration
		{Duration: 11 * time.Second, PacketBytes: 64, TargetBps: 1e6}, // > 10s (bwtester cap)
		{Duration: 3 * time.Second, PacketBytes: 64, TargetBps: 0},    // no target
		{Duration: 3 * time.Second, PacketBytes: 64, TargetBps: -5},   // negative
	}
	for _, spec := range bad {
		if _, err := net.BandwidthTest(p, spec); err == nil {
			t.Errorf("spec %+v accepted", spec)
		}
	}
}

func TestBandwidthAdvancesClock(t *testing.T) {
	_, c, net := testWorld(t, 11)
	p := magdeburgPath(t, c)
	before := net.Now()
	runFlow(t, net, p, 1000, 12e6, false)
	if got := net.Now() - before; got != 3*time.Second {
		t.Errorf("clock advanced %v, want 3s", got)
	}
}

func TestBandwidthAt12MbpsNearTarget(t *testing.T) {
	_, c, net := testWorld(t, 12)
	p := magdeburgPath(t, c)
	mtu := p.MTU
	down := avgFlow(t, net, p, mtu, 12e6, false)
	// MTU packets at 12 Mbps fit comfortably: achieved close to target.
	if down < 9e6 || down > 12.1e6 {
		t.Errorf("MTU downstream at 12Mbps achieved %.1f Mbps, want ~12", down/1e6)
	}
}

// Fig 7: at a 12 Mbps target, 64-byte packets achieve less than MTU packets
// ("using smaller packets increases the total packet count, subsequently
// amplifying the overhead of packet headers").
func TestFig7SmallPacketsLoseAt12Mbps(t *testing.T) {
	_, c, net := testWorld(t, 13)
	p := magdeburgPath(t, c)
	for _, reverse := range []bool{false, true} {
		small := avgFlow(t, net, p, 64, 12e6, reverse)
		big := avgFlow(t, net, p, p.MTU, 12e6, reverse)
		if small >= big {
			t.Errorf("reverse=%v: 64B achieved %.1f Mbps >= MTU %.1f Mbps at 12Mbps target",
				reverse, small/1e6, big/1e6)
		}
	}
}

// Fig 8: at a 150 Mbps target the trend reverses; 64-byte packets achieve
// more than MTU packets because the overloaded bottleneck drops MTU traffic
// disproportionately.
func TestFig8SmallPacketsWinAt150Mbps(t *testing.T) {
	_, c, net := testWorld(t, 14)
	p := magdeburgPath(t, c)
	for _, reverse := range []bool{false, true} {
		small := avgFlow(t, net, p, 64, 150e6, reverse)
		big := avgFlow(t, net, p, p.MTU, 150e6, reverse)
		if small <= big {
			t.Errorf("reverse=%v: 64B achieved %.1f Mbps <= MTU %.1f Mbps at 150Mbps target",
				reverse, small/1e6, big/1e6)
		}
	}
}

// §6.2: upstream achieves less than downstream, "in line with the
// internet's inherent asymmetry".
func TestUpstreamBelowDownstream(t *testing.T) {
	_, c, net := testWorld(t, 15)
	p := magdeburgPath(t, c)
	// The asymmetry is visible on the MY_AS access link: the reverse
	// direction of the test is server->client (downstream for the client).
	up := avgFlow(t, net, p, 64, 150e6, false)  // client -> server
	down := avgFlow(t, net, p, 64, 150e6, true) // server -> client
	if up >= down {
		t.Errorf("upstream %.1f Mbps >= downstream %.1f Mbps", up/1e6, down/1e6)
	}
}

func TestBandwidthSenderCap(t *testing.T) {
	_, c, net := testWorld(t, 16)
	p := magdeburgPath(t, c)
	res := runFlow(t, net, p, 64, 150e6, false)
	// 150 Mbps of 64-byte packets would need ~293 kpps; the sender cap
	// keeps the attempted rate far below the target.
	if res.AttemptedBps >= 150e6/2 {
		t.Errorf("attempted %.1f Mbps, want sender-capped far below 150", res.AttemptedBps/1e6)
	}
	if res.AchievedBps > res.AttemptedBps {
		t.Errorf("achieved %.1f > attempted %.1f", res.AchievedBps/1e6, res.AttemptedBps/1e6)
	}
}

func TestBandwidthLossFractionConsistent(t *testing.T) {
	_, c, net := testWorld(t, 17)
	p := magdeburgPath(t, c)
	res := runFlow(t, net, p, p.MTU, 150e6, false)
	if res.LossFraction < 0 || res.LossFraction > 1 {
		t.Fatalf("loss fraction %v out of range", res.LossFraction)
	}
	if res.PacketsReceived > res.PacketsSent {
		t.Errorf("received %d > sent %d", res.PacketsReceived, res.PacketsSent)
	}
	// Deep overload must actually lose packets.
	if res.LossFraction < 0.2 {
		t.Errorf("loss fraction %.2f at 150Mbps MTU, want substantial loss", res.LossFraction)
	}
}

func TestBandwidthEpisodeKillsFlow(t *testing.T) {
	_, c, net := testWorld(t, 18)
	p := magdeburgPath(t, c)
	if err := net.ScheduleEpisode(Episode{
		IA: p.Hops[1].IA, Start: 0, End: time.Hour, DropProb: 1,
	}); err != nil {
		t.Fatal(err)
	}
	res := runFlow(t, net, p, 1000, 12e6, false)
	if res.AchievedBps > 1e3 {
		t.Errorf("achieved %.1f bps through a total outage", res.AchievedBps)
	}
	if res.LossFraction < 0.99 {
		t.Errorf("loss fraction %.2f, want ~1", res.LossFraction)
	}
}

// Property: under no overload, achieved bandwidth is monotone in the target.
func TestBandwidthMonotoneInTargetWhenUnderloaded(t *testing.T) {
	_, c, net := testWorld(t, 19)
	p := magdeburgPath(t, c)
	prev := 0.0
	for _, target := range []float64{1e6, 2e6, 4e6, 8e6} {
		got := avgFlow(t, net, p, p.MTU, target, false)
		if got+0.2e6 < prev {
			t.Errorf("achieved %.2f Mbps at target %.0f dropped below previous %.2f",
				got/1e6, target/1e6, prev/1e6)
		}
		prev = got
	}
}
