package simnet

import (
	"reflect"
	"testing"
	"time"

	"github.com/upin/scionpath/internal/addr"
	"github.com/upin/scionpath/internal/pathmgr"
	"github.com/upin/scionpath/internal/segment"
	"github.com/upin/scionpath/internal/topology"
)

// linkSet is a path's set of directed AS-pair links, for disjointness
// checks independent of the selection package's hashing.
func linkSet(p *pathmgr.Path) map[[2]addr.IA]bool {
	s := map[[2]addr.IA]bool{}
	for i := 0; i+1 < len(p.Hops); i++ {
		s[[2]addr.IA{p.Hops[i].IA, p.Hops[i+1].IA}] = true
	}
	return s
}

// disjointRichWorld generates a multi-parent topology — backbone-capacity
// links everywhere, so the per-flow sender packet-rate cap is the binding
// constraint and FULLY disjoint path pairs genuinely aggregate — and
// returns such a pair.
func disjointRichWorld(t *testing.T, seed int64) (*topology.Topology, *pathmgr.Path, *pathmgr.Path) {
	t.Helper()
	topo, err := topology.Generate(topology.GenerateSpec{
		Seed: seed, ISDs: 2, CoresPerISD: 3, NonCorePerISD: 20,
		MaxChildren: 4, CoreDegree: 3, MultiParentProb: 0.6,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := segment.Discover(topo, segment.Options{})
	c := pathmgr.NewCombiner(topo, reg)
	ases := topo.ASes()
	for _, src := range ases {
		for _, dst := range ases {
			if src.IA == dst.IA {
				continue
			}
			paths, err := c.Paths(src.IA, dst.IA)
			if err != nil {
				continue
			}
			for i := 0; i < len(paths); i++ {
				sa := linkSet(paths[i])
				for j := i + 1; j < len(paths); j++ {
					shared := false
					for l := range linkSet(paths[j]) {
						if sa[l] {
							shared = true
							break
						}
					}
					if !shared {
						return topo, paths[i], paths[j]
					}
				}
			}
		}
	}
	t.Fatal("generated world offers no fully link-disjoint pair")
	return nil, nil, nil
}

func runTransfer(t *testing.T, seed int64, topo *topology.Topology, paths []*pathmgr.Path, spec TransferSpec) TransferResult {
	t.Helper()
	net := New(topo, Options{Seed: seed})
	res, err := net.SplitTransfer(paths, spec)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSplitTransferValidation(t *testing.T) {
	_, c, net := testWorld(t, 1)
	p := magdeburgPath(t, c)
	if _, err := net.SplitTransfer(nil, TransferSpec{TotalBytes: 1 << 20}); err == nil {
		t.Error("empty path set accepted")
	}
	if _, err := net.SplitTransfer([]*pathmgr.Path{p}, TransferSpec{}); err == nil {
		t.Error("zero TotalBytes accepted")
	}
	if _, err := net.SplitTransfer([]*pathmgr.Path{p}, TransferSpec{TotalBytes: -5}); err == nil {
		t.Error("negative TotalBytes accepted")
	}
	stub := &pathmgr.Path{Hops: []pathmgr.Hop{{IA: topology.MyAS}}}
	if _, err := net.SplitTransfer([]*pathmgr.Path{stub}, TransferSpec{TotalBytes: 1 << 20}); err == nil {
		t.Error("single-hop path accepted")
	}
}

func TestSplitTransferAccounting(t *testing.T) {
	_, c, net := testWorld(t, 2)
	p := magdeburgPath(t, c)
	const total = 5 << 20
	const chunk = 256 << 10
	before := net.Now()
	res, err := net.SplitTransfer([]*pathmgr.Path{p}, TransferSpec{TotalBytes: total, ChunkBytes: chunk})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stalled {
		t.Fatalf("5 MiB transfer stalled: %+v", res)
	}
	if res.Bytes != total {
		t.Fatalf("delivered %d bytes, want %d", res.Bytes, total)
	}
	var sumBytes int64
	var sumChunks int
	for _, pp := range res.PerPath {
		sumBytes += pp.Bytes
		sumChunks += pp.Chunks
	}
	if sumBytes != total {
		t.Fatalf("per-path bytes sum %d != total %d", sumBytes, total)
	}
	if want := (total + chunk - 1) / chunk; sumChunks != want {
		t.Fatalf("chunk count %d, want %d", sumChunks, want)
	}
	if res.Duration <= 0 || res.Duration%fluidStep != 0 {
		t.Fatalf("duration %v not a positive multiple of the fluid step", res.Duration)
	}
	if got := float64(res.Bytes) * 8 / res.Duration.Seconds(); got != res.GoodputBps {
		t.Fatalf("goodput %v inconsistent with bytes/duration %v", res.GoodputBps, got)
	}
	if net.Now() != before+res.Duration {
		t.Fatalf("clock advanced by %v, want %v", net.Now()-before, res.Duration)
	}
}

// TestSplitTransferDisjointAggregates is the point of the workload: on a
// disjoint-rich world, a fully link-disjoint pair decisively beats either
// of its paths alone, because the flows occupy independent bottlenecks
// (here, their per-flow sender packet-rate caps).
func TestSplitTransferDisjointAggregates(t *testing.T) {
	topo, a, b := disjointRichWorld(t, 3)
	spec := TransferSpec{TotalBytes: 200 << 20}
	single := runTransfer(t, 3, topo, []*pathmgr.Path{a}, spec)
	other := runTransfer(t, 3, topo, []*pathmgr.Path{b}, spec)
	both := runTransfer(t, 3, topo, []*pathmgr.Path{a, b}, spec)
	best := max(single.GoodputBps, other.GoodputBps)
	if both.GoodputBps < best*1.5 {
		t.Fatalf("disjoint pair did not aggregate: single %.0f / %.0f, pair %.0f",
			single.GoodputBps, other.GoodputBps, both.GoodputBps)
	}
	if both.PerPath[0].Bytes == 0 || both.PerPath[1].Bytes == 0 {
		t.Fatalf("a disjoint flow sat idle: %+v", both.PerPath)
	}
}

// TestSplitTransferSharedBottleneck pins the other side: two flows over
// the SAME path split its fair share, so the pair cannot meaningfully beat
// the single flow. On the default world even interior-disjoint pairs sit
// in this regime — the single-homed access downlink caps the aggregate —
// which is exactly why the aggregation test above needs a generated world.
func TestSplitTransferSharedBottleneck(t *testing.T) {
	topo, c, _ := testWorld(t, 4)
	p := magdeburgPath(t, c)
	spec := TransferSpec{TotalBytes: 20 << 20}
	single := runTransfer(t, 4, topo, []*pathmgr.Path{p}, spec)
	pair := runTransfer(t, 4, topo, []*pathmgr.Path{p, p}, spec)
	if pair.GoodputBps > single.GoodputBps*1.15 {
		t.Fatalf("fully-shared pair should not aggregate: single %.0f, pair %.0f",
			single.GoodputBps, pair.GoodputBps)
	}
}

func TestSplitTransferDeterministic(t *testing.T) {
	topo, a, b := disjointRichWorld(t, 5)
	spec := TransferSpec{TotalBytes: 8 << 20}
	r1 := runTransfer(t, 5, topo, []*pathmgr.Path{a, b}, spec)
	r2 := runTransfer(t, 5, topo, []*pathmgr.Path{a, b}, spec)
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("same seed, different results:\n%+v\n%+v", r1, r2)
	}
}

func TestSplitTransferStallsAtMaxDuration(t *testing.T) {
	topo, c, _ := testWorld(t, 6)
	p := magdeburgPath(t, c)
	res := runTransfer(t, 6, topo, []*pathmgr.Path{p}, TransferSpec{
		TotalBytes:  1 << 40, // a tebibyte will not finish in 300ms
		MaxDuration: 300 * time.Millisecond,
	})
	if !res.Stalled {
		t.Fatalf("impossible transfer not marked stalled: %+v", res)
	}
	if res.Duration != 300*time.Millisecond {
		t.Fatalf("stalled duration %v, want the 300ms cap", res.Duration)
	}
	if res.Bytes <= 0 || res.Bytes >= 1<<40 {
		t.Fatalf("stalled transfer delivered %d bytes", res.Bytes)
	}
}
