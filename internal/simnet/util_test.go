package simnet

import (
	"testing"
	"time"

	"github.com/upin/scionpath/internal/topology"
)

// The cross-traffic utilisation process must stay within its clamp bounds
// and revert toward the configured mean over long horizons.
func TestUtilizationProcessBoundsAndReversion(t *testing.T) {
	topo := topology.DefaultWorld()
	net := New(topo, Options{Seed: 90, UtilMean: 0.30, UtilSigma: 0.08})
	l := topo.LinkBetween(topology.ETHZAP, topology.MyAS)
	if l == nil {
		t.Fatal("access link missing")
	}
	var sum float64
	n := 0
	for i := 0; i < 2000; i++ {
		u := net.utilizationLocked(l, true, time.Duration(i)*time.Second)
		if u < 0.02 || u > 0.75 {
			t.Fatalf("utilisation %v escaped the clamp", u)
		}
		sum += u
		n++
	}
	mean := sum / float64(n)
	if mean < 0.15 || mean > 0.45 {
		t.Errorf("long-run mean utilisation %.3f far from configured 0.30", mean)
	}
}

// Two directions of the same link evolve independently.
func TestUtilizationPerDirection(t *testing.T) {
	topo := topology.DefaultWorld()
	net := New(topo, Options{Seed: 91})
	l := topo.LinkBetween(topology.ETHZAP, topology.MyAS)
	same := 0
	for i := 0; i < 50; i++ {
		at := time.Duration(i) * 10 * time.Second
		if net.utilizationLocked(l, true, at) == net.utilizationLocked(l, false, at) {
			same++
		}
	}
	if same > 5 {
		t.Errorf("forward/reverse utilisation identical %d/50 times", same)
	}
}

// The process is deterministic per seed.
func TestUtilizationDeterministic(t *testing.T) {
	topo := topology.DefaultWorld()
	a := New(topo, Options{Seed: 92})
	b := New(topo, Options{Seed: 92})
	l := topo.LinkBetween(topology.ETHZAP, topology.MyAS)
	for i := 0; i < 100; i++ {
		at := time.Duration(i) * time.Second
		if a.utilizationLocked(l, true, at) != b.utilizationLocked(l, true, at) {
			t.Fatal("utilisation differs across equal seeds")
		}
	}
}
