package simnet

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"github.com/upin/scionpath/internal/addr"
	"github.com/upin/scionpath/internal/pathmgr"
	"github.com/upin/scionpath/internal/topology"
)

// Options tunes the physical model. Zero values select defaults calibrated
// for SCIONLab-like behaviour (small VMs, software forwarding).
type Options struct {
	// Seed drives all randomness; runs are reproducible per seed.
	Seed int64
	// HeaderBytes is the per-packet SCION/UDP overhead on the wire.
	HeaderBytes int
	// SenderPPSCap is the maximum packet rate an endpoint can generate
	// (syscall-bound userspace sender).
	SenderPPSCap float64
	// RecvSoftPPS is the packet rate at which endpoint delivery starts to
	// degrade (dispatcher overhead); delivery fraction is
	// 1/(1+(pps/RecvSoftPPS)^2).
	RecvSoftPPS float64
	// CollapseBeta controls goodput collapse under sustained UDP overload:
	// accepted = usable/(1+beta*(x-1)) for offered/usable = x > 1. Larger
	// beta means overload wastes more of the bottleneck (queue thrash).
	CollapseBeta float64
	// UtilMean and UtilSigma shape the cross-traffic utilisation process.
	UtilMean  float64
	UtilSigma float64

	// Ablation switches (model-necessity experiments; see the ablation
	// benchmarks). Each removes one mechanism from the physical model.
	DisableJitter    bool // per-AS latency jitter off
	DisableCollapse  bool // overload goodput collapse off (proportional drop)
	DisableSenderCap bool // endpoint packet-rate limit off
}

func (o Options) withDefaults() Options {
	if o.HeaderBytes == 0 {
		o.HeaderBytes = 88
	}
	if o.SenderPPSCap == 0 {
		o.SenderPPSCap = 30000
	}
	if o.RecvSoftPPS == 0 {
		o.RecvSoftPPS = 80000
	}
	if o.CollapseBeta == 0 {
		o.CollapseBeta = 0.7
	}
	if o.UtilMean == 0 {
		o.UtilMean = 0.30
	}
	if o.UtilSigma == 0 {
		o.UtilSigma = 0.08
	}
	return o
}

// Episode is a scheduled congestion event: while active, every packet
// traversing AS IA is dropped with probability DropProb. Fig 9's 100%-loss
// paths are produced by an episode with DropProb 1 on a shared transit node.
type Episode struct {
	IA       addr.IA
	Start    time.Duration
	End      time.Duration
	DropProb float64
}

// Active reports whether the episode covers simulated time t.
func (ep Episode) Active(t time.Duration) bool { return t >= ep.Start && t < ep.End }

// dirKey identifies a directed traversal of a link.
type dirKey struct {
	link *topology.Link
	fwd  bool // true when traversing A->B
}

// utilState is the cross-traffic utilisation of one link direction, evolved
// lazily as a mean-reverting random walk.
type utilState struct {
	u    float64
	last time.Duration
}

// Network simulates the data plane over a topology. topo and opts are
// immutable after New; mu guards the mutable simulation state below it.
type Network struct {
	topo *topology.Topology
	opts Options

	mu       sync.Mutex
	rng      *rand.Rand
	engine   *Engine
	episodes []Episode
	outages  []LinkOutage
	util     map[dirKey]*utilState
}

// New creates a simulator over the topology.
func New(topo *topology.Topology, opts Options) *Network {
	opts = opts.withDefaults()
	return &Network{
		topo:   topo,
		opts:   opts,
		rng:    rand.New(rand.NewSource(opts.Seed)),
		engine: NewEngine(),
		util:   make(map[dirKey]*utilState),
	}
}

// Seed returns the seed driving this world's randomness (opts are immutable
// after New, so no lock is needed).
func (n *Network) Seed() int64 { return n.opts.Seed }

// Fork returns an independent simulation world over the same immutable
// topology and physical-model options, but with its own event engine (clock
// at zero), its own rng stream driven by seed, and fresh cross-traffic
// state. Scheduled congestion episodes and link outages are copied, so a
// fork sees the same scheduled network weather at a given simulated time.
// Forks are how the campaign engine gives each measurement cell a private,
// deterministic world: a fork never shares mutable state with its parent,
// so forks are safe to drive from concurrent goroutines.
func (n *Network) Fork(seed int64) *Network {
	n.mu.Lock()
	defer n.mu.Unlock()
	opts := n.opts
	opts.Seed = seed
	return &Network{
		topo:     n.topo,
		opts:     opts,
		rng:      rand.New(rand.NewSource(seed)),
		engine:   NewEngine(),
		episodes: append([]Episode(nil), n.episodes...),
		outages:  append([]LinkOutage(nil), n.outages...),
		util:     make(map[dirKey]*utilState),
	}
}

// Now returns the simulated clock.
func (n *Network) Now() time.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.engine.Now()
}

// Advance moves the simulated clock forward by d (idle time between
// measurements).
func (n *Network) Advance(d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.engine.AdvanceTo(n.engine.Now() + d)
}

// ScheduleEpisode registers a congestion episode.
func (n *Network) ScheduleEpisode(ep Episode) error {
	if ep.End <= ep.Start {
		return fmt.Errorf("simnet: episode end %v <= start %v", ep.End, ep.Start)
	}
	if ep.DropProb < 0 || ep.DropProb > 1 {
		return fmt.Errorf("simnet: episode drop probability %v out of [0,1]", ep.DropProb)
	}
	if n.topo.AS(ep.IA) == nil {
		return fmt.Errorf("simnet: episode on unknown AS %s", ep.IA)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.episodes = append(n.episodes, ep)
	return nil
}

// episodeDropLocked samples whether a packet at AS ia at time t is dropped
// by an active congestion episode. Callers hold n.mu.
func (n *Network) episodeDropLocked(ia addr.IA, t time.Duration) bool {
	for _, ep := range n.episodes {
		if ep.IA == ia && ep.Active(t) {
			if ep.DropProb >= 1 || n.rng.Float64() < ep.DropProb {
				return true
			}
		}
	}
	return false
}

// utilizationLocked returns the cross-traffic utilisation of a link
// direction at time t, evolving the mean-reverting walk since the last
// sample. Callers hold n.mu (the walk state and rng are guarded).
func (n *Network) utilizationLocked(l *topology.Link, fwd bool, t time.Duration) float64 {
	k := dirKey{link: l, fwd: fwd}
	s := n.util[k]
	if s == nil {
		s = &utilState{u: n.opts.UtilMean + n.opts.UtilSigma*n.rng.NormFloat64(), last: t}
		s.u = clampUtil(s.u)
		n.util[k] = s
		return s.u
	}
	dt := (t - s.last).Seconds()
	if dt > 0 {
		// Mean reversion with horizon ~30s plus diffusion.
		alpha := 1 - math.Exp(-dt/30)
		s.u += alpha * (n.opts.UtilMean - s.u)
		s.u += n.opts.UtilSigma * math.Sqrt(math.Min(dt, 30)/30) * n.rng.NormFloat64()
		s.u = clampUtil(s.u)
		s.last = t
	}
	return s.u
}

func clampUtil(u float64) float64 {
	if u < 0.02 {
		return 0.02
	}
	if u > 0.75 {
		return 0.75
	}
	return u
}

// linkDir returns the traversal attributes of the path step from hop a to
// hop b: the link, whether it is the A->B direction, and its capacity.
func (n *Network) linkDir(a, b addr.IA) (*topology.Link, bool, float64, error) {
	l := n.topo.LinkBetween(a, b)
	if l == nil {
		return nil, false, 0, fmt.Errorf("simnet: no link %s--%s", a, b)
	}
	if l.A == a {
		return l, true, l.CapacityAtoB, nil
	}
	return l, false, l.CapacityBtoA, nil
}

// traverseResult is the outcome of sending one packet along a hop list.
type traverseResult struct {
	delay   time.Duration
	dropped bool
	dropHop int // index of the AS where the packet died (when dropped)
}

// traverseLocked sends one packet of wireBytes along the hops starting at
// time t. hops must be in travel direction (the reverse direction of a path
// is its reversed hop list). Callers hold n.mu.
func (n *Network) traverseLocked(hops []pathmgr.Hop, wireBytes int, t time.Duration) traverseResult {
	var delay time.Duration
	for i, h := range hops {
		as := n.topo.AS(h.IA)
		if as == nil {
			return traverseResult{dropped: true, dropHop: i}
		}
		now := t + delay
		if n.episodeDropLocked(h.IA, now) {
			return traverseResult{delay: delay, dropped: true, dropHop: i}
		}
		delay += as.Processing
		if as.JitterScale > 0 && !n.opts.DisableJitter {
			delay += time.Duration(n.rng.ExpFloat64() * float64(as.JitterScale))
		}
		if i+1 >= len(hops) {
			break
		}
		l, fwd, capacity, err := n.linkDir(h.IA, hops[i+1].IA)
		if err != nil {
			return traverseResult{delay: delay, dropped: true, dropHop: i}
		}
		if n.linkDownLocked(h.IA, hops[i+1].IA, now) {
			return traverseResult{delay: delay, dropped: true, dropHop: i}
		}
		// Oversized packets are dropped at the first link they do not fit
		// (SCION has no in-network fragmentation).
		if wireBytes > l.MTU+n.opts.HeaderBytes {
			return traverseResult{delay: delay, dropped: true, dropHop: i}
		}
		if l.BaseLoss > 0 && n.rng.Float64() < l.BaseLoss {
			return traverseResult{delay: delay, dropped: true, dropHop: i}
		}
		u := n.utilizationLocked(l, fwd, now)
		// Serialization of this packet plus expected queueing behind
		// cross-traffic occupancy.
		ser := time.Duration(float64(wireBytes*8) / capacity * float64(time.Second))
		queued := time.Duration(u * float64(l.QueueBytes) * 8 / capacity * float64(time.Second))
		// Queueing varies packet to packet; scale by a uniform draw.
		delay += ser + time.Duration(n.rng.Float64()*float64(queued))
		delay += n.topo.Delay(l)
	}
	return traverseResult{delay: delay}
}

// reverseHops returns the hop list for the return direction.
func reverseHops(hops []pathmgr.Hop) []pathmgr.Hop {
	out := make([]pathmgr.Hop, len(hops))
	for i, h := range hops {
		out[len(hops)-1-i] = pathmgr.Hop{IA: h.IA, In: h.Out, Out: h.In}
	}
	return out
}
