package auth

import (
	"fmt"
	"time"

	"github.com/upin/scionpath/internal/addr"
	"github.com/upin/scionpath/internal/docdb"
)

// Permission is a database capability.
type Permission string

// The permissions of §4.1.4: "Only authorized users, following an
// authentication process, should be granted these privileges" to "store,
// read and modify data".
const (
	PermRead   Permission = "read"
	PermWrite  Permission = "write"
	PermModify Permission = "modify"
)

// Grant is a signed capability: the database owner grants a subject a
// permission on one collection until an expiry.
type Grant struct {
	Subject    addr.IA    `json:"subject"`
	Collection string     `json:"collection"`
	Permission Permission `json:"permission"`
	NotAfter   time.Time  `json:"not_after"`
	Signature  []byte     `json:"signature"`
}

func (g *Grant) payload() []byte {
	return []byte(fmt.Sprintf("grant|%s|%s|%s|%d",
		g.Subject, g.Collection, g.Permission, g.NotAfter.UnixNano()))
}

// Owner controls access to a database.
type Owner struct {
	key KeyPair
}

// NewOwner creates a database owner identity.
func NewOwner() (*Owner, error) {
	key, err := GenerateKeyPair()
	if err != nil {
		return nil, err
	}
	return &Owner{key: key}, nil
}

// Grant issues a capability valid for `validity` past the simulation epoch.
func (o *Owner) Grant(subject addr.IA, collection string, perm Permission, validity time.Duration) *Grant {
	g := &Grant{
		Subject:    subject,
		Collection: collection,
		Permission: perm,
		NotAfter:   time.Unix(0, 0).Add(validity),
	}
	g.Signature = o.key.Sign(g.payload())
	return g
}

// verifyGrant checks a grant for a specific access at simulated time now.
func (o *Owner) verifyGrant(g *Grant, subject addr.IA, collection string, perm Permission, now time.Duration) error {
	if g == nil {
		return fmt.Errorf("auth: no grant presented")
	}
	if g.Subject != subject {
		return fmt.Errorf("auth: grant is for %s, presented by %s", g.Subject, subject)
	}
	if g.Collection != collection {
		return fmt.Errorf("auth: grant covers collection %q, not %q", g.Collection, collection)
	}
	if g.Permission != perm {
		return fmt.Errorf("auth: grant permits %q, not %q", g.Permission, perm)
	}
	if time.Unix(0, 0).Add(now).After(g.NotAfter) {
		return fmt.Errorf("auth: grant for %s expired", g.Subject)
	}
	if !g.verify(o.key.Public) {
		return fmt.Errorf("auth: grant signature invalid")
	}
	return nil
}

func (g *Grant) verify(pub []byte) bool {
	return len(pub) == 32 && verifySig(pub, g.payload(), g.Signature)
}

// GuardedDB wraps a document database with access control and statistics
// authentication: inserts into guarded collections require a write grant
// and a valid document signature, exactly the §4.2.2 design ("the usage of
// public key certificates to get write access to the DB").
type GuardedDB struct {
	db    *docdb.DB
	owner *Owner
	trc   map[addr.ISD]*TRC
	certs map[addr.IA]*Certificate
	// guarded marks collections requiring authentication.
	guarded map[string]bool
}

// NewGuardedDB wraps db. TRCs provide the certificate trust roots.
func NewGuardedDB(db *docdb.DB, owner *Owner, trcs []*TRC) *GuardedDB {
	g := &GuardedDB{
		db:      db,
		owner:   owner,
		trc:     map[addr.ISD]*TRC{},
		certs:   map[addr.IA]*Certificate{},
		guarded: map[string]bool{},
	}
	for _, t := range trcs {
		g.trc[t.ISD] = t
	}
	return g
}

// Guard marks a collection as requiring authenticated writes.
func (g *GuardedDB) Guard(collection string) { g.guarded[collection] = true }

// Register stores a member certificate for later verification.
func (g *GuardedDB) Register(cert *Certificate) { g.certs[cert.Subject] = cert }

// InsertMany performs an authenticated batch insert: the caller presents
// its identity, its grant, and documents it has signed.
func (g *GuardedDB) InsertMany(collection string, caller addr.IA, grant *Grant, docs []docdb.Document, now time.Duration) error {
	if g.guarded[collection] {
		if err := g.owner.verifyGrant(grant, caller, collection, PermWrite, now); err != nil {
			return err
		}
		cert := g.certs[caller]
		if cert == nil {
			return fmt.Errorf("auth: no registered certificate for %s", caller)
		}
		trc := g.trc[caller.ISD]
		if trc == nil {
			return fmt.Errorf("auth: no trust root for ISD %d", caller.ISD)
		}
		for _, d := range docs {
			if err := VerifyDocument(d, cert, trc, now); err != nil {
				return err
			}
		}
	}
	return g.db.Collection(collection).InsertMany(docs)
}

// DB exposes the wrapped database for reads.
func (g *GuardedDB) DB() *docdb.DB { return g.db }
