package auth_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/upin/scionpath/internal/auth"
	"github.com/upin/scionpath/internal/docdb"
	"github.com/upin/scionpath/internal/measure"
	"github.com/upin/scionpath/internal/sciond"
	"github.com/upin/scionpath/internal/simnet"
	"github.com/upin/scionpath/internal/topology"
)

// TestSignedCampaign wires the full §4.2.2 design: the measurement suite
// signs every stats document with MY_AS's certified key, and every stored
// document verifies against the ISD-17 trust root afterwards.
func TestSignedCampaign(t *testing.T) {
	topo := topology.DefaultWorld()
	net := simnet.New(topo, simnet.Options{Seed: 40})
	daemon, err := sciond.New(topo, net, topology.MyAS)
	if err != nil {
		t.Fatal(err)
	}
	db := docdb.MustOpen()
	if err := measure.SeedServers(db, topo); err != nil {
		t.Fatal(err)
	}

	// Trust setup: the ISD-17 core certifies MY_AS (§3.1).
	trc, err := auth.NewTRC(topo.CoreASes(17)[0].IA)
	if err != nil {
		t.Fatal(err)
	}
	key, err := auth.GenerateKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	cert, err := trc.Issue(topology.MyAS, key.Public, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}

	suite := &measure.Suite{
		DB:     db,
		Daemon: daemon,
		SignStats: func(d docdb.Document) error {
			return auth.SignDocument(d, topology.MyAS, key)
		},
	}
	rep, err := suite.Run(context.Background(), measure.RunOpts{
		Iterations: 1, ServerIDs: []int{1},
		PingCount: 3, PingInterval: 5 * time.Millisecond, SkipBandwidth: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.StatsStored == 0 {
		t.Fatal("nothing stored")
	}

	now := net.Now()
	verified := 0
	for _, d := range db.Collection(measure.ColStats).Find(docdb.Query{}) {
		if err := auth.VerifyDocument(d, cert, trc, now); err != nil {
			t.Errorf("stored stat %s fails verification: %v", d.ID(), err)
			continue
		}
		verified++
	}
	if verified != rep.StatsStored {
		t.Errorf("verified %d of %d stored documents", verified, rep.StatsStored)
	}
}

// TestSignedCampaignSignerFailureAborts ensures a failing signer aborts the
// run before anything unauthenticated is stored.
func TestSignedCampaignSignerFailureAborts(t *testing.T) {
	topo := topology.DefaultWorld()
	net := simnet.New(topo, simnet.Options{Seed: 41})
	daemon, err := sciond.New(topo, net, topology.MyAS)
	if err != nil {
		t.Fatal(err)
	}
	db := docdb.MustOpen()
	if err := measure.SeedServers(db, topo); err != nil {
		t.Fatal(err)
	}
	suite := &measure.Suite{
		DB:        db,
		Daemon:    daemon,
		SignStats: func(docdb.Document) error { return errors.New("hsm offline") },
	}
	if _, err := suite.Run(context.Background(), measure.RunOpts{
		Iterations: 1, ServerIDs: []int{1},
		PingCount: 2, PingInterval: 2 * time.Millisecond, SkipBandwidth: true,
	}); err == nil {
		t.Fatal("signer failure not surfaced")
	}
	if db.Collection(measure.ColStats).Count() != 0 {
		t.Error("unauthenticated stats stored despite signer failure")
	}
}
