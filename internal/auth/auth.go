// Package auth implements the security design of the paper's §4.1.4 and
// §4.2.2 — the parts the authors describe but leave unimplemented
// ("many solutions have been designed, though some of them are not
// implemented yet"):
//
//   - per-AS key pairs certified by the core AS of their ISD, mirroring
//     §3.1 ("Each AS is assigned ... a public/private key pair. This key
//     pair is certified through the issuance of a public key certificate");
//   - statistics authentication and integrity: measurement documents are
//     signed by the producing AS and verified before they enter the
//     database, preventing "fake performances injection that may alter
//     analysis and provide misleading results";
//   - database access management: write access requires a grant signed by
//     the database owner.
//
// Everything is built on crypto/ed25519 from the standard library.
package auth

import (
	"crypto/ed25519"
	"crypto/rand"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"time"

	"github.com/upin/scionpath/internal/addr"
	"github.com/upin/scionpath/internal/docdb"
)

// KeyPair is an AS's signing identity.
type KeyPair struct {
	Public  ed25519.PublicKey
	private ed25519.PrivateKey
}

// GenerateKeyPair creates a fresh ed25519 key pair.
func GenerateKeyPair() (KeyPair, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return KeyPair{}, fmt.Errorf("auth: generate key: %w", err)
	}
	return KeyPair{Public: pub, private: priv}, nil
}

// Sign signs a message with the private key.
func (k KeyPair) Sign(msg []byte) []byte { return ed25519.Sign(k.private, msg) }

// Certificate binds an AS identity to a public key, signed by the issuing
// core AS of its ISD (the "root of trust inside the ISD", §3.1).
type Certificate struct {
	Subject   addr.IA   `json:"subject"`
	PublicKey []byte    `json:"public_key"`
	Issuer    addr.IA   `json:"issuer"`
	NotAfter  time.Time `json:"not_after"`
	Signature []byte    `json:"signature"`
}

// payload returns the signed portion of the certificate.
func (c *Certificate) payload() []byte {
	return []byte(fmt.Sprintf("cert|%s|%s|%s|%d",
		c.Subject, base64.StdEncoding.EncodeToString(c.PublicKey),
		c.Issuer, c.NotAfter.UnixNano()))
}

// TRC is a trust-root configuration: the core AS key of one ISD. SCION's
// trust domains keep the trusted computing base small — only the ISD's
// core signs certificates for its members.
type TRC struct {
	ISD  addr.ISD
	Core addr.IA
	Key  KeyPair
}

// NewTRC creates the trust root of an ISD.
func NewTRC(core addr.IA) (*TRC, error) {
	key, err := GenerateKeyPair()
	if err != nil {
		return nil, err
	}
	return &TRC{ISD: core.ISD, Core: core, Key: key}, nil
}

// Issue certifies a subject AS of this ISD.
func (t *TRC) Issue(subject addr.IA, pub ed25519.PublicKey, validity time.Duration) (*Certificate, error) {
	if subject.ISD != t.ISD {
		return nil, fmt.Errorf("auth: subject %s outside ISD %d", subject, t.ISD)
	}
	c := &Certificate{
		Subject:   subject,
		PublicKey: append([]byte(nil), pub...),
		Issuer:    t.Core,
		NotAfter:  time.Unix(0, 0).Add(validity), // simulation epoch + validity
	}
	c.Signature = t.Key.Sign(c.payload())
	return c, nil
}

// Verify checks the certificate against the trust root at simulated time
// now (duration since the simulation epoch).
func (t *TRC) Verify(c *Certificate, now time.Duration) error {
	if c == nil {
		return fmt.Errorf("auth: nil certificate")
	}
	if c.Issuer != t.Core {
		return fmt.Errorf("auth: certificate for %s issued by %s, not trust root %s", c.Subject, c.Issuer, t.Core)
	}
	if time.Unix(0, 0).Add(now).After(c.NotAfter) {
		return fmt.Errorf("auth: certificate for %s expired", c.Subject)
	}
	if !ed25519.Verify(t.Key.Public, c.payload(), c.Signature) {
		return fmt.Errorf("auth: certificate for %s has an invalid signature", c.Subject)
	}
	return nil
}

// Document signing ---------------------------------------------------------

// Signature fields added to signed documents.
const (
	FieldSigner    = "sig_by"
	FieldSignature = "sig"
)

// canonicalBytes produces a canonical encoding of a document with the
// signature fields removed: marshal, re-parse (normalising number types the
// way a JSON store does), marshal again with sorted keys.
func canonicalBytes(doc docdb.Document) ([]byte, error) {
	cp := doc.Clone()
	delete(cp, FieldSigner)
	delete(cp, FieldSignature)
	first, err := json.Marshal(cp)
	if err != nil {
		return nil, fmt.Errorf("auth: canonicalise: %w", err)
	}
	var norm any
	if err := json.Unmarshal(first, &norm); err != nil {
		return nil, fmt.Errorf("auth: canonicalise: %w", err)
	}
	return json.Marshal(norm)
}

// SignDocument adds signer identity and signature to a measurement
// document (statistics authentication, §4.2.2).
func SignDocument(doc docdb.Document, signer addr.IA, key KeyPair) error {
	doc[FieldSigner] = signer.String()
	msg, err := canonicalBytes(doc)
	if err != nil {
		return err
	}
	doc[FieldSignature] = base64.StdEncoding.EncodeToString(key.Sign(msg))
	return nil
}

// VerifyDocument checks a signed document against the signer's
// certificate and the trust root.
func VerifyDocument(doc docdb.Document, cert *Certificate, trc *TRC, now time.Duration) error {
	signer, _ := doc[FieldSigner].(string)
	if signer == "" {
		return fmt.Errorf("auth: document %q is unsigned", doc.ID())
	}
	ia, err := addr.ParseIA(signer)
	if err != nil {
		return fmt.Errorf("auth: document %q: bad signer: %w", doc.ID(), err)
	}
	if err := trc.Verify(cert, now); err != nil {
		return err
	}
	if cert.Subject != ia {
		return fmt.Errorf("auth: document %q signed by %s but certificate is for %s", doc.ID(), ia, cert.Subject)
	}
	sigStr, _ := doc[FieldSignature].(string)
	sig, err := base64.StdEncoding.DecodeString(sigStr)
	if err != nil {
		return fmt.Errorf("auth: document %q: bad signature encoding", doc.ID())
	}
	msg, err := canonicalBytes(doc)
	if err != nil {
		return err
	}
	if !ed25519.Verify(cert.PublicKey, msg, sig) {
		return fmt.Errorf("auth: document %q failed signature verification (tampered?)", doc.ID())
	}
	return nil
}
