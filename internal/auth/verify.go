package auth

import "crypto/ed25519"

// verifySig wraps ed25519.Verify with a defensive length check so corrupt
// grants cannot panic the verifier.
func verifySig(pub, msg, sig []byte) bool {
	if len(pub) != ed25519.PublicKeySize || len(sig) != ed25519.SignatureSize {
		return false
	}
	return ed25519.Verify(ed25519.PublicKey(pub), msg, sig)
}
