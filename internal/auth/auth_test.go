package auth

import (
	"strings"
	"testing"
	"time"

	"github.com/upin/scionpath/internal/addr"
	"github.com/upin/scionpath/internal/docdb"
)

var (
	coreIA   = addr.MustParseIA("17-ffaa:0:1101")
	memberIA = addr.MustParseIA("17-ffaa:1:1")
	otherISD = addr.MustParseIA("16-ffaa:0:1002")
)

func trustSetup(t *testing.T) (*TRC, KeyPair, *Certificate) {
	t.Helper()
	trc, err := NewTRC(coreIA)
	if err != nil {
		t.Fatal(err)
	}
	key, err := GenerateKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	cert, err := trc.Issue(memberIA, key.Public, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	return trc, key, cert
}

func TestCertificateIssueAndVerify(t *testing.T) {
	trc, _, cert := trustSetup(t)
	if err := trc.Verify(cert, time.Hour); err != nil {
		t.Fatal(err)
	}
}

func TestCertificateExpiry(t *testing.T) {
	trc, _, cert := trustSetup(t)
	if err := trc.Verify(cert, 25*time.Hour); err == nil || !strings.Contains(err.Error(), "expired") {
		t.Errorf("expired cert verified: %v", err)
	}
}

func TestCertificateCrossISDRejected(t *testing.T) {
	trc, _, _ := trustSetup(t)
	key, _ := GenerateKeyPair()
	if _, err := trc.Issue(otherISD, key.Public, time.Hour); err == nil {
		t.Error("core issued a certificate outside its ISD")
	}
}

func TestCertificateTamperDetected(t *testing.T) {
	trc, _, cert := trustSetup(t)
	evil := *cert
	evil.Subject = addr.MustParseIA("17-ffaa:1:99")
	if err := trc.Verify(&evil, time.Hour); err == nil {
		t.Error("tampered certificate verified")
	}
	// Wrong issuer.
	other, _ := NewTRC(addr.MustParseIA("16-ffaa:0:1001"))
	if err := other.Verify(cert, time.Hour); err == nil {
		t.Error("certificate verified against the wrong trust root")
	}
	if err := trc.Verify(nil, time.Hour); err == nil {
		t.Error("nil certificate verified")
	}
}

func TestSignAndVerifyDocument(t *testing.T) {
	trc, key, cert := trustSetup(t)
	doc := docdb.Document{"_id": "2_15@100", "loss_pct": 0.0, "avg_latency_ms": 42.5}
	if err := SignDocument(doc, memberIA, key); err != nil {
		t.Fatal(err)
	}
	if err := VerifyDocument(doc, cert, trc, time.Hour); err != nil {
		t.Fatal(err)
	}
}

func TestVerifySurvivesJSONRoundTrip(t *testing.T) {
	// A document stored and re-read from the journal changes int->float64;
	// canonicalisation must make the signature robust to that.
	trc, key, cert := trustSetup(t)
	doc := docdb.Document{"_id": "x", "hops": 6, "loss_pct": 10}
	if err := SignDocument(doc, memberIA, key); err != nil {
		t.Fatal(err)
	}
	// Simulate the round trip.
	roundTripped := docdb.Document{"_id": "x", "hops": 6.0, "loss_pct": 10.0,
		FieldSigner: doc[FieldSigner], FieldSignature: doc[FieldSignature]}
	if err := VerifyDocument(roundTripped, cert, trc, time.Hour); err != nil {
		t.Fatalf("round-tripped document failed verification: %v", err)
	}
}

func TestVerifyDetectsInjection(t *testing.T) {
	trc, key, cert := trustSetup(t)
	doc := docdb.Document{"_id": "2_15@100", "loss_pct": 0.0}
	if err := SignDocument(doc, memberIA, key); err != nil {
		t.Fatal(err)
	}
	// "fake performances injection" (§4.2.2): attacker improves the stats.
	doc["loss_pct"] = 100.0
	if err := VerifyDocument(doc, cert, trc, time.Hour); err == nil {
		t.Error("tampered measurement verified")
	}
}

func TestVerifyRejectsUnsigned(t *testing.T) {
	trc, _, cert := trustSetup(t)
	if err := VerifyDocument(docdb.Document{"_id": "x"}, cert, trc, 0); err == nil {
		t.Error("unsigned document verified")
	}
}

func TestVerifyRejectsWrongSigner(t *testing.T) {
	trc, key, _ := trustSetup(t)
	// Certificate belongs to someone else.
	otherKey, _ := GenerateKeyPair()
	otherCert, err := trc.Issue(addr.MustParseIA("17-ffaa:0:1102"), otherKey.Public, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	doc := docdb.Document{"_id": "x"}
	if err := SignDocument(doc, memberIA, key); err != nil {
		t.Fatal(err)
	}
	if err := VerifyDocument(doc, otherCert, trc, 0); err == nil {
		t.Error("document verified against the wrong certificate")
	}
}

func TestGrantFlow(t *testing.T) {
	owner, err := NewOwner()
	if err != nil {
		t.Fatal(err)
	}
	g := owner.Grant(memberIA, "paths_stats", PermWrite, time.Hour)
	if err := owner.verifyGrant(g, memberIA, "paths_stats", PermWrite, 30*time.Minute); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		f    func() error
	}{
		{"wrong subject", func() error {
			return owner.verifyGrant(g, otherISD, "paths_stats", PermWrite, 0)
		}},
		{"wrong collection", func() error {
			return owner.verifyGrant(g, memberIA, "paths", PermWrite, 0)
		}},
		{"wrong permission", func() error {
			return owner.verifyGrant(g, memberIA, "paths_stats", PermModify, 0)
		}},
		{"expired", func() error {
			return owner.verifyGrant(g, memberIA, "paths_stats", PermWrite, 2*time.Hour)
		}},
		{"nil grant", func() error {
			return owner.verifyGrant(nil, memberIA, "paths_stats", PermWrite, 0)
		}},
	}
	for _, c := range cases {
		if c.f() == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	// Forged grant: signed by a different owner.
	evilOwner, _ := NewOwner()
	forged := evilOwner.Grant(memberIA, "paths_stats", PermWrite, time.Hour)
	if err := owner.verifyGrant(forged, memberIA, "paths_stats", PermWrite, 0); err == nil {
		t.Error("forged grant accepted")
	}
}

func TestGuardedDBEndToEnd(t *testing.T) {
	trc, key, cert := trustSetup(t)
	owner, _ := NewOwner()
	gdb := NewGuardedDB(docdb.MustOpen(), owner, []*TRC{trc})
	gdb.Guard("paths_stats")
	gdb.Register(cert)
	grant := owner.Grant(memberIA, "paths_stats", PermWrite, time.Hour)

	doc := docdb.Document{"_id": "1_1@5", "loss_pct": 0.0}
	if err := SignDocument(doc, memberIA, key); err != nil {
		t.Fatal(err)
	}
	if err := gdb.InsertMany("paths_stats", memberIA, grant, []docdb.Document{doc}, time.Minute); err != nil {
		t.Fatal(err)
	}
	if gdb.DB().Collection("paths_stats").Count() != 1 {
		t.Error("authenticated insert lost")
	}

	// Unsigned document rejected.
	if err := gdb.InsertMany("paths_stats", memberIA, grant, []docdb.Document{{"_id": "x"}}, time.Minute); err == nil {
		t.Error("unsigned insert accepted into guarded collection")
	}
	// No grant rejected.
	doc2 := docdb.Document{"_id": "1_1@6"}
	SignDocument(doc2, memberIA, key)
	if err := gdb.InsertMany("paths_stats", memberIA, nil, []docdb.Document{doc2}, time.Minute); err == nil {
		t.Error("grantless insert accepted")
	}
	// Unknown certificate.
	gdb2 := NewGuardedDB(docdb.MustOpen(), owner, []*TRC{trc})
	gdb2.Guard("paths_stats")
	if err := gdb2.InsertMany("paths_stats", memberIA, grant, []docdb.Document{doc}, time.Minute); err == nil {
		t.Error("insert without registered certificate accepted")
	}
	// Unguarded collections stay open.
	if err := gdb.InsertMany("open", memberIA, nil, []docdb.Document{{"_id": "y"}}, 0); err != nil {
		t.Errorf("unguarded insert rejected: %v", err)
	}
}

func TestGuardedDBMissingTRC(t *testing.T) {
	owner, _ := NewOwner()
	gdb := NewGuardedDB(docdb.MustOpen(), owner, nil)
	gdb.Guard("paths_stats")
	trc, key, cert := trustSetup(t)
	_ = trc
	gdb.Register(cert)
	grant := owner.Grant(memberIA, "paths_stats", PermWrite, time.Hour)
	doc := docdb.Document{"_id": "z"}
	SignDocument(doc, memberIA, key)
	if err := gdb.InsertMany("paths_stats", memberIA, grant, []docdb.Document{doc}, 0); err == nil {
		t.Error("insert accepted without a trust root for the signer's ISD")
	}
}
