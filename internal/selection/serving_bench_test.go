package selection

// Serving benchmarks (BENCH_serving.json): the cached Select against the
// uncached pre-snapshot engine at growing stats history, a contended
// parallel variant, and the incremental-refresh cost, which must scale
// with the size of the new write batch rather than with history. Record
// with:
//
//	go run ./cmd/benchjson -label after -bench BenchmarkServing \
//	    -pkg ./internal/selection -out BENCH_serving.json

import (
	"context"
	"fmt"
	"testing"

	"github.com/upin/scionpath/internal/docdb"
)

// bulkInOrder is insertInOrder for benchmark fixtures: one InsertMany per
// batch instead of one Insert per document.
func (w *statsWriter) bulkInOrder(t testing.TB, n int) {
	t.Helper()
	docs := make([]docdb.Document, 0, n)
	for i := 0; i < n; i++ {
		w.nowMs += int64(w.r.Intn(3))
		pid := w.pathIDs[w.r.Intn(len(w.pathIDs))]
		docs = append(docs, w.doc(pid, w.nowMs))
	}
	if err := w.col.InsertMany(docs); err != nil {
		t.Fatal(err)
	}
	for _, d := range docs {
		w.live = append(w.live, d.ID())
	}
}

func benchWorld(b *testing.B, docs int) (*Engine, *statsWriter, int) {
	b.Helper()
	e, db, ids := collectedWorld(b, 42)
	w := newStatsWriter(b, db, 42)
	w.bulkInOrder(b, docs)
	return e, w, ids[0]
}

var benchSizes = []int{10_000, 100_000}

func BenchmarkServingSelectCached(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("docs=%d", n), func(b *testing.B) {
			e, _, sid := benchWorld(b, n)
			ctx := context.Background()
			if _, err := e.Select(ctx, sid, Request{}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Select(ctx, sid, Request{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkServingSelectCachedParallel(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("docs=%d", n), func(b *testing.B) {
			e, _, sid := benchWorld(b, n)
			ctx := context.Background()
			if _, err := e.Select(ctx, sid, Request{}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := e.Select(ctx, sid, Request{}); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkServingSelectUncached is the pre-snapshot engine: every request
// re-folds the destination's full stats history.
func BenchmarkServingSelectUncached(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("docs=%d", n), func(b *testing.B) {
			e, _, sid := benchWorld(b, n)
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.selectUncached(ctx, sid, Request{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkServingRefreshIncremental measures write-batch-then-select at a
// fixed batch size against different history sizes: the per-iteration cost
// must track the batch, not the history.
func BenchmarkServingRefreshIncremental(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("history=%d", n), func(b *testing.B) {
			e, w, sid := benchWorld(b, n)
			ctx := context.Background()
			if _, err := e.Select(ctx, sid, Request{}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.bulkInOrder(b, 100)
				if _, err := e.Select(ctx, sid, Request{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
