package selection

// Serving benchmarks (BENCH_serving.json): the cached Select against the
// uncached pre-snapshot engine at growing stats history, a contended
// parallel variant, and the incremental-refresh cost, which must scale
// with the size of the new write batch rather than with history. Record
// with:
//
//	go run ./cmd/benchjson -label after -bench BenchmarkServing \
//	    -pkg ./internal/selection -out BENCH_serving.json

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/upin/scionpath/internal/docdb"
	"github.com/upin/scionpath/internal/measure"
	"github.com/upin/scionpath/internal/topology"
)

// bulkInOrder is insertInOrder for benchmark fixtures: one InsertMany per
// batch instead of one Insert per document.
func (w *statsWriter) bulkInOrder(t testing.TB, n int) {
	t.Helper()
	docs := make([]docdb.Document, 0, n)
	for i := 0; i < n; i++ {
		w.nowMs += int64(w.r.Intn(3))
		pid := w.pathIDs[w.r.Intn(len(w.pathIDs))]
		docs = append(docs, w.doc(pid, w.nowMs))
	}
	if err := w.col.InsertMany(docs); err != nil {
		t.Fatal(err)
	}
	for _, d := range docs {
		w.live = append(w.live, d.ID())
	}
}

func benchWorld(b *testing.B, docs int) (*Engine, *statsWriter, int) {
	b.Helper()
	e, db, ids := collectedWorld(b, 42)
	w := newStatsWriter(b, db, 42)
	w.bulkInOrder(b, docs)
	return e, w, ids[0]
}

var benchSizes = []int{10_000, 100_000}

// syntheticCatalogue inserts nPaths synthetic path documents for one
// destination, with sequences walking ASes of the given topology (so geo
// annotation and hop metadata are real), plus statsPer stats documents per
// path. It returns the destination's server id. This is the 10³–10⁴
// candidate regime a single destination reaches on generated worlds, which
// a measured SCIONLab campaign never produces.
func syntheticCatalogue(tb testing.TB, topo *topology.Topology, db *docdb.DB,
	nPaths, statsPer int, seed int64) int {
	tb.Helper()
	if err := measure.SeedServers(db, topo); err != nil {
		tb.Fatal(err)
	}
	srvs, err := measure.Servers(db)
	if err != nil || len(srvs) == 0 {
		tb.Fatalf("no servers (%v)", err)
	}
	sid := srvs[0].ID
	dst := srvs[0].Address.IA
	ases := topo.ASes()
	r := rand.New(rand.NewSource(seed))

	pathDocs := make([]docdb.Document, 0, nPaths)
	statsDocs := make([]docdb.Document, 0, nPaths*statsPer)
	nowMs := int64(1_700_000_000_000)
	for i := 0; i < nPaths; i++ {
		hops := 3 + r.Intn(4)
		parts := make([]string, 0, hops+1)
		isds := map[string]bool{}
		for h := 0; h < hops; h++ {
			ia := ases[r.Intn(len(ases))].IA
			parts = append(parts, ia.String())
			isds[fmt.Sprintf("%d", ia.ISD)] = true
		}
		parts = append(parts, dst.String())
		isds[fmt.Sprintf("%d", dst.ISD)] = true
		isdList := make([]any, 0, len(isds))
		for isd := range isds {
			isdList = append(isdList, isd)
		}
		id := measure.PathID(sid, i)
		pathDocs = append(pathDocs, docdb.Document{
			"_id":              id,
			measure.FServerID:  sid,
			measure.FPathIndex: i,
			measure.FHops:      hops + 1,
			measure.FSequence:  strings.Join(parts, " "),
			measure.FISDs:      isdList,
			measure.FMTU:       1472,
		})
		for s := 0; s < statsPer; s++ {
			nowMs += int64(r.Intn(3))
			statsDocs = append(statsDocs, docdb.Document{
				"_id":               fmt.Sprintf("%s@%d#%d", id, nowMs, s),
				measure.FPathID:     id,
				measure.FServerID:   sid,
				measure.FTimestamp:  nowMs,
				measure.FLoss:       float64(r.Intn(200)) / 10,
				measure.FAvgLatency: 10 + r.Float64()*150,
				measure.FMdev:       r.Float64() * 5,
				measure.FBwUpMTU:    1e6 + r.Float64()*1e8,
				measure.FBwDownMTU:  1e6 + r.Float64()*1e8,
			})
		}
	}
	if err := db.Collection(measure.ColPaths).InsertMany(pathDocs); err != nil {
		tb.Fatal(err)
	}
	if err := db.Collection(measure.ColStats).InsertMany(statsDocs); err != nil {
		tb.Fatal(err)
	}
	return sid
}

// BenchmarkServingSelect profiles one Select at generated-world candidate
// counts: the ases=5000 case serves a destination with 5000 candidate
// paths over a 5000-AS topology (the ROADMAP's unprofiled regime).
func BenchmarkServingSelect(b *testing.B) {
	for _, ases := range []int{1000, 5000} {
		b.Run(fmt.Sprintf("ases=%d", ases), func(b *testing.B) {
			spec := topology.GenerateSpec{
				Seed: int64(ases), ISDs: 20, CoresPerISD: 2, NonCorePerISD: 48,
				MaxChildren: 8, CoreDegree: 4,
			}
			if ases == 5000 {
				spec = topology.GenerateSpec{
					Seed: 5000, ISDs: 25, CoresPerISD: 4, NonCorePerISD: 196,
					MaxChildren: 12, CoreDegree: 4,
				}
			}
			topo, err := topology.Generate(spec)
			if err != nil {
				b.Fatal(err)
			}
			db := docdb.MustOpen()
			sid := syntheticCatalogue(b, topo, db, ases, 3, 7)
			e := New(db, topo)
			ctx := context.Background()
			if _, err := e.Select(ctx, sid, Request{}); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Select(ctx, sid, Request{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkServingSelectCached(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("docs=%d", n), func(b *testing.B) {
			e, _, sid := benchWorld(b, n)
			ctx := context.Background()
			if _, err := e.Select(ctx, sid, Request{}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Select(ctx, sid, Request{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkServingSelectCachedParallel(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("docs=%d", n), func(b *testing.B) {
			e, _, sid := benchWorld(b, n)
			ctx := context.Background()
			if _, err := e.Select(ctx, sid, Request{}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := e.Select(ctx, sid, Request{}); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkServingSelectUncached is the pre-snapshot engine: every request
// re-folds the destination's full stats history.
func BenchmarkServingSelectUncached(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("docs=%d", n), func(b *testing.B) {
			e, _, sid := benchWorld(b, n)
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.selectUncached(ctx, sid, Request{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkServingRefreshIncremental measures write-batch-then-select at a
// fixed batch size against different history sizes: the per-iteration cost
// must track the batch, not the history.
func BenchmarkServingRefreshIncremental(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("history=%d", n), func(b *testing.B) {
			e, w, sid := benchWorld(b, n)
			ctx := context.Background()
			if _, err := e.Select(ctx, sid, Request{}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.bulkInOrder(b, 100)
				if _, err := e.Select(ctx, sid, Request{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
