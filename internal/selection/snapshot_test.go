package selection

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"github.com/upin/scionpath/internal/docdb"
	"github.com/upin/scionpath/internal/measure"
	"github.com/upin/scionpath/internal/sciond"
	"github.com/upin/scionpath/internal/simnet"
	"github.com/upin/scionpath/internal/topology"
)

// collectedWorld builds the default world and collects its paths WITHOUT
// running any measurements, so tests control the stats history directly
// (timestamps included). It returns the engine, the db, and the ids of
// servers that have at least one collected path.
func collectedWorld(t testing.TB, seed int64) (*Engine, *docdb.DB, []int) {
	t.Helper()
	topo := topology.DefaultWorld()
	net := simnet.New(topo, simnet.Options{Seed: seed})
	d, err := sciond.New(topo, net, topology.MyAS)
	if err != nil {
		t.Fatal(err)
	}
	db := docdb.MustOpen()
	if err := measure.SeedServers(db, topo); err != nil {
		t.Fatal(err)
	}
	if _, err := measure.CollectPaths(context.Background(), db, d, measure.CollectOpts{}); err != nil {
		t.Fatal(err)
	}
	srvs, err := measure.Servers(db)
	if err != nil {
		t.Fatal(err)
	}
	var ids []int
	for _, s := range srvs {
		pds, err := measure.PathsForServer(db, s.ID)
		if err != nil {
			t.Fatal(err)
		}
		if len(pds) > 0 {
			ids = append(ids, s.ID)
		}
	}
	if len(ids) == 0 {
		t.Fatal("no server has collected paths")
	}
	return New(db, topo), db, ids
}

// statsWriter synthesises paths_stats documents in the measurement suite's
// shape, with test-controlled timestamps: in-order (the steady-state
// campaign), at the high-water mark (equal-timestamp batches), and
// out-of-order (a resumed parallel campaign backfilling history).
type statsWriter struct {
	col      *docdb.Collection
	pathIDs  []string
	serverOf map[string]int
	r        *rand.Rand
	seq      int
	nowMs    int64
	live     []string // inserted _ids still present (for update/delete)
}

func newStatsWriter(t testing.TB, db *docdb.DB, seed int64) *statsWriter {
	t.Helper()
	pds, err := measure.AllPaths(db)
	if err != nil {
		t.Fatal(err)
	}
	w := &statsWriter{
		col:      db.Collection(measure.ColStats),
		serverOf: make(map[string]int, len(pds)),
		r:        rand.New(rand.NewSource(seed)),
		nowMs:    1_700_000_000_000,
	}
	for _, pd := range pds {
		w.pathIDs = append(w.pathIDs, pd.ID)
		w.serverOf[pd.ID] = pd.ServerID
	}
	return w
}

func (w *statsWriter) doc(pathID string, ts int64) docdb.Document {
	w.seq++
	d := docdb.Document{
		"_id":              fmt.Sprintf("%s@%d#%d", pathID, ts, w.seq),
		measure.FPathID:    pathID,
		measure.FServerID:  w.serverOf[pathID],
		measure.FTimestamp: ts,
		measure.FLoss:      float64(w.r.Intn(200)) / 10,
	}
	if w.r.Intn(10) > 0 { // sometimes no echo replies: latency absent
		d[measure.FAvgLatency] = 10 + w.r.Float64()*150
		d[measure.FMdev] = w.r.Float64() * 5
	}
	if w.r.Intn(8) > 0 {
		d[measure.FBwUpMTU] = 1e6 + w.r.Float64()*1e8
		d[measure.FBwDownMTU] = 1e6 + w.r.Float64()*1e8
	}
	return d
}

func (w *statsWriter) insert(t testing.TB, d docdb.Document) {
	t.Helper()
	if err := w.col.Insert(d); err != nil {
		t.Fatal(err)
	}
	w.live = append(w.live, d.ID())
}

// insertInOrder appends n documents at monotonically non-decreasing
// timestamps; a zero stride exercises the frontier (several documents
// sharing the high-water mark).
func (w *statsWriter) insertInOrder(t testing.TB, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		w.nowMs += int64(w.r.Intn(3)) // 0 → duplicate high-water timestamp
		pid := w.pathIDs[w.r.Intn(len(w.pathIDs))]
		w.insert(t, w.doc(pid, w.nowMs))
	}
}

// insertOutOfOrder backfills n documents strictly below the current
// maximum timestamp, which must force the next refresh to rebuild.
func (w *statsWriter) insertOutOfOrder(t testing.TB, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		ts := w.nowMs - 1 - w.r.Int63n(1000)
		pid := w.pathIDs[w.r.Intn(len(w.pathIDs))]
		w.insert(t, w.doc(pid, ts))
	}
}

func (w *statsWriter) updateRandom(t testing.TB) {
	t.Helper()
	if len(w.live) == 0 {
		return
	}
	id := w.live[w.r.Intn(len(w.live))]
	w.col.Update(docdb.Eq("_id", id), docdb.Document{
		measure.FLoss: float64(w.r.Intn(200)) / 10,
	})
}

func (w *statsWriter) deleteRandom(t testing.TB) {
	t.Helper()
	if len(w.live) == 0 {
		return
	}
	i := w.r.Intn(len(w.live))
	id := w.live[i]
	w.live = append(w.live[:i], w.live[i+1:]...)
	if n := w.col.Delete(docdb.Eq("_id", id)); n != 1 {
		t.Fatalf("deleted %d documents for %s", n, id)
	}
}

// exclusionPool is the set of real identifiers a randomized request can
// exclude, harvested from unconstrained selections.
type exclusionPool struct {
	isds, ases, countries, operators []string
}

func buildPool(t testing.TB, e *Engine, ids []int) exclusionPool {
	t.Helper()
	var p exclusionPool
	seen := map[string]bool{}
	add := func(dst *[]string, kind, v string) {
		if v != "" && !seen[kind+v] {
			seen[kind+v] = true
			*dst = append(*dst, v)
		}
	}
	snap, err := e.snapshotFor(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, sid := range ids {
		for _, agg := range snap.servers[sid] {
			for _, isd := range agg.id.ISDs {
				add(&p.isds, "i", isd)
			}
			for _, h := range agg.hops {
				add(&p.ases, "a", h.ia)
				add(&p.countries, "c", h.country)
				add(&p.operators, "o", h.operator)
			}
		}
	}
	return p
}

func pick(r *rand.Rand, pool []string) []string {
	if len(pool) == 0 || r.Intn(2) == 0 {
		return nil
	}
	return []string{pool[r.Intn(len(pool))]}
}

func randomRequest(r *rand.Rand, p exclusionPool) Request {
	req := Request{
		Objective:        Objective(r.Intn(4)),
		MinSamples:       r.Intn(3),
		ExcludeISDs:      pick(r, p.isds),
		ExcludeASes:      pick(r, p.ases),
		ExcludeCountries: pick(r, p.countries),
		ExcludeOperators: pick(r, p.operators),
	}
	switch r.Intn(4) {
	case 0:
		req.MaxLatencyMs = 40 + r.Float64()*120
	case 1:
		req.MaxLossPct = r.Float64() * 15
	case 2:
		req.MinBandwidthBps = r.Float64() * 5e7
	}
	return req
}

// TestSnapshotOracleRandomized is the correctness oracle: across 1000
// randomized interleavings of in-order writes, out-of-order backfills,
// updates, deletes, and reads, the snapshot-served Select must be
// deep-equal to the uncached engine recomputed from scratch.
func TestSnapshotOracleRandomized(t *testing.T) {
	e, db, ids := collectedWorld(t, 7)
	w := newStatsWriter(t, db, 7)
	w.insertInOrder(t, 10)
	pool := buildPool(t, e, ids)
	r := rand.New(rand.NewSource(77))
	ctx := context.Background()

	shapes := 1000
	if testing.Short() {
		shapes = 100
	}
	for i := 0; i < shapes; i++ {
		switch r.Intn(10) {
		case 0, 1, 2, 3, 4:
			w.insertInOrder(t, 1+r.Intn(4))
		case 5:
			w.insertOutOfOrder(t, 1+r.Intn(2))
		case 6:
			w.updateRandom(t)
		case 7:
			w.deleteRandom(t)
		default: // read-only round: snapshot must already be converged
		}
		sid := ids[r.Intn(len(ids))]
		req := randomRequest(r, pool)
		got, gerr := e.Select(ctx, sid, req)
		want, werr := e.selectUncached(ctx, sid, req)
		if (gerr == nil) != (werr == nil) {
			t.Fatalf("shape %d server %d: cached err %v, uncached err %v", i, sid, gerr, werr)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("shape %d server %d req %+v:\ncached   %+v\nuncached %+v",
				i, sid, req, got, want)
		}
	}
}

// TestSnapshotIncrementalRefresh pins the refresh strategy: in-order
// writes fold incrementally; out-of-order writes, stats rewrites, and
// paths-catalogue changes force a full rebuild.
func TestSnapshotIncrementalRefresh(t *testing.T) {
	e, db, ids := collectedWorld(t, 3)
	w := newStatsWriter(t, db, 3)
	w.insertInOrder(t, 20)
	ctx := context.Background()
	sid := ids[0]

	check := func(stage string, wantRebuilds, wantFolds int64) {
		t.Helper()
		if _, err := e.Select(ctx, sid, Request{}); err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
		if r, f := e.rebuilds.Load(), e.folds.Load(); r != wantRebuilds || f != wantFolds {
			t.Fatalf("%s: rebuilds/folds = %d/%d, want %d/%d", stage, r, f, wantRebuilds, wantFolds)
		}
		got, err := e.Select(ctx, sid, Request{})
		if err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
		want, err := e.selectUncached(ctx, sid, Request{})
		if err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: cached diverged from uncached", stage)
		}
	}

	check("cold start", 1, 0)
	check("fresh re-read", 1, 0) // no data moved: no refresh at all

	w.insertInOrder(t, 5)
	check("in-order batch", 1, 1)
	w.insertInOrder(t, 1) // stride may be 0: high-water duplicate
	check("second batch", 1, 2)

	w.insertOutOfOrder(t, 1)
	check("out-of-order backfill", 2, 2)

	w.updateRandom(t)
	check("stats rewrite", 3, 2)

	w.deleteRandom(t)
	check("stats delete", 4, 2)

	// A paths-catalogue change (re-collection) invalidates identity and
	// geo annotations, not just sums: full rebuild.
	db.Collection(measure.ColPaths).Update(docdb.Eq(measure.FServerID, sid),
		docdb.Document{measure.FStatus: "refreshed"})
	check("paths change", 5, 2)
}

// TestSnapshotSingleflightRefresh pins request coalescing: a burst of
// concurrent selects against a stale snapshot performs exactly one
// refresh.
func TestSnapshotSingleflightRefresh(t *testing.T) {
	e, db, ids := collectedWorld(t, 5)
	w := newStatsWriter(t, db, 5)
	w.insertInOrder(t, 50)
	ctx := context.Background()
	sid := ids[0]
	if _, err := e.Select(ctx, sid, Request{}); err != nil { // prime
		t.Fatal(err)
	}
	base := e.rebuilds.Load() + e.folds.Load()

	w.insertInOrder(t, 10) // snapshot is now stale
	const n = 32
	start := make(chan struct{})
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			_, errs[i] = e.Select(ctx, sid, Request{})
		}(i)
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if d := e.rebuilds.Load() + e.folds.Load() - base; d != 1 {
		t.Fatalf("burst of %d stale selects did %d refreshes, want 1", n, d)
	}
}

// TestSnapshotServeWhileWriting runs selects concurrently with a writer
// (run it under -race). Every response must come from a well-formed
// snapshot — scores sorted, samples positive, generation monotonically
// non-decreasing and never ahead of the collection — and once the writer
// stops, the served answer must converge exactly to the uncached engine.
func TestSnapshotServeWhileWriting(t *testing.T) {
	e, db, ids := collectedWorld(t, 11)
	w := newStatsWriter(t, db, 11)
	w.insertInOrder(t, 30)
	ctx := context.Background()
	sid := ids[0]

	stop := make(chan struct{})
	var writerWG, readerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		for round := 0; round < 150; round++ {
			switch round % 10 {
			case 9:
				w.insertOutOfOrder(t, 1)
			default:
				w.insertInOrder(t, 2)
			}
		}
	}()
	for g := 0; g < 4; g++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			var lastGen int64
			for {
				select {
				case <-stop:
					return
				default:
				}
				cands, err := e.Select(ctx, sid, Request{})
				if err != nil {
					t.Errorf("select: %v", err)
					return
				}
				for i := range cands {
					if cands[i].Samples < 1 {
						t.Errorf("candidate %s served with %d samples", cands[i].PathID, cands[i].Samples)
						return
					}
					if i > 0 && cands[i].Score < cands[i-1].Score {
						t.Error("response not sorted by score")
						return
					}
				}
				info, ok := e.SnapshotInfo()
				if !ok {
					t.Error("no snapshot after successful select")
					return
				}
				if info.StatsGeneration < lastGen {
					t.Errorf("snapshot generation went backwards: %d -> %d", lastGen, info.StatsGeneration)
					return
				}
				lastGen = info.StatsGeneration
				if info.StatsGeneration > db.Collection(measure.ColStats).Generation() {
					t.Error("snapshot claims a generation the collection has not reached")
					return
				}
			}
		}()
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()
	if t.Failed() {
		return
	}

	// Quiescent convergence: one more select per server must match the
	// uncached engine exactly (the count-check repairs any write the
	// concurrent folds were one round late on).
	for _, id := range ids {
		got, err := e.Select(ctx, id, Request{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := e.selectUncached(ctx, id, Request{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("server %d: post-write snapshot diverged from uncached engine", id)
		}
	}
}
