package selection

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"github.com/upin/scionpath/internal/docdb"
	"github.com/upin/scionpath/internal/measure"
	"github.com/upin/scionpath/internal/sciond"
	"github.com/upin/scionpath/internal/simnet"
	"github.com/upin/scionpath/internal/topology"
)

// measuredWorld runs a fast suite over the Ireland destination so the
// selection engine has real data to chew on.
func measuredWorld(t testing.TB, seed int64) (*Engine, *measure.Suite, int) {
	t.Helper()
	topo := topology.DefaultWorld()
	net := simnet.New(topo, simnet.Options{Seed: seed})
	d, err := sciond.New(topo, net, topology.MyAS)
	if err != nil {
		t.Fatal(err)
	}
	s := &measure.Suite{DB: docdb.MustOpen(), Daemon: d}
	if err := measure.SeedServers(s.DB, topo); err != nil {
		t.Fatal(err)
	}
	irelandID := serverIDFor(t, s.DB, topology.AWSIreland.String())
	if _, err := s.Run(context.Background(), measure.RunOpts{
		Iterations: 3, ServerIDs: []int{irelandID},
		PingCount: 10, PingInterval: 10 * time.Millisecond,
		BwDuration: 500 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	return New(s.DB, topo), s, irelandID
}

func serverIDFor(t testing.TB, db *docdb.DB, ia string) int {
	t.Helper()
	doc := db.Collection(measure.ColServers).FindOne(docdb.Query{
		Filter: docdb.Eq(measure.FIA, ia),
	})
	if doc == nil {
		t.Fatalf("no server for %s", ia)
	}
	id, _ := doc[measure.FServerID].(int)
	if id == 0 {
		if f, ok := doc[measure.FServerID].(float64); ok {
			id = int(f)
		}
	}
	return id
}

func TestSelectLowestLatency(t *testing.T) {
	e, _, id := measuredWorld(t, 1)
	cands, err := e.Select(context.Background(), id, Request{Objective: LowestLatency})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) < 3 {
		t.Fatalf("only %d candidates", len(cands))
	}
	for i := 1; i < len(cands); i++ {
		if cands[i].Score < cands[i-1].Score {
			t.Fatal("not sorted by score")
		}
	}
	// The winner must not be a Singapore/Ohio detour: those are the slow
	// paths the paper's latency selection discards (§6.1).
	best := cands[0]
	for _, pred := range best.Sequence {
		ia := pred.AS.String()
		if ia == "ffaa:0:1004" || ia == "ffaa:0:1007" {
			t.Errorf("lowest-latency winner goes through long-distance transit %s", ia)
		}
	}
	if best.AvgLatencyMs > 60 {
		t.Errorf("best latency %.1f ms implausibly high", best.AvgLatencyMs)
	}
}

func TestSelectMostStableAvoidsJitteryASes(t *testing.T) {
	e, _, id := measuredWorld(t, 2)
	best, err := e.Best(context.Background(), id, Request{Objective: MostStable})
	if err != nil {
		t.Fatal(err)
	}
	// "This assessment helps us to exclude routes passing through these
	// ASes [1004/1007] for streaming audio and video services" (§6.1).
	for _, pred := range best.Sequence {
		as := pred.AS.String()
		if as == "ffaa:0:1004" || as == "ffaa:0:1007" {
			t.Errorf("most-stable winner traverses jittery AS %s", as)
		}
	}
}

func TestSelectExcludeCountry(t *testing.T) {
	e, _, id := measuredWorld(t, 3)
	all, err := e.Select(context.Background(), id, Request{})
	if err != nil {
		t.Fatal(err)
	}
	noUS, err := e.Select(context.Background(), id, Request{ExcludeCountries: []string{"United States"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(noUS) >= len(all) {
		t.Errorf("US exclusion did not shrink the set: %d vs %d", len(noUS), len(all))
	}
	for _, c := range noUS {
		for _, country := range c.Countries {
			if country == "United States" {
				t.Errorf("path %s traverses the US despite exclusion", c.PathID)
			}
		}
	}
	// Case-insensitive.
	noUS2, _ := e.Select(context.Background(), id, Request{ExcludeCountries: []string{"united states"}})
	if len(noUS2) != len(noUS) {
		t.Error("country exclusion is case sensitive")
	}
}

func TestSelectExcludeISD(t *testing.T) {
	e, _, id := measuredWorld(t, 4)
	cands, err := e.Select(context.Background(), id, Request{ExcludeISDs: []string{"19"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cands {
		for _, isd := range c.ISDs {
			if isd == "19" {
				t.Errorf("path %s traverses ISD 19 despite exclusion", c.PathID)
			}
		}
	}
	// Excluding the destination's own ISD leaves nothing.
	none, err := e.Select(context.Background(), id, Request{ExcludeISDs: []string{"16"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Errorf("excluding the destination ISD still yielded %d paths", len(none))
	}
}

func TestSelectExcludeASAndOperator(t *testing.T) {
	e, _, id := measuredWorld(t, 5)
	all, _ := e.Select(context.Background(), id, Request{})
	noOhio, err := e.Select(context.Background(), id, Request{ExcludeASes: []string{"16-ffaa:0:1004"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range noOhio {
		for _, pred := range c.Sequence {
			if pred.AS.String() == "ffaa:0:1004" {
				t.Errorf("path %s traverses excluded AS", c.PathID)
			}
		}
	}
	if len(noOhio) >= len(all) {
		t.Error("AS exclusion had no effect")
	}
	// Every path crosses an Amazon AS (the destination), so excluding the
	// operator leaves nothing.
	noAmazon, err := e.Select(context.Background(), id, Request{ExcludeOperators: []string{"Amazon"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(noAmazon) != 0 {
		t.Errorf("Amazon exclusion yielded %d paths to an AWS destination", len(noAmazon))
	}
}

func TestSelectPerformanceConstraints(t *testing.T) {
	e, _, id := measuredWorld(t, 6)
	all, _ := e.Select(context.Background(), id, Request{})
	var worst float64
	for _, c := range all {
		if !math.IsInf(c.AvgLatencyMs, 1) && c.AvgLatencyMs > worst {
			worst = c.AvgLatencyMs
		}
	}
	bounded, err := e.Select(context.Background(), id, Request{MaxLatencyMs: worst / 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(bounded) == 0 || len(bounded) >= len(all) {
		t.Errorf("latency bound kept %d of %d", len(bounded), len(all))
	}
	for _, c := range bounded {
		if c.AvgLatencyMs > worst/2 {
			t.Errorf("path %s violates latency bound", c.PathID)
		}
	}
	// Bandwidth floor.
	banded, err := e.Select(context.Background(), id, Request{MinBandwidthBps: 5e6})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range banded {
		if math.Min(c.UpBps, c.DownBps) < 5e6 {
			t.Errorf("path %s below bandwidth floor", c.PathID)
		}
	}
	// Impossible constraint.
	none, _ := e.Select(context.Background(), id, Request{MaxLatencyMs: 0.001})
	if len(none) != 0 {
		t.Error("impossible latency satisfied")
	}
}

func TestSelectDirectionalBandwidth(t *testing.T) {
	e, _, id := measuredWorld(t, 11)
	all, err := e.Select(context.Background(), id, Request{})
	if err != nil || len(all) == 0 {
		t.Fatalf("%v", err)
	}
	// The access link is asymmetric: a downstream floor between the
	// typical up and down rates keeps paths a symmetric floor would drop.
	var maxUp float64
	for _, c := range all {
		if c.UpBps > maxUp {
			maxUp = c.UpBps
		}
	}
	floor := maxUp * 1.5 // above anything upstream can do
	down, err := e.Select(context.Background(), id, Request{MinDownBps: floor})
	if err != nil {
		t.Fatal(err)
	}
	sym, err := e.Select(context.Background(), id, Request{MinBandwidthBps: floor})
	if err != nil {
		t.Fatal(err)
	}
	if len(sym) != 0 {
		t.Errorf("symmetric floor above upstream capacity kept %d paths", len(sym))
	}
	for _, c := range down {
		if c.DownBps < floor {
			t.Errorf("path %s below the downstream floor", c.PathID)
		}
	}
	// Upstream floor above capability filters everything.
	up, err := e.Select(context.Background(), id, Request{MinUpBps: floor})
	if err != nil {
		t.Fatal(err)
	}
	if len(up) != 0 {
		t.Errorf("upstream floor above capacity kept %d paths", len(up))
	}
}

func TestBestErrors(t *testing.T) {
	e, _, id := measuredWorld(t, 7)
	if _, err := e.Best(context.Background(), id, Request{MaxLatencyMs: 0.0001}); err == nil {
		t.Error("impossible request yielded a best path")
	}
	if _, err := e.Best(context.Background(), 9999, Request{}); err == nil {
		t.Error("unknown server yielded a best path")
	}
}

func TestHighestBandwidthObjective(t *testing.T) {
	e, _, id := measuredWorld(t, 8)
	cands, err := e.Select(context.Background(), id, Request{Objective: HighestBandwidth})
	if err != nil || len(cands) < 2 {
		t.Fatalf("%v (%d)", err, len(cands))
	}
	first := (cands[0].UpBps + cands[0].DownBps) / 2
	last := (cands[len(cands)-1].UpBps + cands[len(cands)-1].DownBps) / 2
	if first < last {
		t.Errorf("bandwidth ranking inverted: %.1f < %.1f", first, last)
	}
}

func TestMinSamples(t *testing.T) {
	e, _, id := measuredWorld(t, 9)
	// 3 iterations ran, so MinSamples 4 filters everything.
	cands, err := e.Select(context.Background(), id, Request{MinSamples: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 0 {
		t.Errorf("MinSamples ignored: %d candidates", len(cands))
	}
}

func TestExplain(t *testing.T) {
	e, _, id := measuredWorld(t, 10)
	best, err := e.Best(context.Background(), id, Request{})
	if err != nil {
		t.Fatal(err)
	}
	s := Explain(best)
	for _, want := range []string{"path ", "hops", "ISDs", "latency", "samples"} {
		if !strings.Contains(s, want) {
			t.Errorf("Explain missing %q: %s", want, s)
		}
	}
}

func TestParseObjective(t *testing.T) {
	good := map[string]Objective{
		"latency": LowestLatency, "Bandwidth": HighestBandwidth,
		"loss": LowestLoss, "stable": MostStable, "jitter": MostStable,
		"lowest-latency": LowestLatency,
	}
	for in, want := range good {
		got, err := ParseObjective(in)
		if err != nil || got != want {
			t.Errorf("ParseObjective(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseObjective("fastest"); err == nil {
		t.Error("bogus objective accepted")
	}
	if LowestLatency.String() != "lowest-latency" || Objective(99).String() == "" {
		t.Error("objective strings")
	}
}
