package selection

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"github.com/upin/scionpath/internal/docdb"
	"github.com/upin/scionpath/internal/measure"
	"github.com/upin/scionpath/internal/topology"
)

// craftedWorld builds an engine over hand-written paths to srvs[0] of the
// default world. Each entry is (sequence tail through the given interior
// ASes, avg latency); every path starts at src and ends at the
// destination, so overlap is exactly the interior the test dictates.
func craftedWorld(t *testing.T, paths []craftedPath) (*Engine, int) {
	t.Helper()
	topo := topology.DefaultWorld()
	db := docdb.MustOpen()
	if err := measure.SeedServers(db, topo); err != nil {
		t.Fatal(err)
	}
	srvs, err := measure.Servers(db)
	if err != nil || len(srvs) == 0 {
		t.Fatalf("no servers (%v)", err)
	}
	sid, dst := srvs[0].ID, srvs[0].Address.IA
	var iaPool []string
	for _, as := range topo.ASes() {
		if as.IA != dst {
			iaPool = append(iaPool, as.IA.String())
		}
	}
	if len(iaPool) < 4 {
		t.Fatalf("default world too small: %d non-destination ASes", len(iaPool))
	}
	src := iaPool[0]
	var pd, sd []docdb.Document
	for i, p := range paths {
		parts := []string{src}
		for _, via := range p.via {
			parts = append(parts, iaPool[via])
		}
		parts = append(parts, dst.String())
		id := measure.PathID(sid, i)
		pd = append(pd, docdb.Document{
			"_id":              id,
			measure.FServerID:  sid,
			measure.FPathIndex: i,
			measure.FHops:      len(parts),
			measure.FSequence:  strings.Join(parts, " "),
			measure.FMTU:       1472,
		})
		sd = append(sd, docdb.Document{
			"_id":               fmt.Sprintf("%s@1#0", id),
			measure.FPathID:     id,
			measure.FServerID:   sid,
			measure.FTimestamp:  int64(1_700_000_000_000),
			measure.FLoss:       1.0,
			measure.FAvgLatency: p.latency,
			measure.FMdev:       1.0,
		})
	}
	if err := db.Collection(measure.ColPaths).InsertMany(pd); err != nil {
		t.Fatal(err)
	}
	if err := db.Collection(measure.ColStats).InsertMany(sd); err != nil {
		t.Fatal(err)
	}
	return New(db, topo), sid
}

type craftedPath struct {
	via     []int // indexes into the non-destination AS pool (index 0 = src)
	latency float64
}

// TestAxiomDisjointnessPreference is the disjointness axiom on a crafted
// pool: between two score-TIED candidates, the one sharing less with the
// already-chosen set wins, even when the overlapping one ranks earlier.
// With both penalties disabled SelectSet degenerates to top-K by score and
// the rank order reasserts itself.
func TestAxiomDisjointnessPreference(t *testing.T) {
	t.Parallel()
	// A (best) and B route via AS 1; C ties B's score exactly but routes
	// via AS 2, sharing nothing with A beyond the endpoints.
	e, sid := craftedWorld(t, []craftedPath{
		{via: []int{1}, latency: 10}, // A: the unconditional best path
		{via: []int{1}, latency: 50}, // B: tied with C, fully overlaps A
		{via: []int{2}, latency: 50}, // C: tied with B, disjoint from A
	})
	ctx := context.Background()
	req := Request{Objective: LowestLatency}

	set, err := e.SelectSet(ctx, sid, SetRequest{Request: req, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := pathIDs(set); !reflect.DeepEqual(got, []string{measure.PathID(sid, 0), measure.PathID(sid, 2)}) {
		t.Fatalf("disjointness preference violated: got %v, want [A C]", got)
	}
	if set.SharedLinks != 0 || set.SharedASes != 0 || set.Disjointness != 1 {
		t.Fatalf("A+C should be fully disjoint: %+v", set)
	}

	// Negative weights disable the penalties: top-K by score, B outranks C.
	set, err = e.SelectSet(ctx, sid, SetRequest{Request: req, K: 2, LinkPenalty: -1, ASPenalty: -1})
	if err != nil {
		t.Fatal(err)
	}
	if got := pathIDs(set); !reflect.DeepEqual(got, []string{measure.PathID(sid, 0), measure.PathID(sid, 1)}) {
		t.Fatalf("disabled penalties should yield top-K by score: got %v, want [A B]", got)
	}
	// A and B share both links (src>via1, via1>dst): all 4 traversals
	// shared, and the one interior AS is shared from both sides.
	if set.SharedLinks != 4 || set.SharedASes != 2 || set.Disjointness != 0 {
		t.Fatalf("A+B overlap accounting wrong: %+v", set)
	}
}

func TestSetRequestDefaults(t *testing.T) {
	t.Parallel()
	got := SetRequest{}.withDefaults()
	if got.K != defaultSetK || got.LinkPenalty != defaultLinkPenalty || got.ASPenalty != defaultASPenalty {
		t.Fatalf("zero request defaults wrong: %+v", got)
	}
	got = SetRequest{K: -3, LinkPenalty: -0.5, ASPenalty: -2}.withDefaults()
	if got.K != defaultSetK || got.LinkPenalty != 0 || got.ASPenalty != 0 {
		t.Fatalf("negative knobs should clamp: %+v", got)
	}
	got = SetRequest{K: 7, LinkPenalty: 0.3, ASPenalty: 0.7}.withDefaults()
	if got.K != 7 || got.LinkPenalty != 0.3 || got.ASPenalty != 0.7 {
		t.Fatalf("explicit knobs must pass through: %+v", got)
	}
}

func TestSelectSetErrors(t *testing.T) {
	t.Parallel()
	e, _, ids := collectedWorld(t, 3)
	ctx := context.Background()

	if _, err := e.SelectSet(ctx, 999999, SetRequest{}); err == nil ||
		!strings.Contains(err.Error(), "no collected paths") {
		t.Fatalf("unknown server: got %v", err)
	}
	// No measurements collected yet: every candidate fails MinSamples.
	if _, err := e.SelectSet(ctx, ids[0], SetRequest{Request: Request{MinSamples: 1}}); err == nil ||
		!strings.Contains(err.Error(), "satisfies the request") {
		t.Fatalf("unsatisfiable request: got %v", err)
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := e.SelectSet(cancelled, ids[0], SetRequest{}); err == nil ||
		!strings.Contains(err.Error(), "cancelled") {
		t.Fatalf("cancelled context: got %v", err)
	}
}

// TestSelectSetSharesSnapshot pins the serving contract: SelectSet reads
// the same cached snapshot as Select — repeated calls trigger no further
// rebuilds or folds, and the overlap keys computed at rebuild time are
// reused as-is.
func TestSelectSetSharesSnapshot(t *testing.T) {
	t.Parallel()
	e, db, ids := collectedWorld(t, 5)
	w := newStatsWriter(t, db, 5)
	w.insertInOrder(t, 40)
	ctx := context.Background()

	if _, err := e.SelectSet(ctx, ids[0], SetRequest{K: 3}); err != nil {
		t.Fatal(err)
	}
	rebuilds0, folds0, _ := e.Counters()
	for i := 0; i < 10; i++ {
		if _, err := e.SelectSet(ctx, ids[0], SetRequest{K: 3}); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Select(ctx, ids[0], Request{}); err != nil {
			t.Fatal(err)
		}
	}
	rebuilds, folds, _ := e.Counters()
	if rebuilds != rebuilds0 || folds != folds0 {
		t.Fatalf("SelectSet on an unchanged db refreshed the snapshot: rebuilds %d->%d folds %d->%d",
			rebuilds0, rebuilds, folds0, folds)
	}

	// New in-order stats must be visible through SelectSet via the same
	// incremental fold Select uses — still no full rebuild.
	w.insertInOrder(t, 20)
	set, err := e.SelectSet(ctx, ids[0], SetRequest{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Paths) == 0 {
		t.Fatal("empty set after fold")
	}
	rebuilds2, folds2, _ := e.Counters()
	if rebuilds2 != rebuilds || folds2 != folds+1 {
		t.Fatalf("expected exactly one incremental fold: rebuilds %d->%d folds %d->%d",
			rebuilds, rebuilds2, folds, folds2)
	}
}

// TestSelectSetConcurrent exercises the lock-free read path under the race
// detector: concurrent SelectSet readers against a live stats writer.
func TestSelectSetConcurrent(t *testing.T) {
	t.Parallel()
	e, db, ids := collectedWorld(t, 7)
	w := newStatsWriter(t, db, 7)
	w.insertInOrder(t, 30)
	ctx := context.Background()
	sid := ids[0]

	var writerWG, readerWG sync.WaitGroup
	stop := make(chan struct{})
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		for round := 0; round < 120; round++ {
			if round%10 == 9 {
				w.insertOutOfOrder(t, 1)
			} else {
				w.insertInOrder(t, 2)
			}
		}
	}()
	for g := 0; g < 4; g++ {
		readerWG.Add(1)
		go func(k int) {
			defer readerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				set, err := e.SelectSet(ctx, sid, SetRequest{K: k})
				if err != nil {
					t.Errorf("selectset: %v", err)
					return
				}
				seen := map[string]bool{}
				for _, c := range set.Paths {
					if seen[c.PathID] {
						t.Errorf("duplicate path %s in concurrent set", c.PathID)
						return
					}
					seen[c.PathID] = true
				}
			}
		}(1 + g)
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()
}
