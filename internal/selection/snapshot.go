package selection

// Snapshot-based serving (see docs/SERVING.md). The engine's hot path —
// Select behind /api/paths and /api/intent — used to re-aggregate every
// path's full paths_stats history on every request, so latency grew with
// campaign size. Instead, the engine now publishes an immutable snapshot of
// per-path running aggregates via an atomic pointer:
//
//   - a Select at a current generation is a lock-free pointer load plus
//     per-request filtering/scoring — O(candidates), not O(stats docs);
//   - a Select at a stale generation refreshes first. Refresh is
//     incremental: only stats documents newer than the snapshot's
//     high-water timestamp_ms are folded into copies of the running
//     aggregates (riding the ordered timestamp index), so refresh cost
//     scales with the number of NEW documents, not with history;
//   - refreshes are single-flight: N concurrent requests at a stale
//     generation trigger exactly one rebuild, and while it runs, requests
//     that already have a previous snapshot are served that one (bounded
//     staleness — a response may lag by the writes that arrived since the
//     in-flight refresh began, but never blocks behind it).
//
// Correctness against the uncached engine is pinned by the randomized
// oracle in snapshot_test.go: cached Select results are deep-equal to
// selectUncached across interleavings of writes and reads.

import (
	"context"
	"fmt"
	"math"
	"strings"

	"github.com/upin/scionpath/internal/addr"
	"github.com/upin/scionpath/internal/docdb"
	"github.com/upin/scionpath/internal/measure"
	"github.com/upin/scionpath/internal/pathmgr"
)

// pathAgg is one path's running aggregate: identity and geo annotation
// computed once per rebuild, plus the metric sums an incremental refresh
// extends. The fold order is the collection's storage order both on rebuild
// and on incremental refresh, so the floating-point sums are bit-identical
// to the uncached per-path aggregation.
type pathAgg struct {
	// id carries the candidate's identity fields (PathID, ServerID, Hops,
	// ISDs, Sequence) and geo annotation; its metric fields stay zero.
	id Candidate
	// hops caches per-hop exclusion metadata so sovereignty filters are
	// pure hash-set probes at request time.
	hops []hopMeta
	// links/transit are the path's hop-level overlap keys (directed
	// AS-pair links and interior ASes, see pathset.go), computed once per
	// snapshot generation in rebuild and shared by every COW clone, so
	// SelectSet's penalty arithmetic is pure integer-set probes at request
	// time.
	links   []uint64
	transit []uint64

	samples                                  int
	latSum, mdevSum, lossSum, upSum, downSum float64
	latN, mdevN, lossN, upN, downN           int
}

// hopMeta is the request-time view of one traversed AS.
type hopMeta struct {
	ia       string // canonical IA rendering, matched against ExcludeASes
	country  string // lower-cased; valid only when known
	operator string // lower-cased; valid only when known
	known    bool   // the AS exists in the topology
}

// fold accumulates one stats document, mirroring Engine.aggregate exactly.
func (a *pathAgg) fold(d docdb.Document) {
	a.samples++
	if v, ok := num(d[measure.FAvgLatency]); ok {
		a.latSum += v
		a.latN++
	}
	if v, ok := num(d[measure.FMdev]); ok {
		a.mdevSum += v
		a.mdevN++
	}
	if v, ok := num(d[measure.FLoss]); ok {
		a.lossSum += v
		a.lossN++
	}
	if v, ok := num(d[measure.FBwUpMTU]); ok {
		a.upSum += v
		a.upN++
	}
	if v, ok := num(d[measure.FBwDownMTU]); ok {
		a.downSum += v
		a.downN++
	}
}

// candidate materialises the aggregate, with the same arithmetic (and so
// the same float results) as Engine.aggregate.
func (a *pathAgg) candidate() Candidate {
	c := a.id // identity + geo; slices are shared and must not be mutated
	c.Samples = a.samples
	if a.latN > 0 {
		c.AvgLatencyMs = a.latSum / float64(a.latN)
	} else {
		c.AvgLatencyMs = math.Inf(1) // never answered: infinitely slow
	}
	if a.mdevN > 0 {
		c.JitterMs = a.mdevSum / float64(a.mdevN)
	} else {
		c.JitterMs = math.Inf(1)
	}
	if a.lossN > 0 {
		c.AvgLossPct = a.lossSum / float64(a.lossN)
	}
	if a.upN > 0 {
		c.UpBps = a.upSum / float64(a.upN)
	}
	if a.downN > 0 {
		c.DownBps = a.downSum / float64(a.downN)
	}
	return c
}

// snapshot is one immutable, atomically-published view of the serving
// state. Readers never mutate it; refreshes build a new one (incremental
// refreshes clone the aggregates copy-on-write) and swap the pointer.
type snapshot struct {
	pathsGen int64 // paths collection generation folded in
	statsGen int64 // stats collection generation folded in
	statsRW  int64 // stats RewriteGeneration folded in
	// highWater is the largest timestamp_ms folded; frontier lists the
	// stats _ids at exactly that timestamp, so the next incremental fold
	// (Gte highWater) can skip what it already counted.
	highWater int64
	frontier  map[string]struct{}
	// folded counts every stats document folded (including documents of
	// unknown paths). An incremental fold that ends with fewer folded
	// documents than the collection holds has missed an out-of-order write
	// below the high-water mark and falls back to a full rebuild.
	folded int

	servers map[int][]*pathAgg // per destination, in PathsForServer order
	byPath  map[string]*pathAgg
}

// refreshFlight is one in-progress snapshot refresh.
type refreshFlight struct {
	done chan struct{}
	snap *snapshot
	err  error
}

// SnapshotInfo describes the published serving snapshot, for health
// endpoints and tests (see docs/SERVING.md).
type SnapshotInfo struct {
	StatsGeneration int64
	PathsGeneration int64
	HighWaterMs     int64
	Paths           int
	StatsFolded     int
}

// SnapshotInfo returns the current snapshot's summary; ok is false before
// the first refresh.
func (e *Engine) SnapshotInfo() (SnapshotInfo, bool) {
	s := e.current.Load()
	if s == nil {
		return SnapshotInfo{}, false
	}
	return SnapshotInfo{
		StatsGeneration: s.statsGen,
		PathsGeneration: s.pathsGen,
		HighWaterMs:     s.highWater,
		Paths:           len(s.byPath),
		StatsFolded:     s.folded,
	}, true
}

// fresh reports whether the snapshot still matches the live collections.
func (e *Engine) fresh(s *snapshot) bool {
	return s.statsGen == e.stats.Generation() && s.pathsGen == e.paths.Generation()
}

// snapshotFor returns a serving snapshot, refreshing first when the backing
// collections have moved. The ctx matters only when this request ends up
// performing or waiting for a refresh.
func (e *Engine) snapshotFor(ctx context.Context) (*snapshot, error) {
	if s := e.current.Load(); s != nil && e.fresh(s) {
		return s, nil
	}
	return e.refresh(ctx)
}

// refresh elects one leader to rebuild or fold; concurrent callers that
// already have a previous snapshot are served it immediately (bounded
// staleness), and cold-start callers wait for the leader.
func (e *Engine) refresh(ctx context.Context) (*snapshot, error) {
	stale := e.current.Load()
	e.mu.Lock()
	if s := e.current.Load(); s != nil && e.fresh(s) {
		e.mu.Unlock()
		return s, nil // someone refreshed while we queued on the mutex
	}
	if f := e.inflight; f != nil {
		e.mu.Unlock()
		if stale != nil {
			e.coalesced.Add(1)
			return stale, nil
		}
		select {
		case <-f.done:
			if f.err != nil {
				return nil, f.err
			}
			return f.snap, nil
		case <-ctx.Done():
			return nil, fmt.Errorf("selection: select cancelled: %w", ctx.Err())
		}
	}
	f := &refreshFlight{done: make(chan struct{})}
	e.inflight = f
	e.mu.Unlock()

	f.snap, f.err = e.rebuildOrFold(e.current.Load())
	if f.err == nil {
		e.current.Store(f.snap)
	}
	e.mu.Lock()
	e.inflight = nil
	e.mu.Unlock()
	close(f.done)
	return f.snap, f.err
}

// rebuildOrFold refreshes from prev: incrementally when the paths
// catalogue is unchanged and no stats document was rewritten or removed,
// from scratch otherwise.
func (e *Engine) rebuildOrFold(prev *snapshot) (*snapshot, error) {
	// Stamp the generations before reading any data: writes landing
	// mid-read get folded in but labelled stale, so the next request
	// revalidates (cheaply, finding nothing new) instead of a write being
	// silently attributed to an older generation.
	pathsGen := e.paths.Generation()
	statsGen := e.stats.Generation()
	statsRW := e.stats.RewriteGeneration()
	if prev != nil && prev.pathsGen == pathsGen && prev.statsRW == statsRW {
		if next := e.foldInto(prev, statsGen); next != nil {
			e.folds.Add(1)
			return next, nil
		}
		// A stats document arrived below the high-water mark (out-of-order
		// writer, e.g. a resumed parallel campaign): fall through.
	}
	snap, err := e.rebuild(pathsGen, statsGen, statsRW)
	if err == nil {
		e.rebuilds.Add(1)
	}
	return snap, err
}

// foldInto clones prev copy-on-write and folds only the stats documents
// newer than prev's high-water mark. It returns nil when it detects that a
// document landed below the mark (the caller must rebuild).
func (e *Engine) foldInto(prev *snapshot, statsGen int64) *snapshot {
	next := &snapshot{
		pathsGen:  prev.pathsGen,
		statsGen:  statsGen,
		statsRW:   prev.statsRW,
		highWater: prev.highWater,
		servers:   make(map[int][]*pathAgg, len(prev.servers)),
		byPath:    make(map[string]*pathAgg, len(prev.byPath)),
	}
	for sid, aggs := range prev.servers {
		cloned := make([]*pathAgg, len(aggs))
		for i, a := range aggs {
			cp := *a // sums copied; identity slices shared (immutable)
			cloned[i] = &cp
			next.byPath[cp.id.PathID] = cloned[i]
		}
		next.servers[sid] = cloned
	}

	// Count first, then fold: documents inserted between the two reads are
	// folded anyway and only make the check conservative (folded >= count).
	count := e.stats.Count()
	var filter docdb.Filter
	if prev.folded > 0 {
		filter = docdb.Gte(measure.FTimestamp, prev.highWater)
	}
	hw, atHW, folded := e.foldStats(next.byPath, filter, prev.frontier, prev.highWater)
	next.folded = prev.folded + folded
	if next.folded < count {
		return nil // an out-of-order write slipped below the high-water mark
	}
	next.highWater = hw
	next.frontier = mergeFrontier(prev.frontier, prev.highWater, hw, atHW)
	return next
}

// rebuild computes a snapshot from scratch: decode the full paths
// catalogue, annotate it once, then fold the entire stats history in one
// storage-order pass.
func (e *Engine) rebuild(pathsGen, statsGen, statsRW int64) (*snapshot, error) {
	pds, err := measure.AllPaths(e.db)
	if err != nil {
		return nil, err
	}
	snap := &snapshot{
		pathsGen: pathsGen,
		statsGen: statsGen,
		statsRW:  statsRW,
		servers:  make(map[int][]*pathAgg),
		byPath:   make(map[string]*pathAgg, len(pds)),
	}
	for i := range pds {
		pd := &pds[i]
		if e.owns != nil && !e.owns(pd.ServerID) {
			// A sharded engine keeps only its own destinations: the
			// annotation below and every later COW clone scale with the
			// shard's share of the catalogue, not with the whole of it.
			// foldStats still counts the skipped paths' stats documents
			// (folded++ is unconditional), so the out-of-order-write
			// detection arithmetic in foldInto keeps working unchanged.
			continue
		}
		agg := &pathAgg{id: Candidate{
			PathID:   pd.ID,
			ServerID: pd.ServerID,
			Hops:     pd.Hops,
			ISDs:     pd.ISDs,
			Sequence: pd.Sequence,
		}}
		e.annotateGeo(&agg.id)
		agg.hops = e.hopMetas(pd.Sequence)
		agg.links, agg.transit = overlapKeys(agg.hops)
		snap.servers[pd.ServerID] = append(snap.servers[pd.ServerID], agg)
		snap.byPath[pd.ID] = agg
	}
	hw, atHW, folded := e.foldStats(snap.byPath, nil, nil, math.MinInt64)
	snap.folded = folded
	snap.highWater = hw
	snap.frontier = make(map[string]struct{}, len(atHW))
	for _, id := range atHW {
		snap.frontier[id] = struct{}{}
	}
	return snap, nil
}

// foldStats streams matching stats documents zero-copy in storage order,
// folding each into its path aggregate and tracking the high-water
// timestamp. skip holds already-folded _ids at the previous high-water
// mark. It returns the new high-water mark, the _ids folded at it this
// pass, and how many documents were folded.
func (e *Engine) foldStats(byPath map[string]*pathAgg, filter docdb.Filter,
	skip map[string]struct{}, highWater int64) (hw int64, atHW []string, folded int) {
	hw = highWater
	e.stats.ForEach(docdb.Query{Filter: filter}, func(d docdb.Document) bool {
		id := d.ID()
		if _, dup := skip[id]; dup {
			return true
		}
		if pid, ok := d[measure.FPathID].(string); ok {
			if agg := byPath[pid]; agg != nil {
				agg.fold(d)
			}
		}
		folded++
		if ts, ok := num(d[measure.FTimestamp]); ok {
			switch t := int64(ts); {
			case t > hw:
				hw = t
				atHW = append(atHW[:0], id)
			case t == hw:
				atHW = append(atHW, id)
			}
		}
		return true
	})
	return hw, atHW, folded
}

// mergeFrontier computes the next frontier set: when the high-water mark
// advanced, only this pass's ids at the new mark matter; when it did not,
// the previous frontier still guards against re-folding.
func mergeFrontier(prev map[string]struct{}, prevHW, hw int64, atHW []string) map[string]struct{} {
	out := make(map[string]struct{}, len(atHW))
	if hw == prevHW {
		for id := range prev {
			out[id] = struct{}{}
		}
	}
	for _, id := range atHW {
		out[id] = struct{}{}
	}
	return out
}

// hopMetas precomputes the exclusion-filter view of a path's hops.
func (e *Engine) hopMetas(seq pathmgr.Sequence) []hopMeta {
	out := make([]hopMeta, len(seq))
	for i, pred := range seq {
		ia := addr.IA{ISD: pred.ISD, AS: pred.AS}
		hm := hopMeta{ia: ia.String()}
		if as := e.topo.AS(ia); as != nil {
			hm.known = true
			hm.country = strings.ToLower(as.Site.Country)
			hm.operator = strings.ToLower(as.Operator)
		}
		out[i] = hm
	}
	return out
}
