package selection

// BenchmarkMultipath* is the multipath serving trajectory recorded in
// BENCH_multipath.json by cmd/benchjson (docs/SELECTION.md "Reading
// BENCH_multipath.json"): SelectSet at the measured-campaign candidate
// count (ases=35, the default world) and at the generated-world scale
// (ases=1000), across set sizes. The interesting comparison is against
// BenchmarkServingSelect at the same candidate counts — the greedy
// assembly and penalty probes are the only extra work, since the overlap
// keys were already paid for at snapshot rebuild time.

import (
	"context"
	"fmt"
	"testing"

	"github.com/upin/scionpath/internal/docdb"
	"github.com/upin/scionpath/internal/topology"
)

func BenchmarkMultipathSelectSet(b *testing.B) {
	for _, ases := range []int{35, 1000} {
		spec := topology.GenerateSpec{
			Seed: int64(ases), ISDs: 2, CoresPerISD: 2, NonCorePerISD: 15,
			MaxChildren: 4, CoreDegree: 2,
		}
		if ases == 1000 {
			spec = topology.GenerateSpec{
				Seed: 1000, ISDs: 20, CoresPerISD: 2, NonCorePerISD: 48,
				MaxChildren: 8, CoreDegree: 4,
			}
		}
		topo, err := topology.Generate(spec)
		if err != nil {
			b.Fatal(err)
		}
		db := docdb.MustOpen()
		sid := syntheticCatalogue(b, topo, db, ases, 3, 7)
		e := New(db, topo)
		ctx := context.Background()
		for _, k := range []int{2, 4} {
			b.Run(fmt.Sprintf("ases=%d/k=%d", ases, k), func(b *testing.B) {
				req := SetRequest{K: k}
				if _, err := e.SelectSet(ctx, sid, req); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := e.SelectSet(ctx, sid, req); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
