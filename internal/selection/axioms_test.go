package selection

// Axiomatic property suite for SelectSet, after the axiomatic
// path-selection analysis (PAPERS.md): instead of example-based tests, the
// axioms a sound multipath selection strategy must satisfy are checked over
// hundreds of seeded candidate pools generated from topology.GenerateSpec
// worlds. docs/SELECTION.md lists each axiom next to the property test
// that enforces it.
//
//lint:deterministic fixed seeds; every pool and request derives from the loop seed

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"github.com/upin/scionpath/internal/docdb"
	"github.com/upin/scionpath/internal/measure"
	"github.com/upin/scionpath/internal/topology"
)

const axiomSeeds = 120 // acceptance floor is 100; a margin keeps it honest

// axiomPool is a seeded candidate pool over a generated world: the path
// documents (sequences walking real generated ASes) and per-path stats
// documents, kept around so tests can rebuild engines over arbitrary
// subsets of the pool (the IIA axiom removes candidates and re-selects).
type axiomPool struct {
	topo  *topology.Topology
	sid   int
	paths []docdb.Document
	stats map[string][]docdb.Document // path _id -> its stats docs
}

// newAxiomPool generates a small world and 4–12 candidate paths for one
// destination. Roughly a third of the paths join a "tie group": their
// stats values are copied verbatim from an earlier path, so their
// aggregates — and therefore their scores under every objective — are
// exactly equal, exercising the tie-breaking and disjointness-preference
// behaviour. Some paths omit latency samples entirely (the campaign saw no
// echo replies), exercising the +Inf score branch.
func newAxiomPool(t testing.TB, seed int64) *axiomPool {
	t.Helper()
	topo, err := topology.Generate(topology.GenerateSpec{
		Seed: seed, ISDs: 2, CoresPerISD: 2, NonCorePerISD: 6,
		MaxChildren: 3, CoreDegree: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	db := docdb.MustOpen()
	if err := measure.SeedServers(db, topo); err != nil {
		t.Fatal(err)
	}
	srvs, err := measure.Servers(db)
	if err != nil || len(srvs) == 0 {
		t.Fatalf("no servers (%v)", err)
	}
	r := rand.New(rand.NewSource(seed))
	sid, dst := srvs[0].ID, srvs[0].Address.IA
	ases := topo.ASes()

	type vals struct {
		n         int
		hasLat    bool
		lat, mdev float64
		loss      float64
		hasBw     bool
		up, down  float64
	}
	p := &axiomPool{topo: topo, sid: sid, stats: map[string][]docdb.Document{}}
	nPaths := 4 + r.Intn(9)
	history := make([]vals, 0, nPaths)
	nowMs := int64(1_700_000_000_000)
	for i := 0; i < nPaths; i++ {
		var v vals
		if i > 0 && r.Intn(3) == 0 { // tie group: exact same aggregates
			v = history[r.Intn(len(history))]
		} else {
			v = vals{
				n:      1 + r.Intn(3),
				hasLat: r.Intn(6) > 0,
				lat:    10 + r.Float64()*150,
				mdev:   r.Float64() * 5,
				loss:   float64(r.Intn(200)) / 10,
				hasBw:  r.Intn(8) > 0,
				up:     1e6 + r.Float64()*1e8,
				down:   1e6 + r.Float64()*1e8,
			}
		}
		history = append(history, v)

		hops := 2 + r.Intn(4)
		seq := ""
		for h := 0; h < hops; h++ {
			seq += ases[r.Intn(len(ases))].IA.String() + " "
		}
		seq += dst.String()
		id := measure.PathID(sid, i)
		p.paths = append(p.paths, docdb.Document{
			"_id":              id,
			measure.FServerID:  sid,
			measure.FPathIndex: i,
			measure.FHops:      hops + 1,
			measure.FSequence:  seq,
			measure.FMTU:       1472,
		})
		for s := 0; s < v.n; s++ {
			nowMs += int64(r.Intn(3))
			d := docdb.Document{
				"_id":              fmt.Sprintf("%s@%d#%d", id, nowMs, s),
				measure.FPathID:    id,
				measure.FServerID:  sid,
				measure.FTimestamp: nowMs,
				measure.FLoss:      v.loss,
			}
			// Every doc in a path carries the same values, so the fold
			// average equals the value exactly and tie groups tie exactly.
			if v.hasLat {
				d[measure.FAvgLatency] = v.lat
				d[measure.FMdev] = v.mdev
			}
			if v.hasBw {
				d[measure.FBwUpMTU] = v.up
				d[measure.FBwDownMTU] = v.down
			}
			p.stats[id] = append(p.stats[id], d)
		}
	}
	return p
}

// engine builds a fresh Engine over the subset of the pool for which keep
// returns true (nil keep = the whole pool).
func (p *axiomPool) engine(t testing.TB, keep func(pathID string) bool) *Engine {
	t.Helper()
	db := docdb.MustOpen()
	if err := measure.SeedServers(db, p.topo); err != nil {
		t.Fatal(err)
	}
	var pd, sd []docdb.Document
	for _, doc := range p.paths {
		if keep != nil && !keep(doc.ID()) {
			continue
		}
		pd = append(pd, doc)
		sd = append(sd, p.stats[doc.ID()]...)
	}
	if err := db.Collection(measure.ColPaths).InsertMany(pd); err != nil {
		t.Fatal(err)
	}
	if err := db.Collection(measure.ColStats).InsertMany(sd); err != nil {
		t.Fatal(err)
	}
	return New(db, p.topo)
}

func pathIDs(set PathSet) []string {
	ids := make([]string, len(set.Paths))
	for i, c := range set.Paths {
		ids[i] = c.PathID
	}
	return ids
}

var axiomObjectives = []Objective{LowestLatency, HighestBandwidth, LowestLoss, MostStable}

// TestAxiomSuite drives the per-seed axioms over axiomSeeds generated
// pools: optimality of the top path, K=1 == Best, nesting (each K-set is a
// prefix of the (K+1)-set), set size and uniqueness, determinism across
// engines, and independence of irrelevant alternatives.
func TestAxiomSuite(t *testing.T) {
	t.Parallel()
	ctx := context.Background()
	for seed := int64(1); seed <= axiomSeeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			pool := newAxiomPool(t, seed)
			e := pool.engine(t, nil)
			obj := axiomObjectives[seed%int64(len(axiomObjectives))]
			req := Request{Objective: obj}

			best, err := e.Best(ctx, pool.sid, req)
			if err != nil {
				t.Fatal(err)
			}
			ranked, err := e.Select(ctx, pool.sid, req)
			if err != nil {
				t.Fatal(err)
			}

			var prev PathSet
			for k := 1; k <= 4; k++ {
				set, err := e.SelectSet(ctx, pool.sid, SetRequest{Request: req, K: k})
				if err != nil {
					t.Fatal(err)
				}
				// Axiom: optimality of the top path — Paths[0] is Best.
				if set.Paths[0].PathID != best.PathID {
					t.Fatalf("K=%d top path %s != Best %s", k, set.Paths[0].PathID, best.PathID)
				}
				// Axiom: size — min(K, pool), no duplicates.
				if want := min(k, len(ranked)); len(set.Paths) != want {
					t.Fatalf("K=%d returned %d paths, want %d", k, len(set.Paths), want)
				}
				seen := map[string]bool{}
				for _, c := range set.Paths {
					if seen[c.PathID] {
						t.Fatalf("K=%d duplicate path %s", k, c.PathID)
					}
					seen[c.PathID] = true
				}
				// Axiom: K=1 degenerates to exactly Best, trivially disjoint.
				if k == 1 {
					if !reflect.DeepEqual(set.Paths[0], best) {
						t.Fatalf("K=1 candidate differs from Best:\n%+v\n%+v", set.Paths[0], best)
					}
					if set.Disjointness != 1 || set.SharedLinks != 0 || set.SharedASes != 0 {
						t.Fatalf("K=1 set not trivially disjoint: %+v", set)
					}
				}
				// Axiom: nesting — the K-set is a prefix of the (K+1)-set.
				if k > 1 && !reflect.DeepEqual(pathIDs(prev), pathIDs(set)[:len(prev.Paths)]) {
					t.Fatalf("K=%d set %v is not an extension of K=%d set %v",
						k, pathIDs(set), k-1, pathIDs(prev))
				}
				prev = set
			}

			// Axiom: determinism — a fresh engine over the same documents
			// selects the identical set.
			again, err := pool.engine(t, nil).SelectSet(ctx, pool.sid, SetRequest{Request: req, K: 4})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(again, prev) {
				t.Fatalf("non-deterministic set:\n%+v\n%+v", again, prev)
			}

			checkIIA(t, pool, ranked, prev, req)
		})
	}
}

// checkIIA is the independence-of-irrelevant-alternatives axiom: removing
// candidates that were not selected must not change the selected set. The
// removable candidates are the ones that hold no role in the decision —
// not chosen, and not an anchor of the score normalization frame (the
// minimum or maximum finite score); dropping an anchor legitimately
// rescales every marginal cost (docs/SELECTION.md spells this frame out).
func checkIIA(t *testing.T, pool *axiomPool, ranked []Candidate, set PathSet, req Request) {
	t.Helper()
	chosen := map[string]bool{}
	for _, c := range set.Paths {
		chosen[c.PathID] = true
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, c := range ranked {
		if math.IsInf(c.Score, 0) {
			continue
		}
		lo, hi = math.Min(lo, c.Score), math.Max(hi, c.Score)
	}
	removable := map[string]bool{}
	for _, c := range ranked {
		interior := c.Score > lo && c.Score < hi
		if !chosen[c.PathID] && (interior || math.IsInf(c.Score, 0)) {
			removable[c.PathID] = true
		}
	}
	if len(removable) == 0 {
		return // nothing irrelevant to remove in this pool
	}
	e := pool.engine(t, func(id string) bool { return !removable[id] })
	got, err := e.SelectSet(context.Background(), pool.sid, SetRequest{Request: req, K: len(set.Paths)})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pathIDs(got), pathIDs(set)) {
		t.Fatalf("IIA violated: removing %d unchosen candidates changed the set %v -> %v",
			len(removable), pathIDs(set), pathIDs(got))
	}
}

// TestAxiomGreedyMatchesBruteForce pins the greedy assembly to a
// brute-force oracle on exhaustive small pools: SelectSet's objective is
// the lexicographic minimum of the interleaved (marginal cost, rank)
// vector over ALL ordered K-arrangements of the candidate pool, and on
// pools small enough to enumerate (≤ 7 candidates, K ≤ 3, ≤ 210
// arrangements) the oracle finds that minimum independently — its own
// ranking sort, its own normalization, its own overlap sets rebuilt from
// the snapshot aggregates — and must agree with greedy exactly.
func TestAxiomGreedyMatchesBruteForce(t *testing.T) {
	t.Parallel()
	ctx := context.Background()
	checked := 0
	for seed := int64(1); checked < axiomSeeds; seed++ {
		pool := newAxiomPool(t, seed)
		if len(pool.paths) > 7 {
			continue // keep the arrangement count exhaustive-small
		}
		checked++
		e := pool.engine(t, nil)
		obj := axiomObjectives[seed%int64(len(axiomObjectives))]
		sreq := SetRequest{Request: Request{Objective: obj}}.withDefaults()
		for k := 1; k <= 3; k++ {
			sreq.K = k
			got, err := e.SelectSet(ctx, pool.sid, sreq)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteForceSet(t, e, pool.sid, sreq)
			if !reflect.DeepEqual(pathIDs(got), want) {
				t.Fatalf("seed %d K=%d: greedy %v != brute-force optimum %v",
					seed, k, pathIDs(got), want)
			}
		}
	}
}

// bruteForceSet enumerates every ordered arrangement of min(K, n) distinct
// candidates and returns the PathIDs of the lexicographically minimal
// (cost, rank) vector. It reads the candidate pool straight from the
// engine's snapshot (an in-package test may) but re-derives ranking,
// normalization, and overlap fractions on its own.
func bruteForceSet(t *testing.T, e *Engine, sid int, req SetRequest) []string {
	t.Helper()
	snap, err := e.snapshotFor(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	aggs := snap.servers[sid]
	type oc struct {
		id             string
		score, norm    float64
		rank           int
		links, transit []uint64
	}
	pool := make([]*oc, 0, len(aggs))
	for _, agg := range aggs {
		cand := agg.candidate()
		links, transit := overlapKeys(agg.hops) // independent of the cached copy
		pool = append(pool, &oc{
			id: cand.PathID, score: score(&cand, req.Objective),
			links: links, transit: transit,
		})
	}
	// Rank: best score first, input order on ties (= Select's total order).
	byRank := make([]*oc, len(pool))
	copy(byRank, pool)
	sort.SliceStable(byRank, func(i, j int) bool { return byRank[i].score < byRank[j].score })
	lo, hi := byRank[0].score, byRank[0].score
	for rank, c := range byRank {
		c.rank = rank
		if !math.IsInf(c.score, 0) && c.score > hi {
			hi = c.score
		}
	}
	for _, c := range pool {
		switch {
		case math.IsInf(c.score, 0):
			c.norm = 2
		case hi > lo:
			c.norm = (c.score - lo) / (hi - lo)
		}
	}

	type pair struct {
		cost float64
		rank int
	}
	less := func(a, b []pair) bool {
		for i := range a {
			if a[i].cost != b[i].cost {
				return a[i].cost < b[i].cost
			}
			if a[i].rank != b[i].rank {
				return a[i].rank < b[i].rank
			}
		}
		return false
	}
	marginal := func(c *oc, links, transit map[uint64]struct{}) float64 {
		frac := func(keys []uint64, used map[uint64]struct{}) float64 {
			if len(keys) == 0 {
				return 0
			}
			n := 0
			for _, k := range keys {
				if _, ok := used[k]; ok {
					n++
				}
			}
			return float64(n) / float64(len(keys))
		}
		return c.norm + req.LinkPenalty*frac(c.links, links) + req.ASPenalty*frac(c.transit, transit)
	}

	k := min(req.K, len(pool))
	var bestSeq []*oc
	var bestVec []pair
	used := make([]bool, len(pool))
	seq := make([]*oc, 0, k)
	vec := make([]pair, 0, k)
	links := map[uint64]struct{}{}
	transit := map[uint64]struct{}{}
	var walk func()
	walk = func() {
		if len(seq) == k {
			if bestVec == nil || less(vec, bestVec) {
				bestVec = append([]pair(nil), vec...)
				bestSeq = append([]*oc(nil), seq...)
			}
			return
		}
		for i, c := range pool {
			if used[i] {
				continue
			}
			used[i] = true
			cost := marginal(c, links, transit) // marginal vs the set WITHOUT c
			addedL := addKeys(links, c.links)
			addedT := addKeys(transit, c.transit)
			seq = append(seq, c)
			vec = append(vec, pair{cost, c.rank})
			walk()
			seq = seq[:len(seq)-1]
			vec = vec[:len(vec)-1]
			removeKeys(links, addedL)
			removeKeys(transit, addedT)
			used[i] = false
		}
	}
	walk()
	ids := make([]string, len(bestSeq))
	for i, c := range bestSeq {
		ids[i] = c.id
	}
	return ids
}

// addKeys inserts keys not already present and returns the ones it added
// (so the recursion can undo exactly its own insertions on shared keys).
func addKeys(set map[uint64]struct{}, keys []uint64) []uint64 {
	var added []uint64
	for _, k := range keys {
		if _, ok := set[k]; !ok {
			set[k] = struct{}{}
			added = append(added, k)
		}
	}
	return added
}

func removeKeys(set map[uint64]struct{}, keys []uint64) {
	for _, k := range keys {
		delete(set, k)
	}
}
