// Package selection implements the paper's user-facing path selection: the
// database of measured paths is "queried to provide users with the best
// possible path they can choose for reaching a specific destination, based
// on performance, geographic placement of devices traversed, and operators
// that run them" (§1). It corresponds to the UPIN Path Controller role
// (§2.1) applied to a SCION network.
package selection

import (
	"context"
	"fmt"
	"math"
	"slices"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/upin/scionpath/internal/addr"
	"github.com/upin/scionpath/internal/docdb"
	"github.com/upin/scionpath/internal/measure"
	"github.com/upin/scionpath/internal/pathmgr"
	"github.com/upin/scionpath/internal/topology"
)

// Objective is what the user optimises for.
type Objective int

const (
	// LowestLatency picks the path with the smallest mean RTT.
	LowestLatency Objective = iota
	// HighestBandwidth picks the path with the largest mean of the
	// up/down MTU bandwidths.
	HighestBandwidth
	// LowestLoss picks the path with the smallest mean loss.
	LowestLoss
	// MostStable picks the path with the smallest latency jitter (mdev),
	// the paper's streaming/VoIP criterion: "latency consistency is more
	// important than low latency values" (§6.1).
	MostStable
)

// String implements fmt.Stringer.
func (o Objective) String() string {
	switch o {
	case LowestLatency:
		return "lowest-latency"
	case HighestBandwidth:
		return "highest-bandwidth"
	case LowestLoss:
		return "lowest-loss"
	case MostStable:
		return "most-stable"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// ParseObjective parses the CLI spelling of an objective.
func ParseObjective(s string) (Objective, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "latency", "lowest-latency":
		return LowestLatency, nil
	case "bandwidth", "highest-bandwidth":
		return HighestBandwidth, nil
	case "loss", "lowest-loss":
		return LowestLoss, nil
	case "stable", "jitter", "most-stable":
		return MostStable, nil
	default:
		return 0, fmt.Errorf("selection: unknown objective %q", s)
	}
}

// Request is a user's path request: hard performance bounds, exclusions for
// geographic or sovereignty reasons, and an optimisation objective.
type Request struct {
	Objective Objective

	// Hard performance constraints; zero values mean unconstrained.
	MaxLatencyMs    float64
	MaxLossPct      float64
	MinBandwidthBps float64
	// MinUpBps/MinDownBps constrain one direction only (an uploader cares
	// about client->server, a media consumer about server->client).
	MinUpBps    float64
	MinDownBps  float64
	MaxJitterMs float64
	// MinSamples requires at least this many measurements per path before
	// trusting it (default 1).
	MinSamples int

	// Exclusions: a path is rejected if ANY traversed AS matches.
	ExcludeISDs      []string
	ExcludeASes      []string
	ExcludeCountries []string
	ExcludeOperators []string
}

// Candidate is one measured path with aggregated statistics and its rank.
type Candidate struct {
	PathID   string
	ServerID int
	Hops     int
	ISDs     []string
	Sequence pathmgr.Sequence

	Samples      int
	AvgLatencyMs float64
	JitterMs     float64
	AvgLossPct   float64
	// UpBps/DownBps are the mean achieved MTU-packet bandwidths.
	UpBps, DownBps float64

	// Score is the objective value used for ranking (lower is better).
	Score float64
	// Countries/Operators traversed (for explanation output).
	Countries []string
	Operators []string
}

// Engine answers path requests from the measurement database. It serves
// from an atomically-published snapshot of per-path aggregates (see
// snapshot.go and docs/SERVING.md), refreshed lazily when the backing
// collections' generations move.
type Engine struct {
	db    *docdb.DB
	topo  *topology.Topology
	paths *docdb.Collection
	stats *docdb.Collection
	// owns restricts the snapshot to the destinations this engine serves
	// (nil = all). A sharded serving tier gives every replica its own
	// owner-filtered engine, so each shard's snapshot carries — and each
	// refresh clones and annotates — only its share of the path catalogue.
	owns func(serverID int) bool

	// current is the published serving snapshot; nil until first refresh.
	current atomic.Pointer[snapshot]
	// rebuilds/folds/coalesced count full refreshes, incremental
	// refreshes, and requests served a stale-but-consistent snapshot while
	// another caller's refresh was in flight (tests, /api/stats).
	rebuilds  atomic.Int64
	folds     atomic.Int64
	coalesced atomic.Int64

	// mu guards the single-flight refresh slot below.
	mu       sync.Mutex
	inflight *refreshFlight
}

// Option configures an Engine at construction.
type Option func(*Engine)

// WithServerOwner restricts the engine's serving snapshot to destinations
// for which owns returns true. Select for a non-owned destination reports
// "no collected paths" — the caller (a shard router) must not send it
// there. The uncached oracle path is unaffected.
func WithServerOwner(owns func(serverID int) bool) Option {
	return func(e *Engine) { e.owns = owns }
}

// New returns an engine over the given database and topology. The stats
// collection gets a hash index on path_id (per-path aggregation on full
// rebuilds and in the uncached oracle) and an ordered index on
// timestamp_ms (incremental refresh folds only documents above the
// snapshot's high-water mark); the paths collection gets a hash index on
// server_id and an ordered index on path_index.
func New(db *docdb.DB, topo *topology.Topology, opts ...Option) *Engine {
	stats := db.Collection(measure.ColStats)
	stats.EnsureIndex(measure.FPathID)
	stats.EnsureSortedIndex(measure.FTimestamp)
	paths := db.Collection(measure.ColPaths)
	paths.EnsureIndex(measure.FServerID)
	paths.EnsureSortedIndex(measure.FPathIndex)
	e := &Engine{db: db, topo: topo, paths: paths, stats: stats}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// Counters reports refresh activity since the engine was built: full
// rebuilds, incremental folds, and requests coalesced onto a stale
// snapshot while a refresh was in flight.
func (e *Engine) Counters() (rebuilds, folds, coalesced int64) {
	return e.rebuilds.Load(), e.folds.Load(), e.coalesced.Load()
}

// Select returns the candidate paths to a destination server satisfying the
// request, best first. Paths without measurements are skipped. The answer
// comes from the serving snapshot: when it is current this is a lock-free
// read plus per-request filtering; when stale, one caller refreshes while
// others are served the previous snapshot (bounded staleness, snapshot.go).
func (e *Engine) Select(ctx context.Context, serverID int, req Request) ([]Candidate, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("selection: select cancelled: %w", err)
	}
	snap, err := e.snapshotFor(ctx)
	if err != nil {
		return nil, err
	}
	aggs := snap.servers[serverID]
	if len(aggs) == 0 {
		return nil, fmt.Errorf("selection: no collected paths for server %d", serverID)
	}
	creq := compileRequest(req)
	// One allocation sized to the candidate count: at 10³–10⁴ candidates
	// per destination the append-growth reallocations and the two
	// reflective sort.SliceStable allocations dominated the profile.
	out := make([]Candidate, 0, len(aggs))
	for _, agg := range aggs {
		if agg.samples < creq.minSamples || !creq.passesHops(agg) {
			continue
		}
		cand := agg.candidate()
		if !passesPerformance(&cand, &req) {
			continue
		}
		cand.Score = score(&cand, req.Objective)
		out = append(out, cand)
	}
	return sortByScore(out), nil
}

// sortByScore orders candidates best (lowest score) first, preserving input
// order on ties. It sorts an index vector and applies the permutation once:
// a Candidate is a 168-byte struct with six pointer-bearing fields, and
// letting the sort move the structs themselves (the old sort.SliceStable)
// spent ~70% of a 5000-candidate Select in element copies and their GC
// write barriers.
func sortByScore(cands []Candidate) []Candidate {
	if len(cands) < 2 {
		return cands
	}
	idx := make([]int32, len(cands))
	for i := range idx {
		idx[i] = int32(i)
	}
	slices.SortFunc(idx, func(a, b int32) int {
		sa, sb := cands[a].Score, cands[b].Score
		switch {
		case sa < sb:
			return -1
		case sa > sb:
			return 1
		}
		return int(a - b) // ties keep input order: stable without SortStableFunc
	})
	sorted := make([]Candidate, len(cands))
	for i, j := range idx {
		sorted[i] = cands[j]
	}
	return sorted
}

// selectUncached is the pre-snapshot engine: it re-aggregates each path's
// full stats history on every call. It is kept as the oracle the snapshot
// path is verified against (snapshot_test.go) and as the baseline the
// serving benchmarks measure the cache's speedup from.
func (e *Engine) selectUncached(ctx context.Context, serverID int, req Request) ([]Candidate, error) {
	creq := compileRequest(req)
	pathDocs, err := measure.PathsForServer(e.db, serverID)
	if err != nil {
		return nil, err
	}
	if len(pathDocs) == 0 {
		return nil, fmt.Errorf("selection: no collected paths for server %d", serverID)
	}

	out := make([]Candidate, 0, len(pathDocs))
	for _, pd := range pathDocs {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("selection: select cancelled: %w", err)
		}
		cand, ok := e.aggregate(pd)
		if !ok || cand.Samples < creq.minSamples {
			continue
		}
		if !e.passesExclusions(&cand, &creq) {
			continue
		}
		if !passesPerformance(&cand, &req) {
			continue
		}
		cand.Score = score(&cand, req.Objective)
		out = append(out, cand)
	}
	return sortByScore(out), nil
}

// Best returns the single best candidate, or an error when no path
// satisfies the request.
func (e *Engine) Best(ctx context.Context, serverID int, req Request) (Candidate, error) {
	cands, err := e.Select(ctx, serverID, req)
	if err != nil {
		return Candidate{}, err
	}
	if len(cands) == 0 {
		return Candidate{}, fmt.Errorf("selection: no path to server %d satisfies the request", serverID)
	}
	return cands[0], nil
}

// aggregate folds the paths_stats documents of one path into a candidate.
// It streams them zero-copy with ForEach — only a handful of numeric fields
// are read per document, so cloning each one would be pure overhead.
func (e *Engine) aggregate(pd measure.PathDoc) (Candidate, bool) {
	cand := Candidate{
		PathID:   pd.ID,
		ServerID: pd.ServerID,
		Hops:     pd.Hops,
		ISDs:     pd.ISDs,
		Sequence: pd.Sequence,
	}
	var latSum, mdevSum, lossSum, upSum, downSum float64
	var latN, mdevN, lossN, upN, downN int
	cand.Samples = e.db.Collection(measure.ColStats).ForEach(docdb.Query{
		Filter: docdb.Eq(measure.FPathID, pd.ID),
	}, func(d docdb.Document) bool {
		if v, ok := num(d[measure.FAvgLatency]); ok {
			latSum += v
			latN++
		}
		if v, ok := num(d[measure.FMdev]); ok {
			mdevSum += v
			mdevN++
		}
		if v, ok := num(d[measure.FLoss]); ok {
			lossSum += v
			lossN++
		}
		if v, ok := num(d[measure.FBwUpMTU]); ok {
			upSum += v
			upN++
		}
		if v, ok := num(d[measure.FBwDownMTU]); ok {
			downSum += v
			downN++
		}
		return true
	})
	if cand.Samples == 0 {
		return cand, false
	}
	if latN > 0 {
		cand.AvgLatencyMs = latSum / float64(latN)
	} else {
		cand.AvgLatencyMs = math.Inf(1) // never answered: infinitely slow
	}
	if mdevN > 0 {
		cand.JitterMs = mdevSum / float64(mdevN)
	} else {
		cand.JitterMs = math.Inf(1)
	}
	if lossN > 0 {
		cand.AvgLossPct = lossSum / float64(lossN)
	}
	if upN > 0 {
		cand.UpBps = upSum / float64(upN)
	}
	if downN > 0 {
		cand.DownBps = downSum / float64(downN)
	}
	e.annotateGeo(&cand)
	return cand, true
}

// annotateGeo fills the traversed countries/operators from the topology.
func (e *Engine) annotateGeo(c *Candidate) {
	seenC, seenO := map[string]bool{}, map[string]bool{}
	for _, pred := range c.Sequence {
		ia := addr.IA{ISD: pred.ISD, AS: pred.AS}
		as := e.topo.AS(ia)
		if as == nil {
			continue
		}
		if !seenC[as.Site.Country] {
			seenC[as.Site.Country] = true
			c.Countries = append(c.Countries, as.Site.Country)
		}
		if !seenO[as.Operator] {
			seenO[as.Operator] = true
			c.Operators = append(c.Operators, as.Operator)
		}
	}
}

// compiledRequest holds the request's exclusion lists compiled into hash
// sets once per Select, instead of once per candidate.
type compiledRequest struct {
	minSamples int
	badISD     map[string]bool
	badAS      map[string]bool
	badCountry map[string]bool
	badOp      map[string]bool
}

func compileRequest(req Request) compiledRequest {
	cr := compiledRequest{minSamples: req.MinSamples}
	if cr.minSamples == 0 {
		cr.minSamples = 1
	}
	if len(req.ExcludeISDs) > 0 {
		cr.badISD = make(map[string]bool, len(req.ExcludeISDs))
		for _, isd := range req.ExcludeISDs {
			cr.badISD[isd] = true
		}
	}
	if len(req.ExcludeASes) > 0 {
		cr.badAS = make(map[string]bool, len(req.ExcludeASes))
		for _, a := range req.ExcludeASes {
			cr.badAS[a] = true
		}
	}
	if len(req.ExcludeCountries) > 0 {
		cr.badCountry = make(map[string]bool, len(req.ExcludeCountries))
		for _, cn := range req.ExcludeCountries {
			cr.badCountry[strings.ToLower(cn)] = true
		}
	}
	if len(req.ExcludeOperators) > 0 {
		cr.badOp = make(map[string]bool, len(req.ExcludeOperators))
		for _, op := range req.ExcludeOperators {
			cr.badOp[strings.ToLower(op)] = true
		}
	}
	return cr
}

// passesHops applies the sovereignty/geography filters to a cached
// aggregate using its precomputed hop metadata: no topology lookups, no
// case-folding at request time.
func (cr *compiledRequest) passesHops(a *pathAgg) bool {
	for _, traversed := range a.id.ISDs {
		if cr.badISD[traversed] {
			return false
		}
	}
	if len(cr.badAS) == 0 && len(cr.badCountry) == 0 && len(cr.badOp) == 0 {
		return true
	}
	for i := range a.hops {
		h := &a.hops[i]
		if cr.badAS[h.ia] {
			return false
		}
		if h.known && (cr.badCountry[h.country] || cr.badOp[h.operator]) {
			return false
		}
	}
	return true
}

// passesExclusions is passesHops for the uncached oracle: same filters,
// resolved against the live topology instead of cached hop metadata.
func (e *Engine) passesExclusions(c *Candidate, cr *compiledRequest) bool {
	for _, traversed := range c.ISDs {
		if cr.badISD[traversed] {
			return false
		}
	}
	if len(cr.badAS) == 0 && len(cr.badCountry) == 0 && len(cr.badOp) == 0 {
		return true
	}
	for _, pred := range c.Sequence {
		ia := addr.IA{ISD: pred.ISD, AS: pred.AS}
		if cr.badAS[ia.String()] {
			return false
		}
		as := e.topo.AS(ia)
		if as == nil {
			continue
		}
		if cr.badCountry[strings.ToLower(as.Site.Country)] || cr.badOp[strings.ToLower(as.Operator)] {
			return false
		}
	}
	return true
}

// passesPerformance applies the hard performance bounds. The request is
// passed by pointer: it carries four slice headers, and copying it per
// candidate showed up in the 5000-candidate Select profile.
func passesPerformance(c *Candidate, req *Request) bool {
	if req.MaxLatencyMs > 0 && !(c.AvgLatencyMs <= req.MaxLatencyMs) {
		return false
	}
	if req.MaxLossPct > 0 && c.AvgLossPct > req.MaxLossPct {
		return false
	}
	if req.MaxJitterMs > 0 && !(c.JitterMs <= req.MaxJitterMs) {
		return false
	}
	if req.MinBandwidthBps > 0 {
		if math.Min(c.UpBps, c.DownBps) < req.MinBandwidthBps {
			return false
		}
	}
	if req.MinUpBps > 0 && c.UpBps < req.MinUpBps {
		return false
	}
	if req.MinDownBps > 0 && c.DownBps < req.MinDownBps {
		return false
	}
	return true
}

// score maps a candidate to its ranking value (lower is better).
func score(c *Candidate, o Objective) float64 {
	switch o {
	case HighestBandwidth:
		return -(c.UpBps + c.DownBps) / 2
	case LowestLoss:
		// Loss first, latency as tie-breaker.
		return c.AvgLossPct*1e6 + c.AvgLatencyMs
	case MostStable:
		return c.JitterMs*1e3 + c.AvgLatencyMs
	default: // LowestLatency
		return c.AvgLatencyMs
	}
}

// Explain renders a human-readable justification for a candidate.
func Explain(c Candidate) string {
	var b strings.Builder
	fmt.Fprintf(&b, "path %s: %d hops, ISDs {%s}", c.PathID, c.Hops, strings.Join(c.ISDs, ","))
	if !math.IsInf(c.AvgLatencyMs, 1) {
		fmt.Fprintf(&b, ", avg latency %.1f ms (jitter %.2f ms)", c.AvgLatencyMs, c.JitterMs)
	}
	fmt.Fprintf(&b, ", loss %.1f%%", c.AvgLossPct)
	if c.UpBps > 0 || c.DownBps > 0 {
		fmt.Fprintf(&b, ", bw up/down %.1f/%.1f Mbps", c.UpBps/1e6, c.DownBps/1e6)
	}
	fmt.Fprintf(&b, ", via %s (%s), %d samples",
		strings.Join(c.Countries, ">"), strings.Join(c.Operators, ","), c.Samples)
	return b.String()
}

func num(v any) (float64, bool) {
	switch t := v.(type) {
	case float64:
		return t, true
	case int:
		return float64(t), true
	case int64:
		return float64(t), true
	default:
		return 0, false
	}
}
