package selection

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"github.com/upin/scionpath/internal/topology"
)

// TestWithServerOwner: an owner-filtered engine snapshots only its own
// destinations, answers them identically to an unfiltered engine, and
// reports "no collected paths" for the rest.
func TestWithServerOwner(t *testing.T) {
	full, db, ids := collectedWorld(t, 91)
	w := newStatsWriter(t, db, 91)
	w.insertInOrder(t, 400)
	if len(ids) < 2 {
		t.Fatalf("need >= 2 served destinations, have %d", len(ids))
	}
	mine, theirs := ids[0], ids[1]
	sharded := New(db, topology.DefaultWorld(),
		WithServerOwner(func(id int) bool { return id == mine }))

	ctx := context.Background()
	got, err := sharded.Select(ctx, mine, Request{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := full.Select(ctx, mine, Request{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("owned destination: sharded answer diverges from full engine")
	}

	if _, err := sharded.Select(ctx, theirs, Request{}); err == nil ||
		!strings.Contains(err.Error(), "no collected paths") {
		t.Errorf("non-owned destination: err = %v, want no-collected-paths", err)
	}

	fullInfo, ok := full.SnapshotInfo()
	if !ok {
		t.Fatal("full engine has no snapshot")
	}
	shardInfo, ok := sharded.SnapshotInfo()
	if !ok {
		t.Fatal("sharded engine has no snapshot")
	}
	if shardInfo.Paths >= fullInfo.Paths {
		t.Errorf("sharded snapshot holds %d paths, full %d: owner filter not applied",
			shardInfo.Paths, fullInfo.Paths)
	}
	// Both engines stream the same stats history (accounting invariant).
	if shardInfo.StatsFolded != fullInfo.StatsFolded {
		t.Errorf("folded accounting diverged: shard %d, full %d",
			shardInfo.StatsFolded, fullInfo.StatsFolded)
	}

	// Incremental refresh keeps working on the filtered snapshot.
	w.insertInOrder(t, 50)
	got2, err := sharded.Select(ctx, mine, Request{})
	if err != nil {
		t.Fatal(err)
	}
	want2, err := full.Select(ctx, mine, Request{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got2, want2) {
		t.Errorf("after incremental refresh: sharded answer diverges from full engine")
	}
	rebuilds, folds, _ := sharded.Counters()
	if rebuilds != 1 || folds != 1 {
		t.Errorf("counters: rebuilds=%d folds=%d, want 1/1", rebuilds, folds)
	}
}
