package selection

// Disjointness-aware multipath selection (see docs/SELECTION.md). Users
// increasingly want path *sets*, not one best path: a split transfer over K
// link-disjoint paths aggregates their bottlenecks, while K copies of the
// same bottleneck buy nothing. SelectSet assembles such a set greedily from
// the serving snapshot:
//
//   - candidates are filtered and scored exactly like Select (same request
//     semantics, same snapshot, same lock-free read path and single-flight
//     refresh contract — docs/SERVING.md);
//   - the set is built by sequential argmin over a marginal cost that adds
//     a shared-link and a shared-AS penalty to the normalized base score,
//     so among score-tied candidates the one overlapping least with the
//     already-chosen set wins;
//   - hop-level overlap keys (directed AS-pair links, interior ASes) are
//     computed once per snapshot generation in rebuild and cached on each
//     pathAgg, so the per-request work is hash-set probes, not sequence
//     parsing.
//
// The objective is deliberately lexicographic and user-first: the top path
// is non-negotiable (it is always Best — the axiomatic "optimality" axiom),
// then the best-penalized complement given it, and so on. Under that
// objective the greedy sequence IS the optimum, which is what the
// brute-force oracle in axioms_test.go verifies exhaustively on small
// pools, alongside the remaining axioms (nesting, independence of
// irrelevant alternatives, disjointness preference between score-tied
// paths).

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"slices"
)

// Default penalty weights: a candidate whose every link is already used by
// the chosen set pays defaultLinkPenalty on top of its normalized score
// (scores normalize into [0,1], so full link overlap outweighs any score
// difference), while full interior-AS overlap pays the milder AS weight —
// shared infrastructure without a shared bottleneck link.
const (
	defaultSetK        = 2
	defaultLinkPenalty = 1.0
	defaultASPenalty   = 0.25
)

// SetRequest asks for a K-path set under the base request's filters and
// objective. Zero-valued knobs fall back to the documented defaults; a
// negative penalty weight disables that penalty (SelectSet degenerates to
// top-K by score when both are disabled).
type SetRequest struct {
	Request

	// K is the number of paths wanted (default 2). Fewer are returned
	// when fewer candidates pass the base request's filters; K=1
	// degenerates to exactly Best.
	K int
	// LinkPenalty weights the fraction of a candidate's directed AS-pair
	// links already used by the chosen set (default 1.0; negative = 0).
	LinkPenalty float64
	// ASPenalty weights the fraction of a candidate's interior ASes
	// (endpoints excluded — every candidate to a destination shares them)
	// already traversed by the chosen set (default 0.25; negative = 0).
	ASPenalty float64
}

// withDefaults resolves the documented defaults and clamps.
func (r SetRequest) withDefaults() SetRequest {
	if r.K < 1 {
		r.K = defaultSetK
	}
	switch {
	case r.LinkPenalty == 0:
		r.LinkPenalty = defaultLinkPenalty
	case r.LinkPenalty < 0:
		r.LinkPenalty = 0
	}
	switch {
	case r.ASPenalty == 0:
		r.ASPenalty = defaultASPenalty
	case r.ASPenalty < 0:
		r.ASPenalty = 0
	}
	return r
}

// PathSet is a selected multipath set, best path first.
type PathSet struct {
	// Paths holds the chosen candidates in selection order: Paths[0] is
	// always the single best path of the base request.
	Paths []Candidate
	// Disjointness is the fraction of link traversals across the set used
	// by exactly one chosen path: 1 = fully link-disjoint (and always 1
	// for a single-path set), 0 = every link shared.
	Disjointness float64
	// SharedLinks counts link traversals whose directed link is used by
	// two or more chosen paths; SharedASes counts the analogous interior-
	// AS traversals.
	SharedLinks int
	SharedASes  int
}

// SelectSet assembles a K-path set to the destination. Ranking and
// filtering follow Select exactly; assembly is greedy under the marginal
// cost
//
//	normScore(c) + LinkPenalty·sharedLinkFrac(c,S) + ASPenalty·sharedASFrac(c,S)
//
// with ties broken toward the better base rank. Like Best, it returns an
// error when no candidate satisfies the request.
func (e *Engine) SelectSet(ctx context.Context, serverID int, req SetRequest) (PathSet, error) {
	if err := ctx.Err(); err != nil {
		return PathSet{}, fmt.Errorf("selection: select cancelled: %w", err)
	}
	req = req.withDefaults()
	snap, err := e.snapshotFor(ctx)
	if err != nil {
		return PathSet{}, err
	}
	aggs := snap.servers[serverID]
	if len(aggs) == 0 {
		return PathSet{}, fmt.Errorf("selection: no collected paths for server %d", serverID)
	}
	creq := compileRequest(req.Request)
	cands := make([]Candidate, 0, len(aggs))
	pool := make([]*pathAgg, 0, len(aggs))
	for _, agg := range aggs {
		if agg.samples < creq.minSamples || !creq.passesHops(agg) {
			continue
		}
		cand := agg.candidate()
		if !passesPerformance(&cand, &req.Request) {
			continue
		}
		cand.Score = score(&cand, req.Objective)
		cands = append(cands, cand)
		pool = append(pool, agg)
	}
	if len(cands) == 0 {
		return PathSet{}, fmt.Errorf("selection: no path to server %d satisfies the request", serverID)
	}
	order := rankByScore(cands)
	chosen := greedySet(cands, pool, order, req)
	return assembleSet(cands, pool, chosen), nil
}

// rankByScore returns candidate indexes sorted best (lowest score) first,
// ties keeping input order — the same total order sortByScore applies in
// Select, so cands[order[0]] is exactly Best.
func rankByScore(cands []Candidate) []int32 {
	order := make([]int32, len(cands))
	for i := range order {
		order[i] = int32(i)
	}
	slices.SortFunc(order, func(a, b int32) int {
		sa, sb := cands[a].Score, cands[b].Score
		switch {
		case sa < sb:
			return -1
		case sa > sb:
			return 1
		}
		return int(a - b)
	})
	return order
}

// greedySet picks min(K, len) candidates by sequential argmin over the
// marginal cost, returning their indexes into cands in selection order.
// The argmin at each step is unique — the tie-break on rank is a total
// order — so the result is deterministic for a given snapshot and request.
func greedySet(cands []Candidate, pool []*pathAgg, order []int32, req SetRequest) []int32 {
	k := min(req.K, len(cands))
	norm := normScores(cands, order)
	usedLinks := make(map[uint64]struct{})
	usedAS := make(map[uint64]struct{})
	taken := make([]bool, len(cands))
	chosen := make([]int32, 0, k)
	for len(chosen) < k {
		bestRank := -1
		bestCost := math.Inf(1)
		for rank, ci := range order {
			if taken[ci] {
				continue
			}
			cost := norm[ci] +
				req.LinkPenalty*overlapFrac(pool[ci].links, usedLinks) +
				req.ASPenalty*overlapFrac(pool[ci].transit, usedAS)
			// Strictly-less keeps the lowest rank among cost ties: rank
			// iterates best-first.
			if cost < bestCost {
				bestCost, bestRank = cost, rank
			}
		}
		ci := order[bestRank]
		taken[ci] = true
		chosen = append(chosen, ci)
		markUsed(usedLinks, pool[ci].links)
		markUsed(usedAS, pool[ci].transit)
	}
	return chosen
}

// normScores maps scores into [0,1] by min-max over the pool (order is the
// score-sorted index vector, so min/max are its ends). Infinite scores —
// paths that never answered under a latency objective — land at 2, beyond
// any finite candidate but still selectable when nothing else is left. A
// degenerate pool (all scores equal) normalizes to all zeros, leaving the
// penalties alone to differentiate.
func normScores(cands []Candidate, order []int32) []float64 {
	lo := cands[order[0]].Score
	hi := lo
	for _, ci := range order[1:] {
		if s := cands[ci].Score; !math.IsInf(s, 0) && s > hi {
			hi = s
		}
	}
	out := make([]float64, len(cands))
	span := hi - lo
	for i, c := range cands {
		switch {
		case math.IsInf(c.Score, 0):
			out[i] = 2
		case span > 0:
			out[i] = (c.Score - lo) / span
		}
	}
	return out
}

// overlapFrac is the fraction of keys already present in used.
func overlapFrac(keys []uint64, used map[uint64]struct{}) float64 {
	if len(keys) == 0 || len(used) == 0 {
		return 0
	}
	shared := 0
	for _, k := range keys {
		if _, ok := used[k]; ok {
			shared++
		}
	}
	return float64(shared) / float64(len(keys))
}

func markUsed(used map[uint64]struct{}, keys []uint64) {
	for _, k := range keys {
		used[k] = struct{}{}
	}
}

// assembleSet materialises the PathSet and its disjointness accounting:
// a traversal (one path using one link / interior AS) counts as shared
// when at least one other chosen path uses the same key.
func assembleSet(cands []Candidate, pool []*pathAgg, chosen []int32) PathSet {
	set := PathSet{Paths: make([]Candidate, 0, len(chosen))}
	linkUses := make(map[uint64]int)
	asUses := make(map[uint64]int)
	totalLinks := 0
	for _, ci := range chosen {
		set.Paths = append(set.Paths, cands[ci])
		for _, k := range pool[ci].links {
			linkUses[k]++
			totalLinks++
		}
		for _, k := range pool[ci].transit {
			asUses[k]++
		}
	}
	for _, ci := range chosen {
		for _, k := range pool[ci].links {
			if linkUses[k] > 1 {
				set.SharedLinks++
			}
		}
		for _, k := range pool[ci].transit {
			if asUses[k] > 1 {
				set.SharedASes++
			}
		}
	}
	set.Disjointness = 1
	if totalLinks > 0 {
		set.Disjointness = 1 - float64(set.SharedLinks)/float64(totalLinks)
	}
	return set
}

// overlapKeys derives a path's overlap identity from its cached hop
// metadata: one key per distinct directed AS-pair link, one per distinct
// interior AS (endpoints excluded — the source and destination ASes are
// common to every candidate for a destination and carry no disjointness
// signal). The keys form a SET — a path that traverses an AS twice still
// overlaps with itself zero times. Keys are FNV-64a over the canonical IA
// renderings, the same hash the cluster tier's rendezvous placement
// trusts.
func overlapKeys(hops []hopMeta) (links, transit []uint64) {
	seen := make(map[uint64]struct{}, len(hops)*2)
	dedup := func(out []uint64, k uint64) []uint64 {
		if _, ok := seen[k]; ok {
			return out
		}
		seen[k] = struct{}{}
		return append(out, k)
	}
	if len(hops) > 1 {
		links = make([]uint64, 0, len(hops)-1)
		for i := 0; i+1 < len(hops); i++ {
			h := fnv.New64a()
			_, _ = h.Write([]byte(hops[i].ia)) // fnv.Write never fails
			_, _ = h.Write([]byte{'>'})
			_, _ = h.Write([]byte(hops[i+1].ia))
			links = dedup(links, h.Sum64())
		}
	}
	if len(hops) > 2 {
		clear(seen) // link and AS keys live in separate spaces
		transit = make([]uint64, 0, len(hops)-2)
		for _, hm := range hops[1 : len(hops)-1] {
			h := fnv.New64a()
			_, _ = h.Write([]byte(hm.ia)) // fnv.Write never fails
			transit = dedup(transit, h.Sum64())
		}
	}
	return links, transit
}
