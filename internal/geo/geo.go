// Package geo models the geographic placement of SCIONLab ASes and derives
// physical link properties from it. Propagation delay between two sites is
// computed from the great-circle distance at the speed of light in fibre
// (about 2/3 c), which is the dominant latency component the paper observes:
// "the physical distance between hops confirms to be the predominant
// component in the latency assessment" (§6.1).
package geo

import (
	"fmt"
	"math"
	"time"
)

// Coordinates is a latitude/longitude pair in degrees.
type Coordinates struct {
	Lat float64 // degrees, positive north
	Lon float64 // degrees, positive east
}

// String renders coordinates as "lat,lon" with 4 decimal places.
func (c Coordinates) String() string {
	return fmt.Sprintf("%.4f,%.4f", c.Lat, c.Lon)
}

// Valid reports whether the coordinates lie in the usual ranges.
func (c Coordinates) Valid() bool {
	return c.Lat >= -90 && c.Lat <= 90 && c.Lon >= -180 && c.Lon <= 180
}

const (
	// EarthRadiusKm is the mean Earth radius.
	EarthRadiusKm = 6371.0
	// FibreSpeedKmPerMs is the signal speed in optical fibre (~0.67 c).
	FibreSpeedKmPerMs = 200.0
	// RouteFactor inflates great-circle distance to account for real cable
	// routing, which never follows geodesics exactly.
	RouteFactor = 1.2
)

// DistanceKm returns the great-circle distance between two coordinates using
// the haversine formula.
func DistanceKm(a, b Coordinates) float64 {
	const degToRad = math.Pi / 180
	lat1 := a.Lat * degToRad
	lat2 := b.Lat * degToRad
	dLat := (b.Lat - a.Lat) * degToRad
	dLon := (b.Lon - a.Lon) * degToRad
	s := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	// Clamp for numerical safety near antipodes.
	if s > 1 {
		s = 1
	}
	return 2 * EarthRadiusKm * math.Asin(math.Sqrt(s))
}

// PropagationDelay returns the one-way fibre propagation delay between two
// sites, including the cable-routing inflation factor.
func PropagationDelay(a, b Coordinates) time.Duration {
	ms := DistanceKm(a, b) * RouteFactor / FibreSpeedKmPerMs
	return time.Duration(ms * float64(time.Millisecond))
}

// Site is a named geographic location hosting one or more ASes.
type Site struct {
	Name    string
	Country string // ISO-like country name used in sovereignty filters
	Coords  Coordinates
}

// Well-known sites of the SCIONLab world topology used in this
// reproduction. Country names are what the path-selection layer filters on.
var (
	Zurich       = Site{"Zurich", "Switzerland", Coordinates{47.3769, 8.5417}}
	Magdeburg    = Site{"Magdeburg", "Germany", Coordinates{52.1205, 11.6276}}
	Darmstadt    = Site{"Darmstadt", "Germany", Coordinates{49.8728, 8.6512}}
	Amsterdam    = Site{"Amsterdam", "Netherlands", Coordinates{52.3676, 4.9041}}
	London       = Site{"London", "United Kingdom", Coordinates{51.5072, -0.1276}}
	Dublin       = Site{"Dublin", "Ireland", Coordinates{53.3498, -6.2603}}
	Paris        = Site{"Paris", "France", Coordinates{48.8566, 2.3522}}
	Geneva       = Site{"Geneva", "Switzerland", Coordinates{46.2044, 6.1432}}
	Bern         = Site{"Bern", "Switzerland", Coordinates{46.9480, 7.4474}}
	Turin        = Site{"Turin", "Italy", Coordinates{45.0703, 7.6869}}
	Lisbon       = Site{"Lisbon", "Portugal", Coordinates{38.7223, -9.1393}}
	Ashburn      = Site{"Ashburn", "United States", Coordinates{39.0438, -77.4874}}
	Columbus     = Site{"Columbus", "United States", Coordinates{39.9612, -82.9988}}
	NewYork      = Site{"New York", "United States", Coordinates{40.7128, -74.0060}}
	Oregon       = Site{"Boardman", "United States", Coordinates{45.8399, -119.7006}}
	SaoPaulo     = Site{"Sao Paulo", "Brazil", Coordinates{-23.5505, -46.6333}}
	Singapore    = Site{"Singapore", "Singapore", Coordinates{1.3521, 103.8198}}
	Seoul        = Site{"Seoul", "South Korea", Coordinates{37.5665, 126.9780}}
	Daejeon      = Site{"Daejeon", "South Korea", Coordinates{36.3504, 127.3845}}
	Tokyo        = Site{"Tokyo", "Japan", Coordinates{35.6762, 139.6503}}
	Sydney       = Site{"Sydney", "Australia", Coordinates{-33.8688, 151.2093}}
	Bangalore    = Site{"Bangalore", "India", Coordinates{12.9716, 77.5946}}
	TelAviv      = Site{"Tel Aviv", "Israel", Coordinates{32.0853, 34.7818}}
	Taipei       = Site{"Taipei", "Taiwan", Coordinates{25.0330, 121.5654}}
	HongKong     = Site{"Hong Kong", "Hong Kong", Coordinates{22.3193, 114.1694}}
	Frankfurt    = Site{"Frankfurt", "Germany", Coordinates{50.1109, 8.6821}}
	Stockholm    = Site{"Stockholm", "Sweden", Coordinates{59.3293, 18.0686}}
	Prague       = Site{"Prague", "Czechia", Coordinates{50.0755, 14.4378}}
	Vienna       = Site{"Vienna", "Austria", Coordinates{48.2082, 16.3738}}
	Madrid       = Site{"Madrid", "Spain", Coordinates{40.4168, -3.7038}}
	Helsinki     = Site{"Helsinki", "Finland", Coordinates{60.1699, 24.9384}}
	Toronto      = Site{"Toronto", "Canada", Coordinates{43.6532, -79.3832}}
	LosAngeles   = Site{"Los Angeles", "United States", Coordinates{34.0522, -118.2437}}
	Mumbai       = Site{"Mumbai", "India", Coordinates{19.0760, 72.8777}}
	Johannesburg = Site{"Johannesburg", "South Africa", Coordinates{-26.2041, 28.0473}}
)

// AllSites returns the full site catalogue in a fixed order (the declaration
// order above). The topology generator draws AS placements from it; callers
// own the returned slice and may reorder it freely.
func AllSites() []Site {
	return []Site{
		Zurich, Magdeburg, Darmstadt, Amsterdam, London, Dublin, Paris,
		Geneva, Bern, Turin, Lisbon, Ashburn, Columbus, NewYork, Oregon,
		SaoPaulo, Singapore, Seoul, Daejeon, Tokyo, Sydney, Bangalore,
		TelAviv, Taipei, HongKong, Frankfurt, Stockholm, Prague, Vienna,
		Madrid, Helsinki, Toronto, LosAngeles, Mumbai, Johannesburg,
	}
}
