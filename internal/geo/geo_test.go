package geo

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestDistanceKnownPairs(t *testing.T) {
	cases := []struct {
		a, b        Coordinates
		wantKm      float64
		toleranceKm float64
	}{
		// Zurich–Dublin is roughly 1230 km.
		{Zurich.Coords, Dublin.Coords, 1230, 60},
		// Zurich–Singapore roughly 10300 km.
		{Zurich.Coords, Singapore.Coords, 10300, 300},
		// Ashburn–Columbus roughly 480 km.
		{Ashburn.Coords, Columbus.Coords, 480, 60},
		// Same point.
		{Zurich.Coords, Zurich.Coords, 0, 0.001},
	}
	for _, c := range cases {
		got := DistanceKm(c.a, c.b)
		if math.Abs(got-c.wantKm) > c.toleranceKm {
			t.Errorf("DistanceKm(%v,%v) = %.1f, want %.1f±%.1f", c.a, c.b, got, c.wantKm, c.toleranceKm)
		}
	}
}

func TestDistanceSymmetric(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Coordinates{clamp(lat1, -90, 90), clamp(lon1, -180, 180)}
		b := Coordinates{clamp(lat2, -90, 90), clamp(lon2, -180, 180)}
		d1, d2 := DistanceKm(a, b), DistanceKm(b, a)
		return math.Abs(d1-d2) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestDistanceTriangleInequality(t *testing.T) {
	f := func(l1, o1, l2, o2, l3, o3 float64) bool {
		a := Coordinates{clamp(l1, -90, 90), clamp(o1, -180, 180)}
		b := Coordinates{clamp(l2, -90, 90), clamp(o2, -180, 180)}
		c := Coordinates{clamp(l3, -90, 90), clamp(o3, -180, 180)}
		return DistanceKm(a, c) <= DistanceKm(a, b)+DistanceKm(b, c)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDistanceBounded(t *testing.T) {
	// No two points on Earth are farther apart than half the circumference.
	maxD := math.Pi * EarthRadiusKm
	f := func(l1, o1, l2, o2 float64) bool {
		a := Coordinates{clamp(l1, -90, 90), clamp(o1, -180, 180)}
		b := Coordinates{clamp(l2, -90, 90), clamp(o2, -180, 180)}
		d := DistanceKm(a, b)
		return d >= 0 && d <= maxD+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestPropagationDelay(t *testing.T) {
	// Zurich–Dublin: ~1230 km * 1.2 / 200 km/ms ≈ 7.4 ms one way.
	d := PropagationDelay(Zurich.Coords, Dublin.Coords)
	if d < 6*time.Millisecond || d > 9*time.Millisecond {
		t.Errorf("Zurich-Dublin propagation %v, want ~7.4ms", d)
	}
	// Transpacific should be tens of ms.
	d2 := PropagationDelay(Zurich.Coords, Singapore.Coords)
	if d2 < 50*time.Millisecond || d2 > 80*time.Millisecond {
		t.Errorf("Zurich-Singapore propagation %v, want 50-80ms", d2)
	}
	if PropagationDelay(Zurich.Coords, Zurich.Coords) != 0 {
		t.Error("zero distance should have zero delay")
	}
}

func TestCoordinatesValid(t *testing.T) {
	if !(Coordinates{45, 90}).Valid() {
		t.Error("45,90 should be valid")
	}
	for _, c := range []Coordinates{{91, 0}, {-91, 0}, {0, 181}, {0, -181}} {
		if c.Valid() {
			t.Errorf("%v should be invalid", c)
		}
	}
}

func TestSitesPlausible(t *testing.T) {
	sites := []Site{Zurich, Magdeburg, Darmstadt, Amsterdam, London, Dublin,
		Paris, Geneva, Bern, Turin, Lisbon, Ashburn, Columbus, NewYork, Oregon,
		SaoPaulo, Singapore, Seoul, Daejeon, Tokyo, Sydney, Bangalore, TelAviv,
		Taipei, HongKong, Frankfurt, Stockholm, Prague, Vienna, Madrid,
		Helsinki, Toronto, LosAngeles, Mumbai, Johannesburg}
	seen := map[string]bool{}
	for _, s := range sites {
		if s.Name == "" || s.Country == "" {
			t.Errorf("site %+v missing name or country", s)
		}
		if !s.Coords.Valid() {
			t.Errorf("site %s has invalid coords %v", s.Name, s.Coords)
		}
		if seen[s.Name] {
			t.Errorf("duplicate site name %s", s.Name)
		}
		seen[s.Name] = true
	}
}

func TestCoordinatesString(t *testing.T) {
	got := Coordinates{47.3769, 8.5417}.String()
	if got != "47.3769,8.5417" {
		t.Errorf("String: %q", got)
	}
}

func clamp(v, lo, hi float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return lo
	}
	// Fold arbitrary floats into range deterministically.
	r := math.Mod(v, hi-lo)
	if r < 0 {
		r += hi - lo
	}
	return lo + r
}

func TestAllSitesCatalogue(t *testing.T) {
	sites := AllSites()
	if len(sites) != 35 {
		t.Fatalf("AllSites: %d sites, want 35", len(sites))
	}
	seen := map[string]bool{}
	for _, s := range sites {
		if s.Name == "" || !s.Coords.Valid() {
			t.Errorf("site %+v invalid", s)
		}
		if seen[s.Name] {
			t.Errorf("duplicate site %s", s.Name)
		}
		seen[s.Name] = true
	}
	// Callers may reorder their copy without affecting later calls.
	cp := AllSites()
	cp[0], cp[1] = cp[1], cp[0]
	if AllSites()[0] != Zurich {
		t.Error("AllSites does not return a fresh slice")
	}
}
