// Package addr implements SCION addressing: ISD (isolation domain)
// identifiers, AS numbers in the BGP-style and SCION-style ("ffaa:0:1101")
// notations, combined ISD-AS identifiers such as "16-ffaa:0:1002", and full
// SCION host addresses such as "16-ffaa:0:1002,[172.31.43.7]".
//
// The formats follow the SCION documentation and the strings printed by the
// scion command-line tools used in the paper (showpaths, ping, traceroute,
// bwtestclient).
package addr

import (
	"fmt"
	"strconv"
	"strings"
)

// ISD is an isolation-domain identifier. ISDs group ASes into independent
// routing planes; SCIONLab uses ISDs 16..20 plus a few regional ones.
type ISD uint16

// AS is a SCION AS number, a 48-bit value. Values below 2^32 may be printed
// in decimal (BGP compatibility); larger values use the colon-separated
// 16-bit group notation, e.g. "ffaa:0:1101".
type AS uint64

// MaxAS is the largest valid AS number (48 bits).
const MaxAS AS = (1 << 48) - 1

// asDecimalMax is the threshold below which AS numbers render in decimal.
const asDecimalMax AS = 1 << 32

// IA is a combined ISD-AS identifier, e.g. "16-ffaa:0:1002".
type IA struct {
	ISD ISD
	AS  AS
}

// Zero reports whether ia is the zero value (wildcard in hop predicates).
func (ia IA) Zero() bool { return ia.ISD == 0 && ia.AS == 0 }

// String renders the ISD-AS pair in canonical SCION notation.
func (ia IA) String() string {
	return fmt.Sprintf("%d-%s", ia.ISD, ia.AS)
}

// String renders the AS number: decimal when it fits in 32 bits, otherwise
// three colon-separated 16-bit hexadecimal groups.
func (a AS) String() string {
	if a > MaxAS {
		return fmt.Sprintf("<invalid AS %d>", uint64(a))
	}
	if a < asDecimalMax {
		return strconv.FormatUint(uint64(a), 10)
	}
	return fmt.Sprintf("%x:%x:%x",
		uint16(a>>32), uint16(a>>16), uint16(a))
}

// ParseAS parses an AS number in either decimal or colon notation.
func ParseAS(s string) (AS, error) {
	if s == "" {
		return 0, fmt.Errorf("addr: empty AS")
	}
	if strings.Contains(s, ":") {
		parts := strings.Split(s, ":")
		if len(parts) != 3 {
			return 0, fmt.Errorf("addr: AS %q: want 3 colon groups, have %d", s, len(parts))
		}
		var v uint64
		for _, p := range parts {
			if p == "" {
				return 0, fmt.Errorf("addr: AS %q: empty group", s)
			}
			g, err := strconv.ParseUint(p, 16, 16)
			if err != nil {
				return 0, fmt.Errorf("addr: AS %q: %w", s, err)
			}
			v = v<<16 | g
		}
		return AS(v), nil
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("addr: AS %q: %w", s, err)
	}
	if AS(v) > MaxAS {
		return 0, fmt.Errorf("addr: AS %q exceeds 48 bits", s)
	}
	return AS(v), nil
}

// MustParseAS is ParseAS that panics on error; for constants in tests and
// topology literals.
func MustParseAS(s string) AS {
	a, err := ParseAS(s)
	if err != nil {
		panic(err)
	}
	return a
}

// ParseIA parses an ISD-AS pair such as "16-ffaa:0:1002".
func ParseIA(s string) (IA, error) {
	isdStr, asStr, ok := strings.Cut(s, "-")
	if !ok {
		return IA{}, fmt.Errorf("addr: ISD-AS %q: missing '-'", s)
	}
	isd, err := strconv.ParseUint(isdStr, 10, 16)
	if err != nil {
		return IA{}, fmt.Errorf("addr: ISD-AS %q: bad ISD: %w", s, err)
	}
	as, err := ParseAS(asStr)
	if err != nil {
		return IA{}, fmt.Errorf("addr: ISD-AS %q: bad AS: %w", s, err)
	}
	return IA{ISD: ISD(isd), AS: as}, nil
}

// MustParseIA is ParseIA that panics on error.
func MustParseIA(s string) IA {
	ia, err := ParseIA(s)
	if err != nil {
		panic(err)
	}
	return ia
}

// Host is a full SCION host address: an ISD-AS plus an AS-local host
// identifier, rendered as "16-ffaa:0:1002,[172.31.43.7]". The local part is
// treated as an opaque string (IPv4, IPv6, or service name).
type Host struct {
	IA    IA
	Local string
}

// String renders the host address in the bracketed form the scion tools use.
func (h Host) String() string {
	return fmt.Sprintf("%s,[%s]", h.IA, h.Local)
}

// ParseHost parses "ISD-AS,[local]" or the unbracketed "ISD-AS,local" form.
func ParseHost(s string) (Host, error) {
	iaStr, local, ok := strings.Cut(s, ",")
	if !ok {
		return Host{}, fmt.Errorf("addr: host %q: missing ','", s)
	}
	ia, err := ParseIA(iaStr)
	if err != nil {
		return Host{}, err
	}
	local = strings.TrimSpace(local)
	if strings.HasPrefix(local, "[") && strings.HasSuffix(local, "]") {
		local = local[1 : len(local)-1]
	}
	if local == "" {
		return Host{}, fmt.Errorf("addr: host %q: empty local part", s)
	}
	return Host{IA: ia, Local: local}, nil
}

// MustParseHost is ParseHost that panics on error.
func MustParseHost(s string) Host {
	h, err := ParseHost(s)
	if err != nil {
		panic(err)
	}
	return h
}

// IfID identifies an interface of an AS border router. Interface 0 is the
// wildcard in hop predicates.
type IfID uint16
