package addr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseASDecimal(t *testing.T) {
	cases := []struct {
		in   string
		want AS
	}{
		{"0", 0},
		{"1", 1},
		{"65535", 65535},
		{"4294967295", 4294967295},
	}
	for _, c := range cases {
		got, err := ParseAS(c.in)
		if err != nil {
			t.Fatalf("ParseAS(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("ParseAS(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParseASColon(t *testing.T) {
	cases := []struct {
		in   string
		want AS
	}{
		{"ffaa:0:1002", 0xffaa_0000_1002},
		{"ffaa:0:1101", 0xffaa_0000_1101},
		{"1:0:0", 0x1_0000_0000},
		{"ffff:ffff:ffff", MaxAS},
	}
	for _, c := range cases {
		got, err := ParseAS(c.in)
		if err != nil {
			t.Fatalf("ParseAS(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("ParseAS(%q) = %#x, want %#x", c.in, uint64(got), uint64(c.want))
		}
	}
}

func TestParseASErrors(t *testing.T) {
	for _, in := range []string{
		"", "x", "1:2", "1:2:3:4", "ffaa::1002", "fffff:0:0",
		"281474976710656, ", "281474976710656", "-1", "1:2:zz",
	} {
		if _, err := ParseAS(in); err == nil {
			t.Errorf("ParseAS(%q): want error, got nil", in)
		}
	}
}

func TestASStringDecimalVsColon(t *testing.T) {
	if got := AS(64512).String(); got != "64512" {
		t.Errorf("AS(64512) = %q, want 64512", got)
	}
	if got := AS(0xffaa_0000_1002).String(); got != "ffaa:0:1002" {
		t.Errorf("AS ffaa:0:1002 rendered %q", got)
	}
	if got := AS(MaxAS + 1).String(); got == "" {
		t.Errorf("invalid AS should render a marker, got empty")
	}
}

func TestParseIA(t *testing.T) {
	ia, err := ParseIA("16-ffaa:0:1002")
	if err != nil {
		t.Fatal(err)
	}
	if ia.ISD != 16 || ia.AS != 0xffaa_0000_1002 {
		t.Errorf("ParseIA: got %+v", ia)
	}
	if s := ia.String(); s != "16-ffaa:0:1002" {
		t.Errorf("String: got %q", s)
	}
}

func TestParseIAErrors(t *testing.T) {
	for _, in := range []string{"", "16", "16-", "-ffaa:0:1", "99999-ffaa:0:1", "x-1"} {
		if _, err := ParseIA(in); err == nil {
			t.Errorf("ParseIA(%q): want error", in)
		}
	}
}

func TestIAZero(t *testing.T) {
	if !(IA{}).Zero() {
		t.Error("zero IA not Zero()")
	}
	if (IA{ISD: 1}).Zero() || (IA{AS: 1}).Zero() {
		t.Error("non-zero IA reported Zero()")
	}
}

func TestParseHost(t *testing.T) {
	h, err := ParseHost("16-ffaa:0:1002,[172.31.43.7]")
	if err != nil {
		t.Fatal(err)
	}
	if h.IA != MustParseIA("16-ffaa:0:1002") || h.Local != "172.31.43.7" {
		t.Errorf("got %+v", h)
	}
	if s := h.String(); s != "16-ffaa:0:1002,[172.31.43.7]" {
		t.Errorf("String: %q", s)
	}
	// Unbracketed form.
	h2, err := ParseHost("19-ffaa:0:1303,141.44.25.144")
	if err != nil {
		t.Fatal(err)
	}
	if h2.Local != "141.44.25.144" {
		t.Errorf("unbracketed local: %q", h2.Local)
	}
}

func TestParseHostErrors(t *testing.T) {
	for _, in := range []string{"", "16-ffaa:0:1002", "16-ffaa:0:1002,", "bad,[1.2.3.4]"} {
		if _, err := ParseHost(in); err == nil {
			t.Errorf("ParseHost(%q): want error", in)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"AS":   func() { MustParseAS("zz") },
		"IA":   func() { MustParseIA("zz") },
		"Host": func() { MustParseHost("zz") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MustParse%s: want panic", name)
				}
			}()
			f()
		}()
	}
}

// Property: String∘ParseAS is the identity on the canonical rendering of
// every valid AS number.
func TestASRoundTripQuick(t *testing.T) {
	f := func(v uint64) bool {
		a := AS(v & uint64(MaxAS))
		parsed, err := ParseAS(a.String())
		return err == nil && parsed == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: ParseIA∘String is the identity for all valid IAs.
func TestIARoundTripQuick(t *testing.T) {
	f := func(isd uint16, as uint64) bool {
		ia := IA{ISD: ISD(isd), AS: AS(as & uint64(MaxAS))}
		parsed, err := ParseIA(ia.String())
		return err == nil && parsed == ia
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: host round trip with random IPv4-looking locals.
func TestHostRoundTripQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		h := Host{
			IA: IA{ISD: ISD(rng.Intn(1 << 16)), AS: AS(rng.Uint64() & uint64(MaxAS))},
			Local: "10." + itoa(rng.Intn(256)) + "." +
				itoa(rng.Intn(256)) + "." + itoa(rng.Intn(256)),
		}
		parsed, err := ParseHost(h.String())
		if err != nil || parsed != h {
			t.Fatalf("round trip %v: parsed=%v err=%v", h, parsed, err)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [4]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
