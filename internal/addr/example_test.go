package addr_test

import (
	"fmt"

	"github.com/upin/scionpath/internal/addr"
)

func ExampleParseIA() {
	ia, err := addr.ParseIA("16-ffaa:0:1002")
	if err != nil {
		panic(err)
	}
	fmt.Println(ia.ISD, ia.AS, ia)
	// Output: 16 ffaa:0:1002 16-ffaa:0:1002
}

func ExampleParseHost() {
	h, err := addr.ParseHost("19-ffaa:0:1303,[141.44.25.144]")
	if err != nil {
		panic(err)
	}
	fmt.Println(h.IA, h.Local)
	// Output: 19-ffaa:0:1303 141.44.25.144
}
