package scmp

import (
	"strings"
	"testing"
	"time"

	"github.com/upin/scionpath/internal/pathmgr"
	"github.com/upin/scionpath/internal/segment"
	"github.com/upin/scionpath/internal/simnet"
	"github.com/upin/scionpath/internal/topology"
)

func world(t testing.TB, seed int64) (*pathmgr.Combiner, *simnet.Network) {
	t.Helper()
	topo := topology.DefaultWorld()
	reg := segment.Discover(topo, segment.Options{})
	return pathmgr.NewCombiner(topo, reg), simnet.New(topo, simnet.Options{Seed: seed})
}

func irelandPath(t testing.TB, c *pathmgr.Combiner) *pathmgr.Path {
	t.Helper()
	paths, err := c.Paths(topology.MyAS, topology.AWSIreland)
	if err != nil || len(paths) == 0 {
		t.Fatalf("no Ireland paths: %v", err)
	}
	return paths[0]
}

func TestPingDefaultsMatchPaper(t *testing.T) {
	c, net := world(t, 1)
	p := irelandPath(t, c)
	before := net.Now()
	stats, err := Ping(net, p, PingOpts{})
	if err != nil {
		t.Fatal(err)
	}
	// Paper §5.3: 30 packets at 0.1 s interval.
	if stats.Sent != 30 {
		t.Errorf("sent %d, want 30", stats.Sent)
	}
	// Clock advances by the pacing of the run.
	if got := net.Now() - before; got < 29*100*time.Millisecond {
		t.Errorf("clock advanced %v, want >= 2.9s", got)
	}
}

func TestPingStatsConsistent(t *testing.T) {
	c, net := world(t, 2)
	p := irelandPath(t, c)
	stats, err := Ping(net, p, PingOpts{Count: 50})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Received != len(stats.RTTs) {
		t.Errorf("received %d but %d samples", stats.Received, len(stats.RTTs))
	}
	if stats.Received > stats.Sent {
		t.Errorf("received %d > sent %d", stats.Received, stats.Sent)
	}
	wantLoss := 100 * float64(stats.Sent-stats.Received) / float64(stats.Sent)
	if stats.Loss != wantLoss {
		t.Errorf("loss %v, want %v", stats.Loss, wantLoss)
	}
	if stats.Received > 0 {
		if stats.Min > stats.Avg || stats.Avg > stats.Max {
			t.Errorf("min/avg/max ordering violated: %v/%v/%v", stats.Min, stats.Avg, stats.Max)
		}
		if stats.Min <= 0 {
			t.Errorf("non-positive min RTT %v", stats.Min)
		}
	}
	if !strings.Contains(stats.String(), "packet loss") {
		t.Errorf("summary %q missing fields", stats.String())
	}
}

func TestPingErrors(t *testing.T) {
	c, net := world(t, 3)
	p := irelandPath(t, c)
	if _, err := Ping(net, nil, PingOpts{}); err == nil {
		t.Error("nil path accepted")
	}
	if _, err := Ping(net, &pathmgr.Path{}, PingOpts{}); err == nil {
		t.Error("empty path accepted")
	}
	if _, err := Ping(net, p, PingOpts{Count: -1}); err == nil {
		t.Error("negative count accepted")
	}
}

func TestPing100PercentLossDuringEpisode(t *testing.T) {
	c, net := world(t, 4)
	p := irelandPath(t, c)
	if err := net.ScheduleEpisode(simnet.Episode{
		IA: p.Hops[1].IA, Start: 0, End: time.Hour, DropProb: 1,
	}); err != nil {
		t.Fatal(err)
	}
	stats, err := Ping(net, p, PingOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Loss != 100 {
		t.Errorf("loss %v%%, want 100%%", stats.Loss)
	}
	if stats.Received != 0 || stats.Avg != 0 {
		t.Errorf("stats for fully lost run: %+v", stats)
	}
}

func TestPingPartialEpisodeLoss(t *testing.T) {
	c, net := world(t, 5)
	p := irelandPath(t, c)
	// Episode covering only the second half of a 30-probe run.
	if err := net.ScheduleEpisode(simnet.Episode{
		IA: p.Hops[1].IA, Start: 1500 * time.Millisecond, End: time.Hour, DropProb: 1,
	}); err != nil {
		t.Fatal(err)
	}
	stats, err := Ping(net, p, PingOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Loss < 30 || stats.Loss > 70 {
		t.Errorf("loss %v%%, want roughly half", stats.Loss)
	}
}

func TestPingJitterReflectedInMdev(t *testing.T) {
	c, net := world(t, 6)
	paths, err := c.Paths(topology.MyAS, topology.AWSIreland)
	if err != nil {
		t.Fatal(err)
	}
	var direct, viaOhio *pathmgr.Path
	for _, p := range paths {
		if p.NumHops() == 6 && direct == nil {
			direct = p
		}
		if p.Contains(topology.AWSOhio) && viaOhio == nil {
			viaOhio = p
		}
	}
	if direct == nil || viaOhio == nil {
		t.Fatal("paths missing")
	}
	ds, err := Ping(net, direct, PingOpts{Count: 60})
	if err != nil {
		t.Fatal(err)
	}
	os, err := Ping(net, viaOhio, PingOpts{Count: 60})
	if err != nil {
		t.Fatal(err)
	}
	if os.Mdev <= ds.Mdev {
		t.Errorf("Ohio-path mdev %v not above direct %v", os.Mdev, ds.Mdev)
	}
}

func TestTraceroute(t *testing.T) {
	c, net := world(t, 7)
	p := irelandPath(t, c)
	hops, err := Traceroute(net, p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(hops) != p.NumHops() {
		t.Fatalf("%d traceroute lines, want %d", len(hops), p.NumHops())
	}
	for i, h := range hops {
		if h.Index != i {
			t.Errorf("hop %d has index %d", i, h.Index)
		}
		if h.Hop.IA != p.Hops[i].IA {
			t.Errorf("hop %d IA %s, want %s", i, h.Hop.IA, p.Hops[i].IA)
		}
		if !h.Timeout && len(h.RTTs) == 0 {
			t.Errorf("hop %d has no samples and no timeout", i)
		}
	}
	// Median per-hop latency should grow toward the destination overall:
	// the last hop must exceed the first by the geographic distance.
	first, last := hops[1].RTTs[0], hops[len(hops)-1].RTTs[0]
	if last <= first {
		t.Errorf("last-hop RTT %v <= first-hop %v", last, first)
	}
}

func TestTracerouteErrors(t *testing.T) {
	_, net := world(t, 8)
	if _, err := Traceroute(net, nil, 3); err == nil {
		t.Error("nil path accepted")
	}
}
