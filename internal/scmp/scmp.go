// Package scmp implements the SCMP-based measurement tools the paper drives:
// echo (scion ping) and traceroute (scion traceroute), including the exact
// statistics the test-suite stores — average latency over 30 echo packets at
// a 0.1 s interval, and the packet loss percentage (§5.3).
package scmp

import (
	"fmt"
	"math"
	"time"

	"github.com/upin/scionpath/internal/pathmgr"
	"github.com/upin/scionpath/internal/simnet"
)

// PingOpts configures an echo run. Zero values select the paper's
// parameters: 30 packets, 0.1 s interval, 8-byte payload.
type PingOpts struct {
	Count       int
	Interval    time.Duration
	PayloadSize int
	// Timeout bounds how long a reply may take before counting as lost.
	Timeout time.Duration
}

func (o PingOpts) withDefaults() PingOpts {
	if o.Count == 0 {
		o.Count = 30
	}
	if o.Interval == 0 {
		o.Interval = 100 * time.Millisecond
	}
	if o.PayloadSize == 0 {
		o.PayloadSize = 8
	}
	if o.Timeout == 0 {
		o.Timeout = 2 * time.Second
	}
	return o
}

// PingStats is the report `scion ping --count N` prints.
type PingStats struct {
	Sent     int
	Received int
	// Loss is the packet loss percentage in [0,100].
	Loss float64
	Min  time.Duration
	Avg  time.Duration
	Max  time.Duration
	// Mdev is the mean absolute deviation of the RTT samples, the jitter
	// indicator the paper's §6.1 discusses for ASes 1004/1007.
	Mdev time.Duration
	// RTTs holds the individual round-trip samples (received echoes only).
	RTTs []time.Duration
}

// String renders a one-line summary in ping style.
func (s PingStats) String() string {
	return fmt.Sprintf("%d packets transmitted, %d received, %.1f%% packet loss, rtt min/avg/max/mdev = %v/%v/%v/%v",
		s.Sent, s.Received, s.Loss, s.Min, s.Avg, s.Max, s.Mdev)
}

// Ping sends Count SCMP echo packets along the path, paced at Interval via
// the simulator's event engine, and returns the aggregate statistics. The
// simulated clock advances by Count*Interval, so measurements that run
// during a congestion episode observe it (Fig 9).
func Ping(net *simnet.Network, p *pathmgr.Path, opts PingOpts) (PingStats, error) {
	if p == nil || len(p.Hops) == 0 {
		return PingStats{}, fmt.Errorf("scmp: nil or empty path")
	}
	opts = opts.withDefaults()
	if opts.Count < 1 {
		return PingStats{}, fmt.Errorf("scmp: count %d < 1", opts.Count)
	}

	stats := PingStats{Sent: opts.Count}
	for i := 0; i < opts.Count; i++ {
		i := i
		net.Schedule(time.Duration(i)*opts.Interval, func() {
			res := net.Probe(p, opts.PayloadSize, 0)
			if res.Dropped || res.RTT > opts.Timeout {
				return
			}
			stats.RTTs = append(stats.RTTs, res.RTT)
		})
	}
	net.RunPending()

	stats.Received = len(stats.RTTs)
	stats.Loss = 100 * float64(stats.Sent-stats.Received) / float64(stats.Sent)
	if stats.Received > 0 {
		stats.Min = stats.RTTs[0]
		var sum time.Duration
		for _, r := range stats.RTTs {
			if r < stats.Min {
				stats.Min = r
			}
			if r > stats.Max {
				stats.Max = r
			}
			sum += r
		}
		stats.Avg = sum / time.Duration(stats.Received)
		var dev float64
		for _, r := range stats.RTTs {
			dev += math.Abs(float64(r - stats.Avg))
		}
		stats.Mdev = time.Duration(dev / float64(stats.Received))
	}
	return stats, nil
}

// TracerouteHop is one line of scion traceroute output.
type TracerouteHop struct {
	Index int
	Hop   pathmgr.Hop
	// RTTs are the per-probe round trips to this hop; a zero value with
	// Timeout true means the probe was lost.
	RTTs    []time.Duration
	Timeout bool
}

// Traceroute probes every hop of the path with probesPerHop SCMP traceroute
// packets, the tool the paper uses "to test how the latency is affected by
// each link" (§3.3).
func Traceroute(net *simnet.Network, p *pathmgr.Path, probesPerHop int) ([]TracerouteHop, error) {
	if p == nil || len(p.Hops) == 0 {
		return nil, fmt.Errorf("scmp: nil or empty path")
	}
	if probesPerHop < 1 {
		probesPerHop = 3
	}
	out := make([]TracerouteHop, 0, len(p.Hops))
	for k := range p.Hops {
		th := TracerouteHop{Index: k, Hop: p.Hops[k]}
		lost := 0
		for i := 0; i < probesPerHop; i++ {
			res, err := net.ProbePartial(p, k, 8, 0)
			if err != nil {
				return nil, err
			}
			if res.Dropped {
				lost++
				continue
			}
			th.RTTs = append(th.RTTs, res.RTT)
		}
		th.Timeout = lost == probesPerHop
		out = append(out, th)
	}
	return out, nil
}
