package chaos

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"sync"

	"github.com/upin/scionpath/internal/measure"
)

// injector implements docdb.Failpoint for one chaotic run. It injects the
// plan's write faults and triggers the current round's crash. Write
// counters and fired flags persist across crash/restart rounds (the plan
// speaks about the run, not about one process lifetime); the crash trigger
// is re-armed per round.
type injector struct {
	plan Plan

	mu          sync.Mutex
	writeCounts map[string]int // per-collection write batches seen, all rounds
	fired       []bool         // plan.Writes[i] already injected
	crashAfter  int            // checkpoint writes until cancel; 0 = disarmed
	ckptWrites  int            // checkpoint writes this round
	cancel      context.CancelFunc
}

func newInjector(plan Plan) *injector {
	return &injector{
		plan:        plan,
		writeCounts: make(map[string]int),
		fired:       make([]bool, len(plan.Writes)),
	}
}

// armCrash configures the round's crash trigger: cancel after n writes to
// the checkpoint collection. n <= 0 disarms (the final round must finish).
func (in *injector) armCrash(n int, cancel context.CancelFunc) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.crashAfter = n
	in.ckptWrites = 0
	in.cancel = cancel
}

// BeforeWrite implements docdb.Failpoint.
func (in *injector) BeforeWrite(collection, op string, batch int) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.writeCounts[collection]++
	n := in.writeCounts[collection]
	for i, wf := range in.plan.Writes {
		if !in.fired[i] && wf.Collection == collection && wf.Nth == n {
			in.fired[i] = true
			return fmt.Errorf("chaos: injected %s fault on %s (write #%d)", op, collection, n)
		}
	}
	if collection == measure.ColProgress && in.crashAfter > 0 {
		in.ckptWrites++
		if in.ckptWrites >= in.crashAfter {
			// Let this write through, then kill the round: cancellation is
			// honored at cell boundaries, so in-flight cells still finish
			// and checkpoint — the crash point a real SIGKILL cannot pick.
			// The journal damage comes separately from truncateTail.
			in.crashAfter = 0
			in.cancel()
		}
	}
	return nil
}

// ReplayEntry implements docdb.Failpoint. Chaos damages journals physically
// (truncateTail) rather than during replay, so replay always proceeds.
func (in *injector) ReplayEntry(n int, op string) bool { return true }

// truncateTail cuts up to maxCut bytes off the journal's tail, but never
// past the end of the campaign metadata line: everything before it
// (server catalogue, collected paths, campaign identity) is written and
// flushed before the first cell runs, so a real crash cannot lose it, and
// a resume without it would legitimately restart fresh and re-collect —
// a different experiment than the one the oracle ran. A cut mid-line is
// fine: replay tolerates a truncated final line by design.
func truncateTail(path, campaign string, maxCut int) error {
	if maxCut <= 0 {
		return nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("chaos: truncate %s: %w", path, err)
	}
	marker := []byte(fmt.Sprintf("%q", measure.CampaignMetaID(campaign)))
	i := bytes.Index(data, marker)
	if i < 0 {
		return fmt.Errorf("chaos: truncate %s: no campaign meta entry for %q", path, campaign)
	}
	metaEnd := i + bytes.IndexByte(data[i:], '\n') + 1
	if metaEnd <= i { // no newline after meta: nothing safely cuttable
		return nil
	}
	cut := maxCut
	if max := len(data) - metaEnd; cut > max {
		cut = max
	}
	if cut <= 0 {
		return nil
	}
	if err := os.Truncate(path, int64(len(data)-cut)); err != nil {
		return fmt.Errorf("chaos: truncate %s: %w", path, err)
	}
	return nil
}
