package chaos

import (
	"context"
	"fmt"
	"sync"

	"github.com/upin/scionpath/internal/docdb"
	"github.com/upin/scionpath/internal/measure"
)

// injector implements docdb.Failpoint for one chaotic run. It injects the
// plan's write faults and triggers the current round's crash. Write
// counters and fired flags persist across crash/restart rounds (the plan
// speaks about the run, not about one process lifetime); the crash trigger
// is re-armed per round.
type injector struct {
	plan Plan

	mu          sync.Mutex
	writeCounts map[string]int // per-collection write batches seen, all rounds
	fired       []bool         // plan.Writes[i] already injected
	crashAfter  int            // checkpoint writes until cancel; 0 = disarmed
	ckptWrites  int            // checkpoint writes this round
	cancel      context.CancelFunc
}

func newInjector(plan Plan) *injector {
	return &injector{
		plan:        plan,
		writeCounts: make(map[string]int),
		fired:       make([]bool, len(plan.Writes)),
	}
}

// armCrash configures the round's crash trigger: cancel after n writes to
// the checkpoint collection. n <= 0 disarms (the final round must finish).
func (in *injector) armCrash(n int, cancel context.CancelFunc) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.crashAfter = n
	in.ckptWrites = 0
	in.cancel = cancel
}

// BeforeWrite implements docdb.Failpoint.
func (in *injector) BeforeWrite(collection, op string, batch int) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.writeCounts[collection]++
	n := in.writeCounts[collection]
	for i, wf := range in.plan.Writes {
		if !in.fired[i] && wf.Collection == collection && wf.Nth == n {
			in.fired[i] = true
			return fmt.Errorf("chaos: injected %s fault on %s (write #%d)", op, collection, n)
		}
	}
	if collection == measure.ColProgress && in.crashAfter > 0 {
		in.ckptWrites++
		if in.ckptWrites >= in.crashAfter {
			// Let this write through, then kill the round: cancellation is
			// honored at cell boundaries, so in-flight cells still finish
			// and checkpoint — the crash point a real SIGKILL cannot pick.
			// The journal damage comes separately from truncateTail.
			in.crashAfter = 0
			in.cancel()
		}
	}
	return nil
}

// ReplayEntry implements docdb.Failpoint. Chaos damages logs physically
// (truncateTail) rather than during replay, so replay always proceeds.
func (in *injector) ReplayEntry(n int, op string) bool { return true }

// truncateTail loses an unsynced log suffix the way a crash would, via the
// backend-aware docdb.TruncateLogTail: up to maxCut bytes off a jsonl
// journal's tail, the entire uncommitted suffix of every segment shard —
// but never past the campaign metadata record. Everything before it
// (server catalogue, collected paths, campaign identity) is written and
// flushed before the first cell runs, so a real crash cannot lose it, and
// a resume without it would legitimately restart fresh and re-collect —
// a different experiment than the one the oracle ran.
func truncateTail(path, campaign string, maxCut int) error {
	if err := docdb.TruncateLogTail(path, measure.CampaignMetaID(campaign), maxCut); err != nil {
		return fmt.Errorf("chaos: %w", err)
	}
	return nil
}
