package chaos

import (
	"math/rand"
)

// ServingEvent is one serving-tier fault, fired when the load generator
// has completed AfterRequests requests. The plan is pure data; the load
// harness (internal/load.ChaosDriver) applies it against the live
// database while traffic is in flight.
type ServingEvent struct {
	// AfterRequests is the completed-request count that triggers the
	// event. Count-based triggers, not wall-clock ones, keep the plan
	// replayable: the same schedule fires the same faults at the same
	// points of the request stream on any machine speed.
	AfterRequests int
	// Kind selects the fault:
	//
	//   - RewriteStorm: an in-place rewrite of stats documents bumps the
	//     collection's RewriteGeneration, which the selection engine
	//     answers with a full snapshot rebuild instead of an incremental
	//     fold — the most expensive refresh the serving path has.
	//   - WriteBurst: Docs new stats documents land at once, invalidating
	//     every shard's response cache and forcing an incremental fold.
	Kind ServingEventKind
	// Docs sizes a WriteBurst (0 for RewriteStorm).
	Docs int
}

// ServingEventKind names a serving-tier fault.
type ServingEventKind string

const (
	RewriteStorm ServingEventKind = "rewrite_storm"
	WriteBurst   ServingEventKind = "write_burst"
)

// ServingPlan is one seed's worth of serving-tier chaos, ordered by
// trigger count.
type ServingPlan struct {
	Seed   int64
	Events []ServingEvent
}

// NewServingPlan derives the serving chaos for a seed against a request
// stream of the given length. Events land in the middle 20%–80% of the
// stream, so the harness always observes both an undisturbed warm-up and
// a recovery tail.
//
//lint:deterministic serving chaos is replayable from (seed, totalRequests) alone
func NewServingPlan(seed int64, totalRequests int) ServingPlan {
	rng := rand.New(rand.NewSource(seed))
	p := ServingPlan{Seed: seed}
	if totalRequests < 10 {
		return p
	}
	lo, hi := totalRequests*2/10, totalRequests*8/10
	n := 2 + rng.Intn(3)
	for i := 0; i < n; i++ {
		ev := ServingEvent{
			AfterRequests: lo + rng.Intn(hi-lo),
			Kind:          RewriteStorm,
		}
		if rng.Intn(2) == 0 {
			ev.Kind = WriteBurst
			ev.Docs = 50 + rng.Intn(200)
		}
		p.Events = append(p.Events, ev)
	}
	// Order by trigger so the driver can fire them with a single cursor.
	for i := 1; i < len(p.Events); i++ {
		for j := i; j > 0 && p.Events[j].AfterRequests < p.Events[j-1].AfterRequests; j-- {
			p.Events[j], p.Events[j-1] = p.Events[j-1], p.Events[j]
		}
	}
	return p
}
