package chaos

import (
	"context"
	"fmt"
	"time"

	"github.com/upin/scionpath/internal/docdb"
	"github.com/upin/scionpath/internal/measure"
	"github.com/upin/scionpath/internal/sciond"
	"github.com/upin/scionpath/internal/selection"
	"github.com/upin/scionpath/internal/simnet"
	"github.com/upin/scionpath/internal/topology"
)

// The fixed campaign shape every chaotic run measures. Small enough that a
// multi-seed sweep stays in tier-1 time, large enough that the cell grid
// (iterations x destinations) gives crashes and resumes real work.
const (
	scenarioIterations = 2
	scenarioWorkers    = 2
	scenarioServers    = 2
	scenarioStride     = time.Minute
)

// Result is one executed chaotic run plus its oracle, ready for Verify.
type Result struct {
	Seed     int64
	Plan     Plan
	Campaign string
	// Rounds is how many process lifetimes the chaotic campaign needed
	// (1 = no fault interrupted it).
	Rounds int
	// Report is the final (completing) round's report; resumed rounds fold
	// checkpointed cells, so it describes the whole campaign.
	Report measure.RunReport
	// OracleReport is the uninterrupted fault-free-storage run's report.
	OracleReport measure.RunReport
	// ServerIDs are the scenario's destination ids.
	ServerIDs []int

	Topo *topology.Topology
	// Final is the persistent database the chaotic campaign ended with;
	// Oracle is the in-memory database of the uninterrupted run.
	Final  *docdb.DB
	Oracle *docdb.DB
}

// Close releases the persistent database.
func (r *Result) Close() error { return r.Final.Close() }

// Run executes the chaotic experiment for one seed: an oracle campaign on
// an in-memory database with the plan's network and lookup faults but
// perfect storage, then the same campaign on a persistent database at
// dbPath under the full plan — write faults, crashes at plan-chosen
// checkpoints, log tail truncation — resumed round after round until it
// completes. backend names the docdb storage backend ("jsonl", "segment",
// or "" for the default); the fault plan is backend-agnostic. The caller
// owns dbPath (a fresh temp path) and must Close the Result. Cancelling
// ctx aborts the run between (and inside) rounds — the campaign engine
// checks it per cell.
func Run(ctx context.Context, seed int64, dbPath, backend string) (*Result, error) {
	topo := topology.DefaultWorld()
	res := &Result{
		Seed:     seed,
		Plan:     NewPlan(seed, topo),
		Campaign: fmt.Sprintf("chaos-%d", seed),
		Topo:     topo,
	}

	// Oracle: same weather, same control-plane faults, flawless storage,
	// never interrupted. Its database is what the chaotic run must converge
	// to — that convergence is the schedule-independence promise of the
	// campaign engine under composed faults.
	res.Oracle = docdb.MustOpen()
	rep, ids, err := res.runRound(ctx, res.Oracle, false)
	if err != nil {
		return nil, fmt.Errorf("chaos: seed %d: oracle run: %w", seed, err)
	}
	res.OracleReport, res.ServerIDs = rep, ids

	inj := newInjector(res.Plan)
	// Every round retires at least one fault (a crash or a write fault) or
	// completes; one spare round absorbs the crash-trigger-never-fired case.
	maxRounds := len(res.Plan.Crashes) + len(res.Plan.Writes) + 2
	for round := 0; round < maxRounds; round++ {
		db, err := docdb.Open(docdb.WithPath(dbPath), docdb.WithBackend(backend))
		if err != nil {
			return nil, fmt.Errorf("chaos: seed %d round %d: reopen: %w", seed, round, err)
		}
		db.SetFailpoint(inj)
		// Invariant 2 holds at every recovery point, not just at the end:
		// whatever the crash and truncation did, no surviving checkpoint
		// may claim statistics the journal lost.
		if err := checkCheckpointOrdering(db, res.Campaign); err != nil {
			return nil, fmt.Errorf("chaos: seed %d round %d: %w", seed, round, err)
		}
		resume := db.Collection(measure.ColProgress).Get(measure.CampaignMetaID(res.Campaign)) != nil

		roundCtx, cancel := context.WithCancel(ctx)
		crash := Crash{}
		if round < len(res.Plan.Crashes) {
			crash = res.Plan.Crashes[round]
		}
		inj.armCrash(crash.AfterCheckpoints, cancel)

		// The engine watches the database across the round so a completed
		// round checks the incremental snapshot fold against a from-scratch
		// rebuild (invariant 3's moving part).
		engine := selection.New(db, topo)
		warmSnapshot(ctx, engine, res.ServerIDs)

		rep, _, err := res.runRound(roundCtx, db, resume)
		cancel()
		if err == nil {
			if serr := checkSnapshot(ctx, db, topo, engine, res.ServerIDs); serr != nil {
				return nil, fmt.Errorf("chaos: seed %d round %d: %w", seed, round, serr)
			}
			res.Report = rep
			res.Rounds = round + 1
			res.Final = db
			return res, nil
		}
		// Crash semantics: abandon the database without Close (a real crash
		// flushes nothing), then lose an unsynced log suffix.
		if err := truncateTail(dbPath, res.Campaign, crash.TruncateTail); err != nil {
			return nil, fmt.Errorf("chaos: seed %d round %d: %w", seed, round, err)
		}
		// A plan-armed crash cancels roundCtx on purpose; a cancelled parent
		// ctx means the caller wants out.
		if ctx.Err() != nil {
			return nil, fmt.Errorf("chaos: seed %d: %w", seed, ctx.Err())
		}
	}
	return nil, fmt.Errorf("chaos: seed %d: campaign did not complete within %d rounds", seed, maxRounds)
}

// runRound executes one campaign attempt against db. The world is rebuilt
// from scratch each round — fresh simulator seeded by the plan, schedule
// applied, fresh daemon with the plan's lookup hook — exactly what a
// restarted test-suite process would do.
func (res *Result) runRound(ctx context.Context, db *docdb.DB, resume bool) (measure.RunReport, []int, error) {
	net := simnet.New(res.Topo, simnet.Options{Seed: res.Seed})
	if err := net.ApplySchedule(res.Plan.Network); err != nil {
		return measure.RunReport{}, nil, err
	}
	daemon, err := sciond.New(res.Topo, net, topology.MyAS)
	if err != nil {
		return measure.RunReport{}, nil, err
	}
	daemon.SetFaultHook(res.Plan.LookupHook())

	// Resolve the destination subset before Run needs it; SeedServers is
	// idempotent, so Run's own call becomes a no-op.
	if err := measure.SeedServers(db, res.Topo); err != nil {
		return measure.RunReport{}, nil, err
	}
	servers, err := measure.Servers(db)
	if err != nil {
		return measure.RunReport{}, nil, err
	}
	if len(servers) < scenarioServers {
		return measure.RunReport{}, nil, fmt.Errorf("topology has %d servers, scenario needs %d", len(servers), scenarioServers)
	}
	ids := make([]int, scenarioServers)
	for i := range ids {
		ids[i] = servers[i].ID
	}

	suite := &measure.Suite{DB: db, Daemon: daemon}
	rep, err := suite.Run(ctx, measure.RunOpts{
		Iterations:    scenarioIterations,
		ServerIDs:     ids,
		PingCount:     2,
		PingInterval:  time.Millisecond,
		SkipBandwidth: true,
		Campaign: measure.Campaign{
			Workers: scenarioWorkers,
			Name:    res.Campaign,
			Seed:    res.Seed,
			Resume:  resume,
			Retry: measure.RetryPolicy{
				MaxAttempts: 3,
				BaseBackoff: time.Microsecond,
				MaxBackoff:  10 * time.Microsecond,
				JitterFrac:  0.5,
			},
			IterationStride: scenarioStride,
		},
	})
	return rep, ids, err
}

// warmSnapshot primes the engine's snapshot before the round so a
// completing round's final Select exercises the incremental fold path.
// Errors are expected here (a fresh database has no candidates yet).
func warmSnapshot(ctx context.Context, engine *selection.Engine, ids []int) {
	for _, id := range ids {
		_, _ = engine.Select(ctx, id, selection.Request{})
	}
}
