package chaos

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/upin/scionpath/internal/docdb"
	"github.com/upin/scionpath/internal/topology"
)

// backends is every storage backend the sweep and the -race subset run
// against: the fault plans, crash model and invariants are backend-agnostic
// by contract (docdb.Backend), and this is where that contract is held to.
var backends = []string{docdb.BackendJSONL, docdb.BackendSegment}

// sweepSeeds is the tier-1 seed range: every seed runs the full chaotic
// campaign (crashes, resumes, truncation) against its oracle and must pass
// all four invariants.
const sweepSeeds = 50

func runSeed(t *testing.T, seed int64, backend string) *Result {
	t.Helper()
	res, err := Run(context.Background(), seed, filepath.Join(t.TempDir(), "journal.db"), backend)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	t.Cleanup(func() { res.Close() })
	if err := Verify(context.Background(), res); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return res
}

// A cancelled caller context must abort the whole harness promptly — it is
// the one cancellation the fault injector never arms itself.
func TestRunHonoursCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(ctx, 1, filepath.Join(t.TempDir(), "journal.db"), "")
	if err == nil {
		res.Close()
		t.Fatal("Run completed under a cancelled context")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
}

func TestChaosSweep(t *testing.T) {
	for _, backend := range backends {
		t.Run(backend, func(t *testing.T) {
			var interrupted, cellFailures atomic.Int64
			t.Run("seeds", func(t *testing.T) {
				for seed := int64(1); seed <= sweepSeeds; seed++ {
					t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
						t.Parallel()
						res := runSeed(t, seed, backend)
						if res.Rounds > 1 {
							interrupted.Add(1)
						}
						cellFailures.Add(int64(res.Report.Failures))
					})
				}
			})
			// The sweep must actually exercise recovery, not accidentally
			// draw 50 benign plans: most plans schedule at least one crash
			// round.
			if n := interrupted.Load(); n < sweepSeeds/2 {
				t.Errorf("only %d/%d seeds interrupted the campaign; faults are not engaging", n, sweepSeeds)
			}
			t.Logf("interrupted runs: %d/%d, cell-level failures: %d", interrupted.Load(), sweepSeeds, cellFailures.Load())
		})
	}
}

// TestChaosSmall is the -race subset verify.sh runs: a handful of full
// chaotic runs under the race detector, against both storage backends.
func TestChaosSmall(t *testing.T) {
	for _, backend := range backends {
		t.Run(backend, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				seed := seed
				t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
					t.Parallel()
					runSeed(t, seed, backend)
				})
			}
		})
	}
}

// TestPlanDeterminism pins the harness's core property: the fault schedule
// is a pure function of the seed.
func TestPlanDeterminism(t *testing.T) {
	topo := topology.DefaultWorld()
	distinct := 0
	for seed := int64(0); seed < 20; seed++ {
		a := NewPlan(seed, topo)
		b := NewPlan(seed, topo)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: two generations differ:\n%+v\n%+v", seed, a, b)
		}
		if !reflect.DeepEqual(a, NewPlan(seed+1, topo)) {
			distinct++
		}
	}
	if distinct == 0 {
		t.Fatal("every seed produced the same plan; the generator ignores its seed")
	}
}

// TestPlanShape checks the generated faults respect the constraints the
// runner's correctness argument depends on.
func TestPlanShape(t *testing.T) {
	topo := topology.DefaultWorld()
	for seed := int64(0); seed < 200; seed++ {
		p := NewPlan(seed, topo)
		if len(p.Crashes) < 1 {
			t.Fatalf("seed %d: no crash rounds", seed)
		}
		for _, c := range p.Crashes {
			if c.AfterCheckpoints < 1 {
				t.Fatalf("seed %d: crash with AfterCheckpoints %d", seed, c.AfterCheckpoints)
			}
		}
		for _, w := range p.Writes {
			switch w.Collection {
			case "paths_stats":
				if w.Nth < 1 {
					t.Fatalf("seed %d: stats fault at write %d", seed, w.Nth)
				}
			case "campaign_progress":
				// Write #1 is the campaign meta document; faulting it would
				// make the run restart fresh and legitimately diverge.
				if w.Nth < 2 {
					t.Fatalf("seed %d: checkpoint fault at write %d would hit the campaign meta", seed, w.Nth)
				}
			default:
				t.Fatalf("seed %d: write fault on unexpected collection %q", seed, w.Collection)
			}
		}
		for _, ep := range p.Network.Episodes {
			if ep.End <= ep.Start || ep.DropProb <= 0 || ep.DropProb > 1 {
				t.Fatalf("seed %d: malformed episode %+v", seed, ep)
			}
		}
		for _, o := range p.Network.Outages {
			if o.End <= o.Start {
				t.Fatalf("seed %d: malformed outage %+v", seed, o)
			}
		}
	}
}

// TestTruncateTailBoundedByMeta: however large the requested cut, the
// campaign metadata line (and everything before it) survives.
func TestTruncateTailBoundedByMeta(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.db")
	meta := `{"op":"insert","c":"campaign_progress","doc":{"_id":"meta:camp","campaign":"camp"}}` + "\n"
	content := `{"op":"insert","c":"paths","doc":{"_id":"p1"}}` + "\n" + meta +
		`{"op":"insert","c":"paths_stats","doc":{"_id":"s1"}}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := truncateTail(path, "camp", 1<<20); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(string(got), meta) {
		t.Fatalf("truncation cut into or past the meta line; remaining:\n%s", got)
	}

	// A partial cut leaves a truncated final line, which replay tolerates.
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := truncateTail(path, "camp", 10); err != nil {
		t.Fatal(err)
	}
	got, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(content)-10 {
		t.Fatalf("cut %d bytes, want 10", len(content)-len(got))
	}

	// No meta line at all: refuse rather than destroy collected paths.
	if err := os.WriteFile(path, []byte(`{"op":"insert","c":"paths","doc":{"_id":"p1"}}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := truncateTail(path, "camp", 10); err == nil {
		t.Fatal("truncateTail without a meta line should refuse")
	}
}
