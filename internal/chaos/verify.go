package chaos

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"

	"github.com/upin/scionpath/internal/docdb"
	"github.com/upin/scionpath/internal/measure"
	"github.com/upin/scionpath/internal/sciond"
	"github.com/upin/scionpath/internal/selection"
	"github.com/upin/scionpath/internal/simnet"
	"github.com/upin/scionpath/internal/topology"
	"github.com/upin/scionpath/internal/upin"
)

// Verify asserts the harness's four end-to-end invariants over a completed
// Run:
//
//  1. Convergence: the chaotic run's final database is equivalent to the
//     uninterrupted oracle's — crashes, resumes, write faults and journal
//     truncation changed nothing about what was ultimately stored.
//  2. Checkpoint ordering: no surviving checkpoint claims statistics the
//     journal does not hold (also asserted at every recovery point by Run).
//  3. Serving equivalence: path selection over the chaotic database equals
//     selection over the oracle (the incremental-vs-rebuild half runs
//     inside Run, where a long-lived engine spans the completing round),
//     and the UPIN front-end serves identical responses over both.
//  4. Failure accounting: every cell of the grid is checkpointed, recorded
//     failures add up to the run report's, and the report matches the
//     oracle's except for the cells a resume legitimately skipped.
func Verify(ctx context.Context, res *Result) error {
	if err := diffSnapshots(dbSnapshot(res.Final), dbSnapshot(res.Oracle)); err != nil {
		return fmt.Errorf("chaos: seed %d: invariant 1 (convergence): %w", res.Seed, err)
	}
	if err := checkCheckpointOrdering(res.Final, res.Campaign); err != nil {
		return fmt.Errorf("chaos: seed %d: invariant 2: %w", res.Seed, err)
	}
	if err := checkServingEquivalence(ctx, res); err != nil {
		return fmt.Errorf("chaos: seed %d: invariant 3 (serving): %w", res.Seed, err)
	}
	if err := checkFailureAccounting(res); err != nil {
		return fmt.Errorf("chaos: seed %d: invariant 4 (accounting): %w", res.Seed, err)
	}
	return nil
}

// dbSnapshot renders every non-empty collection to id -> canonical JSON.
// JSON is the comparison domain on purpose: a journal-replayed database
// holds float64 where the in-memory oracle holds int (JSON round-trip), and
// canonical encoding (sorted keys, 7 and 7.0 both rendering "7") erases
// exactly that representational difference and nothing else.
func dbSnapshot(db *docdb.DB) map[string]map[string]string {
	out := make(map[string]map[string]string)
	for _, name := range db.CollectionNames() {
		docs := db.Collection(name).Find(docdb.Query{})
		if len(docs) == 0 {
			continue
		}
		m := make(map[string]string, len(docs))
		for _, d := range docs {
			b, err := json.Marshal(d)
			if err != nil {
				m[d.ID()] = fmt.Sprintf("!marshal: %v", err)
				continue
			}
			m[d.ID()] = string(b)
		}
		out[name] = m
	}
	return out
}

// diffSnapshots reports the first difference between two database
// snapshots, precisely enough to debug a seed.
func diffSnapshots(got, want map[string]map[string]string) error {
	names := make(map[string]bool)
	for n := range got {
		names[n] = true
	}
	for n := range want {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	for _, n := range sorted {
		g, w := got[n], want[n]
		if len(g) != len(w) {
			return fmt.Errorf("collection %s: %d documents, oracle has %d", n, len(g), len(w))
		}
		for id, wdoc := range w {
			gdoc, ok := g[id]
			if !ok {
				return fmt.Errorf("collection %s: document %s missing", n, id)
			}
			if gdoc != wdoc {
				return fmt.Errorf("collection %s: document %s differs:\n  got  %s\n  want %s", n, id, gdoc, wdoc)
			}
		}
	}
	return nil
}

// checkCheckpointOrdering asserts that every surviving cell checkpoint is
// backed by exactly the statistics it recorded. The engine journals a
// cell's stats batch before its checkpoint, and crash damage is always a
// journal suffix, so a checkpoint that survived implies its stats did too;
// a violation here means that ordering broke.
func checkCheckpointOrdering(db *docdb.DB, campaign string) error {
	progress := db.Collection(measure.ColProgress)
	metaID := measure.CampaignMetaID(campaign)
	meta := progress.Get(metaID)
	cells := progress.Find(docdb.Query{Filter: docdb.Eq(measure.FCampaign, campaign)})
	if meta == nil {
		// Cells are only ever journaled after the metadata document, so a
		// database without it must not hold any.
		if len(cells) > 0 {
			return fmt.Errorf("checkpoint ordering: %d cell checkpoints but no campaign meta %s", len(cells), metaID)
		}
		return nil
	}
	base, ok := numInt(meta[measure.FBaseMs])
	if !ok {
		return fmt.Errorf("checkpoint ordering: meta %s has no %s", metaID, measure.FBaseMs)
	}
	stride, ok := numInt(meta[measure.FStrideMs])
	if !ok || stride <= 0 {
		return fmt.Errorf("checkpoint ordering: meta %s has bad %s", metaID, measure.FStrideMs)
	}
	stats := db.Collection(measure.ColStats)
	for _, cell := range cells {
		if cell.ID() == metaID {
			continue
		}
		it, _ := numInt(cell[measure.FIteration])
		sid, _ := numInt(cell[measure.FServerID])
		stored, _ := numInt(cell[measure.FCellStored])
		// A cell's stats all carry timestamps inside its iteration window
		// (the stride exceeds a cell's simulated duration by construction).
		lo := base + it*stride
		n := len(stats.Find(docdb.Query{Filter: docdb.And(
			docdb.Eq(measure.FServerID, sid),
			docdb.Gte(measure.FTimestamp, lo),
			docdb.Lt(measure.FTimestamp, lo+stride),
		)}))
		if int64(n) != stored {
			return fmt.Errorf("checkpoint ordering: cell %s claims %d stats, journal holds %d", cell.ID(), stored, n)
		}
	}
	return nil
}

// checkSnapshot compares a long-lived engine (which refreshed its snapshot
// incrementally across a campaign round) against a from-scratch rebuild
// over the same database. Run calls it after every completing round.
func checkSnapshot(ctx context.Context, db *docdb.DB, topo *topology.Topology, engine *selection.Engine, ids []int) error {
	fresh := selection.New(db, topo)
	for _, id := range ids {
		got, gerr := engine.Select(ctx, id, selection.Request{})
		want, werr := fresh.Select(ctx, id, selection.Request{})
		if (gerr == nil) != (werr == nil) {
			return fmt.Errorf("snapshot fold: server %d: incremental err=%v, rebuild err=%v", id, gerr, werr)
		}
		if !reflect.DeepEqual(got, want) {
			return fmt.Errorf("snapshot fold: server %d: incremental snapshot diverged from rebuild", id)
		}
	}
	return nil
}

// checkServingEquivalence runs selection and the UPIN front-end over both
// databases and requires identical answers.
func checkServingEquivalence(ctx context.Context, res *Result) error {
	engF := selection.New(res.Final, res.Topo)
	engO := selection.New(res.Oracle, res.Topo)
	for _, id := range res.ServerIDs {
		got, gerr := engF.Select(ctx, id, selection.Request{})
		want, werr := engO.Select(ctx, id, selection.Request{})
		if (gerr == nil) != (werr == nil) {
			return fmt.Errorf("server %d: chaotic err=%v, oracle err=%v", id, gerr, werr)
		}
		if !reflect.DeepEqual(got, want) {
			return fmt.Errorf("server %d: selection candidates diverged from oracle", id)
		}
	}

	srvF, err := probeFrontend(res.Final, res.Topo)
	if err != nil {
		return err
	}
	srvO, err := probeFrontend(res.Oracle, res.Topo)
	if err != nil {
		return err
	}
	if code, _ := probeGet(srvF, "/api/health"); code != http.StatusOK {
		return fmt.Errorf("front-end health over chaotic database: status %d", code)
	}
	for _, id := range res.ServerIDs {
		url := fmt.Sprintf("/api/paths?server=%d", id)
		gc, gb := probeGet(srvF, url)
		wc, wb := probeGet(srvO, url)
		if gc != wc || gb != wb {
			return fmt.Errorf("front-end %s: chaotic %d %q, oracle %d %q", url, gc, gb, wc, wb)
		}
	}
	return nil
}

// probeFrontend wires a UPIN server over a database, the way cmd/upinsrv
// does, on a fresh world (the front-end only reads the database here).
func probeFrontend(db *docdb.DB, topo *topology.Topology) (*upin.Server, error) {
	net := simnet.New(topo, simnet.Options{Seed: 1})
	daemon, err := sciond.New(topo, net, topology.MyAS)
	if err != nil {
		return nil, err
	}
	explorer := upin.NewDomainExplorer(topo, topo.ISDs())
	return upin.NewServer(db, daemon, net, selection.New(db, topo), explorer), nil
}

func probeGet(srv *upin.Server, url string) (int, string) {
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
	return rec.Code, rec.Body.String()
}

// checkFailureAccounting asserts invariant 4: the cell grid is fully
// checkpointed, recorded per-cell failures sum to the report's, and the
// final report matches the oracle's in every way a user could observe.
func checkFailureAccounting(res *Result) error {
	progress := res.Final.Collection(measure.ColProgress)
	var failSum int64
	for it := 0; it < scenarioIterations; it++ {
		for _, sid := range res.ServerIDs {
			cell := progress.Get(measure.CellID(res.Campaign, it, sid))
			if cell == nil {
				return fmt.Errorf("cell (iteration %d, server %d) never checkpointed", it, sid)
			}
			f, _ := numInt(cell[measure.FCellFail])
			failSum += f
		}
	}
	if failSum != int64(res.Report.Failures) {
		return fmt.Errorf("checkpointed failures %d != reported failures %d", failSum, res.Report.Failures)
	}
	got, want := res.Report, res.OracleReport
	// A resumed run legitimately skips checkpointed cells; everything else
	// must match the uninterrupted run.
	got.SkippedCells, want.SkippedCells = 0, 0
	if got != want {
		return fmt.Errorf("final report %+v != oracle report %+v", got, want)
	}
	return nil
}

// numInt decodes a numeric document value, tolerating the int/int64/float64
// split between in-memory writes and JSON journal replay.
func numInt(v any) (int64, bool) {
	switch t := v.(type) {
	case int:
		return int64(t), true
	case int64:
		return t, true
	case float64:
		return int64(t), true
	}
	return 0, false
}
