// Package chaos is a deterministic fault-injection harness for the whole
// measurement pipeline. One seed derives one Plan — a composition of faults
// across every layer the paper's test-suite touches: network weather in the
// simulator (link outages, congestion episodes, AS blackouts), control-plane
// failures in the SCION daemon (failed and stale path lookups), storage
// faults in the document database (rejected writes, journal truncation), and
// campaign-worker crashes with restart/resume. Run executes the faulty
// campaign next to a fault-free-storage oracle; Verify then asserts the
// invariants the rest of the repo promises — see docs/CHAOS.md.
package chaos

import (
	"hash/fnv"
	"math/rand"
	"time"

	"github.com/upin/scionpath/internal/addr"
	"github.com/upin/scionpath/internal/measure"
	"github.com/upin/scionpath/internal/sciond"
	"github.com/upin/scionpath/internal/simnet"
	"github.com/upin/scionpath/internal/topology"
)

// planHorizon bounds the simulated window network faults are drawn from. It
// covers every cell of the fixed scenario (2 iterations spaced by
// scenarioStride) with slack, so every fault can plausibly intersect a
// measurement.
const planHorizon = 3 * time.Minute

// LookupFaults parameterises the sciond fault hook.
type LookupFaults struct {
	// ErrorPct is the probability that a path lookup fails, decided by a
	// hash of (plan seed, destination, world seed) — deterministic per
	// forked world, therefore transient across a cell's retry attempts.
	ErrorPct float64
	// StaleStart/StaleEnd bound a simulated-time window during which the
	// daemon's segment-expiry refresh is suppressed (stale path service).
	StaleStart, StaleEnd time.Duration
}

// WriteFault fails the Nth write batch to one collection, once.
type WriteFault struct {
	// Collection is the target; plans only ever target the statistics and
	// checkpoint collections. Faulting the paths collection would be
	// swallowed by the collector's per-server error tolerance and silently
	// reshape the cell grid instead of exercising recovery.
	Collection string
	// Nth is the 1-based ordinal of the failing write across the whole
	// chaotic run (counters persist over crash/restart rounds). Plans keep
	// Nth >= 2 for the checkpoint collection: write #1 is the campaign
	// metadata document, and a run that never manages to record its
	// identity has nothing to resume — it would restart fresh, re-collect
	// paths, and legitimately diverge from the oracle.
	Nth int
}

// Crash kills one campaign round and damages the journal behind it.
type Crash struct {
	// AfterCheckpoints cancels the campaign context once this many writes
	// have hit the checkpoint collection in the round (>= 1).
	AfterCheckpoints int
	// TruncateTail cuts up to this many bytes off the journal's tail after
	// the crash, simulating an unsynced suffix lost with the page cache.
	// The cut is bounded so it never reaches past the campaign metadata
	// line (see truncateTail).
	TruncateTail int
}

// Plan is one seed's worth of composed faults. Plans are pure data: the
// same seed over the same topology always yields a deep-equal Plan.
type Plan struct {
	Seed    int64
	Network simnet.Schedule
	Lookup  LookupFaults
	Writes  []WriteFault
	Crashes []Crash
}

// NewPlan derives the fault plan for a seed over a topology. Everything is
// drawn from one seeded generator in a fixed order, so the plan — and
// through it the whole chaotic run — is reproducible from the seed alone.
//
//lint:deterministic plan derivation is the seed contract docs/CHAOS.md promises
func NewPlan(seed int64, topo *topology.Topology) Plan {
	rng := rand.New(rand.NewSource(seed))
	p := Plan{Seed: seed}

	window := func(minDur, maxDur time.Duration) (start, end time.Duration) {
		start = time.Duration(rng.Int63n(int64(planHorizon)))
		end = start + minDur + time.Duration(rng.Int63n(int64(maxDur-minDur)))
		return start, end
	}

	links := topo.Links()
	for i, n := 0, rng.Intn(3); i < n && len(links) > 0; i++ {
		l := links[rng.Intn(len(links))]
		start, end := window(5*time.Second, 45*time.Second)
		p.Network.Outages = append(p.Network.Outages, simnet.LinkOutage{
			A: l.A, B: l.B, Start: start, End: end,
		})
	}

	ases := topo.ASes()
	for i, n := 0, rng.Intn(3); i < n && len(ases) > 0; i++ {
		as := ases[rng.Intn(len(ases))]
		start, end := window(5*time.Second, 45*time.Second)
		p.Network.Episodes = append(p.Network.Episodes, simnet.Episode{
			IA: as.IA, Start: start, End: end, DropProb: 0.1 + 0.6*rng.Float64(),
		})
	}
	if len(ases) > 0 && rng.Intn(2) == 0 {
		as := ases[rng.Intn(len(ases))]
		start, end := window(5*time.Second, 30*time.Second)
		p.Network.Episodes = append(p.Network.Episodes, simnet.Blackout(as.IA, start, end))
	}

	p.Lookup.ErrorPct = []float64{0, 0.15, 0.3}[rng.Intn(3)]
	if rng.Intn(2) == 0 {
		p.Lookup.StaleStart, p.Lookup.StaleEnd = window(10*time.Second, 60*time.Second)
	}

	for i, n := 0, rng.Intn(3); i < n; i++ {
		col := measure.ColStats
		if rng.Intn(2) == 0 {
			col = measure.ColProgress
		}
		p.Writes = append(p.Writes, WriteFault{Collection: col, Nth: 2 + rng.Intn(6)})
	}

	for i, n := 0, 1+rng.Intn(3); i < n; i++ {
		p.Crashes = append(p.Crashes, Crash{
			AfterCheckpoints: 1 + rng.Intn(3),
			TruncateTail:     rng.Intn(200),
		})
	}
	return p
}

// LookupHook builds the sciond fault hook for the plan: a pure function of
// (destination, world seed, simulated time), as the daemon requires.
func (p Plan) LookupHook() sciond.FaultHook {
	lf := p.Lookup
	planSeed := p.Seed
	return func(dst addr.IA, seed int64, now time.Duration) sciond.Fault {
		if lf.StaleEnd > lf.StaleStart && now >= lf.StaleStart && now < lf.StaleEnd {
			return sciond.FaultStalePaths
		}
		if lf.ErrorPct > 0 && lookupRoll(planSeed, dst, seed) < lf.ErrorPct {
			return sciond.FaultLookupError
		}
		return sciond.FaultNone
	}
}

// lookupRoll maps (plan seed, destination, world seed) to [0,1) by FNV-64a.
func lookupRoll(planSeed int64, dst addr.IA, worldSeed int64) float64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (56 - 8*i))
		}
		_, _ = h.Write(buf[:])
	}
	put(uint64(planSeed))
	put(uint64(worldSeed))
	_, _ = h.Write([]byte(dst.String()))
	return float64(h.Sum64()%100000) / 100000
}
