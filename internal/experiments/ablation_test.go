package experiments

import (
	"context"
	"testing"
)

// The Fig 8 reversal requires the overload goodput collapse: proportional
// dropping can never make small packets beat large ones on goodput.
func TestAblationReversalMechanism(t *testing.T) {
	// Use more iterations to stabilise the means across the ablated pair.
	scale := Fast
	scale.Iterations = 4
	res, err := RunAblationReversal(context.Background(), 21, scale)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ReversalHolds() {
		t.Errorf("full model lost the reversal: 64B %.1f vs MTU %.1f Mbps",
			res.With64/1e6, res.WithMTU/1e6)
	}
	if !res.ReversalGoneWithoutCollapse() {
		t.Errorf("reversal survives without collapse: 64B %.1f vs MTU %.1f Mbps",
			res.Without64/1e6, res.WithoutMTU/1e6)
	}
	// Ablating the collapse must not reduce MTU throughput.
	if res.WithoutMTU < res.WithMTU {
		t.Errorf("collapse ablation lowered MTU throughput: %.1f -> %.1f",
			res.WithMTU/1e6, res.WithoutMTU/1e6)
	}
}

// The wide whiskers of the long-distance paths require per-AS jitter.
func TestAblationJitterMechanism(t *testing.T) {
	scale := Fast
	scale.Iterations = 6
	res, err := RunAblationJitter(context.Background(), 22, scale)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ContrastHolds() {
		t.Errorf("full model lacks the jitter contrast: ohio mdev %.2f vs direct %.2f ms",
			res.WithOhioMdev, res.WithDirectMdev)
	}
	if !res.ContrastGoneWithoutJitter() {
		t.Errorf("contrast survives without jitter: ohio mdev %.2f vs direct %.2f ms",
			res.WithoutOhioMdev, res.WithoutDirectMdev)
	}
}
