package experiments

import (
	"context"

	"fmt"
	"sort"

	"github.com/upin/scionpath/internal/measure"
	"github.com/upin/scionpath/internal/plot"
	"github.com/upin/scionpath/internal/stats"
	"github.com/upin/scionpath/internal/topology"
)

// LatencyLayer classifies a path by the geography of its transit, the
// mechanism behind Fig 5's "clear separation of latency values into three
// main layers".
type LatencyLayer string

// The three layers of Fig 5: paths staying in Europe, paths detouring
// through the United States (the paper's paths "10"/"15" via Ohio), and
// paths detouring through Asia (paths "9"/"14" via Singapore).
const (
	LayerEurope    LatencyLayer = "europe"
	LayerOhio      LatencyLayer = "us-detour"
	LayerSingapore LatencyLayer = "singapore"
)

// Fig5Result reproduces "Average Latency Values measured for each path of
// destination 16-ffaa:0:1002 (AWS - Ireland)", box plots split into 6-hop
// and 7-hop path groups.
type Fig5Result struct {
	ServerID int
	// Boxes hold one whisker summary per path, tagged "6 hops"/"7 hops".
	Boxes []plot.Box
	// LayerOf maps path id to its latency layer.
	LayerOf map[string]LatencyLayer
	// LayerSummary aggregates all samples per layer.
	LayerSummary map[LatencyLayer]stats.Summary
	// HopsOf maps path id to its hop count.
	HopsOf   map[string]int
	Rendered string
}

// Fig5 measures every retained path to AWS Ireland Scale.Iterations times
// (latency/loss only) and builds the per-path box plots.
func Fig5(ctx context.Context, env *Env, scale Scale) (Fig5Result, error) {
	id, err := env.ServerID(topology.AWSIreland)
	if err != nil {
		return Fig5Result{}, err
	}
	if _, err := env.Suite.Run(ctx, scale.runOpts([]int{id}, true, 0)); err != nil {
		return Fig5Result{}, err
	}
	return fig5FromDB(env, id)
}

// fig5FromDB builds the figure from an already measured database (so Fig 6
// can reuse the same campaign, like the paper does).
func fig5FromDB(env *Env, serverID int) (Fig5Result, error) {
	pds, err := measure.PathsForServer(env.DB, serverID)
	if err != nil {
		return Fig5Result{}, err
	}
	lat := latencyByPath(env.DB, serverID)

	res := Fig5Result{
		ServerID:     serverID,
		LayerOf:      map[string]LatencyLayer{},
		LayerSummary: map[LatencyLayer]stats.Summary{},
		HopsOf:       map[string]int{},
	}
	layerSamples := map[LatencyLayer][]float64{}
	// Path order: by index (the x-axis of Fig 5).
	sort.Slice(pds, func(i, j int) bool { return pds[i].Index < pds[j].Index })
	for _, pd := range pds {
		samples := lat[pd.ID]
		layer := LayerEurope
		switch {
		case pathCrossesCountry(env, pd, "Singapore"):
			layer = LayerSingapore
		case pathCrossesCountry(env, pd, "United States"):
			layer = LayerOhio
		}
		res.LayerOf[pd.ID] = layer
		res.HopsOf[pd.ID] = pd.Hops
		layerSamples[layer] = append(layerSamples[layer], samples...)
		res.Boxes = append(res.Boxes, plot.Box{
			Label:   pd.ID,
			Tag:     fmt.Sprintf("%d hops", pd.Hops),
			Summary: stats.Summarize(samples),
		})
	}
	for layer, samples := range layerSamples {
		res.LayerSummary[layer] = stats.Summarize(samples)
	}
	res.Rendered = plot.BoxPlot(
		"Fig 5 — Average latency per path to 16-ffaa:0:1002 (AWS Ireland)",
		"ms", res.Boxes, 64)
	return res, nil
}
