package experiments

import (
	"context"
	"fmt"

	"github.com/upin/scionpath/internal/docdb"
	"github.com/upin/scionpath/internal/measure"
	"github.com/upin/scionpath/internal/sciond"
	"github.com/upin/scionpath/internal/simnet"
	"github.com/upin/scionpath/internal/topology"
)

// Ablations quantify which model mechanisms the reproduced figures depend
// on (the design choices DESIGN.md §5 calls out):
//
//   - the overload goodput collapse produces Fig 8's 64B>MTU reversal;
//   - the sender packet-rate cap keeps 64-byte flows from offering
//     150 Mbps (without it the reversal direction changes character);
//   - per-AS jitter produces the wide whiskers of the 1004/1007 paths
//     in Fig 5/6.

// NewEnvWithOptions builds an env with custom simulator options (the
// topology and database wiring match NewEnv).
func NewEnvWithOptions(seed int64, opts simnet.Options) (*Env, error) {
	topo := topology.DefaultWorld()
	opts.Seed = seed
	net := simnet.New(topo, opts)
	daemon, err := sciond.New(topo, net, topology.MyAS)
	if err != nil {
		return nil, err
	}
	db := docdb.MustOpen()
	if err := measure.SeedServers(db, topo); err != nil {
		return nil, err
	}
	return &Env{
		Topo:   topo,
		Net:    net,
		Daemon: daemon,
		DB:     db,
		Suite:  &measure.Suite{DB: db, Daemon: daemon},
	}, nil
}

// AblationReversal measures the Fig 8 comparison (150 Mbps, 64B vs MTU
// upstream) with and without the goodput-collapse mechanism. The reversal
// must hold with the mechanism and vanish without it.
type AblationReversal struct {
	With64, WithMTU       float64 // means with collapse enabled (bps)
	Without64, WithoutMTU float64 // means with collapse ablated
}

// ReversalHolds reports whether 64B beats MTU under the full model.
func (a AblationReversal) ReversalHolds() bool { return a.With64 > a.WithMTU }

// ReversalGoneWithoutCollapse reports whether ablating the collapse restores
// MTU dominance (proportional dropping can never favour small packets).
func (a AblationReversal) ReversalGoneWithoutCollapse() bool {
	return a.WithoutMTU >= a.Without64
}

// RunAblationReversal runs the paired experiment.
func RunAblationReversal(ctx context.Context, seed int64, scale Scale) (AblationReversal, error) {
	var out AblationReversal
	full, err := NewEnvWithOptions(seed, simnet.Options{})
	if err != nil {
		return out, err
	}
	r1, err := Fig8(ctx, full, scale)
	if err != nil {
		return out, fmt.Errorf("full model: %w", err)
	}
	out.With64, out.WithMTU = r1.Mean64Up, r1.MeanMTUUp

	ablated, err := NewEnvWithOptions(seed, simnet.Options{DisableCollapse: true})
	if err != nil {
		return out, err
	}
	r2, err := Fig8(ctx, ablated, scale)
	if err != nil {
		return out, fmt.Errorf("ablated model: %w", err)
	}
	out.Without64, out.WithoutMTU = r2.Mean64Up, r2.MeanMTUUp
	return out, nil
}

// AblationJitter measures the Fig 5/6 jitter contrast — the mean within-run
// latency deviation (mdev) of paths through the jittery transits
// (16-ffaa:0:1004 and 16-ffaa:0:1007) versus all other paths — with and
// without per-AS jitter.
type AblationJitter struct {
	WithOhioMdev, WithDirectMdev       float64
	WithoutOhioMdev, WithoutDirectMdev float64
}

// ContrastHolds reports whether the jittery transits visibly raise mdev
// under the full model ("a wide jitter other than high latency peeks").
func (a AblationJitter) ContrastHolds() bool {
	return a.WithOhioMdev > 2*a.WithDirectMdev
}

// ContrastGoneWithoutJitter reports whether ablating jitter collapses the
// contrast (mdevs within a factor ~2 of each other).
func (a AblationJitter) ContrastGoneWithoutJitter() bool {
	return a.WithoutOhioMdev <= 2*a.WithoutDirectMdev+0.5
}

// RunAblationJitter runs the paired experiment over the Fig 5 campaign.
func RunAblationJitter(ctx context.Context, seed int64, scale Scale) (AblationJitter, error) {
	var out AblationJitter
	measureMdev := func(opts simnet.Options) (ohio, direct float64, err error) {
		env, err := NewEnvWithOptions(seed, opts)
		if err != nil {
			return 0, 0, err
		}
		res, err := Fig5(ctx, env, scale)
		if err != nil {
			return 0, 0, err
		}
		mdevs := mdevByPath(env.DB, res.ServerID)
		pds, err := measure.PathsForServer(env.DB, res.ServerID)
		if err != nil {
			return 0, 0, err
		}
		var nOhio, nDirect int
		for _, pd := range pds {
			jittery := false
			for _, ia := range longDistanceTransits() {
				if pathTraverses(pd, ia) {
					jittery = true
					break
				}
			}
			for _, v := range mdevs[pd.ID] {
				if jittery {
					ohio += v
					nOhio++
				} else {
					direct += v
					nDirect++
				}
			}
		}
		if nOhio == 0 || nDirect == 0 {
			return 0, 0, fmt.Errorf("ablation: missing layers (ohio=%d direct=%d)", nOhio, nDirect)
		}
		return ohio / float64(nOhio), direct / float64(nDirect), nil
	}
	var err error
	if out.WithOhioMdev, out.WithDirectMdev, err = measureMdev(simnet.Options{}); err != nil {
		return out, err
	}
	if out.WithoutOhioMdev, out.WithoutDirectMdev, err = measureMdev(simnet.Options{DisableJitter: true}); err != nil {
		return out, err
	}
	return out, nil
}
