package experiments

import (
	"context"
	"errors"
	"testing"
	"time"
)

// A cancelled context must abort an experiment before it does any real
// measurement work — the property the ctxcheck analyzer exists to protect.
// Every entry point that runs a campaign or a collection pass is exercised
// with an already-cancelled context and must return context.Canceled
// promptly instead of running the full campaign.
func TestCancelledContextAbortsExperiments(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	calls := []struct {
		name string
		run  func(e *Env) error
	}{
		{"Fig5", func(e *Env) error { _, err := Fig5(ctx, e, Fast); return err }},
		{"Fig6", func(e *Env) error { _, err := Fig6(ctx, e, Fast); return err }},
		{"Fig7", func(e *Env) error { _, err := Fig7(ctx, e, Fast); return err }},
		{"Fig9", func(e *Env) error { _, err := Fig9(ctx, e, Fast); return err }},
		{"Correlation", func(e *Env) error { _, err := Correlation(ctx, e, Fast, nil); return err }},
		{"TableFilter", func(e *Env) error { _, err := TableFilter(ctx, e); return err }},
	}
	for _, tc := range calls {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			start := time.Now()
			err := tc.run(env(t, 1))
			if err == nil {
				t.Fatalf("%s ran to completion under a cancelled context", tc.name)
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("%s: error %v does not wrap context.Canceled", tc.name, err)
			}
			// "Promptly": the abort must cost far less than the campaign it
			// skipped. Even the Fast scale takes much longer than this bound
			// when it actually measures.
			if elapsed := time.Since(start); elapsed > 5*time.Second {
				t.Fatalf("%s took %v to honour the cancelled context", tc.name, elapsed)
			}
		})
	}
}
