package experiments

import (
	"context"

	"fmt"
	"strings"

	"github.com/upin/scionpath/internal/measure"
	"github.com/upin/scionpath/internal/plot"
	"github.com/upin/scionpath/internal/stats"
	"github.com/upin/scionpath/internal/topology"
)

// Fig6Result reproduces "Average latency for each ISD set grouped by hop
// count": the left plot includes every measurement, the right plot excludes
// the long-distance paths (via AWS Ohio and AWS Singapore) from the groups,
// showing "a smaller variance and comparable values".
type Fig6Result struct {
	ServerID int
	// All summarises latency per "ISDset/hops" group over every path.
	All map[string]stats.Summary
	// Excluded is the same after removing long-distance paths.
	Excluded map[string]stats.Summary
	Rendered string
}

// GroupKey builds the "ISDset/hops" key of Fig 6's x-axis.
func GroupKey(isds []string, hops int) string {
	return fmt.Sprintf("{%s}/%dh", strings.Join(isds, ","), hops)
}

// Fig6 reuses (or creates) a latency campaign against AWS Ireland and
// groups it by traversed-ISD set and hop count.
func Fig6(ctx context.Context, env *Env, scale Scale) (Fig6Result, error) {
	id, err := env.ServerID(topology.AWSIreland)
	if err != nil {
		return Fig6Result{}, err
	}
	// Measure only when the database has no campaign for this server yet.
	if len(latencyByPath(env.DB, id)) == 0 {
		if _, err := env.Suite.Run(ctx, scale.runOpts([]int{id}, true, 0)); err != nil {
			return Fig6Result{}, err
		}
	}

	pds, err := measure.PathsForServer(env.DB, id)
	if err != nil {
		return Fig6Result{}, err
	}
	lat := latencyByPath(env.DB, id)

	all := stats.NewGroup()
	excl := stats.NewGroup()
	for _, pd := range pds {
		key := GroupKey(pd.ISDs, pd.Hops)
		longDistance := false
		for _, ia := range longDistanceTransits() {
			if pathTraverses(pd, ia) {
				longDistance = true
				break
			}
		}
		for _, v := range lat[pd.ID] {
			all.Add(key, v)
			if !longDistance {
				excl.Add(key, v)
			}
		}
	}

	res := Fig6Result{
		ServerID: id,
		All:      map[string]stats.Summary{},
		Excluded: map[string]stats.Summary{},
	}
	var leftBoxes, rightBoxes []plot.Box
	for _, key := range all.SortedKeys() {
		res.All[key] = all.Summary(key)
		leftBoxes = append(leftBoxes, plot.Box{Label: key, Summary: all.Summary(key)})
	}
	for _, key := range excl.SortedKeys() {
		res.Excluded[key] = excl.Summary(key)
		rightBoxes = append(rightBoxes, plot.Box{Label: key, Summary: excl.Summary(key)})
	}
	res.Rendered = plot.BoxPlot("Fig 6 (left) — Latency per ISD set x hop count, all paths", "ms", leftBoxes, 64) +
		plot.BoxPlot("Fig 6 (right) — Same, long-distance paths excluded", "ms", rightBoxes, 64)
	return res, nil
}
