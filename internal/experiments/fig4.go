package experiments

import (
	"fmt"

	"github.com/upin/scionpath/internal/addr"
	"github.com/upin/scionpath/internal/measure"
	"github.com/upin/scionpath/internal/plot"
	"github.com/upin/scionpath/internal/sciond"
	"github.com/upin/scionpath/internal/stats"
)

// Fig4Result reproduces "Server Reachability from MY_AS#1": the number of
// destinations reachable requiring a minimum hop count (Fig 4), plus the
// in-text statistics — average path length 5.66 hops, ~70 % within 6 hops.
type Fig4Result struct {
	Report sciond.ReachabilityReport
	// Histogram is #destinations per minimum hop count.
	Histogram *stats.Histogram
	// AvgMinHops and FracWithin6 are the headline numbers of §6.
	AvgMinHops  float64
	FracWithin6 float64
	// Reachable is the number of reachable destination ASes.
	Reachable int
	Rendered  string
}

// Fig4 computes server reachability over the availableServers catalogue.
func Fig4(env *Env) (Fig4Result, error) {
	servers, err := measure.Servers(env.DB)
	if err != nil {
		return Fig4Result{}, err
	}
	dests := make([]addr.IA, 0, len(servers))
	for _, s := range servers {
		dests = append(dests, s.Address.IA)
	}
	rep := env.Daemon.Reachability(dests)

	h := stats.NewHistogram()
	for _, min := range rep.MinHopsByDest {
		h.Add(min)
	}
	res := Fig4Result{
		Report:      rep,
		Histogram:   h,
		AvgMinHops:  rep.AvgMinHops,
		FracWithin6: rep.FracWithin[6],
		Reachable:   len(rep.MinHopsByDest),
	}

	bars := make([]plot.Bar, 0, len(h.Bins()))
	for _, bin := range h.Bins() {
		bars = append(bars, plot.Bar{
			Label: fmt.Sprintf("%d hops", bin),
			Value: float64(h.Counts[bin]),
		})
	}
	res.Rendered = plot.BarChart(
		fmt.Sprintf("Fig 4 — Server reachability from MY_AS (avg min path length %.2f hops, %.0f%% within 6 hops)",
			res.AvgMinHops, 100*res.FracWithin6),
		"destinations", bars, 40)
	return res, nil
}
