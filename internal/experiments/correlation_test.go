package experiments

import (
	"context"
	"strings"
	"testing"
)

// TestCorrelationDistanceDominates encodes the paper's central claim
// quantitatively: across measured paths, geographic distance correlates
// with RTT far more strongly than hop count does.
func TestCorrelationDistanceDominates(t *testing.T) {
	res, err := Correlation(context.Background(), env(t, 30), Fast, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples < 30 {
		t.Fatalf("only %d samples", res.Samples)
	}
	if res.DistanceVsLatency < 0.9 {
		t.Errorf("distance correlation %.3f, want near 1 (propagation dominates)", res.DistanceVsLatency)
	}
	if res.HopsVsLatency > 0.6 {
		t.Errorf("hop-count correlation %.3f unexpectedly strong", res.HopsVsLatency)
	}
	if res.DistanceVsLatency <= res.HopsVsLatency {
		t.Errorf("distance r=%.3f not above hops r=%.3f", res.DistanceVsLatency, res.HopsVsLatency)
	}
	if !strings.Contains(res.Rendered, "path distance") {
		t.Error("rendering incomplete")
	}
}
