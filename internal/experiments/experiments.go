// Package experiments reproduces every figure and in-text table of the
// paper's evaluation (§6). Each Fig* function builds its workload, drives
// the test-suite over the simulated SCIONLab, and returns both structured
// results (for assertions and benchmarks) and a rendered text figure.
package experiments

import (
	"fmt"
	"time"

	"github.com/upin/scionpath/internal/addr"
	"github.com/upin/scionpath/internal/docdb"
	"github.com/upin/scionpath/internal/measure"
	"github.com/upin/scionpath/internal/sciond"
	"github.com/upin/scionpath/internal/selection"
	"github.com/upin/scionpath/internal/simnet"
	"github.com/upin/scionpath/internal/topology"
)

// Scale sets the measurement effort. Fast keeps tests and benchmarks
// snappy; PaperScale matches the paper's parameters (30-echo pings at
// 0.1 s, 3 s bandwidth tests, enough iterations for ~3000 samples).
type Scale struct {
	Iterations   int
	PingCount    int
	PingInterval time.Duration
	BwDuration   time.Duration
}

// Fast is the test/bench scale.
var Fast = Scale{Iterations: 3, PingCount: 10, PingInterval: 10 * time.Millisecond, BwDuration: 500 * time.Millisecond}

// PaperScale mirrors §5.3's parameters.
var PaperScale = Scale{Iterations: 20, PingCount: 30, PingInterval: 100 * time.Millisecond, BwDuration: 3 * time.Second}

// Env is a fresh simulated SCIONLab with an empty measurement database.
type Env struct {
	Topo   *topology.Topology
	Net    *simnet.Network
	Daemon *sciond.Daemon
	DB     *docdb.DB
	Suite  *measure.Suite
}

// NewEnv builds the world with a deterministic seed.
func NewEnv(seed int64) (*Env, error) {
	topo := topology.DefaultWorld()
	net := simnet.New(topo, simnet.Options{Seed: seed})
	daemon, err := sciond.New(topo, net, topology.MyAS)
	if err != nil {
		return nil, err
	}
	db := docdb.MustOpen()
	if err := measure.SeedServers(db, topo); err != nil {
		return nil, err
	}
	return &Env{
		Topo:   topo,
		Net:    net,
		Daemon: daemon,
		DB:     db,
		Suite:  &measure.Suite{DB: db, Daemon: daemon},
	}, nil
}

// ServerID resolves the availableServers id of a destination AS (its first
// server when the AS houses several).
func (e *Env) ServerID(ia addr.IA) (int, error) {
	servers, err := measure.Servers(e.DB)
	if err != nil {
		return 0, err
	}
	for _, s := range servers {
		if s.Address.IA == ia {
			return s.ID, nil
		}
	}
	return 0, fmt.Errorf("experiments: no server in AS %s", ia)
}

// Selection returns a path-selection engine over the env's database.
func (e *Env) Selection() *selection.Engine {
	return selection.New(e.DB, e.Topo)
}

// runOpts converts a Scale to measurement options for one destination.
func (s Scale) runOpts(serverIDs []int, skipBW bool, targetBps float64) measure.RunOpts {
	return measure.RunOpts{
		Iterations:    s.Iterations,
		ServerIDs:     serverIDs,
		PingCount:     s.PingCount,
		PingInterval:  s.PingInterval,
		BwDuration:    s.BwDuration,
		BwTargetBps:   targetBps,
		SkipBandwidth: skipBW,
	}
}

// longDistanceTransits are the geographically remote ASes of §6.1 whose
// removal the Fig 6 right-hand plot studies.
func longDistanceTransits() []string {
	return []string{topology.AWSOhio.String(), topology.AWSSingapore.String()}
}

// pathCrossesCountry reports whether any hop of the stored path sits in the
// given country.
func pathCrossesCountry(env *Env, pd measure.PathDoc, country string) bool {
	for _, pred := range pd.Sequence {
		as := env.Topo.AS(addr.IA{ISD: pred.ISD, AS: pred.AS})
		if as != nil && as.Site.Country == country {
			return true
		}
	}
	return false
}

// pathTraverses reports whether the stored path traverses the AS.
func pathTraverses(pd measure.PathDoc, ia string) bool {
	target, err := addr.ParseIA(ia)
	if err != nil {
		return false
	}
	for _, pred := range pd.Sequence {
		if pred.ISD == target.ISD && pred.AS == target.AS {
			return true
		}
	}
	return false
}

// fieldByPath extracts one numeric field per path from paths_stats in
// timestamp order. It streams zero-copy via ForEach: each figure reads two
// strings and a float per document, so cloning full documents would
// dominate the extraction cost.
func fieldByPath(db *docdb.DB, serverID int, field string) map[string][]float64 {
	out := map[string][]float64{}
	db.Collection(measure.ColStats).ForEach(docdb.Query{
		Filter: docdb.Eq(measure.FServerID, serverID),
		SortBy: measure.FTimestamp,
	}, func(d docdb.Document) bool {
		pathID, _ := d[measure.FPathID].(string)
		if v, ok := d[field].(float64); ok {
			out[pathID] = append(out[pathID], v)
		}
		return true
	})
	return out
}

// latencyByPath extracts per-path average latencies from paths_stats.
func latencyByPath(db *docdb.DB, serverID int) map[string][]float64 {
	return fieldByPath(db, serverID, measure.FAvgLatency)
}

// mdevByPath extracts per-path latency deviations from paths_stats.
func mdevByPath(db *docdb.DB, serverID int) map[string][]float64 {
	return fieldByPath(db, serverID, measure.FMdev)
}

// lossByPath extracts per-path loss percentages from paths_stats.
func lossByPath(db *docdb.DB, serverID int) map[string][]float64 {
	return fieldByPath(db, serverID, measure.FLoss)
}

// bwByPath extracts one bandwidth field per path from paths_stats.
func bwByPath(db *docdb.DB, serverID int, field string) map[string][]float64 {
	return fieldByPath(db, serverID, field)
}
