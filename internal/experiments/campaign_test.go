package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestFullCampaignFastScale(t *testing.T) {
	res, err := FullCampaign(context.Background(), env(t, 80), Fast)
	if err != nil {
		t.Fatal(err)
	}
	if res.Destinations != 5 {
		t.Errorf("campaign covered %d destinations, want the 5-focus subset", res.Destinations)
	}
	// Samples = iterations x total retained paths over the subset.
	if res.Samples != res.PathsTested {
		t.Errorf("samples %d != paths tested %d (one stat per path per iteration)", res.Samples, res.PathsTested)
	}
	if res.Samples < 5*Fast.Iterations {
		t.Errorf("only %d samples", res.Samples)
	}
	if res.Failures != 0 {
		t.Errorf("%d failures on a healthy network", res.Failures)
	}
	if res.SimulatedTime <= 0 {
		t.Error("no simulated time elapsed")
	}
	if !strings.Contains(res.Rendered, "~3000") {
		t.Error("rendering misses the paper reference")
	}
}

// TestFullCampaignSampleScaling checks the arithmetic that lands the paper
// at ~3000 samples: samples scale linearly with iterations.
func TestFullCampaignSampleScaling(t *testing.T) {
	scale1, scale2 := Fast, Fast
	scale1.Iterations, scale2.Iterations = 1, 3
	r1, err := FullCampaign(context.Background(), env(t, 81), scale1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := FullCampaign(context.Background(), env(t, 82), scale2)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Samples != 3*r1.Samples {
		t.Errorf("samples do not scale linearly: %d vs 3x%d", r2.Samples, r1.Samples)
	}
	// At the paper's 20 iterations the same path set yields 20x r1 samples;
	// assert the extrapolation lands in the paper's "approximately three
	// thousand" ballpark.
	extrapolated := 20 * r1.Samples
	if extrapolated < 500 || extrapolated > 5000 {
		t.Errorf("paper-scale extrapolation %d samples outside the ~3000 ballpark", extrapolated)
	}
}
