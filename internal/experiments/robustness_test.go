package experiments

import (
	"context"
	"fmt"
	"testing"
)

// The figure shapes are claims about the model, not about one lucky seed.
// These tests sweep several seeds and require every one to reproduce the
// qualitative result.

func TestFig7ShapeAcrossSeeds(t *testing.T) {
	for seed := int64(100); seed < 104; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			res, err := Fig7(context.Background(), env(t, seed), Fast)
			if err != nil {
				t.Fatal(err)
			}
			if !(res.Mean64Up < res.MeanMTUUp && res.Mean64Down < res.MeanMTUDown) {
				t.Errorf("Fig 7 ordering broken: 64B %.1f/%.1f vs MTU %.1f/%.1f Mbps",
					res.Mean64Up/1e6, res.Mean64Down/1e6, res.MeanMTUUp/1e6, res.MeanMTUDown/1e6)
			}
		})
	}
}

func TestFig8ShapeAcrossSeeds(t *testing.T) {
	for seed := int64(200); seed < 204; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			res, err := Fig8(context.Background(), env(t, seed), Fast)
			if err != nil {
				t.Fatal(err)
			}
			if !(res.Mean64Up > res.MeanMTUUp && res.Mean64Down > res.MeanMTUDown) {
				t.Errorf("Fig 8 reversal broken: 64B %.1f/%.1f vs MTU %.1f/%.1f Mbps",
					res.Mean64Up/1e6, res.Mean64Down/1e6, res.MeanMTUUp/1e6, res.MeanMTUDown/1e6)
			}
		})
	}
}

func TestFig5LayersAcrossSeeds(t *testing.T) {
	for seed := int64(300); seed < 304; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			res, err := Fig5(context.Background(), env(t, seed), Fast)
			if err != nil {
				t.Fatal(err)
			}
			eu, us, sg := res.LayerSummary[LayerEurope], res.LayerSummary[LayerOhio], res.LayerSummary[LayerSingapore]
			if !(eu.Mean < us.Mean && us.Mean < sg.Mean) {
				t.Errorf("layers disordered: eu=%.1f us=%.1f sg=%.1f", eu.Mean, us.Mean, sg.Mean)
			}
		})
	}
}

func TestFig9SubsetAcrossSeeds(t *testing.T) {
	for seed := int64(400); seed < 403; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			res, err := Fig9(context.Background(), env(t, seed), Fast)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.FullLossPaths) == 0 || len(res.FullLossPaths) >= len(res.Series) {
				t.Errorf("full-loss subset %d of %d", len(res.FullLossPaths), len(res.Series))
			}
		})
	}
}
