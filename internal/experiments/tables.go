package experiments

import (
	"context"

	"fmt"

	"github.com/upin/scionpath/internal/measure"
	"github.com/upin/scionpath/internal/plot"
	"github.com/upin/scionpath/internal/topology"
)

// ReachTable reproduces the in-text reachability results of §6: "There are
// 21 reachable destinations", "the average path length is 5.66 hops and
// about 70% of paths can be reached within 6 hops".
type ReachTable struct {
	ReachableServers int
	AvgMinHops       float64
	FracWithin6      float64
	Rendered         string
}

// TableReachability computes the §6 headline numbers.
func TableReachability(env *Env) (ReachTable, error) {
	fig4, err := Fig4(env)
	if err != nil {
		return ReachTable{}, err
	}
	servers, err := measure.Servers(env.DB)
	if err != nil {
		return ReachTable{}, err
	}
	// Count reachable *servers* (the paper's 21), not distinct ASes.
	reachable := 0
	for _, s := range servers {
		if _, ok := fig4.Report.MinHopsByDest[s.Address.IA]; ok {
			reachable++
		}
	}
	t := ReachTable{
		ReachableServers: reachable,
		AvgMinHops:       fig4.AvgMinHops,
		FracWithin6:      fig4.FracWithin6,
	}
	t.Rendered = plot.Table(
		[]string{"metric", "paper", "measured"},
		[][]string{
			{"reachable destinations", "21", fmt.Sprintf("%d", t.ReachableServers)},
			{"average min path length", "5.66 hops", fmt.Sprintf("%.2f hops", t.AvgMinHops)},
			{"reachable within 6 hops", "~70%", fmt.Sprintf("%.0f%%", 100*t.FracWithin6)},
		})
	return t, nil
}

// FilterTable reproduces the §5.2 path-retention rule: per destination,
// how many of the discovered paths survive the hops <= min+1 filter.
type FilterTable struct {
	Discovered int
	Retained   int
	PerServer  map[int][2]int // server id -> {discovered, retained}
	Rendered   string
}

// TableFilter runs a collection pass and reports the filter effect.
func TableFilter(ctx context.Context, env *Env) (FilterTable, error) {
	rep, err := measure.CollectPaths(ctx, env.DB, env.Daemon, measure.CollectOpts{})
	if err != nil {
		return FilterTable{}, err
	}
	t := FilterTable{
		Discovered: rep.PathsDiscovered,
		Retained:   rep.PathsRetained,
		PerServer:  map[int][2]int{},
	}
	servers, err := measure.Servers(env.DB)
	if err != nil {
		return t, err
	}
	rows := make([][]string, 0, len(servers))
	for _, s := range servers {
		pds, err := measure.PathsForServer(env.DB, s.ID)
		if err != nil {
			return t, err
		}
		t.PerServer[s.ID] = [2]int{0, len(pds)}
		rows = append(rows, []string{
			fmt.Sprintf("%d", s.ID), s.Address.IA.String(), s.Country, fmt.Sprintf("%d", len(pds)),
		})
	}
	t.Rendered = plot.Table([]string{"server", "ISD-AS", "country", "retained paths"}, rows)
	return t, nil
}

// SampleCount reports how many samples a full campaign stored, mirroring
// the paper's "approximately three thousand samples" over the focus subset.
func SampleCount(env *Env) int {
	return env.DB.Collection(measure.ColStats).Count()
}

// FocusServerIDs resolves the availableServers ids of the paper's
// 5-destination focus subset (Germany, Ireland, N. Virginia, Singapore,
// Korea).
func FocusServerIDs(env *Env) ([]int, error) {
	var ids []int
	for _, ia := range topology.FocusDestinations() {
		id, err := env.ServerID(ia)
		if err != nil {
			return nil, err
		}
		ids = append(ids, id)
	}
	return ids, nil
}
