package experiments

import (
	"context"
	"fmt"
	"time"

	"github.com/upin/scionpath/internal/measure"
)

// CampaignResult reproduces the paper's full data-gathering run: the focus
// subset of 5 destinations (Germany, Ireland, N. Virginia, Singapore,
// Korea), measured repeatedly — "the test-suite gathered a substantial
// dataset comprising approximately three thousand samples" (§6).
type CampaignResult struct {
	Destinations int
	PathsTested  int
	Samples      int
	Failures     int
	// SimulatedTime is how long the campaign took on the simulated clock.
	SimulatedTime time.Duration
	Rendered      string
}

// FullCampaign runs the paper's §6 campaign at the given scale against the
// focus destinations and reports the dataset size.
func FullCampaign(ctx context.Context, env *Env, scale Scale) (CampaignResult, error) {
	return fullCampaign(ctx, env, scale, 0)
}

// FullCampaignParallel runs the same campaign on the measure package's
// campaign engine with the given worker count. The stored dataset is
// identical to FullCampaign's for the same environment seed; only the
// wall-clock time changes.
func FullCampaignParallel(ctx context.Context, env *Env, scale Scale, workers int) (CampaignResult, error) {
	return fullCampaign(ctx, env, scale, workers)
}

func fullCampaign(ctx context.Context, env *Env, scale Scale, workers int) (CampaignResult, error) {
	ids, err := FocusServerIDs(env)
	if err != nil {
		return CampaignResult{}, err
	}
	opts := measure.RunOpts{
		Iterations:   scale.Iterations,
		ServerIDs:    ids,
		PingCount:    scale.PingCount,
		PingInterval: scale.PingInterval,
		BwDuration:   scale.BwDuration,
	}
	opts.Campaign.Workers = workers
	rep, err := env.Suite.Run(ctx, opts)
	if err != nil {
		return CampaignResult{}, err
	}
	res := CampaignResult{
		Destinations:  rep.Destinations,
		PathsTested:   rep.PathsTested,
		Samples:       rep.StatsStored,
		Failures:      rep.Failures,
		SimulatedTime: rep.SimulatedTime,
	}
	res.Rendered = fmt.Sprintf(
		"Full campaign over the 5 focus destinations (%d iterations):\n"+
			"  samples stored:  %d (paper: ~3000)\n"+
			"  paths tested:    %d\n"+
			"  failures:        %d\n"+
			"  simulated time:  %v\n",
		scale.Iterations, res.Samples, res.PathsTested, res.Failures,
		res.SimulatedTime.Round(time.Second))
	return res, nil
}
