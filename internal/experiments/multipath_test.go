package experiments

import (
	"context"
	"strings"
	"testing"
)

// TestMultipathAggregates is the PR's end-to-end acceptance: on a
// disjoint-rich world, splitting the transfer across a SelectSet path set
// yields aggregate goodput at least as high as the single best path, and
// some multipath set beats it decisively.
func TestMultipathAggregates(t *testing.T) {
	res, err := Multipath(context.Background(), MultipathOpts{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sets) != 4 {
		t.Fatalf("expected K=1..4, got %d sets", len(res.Sets))
	}
	single := res.Sets[0]
	if single.K != 1 || single.Paths != 1 {
		t.Fatalf("first set is not the single-path baseline: %+v", single)
	}
	if single.Disjointness != 1 {
		t.Fatalf("single-path set reports disjointness %v", single.Disjointness)
	}
	if single.GoodputBps <= 0 {
		t.Fatalf("single path moved no data: %+v", single)
	}
	bestMulti := 0.0
	for _, set := range res.Sets[1:] {
		if set.Stalled {
			t.Fatalf("K=%d transfer stalled: %+v", set.K, set)
		}
		if set.Paths < 2 {
			t.Fatalf("K=%d selected only %d paths on a disjoint-rich world", set.K, set.Paths)
		}
		// The acceptance bar: aggregate goodput >= single-path.
		if set.GoodputBps < single.GoodputBps {
			t.Fatalf("K=%d aggregate %.0f below single-path %.0f",
				set.K, set.GoodputBps, single.GoodputBps)
		}
		bestMulti = max(bestMulti, set.GoodputBps)
	}
	// And on a world built to be disjoint-rich, at least one set should
	// aggregate decisively, not just tie.
	if bestMulti < single.GoodputBps*1.3 {
		t.Fatalf("no set aggregated meaningfully: single %.0f, best multipath %.0f",
			single.GoodputBps, bestMulti)
	}
	if !strings.Contains(res.Rendered, "K=1") || !strings.Contains(res.Rendered, "K=4") {
		t.Fatalf("rendered figure missing bars:\n%s", res.Rendered)
	}
}
