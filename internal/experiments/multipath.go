package experiments

import (
	"context"
	"fmt"

	"github.com/upin/scionpath/internal/addr"
	"github.com/upin/scionpath/internal/docdb"
	"github.com/upin/scionpath/internal/measure"
	"github.com/upin/scionpath/internal/pathmgr"
	"github.com/upin/scionpath/internal/plot"
	"github.com/upin/scionpath/internal/sciond"
	"github.com/upin/scionpath/internal/segment"
	"github.com/upin/scionpath/internal/selection"
	"github.com/upin/scionpath/internal/simnet"
	"github.com/upin/scionpath/internal/topology"
)

// MultipathOpts parameterises the aggregate-goodput experiment.
type MultipathOpts struct {
	Seed int64
	// MaxK is the largest path-set size to measure (default 4; K ranges
	// 1..MaxK, K=1 being the single-path baseline).
	MaxK int
	// TotalBytes is the split-transfer size (default 64 MiB).
	TotalBytes int64
	// Scale sets the measurement-campaign effort (zero value = Fast).
	Scale Scale
}

func (o MultipathOpts) withDefaults() MultipathOpts {
	if o.MaxK <= 0 {
		o.MaxK = 4
	}
	if o.TotalBytes <= 0 {
		o.TotalBytes = 64 << 20
	}
	if o.Scale == (Scale{}) {
		o.Scale = Fast
	}
	return o
}

// MultipathSet is one measured set size.
type MultipathSet struct {
	K     int
	Paths int // actual set size (≤ K when the pool is smaller)
	// Disjointness and SharedLinks echo the selection engine's accounting
	// for the chosen set.
	Disjointness float64
	SharedLinks  int
	// GoodputBps is the aggregate goodput of the split transfer over the
	// set, on a fork of the same network state for every K.
	GoodputBps float64
	Stalled    bool
}

// MultipathResult is the aggregate-goodput-vs-single-path figure: the new
// multipath workload the paper's single-best-path evaluation stops short
// of (cf. the SCION BitTorrent measurements, PAPERS.md).
type MultipathResult struct {
	Source string
	Dest   string
	Sets   []MultipathSet
	// Rendered is the bar chart, one bar per K.
	Rendered string
}

// Multipath measures aggregate goodput of SelectSet path sets against the
// single best path. It generates a disjoint-rich world (multi-parent
// topology, backbone-capacity links, so per-flow sender caps are the
// binding constraint and disjointness pays), runs a measurement campaign
// against one destination that provably has a fully link-disjoint path
// pair, then for each K ≤ MaxK selects a K-set, resolves it to live
// paths, and splits the same download across the set on a fresh fork of
// the network — identical network weather for every K, so the bars are
// comparable.
func Multipath(ctx context.Context, opts MultipathOpts) (*MultipathResult, error) {
	opts = opts.withDefaults()
	topo, err := topology.Generate(topology.GenerateSpec{
		Seed: opts.Seed, ISDs: 2, CoresPerISD: 3, NonCorePerISD: 20,
		MaxChildren: 4, CoreDegree: 3, MultiParentProb: 0.6,
	})
	if err != nil {
		return nil, err
	}
	src, dst, err := disjointEndpoints(topo)
	if err != nil {
		return nil, err
	}
	net := simnet.New(topo, simnet.Options{Seed: opts.Seed})
	daemon, err := sciond.New(topo, net, src)
	if err != nil {
		return nil, err
	}
	db := docdb.MustOpen()
	if err := measure.SeedServers(db, topo); err != nil {
		return nil, err
	}
	servers, err := measure.Servers(db)
	if err != nil {
		return nil, err
	}
	sid := 0
	for _, s := range servers {
		if s.Address.IA == dst {
			sid = s.ID
			break
		}
	}
	if sid == 0 {
		return nil, fmt.Errorf("experiments: no server in destination AS %s", dst)
	}

	suite := &measure.Suite{DB: db, Daemon: daemon}
	runOpts := opts.Scale.runOpts([]int{sid}, true, 0)
	// Keep the longer disjoint alternatives the default hop-slack filter
	// would drop: disjointness usually costs hops.
	runOpts.Collect = measure.CollectOpts{HopSlack: 3}
	if _, err := suite.Run(ctx, runOpts); err != nil {
		return nil, err
	}

	engine := selection.New(db, topo)
	res := &MultipathResult{Source: src.String(), Dest: dst.String()}
	var bars []plot.Bar
	for k := 1; k <= opts.MaxK; k++ {
		set, err := engine.SelectSet(ctx, sid, selection.SetRequest{
			Request: selection.Request{Objective: selection.LowestLatency},
			K:       k,
		})
		if err != nil {
			return nil, err
		}
		paths := make([]*pathmgr.Path, 0, len(set.Paths))
		for _, cand := range set.Paths {
			p, err := daemon.ResolveSequence(dst, cand.Sequence)
			if err != nil {
				return nil, err
			}
			paths = append(paths, p)
		}
		// The same fork seed for every K: each transfer runs against the
		// identical utilization process, so K is the only variable.
		tr, err := net.Fork(opts.Seed+1).SplitTransfer(paths, simnet.TransferSpec{
			TotalBytes: opts.TotalBytes,
		})
		if err != nil {
			return nil, err
		}
		res.Sets = append(res.Sets, MultipathSet{
			K:            k,
			Paths:        len(set.Paths),
			Disjointness: set.Disjointness,
			SharedLinks:  set.SharedLinks,
			GoodputBps:   tr.GoodputBps,
			Stalled:      tr.Stalled,
		})
		bars = append(bars, plot.Bar{
			Label: fmt.Sprintf("K=%d (disj %.2f)", k, set.Disjointness),
			Value: tr.GoodputBps / 1e6,
		})
	}
	res.Rendered = plot.BarChart(
		fmt.Sprintf("Aggregate goodput vs single path, %s -> %s (Mbps)", src, dst),
		"Mbps", bars, 50)
	return res, nil
}

// disjointEndpoints finds a (source, destination) AS pair joined by at
// least two fully link-disjoint paths, so the generated world provably
// supports aggregation at K=2.
func disjointEndpoints(topo *topology.Topology) (addr.IA, addr.IA, error) {
	reg := segment.Discover(topo, segment.Options{})
	comb := pathmgr.NewCombiner(topo, reg)
	ases := topo.ASes()
	for _, src := range ases {
		for _, dst := range ases {
			if src.IA == dst.IA || dst.NumServers < 1 {
				continue // the destination must host a measurable server
			}
			paths, err := comb.Paths(src.IA, dst.IA)
			if err != nil {
				continue
			}
			for i := 0; i < len(paths); i++ {
				links := pathLinkSet(paths[i])
				for j := i + 1; j < len(paths); j++ {
					if pathsDisjoint(links, paths[j]) {
						return src.IA, dst.IA, nil
					}
				}
			}
		}
	}
	return addr.IA{}, addr.IA{}, fmt.Errorf("experiments: generated world has no fully link-disjoint path pair")
}

func pathLinkSet(p *pathmgr.Path) map[[2]addr.IA]bool {
	s := map[[2]addr.IA]bool{}
	for i := 0; i+1 < len(p.Hops); i++ {
		s[[2]addr.IA{p.Hops[i].IA, p.Hops[i+1].IA}] = true
	}
	return s
}

func pathsDisjoint(links map[[2]addr.IA]bool, p *pathmgr.Path) bool {
	for i := 0; i+1 < len(p.Hops); i++ {
		if links[[2]addr.IA{p.Hops[i].IA, p.Hops[i+1].IA}] {
			return false
		}
	}
	return true
}
