package experiments

import (
	"context"

	"fmt"

	"github.com/upin/scionpath/internal/measure"
	"github.com/upin/scionpath/internal/plot"
	"github.com/upin/scionpath/internal/stats"
	"github.com/upin/scionpath/internal/topology"
)

// BandwidthFigResult reproduces Fig 7 (12 Mbps target) and Fig 8
// (150 Mbps target): "Average bandwidth values for each path, requiring a
// bandwidth of X from and to a Germany Server", upstream on the left,
// downstream on the right, with a 64-byte whisker and an MTU whisker per
// path.
type BandwidthFigResult struct {
	ServerID  int
	TargetBps float64
	// Per-path summaries, keyed by path id, in Mbps.
	Up64, Down64, UpMTU, DownMTU map[string]stats.Summary
	// Aggregate means over all paths and samples (Mbps), for the shape
	// assertions: who wins, 64B or MTU, in which direction.
	Mean64Up, Mean64Down, MeanMTUUp, MeanMTUDown float64
	Rendered                                     string
}

// Fig7 runs the 12 Mbps campaign against the Magdeburg AP (Germany).
func Fig7(ctx context.Context, env *Env, scale Scale) (BandwidthFigResult, error) {
	return bandwidthFig(ctx, env, scale, 12e6, "Fig 7")
}

// Fig8 runs the 150 Mbps campaign, where the 64-byte/MTU trend reverses.
func Fig8(ctx context.Context, env *Env, scale Scale) (BandwidthFigResult, error) {
	return bandwidthFig(ctx, env, scale, 150e6, "Fig 8")
}

func bandwidthFig(ctx context.Context, env *Env, scale Scale, target float64, tag string) (BandwidthFigResult, error) {
	id, err := env.ServerID(topology.MagdeburgAP)
	if err != nil {
		return BandwidthFigResult{}, err
	}
	if _, err := env.Suite.Run(ctx, scale.runOpts([]int{id}, false, target)); err != nil {
		return BandwidthFigResult{}, err
	}

	res := BandwidthFigResult{
		ServerID:  id,
		TargetBps: target,
		Up64:      map[string]stats.Summary{},
		Down64:    map[string]stats.Summary{},
		UpMTU:     map[string]stats.Summary{},
		DownMTU:   map[string]stats.Summary{},
	}
	fields := []struct {
		field string
		into  map[string]stats.Summary
		mean  *float64
	}{
		{measure.FBwUp64, res.Up64, &res.Mean64Up},
		{measure.FBwDown64, res.Down64, &res.Mean64Down},
		{measure.FBwUpMTU, res.UpMTU, &res.MeanMTUUp},
		{measure.FBwDownMTU, res.DownMTU, &res.MeanMTUDown},
	}
	for _, f := range fields {
		var allSamples []float64
		for pathID, samples := range bwByPath(env.DB, id, f.field) {
			mbps := make([]float64, len(samples))
			for i, v := range samples {
				mbps[i] = v / 1e6
			}
			f.into[pathID] = stats.Summarize(mbps)
			allSamples = append(allSamples, mbps...)
		}
		*f.mean = stats.Mean(allSamples) * 1e6 // back to bps
	}

	var upBoxes, downBoxes []plot.Box
	pds, err := measure.PathsForServer(env.DB, id)
	if err != nil {
		return res, err
	}
	for _, pd := range pds {
		upBoxes = append(upBoxes,
			plot.Box{Label: pd.ID, Tag: "64B", Summary: res.Up64[pd.ID]},
			plot.Box{Label: pd.ID, Tag: "MTU", Summary: res.UpMTU[pd.ID]})
		downBoxes = append(downBoxes,
			plot.Box{Label: pd.ID, Tag: "64B", Summary: res.Down64[pd.ID]},
			plot.Box{Label: pd.ID, Tag: "MTU", Summary: res.DownMTU[pd.ID]})
	}
	title := fmt.Sprintf("%s — Achieved bandwidth per path to 19-ffaa:0:1303 (Germany), target %s",
		tag, fmtMbps(target))
	res.Rendered = plot.BoxPlot(title+" — upstream", "Mbps", upBoxes, 56) +
		plot.BoxPlot(title+" — downstream", "Mbps", downBoxes, 56)
	return res, nil
}

func fmtMbps(bps float64) string { return fmt.Sprintf("%.0fMbps", bps/1e6) }
