package experiments

import (
	"context"

	"fmt"
	"sort"
	"time"

	"github.com/upin/scionpath/internal/addr"
	"github.com/upin/scionpath/internal/measure"
	"github.com/upin/scionpath/internal/plot"
	"github.com/upin/scionpath/internal/simnet"
	"github.com/upin/scionpath/internal/topology"
)

// Fig9Result reproduces "Average packet loss percentage for each path of
// AWS US N. Virginia AS": most paths at 0 % loss, a few occasionally near
// 10 %, and a set of paths registering a complete 100 % loss whose shared
// nodes "are only those concentrated in the first half of the path" — here
// a congestion episode on the ETHZ transit that one of the two up segments
// crosses.
type Fig9Result struct {
	ServerID int
	// Series carries the per-path loss measurements of the dot plot.
	Series []plot.DotSeries
	// FullLossPaths are the path ids whose every measurement was 100 %.
	FullLossPaths []string
	// SharedFirstHalf are the transit ASes common to all full-loss paths,
	// restricted to the first half of the path.
	SharedFirstHalf []addr.IA
	// OccasionalLossPaths saw intermediate loss (0 < loss < 100 on some
	// measurement).
	OccasionalLossPaths []string
	Rendered            string
}

// Fig9 collects paths to AWS N. Virginia, schedules a full-outage
// congestion episode on a shared first-half transit AS (ETHZ) spanning the
// campaign plus brief mild congestion on the AWS core, then measures loss
// on every path.
func Fig9(ctx context.Context, env *Env, scale Scale) (Fig9Result, error) {
	id, err := env.ServerID(topology.AWSVirginia)
	if err != nil {
		return Fig9Result{}, err
	}
	// Collect first so the campaign length is known for episode planning.
	if _, err := measure.CollectPaths(ctx, env.DB, env.Daemon, measure.CollectOpts{}); err != nil {
		return Fig9Result{}, err
	}
	pds, err := measure.PathsForServer(env.DB, id)
	if err != nil {
		return Fig9Result{}, err
	}

	perPath := time.Duration(scale.PingCount-1) * scale.PingInterval
	campaign := time.Duration(scale.Iterations*len(pds))*perPath + time.Second

	// The outage: a node in the first half of several paths is congested
	// for the whole campaign (§6.3's hypothesis, made concrete).
	ethz := addr.MustParseIA("17-ffaa:0:1102")
	if err := env.Net.ScheduleEpisode(simnet.Episode{
		IA: ethz, Start: env.Net.Now(), End: env.Net.Now() + campaign, DropProb: 1,
	}); err != nil {
		return Fig9Result{}, err
	}
	// Brief mild congestion on the AWS core: "a few instances occasionally
	// reaching almost the 10% mark".
	for i := 0; i < scale.Iterations; i++ {
		start := env.Net.Now() + time.Duration(i*len(pds))*perPath + perPath/2
		if err := env.Net.ScheduleEpisode(simnet.Episode{
			IA: topology.AWSFrankfurt, Start: start, End: start + 2*perPath, DropProb: 0.08,
		}); err != nil {
			return Fig9Result{}, err
		}
	}

	if _, err := env.Suite.Run(ctx, measure.RunOpts{
		Iterations:    scale.Iterations,
		Skip:          true,
		ServerIDs:     []int{id},
		PingCount:     scale.PingCount,
		PingInterval:  scale.PingInterval,
		SkipBandwidth: true,
	}); err != nil {
		return Fig9Result{}, err
	}

	loss := lossByPath(env.DB, id)
	res := Fig9Result{ServerID: id}
	shared := map[addr.IA]int{}
	var fullLossSeqs []measure.PathDoc
	for _, pd := range pds {
		samples := loss[pd.ID]
		res.Series = append(res.Series, plot.DotSeries{Label: pd.ID, Values: samples})
		full := len(samples) > 0
		occasional := false
		for _, v := range samples {
			if v < 100 {
				full = false
			}
			if v > 0 && v < 100 {
				occasional = true
			}
		}
		if full {
			res.FullLossPaths = append(res.FullLossPaths, pd.ID)
			fullLossSeqs = append(fullLossSeqs, pd)
		} else if occasional {
			res.OccasionalLossPaths = append(res.OccasionalLossPaths, pd.ID)
		}
	}
	// Shared transit analysis over the full-loss paths: count AS occurrence
	// in the first half of each path.
	for _, pd := range fullLossSeqs {
		half := (len(pd.Sequence) + 1) / 2
		for _, pred := range pd.Sequence[:half] {
			shared[addr.IA{ISD: pred.ISD, AS: pred.AS}]++
		}
	}
	for ia, n := range shared {
		if n == len(fullLossSeqs) && len(fullLossSeqs) > 0 {
			res.SharedFirstHalf = append(res.SharedFirstHalf, ia)
		}
	}
	sort.Slice(res.SharedFirstHalf, func(i, j int) bool {
		return res.SharedFirstHalf[i].String() < res.SharedFirstHalf[j].String()
	})

	res.Rendered = plot.LossDotPlot(
		fmt.Sprintf("Fig 9 — Packet loss per path to 16-ffaa:0:1003 (AWS N. Virginia); full-loss paths: %v", res.FullLossPaths),
		res.Series, 56)
	return res, nil
}
