package experiments

import (
	"context"
	"sort"
	"strings"
	"testing"

	"github.com/upin/scionpath/internal/stats"
	"github.com/upin/scionpath/internal/topology"
)

func env(t testing.TB, seed int64) *Env {
	t.Helper()
	e, err := NewEnv(seed)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestFig4Shape(t *testing.T) {
	res, err := Fig4(env(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 21 reachable destinations (20 distinct ASes here), average
	// path length 5.66 hops, ~70% within 6 hops.
	if res.Reachable < 19 {
		t.Errorf("reachable ASes %d", res.Reachable)
	}
	if res.AvgMinHops < 5.0 || res.AvgMinHops > 6.5 {
		t.Errorf("avg min hops %.2f outside the paper's ballpark (5.66)", res.AvgMinHops)
	}
	if res.FracWithin6 < 0.55 || res.FracWithin6 > 0.9 {
		t.Errorf("fraction within 6 hops %.2f outside the paper's ballpark (~0.70)", res.FracWithin6)
	}
	if !strings.Contains(res.Rendered, "hops") || !strings.Contains(res.Rendered, "█") {
		t.Errorf("rendered figure incomplete:\n%s", res.Rendered)
	}
}

func TestFig5ThreeLatencyLayers(t *testing.T) {
	res, err := Fig5(context.Background(), env(t, 2), Fast)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Boxes) < 6 {
		t.Fatalf("only %d paths measured", len(res.Boxes))
	}
	eu, ohio, sg := res.LayerSummary[LayerEurope], res.LayerSummary[LayerOhio], res.LayerSummary[LayerSingapore]
	if eu.N == 0 || ohio.N == 0 || sg.N == 0 {
		t.Fatalf("missing layers: eu=%d ohio=%d sg=%d", eu.N, ohio.N, sg.N)
	}
	// "clear separation of latency values into three main layers": Europe
	// below Ohio below Singapore, with gaps.
	if !(eu.Mean < ohio.Mean && ohio.Mean < sg.Mean) {
		t.Errorf("layer means not ordered: eu=%.1f ohio=%.1f sg=%.1f", eu.Mean, ohio.Mean, sg.Mean)
	}
	if ohio.Mean < 2*eu.Mean {
		t.Errorf("Ohio layer %.1f not clearly above Europe %.1f", ohio.Mean, eu.Mean)
	}
	if sg.Mean < 1.5*ohio.Mean {
		t.Errorf("Singapore layer %.1f not clearly above Ohio %.1f", sg.Mean, ohio.Mean)
	}
	// Paths come in exactly the 6-hop and 7-hop groups.
	for id, hops := range res.HopsOf {
		if hops != 6 && hops != 7 {
			t.Errorf("path %s has %d hops; collection filter should keep 6-7 only", id, hops)
		}
	}
	// Long-distance paths all sit in the 7-hop group with second-last hop
	// at the transit (checked structurally in pathmgr tests); here verify
	// the layers map onto hop groups: every Ohio/Singapore path has 7 hops.
	for id, layer := range res.LayerOf {
		if layer != LayerEurope && res.HopsOf[id] != 7 {
			t.Errorf("long-distance path %s in %d-hop group", id, res.HopsOf[id])
		}
	}
}

func TestFig6ExclusionShrinksVariance(t *testing.T) {
	res, err := Fig6(context.Background(), env(t, 3), Fast)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.All) < 2 {
		t.Fatalf("only %d groups", len(res.All))
	}
	// The {16,17}/7h group contains the long-distance paths: after
	// exclusion its spread and mean must drop sharply.
	key := GroupKey([]string{"16", "17"}, 7)
	before, okB := res.All[key]
	after, okA := res.Excluded[key]
	if !okB || !okA {
		t.Fatalf("group %q missing: before=%v after=%v (groups: %v)", key, okB, okA, keys(res.All))
	}
	if !(after.Mean < before.Mean/2) {
		t.Errorf("exclusion did not drop the mean: %.1f -> %.1f", before.Mean, after.Mean)
	}
	if !(after.IQR() < before.IQR()) {
		t.Errorf("exclusion did not shrink the IQR: %.1f -> %.1f", before.IQR(), after.IQR())
	}
	// After exclusion the 6-hop and 7-hop same-ISD groups are comparable
	// ("comparable values", §6.1): within 2x of each other.
	key6 := GroupKey([]string{"16", "17"}, 6)
	if g6, ok := res.Excluded[key6]; ok {
		if after.Mean > 2*g6.Mean {
			t.Errorf("excluded 7-hop mean %.1f not comparable to 6-hop %.1f", after.Mean, g6.Mean)
		}
	}
	if !strings.Contains(res.Rendered, "Fig 6 (left)") || !strings.Contains(res.Rendered, "Fig 6 (right)") {
		t.Error("rendered output missing panels")
	}
}

func TestFig7SmallPacketsLose(t *testing.T) {
	res, err := Fig7(context.Background(), env(t, 4), Fast)
	if err != nil {
		t.Fatal(err)
	}
	// Fig 7 orderings at 12 Mbps: MTU beats 64B in both directions.
	if !(res.Mean64Up < res.MeanMTUUp) {
		t.Errorf("upstream: 64B %.1f Mbps !< MTU %.1f Mbps", res.Mean64Up/1e6, res.MeanMTUUp/1e6)
	}
	if !(res.Mean64Down < res.MeanMTUDown) {
		t.Errorf("downstream: 64B %.1f Mbps !< MTU %.1f Mbps", res.Mean64Down/1e6, res.MeanMTUDown/1e6)
	}
	// MTU flows run near the 12 Mbps target.
	if res.MeanMTUDown < 9e6 || res.MeanMTUDown > 12.2e6 {
		t.Errorf("MTU downstream %.1f Mbps far from the 12 Mbps target", res.MeanMTUDown/1e6)
	}
	// Upstream below downstream (asymmetry).
	if !(res.Mean64Up < res.Mean64Down) {
		t.Errorf("64B upstream %.1f !< downstream %.1f", res.Mean64Up/1e6, res.Mean64Down/1e6)
	}
}

func TestFig8TrendReverses(t *testing.T) {
	res, err := Fig8(context.Background(), env(t, 5), Fast)
	if err != nil {
		t.Fatal(err)
	}
	// "This trend reverses when we require a higher bandwidth of 150Mbps":
	// 64B beats MTU in both directions.
	if !(res.Mean64Up > res.MeanMTUUp) {
		t.Errorf("upstream: 64B %.1f Mbps !> MTU %.1f Mbps", res.Mean64Up/1e6, res.MeanMTUUp/1e6)
	}
	if !(res.Mean64Down > res.MeanMTUDown) {
		t.Errorf("downstream: 64B %.1f Mbps !> MTU %.1f Mbps", res.Mean64Down/1e6, res.MeanMTUDown/1e6)
	}
	// Nobody gets close to 150 Mbps — the network "may not have
	// sufficient capacity".
	for _, v := range []float64{res.Mean64Up, res.Mean64Down, res.MeanMTUUp, res.MeanMTUDown} {
		if v > 75e6 {
			t.Errorf("achieved %.1f Mbps at a 150 Mbps target: bottleneck missing", v/1e6)
		}
	}
}

func TestFig9LossPattern(t *testing.T) {
	res, err := Fig9(context.Background(), env(t, 6), Fast)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) < 6 {
		t.Fatalf("only %d paths in the dot plot", len(res.Series))
	}
	// A subset of paths registers complete 100% loss.
	if len(res.FullLossPaths) < 2 {
		t.Fatalf("only %d full-loss paths", len(res.FullLossPaths))
	}
	if len(res.FullLossPaths) >= len(res.Series) {
		t.Fatal("every path lost everything; episode should hit a subset")
	}
	// Their shared nodes sit in the first half of the path and include the
	// congested transit.
	foundETHZ := false
	for _, ia := range res.SharedFirstHalf {
		if ia.String() == "17-ffaa:0:1102" {
			foundETHZ = true
		}
	}
	if !foundETHZ {
		t.Errorf("shared first-half ASes %v do not include the congested transit", res.SharedFirstHalf)
	}
	// The majority of paths exhibits ~0% loss; a few see intermediate loss.
	zeroish := 0
	for _, s := range res.Series {
		allZero := true
		for _, v := range s.Values {
			if v > 15 {
				allZero = false
			}
		}
		if allZero && len(s.Values) > 0 {
			zeroish++
		}
	}
	if zeroish == 0 {
		t.Error("no low-loss paths at all")
	}
	if !strings.Contains(res.Rendered, "Fig 9") {
		t.Error("rendered figure missing")
	}
}

func TestTableReachability(t *testing.T) {
	tab, err := TableReachability(env(t, 7))
	if err != nil {
		t.Fatal(err)
	}
	// Paper: exactly 21 testable servers.
	if tab.ReachableServers != 21 {
		t.Errorf("reachable servers %d, want 21", tab.ReachableServers)
	}
	if !strings.Contains(tab.Rendered, "5.66") {
		t.Error("rendered table missing the paper reference value")
	}
}

func TestTableFilter(t *testing.T) {
	tab, err := TableFilter(context.Background(), env(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Retained == 0 || tab.Retained > tab.Discovered {
		t.Errorf("retained %d of %d", tab.Retained, tab.Discovered)
	}
	if len(tab.PerServer) != 21 {
		t.Errorf("per-server rows %d", len(tab.PerServer))
	}
}

func TestFocusServerIDs(t *testing.T) {
	e := env(t, 9)
	ids, err := FocusServerIDs(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 5 {
		t.Fatalf("%d focus ids, want 5", len(ids))
	}
	seen := map[int]bool{}
	for _, id := range ids {
		if id < 1 || id > 21 || seen[id] {
			t.Errorf("bad focus id %d", id)
		}
		seen[id] = true
	}
}

func TestEnvServerIDUnknown(t *testing.T) {
	e := env(t, 10)
	if _, err := e.ServerID(topology.MyAS); err == nil {
		t.Error("ServerID for a serverless AS succeeded")
	}
}

func keys(m map[string]stats.Summary) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
