package experiments

import (
	"context"

	"fmt"

	"github.com/upin/scionpath/internal/addr"
	"github.com/upin/scionpath/internal/geo"
	"github.com/upin/scionpath/internal/measure"
	"github.com/upin/scionpath/internal/stats"
	"github.com/upin/scionpath/internal/topology"
)

// CorrelationResult quantifies the paper's central §6.1 claim: latency is
// driven by the geographic length of the path, "rather than ... the number
// of hops or the ISDs traversed". It correlates measured RTTs against (a)
// hop count and (b) the summed great-circle distance of the path, over
// every measured path to the focus destinations.
type CorrelationResult struct {
	Samples int
	// HopsVsLatency and DistanceVsLatency are Pearson coefficients.
	HopsVsLatency     float64
	DistanceVsLatency float64
	Rendered          string
}

// Correlation measures several destinations (latency only) and computes
// both coefficients.
func Correlation(ctx context.Context, env *Env, scale Scale, dests []addr.IA) (CorrelationResult, error) {
	if len(dests) == 0 {
		dests = []addr.IA{topology.AWSIreland, topology.AWSVirginia, topology.KoreaUniv}
	}
	var ids []int
	for _, ia := range dests {
		id, err := env.ServerID(ia)
		if err != nil {
			return CorrelationResult{}, err
		}
		ids = append(ids, id)
	}
	if _, err := env.Suite.Run(ctx, scale.runOpts(ids, true, 0)); err != nil {
		return CorrelationResult{}, err
	}

	var hops, dist, lat []float64
	for _, id := range ids {
		pds, err := measure.PathsForServer(env.DB, id)
		if err != nil {
			return CorrelationResult{}, err
		}
		distOf := map[string]float64{}
		hopsOf := map[string]float64{}
		for _, pd := range pds {
			distOf[pd.ID] = pathDistanceKm(env, pd)
			hopsOf[pd.ID] = float64(pd.Hops)
		}
		for pathID, samples := range latencyByPath(env.DB, id) {
			for _, v := range samples {
				hops = append(hops, hopsOf[pathID])
				dist = append(dist, distOf[pathID])
				lat = append(lat, v)
			}
		}
	}
	res := CorrelationResult{
		Samples:           len(lat),
		HopsVsLatency:     stats.Pearson(hops, lat),
		DistanceVsLatency: stats.Pearson(dist, lat),
	}
	res.Rendered = fmt.Sprintf(
		"Correlation with measured RTT over %d samples:\n"+
			"  hop count          r = %+.3f\n"+
			"  path distance (km) r = %+.3f\n"+
			"(§6.1: distance, not hop count, drives latency)\n",
		res.Samples, res.HopsVsLatency, res.DistanceVsLatency)
	return res, nil
}

// pathDistanceKm sums the great-circle lengths of the stored path's links.
func pathDistanceKm(env *Env, pd measure.PathDoc) float64 {
	var total float64
	for i := 0; i+1 < len(pd.Sequence); i++ {
		a := env.Topo.AS(addr.IA{ISD: pd.Sequence[i].ISD, AS: pd.Sequence[i].AS})
		b := env.Topo.AS(addr.IA{ISD: pd.Sequence[i+1].ISD, AS: pd.Sequence[i+1].AS})
		if a == nil || b == nil {
			continue
		}
		total += geo.DistanceKm(a.Site.Coords, b.Site.Coords)
	}
	return total
}
