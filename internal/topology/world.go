// SCIONLab-like world topology. This is the synthetic stand-in for the live
// SCIONLab testbed of the paper (Fig 1): 35 ASes across ISDs, with core ASes,
// attachment points, and the experimenters' own AS (MY_AS) attached to
// ETHZ-AP. Entities named in the paper keep their identifiers:
//
//	16-ffaa:0:1002  AWS Ireland            (Fig 5/6 destination)
//	16-ffaa:0:1003  AWS US N. Virginia     (Fig 9 destination)
//	16-ffaa:0:1004  AWS US Ohio            (jittery long-distance transit, §6.1)
//	16-ffaa:0:1007  AWS Singapore          (jittery long-distance transit, §6.1)
//	19-ffaa:0:1303  Magdeburg AP, Germany  (Fig 7/8 destination)
//	20-ffaa:0:1404  Korea University       (Korea destination)
//	17-ffaa:0:1107  ETHZ-AP                (our attachment point, §3.2)
package topology

import (
	"time"

	"github.com/upin/scionpath/internal/addr"
	"github.com/upin/scionpath/internal/geo"
)

// Well-known identifiers used across the repository.
var (
	MyAS         = addr.MustParseIA("17-ffaa:1:1")
	ETHZAP       = addr.MustParseIA("17-ffaa:0:1107")
	AWSFrankfurt = addr.MustParseIA("16-ffaa:0:1001")
	AWSIreland   = addr.MustParseIA("16-ffaa:0:1002")
	AWSVirginia  = addr.MustParseIA("16-ffaa:0:1003")
	AWSOhio      = addr.MustParseIA("16-ffaa:0:1004")
	AWSOregon    = addr.MustParseIA("16-ffaa:0:1005")
	AWSTokyo     = addr.MustParseIA("16-ffaa:0:1006")
	AWSSingapore = addr.MustParseIA("16-ffaa:0:1007")
	MagdeburgAP  = addr.MustParseIA("19-ffaa:0:1303")
	KoreaUniv    = addr.MustParseIA("20-ffaa:0:1404")
)

// FocusDestinations is the 5-destination subset the paper analyses in depth
// (§6): Germany, Ireland, North Virginia, Singapore and Korea.
func FocusDestinations() []addr.IA {
	return []addr.IA{MagdeburgAP, AWSIreland, AWSVirginia, AWSSingapore, KoreaUniv}
}

// link capacity presets (bits per second).
const (
	backbone  = 1e9  // core and research backbone links
	awsShare  = 60e6 // usable per-flow share on AWS inter-region links
	awsAccess = 45e6 // usable share on AWS down-segments (region access)
	apDown    = 55e6 // attachment point -> user AS
	apUp      = 22e6 // user AS -> attachment point (asymmetric, §6.2)
	campus    = 90e6 // university campus links
)

// DefaultWorld builds the SCIONLab-like evaluation topology: 35 ASes plus
// MY_AS, organised exactly as described in the paper's §3.1 and carrying the
// physical attributes (geography, capacity, jitter) that drive its figures.
func DefaultWorld() *Topology {
	t := New()

	type asDef struct {
		ia       string
		name     string
		typ      ASType
		site     geo.Site
		operator string
		jitter   time.Duration
		servers  int
	}
	defs := []asDef{
		// ISD 16 — AWS (7 ASes).
		{"16-ffaa:0:1001", "AWS Frankfurt (core)", Core, geo.Frankfurt, "Amazon", 200 * time.Microsecond, 0},
		{"16-ffaa:0:1002", "AWS Ireland", NonCore, geo.Dublin, "Amazon", 300 * time.Microsecond, 1},
		{"16-ffaa:0:1003", "AWS US N. Virginia", NonCore, geo.Ashburn, "Amazon", 300 * time.Microsecond, 1},
		// The paper singles out 16-ffaa:0:1004 and 16-ffaa:0:1007 as
		// introducing "a wide jitter other than high latency peeks" (§6.1).
		{"16-ffaa:0:1004", "AWS US Ohio", NonCore, geo.Columbus, "Amazon", 6 * time.Millisecond, 0},
		{"16-ffaa:0:1005", "AWS US Oregon", NonCore, geo.Oregon, "Amazon", 400 * time.Microsecond, 1},
		{"16-ffaa:0:1006", "AWS Tokyo", NonCore, geo.Tokyo, "Amazon", 400 * time.Microsecond, 1},
		{"16-ffaa:0:1007", "AWS Singapore", NonCore, geo.Singapore, "Amazon", 8 * time.Millisecond, 1},
		{"16-ffaa:0:1008", "AWS Paris", NonCore, geo.Paris, "Amazon", 400 * time.Microsecond, 0},

		// ISD 17 — Switzerland (5 ASes + MY_AS).
		{"17-ffaa:0:1101", "SCIONLab Core Zurich", Core, geo.Zurich, "ETH Zurich", 100 * time.Microsecond, 0},
		{"17-ffaa:0:1102", "ETHZ", NonCore, geo.Zurich, "ETH Zurich", 150 * time.Microsecond, 1},
		{"17-ffaa:0:1107", "ETHZ-AP", AttachmentPoint, geo.Zurich, "ETH Zurich", 150 * time.Microsecond, 0},
		{"17-ffaa:0:1108", "SWITCH", NonCore, geo.Geneva, "SWITCH", 200 * time.Microsecond, 1},
		{"17-ffaa:0:1110", "Anapaya", NonCore, geo.Bern, "Anapaya", 200 * time.Microsecond, 1},

		// ISD 18 — North America (4 ASes).
		{"18-ffaa:0:1201", "CMU (core)", Core, geo.NewYork, "CMU", 200 * time.Microsecond, 0},
		{"18-ffaa:0:1202", "CMU AP", AttachmentPoint, geo.NewYork, "CMU", 250 * time.Microsecond, 1},
		{"18-ffaa:0:1203", "Univ. Toronto", NonCore, geo.Toronto, "UofT", 250 * time.Microsecond, 1},
		{"18-ffaa:0:1204", "UCLA", NonCore, geo.LosAngeles, "UCLA", 300 * time.Microsecond, 1},

		// ISD 19 — Europe (7 ASes).
		{"19-ffaa:0:1301", "Magdeburg (core)", Core, geo.Magdeburg, "OVGU", 150 * time.Microsecond, 0},
		{"19-ffaa:0:1302", "GEANT", AttachmentPoint, geo.Amsterdam, "GEANT", 200 * time.Microsecond, 1},
		{"19-ffaa:0:1303", "Magdeburg AP", AttachmentPoint, geo.Magdeburg, "OVGU", 200 * time.Microsecond, 2},
		{"19-ffaa:0:1304", "FU Berlin", NonCore, geo.Frankfurt, "FU Berlin", 250 * time.Microsecond, 0},
		{"19-ffaa:0:1305", "TU Darmstadt", NonCore, geo.Darmstadt, "TU Darmstadt", 250 * time.Microsecond, 1},
		{"19-ffaa:0:1306", "KTH Stockholm", NonCore, geo.Stockholm, "KTH", 250 * time.Microsecond, 1},
		{"19-ffaa:0:1307", "CESNET Prague", NonCore, geo.Prague, "CESNET", 250 * time.Microsecond, 1},

		// ISD 20 — Korea (3 ASes).
		{"20-ffaa:0:1401", "KISTI Daejeon (core)", Core, geo.Daejeon, "KISTI", 200 * time.Microsecond, 0},
		{"20-ffaa:0:1402", "KAIST AP", AttachmentPoint, geo.Daejeon, "KAIST", 250 * time.Microsecond, 1},
		{"20-ffaa:0:1404", "Korea University", NonCore, geo.Seoul, "Korea Univ", 250 * time.Microsecond, 1},

		// ISD 21 — Japan (2 ASes).
		{"21-ffaa:0:1501", "WIDE Tokyo (core)", Core, geo.Tokyo, "WIDE", 200 * time.Microsecond, 0},
		{"21-ffaa:0:1502", "Keio University", NonCore, geo.Tokyo, "Keio", 250 * time.Microsecond, 1},

		// ISD 22 — Taiwan (2 ASes).
		{"22-ffaa:0:1601", "NTU Taipei (core)", Core, geo.Taipei, "NTU", 200 * time.Microsecond, 0},
		{"22-ffaa:0:1602", "Academia Sinica", NonCore, geo.Taipei, "Academia Sinica", 250 * time.Microsecond, 0},

		// ISD 23 — Singapore (2 ASes).
		{"23-ffaa:0:1701", "NUS (core)", Core, geo.Singapore, "NUS", 200 * time.Microsecond, 0},
		{"23-ffaa:0:1702", "SingAREN", NonCore, geo.Singapore, "SingAREN", 250 * time.Microsecond, 1},

		// ISD 24 — Australia (1 AS).
		{"24-ffaa:0:1801", "AARNet Sydney (core)", Core, geo.Sydney, "AARNet", 200 * time.Microsecond, 0},

		// ISD 25 — India (1 AS).
		{"25-ffaa:0:1901", "IISc Bangalore (core)", Core, geo.Bangalore, "IISc", 200 * time.Microsecond, 0},

		// The experimenters' AS, attached to ETHZ-AP (§3.2).
		{"17-ffaa:1:1", "MY_AS", UserAS, geo.Zurich, "UPIN", 100 * time.Microsecond, 0},
	}
	for _, d := range defs {
		t.MustAddAS(&AS{
			IA:          addr.MustParseIA(d.ia),
			Name:        d.name,
			Type:        d.typ,
			Site:        d.site,
			Operator:    d.operator,
			Processing:  120 * time.Microsecond,
			JitterScale: d.jitter,
			NumServers:  d.servers,
		})
	}

	ia := addr.MustParseIA
	core := func(a, b string, cap float64) {
		t.MustConnect(CoreLink, ia(a), ia(b), LinkSpec{CapacityAtoB: cap, CapacityBtoA: cap})
	}
	child := func(parent, kid string, down, up float64) {
		t.MustConnect(ParentChild, ia(parent), ia(kid), LinkSpec{CapacityAtoB: down, CapacityBtoA: up})
	}

	// Core mesh.
	core("17-ffaa:0:1101", "19-ffaa:0:1301", backbone) // Zurich–Magdeburg
	core("17-ffaa:0:1101", "16-ffaa:0:1001", backbone) // Zurich–AWS Frankfurt
	core("19-ffaa:0:1301", "16-ffaa:0:1001", backbone) // Magdeburg–AWS Frankfurt
	core("17-ffaa:0:1101", "18-ffaa:0:1201", backbone) // Zurich–CMU
	core("16-ffaa:0:1001", "18-ffaa:0:1201", backbone) // AWS–CMU
	core("17-ffaa:0:1101", "20-ffaa:0:1401", backbone) // Zurich–KISTI (EU–KR research link)
	core("18-ffaa:0:1201", "21-ffaa:0:1501", backbone) // CMU–WIDE (transpacific)
	core("20-ffaa:0:1401", "21-ffaa:0:1501", backbone) // KISTI–WIDE
	core("21-ffaa:0:1501", "22-ffaa:0:1601", backbone) // WIDE–NTU
	core("22-ffaa:0:1601", "23-ffaa:0:1701", backbone) // NTU–NUS
	core("16-ffaa:0:1001", "23-ffaa:0:1701", awsShare) // AWS Frankfurt–NUS (via AWS SG presence)
	core("23-ffaa:0:1701", "24-ffaa:0:1801", backbone) // NUS–AARNet
	core("23-ffaa:0:1701", "25-ffaa:0:1901", backbone) // NUS–IISc

	// ISD 16: AWS regional down-structure. Cross parent-child links create
	// the alternative down-segments the paper observes: Ireland is reachable
	// directly from the Frankfurt core or via the long-distance Ohio and
	// Singapore transits (Fig 5's three latency layers).
	child("16-ffaa:0:1001", "16-ffaa:0:1002", awsAccess, awsAccess)
	child("16-ffaa:0:1001", "16-ffaa:0:1003", awsAccess, awsAccess)
	child("16-ffaa:0:1001", "16-ffaa:0:1004", awsShare, awsShare)
	child("16-ffaa:0:1001", "16-ffaa:0:1005", awsShare, awsShare)
	child("16-ffaa:0:1001", "16-ffaa:0:1006", awsShare, awsShare)
	child("16-ffaa:0:1001", "16-ffaa:0:1007", awsShare, awsShare)
	child("16-ffaa:0:1004", "16-ffaa:0:1002", awsShare, awsShare) // Ohio -> Ireland
	child("16-ffaa:0:1007", "16-ffaa:0:1002", awsShare, awsShare) // Singapore -> Ireland
	child("16-ffaa:0:1004", "16-ffaa:0:1003", awsShare, awsShare) // Ohio -> N. Virginia
	child("16-ffaa:0:1005", "16-ffaa:0:1003", awsShare, awsShare) // Oregon -> N. Virginia
	child("16-ffaa:0:1006", "16-ffaa:0:1007", awsShare, awsShare) // Tokyo -> Singapore
	child("16-ffaa:0:1001", "16-ffaa:0:1008", awsShare, awsShare)
	child("16-ffaa:0:1008", "16-ffaa:0:1002", awsShare, awsShare) // Paris -> Ireland (EU transit)

	// ISD 17: the AP hangs off both ETHZ and SWITCH, giving MY_AS two up
	// segments; MY_AS itself sits behind an asymmetric access link.
	child("17-ffaa:0:1101", "17-ffaa:0:1102", campus, campus)
	child("17-ffaa:0:1101", "17-ffaa:0:1108", campus, campus)
	child("17-ffaa:0:1102", "17-ffaa:0:1107", campus, campus)
	child("17-ffaa:0:1108", "17-ffaa:0:1107", campus, campus)
	child("17-ffaa:0:1102", "17-ffaa:0:1110", campus, campus)
	child("17-ffaa:0:1107", "17-ffaa:1:1", apDown, apUp)

	// ISD 18.
	child("18-ffaa:0:1201", "18-ffaa:0:1202", campus, campus)
	child("18-ffaa:0:1201", "18-ffaa:0:1203", campus, campus)
	child("18-ffaa:0:1203", "18-ffaa:0:1204", campus, campus)

	// ISD 19.
	child("19-ffaa:0:1301", "19-ffaa:0:1302", campus, campus)
	child("19-ffaa:0:1301", "19-ffaa:0:1303", awsAccess, 45e6) // Magdeburg AP access
	child("19-ffaa:0:1301", "19-ffaa:0:1304", campus, campus)
	child("19-ffaa:0:1301", "19-ffaa:0:1305", campus, campus)
	child("19-ffaa:0:1302", "19-ffaa:0:1303", awsAccess, 45e6) // second parent for the AP
	child("19-ffaa:0:1302", "19-ffaa:0:1306", campus, campus)
	child("19-ffaa:0:1302", "19-ffaa:0:1307", campus, campus)
	child("19-ffaa:0:1304", "19-ffaa:0:1305", campus, campus)

	// ISD 20.
	child("20-ffaa:0:1401", "20-ffaa:0:1402", campus, campus)
	child("20-ffaa:0:1402", "20-ffaa:0:1404", campus, campus)

	// ISD 21.
	child("21-ffaa:0:1501", "21-ffaa:0:1502", campus, campus)

	// ISD 22.
	child("22-ffaa:0:1601", "22-ffaa:0:1602", campus, campus)

	// ISD 23.
	child("23-ffaa:0:1701", "23-ffaa:0:1702", campus, campus)

	return t
}
