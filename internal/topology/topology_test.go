package topology

import (
	"strings"
	"testing"
	"time"

	"github.com/upin/scionpath/internal/addr"
	"github.com/upin/scionpath/internal/geo"
)

func testAS(ia string, typ ASType) *AS {
	return &AS{
		IA:   addr.MustParseIA(ia),
		Name: ia,
		Type: typ,
		Site: geo.Zurich,
	}
}

func TestAddASDuplicate(t *testing.T) {
	topo := New()
	if err := topo.AddAS(testAS("1-ff00:0:1", Core)); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddAS(testAS("1-ff00:0:1", Core)); err == nil {
		t.Error("duplicate AS accepted")
	}
}

func TestAddASInvalid(t *testing.T) {
	topo := New()
	if err := topo.AddAS(nil); err == nil {
		t.Error("nil AS accepted")
	}
	if err := topo.AddAS(&AS{Name: "zero"}); err == nil {
		t.Error("zero IA accepted")
	}
	bad := testAS("1-ff00:0:1", Core)
	bad.Site.Coords = geo.Coordinates{Lat: 999}
	if err := topo.AddAS(bad); err == nil {
		t.Error("invalid coords accepted")
	}
}

func TestConnectValidation(t *testing.T) {
	topo := New()
	topo.MustAddAS(testAS("1-ff00:0:1", Core))
	topo.MustAddAS(testAS("1-ff00:0:2", NonCore))
	topo.MustAddAS(testAS("1-ff00:0:3", Core))

	if _, err := topo.Connect(CoreLink, addr.MustParseIA("1-ff00:0:1"), addr.MustParseIA("1-ff00:0:2"), LinkSpec{}); err == nil {
		t.Error("core link to non-core accepted")
	}
	if _, err := topo.Connect(ParentChild, addr.MustParseIA("1-ff00:0:1"), addr.MustParseIA("1-ff00:0:3"), LinkSpec{}); err == nil {
		t.Error("core AS as child accepted")
	}
	if _, err := topo.Connect(CoreLink, addr.MustParseIA("1-ff00:0:1"), addr.MustParseIA("1-ff00:0:1"), LinkSpec{}); err == nil {
		t.Error("self link accepted")
	}
	if _, err := topo.Connect(CoreLink, addr.MustParseIA("1-ff00:0:1"), addr.MustParseIA("9-ff00:0:9"), LinkSpec{}); err == nil {
		t.Error("unknown endpoint accepted")
	}
	if _, err := topo.Connect(ParentChild, addr.MustParseIA("1-ff00:0:1"), addr.MustParseIA("1-ff00:0:2"), LinkSpec{BaseLoss: 1.5}); err == nil {
		t.Error("out-of-range loss accepted")
	}
}

func TestConnectAssignsDistinctInterfaces(t *testing.T) {
	topo := New()
	topo.MustAddAS(testAS("1-ff00:0:1", Core))
	topo.MustAddAS(testAS("1-ff00:0:2", NonCore))
	topo.MustAddAS(testAS("1-ff00:0:3", NonCore))
	a := addr.MustParseIA("1-ff00:0:1")
	l1 := topo.MustConnect(ParentChild, a, addr.MustParseIA("1-ff00:0:2"), LinkSpec{})
	l2 := topo.MustConnect(ParentChild, a, addr.MustParseIA("1-ff00:0:3"), LinkSpec{})
	if l1.AIf == l2.AIf {
		t.Errorf("interface ids not distinct: %d vs %d", l1.AIf, l2.AIf)
	}
	if l1.AIf == 0 || l1.BIf == 0 {
		t.Error("interface id 0 assigned (reserved for wildcard)")
	}
}

func TestConnectDefaults(t *testing.T) {
	topo := New()
	topo.MustAddAS(testAS("1-ff00:0:1", Core))
	topo.MustAddAS(testAS("1-ff00:0:2", NonCore))
	l := topo.MustConnect(ParentChild, addr.MustParseIA("1-ff00:0:1"), addr.MustParseIA("1-ff00:0:2"), LinkSpec{})
	if l.CapacityAtoB != DefaultCapacity || l.CapacityBtoA != DefaultCapacity {
		t.Errorf("default capacity not applied: %v/%v", l.CapacityAtoB, l.CapacityBtoA)
	}
	if l.QueueBytes != DefaultQueueBytes || l.MTU != DefaultMTU {
		t.Errorf("defaults not applied: queue=%d mtu=%d", l.QueueBytes, l.MTU)
	}
}

func TestLinkBetween(t *testing.T) {
	topo := New()
	topo.MustAddAS(testAS("1-ff00:0:1", Core))
	topo.MustAddAS(testAS("1-ff00:0:2", NonCore))
	a, b := addr.MustParseIA("1-ff00:0:1"), addr.MustParseIA("1-ff00:0:2")
	l := topo.MustConnect(ParentChild, a, b, LinkSpec{})
	if topo.LinkBetween(a, b) != l || topo.LinkBetween(b, a) != l {
		t.Error("LinkBetween did not find the link in both orientations")
	}
	if topo.LinkBetween(a, addr.MustParseIA("9-ff00:0:9")) != nil {
		t.Error("LinkBetween found a phantom link")
	}
}

func TestValidateDetectsProblems(t *testing.T) {
	// Empty topology.
	if err := New().Validate(); err == nil {
		t.Error("empty topology validated")
	}
	// ISD without core.
	topo := New()
	topo.MustAddAS(testAS("1-ff00:0:1", NonCore))
	if err := topo.Validate(); err == nil || !strings.Contains(err.Error(), "no core") {
		t.Errorf("want no-core error, got %v", err)
	}
	// Orphan non-core.
	topo2 := New()
	topo2.MustAddAS(testAS("1-ff00:0:1", Core))
	topo2.MustAddAS(testAS("1-ff00:0:2", NonCore))
	if err := topo2.Validate(); err == nil || !strings.Contains(err.Error(), "no parent") {
		t.Errorf("want orphan error, got %v", err)
	}
	// Disconnected graph.
	topo3 := New()
	topo3.MustAddAS(testAS("1-ff00:0:1", Core))
	topo3.MustAddAS(testAS("2-ff00:0:2", Core))
	if err := topo3.Validate(); err == nil || !strings.Contains(err.Error(), "not connected") {
		t.Errorf("want connectivity error, got %v", err)
	}
}

func TestASTypeString(t *testing.T) {
	for typ, want := range map[ASType]string{
		Core: "core", NonCore: "non-core", AttachmentPoint: "attachment-point",
		UserAS: "user", ASType(42): "ASType(42)",
	} {
		if got := typ.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(typ), got, want)
		}
	}
	if CoreLink.String() != "core" || ParentChild.String() != "parent-child" {
		t.Error("LinkType strings wrong")
	}
}

// --- DefaultWorld structural checks (mirrors §3.1/§6 facts) ---

func TestDefaultWorldValidates(t *testing.T) {
	w := DefaultWorld()
	if err := w.Validate(); err != nil {
		t.Fatalf("DefaultWorld invalid: %v", err)
	}
}

func TestDefaultWorldSize(t *testing.T) {
	w := DefaultWorld()
	// Paper: "The SCIONLAB network infrastructure is based on 35 ASes", plus
	// the experimenters' own AS.
	if got := len(w.ASes()); got != 36 {
		t.Errorf("world has %d ASes, want 36 (35 + MY_AS)", got)
	}
}

func TestDefaultWorldServers(t *testing.T) {
	w := DefaultWorld()
	servers := w.Servers()
	// Paper: 21 fully testable destinations.
	if len(servers) != 21 {
		t.Fatalf("world has %d servers, want 21", len(servers))
	}
	// The multi-server AS appears more than once with distinct addresses.
	count := map[addr.IA]int{}
	locals := map[string]bool{}
	for _, s := range servers {
		count[s.IA]++
		key := s.IA.String() + "," + s.Local
		if locals[key] {
			t.Errorf("duplicate server address %s", key)
		}
		locals[key] = true
	}
	if count[MagdeburgAP] != 2 {
		t.Errorf("Magdeburg AP houses %d servers, want 2", count[MagdeburgAP])
	}
}

func TestDefaultWorldNamedEntities(t *testing.T) {
	w := DefaultWorld()
	checks := []struct {
		ia      addr.IA
		typ     ASType
		country string
	}{
		{MyAS, UserAS, "Switzerland"},
		{ETHZAP, AttachmentPoint, "Switzerland"},
		{AWSIreland, NonCore, "Ireland"},
		{AWSVirginia, NonCore, "United States"},
		{AWSOhio, NonCore, "United States"},
		{AWSSingapore, NonCore, "Singapore"},
		{MagdeburgAP, AttachmentPoint, "Germany"},
		{KoreaUniv, NonCore, "South Korea"},
	}
	for _, c := range checks {
		as := w.AS(c.ia)
		if as == nil {
			t.Errorf("AS %s missing", c.ia)
			continue
		}
		if as.Type != c.typ {
			t.Errorf("AS %s type %v, want %v", c.ia, as.Type, c.typ)
		}
		if as.Site.Country != c.country {
			t.Errorf("AS %s country %q, want %q", c.ia, as.Site.Country, c.country)
		}
	}
}

func TestDefaultWorldJitteryTransits(t *testing.T) {
	w := DefaultWorld()
	// §6.1: ASes 16-ffaa:0:1007 and 16-ffaa:0:1004 introduce wide jitter.
	for _, ia := range []addr.IA{AWSOhio, AWSSingapore} {
		if w.AS(ia).JitterScale < 2*time.Millisecond {
			t.Errorf("AS %s jitter %v, want >= 2ms", ia, w.AS(ia).JitterScale)
		}
	}
	// Ordinary ASes stay well below.
	if w.AS(AWSIreland).JitterScale > time.Millisecond {
		t.Errorf("Ireland jitter %v unexpectedly high", w.AS(AWSIreland).JitterScale)
	}
}

func TestDefaultWorldAccessAsymmetry(t *testing.T) {
	w := DefaultWorld()
	l := w.LinkBetween(ETHZAP, MyAS)
	if l == nil {
		t.Fatal("MY_AS not attached to ETHZ-AP")
	}
	// A is the parent (AP); downstream (A->B) must exceed upstream (B->A),
	// reproducing "the internet's inherent asymmetry" (§6.2).
	if l.A != ETHZAP {
		t.Fatalf("attachment link parent is %s, want ETHZ-AP", l.A)
	}
	if l.CapacityAtoB <= l.CapacityBtoA {
		t.Errorf("access link not asymmetric: down=%v up=%v", l.CapacityAtoB, l.CapacityBtoA)
	}
}

func TestDefaultWorldFocusDestinations(t *testing.T) {
	w := DefaultWorld()
	countries := map[string]bool{}
	for _, ia := range FocusDestinations() {
		as := w.AS(ia)
		if as == nil {
			t.Fatalf("focus destination %s missing", ia)
		}
		if as.NumServers < 1 {
			t.Errorf("focus destination %s has no server", ia)
		}
		countries[as.Site.Country] = true
	}
	// Paper §6: Germany, Ireland, North Virginia (US), Singapore, Korea.
	for _, c := range []string{"Germany", "Ireland", "United States", "Singapore", "South Korea"} {
		if !countries[c] {
			t.Errorf("focus set misses country %s", c)
		}
	}
}

func TestDefaultWorldISDs(t *testing.T) {
	w := DefaultWorld()
	isds := w.ISDs()
	if len(isds) < 8 {
		t.Errorf("only %d ISDs, want a rich multi-ISD world", len(isds))
	}
	for _, isd := range isds {
		if len(w.CoreASes(isd)) == 0 {
			t.Errorf("ISD %d has no core", isd)
		}
	}
	if len(w.CoreASes(0)) < 8 {
		t.Errorf("want >= 8 core ASes world-wide, got %d", len(w.CoreASes(0)))
	}
}

func TestDelayUsesGeography(t *testing.T) {
	w := DefaultWorld()
	intra := w.LinkBetween(addr.MustParseIA("17-ffaa:0:1101"), addr.MustParseIA("17-ffaa:0:1102"))
	transo := w.LinkBetween(addr.MustParseIA("18-ffaa:0:1201"), addr.MustParseIA("21-ffaa:0:1501"))
	if intra == nil || transo == nil {
		t.Fatal("expected links missing")
	}
	if w.Delay(intra) >= w.Delay(transo) {
		t.Errorf("intra-city delay %v >= transpacific %v", w.Delay(intra), w.Delay(transo))
	}
	if w.Delay(transo) < 30*time.Millisecond {
		t.Errorf("transpacific delay %v implausibly low", w.Delay(transo))
	}
}
