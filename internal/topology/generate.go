package topology

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/upin/scionpath/internal/addr"
	"github.com/upin/scionpath/internal/geo"
)

// GenerateSpec parameterises random topology generation: experimenters use
// it to study how the system scales beyond the 35-AS SCIONLab world, up to
// the 10³–10⁴ AS range (e.g. 20 ISDs × (2 cores + 48 non-core) ≈ 1000 ASes,
// 25 × (4 + 196) ≈ 5000). The zero value of every field selects a default,
// so the legacy three-ISD/one-core shape still comes out of
// Generate(GenerateSpec{Seed: s}).
type GenerateSpec struct {
	Seed int64
	// ISDs is the number of isolation domains.
	ISDs int
	// CoresPerISD is the number of core ASes per ISD (default 1).
	CoresPerISD int
	// NonCorePerISD, when > 0, is the exact number of non-core ASes per
	// ISD. When 0, the count is uniform in [0, MaxNonCorePerISD] as in the
	// original generator.
	NonCorePerISD int
	// MaxNonCorePerISD bounds the random non-core count per ISD when
	// NonCorePerISD is 0 (the actual count is uniform in [0, max]).
	MaxNonCorePerISD int
	// MaxDepth caps how many parent-child levels sit below the cores
	// (default 4, which keeps every leaf within the default MaxDownLen
	// beaconing bound).
	MaxDepth int
	// MaxChildren caps the children a single AS may parent; 0 = unlimited.
	MaxChildren int
	// MultiParentProb is the probability a non-core AS gets a second
	// parent (creating path diversity).
	MultiParentProb float64
	// CoreDegree, when > 0, is the target mean degree of the core mesh:
	// beyond the connecting chain, extra random core links are added until
	// the mean degree reaches it. Overrides ExtraCoreLinks.
	CoreDegree float64
	// ExtraCoreLinks adds this many random core-mesh links beyond the
	// connecting chain (legacy knob; ignored when CoreDegree is set).
	ExtraCoreLinks int
	// Sites is the geographic catalogue ASes are placed on; defaults to
	// geo.AllSites(). Each ISD picks a random home site and draws member
	// placements biased toward it (see Locality).
	Sites []geo.Site
	// Locality in (0, 1] biases AS placement toward the ISD's home site:
	// each draw walks the catalogue sorted by distance-from-home and stops
	// at each step with probability Locality. 1 pins every AS to the home
	// site; small values spread an ISD across the globe. Default 0.5.
	Locality float64
}

func (s GenerateSpec) withDefaults() GenerateSpec {
	if s.ISDs == 0 {
		s.ISDs = 3
	}
	if s.CoresPerISD == 0 {
		s.CoresPerISD = 1
	}
	if s.MaxNonCorePerISD == 0 {
		s.MaxNonCorePerISD = 5
	}
	if s.MaxDepth == 0 {
		s.MaxDepth = 4
	}
	if s.MultiParentProb == 0 {
		s.MultiParentProb = 0.3
	}
	if s.Locality == 0 {
		s.Locality = 0.5
	}
	if len(s.Sites) == 0 {
		s.Sites = geo.AllSites()
	}
	return s
}

// AS-number blocks for generated worlds. Cores and non-cores live in
// disjoint ranges so identifiers never collide and cores sort first within
// their ISD (CoreASes / ASes iteration order is part of the determinism
// contract).
const (
	genCoreBase    = 0x1_0000   // core c of ISD i: base + i*0x1000 + c
	genNonCoreBase = 0x100_0000 // non-core j of ISD i: base + i*0x1_0000 + j
)

func (s GenerateSpec) validate() error {
	if s.ISDs < 1 {
		return fmt.Errorf("topology: generate: need >= 1 ISD")
	}
	if s.ISDs > 0xfff {
		return fmt.Errorf("topology: generate: %d ISDs exceeds the %d supported", s.ISDs, 0xfff)
	}
	if s.CoresPerISD < 1 || s.CoresPerISD > 0xfff {
		return fmt.Errorf("topology: generate: cores per ISD %d out of [1, %d]", s.CoresPerISD, 0xfff)
	}
	if s.NonCorePerISD < 0 || s.NonCorePerISD > 0xffff || s.MaxNonCorePerISD > 0xffff {
		return fmt.Errorf("topology: generate: non-core count per ISD out of [0, %d]", 0xffff)
	}
	if s.MaxDepth < 1 {
		return fmt.Errorf("topology: generate: max depth %d < 1", s.MaxDepth)
	}
	if s.MaxChildren < 0 {
		return fmt.Errorf("topology: generate: negative max children %d", s.MaxChildren)
	}
	if s.Locality <= 0 || s.Locality > 1 {
		return fmt.Errorf("topology: generate: locality %v out of (0, 1]", s.Locality)
	}
	if s.CoreDegree < 0 {
		return fmt.Errorf("topology: generate: negative core degree %v", s.CoreDegree)
	}
	return nil
}

// Generate builds a random valid SCION topology: CoresPerISD core ASes per
// ISD, a bounded-depth parent-child DAG per ISD (MaxDepth levels,
// MaxChildren fanout, MultiParentProb extra parents), and a connected core
// mesh whose density CoreDegree controls. AS placement draws from the Sites
// catalogue with per-ISD locality. Every non-core AS houses one server. The
// result always passes Validate and is bit-identical per Seed (this package
// is a determcheck root).
func Generate(spec GenerateSpec) (*Topology, error) {
	spec = spec.withDefaults()
	if err := spec.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	t := New()
	var cores []addr.IA
	for isd := 1; isd <= spec.ISDs; isd++ {
		// Each ISD has a home site; members place near it with
		// probability decaying by distance rank (Locality).
		home := spec.Sites[rng.Intn(len(spec.Sites))]
		local := sitesByDistance(spec.Sites, home)
		pickSite := func() geo.Site {
			i := 0
			for i < len(local)-1 && rng.Float64() >= spec.Locality {
				i++
			}
			return local[i]
		}

		// eligible holds the ASes that may still parent a child, in
		// insertion order (cores first): depth < MaxDepth and, when
		// MaxChildren is set, fewer than MaxChildren children so far.
		var eligible []addr.IA
		depth := make(map[addr.IA]int)
		kids := make(map[addr.IA]int)
		for c := 0; c < spec.CoresPerISD; c++ {
			core := addr.IA{ISD: addr.ISD(isd), AS: addr.AS(genCoreBase + isd*0x1000 + c)}
			if err := t.AddAS(&AS{
				IA: core, Name: fmt.Sprintf("core-%d-%d", isd, c), Type: Core,
				Site: pickSite(),
			}); err != nil {
				return nil, err
			}
			cores = append(cores, core)
			eligible = append(eligible, core)
			depth[core] = 0
		}

		// addChild links parent->child and retires the parent from the
		// eligible pool once it reaches the fanout cap.
		addChild := func(parent, child addr.IA) error {
			if _, err := t.Connect(ParentChild, parent, child, LinkSpec{}); err != nil {
				return err
			}
			kids[parent]++
			if spec.MaxChildren > 0 && kids[parent] >= spec.MaxChildren {
				for i, ia := range eligible {
					if ia == parent {
						eligible = append(eligible[:i], eligible[i+1:]...)
						break
					}
				}
			}
			return nil
		}

		n := spec.NonCorePerISD
		if n == 0 {
			n = rng.Intn(spec.MaxNonCorePerISD + 1)
		}
		for j := 0; j < n; j++ {
			if len(eligible) == 0 {
				return nil, fmt.Errorf("topology: generate: ISD %d cannot host %d non-core ASes (depth %d, fanout %d)",
					isd, n, spec.MaxDepth, spec.MaxChildren)
			}
			ia := addr.IA{ISD: addr.ISD(isd), AS: addr.AS(genNonCoreBase + isd*0x1_0000 + j)}
			if err := t.AddAS(&AS{
				IA: ia, Name: ia.String(), Type: NonCore,
				Site: pickSite(), NumServers: 1,
			}); err != nil {
				return nil, err
			}
			parent := eligible[rng.Intn(len(eligible))]
			if err := addChild(parent, ia); err != nil {
				return nil, err
			}
			depth[ia] = depth[parent] + 1
			if rng.Float64() < spec.MultiParentProb && len(eligible) > 1 {
				other := eligible[rng.Intn(len(eligible))]
				if other != parent && t.LinkBetween(other, ia) == nil {
					if err := addChild(other, ia); err != nil {
						return nil, err
					}
				}
			}
			if depth[ia] < spec.MaxDepth {
				eligible = append(eligible, ia)
			}
		}
	}

	// Core mesh: a chain over all cores (sorted construction order, which
	// links intra-ISD cores consecutively and bridges ISDs once) keeps the
	// graph connected; extra random links densify it to CoreDegree.
	for i := 1; i < len(cores); i++ {
		if _, err := t.Connect(CoreLink, cores[i-1], cores[i], LinkSpec{}); err != nil {
			return nil, err
		}
	}
	extra := spec.ExtraCoreLinks
	if spec.CoreDegree > 0 {
		want := int(spec.CoreDegree*float64(len(cores))/2 + 0.5)
		extra = want - (len(cores) - 1)
	}
	for added, attempts := 0, 0; added < extra && attempts < 20*extra+20; attempts++ {
		a, b := rng.Intn(len(cores)), rng.Intn(len(cores))
		if a != b && t.LinkBetween(cores[a], cores[b]) == nil {
			if _, err := t.Connect(CoreLink, cores[a], cores[b], LinkSpec{}); err != nil {
				return nil, err
			}
			added++
		}
	}

	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("topology: generate: %w", err)
	}
	return t, nil
}

// sitesByDistance returns the catalogue sorted by great-circle distance from
// home (ties broken by name, so the order is total and deterministic).
func sitesByDistance(sites []geo.Site, home geo.Site) []geo.Site {
	out := make([]geo.Site, len(sites))
	copy(out, sites)
	sort.Slice(out, func(i, j int) bool {
		di := geo.DistanceKm(home.Coords, out[i].Coords)
		dj := geo.DistanceKm(home.Coords, out[j].Coords)
		if di != dj {
			return di < dj
		}
		return out[i].Name < out[j].Name
	})
	return out
}
