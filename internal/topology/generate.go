package topology

import (
	"fmt"
	"math/rand"

	"github.com/upin/scionpath/internal/addr"
	"github.com/upin/scionpath/internal/geo"
)

// GenerateSpec parameterises random topology generation: experimenters use
// it to study how the system scales beyond the 35-AS SCIONLab world.
type GenerateSpec struct {
	Seed int64
	// ISDs is the number of isolation domains (each with one core AS).
	ISDs int
	// MaxNonCorePerISD bounds the non-core ASes per ISD (the actual count
	// is uniform in [0, MaxNonCorePerISD]).
	MaxNonCorePerISD int
	// ExtraCoreLinks adds this many random core-mesh links beyond the
	// connecting chain.
	ExtraCoreLinks int
	// MultiParentProb is the probability a non-core AS gets a second
	// parent (creating path diversity).
	MultiParentProb float64
}

func (s GenerateSpec) withDefaults() GenerateSpec {
	if s.ISDs == 0 {
		s.ISDs = 3
	}
	if s.MaxNonCorePerISD == 0 {
		s.MaxNonCorePerISD = 5
	}
	if s.MultiParentProb == 0 {
		s.MultiParentProb = 0.3
	}
	return s
}

// Generate builds a random valid SCION topology: one core AS per ISD, a
// random parent-child DAG per ISD, and a connected random core mesh. Every
// non-core AS houses one server. The result always passes Validate.
func Generate(spec GenerateSpec) (*Topology, error) {
	spec = spec.withDefaults()
	if spec.ISDs < 1 {
		return nil, fmt.Errorf("topology: generate: need >= 1 ISD")
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	sites := []geo.Site{geo.Zurich, geo.Dublin, geo.Tokyo, geo.Sydney, geo.Ashburn,
		geo.Singapore, geo.Stockholm, geo.SaoPaulo, geo.Mumbai, geo.Toronto,
		geo.Paris, geo.Madrid, geo.Helsinki, geo.TelAviv, geo.HongKong}
	t := New()
	var cores []addr.IA
	for isd := 1; isd <= spec.ISDs; isd++ {
		core := addr.IA{ISD: addr.ISD(isd), AS: addr.AS(0x10000 + isd)}
		if err := t.AddAS(&AS{
			IA: core, Name: fmt.Sprintf("core-%d", isd), Type: Core,
			Site: sites[rng.Intn(len(sites))],
		}); err != nil {
			return nil, err
		}
		cores = append(cores, core)
		members := []addr.IA{core}
		for j, n := 0, rng.Intn(spec.MaxNonCorePerISD+1); j < n; j++ {
			ia := addr.IA{ISD: addr.ISD(isd), AS: addr.AS(0x20000 + isd*1000 + j)}
			if err := t.AddAS(&AS{
				IA: ia, Name: ia.String(), Type: NonCore,
				Site: sites[rng.Intn(len(sites))], NumServers: 1,
			}); err != nil {
				return nil, err
			}
			parent := members[rng.Intn(len(members))]
			if _, err := t.Connect(ParentChild, parent, ia, LinkSpec{}); err != nil {
				return nil, err
			}
			if rng.Float64() < spec.MultiParentProb && len(members) > 1 {
				other := members[rng.Intn(len(members))]
				if other != parent && t.LinkBetween(other, ia) == nil {
					if _, err := t.Connect(ParentChild, other, ia, LinkSpec{}); err != nil {
						return nil, err
					}
				}
			}
			members = append(members, ia)
		}
	}
	for i := 1; i < len(cores); i++ {
		if _, err := t.Connect(CoreLink, cores[i-1], cores[i], LinkSpec{}); err != nil {
			return nil, err
		}
	}
	for k := 0; k < spec.ExtraCoreLinks; k++ {
		a, b := rng.Intn(len(cores)), rng.Intn(len(cores))
		if a != b && t.LinkBetween(cores[a], cores[b]) == nil {
			if _, err := t.Connect(CoreLink, cores[a], cores[b], LinkSpec{}); err != nil {
				return nil, err
			}
		}
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("topology: generate: %w", err)
	}
	return t, nil
}
