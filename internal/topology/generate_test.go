package topology

import (
	"reflect"
	"testing"

	"github.com/upin/scionpath/internal/addr"
)

func TestGenerateValidates(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		topo, err := Generate(GenerateSpec{Seed: seed, ISDs: 4, MaxNonCorePerISD: 6, ExtraCoreLinks: 2})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := topo.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(topo.CoreASes(0)) != 4 {
			t.Errorf("seed %d: %d cores", seed, len(topo.CoreASes(0)))
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(GenerateSpec{Seed: 7, ISDs: 3, MaxNonCorePerISD: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(GenerateSpec{Seed: 7, ISDs: 3, MaxNonCorePerISD: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.ASes()) != len(b.ASes()) || len(a.Links()) != len(b.Links()) {
		t.Fatal("same seed produced different topologies")
	}
	for i, as := range a.ASes() {
		if b.ASes()[i].IA != as.IA {
			t.Fatal("AS sets differ")
		}
	}
	// The strong form of the determcheck contract: every attribute of every
	// AS and link — not just identity — must be bit-identical per seed.
	if !reflect.DeepEqual(a.ASes(), b.ASes()) {
		t.Fatal("same seed produced different AS attributes")
	}
	if !reflect.DeepEqual(a.Links(), b.Links()) {
		t.Fatal("same seed produced different link attributes")
	}
}

func TestGenerateDefaultsAndErrors(t *testing.T) {
	topo, err := Generate(GenerateSpec{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.ISDs()) != 3 {
		t.Errorf("default ISDs: %d", len(topo.ISDs()))
	}
	if _, err := Generate(GenerateSpec{Seed: 1, ISDs: -2}); err == nil {
		t.Error("negative ISD count accepted")
	}
}

func TestGenerateServersPresent(t *testing.T) {
	topo, err := Generate(GenerateSpec{Seed: 3, ISDs: 5, MaxNonCorePerISD: 8, ExtraCoreLinks: 3})
	if err != nil {
		t.Fatal(err)
	}
	nonCore := 0
	for _, as := range topo.ASes() {
		if as.Type == NonCore {
			nonCore++
		}
	}
	if got := len(topo.Servers()); got != nonCore {
		t.Errorf("%d servers for %d non-core ASes", got, nonCore)
	}
}

func TestGenerateCoresAndCounts(t *testing.T) {
	topo, err := Generate(GenerateSpec{Seed: 11, ISDs: 4, CoresPerISD: 3, NonCorePerISD: 12})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(topo.CoreASes(0)); got != 12 {
		t.Errorf("cores: %d, want 12", got)
	}
	for _, isd := range topo.ISDs() {
		cores, nonCore := 0, 0
		for _, as := range topo.ASes() {
			if as.IA.ISD != isd {
				continue
			}
			if as.Type == Core {
				cores++
			} else {
				nonCore++
			}
		}
		if cores != 3 || nonCore != 12 {
			t.Errorf("ISD %d: %d cores, %d non-core", isd, cores, nonCore)
		}
	}
}

func TestGenerateDepthAndFanout(t *testing.T) {
	const maxDepth, maxChildren = 2, 3
	topo, err := Generate(GenerateSpec{
		Seed: 4, ISDs: 3, CoresPerISD: 2, NonCorePerISD: 8,
		MaxDepth: maxDepth, MaxChildren: maxChildren,
	})
	if err != nil {
		t.Fatal(err)
	}
	children := map[addr.IA]int{}
	parentsOf := map[addr.IA][]addr.IA{}
	for _, l := range topo.Links() {
		if l.Type == ParentChild {
			children[l.A]++
			parentsOf[l.B] = append(parentsOf[l.B], l.A)
		}
	}
	for ia, n := range children {
		if n > maxChildren {
			t.Errorf("AS %s has %d children > %d", ia, n, maxChildren)
		}
	}
	// Depth of an AS = 1 + min depth over parents; cores are depth 0.
	var depthOf func(ia addr.IA, seen map[addr.IA]bool) int
	depthOf = func(ia addr.IA, seen map[addr.IA]bool) int {
		if topo.AS(ia).Type == Core {
			return 0
		}
		seen[ia] = true
		best := 1 << 20
		for _, p := range parentsOf[ia] {
			if seen[p] {
				continue
			}
			if d := depthOf(p, seen) + 1; d < best {
				best = d
			}
		}
		return best
	}
	for _, as := range topo.ASes() {
		if as.Type != Core {
			if d := depthOf(as.IA, map[addr.IA]bool{}); d > maxDepth {
				t.Errorf("AS %s at depth %d > %d", as.IA, d, maxDepth)
			}
		}
	}
}

func TestGenerateCapacityError(t *testing.T) {
	// 1 core, fanout 1, depth 1 can host exactly one non-core AS.
	_, err := Generate(GenerateSpec{
		Seed: 1, ISDs: 1, NonCorePerISD: 2, MaxDepth: 1, MaxChildren: 1,
	})
	if err == nil {
		t.Fatal("over-capacity spec accepted")
	}
}

func TestGenerateCoreDegree(t *testing.T) {
	topo, err := Generate(GenerateSpec{Seed: 9, ISDs: 10, CoresPerISD: 2, NonCorePerISD: 1, CoreDegree: 4})
	if err != nil {
		t.Fatal(err)
	}
	coreLinks := 0
	for _, l := range topo.Links() {
		if l.Type == CoreLink {
			coreLinks++
		}
	}
	// 20 cores at target degree 4 → 40 links; random duplicate draws may
	// leave it slightly short, but it must clearly exceed the 19-link chain.
	if coreLinks < 35 || coreLinks > 40 {
		t.Errorf("core links: %d, want ~40", coreLinks)
	}
}

func TestGenerateLocalityPinsSites(t *testing.T) {
	topo, err := Generate(GenerateSpec{Seed: 2, ISDs: 3, CoresPerISD: 2, NonCorePerISD: 5, Locality: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, isd := range topo.ISDs() {
		sites := map[string]bool{}
		for _, as := range topo.ASes() {
			if as.IA.ISD == isd {
				sites[as.Site.Name] = true
			}
		}
		if len(sites) != 1 {
			t.Errorf("ISD %d: locality 1 placed ASes on %d sites", isd, len(sites))
		}
	}
}

func TestGenerateScaleDeterministic(t *testing.T) {
	spec := GenerateSpec{
		Seed: 42, ISDs: 20, CoresPerISD: 2, NonCorePerISD: 48,
		MaxChildren: 8, CoreDegree: 4,
	}
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.ASes()) != 20*50 {
		t.Fatalf("scale world has %d ASes, want 1000", len(a.ASes()))
	}
	if !reflect.DeepEqual(a.ASes(), b.ASes()) || !reflect.DeepEqual(a.Links(), b.Links()) {
		t.Fatal("same seed produced different 1000-AS worlds")
	}
}

func TestGenerateSpecErrors(t *testing.T) {
	bad := []GenerateSpec{
		{Seed: 1, ISDs: -2},
		{Seed: 1, CoresPerISD: -1},
		{Seed: 1, NonCorePerISD: -3},
		{Seed: 1, MaxDepth: -1},
		{Seed: 1, MaxChildren: -1},
		{Seed: 1, Locality: 1.5},
		{Seed: 1, CoreDegree: -2},
	}
	for i, spec := range bad {
		if _, err := Generate(spec); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}
