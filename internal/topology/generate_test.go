package topology

import (
	"reflect"
	"testing"
)

func TestGenerateValidates(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		topo, err := Generate(GenerateSpec{Seed: seed, ISDs: 4, MaxNonCorePerISD: 6, ExtraCoreLinks: 2})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := topo.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(topo.CoreASes(0)) != 4 {
			t.Errorf("seed %d: %d cores", seed, len(topo.CoreASes(0)))
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(GenerateSpec{Seed: 7, ISDs: 3, MaxNonCorePerISD: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(GenerateSpec{Seed: 7, ISDs: 3, MaxNonCorePerISD: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.ASes()) != len(b.ASes()) || len(a.Links()) != len(b.Links()) {
		t.Fatal("same seed produced different topologies")
	}
	for i, as := range a.ASes() {
		if b.ASes()[i].IA != as.IA {
			t.Fatal("AS sets differ")
		}
	}
	// The strong form of the determcheck contract: every attribute of every
	// AS and link — not just identity — must be bit-identical per seed.
	if !reflect.DeepEqual(a.ASes(), b.ASes()) {
		t.Fatal("same seed produced different AS attributes")
	}
	if !reflect.DeepEqual(a.Links(), b.Links()) {
		t.Fatal("same seed produced different link attributes")
	}
}

func TestGenerateDefaultsAndErrors(t *testing.T) {
	topo, err := Generate(GenerateSpec{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.ISDs()) != 3 {
		t.Errorf("default ISDs: %d", len(topo.ISDs()))
	}
	if _, err := Generate(GenerateSpec{Seed: 1, ISDs: -2}); err == nil {
		t.Error("negative ISD count accepted")
	}
}

func TestGenerateServersPresent(t *testing.T) {
	topo, err := Generate(GenerateSpec{Seed: 3, ISDs: 5, MaxNonCorePerISD: 8, ExtraCoreLinks: 3})
	if err != nil {
		t.Fatal(err)
	}
	nonCore := 0
	for _, as := range topo.ASes() {
		if as.Type == NonCore {
			nonCore++
		}
	}
	if got := len(topo.Servers()); got != nonCore {
		t.Errorf("%d servers for %d non-core ASes", got, nonCore)
	}
}
