// Package topology models a SCION network topology: ASes grouped into
// isolation domains (ISDs), typed as core ASes, non-core ASes and attachment
// points (APs), connected by core and parent-child links with physical
// attributes (geography, capacity, queueing, loss) from which the simulator
// derives behaviour.
//
// The package mirrors the structure of the SCIONLab world topology the paper
// evaluates (Fig 1): 35 ASes across several ISDs plus the experimenters' own
// AS attached to ETHZ-AP.
//
//lint:deterministic generated worlds must be reproducible from GenerateSpec.Seed
package topology

import (
	"fmt"
	"sort"
	"time"

	"github.com/upin/scionpath/internal/addr"
	"github.com/upin/scionpath/internal/geo"
)

// ASType distinguishes the three roles in SCIONLab (§3.1) plus user ASes.
type ASType int

const (
	// Core ASes are the root of trust of their ISD and run core beaconing.
	Core ASType = iota
	// NonCore ASes are standard members of an ISD.
	NonCore
	// AttachmentPoint ASes accept user AS attachments.
	AttachmentPoint
	// UserAS is an experimenter's AS attached to an AP (the paper's MY_AS).
	UserAS
)

// String implements fmt.Stringer.
func (t ASType) String() string {
	switch t {
	case Core:
		return "core"
	case NonCore:
		return "non-core"
	case AttachmentPoint:
		return "attachment-point"
	case UserAS:
		return "user"
	default:
		return fmt.Sprintf("ASType(%d)", int(t))
	}
}

// AS describes one autonomous system. A SCIONLab AS is typically a single
// host running control services, border routers and end-host applications,
// so "AS" and "host" are interchangeable (paper §3.1); NumServers > 1 models
// the ASes that house several testable servers.
type AS struct {
	IA       addr.IA
	Name     string
	Type     ASType
	Site     geo.Site
	Operator string // organisation running the AS, for sovereignty filters

	// Processing is the fixed per-packet forwarding latency added by the AS.
	Processing time.Duration
	// JitterScale is the mean of the exponential jitter the AS adds per
	// traversal. The paper finds 16-ffaa:0:1007 and 16-ffaa:0:1004 add "a
	// wide jitter other than high latency peeks" (§6.1).
	JitterScale time.Duration

	// NumServers is how many testable servers the AS houses (≥1 means it
	// appears in availableServers; 0 means transit-only or unreachable).
	NumServers int
}

// LinkType distinguishes the two SCION link relationships we model.
type LinkType int

const (
	// CoreLink connects two core ASes (possibly across ISDs).
	CoreLink LinkType = iota
	// ParentChild connects a provider (A, parent) to a customer (B, child).
	ParentChild
)

// String implements fmt.Stringer.
func (t LinkType) String() string {
	if t == CoreLink {
		return "core"
	}
	return "parent-child"
}

// Link is a bidirectional adjacency between two ASes. Interface identifiers
// are per-AS and assigned by the builder. Capacities may be asymmetric: AtoB
// is the capacity of the A→B direction.
type Link struct {
	Type LinkType
	A, B addr.IA
	AIf  addr.IfID // A's interface for this link
	BIf  addr.IfID // B's interface for this link

	// CapacityAtoB/BtoA are in bits per second.
	CapacityAtoB float64
	CapacityBtoA float64
	// QueueBytes is the byte limit of the tail-drop queue at each end.
	QueueBytes int
	// BaseLoss is the residual per-packet loss probability of the medium.
	BaseLoss float64
	// MTU of the link in bytes.
	MTU int
}

// DefaultMTU is used when a link does not specify one. SCIONLab paths
// commonly report 1472.
const DefaultMTU = 1472

// Topology is an immutable-after-build SCION network.
type Topology struct {
	ases  map[addr.IA]*AS
	links []*Link
	// ifaceCount tracks the next interface id to assign per AS.
	ifaceCount map[addr.IA]addr.IfID
	// adjacency: per AS, links it participates in.
	adj map[addr.IA][]*Link
}

// New returns an empty topology.
func New() *Topology {
	return &Topology{
		ases:       make(map[addr.IA]*AS),
		ifaceCount: make(map[addr.IA]addr.IfID),
		adj:        make(map[addr.IA][]*Link),
	}
}

// AddAS registers an AS. It returns an error on duplicates or invalid input.
func (t *Topology) AddAS(as *AS) error {
	if as == nil {
		return fmt.Errorf("topology: nil AS")
	}
	if as.IA.Zero() {
		return fmt.Errorf("topology: AS %q has zero ISD-AS", as.Name)
	}
	if _, dup := t.ases[as.IA]; dup {
		return fmt.Errorf("topology: duplicate AS %s", as.IA)
	}
	if !as.Site.Coords.Valid() {
		return fmt.Errorf("topology: AS %s has invalid coordinates", as.IA)
	}
	cp := *as
	t.ases[as.IA] = &cp
	return nil
}

// MustAddAS panics on error; for topology literals.
func (t *Topology) MustAddAS(as *AS) {
	if err := t.AddAS(as); err != nil {
		panic(err)
	}
}

// LinkSpec carries the physical attributes for Connect.
type LinkSpec struct {
	CapacityAtoB float64 // bps, 0 means DefaultCapacity
	CapacityBtoA float64 // bps, 0 means DefaultCapacity
	QueueBytes   int     // 0 means DefaultQueueBytes
	BaseLoss     float64
	MTU          int // 0 means DefaultMTU
}

// Default physical attributes for links that do not override them.
const (
	DefaultCapacity   = 1e9 // 1 Gbps backbone
	DefaultQueueBytes = 64 * 1024
)

// Connect adds a link between two registered ASes, assigning fresh interface
// ids on both sides. For ParentChild links, a is the parent.
func (t *Topology) Connect(typ LinkType, a, b addr.IA, spec LinkSpec) (*Link, error) {
	asA, okA := t.ases[a]
	asB, okB := t.ases[b]
	if !okA {
		return nil, fmt.Errorf("topology: connect: unknown AS %s", a)
	}
	if !okB {
		return nil, fmt.Errorf("topology: connect: unknown AS %s", b)
	}
	if a == b {
		return nil, fmt.Errorf("topology: connect: self link at %s", a)
	}
	if typ == CoreLink && (asA.Type != Core || asB.Type != Core) {
		return nil, fmt.Errorf("topology: core link %s--%s requires two core ASes", a, b)
	}
	if typ == ParentChild && asB.Type == Core {
		return nil, fmt.Errorf("topology: core AS %s cannot be a child", b)
	}
	if spec.CapacityAtoB == 0 {
		spec.CapacityAtoB = DefaultCapacity
	}
	if spec.CapacityBtoA == 0 {
		spec.CapacityBtoA = DefaultCapacity
	}
	if spec.QueueBytes == 0 {
		spec.QueueBytes = DefaultQueueBytes
	}
	if spec.MTU == 0 {
		spec.MTU = DefaultMTU
	}
	if spec.BaseLoss < 0 || spec.BaseLoss >= 1 {
		return nil, fmt.Errorf("topology: base loss %v out of [0,1)", spec.BaseLoss)
	}
	t.ifaceCount[a]++
	t.ifaceCount[b]++
	l := &Link{
		Type: typ, A: a, B: b,
		AIf: t.ifaceCount[a], BIf: t.ifaceCount[b],
		CapacityAtoB: spec.CapacityAtoB, CapacityBtoA: spec.CapacityBtoA,
		QueueBytes: spec.QueueBytes, BaseLoss: spec.BaseLoss, MTU: spec.MTU,
	}
	t.links = append(t.links, l)
	t.adj[a] = append(t.adj[a], l)
	t.adj[b] = append(t.adj[b], l)
	return l, nil
}

// MustConnect panics on error.
func (t *Topology) MustConnect(typ LinkType, a, b addr.IA, spec LinkSpec) *Link {
	l, err := t.Connect(typ, a, b, spec)
	if err != nil {
		panic(err)
	}
	return l
}

// AS returns the AS with the given identifier, or nil.
func (t *Topology) AS(ia addr.IA) *AS { return t.ases[ia] }

// ASes returns all ASes sorted by ISD then AS number.
func (t *Topology) ASes() []*AS {
	out := make([]*AS, 0, len(t.ases))
	for _, as := range t.ases {
		out = append(out, as)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].IA.ISD != out[j].IA.ISD {
			return out[i].IA.ISD < out[j].IA.ISD
		}
		return out[i].IA.AS < out[j].IA.AS
	})
	return out
}

// Links returns all links in insertion order.
func (t *Topology) Links() []*Link { return t.links }

// LinksOf returns the links a given AS participates in.
func (t *Topology) LinksOf(ia addr.IA) []*Link { return t.adj[ia] }

// LinkBetween returns the first link between two ASes (either orientation),
// or nil.
func (t *Topology) LinkBetween(a, b addr.IA) *Link {
	for _, l := range t.adj[a] {
		if (l.A == a && l.B == b) || (l.A == b && l.B == a) {
			return l
		}
	}
	return nil
}

// CoreASes returns the core ASes of an ISD (all ISDs when isd == 0).
func (t *Topology) CoreASes(isd addr.ISD) []*AS {
	var out []*AS
	for _, as := range t.ASes() {
		if as.Type == Core && (isd == 0 || as.IA.ISD == isd) {
			out = append(out, as)
		}
	}
	return out
}

// ISDs returns the sorted list of ISDs present.
func (t *Topology) ISDs() []addr.ISD {
	set := map[addr.ISD]bool{}
	for ia := range t.ases {
		set[ia.ISD] = true
	}
	out := make([]addr.ISD, 0, len(set))
	for isd := range set {
		out = append(out, isd)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Servers returns, in catalogue order, one entry per testable server: ASes
// with NumServers >= 1 contribute that many servers, each with a synthetic
// AS-local address. This is the paper's availableServers set (21 servers).
func (t *Topology) Servers() []addr.Host {
	var out []addr.Host
	for _, as := range t.ASes() {
		for i := 0; i < as.NumServers; i++ {
			out = append(out, addr.Host{
				IA:    as.IA,
				Local: fmt.Sprintf("172.31.%d.%d", as.IA.ISD, 10+i),
			})
		}
	}
	return out
}

// Delay returns the one-way propagation delay of the link from geography.
func (t *Topology) Delay(l *Link) time.Duration {
	a, b := t.ases[l.A], t.ases[l.B]
	if a == nil || b == nil {
		return 0
	}
	return geo.PropagationDelay(a.Site.Coords, b.Site.Coords)
}

// Validate performs structural checks: connectivity of the AS graph, every
// non-core AS has a parent, every ISD has at least one core AS, user ASes
// attach only to attachment points.
func (t *Topology) Validate() error {
	if len(t.ases) == 0 {
		return fmt.Errorf("topology: empty")
	}
	coreByISD := map[addr.ISD]int{}
	for _, as := range t.ases {
		if as.Type == Core {
			coreByISD[as.IA.ISD]++
		}
	}
	for _, isd := range t.ISDs() {
		if coreByISD[isd] == 0 {
			return fmt.Errorf("topology: ISD %d has no core AS", isd)
		}
	}
	parents := map[addr.IA]int{}
	for _, l := range t.links {
		if l.Type == ParentChild {
			parents[l.B]++
			if l.A.ISD != l.B.ISD {
				return fmt.Errorf("topology: parent-child link %s--%s crosses ISDs", l.A, l.B)
			}
			if up := t.ases[l.B]; up.Type == UserAS && t.ases[l.A].Type != AttachmentPoint {
				return fmt.Errorf("topology: user AS %s attached to non-AP %s", l.B, l.A)
			}
		}
	}
	for ia, as := range t.ases {
		if as.Type != Core && parents[ia] == 0 {
			return fmt.Errorf("topology: non-core AS %s has no parent", ia)
		}
	}
	// Connectivity over the undirected AS graph.
	var start addr.IA
	for ia := range t.ases {
		start = ia
		break
	}
	seen := map[addr.IA]bool{start: true}
	stack := []addr.IA{start}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, l := range t.adj[cur] {
			next := l.A
			if next == cur {
				next = l.B
			}
			if !seen[next] {
				seen[next] = true
				stack = append(stack, next)
			}
		}
	}
	if len(seen) != len(t.ases) {
		return fmt.Errorf("topology: AS graph not connected (%d/%d reachable)", len(seen), len(t.ases))
	}
	return nil
}
