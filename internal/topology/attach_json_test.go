package topology

import (
	"bytes"
	"strings"
	"testing"

	"github.com/upin/scionpath/internal/addr"
)

func TestAttachUserAS(t *testing.T) {
	w := DefaultWorld()
	// A second experimenter attaches to the Magdeburg AP (§3.2: "We were
	// free to choose any of the access points").
	ia := addr.MustParseIA("19-ffaa:1:5")
	l, err := w.AttachUserAS(UserASSpec{IA: ia, AP: MagdeburgAP})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(); err != nil {
		t.Fatalf("world invalid after attach: %v", err)
	}
	as := w.AS(ia)
	if as == nil || as.Type != UserAS {
		t.Fatalf("attached AS: %+v", as)
	}
	// Defaults: AP's site, asymmetric access.
	if as.Site.Country != "Germany" {
		t.Errorf("site not inherited: %v", as.Site)
	}
	if l.CapacityAtoB <= l.CapacityBtoA {
		t.Errorf("access not asymmetric: %v/%v", l.CapacityAtoB, l.CapacityBtoA)
	}
}

func TestAttachUserASErrors(t *testing.T) {
	w := DefaultWorld()
	cases := []UserASSpec{
		{IA: addr.MustParseIA("19-ffaa:1:9"), AP: addr.MustParseIA("99-ff00:0:1")}, // unknown AP
		{IA: addr.MustParseIA("16-ffaa:1:9"), AP: AWSIreland},                      // not an AP
		{IA: addr.MustParseIA("16-ffaa:1:9"), AP: MagdeburgAP},                     // wrong ISD
		{IA: MyAS, AP: ETHZAP}, // duplicate IA
	}
	for i, spec := range cases {
		if _, err := w.AttachUserAS(spec); err == nil {
			t.Errorf("case %d accepted: %+v", i, spec)
		}
	}
}

func TestAttachmentPoints(t *testing.T) {
	w := DefaultWorld()
	aps := w.AttachmentPoints()
	if len(aps) < 4 {
		t.Fatalf("only %d APs", len(aps))
	}
	found := false
	for _, ap := range aps {
		if ap.IA == ETHZAP {
			found = true
		}
		if ap.Type != AttachmentPoint {
			t.Errorf("non-AP %s listed", ap.IA)
		}
	}
	if !found {
		t.Error("ETHZ-AP missing")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	w := DefaultWorld()
	var buf bytes.Buffer
	if err := w.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	w2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(w2.ASes()) != len(w.ASes()) {
		t.Fatalf("AS count %d vs %d", len(w2.ASes()), len(w.ASes()))
	}
	if len(w2.Links()) != len(w.Links()) {
		t.Fatalf("link count %d vs %d", len(w2.Links()), len(w.Links()))
	}
	// Spot-check a link's attributes and interface reassignment stability.
	l1 := w.LinkBetween(ETHZAP, MyAS)
	l2 := w2.LinkBetween(ETHZAP, MyAS)
	if l2 == nil || l1.CapacityAtoB != l2.CapacityAtoB || l1.CapacityBtoA != l2.CapacityBtoA {
		t.Errorf("access link not preserved: %+v vs %+v", l1, l2)
	}
	if l1.AIf != l2.AIf || l1.BIf != l2.BIf {
		t.Errorf("interface ids changed across round trip: %d/%d vs %d/%d",
			l1.AIf, l1.BIf, l2.AIf, l2.BIf)
	}
	// Servers and metadata preserved.
	if len(w2.Servers()) != len(w.Servers()) {
		t.Errorf("servers %d vs %d", len(w2.Servers()), len(w.Servers()))
	}
	if w2.AS(AWSOhio).JitterScale != w.AS(AWSOhio).JitterScale {
		t.Error("jitter scale lost")
	}
}

func TestReadJSONErrors(t *testing.T) {
	cases := []string{
		"{",                                    // truncated
		`{"unknown": 1}`,                       // unknown field
		`{"ases":[{"ia":"zz"}]}`,               // bad IA
		`{"ases":[{"ia":"1-1","type":"odd"}]}`, // bad type
		`{"ases":[{"ia":"1-1","type":"core","lat":1,"lon":1}],"links":[{"type":"x","a":"1-1","b":"1-1"}]}`, // bad link type
		`{"ases":[{"ia":"1-1","type":"core","lat":1,"lon":1}],"links":[{"type":"core","a":"zz","b":"1-1"}]}`,
		`{"ases":[{"ia":"1-1","type":"non-core","lat":1,"lon":1}]}`, // fails Validate (no core)
	}
	for i, s := range cases {
		if _, err := ReadJSON(strings.NewReader(s)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestAttachedASGetsPaths(t *testing.T) {
	// End-to-end: an AS attached at Magdeburg can be reached from MY_AS.
	w := DefaultWorld()
	ia := addr.MustParseIA("19-ffaa:1:7")
	if _, err := w.AttachUserAS(UserASSpec{IA: ia, AP: MagdeburgAP, Name: "peer"}); err != nil {
		t.Fatal(err)
	}
	// Validation only — path construction over the attached AS is covered
	// in pathmgr's random-topology tests; here the structural invariant is
	// that the new leaf has a parent and the graph stays connected.
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
}
