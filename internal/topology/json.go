package topology

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"github.com/upin/scionpath/internal/addr"
	"github.com/upin/scionpath/internal/geo"
)

// jsonTopology is the on-disk topology description, in the spirit of
// SCIONLab's generated configuration files (§3.2: "a Vagrant file for our
// AS was generated to instruct the configuration").
type jsonTopology struct {
	ASes  []jsonAS   `json:"ases"`
	Links []jsonLink `json:"links"`
}

type jsonAS struct {
	IA           string  `json:"ia"`
	Name         string  `json:"name"`
	Type         string  `json:"type"`
	SiteName     string  `json:"site"`
	Country      string  `json:"country"`
	Lat          float64 `json:"lat"`
	Lon          float64 `json:"lon"`
	Operator     string  `json:"operator"`
	ProcessingUs int64   `json:"processing_us"`
	JitterUs     int64   `json:"jitter_us"`
	Servers      int     `json:"servers"`
}

type jsonLink struct {
	Type       string  `json:"type"`
	A          string  `json:"a"`
	B          string  `json:"b"`
	CapAtoB    float64 `json:"cap_a_to_b_bps"`
	CapBtoA    float64 `json:"cap_b_to_a_bps"`
	QueueBytes int     `json:"queue_bytes"`
	BaseLoss   float64 `json:"base_loss"`
	MTU        int     `json:"mtu"`
}

// WriteJSON serialises the topology.
func (t *Topology) WriteJSON(w io.Writer) error {
	var out jsonTopology
	for _, as := range t.ASes() {
		out.ASes = append(out.ASes, jsonAS{
			IA:           as.IA.String(),
			Name:         as.Name,
			Type:         as.Type.String(),
			SiteName:     as.Site.Name,
			Country:      as.Site.Country,
			Lat:          as.Site.Coords.Lat,
			Lon:          as.Site.Coords.Lon,
			Operator:     as.Operator,
			ProcessingUs: as.Processing.Microseconds(),
			JitterUs:     as.JitterScale.Microseconds(),
			Servers:      as.NumServers,
		})
	}
	for _, l := range t.Links() {
		out.Links = append(out.Links, jsonLink{
			Type:       l.Type.String(),
			A:          l.A.String(),
			B:          l.B.String(),
			CapAtoB:    l.CapacityAtoB,
			CapBtoA:    l.CapacityBtoA,
			QueueBytes: l.QueueBytes,
			BaseLoss:   l.BaseLoss,
			MTU:        l.MTU,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON parses a topology description and validates it. Interface ids
// are re-assigned in link order, so a round trip preserves paths.
func ReadJSON(r io.Reader) (*Topology, error) {
	var in jsonTopology
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("topology: parse: %w", err)
	}
	t := New()
	for _, ja := range in.ASes {
		ia, err := addr.ParseIA(ja.IA)
		if err != nil {
			return nil, fmt.Errorf("topology: AS %q: %w", ja.IA, err)
		}
		typ, err := parseASType(ja.Type)
		if err != nil {
			return nil, fmt.Errorf("topology: AS %s: %w", ja.IA, err)
		}
		if err := t.AddAS(&AS{
			IA:   ia,
			Name: ja.Name,
			Type: typ,
			Site: geo.Site{
				Name:    ja.SiteName,
				Country: ja.Country,
				Coords:  geo.Coordinates{Lat: ja.Lat, Lon: ja.Lon},
			},
			Operator:    ja.Operator,
			Processing:  time.Duration(ja.ProcessingUs) * time.Microsecond,
			JitterScale: time.Duration(ja.JitterUs) * time.Microsecond,
			NumServers:  ja.Servers,
		}); err != nil {
			return nil, err
		}
	}
	for _, jl := range in.Links {
		a, err := addr.ParseIA(jl.A)
		if err != nil {
			return nil, fmt.Errorf("topology: link endpoint %q: %w", jl.A, err)
		}
		b, err := addr.ParseIA(jl.B)
		if err != nil {
			return nil, fmt.Errorf("topology: link endpoint %q: %w", jl.B, err)
		}
		typ, err := parseLinkType(jl.Type)
		if err != nil {
			return nil, err
		}
		if _, err := t.Connect(typ, a, b, LinkSpec{
			CapacityAtoB: jl.CapAtoB,
			CapacityBtoA: jl.CapBtoA,
			QueueBytes:   jl.QueueBytes,
			BaseLoss:     jl.BaseLoss,
			MTU:          jl.MTU,
		}); err != nil {
			return nil, err
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

func parseASType(s string) (ASType, error) {
	switch s {
	case "core":
		return Core, nil
	case "non-core":
		return NonCore, nil
	case "attachment-point":
		return AttachmentPoint, nil
	case "user":
		return UserAS, nil
	default:
		return 0, fmt.Errorf("unknown AS type %q", s)
	}
}

func parseLinkType(s string) (LinkType, error) {
	switch s {
	case "core":
		return CoreLink, nil
	case "parent-child":
		return ParentChild, nil
	default:
		return 0, fmt.Errorf("topology: unknown link type %q", s)
	}
}
