package topology

import (
	"fmt"
	"time"

	"github.com/upin/scionpath/internal/addr"
	"github.com/upin/scionpath/internal/geo"
)

// UserASSpec describes an experimenter's AS to attach to the SCIONLab-like
// world, mirroring the web-interface workflow of §3.2: "we have to define
// one AS to attach to one endpoint ... We were free to choose any of the
// access points in the topology."
type UserASSpec struct {
	IA   addr.IA
	Name string
	Site geo.Site
	// AP is the attachment point to connect to (must be of type
	// AttachmentPoint).
	AP addr.IA
	// DownBps/UpBps set the asymmetric access capacities; zero selects the
	// defaults of the ETHZ attachment.
	DownBps, UpBps float64
	// JitterScale defaults to 100µs.
	JitterScale time.Duration
}

// AttachUserAS adds a user AS behind an attachment point and returns its
// access link. The new AS must live in the AP's ISD (SCIONLab assigns user
// ASNs within the AP's ISD).
func (t *Topology) AttachUserAS(spec UserASSpec) (*Link, error) {
	ap := t.AS(spec.AP)
	if ap == nil {
		return nil, fmt.Errorf("topology: attach: unknown AP %s", spec.AP)
	}
	if ap.Type != AttachmentPoint {
		return nil, fmt.Errorf("topology: attach: %s is %s, not an attachment point", spec.AP, ap.Type)
	}
	if spec.IA.ISD != spec.AP.ISD {
		return nil, fmt.Errorf("topology: attach: user AS %s must join the AP's ISD %d", spec.IA, spec.AP.ISD)
	}
	if spec.DownBps == 0 {
		spec.DownBps = 55e6
	}
	if spec.UpBps == 0 {
		spec.UpBps = 22e6
	}
	if spec.JitterScale == 0 {
		spec.JitterScale = 100 * time.Microsecond
	}
	if spec.Name == "" {
		spec.Name = "USER_" + spec.IA.String()
	}
	if spec.Site.Name == "" {
		spec.Site = ap.Site
	}
	if err := t.AddAS(&AS{
		IA:          spec.IA,
		Name:        spec.Name,
		Type:        UserAS,
		Site:        spec.Site,
		Operator:    "experimenter",
		Processing:  120 * time.Microsecond,
		JitterScale: spec.JitterScale,
	}); err != nil {
		return nil, err
	}
	return t.Connect(ParentChild, spec.AP, spec.IA, LinkSpec{
		CapacityAtoB: spec.DownBps,
		CapacityBtoA: spec.UpBps,
	})
}

// AttachmentPoints lists the APs of the topology (the light-green nodes of
// the paper's Fig 1).
func (t *Topology) AttachmentPoints() []*AS {
	var out []*AS
	for _, as := range t.ASes() {
		if as.Type == AttachmentPoint {
			out = append(out, as)
		}
	}
	return out
}
