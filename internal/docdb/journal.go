package docdb

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
)

// journalEntry is one line of the persistence journal.
type journalEntry struct {
	Op         string   `json:"op"` // insert | delete | drop
	Collection string   `json:"c"`
	Doc        Document `json:"doc,omitempty"`
	ID         string   `json:"id,omitempty"`
	// Replace marks an insert that overwrites the _id (update journaling).
	Replace bool `json:"replace,omitempty"`
}

type journal struct {
	mu  sync.Mutex
	f   *os.File
	w   *bufio.Writer
	err error
}

func (j *journal) append(e journalEntry) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	b, err := json.Marshal(e)
	if err != nil {
		j.err = err
		return
	}
	if _, err := j.w.Write(append(b, '\n')); err != nil {
		j.err = err
	}
}

func (j *journal) flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.flushLocked()
}

func (j *journal) flushLocked() error {
	if j.err != nil {
		return j.err
	}
	if err := j.w.Flush(); err != nil {
		j.err = err
		return err
	}
	return j.f.Sync()
}

func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	ferr := j.flushLocked()
	cerr := j.f.Close()
	if ferr != nil {
		return ferr
	}
	return cerr
}

// path returns the journal's backing file path.
func (j *journal) path() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Name()
}

// OpenFile opens (or creates) a journal-backed database at path, replaying
// any existing journal so a restarted test-suite continues with its data —
// the fault-tolerance requirement of §4.1.2.
func OpenFile(path string) (*DB, error) {
	db := Open()
	if err := db.replay(path); err != nil {
		return nil, err
	}
	return db.attachJournal(path)
}

// attachJournal opens the append side of the journal after replay.
//
//lint:ignore lockcheck runs before the DB is shared (only OpenFile/OpenFileWith call it), so no other goroutine can observe the field
func (db *DB) attachJournal(path string) (*DB, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("docdb: open journal %s: %w", path, err)
	}
	db.journal = &journal{f: f, w: bufio.NewWriterSize(f, 1<<16)}
	return db, nil
}

// replay loads an existing journal file into the in-memory state,
// tolerating a truncated final line (a crash mid-append loses at most the
// unflushed batch, by design). A missing file is a fresh database.
func (db *DB) replay(path string) (err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("docdb: open %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("docdb: replay %s: %w", path, cerr)
		}
	}()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	// replay runs before the DB is shared (OpenFile/OpenFileWith own it), so
	// the failpoint field is readable without the lock here.
	//lint:ignore lockcheck replay runs before the DB is shared, no concurrent access is possible
	fp := db.failpoint
	n := 0
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e journalEntry
		if err := json.Unmarshal(line, &e); err != nil {
			break // truncated tail: stop replay, keep what we have
		}
		if fp != nil && !fp.ReplayEntry(n, e.Op) {
			break // injected truncation: drop the journal's tail
		}
		n++
		db.applyReplay(e)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("docdb: replay %s: %w", path, err)
	}
	return nil
}

// applyReplay applies a journal entry without re-journaling it.
func (db *DB) applyReplay(e journalEntry) {
	switch e.Op {
	case "insert":
		c := db.Collection(e.Collection)
		c.mu.Lock()
		id := e.Doc.ID()
		if i, dup := c.byID[id]; dup {
			if e.Replace {
				c.docs[i] = e.Doc
				c.bumpLocked(true)
			}
			c.mu.Unlock()
			return
		}
		c.byID[id] = len(c.docs)
		c.docs = append(c.docs, e.Doc)
		c.bumpLocked(false)
		c.mu.Unlock()
	case "delete":
		c := db.Collection(e.Collection)
		c.mu.Lock()
		if i, ok := c.byID[e.ID]; ok {
			c.docs = append(c.docs[:i], c.docs[i+1:]...)
			c.byID = make(map[string]int, len(c.docs))
			for j, d := range c.docs {
				c.byID[d.ID()] = j
			}
			c.bumpLocked(true)
		}
		c.mu.Unlock()
	case "drop":
		db.mu.Lock()
		delete(db.collections, e.Collection)
		db.mu.Unlock()
	}
}

// journalRef snapshots the journal pointer under the DB lock. Concurrent
// Close/Compact swap the pointer; the journal's own mutex then serializes
// appends against flush and close, so a holder of a stale reference appends
// into a closed journal's error state rather than racing on the pointer.
func (db *DB) journalRef() *journal {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.journal
}

// Flush forces buffered journal writes to disk. The measurement runner
// calls it after each per-destination batch insert.
func (db *DB) Flush() error {
	j := db.journalRef()
	if j == nil {
		return nil
	}
	return j.flush()
}

// Close flushes and closes the journal (no-op for in-memory databases).
func (db *DB) Close() error {
	db.mu.Lock()
	j := db.journal
	db.journal = nil
	db.mu.Unlock()
	if j == nil {
		return nil
	}
	return j.close()
}

// Compact rewrites the journal to contain exactly the current state: one
// insert per live document, dropping superseded updates, deletes and
// dropped collections. Long-running monitors call it to keep the journal
// proportional to the data rather than to the operation history. The
// rewrite goes through a temporary file and an atomic rename, so a crash
// during compaction leaves either the old or the new journal intact.
func (db *DB) Compact() error {
	// The DB write-lock is held for the whole snapshot + swap. Writers hold
	// the read-lock across mutation + append (see InsertMany), so every
	// committed operation is either in the snapshot or in the new journal.
	db.mu.Lock()
	defer db.mu.Unlock()
	j := db.journal
	if j == nil {
		return fmt.Errorf("docdb: compact: in-memory database has no journal")
	}
	if err := j.flush(); err != nil {
		return err
	}
	path := j.path()
	tmp := path + ".compact"
	if err := db.writeSnapshotLocked(tmp); err != nil {
		return err
	}
	if err := j.close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("docdb: compact: %w", err)
	}
	nf, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("docdb: compact: reopen: %w", err)
	}
	db.journal = &journal{f: nf, w: bufio.NewWriterSize(nf, 1<<16)}
	return nil
}

// writeSnapshotLocked writes one insert entry per live document to tmp,
// synced to disk. On any failure the partial file is removed. Callers hold
// db.mu.
func (db *DB) writeSnapshotLocked(tmp string) (err error) {
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("docdb: compact: %w", err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("docdb: compact: %w", cerr)
		}
		if err != nil {
			if rmErr := os.Remove(tmp); rmErr != nil && !os.IsNotExist(rmErr) {
				err = errors.Join(err, rmErr)
			}
		}
	}()
	w := bufio.NewWriterSize(f, 1<<16)
	names := make([]string, 0, len(db.collections))
	for n := range db.collections {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		c := db.collections[name]
		c.mu.RLock()
		for _, d := range c.docs {
			b, err := json.Marshal(journalEntry{Op: "insert", Collection: name, Doc: d})
			if err != nil {
				c.mu.RUnlock()
				return fmt.Errorf("docdb: compact: %w", err)
			}
			if _, err := w.Write(append(b, '\n')); err != nil {
				c.mu.RUnlock()
				return fmt.Errorf("docdb: compact: %w", err)
			}
		}
		c.mu.RUnlock()
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("docdb: compact: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("docdb: compact: %w", err)
	}
	return nil
}
