package docdb_test

import (
	"fmt"

	"github.com/upin/scionpath/internal/docdb"
)

func Example() {
	db := docdb.MustOpen()
	paths := db.Collection("paths")
	if err := paths.InsertMany([]docdb.Document{
		{"_id": "1_0", "hops": 6, "isds": []any{"16", "17"}},
		{"_id": "1_9", "hops": 7, "isds": []any{"16", "17"}},
		{"_id": "1_4", "hops": 7, "isds": []any{"16", "17", "19"}},
	}); err != nil {
		panic(err)
	}
	short := paths.Find(docdb.Query{
		Filter: docdb.And(docdb.Lte("hops", 7), docdb.ElemMatch("isds", "19")),
		SortBy: "_id",
	})
	for _, d := range short {
		fmt.Println(d.ID(), d["hops"])
	}
	// Output: 1_4 7
}
