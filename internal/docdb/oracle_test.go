package docdb

import (
	"fmt"
	"math/rand"
	"testing"
)

// Oracle test: random filter trees evaluated through Find (with and without
// an index) must agree with a naive reference evaluation, document by
// document.

// randomFilter builds a random filter tree of bounded depth.
func randomFilter(rng *rand.Rand, depth int) Filter {
	if depth <= 0 || rng.Intn(3) == 0 {
		field := []string{"hops", "loss", "status", "path_id"}[rng.Intn(4)]
		var value any
		switch field {
		case "hops":
			value = rng.Intn(10)
		case "loss":
			value = float64(rng.Intn(5) * 25)
		case "status":
			value = []string{"alive", "timeout"}[rng.Intn(2)]
		case "path_id":
			value = fmt.Sprintf("2_%d", rng.Intn(6))
		}
		switch rng.Intn(7) {
		case 0:
			return Eq(field, value)
		case 1:
			return Ne(field, value)
		case 2:
			return Gt(field, value)
		case 3:
			return Lt(field, value)
		case 4:
			return Gte(field, value)
		case 5:
			return Lte(field, value)
		default:
			return Exists(field, rng.Intn(2) == 0)
		}
	}
	switch rng.Intn(3) {
	case 0:
		return And(randomFilter(rng, depth-1), randomFilter(rng, depth-1))
	case 1:
		return Or(randomFilter(rng, depth-1), randomFilter(rng, depth-1))
	default:
		return Not(randomFilter(rng, depth-1))
	}
}

func TestFindMatchesNaiveOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	db := MustOpen()
	plain := db.Collection("plain")
	fast := db.Collection("fast")
	var docs []Document
	for i := 0; i < 400; i++ {
		d := Document{
			"_id":     fmt.Sprintf("d%d", i),
			"hops":    rng.Intn(10),
			"path_id": fmt.Sprintf("2_%d", rng.Intn(6)),
		}
		if rng.Intn(4) != 0 {
			d["loss"] = float64(rng.Intn(5) * 25)
		}
		if rng.Intn(3) != 0 {
			d["status"] = []string{"alive", "timeout"}[rng.Intn(2)]
		}
		docs = append(docs, d)
	}
	if err := plain.InsertMany(docs); err != nil {
		t.Fatal(err)
	}
	if err := fast.InsertMany(docs); err != nil {
		t.Fatal(err)
	}
	fast.EnsureIndex("path_id")
	fast.EnsureIndex("hops")

	for trial := 0; trial < 300; trial++ {
		f := randomFilter(rng, 3)
		// Naive oracle: Match on every stored doc.
		want := map[string]bool{}
		for _, d := range docs {
			// Re-fetch the stored clone so types match storage exactly.
			stored := plain.Get(d.ID())
			if f.Match(stored) {
				want[d.ID()] = true
			}
		}
		for name, col := range map[string]*Collection{"plain": plain, "fast": fast} {
			got := col.Find(Query{Filter: f})
			if len(got) != len(want) {
				t.Fatalf("trial %d (%s): got %d, oracle %d", trial, name, len(got), len(want))
			}
			for _, d := range got {
				if !want[d.ID()] {
					t.Fatalf("trial %d (%s): %s not in oracle set", trial, name, d.ID())
				}
			}
		}
	}
}
