package docdb

import (
	"fmt"
	"testing"
)

// Regression: Aggregate used fmt.Sprint for group keys, so numerically
// equal values with different Go renderings (float64 1e6 prints "1e+06",
// int 1000000 prints "1000000") landed in different groups even though the
// hash index — and every comparison operator — treats them as equal. Group
// keys now share indexKey's canonical numeric rendering.
func TestAggregateGroupsNumericallyEqualKeys(t *testing.T) {
	db := MustOpen()
	col := db.Collection("c")
	err := col.InsertMany([]Document{
		{"_id": "a", "g": float64(1e6), "v": 1.0},
		{"_id": "b", "g": int(1000000), "v": 2.0},
		{"_id": "c", "g": int64(1000000), "v": 3.0},
		{"_id": "d", "g": 6, "v": 10.0},
		{"_id": "e", "g": 6.0, "v": 20.0},
		// Grouping is by rendered key, so the *string* "6" shares the
		// numeric 6 group — the seed engine's fmt.Sprint behaved the same.
		{"_id": "f", "g": "6", "v": 100.0},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := col.Aggregate(nil, "g", "v")
	if len(got) != 2 {
		t.Fatalf("got %d groups (%+v), want 2", len(got), got)
	}
	byKey := map[string]AggResult{}
	for _, g := range got {
		byKey[g.Key] = g
	}
	if g := byKey["1e+06"]; g.Count != 3 || g.Sum != 6.0 {
		t.Errorf("group 1e+06: %+v, want Count 3 Sum 6", g)
	}
	if g := byKey["6"]; g.Count != 3 || g.Sum != 130.0 {
		t.Errorf("group 6: %+v, want Count 3 Sum 130", g)
	}
}

// Aggregate must agree with an equivalent Find-based reduction (it now
// streams zero-copy under the read lock instead of cloning every document).
func TestAggregateMatchesFindReduction(t *testing.T) {
	db := MustOpen()
	col := db.Collection("c")
	var docs []Document
	for i := 0; i < 200; i++ {
		docs = append(docs, Document{
			"_id": fmt.Sprintf("d%d", i),
			"g":   fmt.Sprintf("p%d", i%7),
			"v":   float64(i%13) * 1.5,
		})
	}
	if err := col.InsertMany(docs); err != nil {
		t.Fatal(err)
	}
	f := Gt("v", 3.0)
	got := col.Aggregate(f, "g", "v")

	type agg struct {
		n   int
		sum float64
	}
	want := map[string]*agg{}
	for _, d := range col.Find(Query{Filter: f}) {
		key := fmt.Sprint(d["g"])
		a := want[key]
		if a == nil {
			a = &agg{}
			want[key] = a
		}
		a.n++
		a.sum += d["v"].(float64)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d groups, want %d", len(got), len(want))
	}
	for _, g := range got {
		w := want[g.Key]
		if w == nil || g.Count != w.n || g.Sum != w.sum {
			t.Errorf("group %s: %+v, want %+v", g.Key, g, w)
		}
	}
}

// Satellite regression: Delete with no matches must report 0 and leave the
// collection fully intact (it used to rebuild byID unconditionally).
func TestDeleteNoMatchLeavesCollectionIntact(t *testing.T) {
	db := MustOpen()
	col := db.Collection("c")
	col.EnsureIndex("tag")
	col.EnsureSortedIndex("v")
	for i := 0; i < 20; i++ {
		if err := col.Insert(Document{"_id": fmt.Sprintf("d%d", i), "tag": "t", "v": i}); err != nil {
			t.Fatal(err)
		}
	}
	if n := col.Delete(Eq("tag", "missing")); n != 0 {
		t.Fatalf("Delete reported %d, want 0", n)
	}
	if n := col.Delete(nil); n != 0 {
		t.Fatalf("Delete(nil) reported %d, want 0", n)
	}
	if col.Count() != 20 {
		t.Fatalf("Count = %d after no-op deletes, want 20", col.Count())
	}
	if d := col.Get("d7"); d == nil || d["v"] != 7 {
		t.Fatalf("Get(d7) = %v after no-op deletes", d)
	}
	if got := col.Find(Query{Filter: Eq("tag", "t"), SortBy: "v", Limit: 3}); len(got) != 3 || got[0].ID() != "d0" {
		t.Fatalf("indexed query after no-op deletes: %v", idsOf(got))
	}
}
