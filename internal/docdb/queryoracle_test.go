package docdb

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// Query-shape oracle: randomized full queries (filter + sort + skip + limit)
// evaluated through Find must return exactly — including order — what a
// naive reference engine returns, on every planner variant: plain scans,
// hash-indexed, sorted-indexed, and both. This pins the contracts the
// planner must keep: index candidates re-check the full filter, index
// scans and in-memory sorts share one total order with ties broken by _id,
// and the top-K heap is invisible to callers.

// naiveQuery is the reference engine: filter by Match, stable-sort with
// compareValues (missing fields as nil, ties by _id, reversed wholesale for
// SortDesc), then slice skip/limit.
func naiveQuery(docs []Document, q Query) []Document {
	var out []Document
	for _, d := range docs {
		if q.Filter == nil || q.Filter.Match(d) {
			out = append(out, d)
		}
	}
	if q.SortBy != "" {
		sort.SliceStable(out, func(i, j int) bool {
			vi, iok := out[i].lookup(q.SortBy)
			vj, jok := out[j].lookup(q.SortBy)
			if !iok {
				vi = nil
			}
			if !jok {
				vj = nil
			}
			if c := compareValues(vi, vj); c != 0 {
				return (c < 0) != q.SortDesc
			}
			return (out[i].ID() < out[j].ID()) != q.SortDesc
		})
	}
	if q.Skip > 0 {
		if q.Skip >= len(out) {
			return nil
		}
		out = out[q.Skip:]
	}
	if q.Limit > 0 && len(out) > q.Limit {
		out = out[:q.Limit]
	}
	return out
}

func randomQuery(rng *rand.Rand) Query {
	q := Query{}
	if rng.Intn(5) != 0 {
		q.Filter = randomFilter(rng, 2)
	}
	if rng.Intn(4) != 0 {
		q.SortBy = []string{"hops", "loss", "status", "timestamp", "path_id"}[rng.Intn(5)]
		q.SortDesc = rng.Intn(2) == 0
	}
	if rng.Intn(2) == 0 {
		q.Skip = rng.Intn(6)
	}
	if rng.Intn(2) == 0 {
		q.Limit = 1 + rng.Intn(10)
	}
	return q
}

func idsOf(docs []Document) []string {
	out := make([]string, len(docs))
	for i, d := range docs {
		out[i] = d.ID()
	}
	return out
}

func TestQueryShapesMatchNaiveOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	db := MustOpen()
	variants := map[string]*Collection{
		"plain":  db.Collection("plain"),
		"hash":   db.Collection("hash"),
		"sorted": db.Collection("sorted"),
		"both":   db.Collection("both"),
	}
	var docs []Document
	for i := 0; i < 500; i++ {
		d := Document{
			"_id":       fmt.Sprintf("d%03d", i),
			"hops":      rng.Intn(10),
			"path_id":   fmt.Sprintf("2_%d", rng.Intn(6)),
			"timestamp": i * 100,
		}
		if rng.Intn(4) != 0 {
			d["loss"] = float64(rng.Intn(5) * 25)
		}
		if rng.Intn(3) != 0 {
			d["status"] = []string{"alive", "timeout"}[rng.Intn(2)]
		}
		docs = append(docs, d)
	}
	for _, col := range variants {
		if err := col.InsertMany(docs); err != nil {
			t.Fatal(err)
		}
	}
	variants["hash"].EnsureIndex("path_id")
	variants["hash"].EnsureIndex("hops")
	variants["sorted"].EnsureSortedIndex("loss")
	variants["sorted"].EnsureSortedIndex("hops")
	variants["sorted"].EnsureSortedIndex("timestamp")
	variants["both"].EnsureIndex("path_id")
	variants["both"].EnsureSortedIndex("hops")
	variants["both"].EnsureSortedIndex("loss")

	// The oracle evaluates over the stored clones so value types match
	// storage exactly.
	stored := variants["plain"].Find(Query{})

	for trial := 0; trial < 500; trial++ {
		q := randomQuery(rng)
		want := idsOf(naiveQuery(stored, q))
		for name, col := range variants {
			got := idsOf(col.Find(q))
			if len(got) != len(want) {
				t.Fatalf("trial %d (%s) %+v: got %d docs, oracle %d", trial, name, q, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d (%s) %+v: position %d = %s, oracle %s\ngot  %v\nwant %v",
						trial, name, q, i, got[i], want[i], got, want)
				}
			}
		}
	}
}

// TestCompileFilterAgreesWithMatch pins the compiled closures to the
// interface semantics for random filter trees, and CompileFilter's nil and
// idempotence contracts.
func TestCompileFilterAgreesWithMatch(t *testing.T) {
	if CompileFilter(nil) != nil {
		t.Fatal("CompileFilter(nil) != nil")
	}
	rng := rand.New(rand.NewSource(99))
	var docs []Document
	for i := 0; i < 200; i++ {
		d := Document{
			"_id":     fmt.Sprintf("d%d", i),
			"hops":    rng.Intn(10),
			"path_id": fmt.Sprintf("2_%d", rng.Intn(6)),
		}
		if rng.Intn(4) != 0 {
			d["loss"] = float64(rng.Intn(5) * 25)
		}
		if rng.Intn(3) != 0 {
			d["status"] = []string{"alive", "timeout"}[rng.Intn(2)]
		}
		docs = append(docs, d)
	}
	for trial := 0; trial < 300; trial++ {
		f := randomFilter(rng, 3)
		c := CompileFilter(f)
		if again := CompileFilter(c); again != c {
			t.Fatalf("trial %d: CompileFilter not idempotent", trial)
		}
		for _, d := range docs {
			if c.Match(d) != f.Match(d) {
				t.Fatalf("trial %d: compiled disagrees with Match on %v", trial, d)
			}
		}
	}
}

// TestForEachMatchesFind pins the cursor to Find's planner and ordering:
// same documents, same order, plus early termination.
func TestForEachMatchesFind(t *testing.T) {
	db := MustOpen()
	col := db.Collection("c")
	var docs []Document
	for i := 0; i < 300; i++ {
		docs = append(docs, Document{
			"_id":  fmt.Sprintf("d%03d", i),
			"v":    float64((i * 7919) % 100),
			"tag":  fmt.Sprintf("t%d", i%5),
			"hops": i % 9,
		})
	}
	if err := col.InsertMany(docs); err != nil {
		t.Fatal(err)
	}
	col.EnsureIndex("tag")
	col.EnsureSortedIndex("v")

	queries := []Query{
		{},
		{Filter: Eq("tag", "t3")},
		{Filter: Gte("v", 50.0), SortBy: "v"},
		{SortBy: "v", SortDesc: true, Limit: 7},
		{Filter: Eq("tag", "t1"), SortBy: "hops", Skip: 2, Limit: 4},
	}
	for qi, q := range queries {
		want := idsOf(col.Find(q))
		var got []string
		n := col.ForEach(q, func(d Document) bool {
			got = append(got, d.ID())
			return true
		})
		if n != len(want) || len(got) != len(want) {
			t.Fatalf("query %d: ForEach saw %d docs, Find returned %d", qi, n, len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("query %d: position %d = %s, Find has %s", qi, i, got[i], want[i])
			}
		}
	}

	// Early termination: fn returning false stops the stream.
	stops := 0
	seen := col.ForEach(Query{SortBy: "v"}, func(Document) bool {
		stops++
		return stops < 5
	})
	if stops != 5 || seen != 5 {
		t.Fatalf("early stop: fn ran %d times, ForEach reported %d", stops, seen)
	}
}
