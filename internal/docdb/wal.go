package docdb

// The segment backend's wire layer: CRC-framed binary records, a compact
// value codec for documents, and the group committer that coalesces
// concurrent Commit calls into shared fsync rounds. segment.go owns the
// files; this file owns the bytes.

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sort"
	"sync"
)

// segMagic is the 8-byte header of every segment file: format name, a
// version byte, and a trailing newline so `head -c8` output stays tidy.
const segMagic = "SCSEG\x00\x01\n"

// Frame layout: u32 payload length, u32 CRC-32C of the payload, payload.
// Little-endian, Castagnoli polynomial (hardware-accelerated on any recent
// CPU). A frame is the unit of torn-tail detection: replay stops at the
// first frame whose length is implausible, whose bytes run short, or whose
// CRC disagrees.
const (
	frameHeaderSize   = 8
	maxFramePayload   = 1 << 28 // 256 MiB: far above any document batch, far below corrupt-length garbage
	segMaxValueDepth  = 100
	segMaxFrameFields = 1 << 20 // cap on decoded map/slice element counts per length prefix
)

// Payload op codes (first payload byte).
const (
	segOpInsert  = 1
	segOpReplace = 2
	segOpDelete  = 3
	segOpDrop    = 4
	segOpCommit  = 5 // commit marker: everything before it in this shard was fsynced
)

var segCRCTable = crc32.MakeTable(crc32.Castagnoli)

var errSegCorrupt = errors.New("docdb: corrupt segment record")

// sealFrame wraps payload (which starts at buf[start:]) in a frame
// header, in place: callers reserve frameHeaderSize bytes, encode the
// payload after them, then seal.
func sealFrame(buf []byte, start int) []byte {
	payload := buf[start+frameHeaderSize:]
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, segCRCTable))
	return buf
}

// appendRecordFrame encodes rec as one sealed frame appended to buf.
func appendRecordFrame(buf []byte, rec Record) ([]byte, error) {
	start := len(buf)
	buf = append(buf, make([]byte, frameHeaderSize)...)
	var err error
	switch rec.Op {
	case "insert":
		op := byte(segOpInsert)
		if rec.Replace {
			op = segOpReplace
		}
		buf = append(buf, op)
		buf = appendSegString(buf, rec.Collection)
		buf, err = appendSegValue(buf, rec.Doc, 0)
		if err != nil {
			return buf[:start], err
		}
	case "delete":
		buf = append(buf, segOpDelete)
		buf = appendSegString(buf, rec.Collection)
		buf = appendSegString(buf, rec.ID)
	case "drop":
		buf = append(buf, segOpDrop)
		buf = appendSegString(buf, rec.Collection)
	default:
		return buf[:start], fmt.Errorf("docdb: segment: unknown op %q", rec.Op)
	}
	return sealFrame(buf, start), nil
}

// appendCommitFrame appends a sealed commit-marker frame.
func appendCommitFrame(buf []byte) []byte {
	start := len(buf)
	buf = append(buf, make([]byte, frameHeaderSize)...)
	buf = append(buf, segOpCommit)
	return sealFrame(buf, start)
}

// decodeRecordPayload parses one frame payload. isCommit is true for commit
// markers (rec is zero then).
func decodeRecordPayload(p []byte) (rec Record, isCommit bool, err error) {
	if len(p) == 0 {
		return rec, false, errSegCorrupt
	}
	op, p := p[0], p[1:]
	if op == segOpCommit {
		if len(p) != 0 {
			return rec, false, errSegCorrupt
		}
		return rec, true, nil
	}
	coll, p, err := readSegString(p)
	if err != nil {
		return rec, false, err
	}
	rec.Collection = coll
	switch op {
	case segOpInsert, segOpReplace:
		rec.Op = "insert"
		rec.Replace = op == segOpReplace
		v, rest, err := readSegValue(p, 0)
		if err != nil {
			return rec, false, err
		}
		if len(rest) != 0 {
			return rec, false, errSegCorrupt
		}
		doc, ok := v.(Document)
		if !ok {
			return rec, false, errSegCorrupt
		}
		rec.Doc = doc
	case segOpDelete:
		rec.Op = "delete"
		id, rest, err := readSegString(p)
		if err != nil {
			return rec, false, err
		}
		if len(rest) != 0 {
			return rec, false, errSegCorrupt
		}
		rec.ID = id
	case segOpDrop:
		rec.Op = "drop"
		if len(p) != 0 {
			return rec, false, errSegCorrupt
		}
	default:
		return rec, false, errSegCorrupt
	}
	return rec, false, nil
}

// Value codec. One tag byte, then a type-specific body. Integer widths use
// unsigned varints; signed integers are zigzag-encoded. Map keys are
// written in sorted order so the encoded bytes of a document are a pure
// function of its contents (the chaos harness replays byte-for-byte
// deterministic worlds; file contents must not depend on map iteration
// order).
const (
	segValNil     = 0
	segValFalse   = 1
	segValTrue    = 2
	segValFloat   = 3
	segValInt     = 4
	segValString  = 5
	segValList    = 6
	segValDoc     = 7
	segValStrList = 8
	segValJSON    = 9 // fallback: length-prefixed JSON bytes, decoded like a jsonl field
)

func appendSegString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func readSegString(p []byte) (string, []byte, error) {
	n, sz := binary.Uvarint(p)
	if sz <= 0 || n > uint64(len(p)-sz) {
		return "", nil, errSegCorrupt
	}
	return string(p[sz : sz+int(n)]), p[sz+int(n):], nil
}

func appendSegValue(buf []byte, v any, depth int) ([]byte, error) {
	if depth > segMaxValueDepth {
		return buf, fmt.Errorf("docdb: segment: document nesting exceeds %d", segMaxValueDepth)
	}
	switch t := v.(type) {
	case nil:
		return append(buf, segValNil), nil
	case bool:
		if t {
			return append(buf, segValTrue), nil
		}
		return append(buf, segValFalse), nil
	case float64:
		buf = append(buf, segValFloat)
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(t)), nil
	case int:
		buf = append(buf, segValInt)
		return binary.AppendVarint(buf, int64(t)), nil
	case int64:
		buf = append(buf, segValInt)
		return binary.AppendVarint(buf, t), nil
	case string:
		buf = append(buf, segValString)
		return appendSegString(buf, t), nil
	case []any:
		buf = append(buf, segValList)
		buf = binary.AppendUvarint(buf, uint64(len(t)))
		var err error
		for _, e := range t {
			if buf, err = appendSegValue(buf, e, depth+1); err != nil {
				return buf, err
			}
		}
		return buf, nil
	case []string:
		buf = append(buf, segValStrList)
		buf = binary.AppendUvarint(buf, uint64(len(t)))
		for _, s := range t {
			buf = appendSegString(buf, s)
		}
		return buf, nil
	case Document:
		return appendSegDoc(buf, t, depth)
	case map[string]any:
		return appendSegDoc(buf, t, depth)
	default:
		// Anything else round-trips through JSON, matching what the jsonl
		// backend would have persisted for the same value.
		raw, err := json.Marshal(t)
		if err != nil {
			return buf, fmt.Errorf("docdb: segment: encode %T: %w", t, err)
		}
		buf = append(buf, segValJSON)
		buf = binary.AppendUvarint(buf, uint64(len(raw)))
		return append(buf, raw...), nil
	}
}

func appendSegDoc(buf []byte, d map[string]any, depth int) ([]byte, error) {
	buf = append(buf, segValDoc)
	buf = binary.AppendUvarint(buf, uint64(len(d)))
	keys := make([]string, 0, len(d))
	for k := range d {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var err error
	for _, k := range keys {
		buf = appendSegString(buf, k)
		if buf, err = appendSegValue(buf, d[k], depth+1); err != nil {
			return buf, err
		}
	}
	return buf, nil
}

func readSegValue(p []byte, depth int) (any, []byte, error) {
	if depth > segMaxValueDepth || len(p) == 0 {
		return nil, nil, errSegCorrupt
	}
	tag, p := p[0], p[1:]
	switch tag {
	case segValNil:
		return nil, p, nil
	case segValFalse:
		return false, p, nil
	case segValTrue:
		return true, p, nil
	case segValFloat:
		if len(p) < 8 {
			return nil, nil, errSegCorrupt
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(p)), p[8:], nil
	case segValInt:
		n, sz := binary.Varint(p)
		if sz <= 0 {
			return nil, nil, errSegCorrupt
		}
		return n, p[sz:], nil
	case segValString:
		s, rest, err := readSegString(p)
		return s, rest, err
	case segValList:
		n, sz := binary.Uvarint(p)
		if sz <= 0 || n > segMaxFrameFields || n > uint64(len(p)) {
			return nil, nil, errSegCorrupt
		}
		p = p[sz:]
		out := make([]any, 0, n)
		for i := uint64(0); i < n; i++ {
			var v any
			var err error
			if v, p, err = readSegValue(p, depth+1); err != nil {
				return nil, nil, err
			}
			out = append(out, v)
		}
		return out, p, nil
	case segValStrList:
		n, sz := binary.Uvarint(p)
		if sz <= 0 || n > segMaxFrameFields || n > uint64(len(p)) {
			return nil, nil, errSegCorrupt
		}
		p = p[sz:]
		out := make([]string, 0, n)
		for i := uint64(0); i < n; i++ {
			var s string
			var err error
			if s, p, err = readSegString(p); err != nil {
				return nil, nil, err
			}
			out = append(out, s)
		}
		return out, p, nil
	case segValDoc:
		n, sz := binary.Uvarint(p)
		if sz <= 0 || n > segMaxFrameFields || n > uint64(len(p)) {
			return nil, nil, errSegCorrupt
		}
		p = p[sz:]
		d := make(Document, n)
		for i := uint64(0); i < n; i++ {
			var k string
			var v any
			var err error
			if k, p, err = readSegString(p); err != nil {
				return nil, nil, err
			}
			if v, p, err = readSegValue(p, depth+1); err != nil {
				return nil, nil, err
			}
			d[k] = v
		}
		return d, p, nil
	case segValJSON:
		n, sz := binary.Uvarint(p)
		if sz <= 0 || n > uint64(len(p)-sz) {
			return nil, nil, errSegCorrupt
		}
		var v any
		if err := json.Unmarshal(p[sz:sz+int(n)], &v); err != nil {
			return nil, nil, errSegCorrupt
		}
		return v, p[sz+int(n):], nil
	default:
		return nil, nil, errSegCorrupt
	}
}

// groupCommitter coalesces concurrent Commit calls into shared sync
// rounds. A caller becomes the leader of the next round when none is
// running, syncs everything buffered so far, and wakes the followers whose
// appends that round covered; callers that arrive while a round is in
// flight wait for the round after it (theirs may have missed their bytes).
// The fsync latency itself is the commit window — no timers, no clocks, so
// the write path stays legal inside //lint:deterministic roots.
type groupCommitter struct {
	mu        sync.Mutex
	cond      sync.Cond // signalled on round completion; Wait under mu
	started   uint64    // sync rounds ever started
	completed uint64    // sync rounds finished
	err       error     // sticky first sync failure
}

func (g *groupCommitter) init() {
	g.cond.L = &g.mu
}

// syncTarget is the backend side of a group-commit round: syncForCommit
// must flush and fsync everything the backend has buffered at the moment
// it is called. It is a named single-method interface rather than a
// func() error parameter so the call graph stays exact — scionlint's
// interprocedural analyzers resolve a func-value call to every
// address-taken function with the same signature, which would smear
// engine-level lock acquisitions into the commit path.
type syncTarget interface {
	syncForCommit() error
}

// commit returns once a sync round that started after the caller's appends
// has completed.
func (g *groupCommitter) commit(t syncTarget) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	target := g.started + 1
	for g.completed < target {
		if g.started < target {
			// Lead the round that covers us.
			g.started++
			g.mu.Unlock()
			err := t.syncForCommit()
			g.mu.Lock()
			g.completed++
			if err != nil && g.err == nil {
				g.err = err
			}
			g.cond.Broadcast()
			continue
		}
		g.cond.Wait()
	}
	return g.err
}
