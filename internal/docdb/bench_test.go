package docdb

// BenchmarkDocDB* is the query-engine benchmark suite behind the repo's
// benchmark trajectory (BENCH_docdb.json, written by cmd/benchjson). The
// workload mirrors the paths_stats collection the paper's architecture
// accumulates: one document per (path, iteration) measurement with a
// monotonically increasing timestamp, a per-path identifier, and numeric
// latency/loss statistics. Sizes: 10k documents is one long campaign on the
// 35-AS SCIONLab world; 100k is the production-scale regime the ROADMAP
// targets.

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
)

// benchSizes are the collection sizes every benchmark runs at.
var benchSizes = []int{10_000, 100_000}

// ensureBenchIndexes installs the indexes the measurement layer maintains
// on paths_stats (kept in one place so the before/after trajectory runs the
// same setup).
func ensureBenchIndexes(col *Collection) {
	col.EnsureIndex("path_id")
	col.EnsureSortedIndex("avg_latency_ms")
	col.EnsureSortedIndex("timestamp_ms")
}

// benchDocs builds a deterministic measurement-shaped workload: n stats
// documents over n/200 distinct paths across 25 servers.
func benchDocs(n int) []Document {
	docs := make([]Document, 0, n)
	paths := n / 200
	if paths < 10 {
		paths = 10
	}
	for i := 0; i < n; i++ {
		docs = append(docs, Document{
			"_id":            fmt.Sprintf("s%d", i),
			"path_id":        fmt.Sprintf("2_%d", i%paths),
			"server_id":      i%25 + 1,
			"hops":           i%5 + 4,
			"timestamp_ms":   int64(i * 100),
			"avg_latency_ms": float64((i*7919)%2000)/10 + 5,
			"loss_pct":       float64(i % 101),
		})
	}
	return docs
}

// benchCollection loads n documents and installs the indexes the
// measurement layer maintains on paths_stats.
func benchCollection(b *testing.B, n int) *Collection {
	b.Helper()
	db := MustOpen()
	col := db.Collection("paths_stats")
	docs := benchDocs(n)
	for lo := 0; lo < len(docs); lo += 1000 {
		hi := lo + 1000
		if hi > len(docs) {
			hi = len(docs)
		}
		if err := col.InsertMany(docs[lo:hi]); err != nil {
			b.Fatal(err)
		}
	}
	ensureBenchIndexes(col)
	return col
}

func sizeName(n int) string { return fmt.Sprintf("n=%dk", n/1000) }

// benchBackends are the persistent storage backends the backend-labeled
// benchmarks compare. cmd/benchjson parses the "backend=<name>" path
// element into the trajectory's backend label.
var benchBackends = []string{BackendJSONL, BackendSegment}

// openBenchDB opens a fresh persistent database for one benchmark
// iteration.
func openBenchDB(b *testing.B, backend string, opts ...Option) *DB {
	b.Helper()
	path := filepath.Join(b.TempDir(), "bench.db")
	db, err := Open(append([]Option{WithPath(path), WithBackend(backend)}, opts...)...)
	if err != nil {
		b.Fatal(err)
	}
	return db
}

// insertBatches loads docs in the measurement runner's 1000-document
// batches.
func insertBatches(b *testing.B, col *Collection, docs []Document) {
	b.Helper()
	for lo := 0; lo < len(docs); lo += 1000 {
		hi := lo + 1000
		if hi > len(docs) {
			hi = len(docs)
		}
		if err := col.InsertMany(docs[lo:hi]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDocDBInsert measures batched insertion (the §4.2.2 multi-insert
// path) of 1000-document batches into an indexed collection. The unlabeled
// sub-runs keep the historical in-memory trajectory; the backend= sub-runs
// measure the same workload journaled through each storage backend,
// including the closing Flush (the runner's per-batch durability point).
func BenchmarkDocDBInsert(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(sizeName(n), func(b *testing.B) {
			docs := benchDocs(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				db := MustOpen()
				col := db.Collection("paths_stats")
				ensureBenchIndexes(col)
				b.StartTimer()
				insertBatches(b, col, docs)
			}
		})
	}
	for _, backend := range benchBackends {
		for _, n := range benchSizes {
			b.Run(fmt.Sprintf("backend=%s/%s", backend, sizeName(n)), func(b *testing.B) {
				docs := benchDocs(n)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					db := openBenchDB(b, backend)
					col := db.Collection("paths_stats")
					ensureBenchIndexes(col)
					b.StartTimer()
					insertBatches(b, col, docs)
					if err := db.Flush(); err != nil {
						b.Fatal(err)
					}
					b.StopTimer()
					if err := db.Close(); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
				}
			})
		}
	}
}

// BenchmarkDocDBLoad measures cold open + full replay of an n-document log
// — the monitor-restart path, and the headline number of the storage
// redesign: binary frame decoding (segment) versus per-line JSON decoding
// (jsonl) over identical document streams.
func BenchmarkDocDBLoad(b *testing.B) {
	for _, backend := range benchBackends {
		for _, n := range benchSizes {
			b.Run(fmt.Sprintf("backend=%s/%s", backend, sizeName(n)), func(b *testing.B) {
				path := filepath.Join(b.TempDir(), "bench.db")
				db, err := Open(WithPath(path), WithBackend(backend))
				if err != nil {
					b.Fatal(err)
				}
				insertBatches(b, db.Collection("paths_stats"), benchDocs(n))
				if err := db.Close(); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					db, err := Open(WithPath(path), WithBackend(backend))
					if err != nil {
						b.Fatal(err)
					}
					if db.Collection("paths_stats").Count() != n {
						b.Fatal("short replay")
					}
					b.StopTimer()
					if err := db.Close(); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
				}
			})
		}
	}
}

// BenchmarkDocDBShardedInsert measures concurrent batch writers spread over
// four collections — the workload the segment backend shards per collection
// while jsonl serializes every writer on one journal lock.
func BenchmarkDocDBShardedInsert(b *testing.B) {
	const collections, perCollection = 4, 4000
	for _, backend := range benchBackends {
		b.Run(fmt.Sprintf("backend=%s", backend), func(b *testing.B) {
			docs := benchDocs(perCollection)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				db := openBenchDB(b, backend)
				b.StartTimer()
				var wg sync.WaitGroup
				for w := 0; w < collections; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						insertBatches(b, db.Collection(fmt.Sprintf("shard%d", w)), docs)
					}(w)
				}
				wg.Wait()
				if err := db.Flush(); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if err := db.Close(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		})
	}
}

// BenchmarkDocDBGroupCommit measures synchronous-durability writers: every
// batch fsynced before it returns, concurrent batches coalescing into
// shared group-commit rounds.
func BenchmarkDocDBGroupCommit(b *testing.B) {
	const writers, batches, batchSize = 4, 10, 50
	docs := benchDocs(writers * batches * batchSize)
	for _, backend := range benchBackends {
		b.Run(fmt.Sprintf("backend=%s", backend), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				db := openBenchDB(b, backend, WithSyncPolicy(SyncGroupCommit))
				b.StartTimer()
				var wg sync.WaitGroup
				for w := 0; w < writers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						col := db.Collection("paths_stats")
						base := w * batches * batchSize
						for k := 0; k < batches; k++ {
							lo := base + k*batchSize
							if err := col.InsertMany(docs[lo : lo+batchSize]); err != nil {
								b.Error(err)
								return
							}
						}
					}(w)
				}
				wg.Wait()
				b.StopTimer()
				if err := db.Close(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		})
	}
}

// BenchmarkDocDBFindEq measures an indexed equality query: all samples of
// one path (the selection engine's per-path aggregation fetch).
func BenchmarkDocDBFindEq(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(sizeName(n), func(b *testing.B) {
			col := benchCollection(b, n)
			f := Eq("path_id", "2_7")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := col.Find(Query{Filter: f}); len(got) != 200 {
					b.Fatalf("got %d", len(got))
				}
			}
		})
	}
}

// BenchmarkDocDBFindRange measures a numeric range query on the latency
// field (an SLA-style filter: every measurement under 25 ms).
func BenchmarkDocDBFindRange(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(sizeName(n), func(b *testing.B) {
			col := benchCollection(b, n)
			f := And(Gte("avg_latency_ms", 5.0), Lt("avg_latency_ms", 25.0))
			want := 0
			for _, d := range benchDocs(n) {
				v := d["avg_latency_ms"].(float64)
				if v >= 5.0 && v < 25.0 {
					want++
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := col.Find(Query{Filter: f}); len(got) != want {
					b.Fatalf("got %d, want %d", len(got), want)
				}
			}
		})
	}
}

// BenchmarkDocDBTopK measures the sorted+limited query every latency
// dashboard runs: the 10 best (lowest mean latency) recent measurements.
func BenchmarkDocDBTopK(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(sizeName(n), func(b *testing.B) {
			col := benchCollection(b, n)
			q := Query{SortBy: "avg_latency_ms", Limit: 10}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := col.Find(q); len(got) != 10 {
					b.Fatalf("got %d", len(got))
				}
			}
		})
	}
}

// BenchmarkDocDBTopKFiltered measures top-K under a server filter, the
// "best paths to this destination" query of the selection engine.
func BenchmarkDocDBTopKFiltered(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(sizeName(n), func(b *testing.B) {
			col := benchCollection(b, n)
			q := Query{
				Filter: Eq("server_id", 3),
				SortBy: "avg_latency_ms", SortDesc: true, Limit: 10,
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := col.Find(q); len(got) != 10 {
					b.Fatalf("got %d", len(got))
				}
			}
		})
	}
}

// BenchmarkDocDBAggregate measures the mean-per-path aggregation the
// selection engine and the figure pipelines are built on.
func BenchmarkDocDBAggregate(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(sizeName(n), func(b *testing.B) {
			col := benchCollection(b, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := col.Aggregate(nil, "path_id", "avg_latency_ms")
				if len(res) == 0 {
					b.Fatal("no groups")
				}
			}
		})
	}
}
