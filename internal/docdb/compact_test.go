package docdb

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestCompactShrinksJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.jsonl")
	db, err := Open(WithPath(path))
	if err != nil {
		t.Fatal(err)
	}
	c := db.Collection("stats")
	// Generate history: inserts, updates and deletes.
	for i := 0; i < 200; i++ {
		if err := c.Insert(Document{"_id": fmt.Sprintf("d%d", i), "v": i}); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 5; round++ {
		c.Update(Lt("v", 100), Document{"touched": round})
	}
	c.Delete(Gte("v", 150))
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Errorf("compaction did not shrink: %d -> %d bytes", before.Size(), after.Size())
	}

	// Data intact in memory and the journal stays writable.
	if c.Count() != 150 {
		t.Fatalf("count %d after compact", c.Count())
	}
	if err := c.Insert(Document{"_id": "post-compact"}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Replay reproduces the full state including the post-compact insert.
	db2, err := Open(WithPath(path))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	c2 := db2.Collection("stats")
	if c2.Count() != 151 {
		t.Fatalf("replayed %d docs, want 151", c2.Count())
	}
	if d := c2.Get("d50"); d == nil || d["touched"] != 4.0 {
		t.Errorf("update lost in compaction: %v", d)
	}
	if c2.Get("d199") != nil {
		t.Error("deleted doc resurrected by compaction")
	}
	if c2.Get("post-compact") == nil {
		t.Error("post-compact insert lost")
	}
}

func TestCompactInMemoryFails(t *testing.T) {
	if err := MustOpen().Compact(); err == nil {
		t.Error("in-memory compact accepted")
	}
}

func TestCompactDroppedCollectionStaysGone(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.jsonl")
	db, err := Open(WithPath(path))
	if err != nil {
		t.Fatal(err)
	}
	db.Collection("tmp").Insert(Document{"_id": "x"})
	db.Collection("keep").Insert(Document{"_id": "y"})
	db.Drop("tmp")
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	db.Close()
	db2, err := Open(WithPath(path))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for _, n := range db2.CollectionNames() {
		if n == "tmp" {
			t.Error("dropped collection resurrected")
		}
	}
	if db2.Collection("keep").Get("y") == nil {
		t.Error("kept collection lost")
	}
}
