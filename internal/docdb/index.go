package docdb

import (
	"fmt"
	"math"
	"sort"
)

// Index is a hash index over one field: equality lookups consult the index
// instead of scanning the collection. This backs the §4.2.1 scalability
// requirement — "a non-relational database can easily store huge quantities
// of data and query them". Its ordered counterpart is sortedIndex
// (rangeindex.go), which serves range predicates and sorted scans.
type index struct {
	field string
	fp    *fieldPath
	// byValue maps the canonical rendering of a field value to document ids.
	byValue map[string][]string
}

func indexKey(v any) string {
	// Normalise numeric types so 6, 6.0, int64(6) — and 1e6 vs 1000000 —
	// share a bucket, in line with compareValues' cross-type equality.
	if f, ok := toFloat(v); ok {
		return "n:" + canonicalNumber(f)
	}
	return fmt.Sprintf("%T:%v", v, v)
}

// groupKey renders a value for user-visible grouping (Aggregate). It shares
// canonicalNumber with indexKey so numerically-equal values always land in
// the same group, whatever Go type they arrived as.
func groupKey(v any) string {
	if f, ok := toFloat(v); ok {
		return canonicalNumber(f)
	}
	return fmt.Sprint(v)
}

// EnsureIndex creates a hash index on a field (idempotent). Existing
// documents are indexed immediately; inserts, updates and deletes maintain
// the index from then on.
func (c *Collection) EnsureIndex(field string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.indexes == nil {
		c.indexes = map[string]*index{}
	}
	if _, ok := c.indexes[field]; ok {
		return
	}
	idx := &index{field: field, fp: compilePath(field), byValue: map[string][]string{}}
	for _, d := range c.docs {
		if v, ok := d.lookupFP(idx.fp); ok {
			k := indexKey(v)
			idx.byValue[k] = append(idx.byValue[k], d.ID())
		}
	}
	c.indexes[field] = idx
}

// Indexes lists hash-indexed fields in sorted order.
func (c *Collection) Indexes() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.indexes))
	for f := range c.indexes {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// indexAddLocked/indexRemoveLocked maintain hash and ordered indexes;
// callers hold c.mu (the Locked suffix is the lockcheck calling convention).
func (c *Collection) indexAddLocked(d Document) {
	for _, idx := range c.indexes {
		if v, ok := d.lookupFP(idx.fp); ok {
			k := indexKey(v)
			idx.byValue[k] = append(idx.byValue[k], d.ID())
		}
	}
	for _, si := range c.sorted {
		si.addLocked(d)
	}
}

func (c *Collection) indexRemoveLocked(d Document) {
	for _, idx := range c.indexes {
		v, ok := d.lookupFP(idx.fp)
		if !ok {
			continue
		}
		k := indexKey(v)
		ids := idx.byValue[k]
		for i, id := range ids {
			if id == d.ID() {
				idx.byValue[k] = append(ids[:i], ids[i+1:]...)
				break
			}
		}
		if len(idx.byValue[k]) == 0 {
			delete(idx.byValue, k)
		}
	}
	for _, si := range c.sorted {
		si.removeLocked(d)
	}
}

// maybeMergeSortedLocked settles every ordered index (sorted pending,
// thresholds folded) while the mutation still holds the write lock.
func (c *Collection) maybeMergeSortedLocked() {
	for _, si := range c.sorted {
		si.settleLocked()
	}
}

// lookupIndexedLocked returns candidate documents via a hash index when the
// filter is (or begins with) an equality on an indexed field. The second
// result is false when no index applies and the caller must scan. Callers
// hold c.mu. Results are in storage order — the engine's contract for
// unsorted queries (see rangeLocked). Bucket order alone is not enough: an
// update re-appends the document's id, moving it to the bucket's tail while
// its storage position stays put.
func (c *Collection) lookupIndexedLocked(f Filter) ([]Document, bool) {
	eq, ok := extractEq(f)
	if !ok {
		return nil, false
	}
	idx, ok := c.indexes[eq.field]
	if !ok {
		return nil, false
	}
	ids := idx.byValue[indexKey(eq.value)]
	positions := make([]int, 0, len(ids))
	for _, id := range ids {
		if i, ok := c.byID[id]; ok {
			positions = append(positions, i)
		}
	}
	sort.Ints(positions) // buckets are append-ordered: usually already sorted
	out := make([]Document, len(positions))
	for i, p := range positions {
		out[i] = c.docs[p]
	}
	return out, true
}

// extractEq finds a usable equality predicate: a bare Eq, or an Eq inside a
// top-level And (the remaining conjuncts are re-checked by Match).
func extractEq(f Filter) (cmpFilter, bool) {
	switch t := unwrapFilter(f).(type) {
	case cmpFilter:
		if t.op == opEq {
			return t, true
		}
	case andFilter:
		for _, sub := range t {
			if eq, ok := extractEq(sub); ok {
				return eq, ok
			}
		}
	}
	return cmpFilter{}, false
}

// Aggregation -----------------------------------------------------------

// AggResult summarises one group of an aggregation.
type AggResult struct {
	Key   string
	Count int
	Sum   float64
	Mean  float64
	Min   float64
	Max   float64
}

// Aggregate groups matching documents by the groupField's canonical value
// and reduces valueField numerically per group (documents without a numeric
// valueField count toward Count only). Results are sorted by key. This is
// what the selection engine's mean-per-path queries and the figures' group
// summaries build on. It iterates zero-copy under the read lock: no
// document is cloned.
func (c *Collection) Aggregate(f Filter, groupField, valueField string) []AggResult {
	gfp := compilePath(groupField)
	vfp := compilePath(valueField)
	groups := map[string]*AggResult{}
	c.ForEach(Query{Filter: f}, func(d Document) bool {
		gv, ok := d.lookupFP(gfp)
		if !ok {
			return true
		}
		key := groupKey(gv)
		g := groups[key]
		if g == nil {
			g = &AggResult{Key: key, Min: math.Inf(1), Max: math.Inf(-1)}
			groups[key] = g
		}
		g.Count++
		if v, ok := d.lookupFP(vfp); ok {
			if x, isNum := toFloat(v); isNum {
				g.Sum += x
				g.Min = math.Min(g.Min, x)
				g.Max = math.Max(g.Max, x)
			}
		}
		return true
	})
	out := make([]AggResult, 0, len(groups))
	for _, g := range groups {
		if g.Count > 0 && !math.IsInf(g.Min, 1) {
			g.Mean = g.Sum / float64(g.Count)
		} else {
			g.Min, g.Max = 0, 0
		}
		out = append(out, *g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
