package docdb

import (
	"os"
	"path/filepath"
	"testing"
)

func TestJournalPersistAndReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.jsonl")
	db, err := Open(WithPath(path))
	if err != nil {
		t.Fatal(err)
	}
	c := db.Collection("paths")
	if err := c.InsertMany([]Document{
		{"_id": "1_1", "hops": 6},
		{"_id": "1_2", "hops": 7},
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(WithPath(path))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	c2 := db2.Collection("paths")
	if c2.Count() != 2 {
		t.Fatalf("replayed %d docs, want 2", c2.Count())
	}
	d := c2.Get("1_2")
	// JSON round trip turns ints into float64, like any JSON store.
	if d == nil || d["hops"] != 7.0 {
		t.Errorf("replayed doc: %v", d)
	}
}

func TestJournalReplayDelete(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.jsonl")
	db, err := Open(WithPath(path))
	if err != nil {
		t.Fatal(err)
	}
	c := db.Collection("paths")
	if err := c.InsertMany([]Document{{"_id": "a"}, {"_id": "b"}}); err != nil {
		t.Fatal(err)
	}
	c.Delete(Eq("_id", "a"))
	db.Close()

	db2, err := Open(WithPath(path))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Collection("paths").Get("a") != nil {
		t.Error("deleted doc resurrected")
	}
	if db2.Collection("paths").Get("b") == nil {
		t.Error("surviving doc lost")
	}
}

func TestJournalReplayUpdateAndDrop(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.jsonl")
	db, err := Open(WithPath(path))
	if err != nil {
		t.Fatal(err)
	}
	db.Collection("paths").Insert(Document{"_id": "a", "v": 1})
	db.Collection("paths").Update(Eq("_id", "a"), Document{"v": 2})
	db.Collection("tmp").Insert(Document{"_id": "x"})
	db.Drop("tmp")
	db.Close()

	db2, err := Open(WithPath(path))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if d := db2.Collection("paths").Get("a"); d == nil || d["v"] != 2.0 {
		t.Errorf("update not replayed: %v", d)
	}
	names := db2.CollectionNames()
	for _, n := range names {
		if n == "tmp" {
			t.Error("dropped collection resurrected")
		}
	}
}

func TestJournalTruncatedTailTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.jsonl")
	db, err := Open(WithPath(path))
	if err != nil {
		t.Fatal(err)
	}
	db.Collection("paths").Insert(Document{"_id": "good"})
	db.Close()

	// Simulate a crash mid-append: garbage partial line at the tail.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"insert","c":"paths","doc":{"_id":"tr`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	db2, err := Open(WithPath(path))
	if err != nil {
		t.Fatalf("truncated journal rejected: %v", err)
	}
	defer db2.Close()
	if db2.Collection("paths").Get("good") == nil {
		t.Error("good doc lost")
	}
	if db2.Collection("paths").Count() != 1 {
		t.Errorf("count %d, want 1", db2.Collection("paths").Count())
	}
}

func TestJournalFlush(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.jsonl")
	db, err := Open(WithPath(path))
	if err != nil {
		t.Fatal(err)
	}
	db.Collection("paths").Insert(Document{"_id": "a"})
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	// Without Close, a reader must already see the flushed insert.
	db2, err := Open(WithPath(path))
	if err != nil {
		t.Fatal(err)
	}
	if db2.Collection("paths").Get("a") == nil {
		t.Error("flushed doc not visible")
	}
	db2.Close()
	db.Close()
}

func TestInMemoryFlushCloseNoop(t *testing.T) {
	db := MustOpen()
	if err := db.Flush(); err != nil {
		t.Error(err)
	}
	if err := db.Close(); err != nil {
		t.Error(err)
	}
}

func TestOpenBadDir(t *testing.T) {
	if _, err := Open(WithPath(filepath.Join(t.TempDir(), "no", "such", "dir", "db.jsonl"))); err == nil {
		t.Error("bad path accepted")
	}
}
