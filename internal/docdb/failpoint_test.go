package docdb

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// testFailpoint is a programmable Failpoint: failWrite makes the next
// BeforeWrite on a collection fail, keepReplay caps how many journal
// entries replay applies (-1 = all).
type testFailpoint struct {
	mu         sync.Mutex
	failOn     string // collection; "" = never
	keepReplay int
	writes     []string // "<collection>/<op>/<batch>" log
	replayed   int
}

var errInjected = errors.New("injected")

func (f *testFailpoint) BeforeWrite(collection, op string, batch int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writes = append(f.writes, collection+"/"+op)
	_ = batch
	if collection == f.failOn {
		return errInjected
	}
	return nil
}

func (f *testFailpoint) ReplayEntry(n int, op string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.replayed++
	return f.keepReplay < 0 || n < f.keepReplay
}

// TestFailpointBeforeWriteAtomic: a failed batch leaves the collection, its
// indexes and the journal exactly as they were — for both insert and upsert.
func TestFailpointBeforeWriteAtomic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.jsonl")
	db, err := Open(WithPath(path))
	if err != nil {
		t.Fatal(err)
	}
	col := db.Collection("stats")
	col.EnsureIndex("tag")
	if err := col.Insert(Document{"_id": "keep", "tag": "t1", "v": 1}); err != nil {
		t.Fatal(err)
	}
	gen := col.Generation()

	fp := &testFailpoint{failOn: "stats", keepReplay: -1}
	db.SetFailpoint(fp)

	err = col.InsertMany([]Document{{"_id": "a", "tag": "t2"}, {"_id": "b", "tag": "t2"}})
	if !errors.Is(err, errInjected) {
		t.Fatalf("insert under failpoint: err = %v, want injected", err)
	}
	if _, err := col.UpsertMany([]Document{{"_id": "keep", "tag": "t9"}}); !errors.Is(err, errInjected) {
		t.Fatalf("upsert under failpoint: err = %v, want injected", err)
	}
	if n := col.Count(); n != 1 {
		t.Fatalf("collection has %d documents after failed batches, want 1", n)
	}
	if got := col.Find(Query{Filter: Eq("tag", "t2")}); len(got) != 0 {
		t.Fatalf("index knows %d documents the failed batch never stored", len(got))
	}
	if col.Generation() != gen {
		t.Fatal("failed batches bumped the collection generation")
	}
	// Writes on other collections keep working with the failpoint installed.
	if err := db.Collection("other").Insert(Document{"_id": "x"}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Nothing of the failed batches was journaled: a reopened database shows
	// exactly the surviving state.
	re, err := Open(WithPath(path))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if n := re.Collection("stats").Count(); n != 1 {
		t.Fatalf("replayed collection has %d documents, want 1", n)
	}
	if doc := re.Collection("stats").Get("keep"); doc == nil || doc["tag"] != "t1" {
		t.Fatalf("replayed document = %v, want the pre-fault version", doc)
	}
	if data, err := os.ReadFile(path); err != nil {
		t.Fatal(err)
	} else if strings.Contains(string(data), `"t2"`) || strings.Contains(string(data), `"t9"`) {
		t.Fatalf("journal contains data from aborted batches:\n%s", data)
	}
}

// TestFailpointReplayTruncation: ReplayEntry returning false stops replay as
// if the journal ended there, and the database stays fully usable after.
func TestFailpointReplayTruncation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.jsonl")
	db, err := Open(WithPath(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"e0", "e1", "e2", "e3"} {
		if err := db.Collection("c").Insert(Document{"_id": id}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	fp := &testFailpoint{keepReplay: 2}
	re, err := Open(WithPath(path), WithFailpoint(fp))
	if err != nil {
		t.Fatal(err)
	}
	if fp.replayed != 3 { // entries 0 and 1 applied; consulting entry 2 stopped replay
		t.Fatalf("ReplayEntry consulted %d times, want 3", fp.replayed)
	}
	col := re.Collection("c")
	if n := col.Count(); n != 2 {
		t.Fatalf("truncated replay applied %d documents, want 2", n)
	}
	if col.Get("e0") == nil || col.Get("e1") == nil || col.Get("e2") != nil {
		t.Fatal("truncated replay kept the wrong entries")
	}
	// The lost tail is re-insertable and BeforeWrite is armed from the open.
	if err := col.Insert(Document{"_id": "e2"}); err != nil {
		t.Fatal(err)
	}
	if len(fp.writes) == 0 || fp.writes[len(fp.writes)-1] != "c/insert" {
		t.Fatalf("BeforeWrite log %v does not record the post-open insert", fp.writes)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}

	// The journal itself was never rewritten: a plain reopen sees all five
	// entries (e2 twice — the replayed original and the re-insert; first one
	// wins on duplicate _id).
	full, err := Open(WithPath(path))
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	if n := full.Collection("c").Count(); n != 4 {
		t.Fatalf("untruncated reopen has %d documents, want 4", n)
	}
}

// TestOpenWithNilFailpoint: a nil failpoint is exactly a plain Open.
func TestOpenWithNilFailpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.jsonl")
	db, err := Open(WithPath(path), WithFailpoint(nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Collection("c").Insert(Document{"_id": "a"}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(WithPath(path), WithFailpoint(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Collection("c").Get("a") == nil {
		t.Fatal("document lost across nil-failpoint reopen")
	}
}
