package docdb

import (
	"fmt"
	"sort"
)

// applyReplay applies a backend log record without re-journaling it.
// Backends call it (via Open) once per replayed record.
func (db *DB) applyReplay(rec Record) {
	switch rec.Op {
	case "insert":
		c := db.Collection(rec.Collection)
		c.mu.Lock()
		id := rec.Doc.ID()
		if i, dup := c.byID[id]; dup {
			if rec.Replace {
				c.docs[i] = rec.Doc
				c.bumpLocked(true)
			}
			c.mu.Unlock()
			return
		}
		c.byID[id] = len(c.docs)
		c.docs = append(c.docs, rec.Doc)
		c.bumpLocked(false)
		c.mu.Unlock()
	case "delete":
		c := db.Collection(rec.Collection)
		c.mu.Lock()
		if i, ok := c.byID[rec.ID]; ok {
			c.docs = append(c.docs[:i], c.docs[i+1:]...)
			c.byID = make(map[string]int, len(c.docs))
			for j, d := range c.docs {
				c.byID[d.ID()] = j
			}
			c.bumpLocked(true)
		}
		c.mu.Unlock()
	case "drop":
		db.mu.Lock()
		delete(db.collections, rec.Collection)
		db.mu.Unlock()
	}
}

// backendRef snapshots the backend pointer under the DB lock. Concurrent
// Close swaps the pointer; the backend's own locks then serialize appends
// against flush and close, so a holder of a stale reference appends into a
// closed backend's error state rather than racing on the pointer.
func (db *DB) backendRef() Backend {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.backend
}

// Backend reports the storage backend name ("jsonl", "segment") or "" for
// an in-memory database.
func (db *DB) Backend() string {
	b := db.backendRef()
	if b == nil {
		return ""
	}
	return b.Name()
}

// Flush forces buffered log writes to disk. The measurement runner calls
// it after each per-destination batch insert.
func (db *DB) Flush() error {
	b := db.backendRef()
	if b == nil {
		return nil
	}
	return b.Flush()
}

// Close flushes and closes the backend (no-op for in-memory databases).
func (db *DB) Close() error {
	db.mu.Lock()
	b := db.backend
	db.backend = nil
	db.mu.Unlock()
	if b == nil {
		return nil
	}
	return b.Close()
}

// Compact rewrites the log to contain exactly the current state: one
// insert per live document, dropping superseded updates, deletes and
// dropped collections. Long-running monitors call it to keep the log
// proportional to the data rather than to the operation history.
//
// How much the database blocks depends on the backend. A
// CollectionCheckpointer (segment) compacts online: one collection at a
// time under that collection's read lock, so queries everywhere and
// writers on other collections proceed throughout. A LogCheckpointer
// (jsonl) holds the DB write lock across the whole snapshot + swap — all a
// single-file log can offer. Either way a crash mid-compaction leaves a
// consistent log: rewrites go through temp files and atomic renames.
func (db *DB) Compact() error {
	b := db.backendRef()
	if b == nil {
		return fmt.Errorf("docdb: compact: in-memory database has no backend")
	}
	switch cp := b.(type) {
	case CollectionCheckpointer:
		return db.compactPerCollection(b, cp)
	case LogCheckpointer:
		return db.compactWholeLog(cp)
	default:
		return fmt.Errorf("docdb: compact: backend %s supports no checkpoint", b.Name())
	}
}

// compactWholeLog is the stop-the-world path: the DB write-lock is held for
// the whole snapshot + swap. Writers hold the read-lock across mutation +
// append (see InsertMany), so every committed operation is either in the
// snapshot or in the new log.
func (db *DB) compactWholeLog(cp LogCheckpointer) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return cp.CheckpointLog(func(emit func(Record) error) error {
		names := make([]string, 0, len(db.collections))
		for n := range db.collections {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, name := range names {
			if err := db.collections[name].emitSnapshot(emit); err != nil {
				return err
			}
		}
		return nil
	})
}

// compactPerCollection is the online path: each collection is checkpointed
// under its own read lock (writers to it wait, nothing else does), then
// shards of dropped collections are swept under the DB read lock (which
// excludes Drop and collection creation, both of which need the write
// lock). A collection created or dropped between the name snapshot and its
// checkpoint is simply skipped or swept respectively — its log records are
// still in its shard, which is correct, just not yet compacted.
func (db *DB) compactPerCollection(b Backend, cp CollectionCheckpointer) error {
	// Surface sticky append errors first: checkpointing a shard whose
	// recent appends were lost would persist a state the caller was never
	// told about.
	if err := b.Flush(); err != nil {
		return err
	}
	for _, name := range db.CollectionNames() {
		db.mu.RLock()
		c := db.collections[name]
		if c == nil {
			db.mu.RUnlock()
			continue
		}
		c.mu.RLock()
		err := cp.CheckpointCollection(name, c.emitSnapshotLocked)
		c.mu.RUnlock()
		db.mu.RUnlock()
		if err != nil {
			return err
		}
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	return cp.DropStaleShards(func(name string) bool {
		_, ok := db.collections[name]
		return ok
	})
}

// emitSnapshot emits one insert record per live document under the
// collection read lock.
func (c *Collection) emitSnapshot(emit func(Record) error) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.emitSnapshotLocked(emit)
}

// emitSnapshotLocked is emitSnapshot for callers already holding at least
// c.mu.RLock.
func (c *Collection) emitSnapshotLocked(emit func(Record) error) error {
	for _, d := range c.docs {
		if err := emit(Record{Op: "insert", Collection: c.name, Doc: d}); err != nil {
			return err
		}
	}
	return nil
}
