package docdb

// The backend conformance suite: every Backend implementation must pass
// every check here against the same operation scripts. Each Test* function
// below runs once per entry in conformanceBackends, so adding a backend to
// that slice (and to openBackend) is all it takes to put it under the full
// contract — replay equivalence against an in-memory oracle, crash and
// torn-tail recovery, failpoint semantics, generation counters, compaction
// and concurrent commit.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

var conformanceBackends = []string{BackendJSONL, BackendSegment}

// conformancePath returns a fresh persistence path appropriate for the
// backend (file for jsonl, directory for segment — created lazily by Open).
func conformancePath(t testing.TB, backend string) string {
	t.Helper()
	if backend == BackendSegment {
		return filepath.Join(t.TempDir(), "db.seg")
	}
	return filepath.Join(t.TempDir(), "db.jsonl")
}

// forEachBackend runs fn as one subtest per backend.
func forEachBackend(t *testing.T, fn func(t *testing.T, backend, path string)) {
	t.Helper()
	for _, backend := range conformanceBackends {
		t.Run(backend, func(t *testing.T) {
			fn(t, backend, conformancePath(t, backend))
		})
	}
}

// mustOpenBackend opens a persistent database on the backend under test.
func mustOpenBackend(t testing.TB, backend, path string, extra ...Option) *DB {
	t.Helper()
	db, err := Open(append([]Option{WithPath(path), WithBackend(backend)}, extra...)...)
	if err != nil {
		t.Fatalf("open %s %s: %v", backend, path, err)
	}
	return db
}

// snapshotJSON renders the database as collection -> id -> canonical JSON.
// JSON is the comparison domain on purpose: replay turns ints into float64
// (jsonl) or int64 (segment) while the in-memory oracle holds int, and
// canonical encoding (sorted keys, 7 and 7.0 both rendering "7") erases
// exactly that representational difference and nothing else.
func snapshotJSON(t testing.TB, db *DB) map[string]map[string]string {
	t.Helper()
	out := make(map[string]map[string]string)
	for _, name := range db.CollectionNames() {
		docs := db.Collection(name).Find(Query{})
		if len(docs) == 0 {
			continue
		}
		m := make(map[string]string, len(docs))
		for _, d := range docs {
			b, err := json.Marshal(d)
			if err != nil {
				t.Fatalf("marshal %s/%s: %v", name, d.ID(), err)
			}
			m[d.ID()] = string(b)
		}
		out[name] = m
	}
	return out
}

// diffJSONSnapshots fails the test at the first difference.
func diffJSONSnapshots(t testing.TB, got, want map[string]map[string]string) {
	t.Helper()
	for name, w := range want {
		g := got[name]
		if len(g) != len(w) {
			t.Fatalf("collection %s: %d documents, want %d", name, len(g), len(w))
		}
		for id, wdoc := range w {
			if g[id] != wdoc {
				t.Fatalf("collection %s doc %s:\n  got  %s\n  want %s", name, id, g[id], wdoc)
			}
		}
	}
	for name := range got {
		if _, ok := want[name]; !ok {
			t.Fatalf("collection %s present, want absent", name)
		}
	}
}

// conformanceScript applies a fixed mixed-operation workload: batch inserts
// with every value shape the measurement layer stores (and a few it
// doesn't), upserts, updates, deletes, a dropped collection and a
// re-created one.
func conformanceScript(t testing.TB, db *DB) {
	t.Helper()
	stats := db.Collection("stats")
	if err := stats.InsertMany([]Document{
		{"_id": "s1", "hops": 6, "latency": 12.5, "alive": true, "note": nil},
		{"_id": "s2", "hops": 7, "latency": 9.25, "alive": false,
			"tags": []string{"up", "ipv4"}, "mixed": []any{1, "two", 3.5, nil}},
		{"_id": "s3", "nested": Document{"as": "17-ffaa:1:1", "ifaces": []any{1, 2}},
			"big": int64(1) << 40, "neg": -42},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := stats.UpsertMany([]Document{
		{"_id": "s2", "hops": 8, "latency": 9.0},
		{"_id": "s4", "hops": 5},
	}); err != nil {
		t.Fatal(err)
	}
	if n := stats.Update(Eq("_id", "s1"), Document{"latency": 13.0}); n != 1 {
		t.Fatalf("update matched %d, want 1", n)
	}
	if n := stats.Delete(Eq("_id", "s3")); n != 1 {
		t.Fatalf("delete matched %d, want 1", n)
	}

	tmp := db.Collection("scratch")
	if err := tmp.Insert(Document{"_id": "t1", "x": 1}); err != nil {
		t.Fatal(err)
	}
	db.Drop("scratch")

	prog := db.Collection("progress")
	if err := prog.Insert(Document{"_id": "p1", "done": 3, "of": 10}); err != nil {
		t.Fatal(err)
	}
}

// TestConformanceReplayEquivalence: after a mixed workload, close + reopen
// must reconstruct exactly the state an in-memory database reaches from the
// same script, and a second reopen must be a fixed point.
func TestConformanceReplayEquivalence(t *testing.T) {
	forEachBackend(t, func(t *testing.T, backend, path string) {
		oracle := MustOpen()
		conformanceScript(t, oracle)
		want := snapshotJSON(t, oracle)

		db := mustOpenBackend(t, backend, path)
		conformanceScript(t, db)
		diffJSONSnapshots(t, snapshotJSON(t, db), want)
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}

		for round := 0; round < 2; round++ {
			db, err := Open(WithPath(path), WithBackend(backend))
			if err != nil {
				t.Fatalf("reopen %d: %v", round, err)
			}
			diffJSONSnapshots(t, snapshotJSON(t, db), want)
			if db.Backend() != backend {
				t.Fatalf("backend %q, want %q", db.Backend(), backend)
			}
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
		}

		// Auto-detection must resolve the existing on-disk state to the same
		// backend without being told.
		db2, err := Open(WithPath(path))
		if err != nil {
			t.Fatal(err)
		}
		defer db2.Close()
		if db2.Backend() != backend {
			t.Fatalf("auto-detected %q, want %q", db2.Backend(), backend)
		}
		diffJSONSnapshots(t, snapshotJSON(t, db2), want)
	})
}

// damageTail simulates a crash's partial final write: bytes of a record
// that never finished reaching the log.
func damageTail(t *testing.T, backend, path string) {
	t.Helper()
	target := path
	if backend == BackendSegment {
		entries, err := os.ReadDir(path)
		if err != nil {
			t.Fatal(err)
		}
		target = ""
		for _, e := range entries {
			if e.Type().IsRegular() {
				target = filepath.Join(path, e.Name())
				break
			}
		}
		if target == "" {
			t.Fatal("no shard file to damage")
		}
	}
	f, err := os.OpenFile(target, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// A plausible torn suffix for either format: for jsonl an unterminated
	// JSON prefix, for segment a frame header whose payload never arrived.
	if _, err := f.Write([]byte(`{"op":"insert","c":"stats","doc":{"_id":"torn`)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestConformanceTornTailRecovery: a physically torn tail is dropped on
// replay, the damage is cut off the file, and — the regression the backend
// split fixed for jsonl — appends after recovery never merge into damaged
// bytes: a second reopen still sees everything.
func TestConformanceTornTailRecovery(t *testing.T) {
	forEachBackend(t, func(t *testing.T, backend, path string) {
		db := mustOpenBackend(t, backend, path)
		if err := db.Collection("stats").InsertMany([]Document{
			{"_id": "a", "v": 1}, {"_id": "b", "v": 2},
		}); err != nil {
			t.Fatal(err)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
		damageTail(t, backend, path)

		db2 := mustOpenBackend(t, backend, path)
		if n := db2.Collection("stats").Count(); n != 2 {
			t.Fatalf("after torn-tail reopen: %d docs, want 2", n)
		}
		// Write after recovery, then prove a third replay sees old + new.
		if err := db2.Collection("stats").Insert(Document{"_id": "c", "v": 3}); err != nil {
			t.Fatal(err)
		}
		if err := db2.Close(); err != nil {
			t.Fatal(err)
		}
		db3 := mustOpenBackend(t, backend, path)
		defer db3.Close()
		for _, id := range []string{"a", "b", "c"} {
			if db3.Collection("stats").Get(id) == nil {
				t.Fatalf("doc %s lost after write-past-torn-tail reopen", id)
			}
		}
	})
}

// stopAfterFailpoint stops replay after n records and rejects nothing else.
type stopAfterFailpoint struct{ n int }

func (s *stopAfterFailpoint) BeforeWrite(string, string, int) error { return nil }
func (s *stopAfterFailpoint) ReplayEntry(n int, _ string) bool      { return n < s.n }

// logBytes measures the persisted log: the file size for jsonl, the sorted
// sum of shard sizes for segment.
func logBytes(t testing.TB, path string) int64 {
	t.Helper()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if !st.IsDir() {
		return st.Size()
	}
	var total int64
	entries, err := os.ReadDir(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		fi, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		total += fi.Size()
	}
	return total
}

// TestConformanceFailpointReplayStop: an injected replay stop yields exactly
// the stopped-at prefix of the log and leaves the files untouched, so the
// next (un-injected) open still sees everything — the chaos harness's crash
// model depends on both halves.
func TestConformanceFailpointReplayStop(t *testing.T) {
	forEachBackend(t, func(t *testing.T, backend, path string) {
		db := mustOpenBackend(t, backend, path)
		col := db.Collection("stats")
		for i := 0; i < 6; i++ {
			if err := col.Insert(Document{"_id": fmt.Sprintf("d%d", i), "i": i}); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
		before := logBytes(t, path)

		db2 := mustOpenBackend(t, backend, path, WithFailpoint(&stopAfterFailpoint{n: 4}))
		if n := db2.Collection("stats").Count(); n != 4 {
			t.Fatalf("stopped replay applied %d docs, want 4", n)
		}
		_ = db2 // abandoned without Close, like a crashed process
		if after := logBytes(t, path); after != before {
			t.Fatalf("injected stop changed the log: %d -> %d bytes", before, after)
		}

		db3 := mustOpenBackend(t, backend, path)
		defer db3.Close()
		if n := db3.Collection("stats").Count(); n != 6 {
			t.Fatalf("after injected stop, clean reopen has %d docs, want 6", n)
		}
	})
}

// TestConformanceGenerationCounters: replay drives the same generation
// machinery as live writes — inserts bump the generation, replayed deletes
// are destructive (rewrite generation advances), and generations keep
// moving after reopen.
func TestConformanceGenerationCounters(t *testing.T) {
	forEachBackend(t, func(t *testing.T, backend, path string) {
		db := mustOpenBackend(t, backend, path)
		col := db.Collection("stats")
		if err := col.InsertMany([]Document{{"_id": "a"}, {"_id": "b"}}); err != nil {
			t.Fatal(err)
		}
		if n := col.Delete(Eq("_id", "a")); n != 1 {
			t.Fatal("delete missed")
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}

		db2 := mustOpenBackend(t, backend, path)
		defer db2.Close()
		col2 := db2.Collection("stats")
		gen, rew := col2.Generation(), col2.RewriteGeneration()
		if gen == 0 {
			t.Fatal("replayed collection has zero generation")
		}
		if rew == 0 {
			t.Fatal("replayed delete did not advance the rewrite generation")
		}
		if err := col2.Insert(Document{"_id": "c"}); err != nil {
			t.Fatal(err)
		}
		if col2.Generation() <= gen {
			t.Fatalf("generation stuck after replay: %d -> %d", gen, col2.Generation())
		}
		if col2.RewriteGeneration() != rew {
			t.Fatal("plain insert advanced the rewrite generation")
		}
	})
}

// TestConformanceCompact: compaction shrinks the log, preserves the exact
// state across reopen, and a dropped collection stays gone afterwards.
func TestConformanceCompact(t *testing.T) {
	forEachBackend(t, func(t *testing.T, backend, path string) {
		db := mustOpenBackend(t, backend, path)
		col := db.Collection("stats")
		for round := 0; round < 20; round++ {
			if _, err := col.UpsertMany([]Document{
				{"_id": "hot", "round": round, "pad": "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"},
			}); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Collection("gone").Insert(Document{"_id": "g1"}); err != nil {
			t.Fatal(err)
		}
		db.Drop("gone")
		want := snapshotJSON(t, db)

		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
		before := logBytes(t, path)
		if err := db.Compact(); err != nil {
			t.Fatal(err)
		}
		after := logBytes(t, path)
		if after >= before {
			t.Fatalf("compact did not shrink the log: %d -> %d bytes", before, after)
		}
		diffJSONSnapshots(t, snapshotJSON(t, db), want)
		// The log must stay appendable after the swap.
		if err := col.Insert(Document{"_id": "post", "v": 1}); err != nil {
			t.Fatal(err)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}

		db2 := mustOpenBackend(t, backend, path)
		defer db2.Close()
		if db2.Collection("stats").Get("post") == nil {
			t.Fatal("post-compact insert lost")
		}
		for _, name := range db2.CollectionNames() {
			if name == "gone" {
				t.Fatal("dropped collection resurrected by compaction")
			}
		}
		if got := db2.Collection("stats").Get("hot"); got == nil || got["round"] != canonicalRound(backend) {
			t.Fatalf("hot doc after compact+reopen: %v", got)
		}
	})
}

// canonicalRound is the replayed representation of the final round number
// (19): float64 through JSON, int64 through the binary codec.
func canonicalRound(backend string) any {
	if backend == BackendSegment {
		return int64(19)
	}
	return 19.0
}

// failNthWrite fails the nth BeforeWrite call with an injected error.
type failNthWrite struct {
	mu    sync.Mutex
	calls int
	fail  int
}

func (f *failNthWrite) BeforeWrite(string, string, int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	if f.calls == f.fail {
		return fmt.Errorf("injected write fault")
	}
	return nil
}
func (f *failNthWrite) ReplayEntry(int, string) bool { return true }

// TestConformanceWriteFaultAtomicity: a batch aborted by BeforeWrite leaves
// no trace — not in memory, and not in the log either (the reopen check).
func TestConformanceWriteFaultAtomicity(t *testing.T) {
	forEachBackend(t, func(t *testing.T, backend, path string) {
		db := mustOpenBackend(t, backend, path, WithFailpoint(&failNthWrite{fail: 2}))
		col := db.Collection("stats")
		if err := col.InsertMany([]Document{{"_id": "ok1"}, {"_id": "ok2"}}); err != nil {
			t.Fatal(err)
		}
		if err := col.InsertMany([]Document{{"_id": "bad1"}, {"_id": "bad2"}}); err == nil {
			t.Fatal("injected write fault did not surface")
		}
		if err := col.Insert(Document{"_id": "ok3"}); err != nil {
			t.Fatal(err)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}

		db2 := mustOpenBackend(t, backend, path)
		defer db2.Close()
		col2 := db2.Collection("stats")
		if n := col2.Count(); n != 3 {
			t.Fatalf("replayed %d docs, want 3", n)
		}
		if col2.Get("bad1") != nil || col2.Get("bad2") != nil {
			t.Fatal("aborted batch leaked into the log")
		}
	})
}

// TestConformanceGroupCommitConcurrent: many writers on many collections
// under SyncGroupCommit — every committed batch must be in the log, and the
// group committer must not deadlock or drop commits under contention.
func TestConformanceGroupCommitConcurrent(t *testing.T) {
	forEachBackend(t, func(t *testing.T, backend, path string) {
		db := mustOpenBackend(t, backend, path, WithSyncPolicy(SyncGroupCommit))
		const writers, perWriter = 4, 8
		var wg sync.WaitGroup
		errs := make(chan error, writers)
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				col := db.Collection(fmt.Sprintf("col%d", w%2))
				for i := 0; i < perWriter; i++ {
					if err := col.Insert(Document{"_id": fmt.Sprintf("w%d-%d", w, i), "i": i}); err != nil {
						errs <- err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		// Every Insert returned after its group-commit round: the records are
		// durable now, with no Flush or Close — reopen the abandoned log.
		db2 := mustOpenBackend(t, backend, path)
		defer db2.Close()
		total := 0
		for _, name := range db2.CollectionNames() {
			total += db2.Collection(name).Count()
		}
		if total != writers*perWriter {
			t.Fatalf("group-committed %d docs, replayed %d", writers*perWriter, total)
		}
	})
}

// TestConformanceRandomizedOracle drives a seeded random mutation stream
// against a persistent database and an in-memory oracle in lockstep,
// reopening the persistent side at random points; the canonical-JSON
// snapshots must agree after every reopen and at the end.
func TestConformanceRandomizedOracle(t *testing.T) {
	forEachBackend(t, func(t *testing.T, backend, path string) {
		for _, seed := range []int64{1, 7, 23} {
			rng := rand.New(rand.NewSource(seed))
			oracle := MustOpen()
			db := mustOpenBackend(t, backend, path+fmt.Sprint(seed))

			names := []string{"alpha", "beta", "gamma"}
			apply := func(op func(*DB)) { op(oracle); op(db) }
			for step := 0; step < 120; step++ {
				name := names[rng.Intn(len(names))]
				id := fmt.Sprintf("d%d", rng.Intn(30))
				switch rng.Intn(10) {
				case 0, 1, 2, 3: // insert-or-replace
					doc := Document{"_id": id, "step": step, "v": rng.Float64()}
					apply(func(d *DB) {
						if _, err := d.Collection(name).UpsertMany([]Document{doc}); err != nil {
							t.Fatal(err)
						}
					})
				case 4, 5: // fresh insert (dup errors must agree)
					doc := Document{"_id": id, "fresh": step}
					var errs [2]error
					i := 0
					apply(func(d *DB) {
						errs[i] = d.Collection(name).Insert(doc)
						i++
					})
					if (errs[0] == nil) != (errs[1] == nil) {
						t.Fatalf("seed %d step %d: insert errs diverge: %v vs %v", seed, step, errs[0], errs[1])
					}
				case 6: // update
					apply(func(d *DB) {
						d.Collection(name).Update(Eq("_id", id), Document{"upd": step})
					})
				case 7: // delete
					apply(func(d *DB) { d.Collection(name).Delete(Eq("_id", id)) })
				case 8: // drop
					if rng.Intn(4) == 0 {
						apply(func(d *DB) { d.Drop(name) })
					}
				case 9: // crash-free restart of the persistent side
					if err := db.Close(); err != nil {
						t.Fatalf("seed %d step %d: close: %v", seed, step, err)
					}
					db = mustOpenBackend(t, backend, path+fmt.Sprint(seed))
					diffJSONSnapshots(t, snapshotJSON(t, db), snapshotJSON(t, oracle))
				}
			}
			diffJSONSnapshots(t, snapshotJSON(t, db), snapshotJSON(t, oracle))
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
		}
	})
}

// TestConformanceBackendMismatch: naming the wrong backend for existing
// on-disk state must fail loudly instead of misreading the log.
func TestConformanceBackendMismatch(t *testing.T) {
	forEachBackend(t, func(t *testing.T, backend, path string) {
		db := mustOpenBackend(t, backend, path)
		if err := db.Collection("stats").Insert(Document{"_id": "a"}); err != nil {
			t.Fatal(err)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
		other := BackendSegment
		if backend == BackendSegment {
			other = BackendJSONL
		}
		if _, err := Open(WithPath(path), WithBackend(other)); err == nil {
			t.Fatalf("opening %s state as %s succeeded", backend, other)
		}
	})
}
